// Figure 2a: CLOCK-DWF power breakdown (Static / Dynamic / Migration)
// normalized to the DRAM-only power of the same workload.
//
// Expected shape: static drops to ~1/5 of the DRAM-only level everywhere;
// migrations contribute >40% for many workloads; canneal, fluidanimate and
// streamcluster end up WORSE than DRAM-only (bars above 1.0).
#include <iostream>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header("Fig. 2a — CLOCK-DWF power normalized to DRAM-only", ctx);

  sim::FigureTable table = sim::figure_schema("fig2a").make_table();
  for (const auto& profile : synth::parsec_profiles()) {
    const auto base = bench::run(profile, "dram-only", ctx).appr().total();
    const auto power = bench::run(profile, "clock-dwf", ctx).appr();
    table.add(profile.name,
              {sim::Stack{{power.static_nj / base,
                           (power.hit_nj + power.fault_fill_nj) / base,
                           power.migration_nj / base}}});
  }
  table.print(std::cout);
  if (ctx.csv) table.print_csv(std::cout);
  return 0;
}
