// The full Table III evaluation grid (every PARSEC workload × every hybrid
// policy) through the parallel sweep runner — the harness that demonstrates
// the runner's contract end to end:
//
//   * CSV (default) or --json results on stdout, byte-identical for every
//     --jobs value (run with --jobs 1 and --jobs $(nproc) and diff);
//   * progress, wall-clock timing and the failure summary on stderr, so
//     captured output stays machine-readable;
//   * per-job fault isolation: a failing cell reports in its own row and
//     the exit code, never by killing the sweep.
//
// With `--prescreen analytic`, the grid is first ranked in-process by the
// closed-form estimator (src/model/analytic) and only the best
// `--refine-top P` analytic-supported cells — plus every cell the estimator
// cannot model, e.g. two-lru-adaptive — are simulated; the rest export as
// status "skipped" with blank metrics. Ranking happens before any job is
// dispatched, so the output stays byte-identical for every --jobs value.
//
//   $ bench_sweep [--scale 64] [--seed 42] [--jobs N] [--json]
//                 [--timeline PATH [--epoch N]]
//                 [--prescreen analytic [--refine-top P]]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "runner/prescreen.hpp"
#include "util/cli.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx =
      bench::parse_args(argc, argv, 64, {"json", "prescreen", "refine-top"});
  const CliArgs args(argc, argv);
  const bool json = args.get_bool("json", false);
  const std::string prescreen = args.get("prescreen");
  if (!prescreen.empty() && prescreen != "analytic") {
    std::cerr << args.program()
              << ": --prescreen only supports 'analytic', got '" << prescreen
              << "'\n";
    return 2;
  }
  const std::size_t refine_top =
      static_cast<std::size_t>(args.get_uint("refine-top", 0));

  runner::SweepSpec spec;
  const auto profiles = synth::parsec_profiles();
  spec.workloads.assign(profiles.begin(), profiles.end());
  spec.policies = {"dram-only", "nvm-only", "static-partition", "dram-cache",
                   "rank-mq",   "clock-dwf", "two-lru", "two-lru-adaptive"};
  spec.scale = ctx.scale;
  spec.base_seed = ctx.seed;
  // kShared: each workload's trace is generated from the same seed under
  // every policy, reproducing the paper's fair-comparison methodology.
  spec.seed_mode = runner::SeedMode::kShared;
  bench::apply_overrides(spec, ctx);

  runner::SweepOptions options;
  options.jobs = ctx.jobs;
  options.progress = runner::stderr_progress();

  runner::SweepResults sweep;
  if (!prescreen.empty()) {
    runner::PrescreenOptions prescreen_options;
    prescreen_options.refine_top = refine_top;
    prescreen_options.run = options;
    auto screened = runner::run_prescreened_sweep(spec, prescreen_options);
    std::cerr << "prescreen: " << screened.analytic_evals
              << " analytic estimates ("
              << static_cast<std::uint64_t>(
                     screened.analytic_evals_per_second())
              << "/s), simulated " << screened.simulated << "/"
              << screened.sweep.jobs.size() << " cells\n";
    sweep = std::move(screened.sweep);
  } else {
    sweep = runner::run_sweep(spec, options);
  }

  if (json) {
    sweep.write_json(std::cout);
  } else {
    sweep.write_csv(std::cout);
  }
  bench::maybe_write_timeline(sweep, ctx);

  double busy_ms = 0;
  for (const auto& job : sweep.jobs) busy_ms += job.wall_ms;
  std::cerr << "sweep: " << sweep.jobs.size() << " jobs on " << sweep.workers
            << " worker(s) in " << sweep.wall_s << " s (cpu-busy "
            << busy_ms / 1000.0 << " s, parallel efficiency "
            << (sweep.wall_s > 0
                    ? busy_ms / 1000.0 / sweep.wall_s /
                          static_cast<double>(sweep.workers) * 100.0
                    : 0.0)
            << "%)\n";
  sweep.write_failures(std::cerr);
  return sweep.failures() == 0 ? 0 : 1;
}
