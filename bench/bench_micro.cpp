// Microbenchmarks (google-benchmark): raw operation throughput of the
// building blocks — replacement policies, the windowed NVM queue, the cache
// hierarchy, the trace generator and the end-to-end simulator.
#include <benchmark/benchmark.h>

#include <sstream>

#include "cachesim/hierarchy.hpp"
#include "core/migration_scheme.hpp"
#include "core/nvm_queue.hpp"
#include "obs/epoch.hpp"
#include "os/vmm.hpp"
#include "policy/factory.hpp"
#include "sim/experiment.hpp"
#include "sim/engine.hpp"
#include "sim/policy_factory.hpp"
#include "synth/cpu_stream.hpp"
#include "synth/generator.hpp"
#include "trace/block_source.hpp"
#include "trace/stream_io.hpp"
#include "trace/trace_stats.hpp"
#include "util/random.hpp"
#include "util/zipf.hpp"

namespace {

using namespace hymem;

// Zipf page streams are pre-sampled outside the timing loops below so the
// measured work is the policy/queue operation itself, not the sampler.
std::vector<PageId> sampled_pages(std::size_t count, std::uint64_t universe,
                                  std::uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(universe, 0.8);
  std::vector<PageId> pages(count);
  for (PageId& page : pages) page = zipf.sample(rng);
  return pages;
}

void BM_ReplacementPolicyChurn(benchmark::State& state,
                               const std::string& name) {
  const std::size_t capacity = 4096;
  const auto policy = policy::make_replacement(name, capacity);
  const std::vector<PageId> pages = sampled_pages(1 << 16, capacity * 4, 7);
  // One benchmark iteration replays the whole pre-sampled stream, so the
  // per-access cost is the policy operation alone, not harness bookkeeping.
  for (auto _ : state) {
    for (const PageId page : pages) {
      if (policy->contains(page)) {
        policy->on_hit(page, AccessType::kRead);
      } else {
        if (policy->full()) {
          policy->erase(*policy->select_victim());
        }
        policy->insert(page, AccessType::kRead);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pages.size()));
}

void BM_CountedLruQueue(benchmark::State& state) {
  const std::size_t capacity = 4096;
  core::CountedLruQueue queue(capacity, 0.1, 0.3);
  Rng rng(5);
  const std::vector<PageId> pages = sampled_pages(1 << 16, capacity, 5);
  std::vector<AccessType> types(pages.size());
  for (AccessType& type : types) {
    type = rng.next_bool(0.3) ? AccessType::kWrite : AccessType::kRead;
  }
  for (PageId p = 0; p < capacity; ++p) queue.insert_front(p);
  for (auto _ : state) {
    for (std::size_t i = 0; i < pages.size(); ++i) {
      benchmark::DoNotOptimize(queue.record_hit(pages[i], types[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pages.size()));
}

void BM_CacheHierarchy(benchmark::State& state) {
  cachesim::Hierarchy hierarchy((cachesim::HierarchyConfig()));
  synth::CpuStreamOptions opts;
  opts.accesses_per_core = 100000;
  const auto trace = synth::generate_cpu_stream(opts);
  std::size_t i = 0;
  for (auto _ : state) {
    hierarchy.access(trace[i]);
    if (++i == trace.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TraceGenerator(benchmark::State& state) {
  synth::WorkloadProfile profile = synth::parsec_profile("bodytrack").scaled(64);
  synth::GeneratorOptions options;
  for (auto _ : state) {
    options.seed++;
    benchmark::DoNotOptimize(synth::generate(profile, options));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(profile.total_accesses()));
}

void BM_EndToEndSimulation(benchmark::State& state,
                           const std::string& policy) {
  const auto profile = synth::parsec_profile("bodytrack");
  sim::ExperimentConfig config;
  config.policy = policy;
  config.warmup_passes = 0;
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    const auto result = sim::run_workload(profile, 128, config, 42);
    accesses += result.accesses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}

// Shared fixture of the replay benchmarks: the dedup/4 trace (a ~32k-page
// footprint, so the page table and policy indexes see realistic cache
// pressure instead of fitting in L1) plus its Section V.A memory shape.
struct ReplayFixture {
  trace::Trace trace;
  os::VmmConfig vmm_config;
  double roi_seconds = 0;
  sim::ExperimentConfig config;
};

ReplayFixture make_replay_fixture(const std::string& policy) {
  ReplayFixture fx;
  const auto profile = synth::parsec_profile("dedup").scaled(4);
  synth::GeneratorOptions options;
  options.seed = 42;
  fx.trace = synth::generate(profile, options);
  fx.roi_seconds = profile.roi_seconds;
  fx.config.policy = policy;
  trace::TraceCharacterizer characterizer(fx.config.page_size);
  characterizer.observe(fx.trace);
  const sim::MemorySizing sizing =
      sim::size_memory(characterizer.stats().distinct_pages, fx.config);
  fx.vmm_config.dram_frames = sizing.dram_frames;
  fx.vmm_config.nvm_frames = sizing.nvm_frames;
  fx.vmm_config.page_size = fx.config.page_size;
  fx.vmm_config.access_granularity = fx.config.access_granularity;
  fx.vmm_config.dram = fx.config.dram;
  fx.vmm_config.nvm = fx.config.nvm;
  fx.vmm_config.disk = fx.config.disk;
  fx.vmm_config.transfer_mode = fx.config.transfer_mode;
  fx.vmm_config.wear_leveling = fx.config.wear_leveling;
  return fx;
}

// Replay throughput of the simulation core proper: the trace is generated
// and characterized once outside the timing loop, so items/second is
// on_access ops/sec of sim::run_trace (one warmup pass + the measured pass),
// the number every figure and sweep cell is built from.
//
// `timeline_epoch` nonzero attaches an obs::EpochSampler with that epoch
// length, so the `_timeline` captures measure the instrumentation-on cost
// against their plain counterparts.
void BM_RunTrace(benchmark::State& state, const std::string& policy,
                 std::uint64_t timeline_epoch = 0) {
  const ReplayFixture fx = make_replay_fixture(policy);
  const trace::Trace& trace = fx.trace;
  const auto& profile_roi = fx.roi_seconds;
  const sim::ExperimentConfig& config = fx.config;
  const os::VmmConfig& vmm_config = fx.vmm_config;
  std::uint64_t replayed = 0;
  for (auto _ : state) {
    os::Vmm vmm(vmm_config);
    const auto impl = sim::make_policy(policy, vmm, config.migration);
    if (timeline_epoch == 0) {
      const auto result = sim::run_trace(*impl, trace, profile_roi,
                                         /*warmup_passes=*/1);
      benchmark::DoNotOptimize(result.accesses);
    } else {
      const auto* scheme =
          dynamic_cast<const core::TwoLruMigrationPolicy*>(impl.get());
      obs::EpochSampler sampler(timeline_epoch, vmm, scheme,
                                profile_roi);
      const auto result = sim::run_trace(*impl, trace, profile_roi,
                                         /*warmup_passes=*/1, &sampler);
      benchmark::DoNotOptimize(result.accesses);
      const obs::Timeline timeline = sampler.take_timeline();
      benchmark::DoNotOptimize(timeline.epochs.size());
    }
    replayed += 2 * trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replayed));
}

BENCHMARK_CAPTURE(BM_ReplacementPolicyChurn, lru, "lru");
BENCHMARK_CAPTURE(BM_ReplacementPolicyChurn, clock, "clock");
BENCHMARK_CAPTURE(BM_ReplacementPolicyChurn, clock_pro, "clock-pro");
BENCHMARK_CAPTURE(BM_ReplacementPolicyChurn, car, "car");
BENCHMARK(BM_CountedLruQueue);
BENCHMARK(BM_CacheHierarchy);
BENCHMARK(BM_TraceGenerator);
BENCHMARK_CAPTURE(BM_EndToEndSimulation, two_lru, "two-lru");
BENCHMARK_CAPTURE(BM_EndToEndSimulation, clock_dwf, "clock-dwf");
// Streamed replay throughput: the same trace, memory shape and pass
// structure as BM_RunTrace (one warmup pass + one measured pass), but
// through the block engine — a TraceBlockSource decodes the trace once at
// construction (outside the timing loop, like production multi-pass use)
// and sim::run_blocks serves `chunk`-access blocks through the policy's
// on_block fast path. Interleave this against BM_RunTrace/two_lru
// (--benchmark_enable_random_interleaving) for the speedup ratio.
void BM_RunTraceStreamed(benchmark::State& state, const std::string& policy,
                         std::size_t chunk) {
  const ReplayFixture fx = make_replay_fixture(policy);
  trace::TraceBlockSource source(fx.trace, fx.config.page_size, chunk);
  std::uint64_t replayed = 0;
  for (auto _ : state) {
    os::Vmm vmm(fx.vmm_config);
    const auto impl = sim::make_policy(policy, vmm, fx.config.migration);
    source.rewind();
    const auto result =
        sim::run_blocks(*impl, source, fx.roi_seconds, /*warmup_passes=*/1);
    benchmark::DoNotOptimize(result.accesses);
    replayed += 2 * fx.trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replayed));
}

// Streamed replay from the chunked HYTS byte format: O(chunk) memory, with
// the readahead producer decoding block N+1 while the policy replays block
// N. Measures the full capture-to-replay path a too-big-to-materialize
// trace takes.
void BM_RunTraceStreamedIo(benchmark::State& state, const std::string& policy,
                           std::size_t chunk) {
  const ReplayFixture fx = make_replay_fixture(policy);
  std::stringstream bytes;
  {
    trace::StreamTraceWriter writer(bytes, fx.trace.name(), chunk);
    for (const auto& access : fx.trace.accesses()) writer.append(access);
    writer.finish();
  }
  std::uint64_t replayed = 0;
  for (auto _ : state) {
    os::Vmm vmm(fx.vmm_config);
    const auto impl = sim::make_policy(policy, vmm, fx.config.migration);
    bytes.clear();
    bytes.seekg(0);
    trace::StreamBlockSource source(bytes, fx.config.page_size, chunk,
                                    /*readahead=*/true);
    const auto result =
        sim::run_blocks(*impl, source, fx.roi_seconds, /*warmup_passes=*/1);
    benchmark::DoNotOptimize(result.accesses);
    replayed += 2 * fx.trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(replayed));
}

BENCHMARK_CAPTURE(BM_RunTrace, two_lru, "two-lru");
BENCHMARK_CAPTURE(BM_RunTraceStreamed, two_lru, "two-lru", 4096u);
BENCHMARK_CAPTURE(BM_RunTraceStreamedIo, two_lru, "two-lru", 16384u);
BENCHMARK_CAPTURE(BM_RunTrace, two_lru_adaptive, "two-lru-adaptive");
BENCHMARK_CAPTURE(BM_RunTrace, clock_dwf, "clock-dwf");
BENCHMARK_CAPTURE(BM_RunTrace, dram_only, "dram-only");
BENCHMARK_CAPTURE(BM_RunTrace, two_lru_timeline, "two-lru", 1024u);
BENCHMARK_CAPTURE(BM_RunTrace, clock_dwf_timeline, "clock-dwf", 1024u);

}  // namespace

BENCHMARK_MAIN();
