// Microbenchmarks (google-benchmark): raw operation throughput of the
// building blocks — replacement policies, the windowed NVM queue, the cache
// hierarchy, the trace generator and the end-to-end simulator.
#include <benchmark/benchmark.h>

#include "cachesim/hierarchy.hpp"
#include "core/nvm_queue.hpp"
#include "policy/factory.hpp"
#include "sim/experiment.hpp"
#include "sim/policy_factory.hpp"
#include "synth/cpu_stream.hpp"
#include "synth/generator.hpp"
#include "util/random.hpp"
#include "util/zipf.hpp"

namespace {

using namespace hymem;

void BM_ReplacementPolicyChurn(benchmark::State& state,
                               const std::string& name) {
  const std::size_t capacity = 4096;
  const auto policy = policy::make_replacement(name, capacity);
  Rng rng(7);
  ZipfSampler zipf(capacity * 4, 0.8);
  for (auto _ : state) {
    const PageId page = zipf.sample(rng);
    if (policy->contains(page)) {
      policy->on_hit(page, AccessType::kRead);
    } else {
      if (policy->full()) {
        policy->erase(*policy->select_victim());
      }
      policy->insert(page, AccessType::kRead);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_CountedLruQueue(benchmark::State& state) {
  const std::size_t capacity = 4096;
  core::CountedLruQueue queue(capacity, 0.1, 0.3);
  Rng rng(5);
  ZipfSampler zipf(capacity, 0.8);
  for (PageId p = 0; p < capacity; ++p) queue.insert_front(p);
  for (auto _ : state) {
    const PageId page = zipf.sample(rng);
    benchmark::DoNotOptimize(queue.record_hit(
        page, rng.next_bool(0.3) ? AccessType::kWrite : AccessType::kRead));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_CacheHierarchy(benchmark::State& state) {
  cachesim::Hierarchy hierarchy((cachesim::HierarchyConfig()));
  synth::CpuStreamOptions opts;
  opts.accesses_per_core = 100000;
  const auto trace = synth::generate_cpu_stream(opts);
  std::size_t i = 0;
  for (auto _ : state) {
    hierarchy.access(trace[i]);
    if (++i == trace.size()) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_TraceGenerator(benchmark::State& state) {
  synth::WorkloadProfile profile = synth::parsec_profile("bodytrack").scaled(64);
  synth::GeneratorOptions options;
  for (auto _ : state) {
    options.seed++;
    benchmark::DoNotOptimize(synth::generate(profile, options));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(profile.total_accesses()));
}

void BM_EndToEndSimulation(benchmark::State& state,
                           const std::string& policy) {
  const auto profile = synth::parsec_profile("bodytrack");
  sim::ExperimentConfig config;
  config.policy = policy;
  config.warmup_passes = 0;
  std::uint64_t accesses = 0;
  for (auto _ : state) {
    const auto result = sim::run_workload(profile, 128, config, 42);
    accesses += result.accesses;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(accesses));
}

BENCHMARK_CAPTURE(BM_ReplacementPolicyChurn, lru, "lru");
BENCHMARK_CAPTURE(BM_ReplacementPolicyChurn, clock, "clock");
BENCHMARK_CAPTURE(BM_ReplacementPolicyChurn, clock_pro, "clock-pro");
BENCHMARK_CAPTURE(BM_ReplacementPolicyChurn, car, "car");
BENCHMARK(BM_CountedLruQueue);
BENCHMARK(BM_CacheHierarchy);
BENCHMARK(BM_TraceGenerator);
BENCHMARK_CAPTURE(BM_EndToEndSimulation, two_lru, "two-lru");
BENCHMARK_CAPTURE(BM_EndToEndSimulation, clock_dwf, "clock-dwf");

}  // namespace

BENCHMARK_MAIN();
