// Table II substrate check: drives multi-core CPU streams through the
// Table II cache hierarchy (the COTSon stand-in) and reports the achieved
// geometry, hit ratios, coherence traffic and memory filter rate, then runs
// the filtered trace through the hybrid memory end to end.
#include <iostream>

#include "bench_common.hpp"
#include "cachesim/hierarchy.hpp"
#include "synth/cpu_stream.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/1);
  bench::print_header("Table II — cache hierarchy substrate (COTSon stand-in)",
                      ctx);

  const cachesim::HierarchyConfig config;  // Table II defaults
  std::cout << "Configured geometry: " << config.cores << " cores, L1D "
            << config.l1d.size_bytes / 1024 << "KB/" << config.l1d.associativity
            << "-way, LLC " << config.llc.size_bytes / 1024 / 1024 << "MB/"
            << config.llc.associativity << "-way, " << config.llc.line_size
            << "B lines\n\n";

  TextTable table({"stream", "cpu accesses", "L1 hit%", "LLC hit%",
                   "invalidations", "interventions", "mem reads", "mem writes",
                   "filter%"});
  struct Scenario {
    const char* name;
    double shared;
    double run_continue;
    std::uint64_t private_bytes;
  };
  for (const Scenario& s :
       {Scenario{"private-sequential", 0.0, 0.9, 8u << 20},
        Scenario{"private-random", 0.0, 0.2, 16u << 20},
        Scenario{"shared-heavy", 0.4, 0.6, 8u << 20},
        Scenario{"llc-resident", 0.1, 0.7, 256u << 10}}) {
    synth::CpuStreamOptions opts;
    opts.cores = config.cores;
    opts.accesses_per_core = 250000 / ctx.scale + 1000;
    opts.shared_fraction = s.shared;
    opts.run_continue = s.run_continue;
    opts.private_bytes = s.private_bytes;
    opts.seed = ctx.seed;
    const auto cpu = synth::generate_cpu_stream(opts);
    cachesim::HierarchyStats stats;
    cachesim::Hierarchy::filter(cpu, config, &stats);
    table.add_row({s.name, std::to_string(stats.accesses),
                   TextTable::fmt(100.0 * stats.l1_hit_ratio(), 1),
                   TextTable::fmt(100.0 * stats.llc_hit_ratio(), 1),
                   std::to_string(stats.invalidations),
                   std::to_string(stats.interventions),
                   std::to_string(stats.memory_reads),
                   std::to_string(stats.memory_writes),
                   TextTable::fmt(100.0 * stats.memory_filter_ratio(), 2)});
  }
  std::cout << table.to_string();
  return 0;
}
