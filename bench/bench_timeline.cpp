// Epoch time-series harness: the paper's metrics as a timeline instead of
// end-of-run aggregates. Runs the selected workloads × policies grid with
// obs::EpochSampler attached and emits the spliced timeline CSV on stdout
// (or per-job JSON with --json) — watch the windowed counters fill, the
// thresholds bite, and per-epoch AMAT converge to the steady state.
//
//   $ bench_timeline [--workload canneal] [--policy two-lru]
//                    [--epoch 1024] [--scale 64] [--seed 42] [--jobs N]
//                    [--json]
//
// --workload / --policy take one name; omit them for a small default grid
// (canneal, streamcluster × two-lru, clock-dwf). Stdout is byte-identical
// for every --jobs value.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/timeline_io.hpp"
#include "util/cli.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  auto ctx = bench::parse_args(argc, argv, 64,
                               {"json", "workload", "policy"});
  const CliArgs args(argc, argv);
  const bool json = args.get_bool("json", false);

  std::vector<synth::WorkloadProfile> workloads;
  const std::string workload = args.get("workload");
  if (workload.empty()) {
    workloads = {synth::parsec_profile("canneal"),
                 synth::parsec_profile("streamcluster")};
  } else {
    try {
      workloads = {synth::parsec_profile(workload)};
    } catch (const std::out_of_range&) {
      std::cerr << "unknown workload: " << workload << "\n";
      return 2;
    }
  }
  const std::string policy = args.get("policy");
  const std::vector<std::string> policies =
      policy.empty() ? std::vector<std::string>{"two-lru", "clock-dwf"}
                     : std::vector<std::string>{policy};

  runner::SweepSpec spec;
  spec.workloads = std::move(workloads);
  spec.policies = policies;
  spec.scale = ctx.scale;
  spec.base_seed = ctx.seed;
  spec.seed_mode = runner::SeedMode::kShared;
  // This harness *is* the timeline: sampling is always on, regardless of
  // whether --timeline was also passed.
  spec.variants.emplace_back();
  spec.variants.back().config.timeline_epoch = ctx.timeline_epoch;

  runner::SweepOptions options;
  options.jobs = ctx.jobs;
  options.progress = runner::stderr_progress();
  const auto sweep = runner::run_sweep(spec, options);

  if (json) {
    std::cout << "[";
    bool first = true;
    for (const auto& job : sweep.jobs) {
      if (!job.ok || job.result.timeline.empty()) continue;
      if (!first) std::cout << ",";
      first = false;
      std::cout << "\n";
      obs::write_timeline_json(job.result.timeline, std::cout,
                               job.job.workload.name, job.job.policy);
    }
    std::cout << "]\n";
  } else {
    sweep.write_timeline_csv(std::cout);
  }
  // --timeline PATH additionally writes the spliced CSV to a file (same
  // bytes as the default stdout form).
  bench::maybe_write_timeline(sweep, ctx);

  std::cerr << "timeline: " << sweep.jobs.size() << " jobs, epoch "
            << ctx.timeline_epoch << " accesses, " << sweep.workers
            << " worker(s), " << sweep.wall_s << " s\n";
  sweep.write_failures(std::cerr);
  return sweep.failures() == 0 ? 0 : 1;
}
