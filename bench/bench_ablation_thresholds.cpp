// Ablation A1: read/write migration-threshold sweep (Section V.B).
//
// The paper observes that raytrace's optimal thresholds differ from the
// other workloads' (its near-threshold access bursts make migration
// decisions risky). This sweep shows the U-shape: thresholds too low cause
// CLOCK-DWF-like migration storms; too high leaves hot pages stranded in
// NVM. The (workload × threshold) grid fans out over `--jobs` workers.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — migration threshold sweep", ctx);

  const std::vector<std::uint64_t> thresholds = {0, 1, 2, 4, 8, 16, 32, 64,
                                                 256};
  std::vector<runner::ConfigVariant> variants;
  for (const std::uint64_t thr : thresholds) {
    runner::ConfigVariant variant;
    variant.label = "thr=" + std::to_string(thr);
    variant.config.migration.read_threshold = thr;
    variant.config.migration.write_threshold = thr + thr / 2;
    variants.push_back(std::move(variant));
  }

  std::vector<synth::WorkloadProfile> workloads;
  for (const char* name : {"raytrace", "facesim", "vips"}) {
    workloads.push_back(synth::parsec_profile(name));
  }
  const auto sweep =
      bench::run_grid(workloads, {"two-lru"}, ctx, variants);

  // Grid order is workload-major, so each workload owns one contiguous
  // chunk of `thresholds.size()` result slots.
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::cout << "--- " << workloads[w].name << " ---\n";
    TextTable table({"read_thr", "write_thr", "promotions/kacc",
                     "APPR (nJ)", "AMAT (ns)", "NVM writes/acc"});
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
      const auto& job = sweep.jobs[w * thresholds.size() + t];
      if (!job.ok) continue;
      const auto& result = job.result;
      const std::uint64_t thr = thresholds[t];
      table.add_row(
          {std::to_string(thr), std::to_string(thr + thr / 2),
           TextTable::fmt(1000.0 *
                              static_cast<double>(
                                  result.counts.migrations_to_dram) /
                              static_cast<double>(result.accesses),
                          2),
           TextTable::fmt(result.appr().total(), 2),
           TextTable::fmt(result.amat().total(), 1),
           TextTable::fmt(static_cast<double>(result.nvm_writes().total()) /
                              static_cast<double>(result.accesses),
                          3)});
    }
    std::cout << table.to_string() << '\n';
  }
  return sweep.failures() == 0 ? 0 : 1;
}
