// Ablation A1: read/write migration-threshold sweep (Section V.B).
//
// The paper observes that raytrace's optimal thresholds differ from the
// other workloads' (its near-threshold access bursts make migration
// decisions risky). This sweep shows the U-shape: thresholds too low cause
// CLOCK-DWF-like migration storms; too high leaves hot pages stranded in
// NVM.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — migration threshold sweep", ctx);

  for (const char* workload : {"raytrace", "facesim", "vips"}) {
    std::cout << "--- " << workload << " ---\n";
    TextTable table({"read_thr", "write_thr", "promotions/kacc",
                     "APPR (nJ)", "AMAT (ns)", "NVM writes/acc"});
    const auto& profile = synth::parsec_profile(workload);
    for (const std::uint64_t thr : {0ULL, 1ULL, 2ULL, 4ULL, 8ULL, 16ULL,
                                    32ULL, 64ULL, 256ULL}) {
      sim::ExperimentConfig config;
      config.migration.read_threshold = thr;
      config.migration.write_threshold = thr + thr / 2;
      const auto result = bench::run(profile, "two-lru", ctx, config);
      table.add_row(
          {std::to_string(thr), std::to_string(thr + thr / 2),
           TextTable::fmt(1000.0 *
                              static_cast<double>(
                                  result.counts.migrations_to_dram) /
                              static_cast<double>(result.accesses),
                          2),
           TextTable::fmt(result.appr().total(), 2),
           TextTable::fmt(result.amat().total(), 1),
           TextTable::fmt(static_cast<double>(result.nvm_writes().total()) /
                              static_cast<double>(result.accesses),
                          3)});
    }
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
