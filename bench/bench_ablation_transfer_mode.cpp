// Ablation A5: separate modules over DMA (the paper's architecture) vs an
// integrated module with pipelined page copies (its Section II alternative:
// "if both memory types can be assembled in one module, the migrations can
// be done more effectively"). Energy and endurance are unchanged — only the
// migration latency composition differs (sum vs max).
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — DMA vs integrated-module migration", ctx);

  for (const char* policy : {"clock-dwf", "two-lru"}) {
    std::cout << "--- " << policy << " ---\n";
    TextTable table({"workload", "AMAT dma (ns)", "AMAT integrated (ns)",
                     "migration dma (ns)", "migration integrated (ns)",
                     "speedup"});
    for (const char* workload :
         {"facesim", "x264", "canneal", "raytrace", "streamcluster"}) {
      const auto& profile = synth::parsec_profile(workload);
      sim::ExperimentConfig dma;
      dma.policy = policy;
      sim::ExperimentConfig integrated = dma;
      integrated.transfer_mode = mem::TransferMode::kIntegrated;
      const auto a = bench::run(profile, policy, ctx, dma);
      const auto b = bench::run(profile, policy, ctx, integrated);
      table.add_row({workload, TextTable::fmt(a.amat().total(), 1),
                     TextTable::fmt(b.amat().total(), 1),
                     TextTable::fmt(a.amat().migration_ns, 1),
                     TextTable::fmt(b.amat().migration_ns, 1),
                     TextTable::fmt(a.amat().total() / b.amat().total(), 3)});
    }
    std::cout << table.to_string() << '\n';
  }
  std::cout << "Integrated copies shrink only the migration term; policies"
               "\nthat migrate heavily (CLOCK-DWF) benefit the most — the"
               "\nthreshold-filtered scheme has little migration left to"
               " accelerate.\n";
  return 0;
}
