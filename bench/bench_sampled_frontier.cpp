// Sampled-hotness frontier: how much AMAT/endurance the deployable
// sampled-lru policy gives up, versus the omniscient two-LRU scheme and
// CLOCK-DWF, as a function of its three overhead knobs — sample period
// (how much of the access stream the OS sees), ring depth (staging memory
// for candidates) and migration budget (background bandwidth).
//
//   $ bench_sampled_frontier [--scale 128] [--seed 42] [--jobs N]
//
// Emits the "sampled-frontier" CSV (see sim/figure_schemas) on stdout:
// one row per baseline (two-lru, clock-dwf) per workload, then one row per
// sampled-lru configuration, with amat_vs_two_lru normalizing each row to
// the same workload's omniscient two-LRU run. Stdout is byte-identical for
// every --jobs value (virtual-time migrator + sweep determinism contract).
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"
#include "util/csv.hpp"

using namespace hymem;

namespace {

std::string fmt_double(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

std::string u64(std::uint64_t value) { return std::to_string(value); }

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);

  std::vector<synth::WorkloadProfile> workloads = {
      synth::parsec_profile("canneal"), synth::parsec_profile("streamcluster")};

  // The frontier grid: sample period x ring depth x migration budget
  // (0 = unlimited). drain_period stays at its default so the budget axis
  // is rate-per-fixed-window.
  const std::vector<std::uint64_t> periods = {4, 16, 64};
  const std::vector<std::uint64_t> rings = {64, 256};
  const std::vector<std::uint64_t> budgets = {8, 64, 0};
  std::vector<runner::ConfigVariant> variants;
  for (const std::uint64_t period : periods) {
    for (const std::uint64_t ring : rings) {
      for (const std::uint64_t budget : budgets) {
        runner::ConfigVariant variant;
        std::ostringstream label;
        label << "p" << period << "-r" << ring << "-m" << budget;
        variant.label = label.str();
        variant.config.sample.sample_period = period;
        variant.config.sample.ring_capacity = ring;
        variant.config.sample.migration_budget = budget;
        variants.push_back(std::move(variant));
      }
    }
  }

  const std::vector<std::string> baseline_policies = {"two-lru", "clock-dwf"};
  const auto baselines = bench::run_grid(workloads, baseline_policies, ctx);
  const auto sampled = bench::run_grid(workloads, {"sampled-lru"}, ctx,
                                       variants);

  // Grid order is workload-major: baseline job (w, p) sits at
  // w * |policies| + p, sampled job (w, v) at w * |variants| + v.
  std::vector<double> two_lru_amat(workloads.size(), 0.0);
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const auto& job = baselines.jobs[w * baseline_policies.size()];
    if (job.ok) two_lru_amat[w] = job.result.amat().total();
  }
  const auto ratio = [&](std::size_t w, double amat) {
    return two_lru_amat[w] > 0.0 ? amat / two_lru_amat[w] : 0.0;
  };

  CsvWriter csv(std::cout);
  csv.write_row(sim::table_schema("sampled-frontier").columns);
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t p = 0; p < baseline_policies.size(); ++p) {
      const auto& job = baselines.jobs[w * baseline_policies.size() + p];
      if (!job.ok) continue;
      const auto& result = job.result;
      // Baselines have no sampling knobs: the config columns read 0 and
      // the migration counts come from the VMM event ledger.
      csv.write_row({job.job.workload.name, job.job.policy, "omniscient",
                     "0", "0", "0", "0", fmt_double(result.amat().total()),
                     fmt_double(ratio(w, result.amat().total())),
                     fmt_double(result.appr().total()),
                     u64(result.nvm_writes().total()),
                     u64(result.counts.migrations_to_dram),
                     u64(result.counts.migrations_to_nvm), "0", "0"});
    }
  }
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const auto& job = sampled.jobs[w * variants.size() + v];
      if (!job.ok) continue;
      const auto& result = job.result;
      const auto& scfg = job.job.config.sample;
      csv.write_row({job.job.workload.name, job.job.policy, job.job.variant,
                     u64(scfg.sample_period), u64(scfg.ring_capacity),
                     u64(scfg.migration_budget), u64(scfg.drain_period),
                     fmt_double(result.amat().total()),
                     fmt_double(ratio(w, result.amat().total())),
                     fmt_double(result.appr().total()),
                     u64(result.nvm_writes().total()),
                     u64(result.sampled.promotions),
                     u64(result.sampled.demotions),
                     u64(result.sampled.sample_drops),
                     u64(result.sampled.backlog)});
    }
  }

  std::cerr << "sampled-frontier: " << baselines.jobs.size() << " baseline + "
            << sampled.jobs.size() << " sampled jobs, " << sampled.workers
            << " worker(s), " << (baselines.wall_s + sampled.wall_s) << " s\n";
  return baselines.failures() + sampled.failures() == 0 ? 0 : 1;
}
