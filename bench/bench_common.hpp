// Shared plumbing for the figure-reproduction harnesses.
//
// Every harness accepts:
//   --scale N   divide each workload's Table III access counts (and working
//               set, keeping all ratios) by N. Default 64: the full suite
//               runs in seconds with the same shapes as scale 1.
//   --seed S    generator seed (default 42).
//   --jobs N    worker threads for grid-shaped harnesses (default: the
//               hardware concurrency). 1 = serial reference path. Results
//               are byte-identical for every N.
//   --csv       additionally dump the table as CSV to stdout.
//   --timeline PATH
//               sample an epoch time-series during every measured run and
//               write the spliced per-job timeline CSV to PATH (grid-shaped
//               harnesses; see src/obs/). Off by default: the replay loop
//               stays uninstrumented.
//   --epoch N   timeline epoch length in accesses (default 1024; only
//               meaningful with --timeline).
#pragma once

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/reporter.hpp"
#include "synth/workload_profile.hpp"
#include "util/cli.hpp"

namespace hymem::bench {

struct BenchContext {
  std::uint64_t scale = 64;
  std::uint64_t seed = 42;
  bool csv = false;
  unsigned jobs = 1;  ///< Sweep worker threads.
  std::string timeline;  ///< --timeline PATH; empty = sampling off.
  std::uint64_t timeline_epoch = 1024;  ///< --epoch N.
};

inline BenchContext parse_args(int argc, char** argv,
                               std::uint64_t default_scale = 64) {
  const CliArgs args(argc, argv);
  BenchContext ctx;
  ctx.scale = args.get_uint("scale", default_scale);
  ctx.seed = args.get_uint("seed", 42);
  ctx.csv = args.get_bool("csv", false);
  ctx.jobs = static_cast<unsigned>(
      args.get_uint("jobs", runner::ThreadPool::default_threads()));
  ctx.timeline = args.get("timeline");
  ctx.timeline_epoch = args.get_uint("epoch", 1024);
  return ctx;
}

/// Turns on epoch sampling in every grid cell when the harness was run with
/// --timeline. Materializes the implicit default variant so the override
/// has a config to land on.
inline void apply_timeline(runner::SweepSpec& spec, const BenchContext& ctx) {
  if (ctx.timeline.empty()) return;
  if (spec.variants.empty()) spec.variants.emplace_back();
  for (auto& variant : spec.variants) {
    variant.config.timeline_epoch = ctx.timeline_epoch;
  }
}

/// Writes the sweep's spliced timeline CSV to ctx.timeline (no-op when the
/// flag was absent). Row count goes to stderr, keeping stdout deterministic.
inline void maybe_write_timeline(const runner::SweepResults& sweep,
                                 const BenchContext& ctx) {
  if (ctx.timeline.empty()) return;
  std::ofstream out(ctx.timeline, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open --timeline path: " << ctx.timeline << "\n";
    return;
  }
  const std::size_t rows = sweep.write_timeline_csv(out);
  std::cerr << "timeline: " << rows << " epoch rows (epoch "
            << ctx.timeline_epoch << ") -> " << ctx.timeline << "\n";
}

inline void print_header(const std::string& title, const BenchContext& ctx) {
  std::cout << "### " << title << "\n";
  std::cout << "(scale 1/" << ctx.scale << ", seed " << ctx.seed
            << "; workload shapes are scale-stable)\n\n";
  sim::print_memory_characteristics(std::cout, mem::dram_table4(),
                                    mem::pcm_table4());
  std::cout << '\n';
}

/// Runs one (workload, policy) experiment at the bench's scale.
inline sim::RunResult run(const synth::WorkloadProfile& profile,
                          const std::string& policy, const BenchContext& ctx,
                          sim::ExperimentConfig config = {}) {
  config.policy = policy;
  return sim::run_workload(profile, ctx.scale, config, ctx.seed);
}

/// Runs a (workload × policy × variant) grid through the sweep runner on
/// `ctx.jobs` workers, with progress on stderr. SeedMode::kShared replays
/// the same per-workload trace under every policy/variant — identical
/// numbers to the historical serial loops, just fanned out.
inline runner::SweepResults run_grid(
    std::vector<synth::WorkloadProfile> workloads,
    std::vector<std::string> policies, const BenchContext& ctx,
    std::vector<runner::ConfigVariant> variants = {},
    runner::SeedMode seed_mode = runner::SeedMode::kShared) {
  runner::SweepSpec spec;
  spec.workloads = std::move(workloads);
  spec.policies = std::move(policies);
  spec.variants = std::move(variants);
  spec.scale = ctx.scale;
  spec.base_seed = ctx.seed;
  spec.seed_mode = seed_mode;
  apply_timeline(spec, ctx);
  runner::SweepOptions options;
  options.jobs = ctx.jobs;
  options.progress = runner::stderr_progress();
  auto sweep = runner::run_sweep(spec, options);
  sweep.write_failures(std::cerr);
  maybe_write_timeline(sweep, ctx);
  return sweep;
}

}  // namespace hymem::bench
