// Shared plumbing for the figure-reproduction harnesses.
//
// Every harness accepts:
//   --scale N   divide each workload's Table III access counts (and working
//               set, keeping all ratios) by N. Default 64: the full suite
//               runs in seconds with the same shapes as scale 1.
//   --seed S    generator seed (default 42).
//   --jobs N    worker threads for grid-shaped harnesses (default: the
//               hardware concurrency). 1 = serial reference path. Results
//               are byte-identical for every N.
//   --csv       additionally dump the table as CSV to stdout.
//   --timeline PATH
//               sample an epoch time-series during every measured run and
//               write the spliced per-job timeline CSV to PATH (grid-shaped
//               harnesses; see src/obs/). Off by default: the replay loop
//               stays uninstrumented.
//   --epoch N   timeline epoch length in accesses (default 1024; only
//               meaningful with --timeline).
//   --chunk-accesses N
//               replay through the block engine in N-access blocks instead
//               of the one-access-at-a-time reference loop. Results are
//               byte-identical for every N; 0 (default) keeps the
//               historical path.
//   --shards K  workers inside each single run (default 1). With
//               --shard-mode exact (default), K stripes the decode stage
//               and output stays byte-identical for any K; with
//               --shard-mode partitioned, pages are hash-split across K
//               policy instances with proportional budgets (deterministic
//               per K, but an approximation of the global policy).
//   --shard-mode exact|partitioned
//
// Unknown flags are rejected: every harness parses through util::cli and
// errors out listing the full flag set, so a typo ("--job 4") fails loudly
// instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "runner/sharded.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "sim/reporter.hpp"
#include "synth/workload_profile.hpp"
#include "util/cli.hpp"

namespace hymem::bench {

struct BenchContext {
  std::uint64_t scale = 64;
  std::uint64_t seed = 42;
  bool csv = false;
  unsigned jobs = 1;  ///< Sweep worker threads.
  std::string timeline;  ///< --timeline PATH; empty = sampling off.
  std::uint64_t timeline_epoch = 1024;  ///< --epoch N.
  std::uint64_t chunk_accesses = 0;  ///< --chunk-accesses N; 0 = reference.
  unsigned shards = 1;               ///< --shards K inside each run.
  sim::ShardMode shard_mode = sim::ShardMode::kExact;
};

/// The flags every harness accepts, with one-line help.
inline const std::vector<std::pair<std::string, std::string>>&
common_flag_help() {
  static const std::vector<std::pair<std::string, std::string>> help = {
      {"scale", "divide Table III access counts by N (default harness-set)"},
      {"seed", "generator seed (default 42)"},
      {"jobs", "sweep worker threads (default: hardware concurrency)"},
      {"csv", "also dump the table as CSV to stdout"},
      {"timeline", "write the spliced epoch time-series CSV to PATH"},
      {"epoch", "timeline epoch length in accesses (default 1024)"},
      {"chunk-accesses",
       "block-engine replay in N-access blocks (0 = reference loop)"},
      {"shards", "workers inside each run (default 1)"},
      {"shard-mode", "exact (byte-identical) or partitioned (approximate)"},
  };
  return help;
}

/// Exits with the full flag list when argv contains a flag outside the
/// common set plus `extra_flags` (harness-specific additions like --json).
inline void reject_unknown_flags(const CliArgs& args,
                                 const std::vector<std::string>& extra_flags) {
  std::vector<std::string> unknown;
  for (const std::string& name : args.flag_names()) {
    bool known = false;
    for (const auto& [flag, help] : common_flag_help()) {
      if (name == flag) known = true;
    }
    for (const std::string& flag : extra_flags) {
      if (name == flag) known = true;
    }
    if (!known) unknown.push_back(name);
  }
  if (unknown.empty()) return;
  std::cerr << args.program() << ": unknown flag";
  for (const std::string& name : unknown) std::cerr << " --" << name;
  std::cerr << "\n\nAccepted flags:\n";
  for (const auto& [flag, help] : common_flag_help()) {
    std::cerr << "  --" << flag << "  " << help << "\n";
  }
  for (const std::string& flag : extra_flags) {
    std::cerr << "  --" << flag << "  (harness-specific)\n";
  }
  std::exit(2);
}

inline BenchContext parse_args(
    int argc, char** argv, std::uint64_t default_scale = 64,
    const std::vector<std::string>& extra_flags = {}) {
  const CliArgs args(argc, argv);
  reject_unknown_flags(args, extra_flags);
  BenchContext ctx;
  ctx.scale = args.get_uint("scale", default_scale);
  ctx.seed = args.get_uint("seed", 42);
  ctx.csv = args.get_bool("csv", false);
  ctx.jobs = static_cast<unsigned>(
      args.get_uint("jobs", runner::ThreadPool::default_threads()));
  ctx.timeline = args.get("timeline");
  ctx.timeline_epoch = args.get_uint("epoch", 1024);
  ctx.chunk_accesses = args.get_uint("chunk-accesses", 0);
  ctx.shards = static_cast<unsigned>(args.get_uint("shards", 1));
  const std::string mode = args.get("shard-mode", "exact");
  if (mode == "exact") {
    ctx.shard_mode = sim::ShardMode::kExact;
  } else if (mode == "partitioned") {
    ctx.shard_mode = sim::ShardMode::kPartitioned;
  } else {
    std::cerr << args.program()
              << ": --shard-mode must be 'exact' or 'partitioned', got '"
              << mode << "'\n";
    std::exit(2);
  }
  return ctx;
}

/// Applies the context's engine knobs (block size, shards, mode) to one
/// experiment config.
inline void apply_engine(sim::ExperimentConfig& config,
                         const BenchContext& ctx) {
  config.chunk_accesses = ctx.chunk_accesses;
  config.shards = ctx.shards;
  config.shard_mode = ctx.shard_mode;
}

/// Turns on epoch sampling in every grid cell when the harness was run with
/// --timeline, and threads the engine knobs through every variant.
/// Materializes the implicit default variant so the overrides have a config
/// to land on.
inline void apply_overrides(runner::SweepSpec& spec, const BenchContext& ctx) {
  if (spec.variants.empty()) spec.variants.emplace_back();
  for (auto& variant : spec.variants) {
    if (!ctx.timeline.empty()) {
      variant.config.timeline_epoch = ctx.timeline_epoch;
    }
    apply_engine(variant.config, ctx);
  }
}

/// Writes the sweep's spliced timeline CSV to ctx.timeline (no-op when the
/// flag was absent). Row count goes to stderr, keeping stdout deterministic.
inline void maybe_write_timeline(const runner::SweepResults& sweep,
                                 const BenchContext& ctx) {
  if (ctx.timeline.empty()) return;
  std::ofstream out(ctx.timeline, std::ios::binary);
  if (!out) {
    std::cerr << "cannot open --timeline path: " << ctx.timeline << "\n";
    return;
  }
  const std::size_t rows = sweep.write_timeline_csv(out);
  std::cerr << "timeline: " << rows << " epoch rows (epoch "
            << ctx.timeline_epoch << ") -> " << ctx.timeline << "\n";
}

inline void print_header(const std::string& title, const BenchContext& ctx) {
  std::cout << "### " << title << "\n";
  std::cout << "(scale 1/" << ctx.scale << ", seed " << ctx.seed
            << "; workload shapes are scale-stable)\n\n";
  sim::print_memory_characteristics(std::cout, mem::dram_table4(),
                                    mem::pcm_table4());
  std::cout << '\n';
}

/// Runs one (workload, policy) experiment at the bench's scale.
inline sim::RunResult run(const synth::WorkloadProfile& profile,
                          const std::string& policy, const BenchContext& ctx,
                          sim::ExperimentConfig config = {}) {
  config.policy = policy;
  apply_engine(config, ctx);
  return runner::run_workload_dispatch(profile, ctx.scale, config, ctx.seed);
}

/// Runs a (workload × policy × variant) grid through the sweep runner on
/// `ctx.jobs` workers, with progress on stderr. SeedMode::kShared replays
/// the same per-workload trace under every policy/variant — identical
/// numbers to the historical serial loops, just fanned out.
inline runner::SweepResults run_grid(
    std::vector<synth::WorkloadProfile> workloads,
    std::vector<std::string> policies, const BenchContext& ctx,
    std::vector<runner::ConfigVariant> variants = {},
    runner::SeedMode seed_mode = runner::SeedMode::kShared) {
  runner::SweepSpec spec;
  spec.workloads = std::move(workloads);
  spec.policies = std::move(policies);
  spec.variants = std::move(variants);
  spec.scale = ctx.scale;
  spec.base_seed = ctx.seed;
  spec.seed_mode = seed_mode;
  apply_overrides(spec, ctx);
  runner::SweepOptions options;
  options.jobs = ctx.jobs;
  options.progress = runner::stderr_progress();
  auto sweep = runner::run_sweep(spec, options);
  sweep.write_failures(std::cerr);
  maybe_write_timeline(sweep, ctx);
  return sweep;
}

}  // namespace hymem::bench
