// The grand matrix: every hybrid policy on every PARSEC workload, one row
// per (workload, policy), with the three paper metrics side by side.
// `--json` dumps the full result set for external tooling.
#include <iostream>

#include "bench_common.hpp"
#include "sim/results_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  const CliArgs args(argc, argv);
  const bool json = args.get_bool("json", false);
  bench::print_header("Policy x workload matrix", ctx);

  const std::vector<std::string> policies = {
      "dram-only", "nvm-only", "static-partition", "dram-cache",
      "rank-mq",   "clock-dwf", "two-lru",          "two-lru-adaptive"};

  std::vector<sim::RunResult> results;
  TextTable table({"workload", "policy", "APPR (nJ)", "AMAT (ns)",
                   "mig/kacc", "NVM writes/kacc"});
  for (const auto& profile : synth::parsec_profiles()) {
    for (const auto& policy : policies) {
      const auto r = bench::run(profile, policy, ctx);
      const auto accesses = static_cast<double>(r.accesses);
      table.add_row(
          {profile.name, policy, TextTable::fmt(r.appr().total(), 2),
           TextTable::fmt(r.amat().total(), 1),
           TextTable::fmt(1000.0 * static_cast<double>(r.counts.migrations()) /
                              accesses,
                          2),
           TextTable::fmt(1000.0 *
                              static_cast<double>(r.nvm_writes().total()) /
                              accesses,
                          1)});
      results.push_back(r);
    }
  }
  if (json) {
    sim::write_json(results, std::cout);
  } else {
    std::cout << table.to_string();
  }
  return 0;
}
