// The grand matrix: every hybrid policy on every PARSEC workload, one row
// per (workload, policy), with the three paper metrics side by side.
// Runs as a parallel sweep (`--jobs N`, default hardware concurrency);
// row order and values are identical for any job count.
// `--json` dumps the full result set for external tooling.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/results_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, 64, {"json"});
  const CliArgs args(argc, argv);
  const bool json = args.get_bool("json", false);
  bench::print_header("Policy x workload matrix", ctx);

  const std::vector<std::string> policies = {
      "dram-only", "nvm-only", "static-partition", "dram-cache",
      "rank-mq",   "clock-dwf", "two-lru",          "two-lru-adaptive"};
  const auto profiles = synth::parsec_profiles();
  const auto sweep = bench::run_grid(
      {profiles.begin(), profiles.end()}, policies, ctx);

  TextTable table({"workload", "policy", "APPR (nJ)", "AMAT (ns)",
                   "mig/kacc", "NVM writes/kacc"});
  for (const auto& job : sweep.jobs) {
    if (!job.ok) continue;
    const auto& r = job.result;
    const auto accesses = static_cast<double>(r.accesses);
    table.add_row(
        {r.workload, job.job.policy, TextTable::fmt(r.appr().total(), 2),
         TextTable::fmt(r.amat().total(), 1),
         TextTable::fmt(1000.0 * static_cast<double>(r.counts.migrations()) /
                            accesses,
                        2),
         TextTable::fmt(1000.0 *
                            static_cast<double>(r.nvm_writes().total()) /
                            accesses,
                        1)});
  }
  if (json) {
    sim::write_json(sweep.results(), std::cout);
  } else {
    std::cout << table.to_string();
  }
  return sweep.failures() == 0 ? 0 : 1;
}
