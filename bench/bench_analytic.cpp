// Analytic fast path vs. exhaustive simulation: every cell of a two-LRU
// threshold/window grid is both estimated in closed form (model/analytic,
// microseconds per cell) and fully simulated, then compared — per-cell
// prediction error and, the headline, the *frontier* question: does ranking
// by predicted AMAT recover the cells the simulator ranks best? That
// recovery rate is what licenses `bench_sweep --prescreen analytic`.
//
//   $ bench_analytic [--scale 512] [--seed 42] [--jobs N]
//
// Emits the "analytic-frontier" CSV (see sim/figure_schemas) on stdout: one
// row per (workload, grid cell) with predicted/simulated AMAT and hit
// ratio, both rank columns (1 = best within the workload) and whether the
// cell sits in both top-3 sets. Stdout is byte-identical for every --jobs
// value (ranking happens in-process before any job is dispatched). The
// stderr summary reports analytic throughput and top-3 recovery per
// workload.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runner/prescreen.hpp"
#include "sim/figure_schemas.hpp"
#include "util/csv.hpp"

using namespace hymem;

namespace {

std::string fmt_double(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

constexpr std::size_t kTopP = 3;

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/512);

  const std::vector<synth::WorkloadProfile> workloads = {
      synth::parsec_profile("canneal"), synth::parsec_profile("streamcluster")};

  // The Table III-style grid: thresholds bracketing the Section IV defaults
  // crossed with two window geometries.
  struct Point {
    std::uint64_t read_t, write_t;
    double read_p, write_p;
  };
  const std::vector<Point> points = {
      {2, 4, 0.10, 0.30},  {8, 12, 0.10, 0.30}, {16, 24, 0.10, 0.30},
      {2, 4, 0.20, 0.50},  {8, 12, 0.20, 0.50}, {16, 24, 0.20, 0.50},
  };
  std::vector<runner::ConfigVariant> variants;
  for (const Point& pt : points) {
    runner::ConfigVariant variant;
    std::ostringstream label;
    label << "t" << pt.read_t << "-" << pt.write_t << "-w" << pt.read_p
          << "-" << pt.write_p;
    variant.label = label.str();
    variant.config.migration.read_threshold = pt.read_t;
    variant.config.migration.write_threshold = pt.write_t;
    variant.config.migration.read_perc = pt.read_p;
    variant.config.migration.write_perc = pt.write_p;
    variants.push_back(std::move(variant));
  }

  runner::SweepSpec spec;
  spec.workloads = workloads;
  spec.policies = {"two-lru"};
  spec.variants = std::move(variants);
  spec.scale = ctx.scale;
  spec.base_seed = ctx.seed;
  spec.seed_mode = runner::SeedMode::kShared;
  bench::apply_overrides(spec, ctx);

  // refine_top 0: estimate AND simulate every cell — the comparison needs
  // both sides everywhere.
  runner::PrescreenOptions options;
  options.run.jobs = ctx.jobs;
  options.run.progress = runner::stderr_progress();
  const auto screened = runner::run_prescreened_sweep(spec, options);

  // Per-workload ranks (grid order is workload-major, one policy, so the
  // cells of workload w occupy [w*V, (w+1)*V)).
  const std::size_t cells = spec.variants.size();
  const auto rank_of = [&](std::size_t w, auto score) {
    // 1-based rank of each cell within its workload under `score`.
    std::vector<std::size_t> order(cells);
    for (std::size_t v = 0; v < cells; ++v) order[v] = w * cells + v;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double sa = score(a);
      const double sb = score(b);
      return sa != sb ? sa < sb : a < b;
    });
    std::vector<std::size_t> rank(cells, 0);
    for (std::size_t r = 0; r < order.size(); ++r) {
      rank[order[r] - w * cells] = r + 1;
    }
    return rank;
  };

  CsvWriter csv(std::cout);
  csv.write_row(sim::table_schema("analytic-frontier").columns);
  std::vector<std::size_t> recovered(workloads.size(), 0);
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const auto predicted_rank = rank_of(w, [&](std::size_t i) {
      return screened.screen[i].predicted_amat_ns;
    });
    const auto simulated_rank = rank_of(w, [&](std::size_t i) {
      const auto& job = screened.sweep.jobs[i];
      return job.ok ? job.result.amat().total()
                    : std::numeric_limits<double>::infinity();
    });
    for (std::size_t v = 0; v < cells; ++v) {
      const auto& slot = screened.sweep.jobs[w * cells + v];
      if (!slot.ok) continue;
      const auto& mig = slot.job.config.migration;
      const double predicted = screened.screen[w * cells + v].predicted_amat_ns;
      const double simulated = slot.result.amat().total();
      const bool in_both =
          predicted_rank[v] <= kTopP && simulated_rank[v] <= kTopP;
      if (in_both) ++recovered[w];
      const auto& estimate = screened.screen[w * cells + v].estimate;
      const auto sim_probs = model::probabilities(slot.result.counts);
      csv.write_row(
          {slot.job.workload.name, slot.job.policy, slot.job.variant,
           std::to_string(mig.read_threshold),
           std::to_string(mig.write_threshold), fmt_double(mig.read_perc),
           fmt_double(mig.write_perc), fmt_double(predicted),
           fmt_double(simulated),
           fmt_double(simulated > 0.0
                          ? std::abs(predicted - simulated) / simulated
                          : 0.0),
           fmt_double(estimate.hit_ratio),
           fmt_double(sim_probs.hit_dram + sim_probs.hit_nvm),
           std::to_string(predicted_rank[v]),
           std::to_string(simulated_rank[v]), in_both ? "1" : "0"});
    }
  }

  std::cerr << "analytic-frontier: " << screened.analytic_evals
            << " estimates ("
            << static_cast<std::uint64_t>(screened.analytic_evals_per_second())
            << "/s), " << screened.simulated << " simulations\n";
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::cerr << "  " << workloads[w].name << ": top-" << kTopP
              << " recovery " << recovered[w] << "/" << kTopP << "\n";
  }
  return screened.sweep.failures() == 0 ? 0 : 1;
}
