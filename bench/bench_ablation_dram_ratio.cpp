// Ablation A2: DRAM share of the hybrid memory (the paper fixes 10%
// following CLOCK-DWF; this sweep shows what that choice costs/buys).
// Larger DRAM shares soak up more of the hot set (fewer migrations, lower
// AMAT) but forfeit the static-power savings that motivate the hybrid.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — DRAM fraction of hybrid memory", ctx);

  for (const char* workload : {"facesim", "ferret", "canneal"}) {
    std::cout << "--- " << workload << " ---\n";
    TextTable table({"dram%", "APPR (nJ)", "static (nJ)", "migration (nJ)",
                     "AMAT (ns)", "vs dram-only power"});
    const auto& profile = synth::parsec_profile(workload);
    const double dram_only =
        bench::run(profile, "dram-only", ctx).appr().total();
    for (const double fraction : {0.05, 0.10, 0.20, 0.30, 0.50}) {
      sim::ExperimentConfig config;
      config.dram_fraction = fraction;
      const auto result = bench::run(profile, "two-lru", ctx, config);
      const auto power = result.appr();
      table.add_row({TextTable::fmt(100 * fraction, 0),
                     TextTable::fmt(power.total(), 2),
                     TextTable::fmt(power.static_nj, 2),
                     TextTable::fmt(power.migration_nj, 2),
                     TextTable::fmt(result.amat().total(), 1),
                     TextTable::fmt(power.total() / dram_only, 3)});
    }
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
