// Ablation A2: DRAM share of the hybrid memory (the paper fixes 10%
// following CLOCK-DWF; this sweep shows what that choice costs/buys).
// Larger DRAM shares soak up more of the hot set (fewer migrations, lower
// AMAT) but forfeit the static-power savings that motivate the hybrid.
// Both the dram-only baselines and the (workload × fraction) sweep fan
// out over `--jobs` workers.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — DRAM fraction of hybrid memory", ctx);

  const std::vector<double> fractions = {0.05, 0.10, 0.20, 0.30, 0.50};
  std::vector<runner::ConfigVariant> variants;
  for (const double fraction : fractions) {
    runner::ConfigVariant variant;
    variant.label = "dram=" + TextTable::fmt(100 * fraction, 0) + "%";
    variant.config.dram_fraction = fraction;
    variants.push_back(std::move(variant));
  }

  std::vector<synth::WorkloadProfile> workloads;
  for (const char* name : {"facesim", "ferret", "canneal"}) {
    workloads.push_back(synth::parsec_profile(name));
  }

  const auto baselines = bench::run_grid(workloads, {"dram-only"}, ctx);
  const auto sweep = bench::run_grid(workloads, {"two-lru"}, ctx, variants);

  // Grid order is workload-major: baseline w sits at slot w, and workload
  // w's fraction sweep occupies slots [w*|fractions|, (w+1)*|fractions|).
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::cout << "--- " << workloads[w].name << " ---\n";
    TextTable table({"dram%", "APPR (nJ)", "static (nJ)", "migration (nJ)",
                     "AMAT (ns)", "vs dram-only power"});
    if (!baselines.jobs[w].ok) continue;
    const double dram_only = baselines.jobs[w].result.appr().total();
    for (std::size_t f = 0; f < fractions.size(); ++f) {
      const auto& job = sweep.jobs[w * fractions.size() + f];
      if (!job.ok) continue;
      const auto& result = job.result;
      const auto power = result.appr();
      table.add_row({TextTable::fmt(100 * fractions[f], 0),
                     TextTable::fmt(power.total(), 2),
                     TextTable::fmt(power.static_nj, 2),
                     TextTable::fmt(power.migration_nj, 2),
                     TextTable::fmt(result.amat().total(), 1),
                     TextTable::fmt(power.total() / dram_only, 3)});
    }
    std::cout << table.to_string() << '\n';
  }
  return baselines.failures() + sweep.failures() == 0 ? 0 : 1;
}
