// Ablation A10: TLB sensitivity — a cost the paper's model ignores.
//
// Every migration is a page-table remap and costs a TLB shootdown
// (~a few microseconds of IPI + refill on real hardware); every access pays
// a page-walk on a TLB miss. This harness replays each workload's page
// stream through a 64-entry DTLB, counts shootdowns from the measured
// migration rate, and reports how much the Eq. 1 AMAT would grow — i.e.
// whether ignoring the TLB changes the paper's conclusions (it does not:
// the proposed scheme migrates least, so it is penalized least).
#include <iostream>

#include "bench_common.hpp"
#include "os/tlb.hpp"
#include "synth/generator.hpp"
#include "trace/access.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — TLB shootdown / page-walk sensitivity", ctx);

  constexpr Nanoseconds kWalkNs = 80;        // page-walk on TLB miss
  constexpr Nanoseconds kShootdownNs = 4000; // IPI + remote invalidations

  TextTable table({"workload", "policy", "TLB hit%", "AMAT (ns)",
                   "walk add (ns)", "shootdown add (ns)", "AMAT+TLB (ns)"});
  for (const char* workload : {"facesim", "ferret", "raytrace"}) {
    const auto profile = synth::parsec_profile(workload).scaled(ctx.scale);
    synth::GeneratorOptions options;
    options.seed = ctx.seed;
    options.ensure_full_footprint = false;  // match the measured pass
    options.seed = ctx.seed + 1;
    const auto trace = synth::generate(profile, options);
    os::Tlb tlb;
    for (const auto& a : trace) tlb.lookup(trace::page_of(a.addr, 4096));

    for (const char* policy : {"clock-dwf", "two-lru"}) {
      const auto r = bench::run(synth::parsec_profile(workload), policy, ctx);
      const double walk_add = (1.0 - tlb.stats().hit_ratio()) * kWalkNs;
      const double shootdown_add =
          static_cast<double>(r.counts.migrations()) /
          static_cast<double>(r.accesses) * kShootdownNs;
      table.add_row({workload, policy,
                     TextTable::fmt(100.0 * tlb.stats().hit_ratio(), 2),
                     TextTable::fmt(r.amat().total(), 1),
                     TextTable::fmt(walk_add, 2),
                     TextTable::fmt(shootdown_add, 2),
                     TextTable::fmt(r.amat().total() + walk_add + shootdown_add,
                                    1)});
    }
  }
  std::cout << table.to_string();
  return 0;
}
