// Table I: the probability parameters of the analytic models, extracted per
// workload for both CLOCK-DWF and the proposed scheme. This is the raw
// material every other figure is computed from — printing it makes the
// model's inputs auditable.
#include <iostream>

#include "bench_common.hpp"
#include "model/probabilities.hpp"
#include "sim/figure_schemas.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header("Table I — model probabilities per workload", ctx);

  for (const char* policy : {"clock-dwf", "two-lru"}) {
    std::cout << "--- " << policy << " ---\n";
    TextTable table(sim::table_schema("table1").columns);
    for (const auto& profile : synth::parsec_profiles()) {
      const auto result = bench::run(profile, policy, ctx);
      const auto p = model::probabilities(result.counts);
      if (!p.is_consistent()) {
        std::cerr << "inconsistent probabilities for " << profile.name << "\n";
        return 1;
      }
      table.add_row({profile.name, TextTable::fmt(p.hit_dram, 4),
                     TextTable::fmt(p.hit_nvm, 4), TextTable::fmt(p.miss, 6),
                     TextTable::fmt(p.write_dram, 4),
                     TextTable::fmt(p.write_nvm, 4),
                     TextTable::fmt(p.mig_to_dram, 6),
                     TextTable::fmt(p.mig_to_nvm, 6),
                     TextTable::fmt(p.disk_to_dram, 4)});
    }
    std::cout << table.to_string() << '\n';
  }
  std::cout << "PHitDRAM + PHitNVM + PMiss = 1 verified for every row.\n";
  return 0;
}
