// Ablation A3: migration granularity (the paper's motivation item (c)).
//
// PageFactor = page_size / access_granularity converts one page move into
// device accesses; doubling the page size doubles every migration's cost.
// This sweep quantifies how granularity shifts the migrate-vs-stay
// trade-off the thresholds must navigate.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — page size / migration granularity", ctx);

  for (const char* policy : {"two-lru", "clock-dwf"}) {
    std::cout << "--- " << policy << " on facesim ---\n";
    TextTable table({"page size", "PageFactor", "APPR (nJ)",
                     "migration (nJ)", "AMAT (ns)", "migrations/kacc"});
    const auto& profile = synth::parsec_profile("facesim");
    for (const std::uint64_t page_size :
         {1024ULL, 2048ULL, 4096ULL, 8192ULL, 16384ULL}) {
      sim::ExperimentConfig config;
      config.page_size = page_size;
      const auto result = bench::run(profile, policy, ctx, config);
      const auto power = result.appr();
      table.add_row(
          {std::to_string(page_size / 1024) + "KB",
           std::to_string(result.counts.page_factor),
           TextTable::fmt(power.total(), 2),
           TextTable::fmt(power.migration_nj, 2),
           TextTable::fmt(result.amat().total(), 1),
           TextTable::fmt(1000.0 *
                              static_cast<double>(result.counts.migrations()) /
                              static_cast<double>(result.accesses),
                          2)});
    }
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
