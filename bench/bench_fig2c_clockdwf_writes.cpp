// Figure 2c: physical writes into NVM under CLOCK-DWF (Page Fault vs
// Migration stacks; CLOCK-DWF never serves demand writes from NVM),
// normalized to the total NVM writes of an NVM-only main memory.
//
// Expected shape: migrations contribute most of the writes; several
// workloads exceed the NVM-only total (the paper reports up to 3.7x),
// i.e. CLOCK-DWF can wear NVM out FASTER than running everything in NVM.
#include <iostream>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header("Fig. 2c — CLOCK-DWF NVM writes normalized to NVM-only",
                      ctx);

  sim::FigureTable table = sim::figure_schema("fig2c").make_table();
  for (const auto& profile : synth::parsec_profiles()) {
    const auto base =
        static_cast<double>(bench::run(profile, "nvm-only", ctx)
                                .nvm_writes()
                                .total());
    const auto writes = bench::run(profile, "clock-dwf", ctx).nvm_writes();
    table.add(profile.name,
              {sim::Stack{{static_cast<double>(writes.fault_fill_writes) / base,
                           static_cast<double>(writes.migration_writes) / base,
                           static_cast<double>(writes.demand_writes) / base}}});
  }
  table.print(std::cout);
  if (ctx.csv) table.print_csv(std::cout);
  return 0;
}
