// Figure 1: power breakdown of a DRAM-only main memory with LRU, per
// workload, normalized so each bar sums to 1 (Static / Dynamic / Page Fault).
//
// Expected shape (paper, Section III): static power contributes 60-80% for
// most workloads; streamcluster (large access burst over a tiny footprint)
// is dynamic-dominated; near-idle workloads like blackscholes are
// static-dominated.
#include <iostream>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 1 — DRAM-only power breakdown (normalized per workload)", ctx);

  sim::FigureTable table = sim::figure_schema("fig1").make_table();
  for (const auto& profile : synth::parsec_profiles()) {
    const auto result = bench::run(profile, "dram-only", ctx);
    const auto power = result.appr();
    const double total = power.total();
    table.add(profile.name,
              {sim::Stack{{power.static_nj / total, power.hit_nj / total,
                           power.fault_fill_nj / total}}});
  }
  table.print(std::cout);
  if (ctx.csv) table.print_csv(std::cout);
  return 0;
}
