// Table III: workload characterization — regenerated from the synthetic
// traces themselves (not echoed from the profiles): each trace is generated,
// then measured with the characterization tooling. At scale 1 the numbers
// equal the paper's Table III exactly; at scale N all counts divide by N
// with identical ratios.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"
#include "synth/generator.hpp"
#include "trace/trace_stats.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header("Table III — workload characterization (measured)", ctx);

  TextTable table(sim::table_schema("table3").columns);
  for (const auto& base : synth::parsec_profiles()) {
    const auto profile = base.scaled(ctx.scale);
    synth::GeneratorOptions options;
    options.seed = ctx.seed;
    const auto trace = synth::generate(profile, options);
    const auto stats = trace::characterize(trace, options.page_size);
    table.add_row({profile.name, std::to_string(stats.working_set_kb()),
                   std::to_string(stats.reads), std::to_string(stats.writes),
                   TextTable::fmt(100.0 * stats.read_fraction(), 1),
                   TextTable::fmt(100.0 * stats.write_fraction(), 1),
                   std::to_string(stats.write_dominant_pages)});
    // Cross-check: the measured trace must match the profile's targets.
    if (stats.reads != profile.reads || stats.writes != profile.writes ||
        stats.distinct_pages != profile.footprint_pages(4096)) {
      std::cerr << "MISMATCH for " << profile.name << "\n";
      return 1;
    }
  }
  std::cout << table.to_string();
  std::cout << "\nAll measured columns match the scaled Table III targets.\n";
  return 0;
}
