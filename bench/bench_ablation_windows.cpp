// Ablation A7: the counter windows — the design choice Section IV spends
// most of its space on. Sweeping readperc/writeperc from whole-queue
// counters (1.0/1.0, i.e. no reset-based filtering: the naive scheme whose
// two failure modes the paper describes) down to narrow windows shows how
// the windowing suppresses non-beneficial migrations on churny workloads.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — counter window fractions", ctx);

  for (const char* workload : {"canneal", "raytrace", "facesim"}) {
    std::cout << "--- " << workload << " ---\n";
    TextTable table({"read_perc", "write_perc", "promotions/kacc",
                     "APPR (nJ)", "AMAT (ns)"});
    const auto& profile = synth::parsec_profile(workload);
    struct Windows {
      double read, write;
    };
    for (const Windows w : {Windows{0.02, 0.06}, Windows{0.05, 0.15},
                            Windows{0.10, 0.30}, Windows{0.25, 0.50},
                            Windows{0.50, 0.75}, Windows{1.00, 1.00}}) {
      sim::ExperimentConfig config;
      config.migration.read_perc = w.read;
      config.migration.write_perc = w.write;
      const auto r = bench::run(profile, "two-lru", ctx, config);
      table.add_row(
          {TextTable::fmt(w.read, 2), TextTable::fmt(w.write, 2),
           TextTable::fmt(
               1000.0 * static_cast<double>(r.counts.migrations_to_dram) /
                   static_cast<double>(r.accesses),
               2),
           TextTable::fmt(r.appr().total(), 2),
           TextTable::fmt(r.amat().total(), 1)});
    }
    std::cout << table.to_string() << '\n';
  }
  std::cout << "Whole-queue counters (1.00/1.00) never reset, so"
               " long-resident cold pages\neventually cross any threshold —"
               " the paper's first failure mode.\n";
  return 0;
}
