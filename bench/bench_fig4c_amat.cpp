// Figure 4c: AMAT of the proposed scheme normalized to CLOCK-DWF
// (Read/Write Requests vs Migrations stacks).
//
// Expected shape: below 1.0 almost everywhere (paper: up to 70% better,
// ~48% G-Mean), with the migration contribution under 50% in most
// workloads; raytrace and vips tip towards CLOCK-DWF (the paper's
// threshold-sensitivity discussion).
#include <iostream>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header("Fig. 4c — proposed AMAT normalized to CLOCK-DWF", ctx);

  sim::FigureTable table = sim::figure_schema("fig4c").make_table();
  for (const auto& profile : synth::parsec_profiles()) {
    const double base = bench::run(profile, "clock-dwf", ctx).amat().total();
    const auto amat = bench::run(profile, "two-lru", ctx).amat();
    table.add(profile.name, {sim::Stack{{amat.request_ns() / base,
                                         amat.migration_ns / base}}});
  }
  table.print(std::cout);
  std::cout << "\nproposed / CLOCK-DWF AMAT (G-Mean): "
            << table.geomean_total(0) << "\n";
  if (ctx.csv) table.print_csv(std::cout);
  return 0;
}
