// Figure 4a: power breakdown of CLOCK-DWF (left bar) and the proposed
// scheme (right bar), normalized to DRAM-only power.
//
// Expected shape: the proposed scheme beats CLOCK-DWF on most workloads
// (paper: up to 48% / 14% G-Mean) and cuts total power vs DRAM-only by up
// to ~79% (43% G-Mean); the migration component shrinks by up to ~80%.
// canneal / fluidanimate / streamcluster remain hybrid-hostile; raytrace's
// migration cost exceeds CLOCK-DWF's (its best thresholds differ).
#include <iostream>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 4a — power of CLOCK-DWF vs proposed, normalized to DRAM-only",
      ctx);

  sim::FigureTable table = sim::figure_schema("fig4a").make_table();
  for (const auto& profile : synth::parsec_profiles()) {
    const double base = bench::run(profile, "dram-only", ctx).appr().total();
    std::vector<sim::Stack> stacks;
    for (const char* policy : {"clock-dwf", "two-lru"}) {
      const auto power = bench::run(profile, policy, ctx).appr();
      stacks.push_back(
          sim::Stack{{power.static_nj / base,
                      (power.hit_nj + power.fault_fill_nj) / base,
                      power.migration_nj / base}});
    }
    table.add(profile.name, stacks);
  }
  table.print(std::cout);
  std::cout << "\nproposed / DRAM-only (G-Mean): "
            << table.geomean_total(1)
            << "\nproposed / CLOCK-DWF (G-Mean): "
            << table.geomean_total(1) / table.geomean_total(0) << "\n";
  if (ctx.csv) table.print_csv(std::cout);
  return 0;
}
