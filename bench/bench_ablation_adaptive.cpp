// Ablation A4: adaptive thresholds — the extension the paper flags as
// ongoing research ("using adaptive threshold prediction can further
// improve the efficiency"), motivated by raytrace whose optimal thresholds
// differ from the other workloads'.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/migration_scheme.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — fixed vs adaptive migration thresholds",
                      ctx);

  TextTable table({"workload", "fixed APPR", "adaptive APPR", "fixed AMAT",
                   "adaptive AMAT", "fixed mig/kacc", "adaptive mig/kacc"});
  double fixed_power_gm = 0, adaptive_power_gm = 0;
  int n = 0;
  for (const auto& profile : synth::parsec_profiles()) {
    const auto fixed = bench::run(profile, "two-lru", ctx);
    const auto adaptive = bench::run(profile, "two-lru-adaptive", ctx);
    auto per_kacc = [](const sim::RunResult& r) {
      return 1000.0 * static_cast<double>(r.counts.migrations()) /
             static_cast<double>(r.accesses);
    };
    table.add_row({profile.name, TextTable::fmt(fixed.appr().total(), 2),
                   TextTable::fmt(adaptive.appr().total(), 2),
                   TextTable::fmt(fixed.amat().total(), 1),
                   TextTable::fmt(adaptive.amat().total(), 1),
                   TextTable::fmt(per_kacc(fixed), 2),
                   TextTable::fmt(per_kacc(adaptive), 2)});
    fixed_power_gm += std::log(fixed.appr().total());
    adaptive_power_gm += std::log(adaptive.appr().total());
    ++n;
  }
  std::cout << table.to_string();
  std::cout << "\nG-Mean APPR: fixed " << std::exp(fixed_power_gm / n)
            << " nJ, adaptive " << std::exp(adaptive_power_gm / n) << " nJ\n";
  return 0;
}
