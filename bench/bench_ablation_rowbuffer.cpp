// Ablation A9: how far is Table IV's flat-latency assumption from a banked
// row-buffer device? The paper (like CLOCK-DWF) models each module as one
// latency pair; this harness replays our memory traces through an 8-bank
// open-page model derived from the same technology numbers and reports the
// achieved row-hit ratios and effective average latencies.
#include <iostream>

#include "bench_common.hpp"
#include "mem/bank_model.hpp"
#include "synth/generator.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — flat latency vs banked row-buffer model",
                      ctx);

  TextTable table({"workload", "row hit %", "avg banked latency (ns)",
                   "flat Table IV latency (ns)", "flat / banked"});
  for (const auto& base : synth::parsec_profiles()) {
    const auto profile = base.scaled(ctx.scale);
    synth::GeneratorOptions options;
    options.seed = ctx.seed;
    const auto trace = synth::generate(profile, options);

    // Bank the DRAM side: from_technology targets a 60% row-hit mix.
    mem::BankModel model(
        mem::BankModel::from_technology(mem::dram_table4(), 0.6));
    double flat = 0;
    for (const auto& access : trace) {
      model.access(access.addr, access.type);
      flat += mem::dram_table4().latency(access.type == AccessType::kWrite);
    }
    flat /= static_cast<double>(trace.size());
    const auto& stats = model.stats();
    table.add_row({profile.name,
                   TextTable::fmt(100.0 * stats.row_hit_ratio(), 1),
                   TextTable::fmt(stats.average_latency_ns(), 1),
                   TextTable::fmt(flat, 1),
                   TextTable::fmt(flat / stats.average_latency_ns(), 3)});
  }
  std::cout << table.to_string();
  std::cout << "\nWorkloads with strong spatial locality (scans, bursts) see"
               "\nhigher row-hit ratios and beat the flat assumption; churny"
               "\naccess patterns land close to it — the flat model is a"
               " fair\nmiddle ground for the paper's comparisons.\n";
  return 0;
}
