// Ablation A11: total memory size. The paper fixes memory = 75% of each
// workload's footprint (following CLOCK-DWF); this sweep shows how the
// hybrid advantage moves as memory pressure changes: at 100% the fault/
// demotion machinery goes quiet and static power decides everything; below
// ~60% capacity misses (and the demotion each one forces) start to bury the
// threshold scheme's savings.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — total memory as a fraction of footprint",
                      ctx);

  for (const char* workload : {"facesim", "canneal"}) {
    std::cout << "--- " << workload << " ---\n";
    TextTable table({"memory%", "policy", "miss/kacc", "APPR (nJ)",
                     "AMAT (ns)", "vs dram-only power"});
    const auto& profile = synth::parsec_profile(workload);
    for (const double fraction : {0.55, 0.65, 0.75, 0.85, 0.95}) {
      sim::ExperimentConfig base;
      base.memory_fraction = fraction;
      const double dram_only =
          bench::run(profile, "dram-only", ctx, base).appr().total();
      for (const char* policy : {"clock-dwf", "two-lru"}) {
        const auto r = bench::run(profile, policy, ctx, base);
        table.add_row(
            {TextTable::fmt(100 * fraction, 0), policy,
             TextTable::fmt(1000.0 *
                                static_cast<double>(r.counts.page_faults) /
                                static_cast<double>(r.accesses),
                            3),
             TextTable::fmt(r.appr().total(), 2),
             TextTable::fmt(r.amat().total(), 1),
             TextTable::fmt(r.appr().total() / dram_only, 3)});
      }
    }
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
