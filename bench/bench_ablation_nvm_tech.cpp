// Ablation A6: NVM technology sensitivity. Table IV fixes PCM; the paper's
// introduction names STT-RAM and resistive RAM as the other candidates.
// Re-running the comparison with their parameter sets shows how the
// migrate-vs-serve trade-off shifts when NVM writes get cheaper: the closer
// the NVM is to DRAM, the less migration (and the less DRAM) pays.
#include <iostream>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — NVM technology sensitivity", ctx);

  for (const mem::MemTechnology* nvm :
       {&mem::pcm_table4(), &mem::stt_ram(), &mem::rram()}) {
    std::cout << "--- NVM = " << nvm->name << " (" << nvm->read_latency_ns
              << "/" << nvm->write_latency_ns << " ns, "
              << nvm->read_energy_nj << "/" << nvm->write_energy_nj
              << " nJ) ---\n";
    TextTable table({"workload", "policy", "APPR (nJ)", "AMAT (ns)",
                     "vs dram-only power"});
    for (const char* workload : {"facesim", "ferret", "vips"}) {
      const auto& profile = synth::parsec_profile(workload);
      sim::ExperimentConfig base;
      base.nvm = *nvm;
      const double dram_only =
          bench::run(profile, "dram-only", ctx, base).appr().total();
      for (const char* policy : {"clock-dwf", "two-lru"}) {
        const auto r = bench::run(profile, policy, ctx, base);
        table.add_row({workload, policy, TextTable::fmt(r.appr().total(), 2),
                       TextTable::fmt(r.amat().total(), 1),
                       TextTable::fmt(r.appr().total() / dram_only, 3)});
      }
    }
    std::cout << table.to_string() << '\n';
  }
  return 0;
}
