// Figure 2b: CLOCK-DWF AMAT (Read/Write Requests vs Migrations stacks)
// normalized to the DRAM-only AMAT of the same workload.
//
// Expected shape: migrations contribute the majority of CLOCK-DWF's AMAT in
// most workloads; totals are well above 1.0 (the paper reports outliers past
// 10x for the churny workloads).
#include <iostream>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header("Fig. 2b — CLOCK-DWF AMAT normalized to DRAM-only", ctx);

  sim::FigureTable table = sim::figure_schema("fig2b").make_table();
  for (const auto& profile : synth::parsec_profiles()) {
    const auto base = bench::run(profile, "dram-only", ctx).amat().total();
    const auto amat = bench::run(profile, "clock-dwf", ctx).amat();
    table.add(profile.name, {sim::Stack{{amat.request_ns() / base,
                                         amat.migration_ns / base}}});
  }
  table.print(std::cout);
  if (ctx.csv) table.print_csv(std::cout);
  return 0;
}
