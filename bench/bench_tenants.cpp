// Multi-tenant serving harness: replays interleaved tenant-churn streams
// through a TenantGroup and reports fairness and isolation per arbitration
// mode.
//
//   $ bench_tenants [--scale 8] [--seed 42] [--jobs N] [--timeline PATH]
//
// Two scenarios (see src/synth/tenant_stream):
//   * kv-churn        — GUPS/Zipf-KV tenants with scheduled departures,
//     re-arrivals and a flash crowd; the victim (tenant 0) stays admitted
//     throughout so its hot-set retention is always defined.
//   * scan-antagonist — a steady four-tenant mix where tenant 1 is a
//     sequential scanner with double the request rate: the classic
//     isolation attack against tenant 0's GUPS hot set.
//
// Each scenario runs over a (policy x budget-mode x shard-count) grid, and
// every cell also replays a victim-only solo stream under the same group
// configuration: victim_retention_solo is the no-competition baseline, so
// retention_delta = solo - mixed is the isolation cost of sharing.
//
// Emits the "tenant-fairness" CSV (see sim/figure_schemas) on stdout, one
// row per cell in fixed grid order; --timeline PATH writes the spliced
// "tenant-timeline" per-epoch CSV. Stdout and the timeline file are
// byte-identical for every --jobs value: cells are independent
// deterministic replays fanned out over a pool, written back by index.
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "model/endurance_model.hpp"
#include "sim/figure_schemas.hpp"
#include "synth/tenant_stream.hpp"
#include "tenant/tenant_group.hpp"
#include "util/csv.hpp"

using namespace hymem;

namespace {

std::string fmt_double(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

std::string u64(std::uint64_t value) { return std::to_string(value); }

struct Scenario {
  synth::TenantChurnSpec mixed;
  synth::TenantChurnSpec solo;  ///< Victim-only baseline, same seed.
};

synth::TenantChurnSpec solo_of(const synth::TenantChurnSpec& mixed) {
  synth::TenantChurnSpec solo;
  solo.name = mixed.name + "-solo";
  solo.tenants = {mixed.tenants.front()};
  solo.initial_active = 1;
  // Roughly the victim's share of the mixed stream: enough to populate the
  // hot set, cheap enough to ride along in every cell.
  solo.total_accesses = mixed.total_accesses / 4;
  solo.seed = mixed.seed;
  return solo;
}

std::vector<Scenario> make_scenarios(std::uint64_t accesses,
                                     std::uint64_t seed) {
  std::vector<Scenario> scenarios;

  // kv-churn: victim + KV/GUPS mix with scripted churn. Only scheduled
  // events and the flash crowd move tenants, so the victim never departs
  // and the stream is readable from the spec alone.
  {
    synth::TenantChurnSpec spec;
    spec.name = "kv-churn";
    spec.tenants = {
        {synth::TenantWorkloadKind::kGupsHotset, 64, 0.25, 0.9, 0.99, 0.25, 1},
        {synth::TenantWorkloadKind::kZipfKv, 192, 0.1, 0.9, 0.99, 0.1, 1},
        {synth::TenantWorkloadKind::kZipfKv, 128, 0.1, 0.9, 1.1, 0.3, 1},
        {synth::TenantWorkloadKind::kGupsHotset, 96, 0.1, 0.8, 0.99, 0.5, 1},
        {synth::TenantWorkloadKind::kZipfKv, 160, 0.1, 0.9, 0.8, 0.1, 1},
        {synth::TenantWorkloadKind::kZipfKv, 96, 0.1, 0.9, 0.99, 0.1, 1},
    };
    spec.total_accesses = accesses;
    spec.initial_active = 3;
    spec.rearrival = true;
    spec.schedule = {
        {accesses * 3 / 10, 1, false},  // t1 departs
        {accesses * 4 / 10, 3, true},   // t3 arrives
        {accesses * 55 / 100, 2, false},  // t2 departs
    };
    spec.flash_at = accesses * 7 / 10;
    spec.flash_arrivals = 3;  // t4, t5, then t1 re-arrives.
    spec.seed = seed;
    scenarios.push_back({spec, solo_of(spec)});
  }

  // scan-antagonist: steady membership, tenant 1 sweeps a footprint ~5x the
  // DRAM budget at double rate. Isolation shows up as the victim keeping
  // (or losing) its hot set.
  {
    synth::TenantChurnSpec spec;
    spec.name = "scan-antagonist";
    spec.tenants = {
        {synth::TenantWorkloadKind::kGupsHotset, 64, 0.25, 0.95, 0.99, 0.2, 1},
        {synth::TenantWorkloadKind::kScan, 512, 0.05, 0.9, 0.99, 0.2, 2},
        {synth::TenantWorkloadKind::kZipfKv, 128, 0.1, 0.9, 0.99, 0.1, 1},
        {synth::TenantWorkloadKind::kZipfKv, 96, 0.1, 0.9, 0.99, 0.1, 1},
    };
    spec.total_accesses = accesses;
    spec.initial_active = 4;
    spec.seed = seed;
    scenarios.push_back({spec, solo_of(spec)});
  }
  return scenarios;
}

struct Cell {
  const Scenario* scenario = nullptr;
  tenant::TenantGroupConfig config;
};

struct CellOutput {
  bool ok = false;
  std::string error;
  tenant::TenantGroupResult result;
  double victim_retention = 0.0;
  double victim_retention_solo = 0.0;
};

/// Replays a stream op-by-op (run() would too, but the retention probe must
/// land before finish() tears the epoch state down).
tenant::TenantGroupResult replay(const synth::TenantStream& stream,
                                 const tenant::TenantGroupConfig& config,
                                 double* victim_retention) {
  tenant::TenantGroup group(config);
  for (const synth::TenantOp& op : stream.ops) {
    switch (op.kind) {
      case synth::TenantOp::Kind::kArrive: group.arrive(op.tenant); break;
      case synth::TenantOp::Kind::kDepart: group.depart(op.tenant); break;
      default: group.serve(op.tenant, op.access); break;
    }
  }
  const std::vector<PageId> hot = stream.hot_pages(0);
  *victim_retention = group.hot_set_dram_retention(0, hot);
  return group.finish(stream.name);
}

CellOutput run_cell(const Cell& cell) {
  CellOutput out;
  try {
    const synth::TenantStream mixed =
        synth::generate_tenant_stream(cell.scenario->mixed);
    out.result = replay(mixed, cell.config, &out.victim_retention);
    const synth::TenantStream solo =
        synth::generate_tenant_stream(cell.scenario->solo);
    tenant::TenantGroupConfig solo_config = cell.config;
    solo_config.epoch_accesses = 0;  // Only the mixed run feeds the timeline.
    (void)replay(solo, solo_config, &out.victim_retention_solo);
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/8);
  const std::uint64_t accesses =
      std::max<std::uint64_t>(160000 / std::max<std::uint64_t>(ctx.scale, 1),
                              2000);
  const auto scenarios = make_scenarios(accesses, ctx.seed);

  // The grid, in output order: scenario-major, then policy, then
  // (budget mode, shard count). kSharedQueue runs one instance by
  // definition, so it appears once.
  const std::vector<std::string> policies = {"two-lru", "clock-dwf"};
  const std::vector<std::pair<tenant::BudgetMode, unsigned>> modes = {
      {tenant::BudgetMode::kStaticEqual, 1},
      {tenant::BudgetMode::kStaticEqual, 2},
      {tenant::BudgetMode::kDemandProportional, 1},
      {tenant::BudgetMode::kDemandProportional, 2},
      {tenant::BudgetMode::kSharedQueue, 1},
  };
  std::vector<Cell> cells;
  for (const Scenario& scenario : scenarios) {
    for (const std::string& policy : policies) {
      for (const auto& [mode, shards] : modes) {
        Cell cell;
        cell.scenario = &scenario;
        cell.config.policy = policy;
        cell.config.budget_mode = mode;
        cell.config.shards = shards;
        cell.config.dram_frames = 96;
        cell.config.nvm_frames = 768;
        cell.config.rebalance_period = 2048;
        if (!ctx.timeline.empty()) {
          cell.config.epoch_accesses = ctx.timeline_epoch;
        }
        cells.push_back(std::move(cell));
      }
    }
  }

  // Fan the cells out; outputs land by index so stdout order (and bytes)
  // never depends on --jobs.
  std::vector<CellOutput> outputs(cells.size());
  {
    runner::ThreadPool pool(std::max(1u, ctx.jobs));
    for (std::size_t i = 0; i < cells.size(); ++i) {
      pool.submit([&cells, &outputs, i] { outputs[i] = run_cell(cells[i]); });
    }
    pool.wait_idle();
  }

  CsvWriter csv(std::cout);
  csv.write_row(sim::table_schema("tenant-fairness").columns);
  unsigned failures = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const CellOutput& out = outputs[i];
    if (!out.ok) {
      ++failures;
      std::cerr << "FAILED " << cell.scenario->mixed.name << "/"
                << cell.config.policy << "/"
                << tenant::to_string(cell.config.budget_mode) << "/s"
                << cell.config.shards << ": " << out.error << "\n";
      continue;
    }
    const auto& r = out.result;
    csv.write_row(
        {r.workload, r.policy, tenant::to_string(cell.config.budget_mode),
         u64(cell.config.shards), u64(r.tenants.size()), u64(ctx.seed),
         u64(r.accesses), fmt_double(r.amat().total()),
         fmt_double(r.fairness.amat_p50_ns), fmt_double(r.fairness.amat_p95_ns),
         fmt_double(r.fairness.amat_p99_ns), fmt_double(r.fairness.jain_index),
         fmt_double(out.victim_retention),
         fmt_double(out.victim_retention_solo),
         fmt_double(out.victim_retention_solo - out.victim_retention),
         u64(model::nvm_writes(r.totals).total()), u64(r.reconfigurations),
         u64(r.reconfig_evictions), fmt_double(r.visible_latency_ns)});
  }

  if (!ctx.timeline.empty()) {
    std::ofstream timeline(ctx.timeline, std::ios::binary);
    if (!timeline) {
      std::cerr << "cannot open --timeline path: " << ctx.timeline << "\n";
      return 1;
    }
    CsvWriter rows(timeline);
    rows.write_row(sim::table_schema("tenant-timeline").columns);
    std::size_t count = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      const CellOutput& out = outputs[i];
      if (!out.ok) continue;
      for (const tenant::TenantEpochRecord& e : out.result.timeline) {
        rows.write_row({out.result.workload, out.result.policy,
                        tenant::to_string(cell.config.budget_mode),
                        u64(cell.config.shards), u64(e.epoch),
                        u64(e.end_access), u64(e.active_tenants),
                        u64(e.arrivals), u64(e.departures),
                        fmt_double(e.amat_total_ns),
                        fmt_double(e.fairness.amat_p95_ns),
                        fmt_double(e.fairness.jain_index),
                        u64(e.dram_resident), u64(e.nvm_resident),
                        u64(e.reconfigurations)});
        ++count;
      }
    }
    std::cerr << "tenant-timeline: " << count << " epoch rows (epoch "
              << ctx.timeline_epoch << ") -> " << ctx.timeline << "\n";
  }

  std::cerr << "tenants: " << cells.size() << " cells, "
            << std::max(1u, ctx.jobs) << " worker(s)\n";
  return failures == 0 ? 0 : 1;
}
