// Figure 4b: physical NVM writes of CLOCK-DWF (left) and the proposed
// scheme (right), broken down by source and normalized to NVM-only.
//
// Expected shape: the proposed scheme slashes NVM writes versus CLOCK-DWF
// (paper: up to 93%) and stays clearly below the NVM-only total (up to 75%,
// ~49% G-Mean reduction); unlike CLOCK-DWF, part of its writes are demand
// writes served by NVM directly (the scheme's deliberate trade-off).
// streamcluster and vips lean slightly towards CLOCK-DWF.
#include <iostream>

#include "bench_common.hpp"
#include "sim/figure_schemas.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv);
  bench::print_header(
      "Fig. 4b — NVM writes of CLOCK-DWF vs proposed, normalized to NVM-only",
      ctx);

  sim::FigureTable table = sim::figure_schema("fig4b").make_table();
  for (const auto& profile : synth::parsec_profiles()) {
    const auto base =
        static_cast<double>(bench::run(profile, "nvm-only", ctx)
                                .nvm_writes()
                                .total());
    std::vector<sim::Stack> stacks;
    for (const char* policy : {"clock-dwf", "two-lru"}) {
      const auto writes = bench::run(profile, policy, ctx).nvm_writes();
      stacks.push_back(sim::Stack{
          {static_cast<double>(writes.fault_fill_writes) / base,
           static_cast<double>(writes.migration_writes) / base,
           static_cast<double>(writes.demand_writes) / base}});
    }
    table.add(profile.name, stacks);
  }
  table.print(std::cout);
  std::cout << "\nproposed / NVM-only (G-Mean): " << table.geomean_total(1)
            << "\nproposed / CLOCK-DWF (G-Mean): "
            << table.geomean_total(1) / table.geomean_total(0) << "\n";
  if (ctx.csv) table.print_csv(std::cout);
  return 0;
}
