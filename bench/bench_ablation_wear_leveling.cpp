// Ablation A8: Start-Gap wear leveling under the proposed scheme. The
// paper's endurance story counts total NVM writes; this harness shows the
// *distribution*: without leveling, demand-write hot spots age single
// frames far faster than the average.
#include <iostream>

#include "bench_common.hpp"
#include "sim/policy_factory.hpp"
#include "synth/generator.hpp"
#include "trace/trace_stats.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const auto ctx = bench::parse_args(argc, argv, /*default_scale=*/128);
  bench::print_header("Ablation — Start-Gap wear leveling on the NVM module",
                      ctx);

  TextTable table({"workload", "leveling", "NVM writes", "max frame wear",
                   "wear imbalance (max/mean)"});
  for (const char* workload : {"facesim", "vips", "x264"}) {
    const auto profile = synth::parsec_profile(workload).scaled(ctx.scale);
    synth::GeneratorOptions options;
    options.seed = ctx.seed;
    const auto trace = synth::generate(profile, options);
    const auto footprint =
        trace::characterize(trace, options.page_size).distinct_pages;
    for (const bool leveling : {false, true}) {
      sim::ExperimentConfig config;
      config.policy = "two-lru";
      config.wear_leveling = leveling;
      const auto sizing = sim::size_memory(footprint, config);
      os::VmmConfig vmm_config;
      vmm_config.dram_frames = sizing.dram_frames;
      vmm_config.nvm_frames = sizing.nvm_frames;
      vmm_config.wear_leveling = leveling;
      vmm_config.wear_gap_interval = 1;
      os::Vmm vmm(vmm_config);
      const auto policy = sim::make_policy(config.policy, vmm);
      // Wear leveling acts over device lifetimes: one gap cycle needs
      // ~nvm_frames page writes, so replay the trace for several rounds to
      // let the remapping sweep the address space.
      constexpr int kRounds = 16;
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& access : trace) {
          policy->on_access(trace::page_of(access.addr, 4096), access.type);
        }
      }
      const auto& wear = vmm.nvm_endurance();
      table.add_row({workload, leveling ? "start-gap" : "none",
                     std::to_string(wear.total_writes()),
                     std::to_string(wear.max_wear()),
                     TextTable::fmt(wear.wear_imbalance(), 2)});
    }
  }
  std::cout << table.to_string();
  std::cout << "\nStart-Gap leaves the write total untouched but spreads it"
               ":\nthe max/mean imbalance — which is what actually kills a"
               " PCM device —\ndrops towards 1.\n";
  return 0;
}
