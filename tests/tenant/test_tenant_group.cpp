// TenantGroup structure: page-ID namespacing, budget-mode parsing, config
// validation (including the pinned tenant-mode policy restriction), budget
// conservation under fuzzed churn in both arbitration modes, attribution
// conservation, and departed-tenant teardown.
#include "tenant/tenant_group.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "check/fuzzer.hpp"
#include "check/tenant_invariants.hpp"
#include "sim/policy_factory.hpp"
#include "synth/tenant_stream.hpp"

namespace hymem::tenant {
namespace {

TenantGroupConfig small_config() {
  TenantGroupConfig config;
  config.dram_frames = 16;
  config.nvm_frames = 48;
  return config;
}

trace::MemAccess read_of(PageId local, std::uint64_t page_size) {
  return {local * page_size, AccessType::kRead};
}

TEST(TenantNamespacing, RoundTripsAndTenantZeroIsIdentity) {
  EXPECT_EQ(namespaced_page(0, 12345), 12345u);
  const PageId page = namespaced_page(7, 42);
  EXPECT_EQ(tenant_of_page(page), 7u);
  EXPECT_EQ(local_page(page), 42u);
  EXPECT_NE(namespaced_page(1, 0), namespaced_page(2, 0));
  // Distinct namespaces can never collide: the tenant bits sit above the
  // largest legal local page.
  EXPECT_EQ(tenant_of_page(namespaced_page(3, kTenantPageMask)), 3u);
}

TEST(TenantNamespacing, RejectsOverflow) {
  EXPECT_THROW(namespaced_page(0, kTenantPageMask + 1), std::invalid_argument);
  EXPECT_THROW(namespaced_page(kMaxTenants, 0), std::invalid_argument);
}

TEST(BudgetModeNames, RoundTrip) {
  for (const BudgetMode mode :
       {BudgetMode::kStaticEqual, BudgetMode::kDemandProportional,
        BudgetMode::kSharedQueue}) {
    EXPECT_EQ(parse_budget_mode(to_string(mode)), mode);
  }
  EXPECT_THROW(parse_budget_mode("round-robin"), std::invalid_argument);
}

TEST(TenantGroupConfigValidation, RejectsBadShapes) {
  TenantGroupConfig config = small_config();
  config.shards = 0;
  EXPECT_THROW(TenantGroup{config}, std::invalid_argument);
  config = small_config();
  config.dram_frames = 0;
  config.nvm_frames = 0;
  EXPECT_THROW(TenantGroup{config}, std::invalid_argument);
  config = small_config();
  config.access_granularity = 100;  // not a divisor of the page size
  EXPECT_THROW(TenantGroup{config}, std::invalid_argument);
}

// The tenant-mode policy restriction: sampled policies keep per-run global
// structures (hotness tap, background migrator) and cannot be split across
// a group's shards. The message must say who rejected it and enumerate
// every name that would have worked.
TEST(TenantGroupConfigValidation, UnshardablePolicyErrorEnumeratesSupport) {
  TenantGroupConfig config = small_config();
  config.policy = "sampled-lru";
  try {
    TenantGroup group(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("tenant groups does not support policy: sampled-lru"),
              std::string::npos)
        << msg;
    for (const auto& name : sim::shardable_policy_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name;
    }
  }
}

TEST(TenantGroup, SharedQueueForcesOneShard) {
  TenantGroupConfig config = small_config();
  config.budget_mode = BudgetMode::kSharedQueue;
  config.shards = 4;
  TenantGroup group(config);
  EXPECT_EQ(group.shard_count(), 1u);
}

// Budget conservation under fuzzed churn, both arbitration modes, with the
// full structural audit (check/tenant_invariants) after every operation:
// per-shard slices always sum to the shared budget, residency never
// exceeds a slice, and every resident page has exactly one owner.
TEST(TenantGroup, BudgetConservedUnderFuzzedChurnStaticAndDemand) {
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t seed = 0xb0d6e7 + i;
    check::TenantFuzzCase fuzz = check::make_tenant_fuzz_case(seed, 600);
    for (const BudgetMode mode :
         {BudgetMode::kStaticEqual, BudgetMode::kDemandProportional}) {
      fuzz.group.budget_mode = mode;
      const synth::TenantStream stream =
          synth::generate_tenant_stream(fuzz.spec);
      TenantGroup group(fuzz.group);
      check::install_invariant_hook(group);
      try {
        (void)group.run(stream);
      } catch (const std::logic_error& e) {
        FAIL() << fuzz.describe() << " mode " << to_string(mode) << ": "
               << e.what();
      }
    }
  }
}

TEST(TenantGroup, AttributionSumsToTotals) {
  TenantGroupConfig config = small_config();
  config.shards = 2;
  TenantGroup group(config);
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint32_t tenant = 0; tenant < 3; ++tenant) {
      for (PageId p = 0; p < 20; ++p) {
        group.serve(tenant, read_of(p + round, config.page_size));
      }
    }
  }
  group.depart(1);
  const TenantGroupResult result = group.finish("attribution");
  ASSERT_EQ(result.tenants.size(), 3u);
  model::EventCounts sum;
  for (const TenantCounters& t : result.tenants) {
    sum.accesses += t.counts.accesses;
    sum.page_faults += t.counts.page_faults;
    sum.dram_read_hits += t.counts.dram_read_hits;
    sum.nvm_read_hits += t.counts.nvm_read_hits;
    sum.migrations_to_dram += t.counts.migrations_to_dram;
    sum.migrations_to_nvm += t.counts.migrations_to_nvm;
    sum.dirty_evictions += t.counts.dirty_evictions;
  }
  EXPECT_EQ(sum.accesses, result.totals.accesses);
  EXPECT_EQ(sum.page_faults, result.totals.page_faults);
  EXPECT_EQ(sum.dram_read_hits, result.totals.dram_read_hits);
  EXPECT_EQ(sum.nvm_read_hits, result.totals.nvm_read_hits);
  EXPECT_EQ(sum.migrations_to_dram, result.totals.migrations_to_dram);
  EXPECT_EQ(sum.migrations_to_nvm, result.totals.migrations_to_nvm);
  EXPECT_EQ(sum.dirty_evictions, result.totals.dirty_evictions);
  EXPECT_EQ(result.accesses, 180u);
}

TEST(TenantGroup, DepartedTenantsHoldNoPages) {
  TenantGroupConfig config = small_config();
  TenantGroup group(config);
  for (PageId p = 0; p < 10; ++p) {
    group.serve(0, read_of(p, config.page_size));
    group.serve(1, read_of(p, config.page_size));
  }
  EXPECT_GT(group.resident_pages(1, Tier::kDram) +
                group.resident_pages(1, Tier::kNvm),
            0u);
  group.depart(1);
  EXPECT_FALSE(group.is_active(1));
  EXPECT_EQ(group.resident_pages(1, Tier::kDram), 0u);
  EXPECT_EQ(group.resident_pages(1, Tier::kNvm), 0u);
  // The survivor was flushed as collateral (same shard) but is rebuilt and
  // keeps serving; its eviction cost is on the ledger.
  const TenantGroupResult result = group.finish("depart");
  EXPECT_GT(result.reconfig_evictions, 0u);
  EXPECT_GT(result.reconfigurations, 0u);
}

TEST(TenantGroup, FinishIsOneShot) {
  TenantGroupConfig config = small_config();
  TenantGroup group(config);
  group.serve(0, read_of(0, config.page_size));
  (void)group.finish("once");
  EXPECT_THROW(group.finish("twice"), std::logic_error);
  EXPECT_THROW(group.serve(0, read_of(1, config.page_size)),
               std::logic_error);
}

TEST(TenantGroup, EpochTimelineRecordsChurn) {
  TenantGroupConfig config = small_config();
  config.epoch_accesses = 16;
  TenantGroup group(config);
  for (PageId p = 0; p < 24; ++p) group.serve(0, read_of(p, config.page_size));
  group.serve(1, read_of(0, config.page_size));
  group.depart(1);
  for (PageId p = 0; p < 8; ++p) group.serve(0, read_of(p, config.page_size));
  const TenantGroupResult result = group.finish("timeline");
  ASSERT_GE(result.timeline.size(), 2u);
  EXPECT_EQ(result.timeline[0].end_access, 16u);
  EXPECT_EQ(result.timeline[0].arrivals, 1u);  // tenant 0 auto-admission
  std::uint64_t arrivals = 0, departures = 0, delta_accesses = 0;
  for (const TenantEpochRecord& e : result.timeline) {
    arrivals += e.arrivals;
    departures += e.departures;
    delta_accesses += e.delta.accesses;
  }
  EXPECT_EQ(arrivals, 2u);
  EXPECT_EQ(departures, 1u);
  EXPECT_EQ(delta_accesses, result.accesses);  // epochs tile the run
}

TEST(TenantGroup, CountersThrowForUnknownTenants) {
  TenantGroupConfig config = small_config();
  TenantGroup group(config);
  group.serve(3, read_of(0, config.page_size));
  EXPECT_EQ(group.counters(3).counts.accesses, 1u);
  EXPECT_THROW(group.counters(4), std::invalid_argument);
}

}  // namespace
}  // namespace hymem::tenant
