// The 1-tenant parity canary: a TenantGroup serving exactly one tenant
// (id 0, whose namespace is the identity) must reproduce the plain engine
// byte for byte — same event counts, same visible latency, same AMAT — for
// every budget mode and shard count. This is what makes the multi-tenant
// layer a strict generalization rather than a fork of the engine.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/policy_factory.hpp"
#include "synth/tenant_stream.hpp"
#include "tenant/tenant_group.hpp"
#include "trace/trace.hpp"

namespace hymem::tenant {
namespace {

synth::TenantStream one_tenant_stream(std::uint64_t accesses) {
  synth::TenantChurnSpec spec;
  spec.name = "solo";
  spec.tenants = {
      {synth::TenantWorkloadKind::kZipfKv, 96, 0.1, 0.9, 0.99, 0.3, 1}};
  spec.total_accesses = accesses;
  spec.initial_active = 1;
  spec.seed = 11;
  return synth::generate_tenant_stream(spec);
}

trace::Trace to_trace(const synth::TenantStream& stream) {
  trace::Trace t(stream.name);
  for (const synth::TenantOp& op : stream.ops) {
    if (op.kind == synth::TenantOp::Kind::kAccess) t.append(op.access);
  }
  return t;
}

void expect_counts_equal(const model::EventCounts& a,
                         const model::EventCounts& b,
                         const std::string& what) {
  EXPECT_EQ(a.accesses, b.accesses) << what;
  EXPECT_EQ(a.dram_read_hits, b.dram_read_hits) << what;
  EXPECT_EQ(a.dram_write_hits, b.dram_write_hits) << what;
  EXPECT_EQ(a.nvm_read_hits, b.nvm_read_hits) << what;
  EXPECT_EQ(a.nvm_write_hits, b.nvm_write_hits) << what;
  EXPECT_EQ(a.page_faults, b.page_faults) << what;
  EXPECT_EQ(a.fills_to_dram, b.fills_to_dram) << what;
  EXPECT_EQ(a.fills_to_nvm, b.fills_to_nvm) << what;
  EXPECT_EQ(a.migrations_to_dram, b.migrations_to_dram) << what;
  EXPECT_EQ(a.migrations_to_nvm, b.migrations_to_nvm) << what;
  EXPECT_EQ(a.dirty_evictions, b.dirty_evictions) << what;
  EXPECT_EQ(a.page_factor, b.page_factor) << what;
}

TEST(TenantParity, OneTenantMatchesThePlainEngineByteForByte) {
  const synth::TenantStream stream = one_tenant_stream(4000);
  const trace::Trace trace = to_trace(stream);

  for (const std::string& policy : {std::string("two-lru"),
                                    std::string("clock-dwf"),
                                    std::string("dram-cache")}) {
    // Plain engine reference at the full budget.
    os::VmmConfig vc;
    vc.dram_frames = 24;
    vc.nvm_frames = 120;
    os::Vmm vmm(vc);
    const auto plain_policy = sim::make_policy(policy, vmm);
    const sim::RunResult plain = sim::run_trace(*plain_policy, trace, 1.0);

    // A single tenant owns the whole budget under every mode and any shard
    // count: unpopulated shards get zero frames, so the tenant's shard is
    // the plain engine's exact shape.
    for (const BudgetMode mode :
         {BudgetMode::kStaticEqual, BudgetMode::kDemandProportional,
          BudgetMode::kSharedQueue}) {
      for (const unsigned shards : {1u, 2u, 3u}) {
        TenantGroupConfig config;
        config.policy = policy;
        config.budget_mode = mode;
        config.shards = shards;
        config.dram_frames = 24;
        config.nvm_frames = 120;
        config.rebalance_period = 512;
        TenantGroup group(config);
        const TenantGroupResult result = group.run(stream);

        const std::string what = policy + "/" + to_string(mode) + "/s" +
                                 std::to_string(shards);
        expect_counts_equal(result.totals, plain.counts, what);
        ASSERT_EQ(result.tenants.size(), 1u) << what;
        expect_counts_equal(result.tenants[0].counts, plain.counts, what);
        EXPECT_EQ(result.visible_latency_ns, plain.visible_latency_ns)
            << what;
        EXPECT_EQ(result.amat().total(), plain.amat().total()) << what;
        EXPECT_EQ(result.reconfig_evictions, 0u) << what;
      }
    }
  }
}

}  // namespace
}  // namespace hymem::tenant
