// The isolation property: a scan antagonist in its own statically
// partitioned shard cannot touch the victim's hot set, while the
// shared-queue mode (one policy instance, everyone in the same queues)
// exposes the victim to the scan's evictions. This is the serving-system
// claim behind the retention_delta column of bench_tenants.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "tenant/tenant_group.hpp"
#include "trace/access.hpp"

namespace hymem::tenant {
namespace {

constexpr std::uint64_t kDram = 32;
constexpr std::uint64_t kNvm = 96;
constexpr PageId kHotPages = 12;

TenantGroupConfig config_for(BudgetMode mode) {
  TenantGroupConfig config;
  config.policy = "clock-dwf";
  config.budget_mode = mode;
  config.shards = mode == BudgetMode::kSharedQueue ? 1 : 2;
  config.dram_frames = kDram;
  config.nvm_frames = kNvm;
  return config;
}

/// An antagonist id hashing to a different shard than victim 0 under the
/// 2-shard split (the hash is fixed, so this is a deterministic search).
std::optional<std::uint32_t> antagonist_id(const TenantGroup& group) {
  for (std::uint32_t id = 1; id < 16; ++id) {
    if (group.shard_of(id) != group.shard_of(0)) return id;
  }
  return std::nullopt;
}

void warm_victim(TenantGroup& group, std::uint64_t page_size) {
  for (int round = 0; round < 12; ++round) {
    for (PageId p = 0; p < kHotPages; ++p) {
      group.serve(0, {p * page_size, AccessType::kRead});
      group.serve(0, {p * page_size, AccessType::kWrite});
    }
  }
}

void antagonist_scan(TenantGroup& group, std::uint32_t antagonist,
                     std::uint64_t page_size) {
  // A write scan: CLOCK-DWF steers write-faulted pages into DRAM, so the
  // sweep contends for exactly the frames the victim's hot set occupies.
  for (PageId p = 0; p < 8 * kDram; ++p) {
    group.serve(antagonist, {p * page_size, AccessType::kWrite});
  }
}

std::vector<PageId> hot_set() {
  std::vector<PageId> hot(kHotPages);
  for (PageId p = 0; p < kHotPages; ++p) hot[p] = p;
  return hot;
}

TEST(TenantIsolation, StaticPartitionShieldsTheVictimFromAScan) {
  TenantGroup group(config_for(BudgetMode::kStaticEqual));
  const auto antagonist = antagonist_id(group);
  ASSERT_TRUE(antagonist.has_value()) << "no id hashes off the victim shard";
  const std::uint64_t page_size = group.config().page_size;

  // Admit both first so the victim warms at its steady-state (half) slice —
  // the antagonist's later arrival would otherwise repartition and flush.
  group.arrive(0);
  group.arrive(*antagonist);
  warm_victim(group, page_size);
  const double before = group.hot_set_dram_retention(0, hot_set());
  ASSERT_EQ(before, 1.0);  // 12 hot pages fit the victim's 16-frame slice

  antagonist_scan(group, *antagonist, page_size);
  const double after = group.hot_set_dram_retention(0, hot_set());
  // Different shard, untouched queues: the scan cannot move one victim page.
  EXPECT_EQ(after, before);
}

TEST(TenantIsolation, SharedQueueLeaksTheScanIntoTheVictim) {
  TenantGroup group(config_for(BudgetMode::kSharedQueue));
  const std::uint64_t page_size = group.config().page_size;
  group.arrive(0);
  group.arrive(1);
  warm_victim(group, page_size);
  const double before = group.hot_set_dram_retention(0, hot_set());
  ASSERT_EQ(before, 1.0);  // the whole budget is the victim's while idle

  antagonist_scan(group, 1, page_size);
  const double after = group.hot_set_dram_retention(0, hot_set());
  // One policy instance, one set of queues: a scan 8x the DRAM budget
  // evicts the victim's idle hot set.
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace hymem::tenant
