#include "tenant/fairness.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hymem::tenant {
namespace {

TEST(JainFairness, KnownValues) {
  EXPECT_EQ(jain_fairness({}), 0.0);
  const std::vector<double> equal = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_fairness(equal), 1.0);
  const std::vector<double> single = {3.0};
  EXPECT_DOUBLE_EQ(jain_fairness(single), 1.0);
  // One tenant dominating n drives the index toward 1/n.
  const std::vector<double> skewed = {100.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(skewed), 0.25);
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42
  const std::vector<double> mixed = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(jain_fairness(mixed), 36.0 / 42.0);
}

TEST(JainFairness, AllZeroSampleIsPerfectlyFair) {
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

TEST(SummarizeFairness, EmptyReturnsZeroSummary) {
  const FairnessSummary s = summarize_fairness({});
  EXPECT_EQ(s.tenants, 0u);
  EXPECT_EQ(s.amat_p50_ns, 0.0);
  EXPECT_EQ(s.amat_p99_ns, 0.0);
  EXPECT_EQ(s.jain_index, 0.0);
}

TEST(SummarizeFairness, PercentilesAreOrderedAndWithinRange) {
  const std::vector<double> amats = {10.0, 20.0, 30.0, 40.0, 1000.0};
  const FairnessSummary s = summarize_fairness(amats);
  EXPECT_EQ(s.tenants, 5u);
  EXPECT_LE(s.amat_p50_ns, s.amat_p95_ns);
  EXPECT_LE(s.amat_p95_ns, s.amat_p99_ns);
  EXPECT_GE(s.amat_p50_ns, 10.0);
  EXPECT_LE(s.amat_p99_ns, 1000.0);
  EXPECT_DOUBLE_EQ(s.amat_p50_ns, 30.0);
  EXPECT_GT(s.jain_index, 0.0);
  EXPECT_LT(s.jain_index, 1.0);
}

TEST(SummarizeFairness, ConstantSampleIsFair) {
  const std::vector<double> amats = {7.0, 7.0, 7.0, 7.0};
  const FairnessSummary s = summarize_fairness(amats);
  EXPECT_DOUBLE_EQ(s.amat_p50_ns, 7.0);
  EXPECT_DOUBLE_EQ(s.amat_p99_ns, 7.0);
  EXPECT_DOUBLE_EQ(s.jain_index, 1.0);
}

}  // namespace
}  // namespace hymem::tenant
