#include "core/nvm_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.hpp"

namespace hymem::core {
namespace {

std::vector<PageId> order(const CountedLruQueue& q) {
  std::vector<PageId> out;
  q.for_each_mru_to_lru([&out](PageId p) { out.push_back(p); });
  return out;
}

TEST(CountedLru, WindowTargetsFromFractions) {
  CountedLruQueue q(10, 0.2, 0.5);
  EXPECT_EQ(q.read_window_target(), 2u);
  EXPECT_EQ(q.write_window_target(), 5u);
}

TEST(CountedLru, WindowTargetCeilsAndClamps) {
  CountedLruQueue q(10, 0.01, 1.0);
  EXPECT_EQ(q.read_window_target(), 1u);  // ceil(0.1)
  EXPECT_EQ(q.write_window_target(), 10u);
  CountedLruQueue zero(10, 0.0, 0.0);
  EXPECT_EQ(zero.read_window_target(), 0u);
}

TEST(CountedLru, LruOrderMaintained) {
  CountedLruQueue q(4, 0.5, 0.5);
  q.insert_front(1);
  q.insert_front(2);
  q.insert_front(3);
  EXPECT_EQ(order(q), (std::vector<PageId>{3, 2, 1}));
  EXPECT_EQ(q.lru_victim(), PageId{1});
  q.record_hit(1, AccessType::kRead);
  EXPECT_EQ(order(q), (std::vector<PageId>{1, 3, 2}));
  EXPECT_EQ(q.lru_victim(), PageId{2});
}

TEST(CountedLru, CounterIncrementsInsideWindow) {
  CountedLruQueue q(4, 1.0, 1.0);  // whole queue is the window
  q.insert_front(1);
  EXPECT_EQ(q.record_hit(1, AccessType::kRead), 1u);
  EXPECT_EQ(q.record_hit(1, AccessType::kRead), 2u);
  EXPECT_EQ(q.record_hit(1, AccessType::kRead), 3u);
}

TEST(CountedLru, ReadAndWriteCountersIndependent) {
  CountedLruQueue q(4, 1.0, 1.0);
  q.insert_front(1);
  q.record_hit(1, AccessType::kRead);
  q.record_hit(1, AccessType::kWrite);
  q.record_hit(1, AccessType::kWrite);
  EXPECT_EQ(q.read_counter(1), 1u);
  EXPECT_EQ(q.write_counter(1), 2u);
}

TEST(CountedLru, HitFromOutsideWindowRestartsAtOne) {
  // Window of 1: only the MRU page has a live counter (Algorithm 1 l.13-14).
  CountedLruQueue q(4, 0.25, 0.25);
  q.insert_front(1);
  q.insert_front(2);  // window={2}; 1 dropped out, counter reset
  EXPECT_TRUE(q.in_read_window(2));
  EXPECT_FALSE(q.in_read_window(1));
  EXPECT_EQ(q.record_hit(1, AccessType::kRead), 1u);  // re-enters at 1
  EXPECT_TRUE(q.in_read_window(1));
  EXPECT_FALSE(q.in_read_window(2));
  EXPECT_EQ(q.read_counter(2), 0u) << "boundary page counter must reset";
}

TEST(CountedLru, BoundaryPageResetOnEntry) {
  // Window of 2 over 3 pages: pushing a page into the window expels the
  // boundary page and clears its counter (Algorithm 1 l.8-9).
  CountedLruQueue q(4, 0.5, 0.5);
  q.insert_front(1);
  q.insert_front(2);  // window = {2, 1}
  q.record_hit(1, AccessType::kRead);  // counter(1) = 1, window = {1, 2}
  q.insert_front(3);                   // window = {3, 1}; 2 expelled
  EXPECT_EQ(q.read_counter(1), 1u) << "1 stays in window, counter kept";
  q.record_hit(2, AccessType::kRead);  // 2 re-enters; 1 expelled -> reset
  EXPECT_EQ(q.read_counter(1), 0u);
  EXPECT_EQ(q.read_counter(2), 1u);
}

TEST(CountedLru, CounterPersistsWhileMovingWithinWindow) {
  CountedLruQueue q(8, 0.5, 0.5);  // window of 4
  q.insert_front(1);
  q.insert_front(2);
  q.insert_front(3);
  // All three in window. Hit 1 twice, interleaved with hits to others.
  EXPECT_EQ(q.record_hit(1, AccessType::kWrite), 1u);
  q.record_hit(2, AccessType::kWrite);
  EXPECT_EQ(q.record_hit(1, AccessType::kWrite), 2u);
}

TEST(CountedLru, EraseRefillsWindowFromBelow) {
  CountedLruQueue q(4, 0.5, 0.5);  // window of 2
  q.insert_front(1);
  q.insert_front(2);
  q.insert_front(3);  // window {3,2}, outside {1}
  q.erase(3);
  // 1 must re-enter the window (with a fresh counter).
  EXPECT_TRUE(q.in_read_window(1));
  EXPECT_TRUE(q.in_read_window(2));
  EXPECT_EQ(q.read_counter(1), 0u);
}

TEST(CountedLru, EraseLruVictim) {
  CountedLruQueue q(4, 0.5, 0.5);
  q.insert_front(1);
  q.insert_front(2);
  const auto victim = q.lru_victim();
  ASSERT_EQ(victim, PageId{1});
  q.erase(*victim);
  EXPECT_FALSE(q.contains(1));
  EXPECT_EQ(q.size(), 1u);
}

TEST(CountedLru, AsymmetricWindows) {
  CountedLruQueue q(10, 0.1, 0.3);  // read window 1, write window 3
  for (PageId p = 1; p <= 5; ++p) q.insert_front(p);
  // MRU order: 5 4 3 2 1. Read window = {5}; write window = {5,4,3}.
  EXPECT_TRUE(q.in_read_window(5));
  EXPECT_FALSE(q.in_read_window(4));
  EXPECT_TRUE(q.in_write_window(4));
  EXPECT_TRUE(q.in_write_window(3));
  EXPECT_FALSE(q.in_write_window(2));
}

TEST(CountedLru, WriteCounterSurvivesReadWindowExit) {
  // A page can stay in the (larger) write window after leaving the read
  // window; only the read counter resets.
  CountedLruQueue q(10, 0.1, 0.5);
  q.insert_front(1);
  q.record_hit(1, AccessType::kWrite);
  q.record_hit(1, AccessType::kRead);
  EXPECT_EQ(q.write_counter(1), 1u);
  EXPECT_EQ(q.read_counter(1), 1u);
  q.insert_front(2);  // 1 leaves read window (size 1), stays in write window
  EXPECT_FALSE(q.in_read_window(1));
  EXPECT_TRUE(q.in_write_window(1));
  EXPECT_EQ(q.read_counter(1), 0u);
  EXPECT_EQ(q.write_counter(1), 1u);
}

TEST(CountedLru, InvariantsUnderRandomChurn) {
  CountedLruQueue q(32, 0.15, 0.4);
  Rng rng(99);
  std::vector<PageId> present;
  PageId next = 0;
  for (int i = 0; i < 20000; ++i) {
    const double op = rng.next_double();
    if (op < 0.5 && !present.empty()) {
      const PageId page = present[rng.next_below(present.size())];
      q.record_hit(page, rng.next_bool(0.4) ? AccessType::kWrite
                                            : AccessType::kRead);
    } else if (op < 0.8 && q.size() < q.capacity()) {
      q.insert_front(next);
      present.push_back(next++);
    } else if (!present.empty()) {
      const std::size_t idx = rng.next_below(present.size());
      q.erase(present[idx]);
      present[idx] = present.back();
      present.pop_back();
    }
    if (i % 256 == 0) {
      ASSERT_NO_THROW(q.check_invariants());
    }
  }
  q.check_invariants();
}

TEST(CountedLru, MisuseDetected) {
  CountedLruQueue q(2, 0.5, 0.5);
  EXPECT_THROW(q.record_hit(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(q.erase(1), std::logic_error);
  q.insert_front(1);
  EXPECT_THROW(q.insert_front(1), std::logic_error);
  q.insert_front(2);
  EXPECT_THROW(q.insert_front(3), std::logic_error);  // full
  EXPECT_THROW(CountedLruQueue(0, 0.5, 0.5), std::logic_error);
  EXPECT_THROW(CountedLruQueue(2, -0.1, 0.5), std::logic_error);
  EXPECT_THROW(CountedLruQueue(2, 0.5, 1.5), std::logic_error);
}

}  // namespace
}  // namespace hymem::core
