#include "core/migration_scheme.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "trace/reuse_distance.hpp"
#include "util/random.hpp"

namespace hymem::core {
namespace {

os::VmmConfig hybrid_config(std::uint64_t dram, std::uint64_t nvm) {
  os::VmmConfig c;
  c.dram_frames = dram;
  c.nvm_frames = nvm;
  return c;
}

MigrationConfig config(std::uint64_t read_thr, std::uint64_t write_thr,
                       double read_perc = 1.0, double write_perc = 1.0) {
  MigrationConfig c;
  c.read_threshold = read_thr;
  c.write_threshold = write_thr;
  c.read_perc = read_perc;
  c.write_perc = write_perc;
  return c;
}

TEST(MigrationScheme, AllFaultsFillDram) {
  os::Vmm vmm(hybrid_config(2, 4));
  TwoLruMigrationPolicy policy(vmm, config(4, 6));
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kWrite);
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(vmm.tier_of(2), Tier::kDram);
  EXPECT_EQ(vmm.dma_counters().disk_fills_to_nvm, 0u);
}

TEST(MigrationScheme, DramOverflowDemotesToNvmHead) {
  os::Vmm vmm(hybrid_config(2, 4));
  TwoLruMigrationPolicy policy(vmm, config(4, 6));
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);
  policy.on_access(3, AccessType::kRead);  // LRU page 1 demotes
  EXPECT_EQ(vmm.tier_of(1), Tier::kNvm);
  EXPECT_EQ(policy.demotions(), 1u);
  EXPECT_EQ(vmm.dma_counters().migrations_dram_to_nvm, 1u);
}

TEST(MigrationScheme, NvmServesWritesUnlikeClockDwf) {
  os::Vmm vmm(hybrid_config(1, 4));
  TwoLruMigrationPolicy policy(vmm, config(100, 100));  // never migrate
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);  // 1 -> NVM
  ASSERT_EQ(vmm.tier_of(1), Tier::kNvm);
  policy.on_access(1, AccessType::kWrite);
  EXPECT_EQ(vmm.tier_of(1), Tier::kNvm) << "below threshold: no migration";
  EXPECT_EQ(vmm.device(Tier::kNvm).counters().demand_writes, 1u);
}

TEST(MigrationScheme, PromotionExactlyWhenCounterExceedsThreshold) {
  os::Vmm vmm(hybrid_config(2, 4));
  TwoLruMigrationPolicy policy(vmm, config(/*read=*/3, /*write=*/100));
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);
  policy.on_access(3, AccessType::kRead);  // 1 demoted to NVM
  ASSERT_EQ(vmm.tier_of(1), Tier::kNvm);
  // Hits 1..3 keep it in NVM (counter <= 3); the 4th hit exceeds.
  for (int i = 0; i < 3; ++i) {
    policy.on_access(1, AccessType::kRead);
    ASSERT_EQ(vmm.tier_of(1), Tier::kNvm) << "hit " << i;
  }
  policy.on_access(1, AccessType::kRead);
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(policy.promotions(), 1u);
}

TEST(MigrationScheme, WriteThresholdIndependentOfReadThreshold) {
  os::Vmm vmm(hybrid_config(2, 4));
  TwoLruMigrationPolicy policy(vmm, config(/*read=*/100, /*write=*/2));
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);
  policy.on_access(3, AccessType::kRead);  // 1 -> NVM
  ASSERT_EQ(vmm.tier_of(1), Tier::kNvm);
  policy.on_access(1, AccessType::kRead);   // read counter 1
  policy.on_access(1, AccessType::kWrite);  // write counter 1
  policy.on_access(1, AccessType::kWrite);  // write counter 2
  ASSERT_EQ(vmm.tier_of(1), Tier::kNvm);
  policy.on_access(1, AccessType::kWrite);  // write counter 3 > 2: promote
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
}

TEST(MigrationScheme, PromotionIntoFullDramSwaps) {
  os::Vmm vmm(hybrid_config(1, 4));
  TwoLruMigrationPolicy policy(vmm, config(/*read=*/1, /*write=*/100));
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);  // 1 -> NVM, 2 in DRAM (full)
  ASSERT_EQ(vmm.tier_of(1), Tier::kNvm);
  policy.on_access(1, AccessType::kRead);  // counter 1
  policy.on_access(1, AccessType::kRead);  // counter 2 > 1: swap promote
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(vmm.tier_of(2), Tier::kNvm);
  EXPECT_EQ(vmm.dma_counters().migrations_nvm_to_dram, 1u);
  // Two D->N migrations: the capacity demotion of page 1 when page 2
  // faulted, plus the swap's demotion of page 2.
  EXPECT_EQ(vmm.dma_counters().migrations_dram_to_nvm, 2u);
}

TEST(MigrationScheme, NvmOverflowEvictsToDisk) {
  os::Vmm vmm(hybrid_config(1, 1));
  TwoLruMigrationPolicy policy(vmm, config(100, 100));
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);  // 1 -> NVM
  policy.on_access(3, AccessType::kRead);  // 2 -> NVM, 1 evicted to disk
  EXPECT_FALSE(vmm.is_resident(1));
  EXPECT_EQ(vmm.tier_of(2), Tier::kNvm);
  EXPECT_EQ(vmm.tier_of(3), Tier::kDram);
}

TEST(MigrationScheme, InfiniteThresholdsMeanNoPromotions) {
  os::Vmm vmm(hybrid_config(2, 8));
  TwoLruMigrationPolicy policy(vmm, config(~0ULL, ~0ULL));
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    policy.on_access(rng.next_below(15), rng.next_bool(0.3)
                                             ? AccessType::kWrite
                                             : AccessType::kRead);
  }
  EXPECT_EQ(policy.promotions(), 0u);
  EXPECT_EQ(vmm.dma_counters().migrations_nvm_to_dram, 0u);
}

TEST(MigrationScheme, ZeroThresholdActsLikePromoteOnTouch) {
  os::Vmm vmm(hybrid_config(2, 8));
  TwoLruMigrationPolicy policy(vmm, config(0, 0));
  Rng rng(3);
  std::uint64_t nvm_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    const PageId page = rng.next_below(15);
    const bool was_nvm = vmm.tier_of(page) == Tier::kNvm;
    policy.on_access(page, AccessType::kRead);
    if (was_nvm) {
      ++nvm_hits;
      EXPECT_EQ(vmm.tier_of(page), Tier::kDram) << "must promote immediately";
    }
  }
  EXPECT_GT(nvm_hits, 0u);
  EXPECT_EQ(policy.promotions(), nvm_hits);
}

TEST(MigrationScheme, QueueBookkeepingMatchesResidency) {
  os::Vmm vmm(hybrid_config(3, 9));
  TwoLruMigrationPolicy policy(vmm, config(2, 4, 0.3, 0.6));
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    policy.on_access(rng.next_below(30), rng.next_bool(0.35)
                                             ? AccessType::kWrite
                                             : AccessType::kRead);
    ASSERT_EQ(policy.dram_queue().size(), vmm.resident(Tier::kDram));
    ASSERT_EQ(policy.nvm_queue().size(), vmm.resident(Tier::kNvm));
  }
  policy.nvm_queue().check_invariants();
}

TEST(MigrationScheme, HitRatioTracksPlainLruOfSameTotalSize) {
  // Section IV: the scheme keeps "almost the same hit ratio as an
  // unmodified LRU" of the combined capacity.
  constexpr std::uint64_t kDram = 4, kNvm = 36;
  os::Vmm vmm(hybrid_config(kDram, kNvm));
  TwoLruMigrationPolicy policy(vmm, config(4, 6, 0.1, 0.3));
  trace::ReuseDistanceAnalyzer rd(4096);
  Rng rng(29);
  std::uint64_t accesses = 0;
  for (int i = 0; i < 20000; ++i) {
    // Zipf-ish skew via modulo of two uniforms.
    const PageId page = rng.next_below(1 + rng.next_below(80));
    rd.observe(page * 4096);
    policy.on_access(page, AccessType::kRead);
    ++accesses;
  }
  const auto& dram = vmm.device(Tier::kDram).counters();
  const auto& nvm = vmm.device(Tier::kNvm).counters();
  const double hit_ratio =
      static_cast<double>(dram.demand_reads + dram.demand_writes +
                          nvm.demand_reads + nvm.demand_writes) /
      static_cast<double>(accesses);
  const double lru_ratio = rd.lru_hit_ratio(kDram + kNvm);
  EXPECT_NEAR(hit_ratio, lru_ratio, 0.02);
}

TEST(MigrationScheme, PromotedPageEntersDramQueueMru) {
  os::Vmm vmm(hybrid_config(2, 4));
  TwoLruMigrationPolicy policy(vmm, config(0, 0));
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);
  policy.on_access(3, AccessType::kRead);  // 1 -> NVM
  policy.on_access(1, AccessType::kRead);  // promoted; DRAM had to demote 2
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  // DRAM victim must have been the LRU of {2,3}, i.e. page 2.
  EXPECT_EQ(vmm.tier_of(2), Tier::kNvm);
  EXPECT_EQ(vmm.tier_of(3), Tier::kDram);
}

TEST(MigrationScheme, RequiresBothModules) {
  os::VmmConfig cfg;
  cfg.dram_frames = 4;
  cfg.nvm_frames = 0;
  os::Vmm vmm(cfg);
  EXPECT_THROW(TwoLruMigrationPolicy(vmm, config(1, 1)), std::logic_error);
}

TEST(MigrationScheme, NameReflectsAdaptivity) {
  os::Vmm vmm1(hybrid_config(2, 4));
  TwoLruMigrationPolicy fixed(vmm1, config(1, 2));
  EXPECT_EQ(fixed.name(), "two-lru");
  os::Vmm vmm2(hybrid_config(2, 4));
  MigrationConfig adaptive_cfg = config(1, 2);
  adaptive_cfg.adaptive = true;
  TwoLruMigrationPolicy adaptive(vmm2, adaptive_cfg);
  EXPECT_EQ(adaptive.name(), "two-lru-adaptive");
  EXPECT_NE(adaptive.controller(), nullptr);
  EXPECT_EQ(fixed.controller(), nullptr);
}


TEST(MigrationScheme, AdaptiveControllerRaisesThresholdsUnderChurn) {
  // A churny stream where promoted pages die quickly: the controller must
  // observe the wasted round trips and raise the thresholds.
  auto build = [&](bool adaptive) {
    auto cfg = config(/*read=*/1, /*write=*/2, 1.0, 1.0);
    cfg.adaptive = adaptive;
    return cfg;
  };
  os::Vmm vmm(hybrid_config(4, 36));
  TwoLruMigrationPolicy policy(vmm, build(true));
  const auto initial_read = policy.read_threshold();
  Rng rng(77);
  // Phased stream: each phase hammers a few pages (earning promotion) and
  // then abandons them, so almost no promotion reaches break-even.
  for (int phase = 0; phase < 400; ++phase) {
    const PageId base = 10 + (static_cast<PageId>(phase) * 7) % 50;
    for (int i = 0; i < 40; ++i) {
      policy.on_access(base + rng.next_below(3), AccessType::kRead);
    }
  }
  ASSERT_NE(policy.controller(), nullptr);
  EXPECT_GT(policy.controller()->observed(), 0u);
  EXPECT_GT(policy.read_threshold(), initial_read)
      << "controller never reacted to the wasted migrations";
}

TEST(MigrationScheme, AdaptiveNeverMigratesMoreThanPromoteHappyFixed) {
  auto run = [&](bool adaptive) {
    os::Vmm vmm(hybrid_config(4, 36));
    auto cfg = config(1, 2, 1.0, 1.0);
    cfg.adaptive = adaptive;
    TwoLruMigrationPolicy policy(vmm, cfg);
    Rng rng(78);
    for (int phase = 0; phase < 300; ++phase) {
      const PageId base = 10 + (static_cast<PageId>(phase) * 7) % 50;
      for (int i = 0; i < 40; ++i) {
        policy.on_access(base + rng.next_below(3), AccessType::kRead);
      }
    }
    return policy.promotions();
  };
  EXPECT_LE(run(true), run(false));
}


TEST(MigrationScheme, RateLimiterCapsPromotions) {
  auto run = [&](std::uint64_t limit) {
    os::Vmm vmm(hybrid_config(2, 18));
    auto cfg = config(0, 0, 1.0, 1.0);  // promote-on-touch: worst case
    cfg.max_promotions_per_kacc = limit;
    TwoLruMigrationPolicy policy(vmm, cfg);
    Rng rng(55);
    constexpr int kAccesses = 20000;
    for (int i = 0; i < kAccesses; ++i) {
      policy.on_access(rng.next_below(25), AccessType::kRead);
    }
    return std::pair{policy.promotions(), policy.throttled_promotions()};
  };
  const auto [unlimited, t0] = run(0);
  const auto [limited, throttled] = run(10);
  EXPECT_EQ(t0, 0u);
  EXPECT_GT(throttled, 0u);
  EXPECT_LT(limited, unlimited);
  // 10 promotions per kacc over 20k accesses, plus the initial bucket.
  EXPECT_LE(limited, 220u);
}

TEST(MigrationScheme, RateLimiterOffByDefault) {
  os::Vmm vmm(hybrid_config(2, 6));
  TwoLruMigrationPolicy policy(vmm, config(0, 0));
  for (int i = 0; i < 200; ++i) {
    policy.on_access(static_cast<PageId>(i % 10), AccessType::kRead);
  }
  EXPECT_EQ(policy.throttled_promotions(), 0u);
}

}  // namespace
}  // namespace hymem::core
