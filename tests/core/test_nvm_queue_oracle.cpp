// Differential test: the O(1) windowed-counter queue against a naive oracle
// that re-derives window membership from positions after every operation —
// a direct transcription of Algorithm 1's semantics with O(n) scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/nvm_queue.hpp"
#include "util/random.hpp"

namespace hymem::core {
namespace {

/// The executable specification.
class OracleQueue {
 public:
  OracleQueue(std::size_t capacity, double read_perc, double write_perc)
      : capacity_(capacity),
        read_target_(target(read_perc)),
        write_target_(target(write_perc)) {}

  std::uint64_t record_hit(PageId page, AccessType type) {
    const std::size_t pos = index_of(page);
    const bool is_read = type == AccessType::kRead;
    const std::size_t window = is_read ? read_window() : write_window();
    const bool was_in = pos < window;
    // Move to MRU.
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
    order_.push_front(page);
    auto& ctr = is_read ? read_ctr_[page] : write_ctr_[page];
    ctr = was_in ? ctr + 1 : 1;
    reset_outside_windows();
    return ctr;
  }

  void insert_front(PageId page) {
    order_.push_front(page);
    read_ctr_[page] = 0;
    write_ctr_[page] = 0;
    reset_outside_windows();
  }

  void erase(PageId page) {
    const std::size_t pos = index_of(page);
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
    read_ctr_.erase(page);
    write_ctr_.erase(page);
    reset_outside_windows();
  }

  PageId lru_victim() const { return order_.back(); }
  std::size_t size() const { return order_.size(); }

  bool in_read_window(PageId page) const {
    return index_of(page) < read_window();
  }
  bool in_write_window(PageId page) const {
    return index_of(page) < write_window();
  }
  std::uint64_t read_counter(PageId page) const { return read_ctr_.at(page); }
  std::uint64_t write_counter(PageId page) const { return write_ctr_.at(page); }

 private:
  std::size_t target(double perc) const {
    return std::min<std::size_t>(
        capacity_, static_cast<std::size_t>(
                       std::ceil(perc * static_cast<double>(capacity_))));
  }
  std::size_t read_window() const { return std::min(read_target_, size()); }
  std::size_t write_window() const { return std::min(write_target_, size()); }

  std::size_t index_of(PageId page) const {
    const auto it = std::find(order_.begin(), order_.end(), page);
    EXPECT_NE(it, order_.end());
    return static_cast<std::size_t>(it - order_.begin());
  }

  void reset_outside_windows() {
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (i >= read_window()) read_ctr_[order_[i]] = 0;
      if (i >= write_window()) write_ctr_[order_[i]] = 0;
    }
  }

  std::size_t capacity_;
  std::size_t read_target_;
  std::size_t write_target_;
  std::deque<PageId> order_;  // front = MRU
  std::unordered_map<PageId, std::uint64_t> read_ctr_;
  std::unordered_map<PageId, std::uint64_t> write_ctr_;
};

struct WindowParams {
  double read_perc;
  double write_perc;
};

class NvmQueueOracle : public ::testing::TestWithParam<WindowParams> {};

TEST_P(NvmQueueOracle, RandomOperationStreamsAgreeExactly) {
  constexpr std::size_t kCapacity = 24;
  const auto [read_perc, write_perc] = GetParam();
  CountedLruQueue queue(kCapacity, read_perc, write_perc);
  OracleQueue oracle(kCapacity, read_perc, write_perc);
  Rng rng(1234);
  std::vector<PageId> present;
  PageId next_page = 0;

  for (int step = 0; step < 30000; ++step) {
    const double op = rng.next_double();
    if (op < 0.55 && !present.empty()) {
      const PageId page = present[rng.next_below(present.size())];
      const AccessType type =
          rng.next_bool(0.4) ? AccessType::kWrite : AccessType::kRead;
      ASSERT_EQ(queue.record_hit(page, type), oracle.record_hit(page, type))
          << "step " << step;
    } else if (op < 0.85 && present.size() < kCapacity) {
      queue.insert_front(next_page);
      oracle.insert_front(next_page);
      present.push_back(next_page++);
    } else if (!present.empty()) {
      const std::size_t idx = rng.next_below(present.size());
      queue.erase(present[idx]);
      oracle.erase(present[idx]);
      present[idx] = present.back();
      present.pop_back();
    }
    ASSERT_EQ(queue.size(), oracle.size());
    if (!present.empty()) {
      ASSERT_EQ(queue.lru_victim(), oracle.lru_victim()) << "step " << step;
    }
    // Full-state comparison every few steps (it is O(n^2) in the oracle).
    if (step % 64 == 0) {
      for (PageId page : present) {
        ASSERT_EQ(queue.in_read_window(page), oracle.in_read_window(page))
            << "page " << page << " step " << step;
        ASSERT_EQ(queue.in_write_window(page), oracle.in_write_window(page))
            << "page " << page << " step " << step;
        ASSERT_EQ(queue.read_counter(page), oracle.read_counter(page))
            << "page " << page << " step " << step;
        ASSERT_EQ(queue.write_counter(page), oracle.write_counter(page))
            << "page " << page << " step " << step;
      }
      queue.check_invariants();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowShapes, NvmQueueOracle,
    ::testing::Values(WindowParams{0.10, 0.30}, WindowParams{0.05, 0.05},
                      WindowParams{0.50, 0.75}, WindowParams{1.00, 1.00},
                      WindowParams{0.0, 1.0}),
    [](const auto& param_info) {
      const auto& p = param_info.param;
      return "r" + std::to_string(static_cast<int>(p.read_perc * 100)) + "_w" +
             std::to_string(static_cast<int>(p.write_perc * 100));
    });

}  // namespace
}  // namespace hymem::core
