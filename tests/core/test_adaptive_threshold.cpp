#include "core/adaptive_threshold.hpp"

#include <gtest/gtest.h>

#include "mem/technology.hpp"

namespace hymem::core {
namespace {

MigrationConfig initial() {
  MigrationConfig c;
  c.read_threshold = 4;
  c.write_threshold = 6;
  return c;
}

TEST(BreakEven, MatchesHandComputation) {
  // Round trip: 64 * (100 + 50 + 50 + 350) = 35200 ns.
  // Saving per access: (100+350)/2 - (50+50)/2 = 175 ns.
  // 35200 / 175 = 201.14... -> 202.
  const auto be = AdaptiveThresholdController::break_even(
      mem::dram_table4(), mem::pcm_table4(), 64);
  EXPECT_EQ(be, 202u);
}

TEST(BreakEven, NoSavingMeansImmediateBreakEven) {
  const auto be = AdaptiveThresholdController::break_even(
      mem::dram_table4(), mem::dram_table4(), 64);
  EXPECT_EQ(be, 1u);
}

TEST(Adaptive, RaisesThresholdsWhenMigrationsWasted) {
  AdaptiveConfig cfg;
  cfg.window = 10;
  AdaptiveThresholdController ctl(initial(), cfg, /*break_even=*/50);
  const auto read_before = ctl.read_threshold();
  const auto write_before = ctl.write_threshold();
  // All promotions die after 1 DRAM hit: clearly non-beneficial.
  for (int i = 0; i < 10; ++i) ctl.observe_promotion_outcome(1);
  EXPECT_GT(ctl.read_threshold(), read_before);
  EXPECT_GT(ctl.write_threshold(), write_before);
  EXPECT_EQ(ctl.adaptations(), 1u);
}

TEST(Adaptive, LowersThresholdsWhenAllBeneficial) {
  AdaptiveConfig cfg;
  cfg.window = 10;
  AdaptiveThresholdController ctl(initial(), cfg, /*break_even=*/50);
  const auto read_before = ctl.read_threshold();
  for (int i = 0; i < 10; ++i) ctl.observe_promotion_outcome(500);
  EXPECT_LT(ctl.read_threshold(), read_before);
}

TEST(Adaptive, NoChangeInTheComfortZone) {
  AdaptiveConfig cfg;
  cfg.window = 10;
  cfg.raise_below = 0.4;
  cfg.lower_above = 0.9;
  AdaptiveThresholdController ctl(initial(), cfg, 50);
  // 60% beneficial: inside [0.4, 0.9] -> no adaptation.
  for (int i = 0; i < 6; ++i) ctl.observe_promotion_outcome(100);
  for (int i = 0; i < 4; ++i) ctl.observe_promotion_outcome(1);
  EXPECT_EQ(ctl.adaptations(), 0u);
  EXPECT_EQ(ctl.read_threshold(), initial().read_threshold);
}

TEST(Adaptive, ThresholdsStayWithinBounds) {
  AdaptiveConfig cfg;
  cfg.window = 4;
  cfg.min_threshold = 1;
  cfg.max_threshold = 8;
  AdaptiveThresholdController ctl(initial(), cfg, 50);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) ctl.observe_promotion_outcome(0);
  }
  EXPECT_LE(ctl.read_threshold(), 8u);
  EXPECT_LE(ctl.write_threshold(), 8u);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) ctl.observe_promotion_outcome(1000);
  }
  EXPECT_GE(ctl.read_threshold(), 1u);
  EXPECT_GE(ctl.write_threshold(), 1u);
}

TEST(Adaptive, LifetimeFractionAccumulates) {
  AdaptiveConfig cfg;
  cfg.window = 100;  // no adaptation during this test
  AdaptiveThresholdController ctl(initial(), cfg, 10);
  ctl.observe_promotion_outcome(20);  // beneficial
  ctl.observe_promotion_outcome(5);   // wasted
  EXPECT_EQ(ctl.observed(), 2u);
  EXPECT_DOUBLE_EQ(ctl.lifetime_beneficial_fraction(), 0.5);
}

TEST(Adaptive, InvalidConfigRejected) {
  AdaptiveConfig cfg;
  cfg.window = 0;
  EXPECT_THROW(AdaptiveThresholdController(initial(), cfg, 10),
               std::logic_error);
  cfg = AdaptiveConfig{};
  cfg.min_threshold = 5;
  cfg.max_threshold = 2;
  EXPECT_THROW(AdaptiveThresholdController(initial(), cfg, 10),
               std::logic_error);
}

}  // namespace
}  // namespace hymem::core
