// Dedicated window-boundary tests for CountedLruQueue: the rounding of
// fractional perc * capacity (including the binary round-off snap), and the
// counter bookkeeping of pages sitting exactly on a boundary.
#include <gtest/gtest.h>

#include "core/nvm_queue.hpp"

namespace hymem::core {
namespace {

TEST(NvmQueueBoundary, FractionalTargetsRoundUp) {
  // ceil(0.25 * 10) = 3, ceil(0.33... * 3) = 1, ceil(0.1 * 25) = 3.
  EXPECT_EQ(CountedLruQueue(10, 0.25, 0.25).read_window_target(), 3u);
  EXPECT_EQ(CountedLruQueue(3, 1.0 / 3.0, 1.0).read_window_target(), 1u);
  EXPECT_EQ(CountedLruQueue(25, 0.1, 0.1).read_window_target(), 3u);
}

TEST(NvmQueueBoundary, BinaryRoundOffDoesNotOvershootExactProducts) {
  // Each of these products lands a round-off hair above the intended
  // integer (0.07 * 100 == 7.000000000000001); a raw ceil gave one extra
  // window position.
  EXPECT_EQ(CountedLruQueue(100, 0.07, 0.55).read_window_target(), 7u);
  EXPECT_EQ(CountedLruQueue(100, 0.07, 0.55).write_window_target(), 55u);
  EXPECT_EQ(CountedLruQueue(50, 0.14, 0.28).read_window_target(), 7u);
  EXPECT_EQ(CountedLruQueue(50, 0.14, 0.28).write_window_target(), 14u);
  EXPECT_EQ(CountedLruQueue(200, 0.56, 1.0).read_window_target(), 112u);
}

TEST(NvmQueueBoundary, ExactAndDegenerateTargets) {
  EXPECT_EQ(CountedLruQueue(8, 0.5, 0.5).read_window_target(), 4u);
  EXPECT_EQ(CountedLruQueue(8, 0.0, 0.0).read_window_target(), 0u);
  EXPECT_EQ(CountedLruQueue(8, 1.0, 1.0).read_window_target(), 8u);
  // Any positive fraction of a one-slot queue is that one slot.
  EXPECT_EQ(CountedLruQueue(1, 0.01, 1.0).read_window_target(), 1u);
  EXPECT_EQ(CountedLruQueue(1, 0.0, 1.0).read_window_target(), 0u);
}

TEST(NvmQueueBoundary, PageExactlyAtTheBoundaryHoldsItsCounter) {
  // Capacity 4, read window = 2: positions 0 and 1 count, 2 and 3 do not.
  CountedLruQueue q(4, 0.5, 1.0);
  for (PageId p = 0; p < 4; ++p) q.insert_front(p);
  // MRU->LRU: 3 2 | 1 0. Page 2 is the last node inside the window.
  EXPECT_TRUE(q.in_read_window(2));
  EXPECT_FALSE(q.in_read_window(1));
  q.record_hit(2, AccessType::kRead);  // boundary node moves to front
  EXPECT_EQ(q.read_counter(2), 1u);
  // Order 2 3 | 1 0: page 3 is the new boundary, membership unchanged.
  EXPECT_TRUE(q.in_read_window(3));
  EXPECT_FALSE(q.in_read_window(1));
  q.check_invariants();
}

TEST(NvmQueueBoundary, HitFromOnePastTheBoundaryEvictsTheBoundaryCounter) {
  CountedLruQueue q(4, 0.5, 1.0);
  for (PageId p = 0; p < 4; ++p) q.insert_front(p);
  // 3 2 | 1 0: give both window pages live counters.
  q.record_hit(3, AccessType::kRead);
  q.record_hit(2, AccessType::kRead);
  // Order 2 3 | 1 0. A hit on page 1 (first position outside) enters the
  // window at the front; page 3 falls past the boundary and must lose its
  // counter.
  EXPECT_EQ(q.record_hit(1, AccessType::kRead), 1u);  // restarted, not ++
  EXPECT_TRUE(q.in_read_window(1));
  EXPECT_TRUE(q.in_read_window(2));
  EXPECT_FALSE(q.in_read_window(3));
  EXPECT_EQ(q.read_counter(3), 0u);
  EXPECT_EQ(q.read_counter(2), 1u);  // survived: still inside
  q.check_invariants();
}

TEST(NvmQueueBoundary, ErasingTheBoundaryNodeRefillsFromBelow) {
  CountedLruQueue q(4, 0.5, 1.0);
  for (PageId p = 0; p < 4; ++p) q.insert_front(p);
  // 3 2 | 1 0: erase boundary page 2; page 1 must be pulled into the window
  // with a fresh counter.
  q.record_hit(1, AccessType::kWrite);  // write ctr only; read ctr stays 0
  q.erase(2);
  EXPECT_TRUE(q.in_read_window(3));
  EXPECT_TRUE(q.in_read_window(1));
  EXPECT_FALSE(q.in_read_window(0));
  EXPECT_EQ(q.read_counter(1), 0u);
  q.check_invariants();
}

TEST(NvmQueueBoundary, IndependentReadAndWriteBoundaries) {
  // read window 1, write window 3 over capacity 4.
  CountedLruQueue q(4, 0.25, 0.75);
  for (PageId p = 0; p < 4; ++p) q.insert_front(p);
  // 3 | 2 1 : 0   (read boundary after 3, write boundary after 1)
  EXPECT_TRUE(q.in_read_window(3));
  EXPECT_FALSE(q.in_read_window(2));
  EXPECT_TRUE(q.in_write_window(1));
  EXPECT_FALSE(q.in_write_window(0));
  // A write hit on page 0 (outside both) restarts its write counter at 1,
  // drops page 1 from the write window, drops 3 from the read window.
  EXPECT_EQ(q.record_hit(0, AccessType::kWrite), 1u);
  EXPECT_TRUE(q.in_read_window(0));
  EXPECT_FALSE(q.in_read_window(3));
  EXPECT_EQ(q.read_counter(3), 0u);
  EXPECT_FALSE(q.in_write_window(1));
  EXPECT_EQ(q.write_counter(1), 0u);
  q.check_invariants();
}

TEST(NvmQueueBoundary, CapacityOneQueueCountsInItsOnlySlot) {
  CountedLruQueue q(1, 0.5, 0.5);
  q.insert_front(9);
  EXPECT_TRUE(q.in_read_window(9));
  EXPECT_EQ(q.record_hit(9, AccessType::kRead), 1u);
  EXPECT_EQ(q.record_hit(9, AccessType::kRead), 2u);
  q.check_invariants();
}

}  // namespace
}  // namespace hymem::core
