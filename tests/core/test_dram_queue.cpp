#include "core/dram_queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hymem::core {
namespace {

TEST(DramLruQueue, InsertAndVictimFollowLruOrder) {
  DramLruQueue q(3);
  q.insert(1, false);
  q.insert(2, false);
  q.insert(3, false);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.full());
  ASSERT_TRUE(q.lru_victim().has_value());
  EXPECT_EQ(*q.lru_victim(), 1u);

  q.on_hit(1);  // 1 becomes MRU; LRU is now 2
  EXPECT_EQ(*q.lru_victim(), 2u);
}

TEST(DramLruQueue, EraseReturnsScoreOnlyForPromotions) {
  DramLruQueue q(4);
  q.insert(10, /*promoted=*/false);
  q.insert(20, /*promoted=*/true);
  EXPECT_FALSE(q.erase(10).has_value());

  q.on_hit(20);
  q.on_hit(20);
  const auto score = q.erase(20);
  ASSERT_TRUE(score.has_value());
  EXPECT_EQ(*score, 2u);
}

TEST(DramLruQueue, PromotionHitsCountOnlyDemandHits) {
  DramLruQueue q(4);
  q.insert(5, /*promoted=*/true);
  ASSERT_TRUE(q.promotion_hits(5).has_value());
  EXPECT_EQ(*q.promotion_hits(5), 0u);
  q.on_hit(5);
  EXPECT_EQ(*q.promotion_hits(5), 1u);

  q.insert(6, /*promoted=*/false);
  q.on_hit(6);
  EXPECT_FALSE(q.promotion_hits(6).has_value());
  EXPECT_FALSE(q.promotion_hits(999).has_value());
}

TEST(DramLruQueue, ReinsertAfterEraseStartsFresh) {
  DramLruQueue q(2);
  q.insert(7, /*promoted=*/true);
  q.on_hit(7);
  EXPECT_EQ(*q.erase(7), 1u);
  // A page that comes back as a plain fault fill is no longer a promotion.
  q.insert(7, /*promoted=*/false);
  EXPECT_FALSE(q.promotion_hits(7).has_value());
  EXPECT_FALSE(q.erase(7).has_value());
}

TEST(DramLruQueue, RejectsMisuse) {
  EXPECT_THROW(DramLruQueue(0), std::logic_error);
  DramLruQueue q(1);
  EXPECT_THROW(q.on_hit(3), std::logic_error);
  EXPECT_THROW(q.erase(3), std::logic_error);
  q.insert(3, false);
  EXPECT_THROW(q.insert(9, false), std::logic_error);  // full
  EXPECT_FALSE(q.lru_victim().has_value() && q.size() != 1);
}

TEST(DramLruQueue, EmptyQueueHasNoVictim) {
  DramLruQueue q(2);
  EXPECT_FALSE(q.lru_victim().has_value());
  EXPECT_FALSE(q.contains(1));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 2u);
}

}  // namespace
}  // namespace hymem::core
