#include "sample/hotness.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sample/tier_queue.hpp"

namespace hymem::sample {
namespace {

TEST(HotnessBoard, ThresholdsValidated) {
  EXPECT_THROW(HotnessBoard(0, 0), std::logic_error);
  EXPECT_THROW(HotnessBoard(2, 3), std::logic_error);  // cold > hot
  HotnessBoard ok(2, 2);
  EXPECT_EQ(ok.hot_threshold(), 2u);
  EXPECT_EQ(ok.cold_threshold(), 2u);
}

TEST(HotnessBoard, RecordReportsTheUpwardCrossingExactlyOnce) {
  HotnessBoard board(3, 1);
  EXPECT_FALSE(board.record(7));  // count 1
  EXPECT_FALSE(board.record(7));  // count 2
  EXPECT_TRUE(board.record(7));   // count 3: crosses the hot threshold
  EXPECT_FALSE(board.record(7));  // count 4: already hot, no re-report
  EXPECT_EQ(board.value(7), 4u);
  EXPECT_EQ(board.value(8), 0u);  // untracked reads as zero
  EXPECT_EQ(board.tracked(), 1u);
}

TEST(HotnessBoard, HotThresholdOneFiresOnFirstSample) {
  HotnessBoard board(1, 1);
  EXPECT_TRUE(board.record(5));
  EXPECT_FALSE(board.record(5));
}

TEST(HotnessBoard, CoolingHalvesEveryCounter) {
  HotnessBoard board(100, 1);
  for (int i = 0; i < 8; ++i) board.record(1);
  for (int i = 0; i < 3; ++i) board.record(2);
  board.cool([](PageId) {});
  EXPECT_EQ(board.value(1), 4u);
  EXPECT_EQ(board.value(2), 1u);
}

TEST(HotnessBoard, CoolingReportsDownwardCrossingsOnce) {
  HotnessBoard board(100, 2);
  for (int i = 0; i < 4; ++i) board.record(9);  // count 4
  std::vector<PageId> cold;
  const auto collect = [&cold](PageId p) { cold.push_back(p); };
  board.cool(collect);  // 4 -> 2: still at the threshold, no report
  EXPECT_TRUE(cold.empty());
  board.cool(collect);  // 2 -> 1: crosses below cold
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_EQ(cold[0], PageId{9});
  cold.clear();
  board.cool(collect);  // 1 -> 0: already below, no second report
  EXPECT_TRUE(cold.empty());
}

TEST(HotnessBoard, CoolingPrunesCountersThatReachZero) {
  HotnessBoard board(100, 1);
  board.record(1);  // count 1
  for (int i = 0; i < 2; ++i) board.record(2);
  EXPECT_EQ(board.tracked(), 2u);
  board.cool([](PageId) {});  // 1 -> 0 pruned, 2 -> 1 stays
  EXPECT_EQ(board.tracked(), 1u);
  EXPECT_EQ(board.value(1), 0u);
  EXPECT_EQ(board.value(2), 1u);
  // A pruned page heats up from scratch.
  EXPECT_FALSE(board.record(1));
  EXPECT_EQ(board.value(1), 1u);
}

TEST(TierQueue, FifoVictimIsTheOldestInsert) {
  TierQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.victim().has_value());
  q.insert(10);
  q.insert(11);
  q.insert(12);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.victim().value(), PageId{10});
  q.erase(10);
  EXPECT_EQ(q.victim().value(), PageId{11});
}

TEST(TierQueue, EraseFromTheMiddleKeepsOrder) {
  TierQueue q(4);
  q.insert(1);
  q.insert(2);
  q.insert(3);
  q.erase(2);
  EXPECT_EQ(q.victim().value(), PageId{1});
  EXPECT_FALSE(q.contains(2));
  EXPECT_TRUE(q.contains(1));
  EXPECT_TRUE(q.contains(3));
}

TEST(TierQueue, ForEachWalksNewestToOldest) {
  TierQueue q(4);
  q.insert(1);
  q.insert(2);
  q.insert(3);
  std::vector<PageId> seen;
  q.for_each([&seen](PageId p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<PageId>{3, 2, 1}));
}

TEST(TierQueue, DuplicateInsertAndUntrackedEraseRejected) {
  TierQueue q(4);
  q.insert(1);
  EXPECT_THROW(q.insert(1), std::logic_error);
  EXPECT_THROW(q.erase(2), std::logic_error);
}

TEST(TierQueue, ReusesSlotsPastTheCapacityHint) {
  TierQueue q(2);
  for (PageId p = 0; p < 100; ++p) {
    q.insert(p);
    if (p >= 3) q.erase(q.victim().value());
  }
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.victim().value(), PageId{97});
}

}  // namespace
}  // namespace hymem::sample
