#include "sample/sampled_policy.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "os/vmm.hpp"
#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"

namespace hymem::sample {
namespace {

os::VmmConfig tiny_config(std::uint64_t dram, std::uint64_t nvm) {
  os::VmmConfig c;
  c.dram_frames = dram;
  c.nvm_frames = nvm;
  return c;
}

/// Replays one access the way the engine does: serve, then feed the tap.
Nanoseconds step(SampledLruPolicy& policy, PageId page,
                 AccessType type = AccessType::kRead) {
  const Nanoseconds latency = policy.on_access(page, type);
  policy.tap().on_access(page, type, latency);
  return latency;
}

TEST(SampledPolicy, DemandFillsDramFirstThenNvmThenEvictsOldestNvm) {
  os::Vmm vmm(tiny_config(1, 2));
  SampleConfig cfg;
  SampledLruPolicy policy(vmm, cfg);
  step(policy, 0);  // DRAM
  step(policy, 1);  // NVM
  step(policy, 2);  // NVM
  EXPECT_EQ(vmm.tier_of(0), Tier::kDram);
  EXPECT_EQ(vmm.tier_of(1), Tier::kNvm);
  EXPECT_EQ(vmm.tier_of(2), Tier::kNvm);
  // Memory full: the next fault evicts the oldest NVM fault (page 1).
  step(policy, 3);
  EXPECT_FALSE(vmm.is_resident(1));
  EXPECT_EQ(vmm.tier_of(3), Tier::kNvm);
  EXPECT_EQ(vmm.tier_of(0), Tier::kDram);  // DRAM is not raided for faults
  EXPECT_EQ(policy.queue(Tier::kDram).size(), vmm.resident(Tier::kDram));
  EXPECT_EQ(policy.queue(Tier::kNvm).size(), vmm.resident(Tier::kNvm));
}

TEST(SampledPolicy, WithoutTheTapPlacementIsDemandOnly) {
  os::Vmm vmm(tiny_config(1, 2));
  SampleConfig cfg;
  cfg.sample_period = 1;
  SampledLruPolicy policy(vmm, cfg);
  for (int round = 0; round < 100; ++round) {
    policy.on_access(1, AccessType::kRead);  // tap never fed
  }
  const auto stats = policy.sampled_stats();
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(stats.demotions, 0u);
}

TEST(SampledPolicy, TapSamplesEveryNthAccess) {
  os::Vmm vmm(tiny_config(2, 4));
  SampleConfig cfg;
  cfg.sample_period = 4;
  SampledLruPolicy policy(vmm, cfg);
  for (int i = 0; i < 8; ++i) step(policy, 0);
  EXPECT_EQ(policy.sampled_stats().samples, 2u);
}

TEST(SampledPolicy, HotNvmPageIsPromotedAtTheDrainBoundary) {
  os::Vmm vmm(tiny_config(1, 2));
  SampleConfig cfg;
  cfg.sample_period = 1;  // see every access
  cfg.hot_threshold = 2;
  cfg.cooling_period = 1 << 20;  // out of the way
  cfg.drain_period = 4;
  cfg.migration_budget = 0;  // unlimited
  SampledLruPolicy policy(vmm, cfg);

  step(policy, 0);  // DRAM resident
  step(policy, 1);  // NVM resident, count 1
  step(policy, 1);  // count 2: upward crossing -> hot ring
  EXPECT_EQ(policy.hot_ring().size(), 1u);

  // Access #4 crosses the drain boundary: the drain runs before serving
  // and promotes page 1. DRAM is full, so it swaps with page 0.
  step(policy, 1);
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(vmm.tier_of(0), Tier::kNvm);
  const auto stats = policy.sampled_stats();
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(stats.demotions, 1u);  // the swap's displaced page
  EXPECT_EQ(stats.migration_copies, 2u);
  EXPECT_EQ(stats.backlog, 0u);
  EXPECT_EQ(policy.queue(Tier::kDram).size(), 1u);
  EXPECT_EQ(policy.queue(Tier::kNvm).size(), 1u);
}

TEST(SampledPolicy, DrainRespectsTheMigrationBudget) {
  os::Vmm vmm(tiny_config(2, 6));
  SampleConfig cfg;
  cfg.sample_period = 1;
  cfg.hot_threshold = 2;
  cfg.cooling_period = 1 << 20;
  cfg.drain_period = 16;
  cfg.migration_budget = 1;
  SampledLruPolicy policy(vmm, cfg);

  // Fill memory, then heat several NVM pages past the threshold.
  for (PageId p = 0; p < 8; ++p) step(policy, p);
  for (int round = 0; round < 20; ++round) {
    for (PageId p = 4; p < 8; ++p) step(policy, p);
  }
  const auto stats = policy.sampled_stats();
  EXPECT_GT(stats.drains, 0u);
  EXPECT_LE(policy.last_drain_ops(), 1u);
  // One budgeted candidate per drain at most (stale candidates are free,
  // so only real migrations are bounded). A swap is one candidate but
  // counts one promotion and one demotion.
  EXPECT_LE(stats.promotions, stats.drains);
  EXPECT_LE(stats.demotions, stats.drains);
  EXPECT_GT(stats.promotions, 0u);
}

TEST(SampledPolicy, CoolingDemotesIdleDramPages) {
  os::Vmm vmm(tiny_config(2, 4));
  SampleConfig cfg;
  cfg.sample_period = 1;
  cfg.hot_threshold = 4;
  cfg.cold_threshold = 2;
  cfg.cooling_period = 8;
  cfg.drain_period = 4;
  cfg.migration_budget = 0;
  SampledLruPolicy policy(vmm, cfg);

  step(policy, 0);  // DRAM
  step(policy, 1);  // DRAM
  // Heat page 0 a little (count 3), then leave it idle while accessing
  // NVM-resident filler below the hot threshold. Cooling passes halve
  // 3 -> 1, crossing below cold_threshold=2 while DRAM-resident.
  step(policy, 0);
  step(policy, 0);
  std::uint64_t demotions = 0;
  for (int round = 0; round < 40 && demotions == 0; ++round) {
    step(policy, 2 + static_cast<PageId>(round % 3));
    demotions = policy.sampled_stats().demotions;
  }
  EXPECT_GT(demotions, 0u);
  EXPECT_FALSE(vmm.tier_of(0) == Tier::kDram);
  EXPECT_GT(policy.sampled_stats().coolings, 0u);
}

TEST(SampledPolicy, FullRingDropsAndCountsCandidates) {
  os::Vmm vmm(tiny_config(1, 8));
  SampleConfig cfg;
  cfg.sample_period = 1;
  cfg.hot_threshold = 1;       // every first sample is a crossing
  cfg.ring_capacity = 1;       // tiny ring: second candidate drops
  cfg.cooling_period = 1 << 20;
  cfg.drain_period = 1 << 20;  // never drain within this test
  SampledLruPolicy policy(vmm, cfg);

  step(policy, 0);  // DRAM; crossing but DRAM-resident -> not a candidate
  step(policy, 1);  // NVM crossing -> hot ring (now full)
  step(policy, 2);  // NVM crossing -> dropped
  step(policy, 3);  // NVM crossing -> dropped
  const auto stats = policy.sampled_stats();
  EXPECT_EQ(policy.hot_ring().size(), 1u);
  EXPECT_EQ(stats.sample_drops, 2u);
  EXPECT_EQ(stats.hot_ring_hwm, 1u);
}

TEST(SampledPolicy, ResetStatsKeepsLearnedStateAndResidency) {
  os::Vmm vmm(tiny_config(1, 2));
  SampleConfig cfg;
  cfg.sample_period = 1;
  cfg.hot_threshold = 2;
  cfg.drain_period = 4;
  SampledLruPolicy policy(vmm, cfg);
  for (int i = 0; i < 8; ++i) step(policy, static_cast<PageId>(i % 3));
  ASSERT_GT(policy.sampled_stats().samples, 0u);

  policy.reset_stats();
  const auto stats = policy.sampled_stats();
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_EQ(stats.promotions, 0u);
  EXPECT_EQ(stats.demotions, 0u);
  EXPECT_EQ(stats.migration_copies, 0u);
  // Learned state survives: residency queues still cover the VMM.
  EXPECT_EQ(policy.queue(Tier::kDram).size(), vmm.resident(Tier::kDram));
  EXPECT_EQ(policy.queue(Tier::kNvm).size(), vmm.resident(Tier::kNvm));
  EXPECT_GT(policy.sampling_tap().board().tracked(), 0u);
}

TEST(SampledExperiment, RunWorkloadIsDeterministic) {
  sim::ExperimentConfig config;
  config.policy = "sampled-lru";
  config.sample.sample_period = 4;
  config.sample.drain_period = 64;
  config.sample.migration_budget = 8;
  const auto& profile = synth::parsec_profile("canneal");
  const auto a = sim::run_workload(profile, 512, config, 42);
  const auto b = sim::run_workload(profile, 512, config, 42);
  ASSERT_TRUE(a.has_sampled);
  ASSERT_TRUE(b.has_sampled);
  EXPECT_EQ(a.amat().total(), b.amat().total());
  EXPECT_EQ(a.counts.accesses, b.counts.accesses);
  EXPECT_EQ(a.sampled.samples, b.sampled.samples);
  EXPECT_EQ(a.sampled.promotions, b.sampled.promotions);
  EXPECT_EQ(a.sampled.demotions, b.sampled.demotions);
  EXPECT_EQ(a.sampled.sample_drops, b.sampled.sample_drops);
  EXPECT_EQ(a.sampled.drains, b.sampled.drains);
  EXPECT_GT(a.sampled.samples, 0u);
}

TEST(SampledExperiment, TimelineCarriesSampledColumnsThatSumToTotals) {
  sim::ExperimentConfig config;
  config.policy = "sampled-lru";
  config.sample.sample_period = 2;
  config.sample.drain_period = 64;
  config.timeline_epoch = 997;
  const auto& profile = synth::parsec_profile("canneal");
  const auto result = sim::run_workload(profile, 512, config, 42);
  ASSERT_TRUE(result.has_sampled);
  ASSERT_FALSE(result.timeline.empty());
  std::uint64_t samples = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  for (const auto& r : result.timeline.epochs) {
    samples += r.samples;
    promotions += r.sampled_promotions;
    demotions += r.sampled_demotions;
  }
  EXPECT_EQ(samples, result.sampled.samples);
  EXPECT_EQ(promotions, result.sampled.promotions);
  EXPECT_EQ(demotions, result.sampled.demotions);
  EXPECT_EQ(result.timeline.epochs.back().migration_backlog,
            result.sampled.backlog);
  EXPECT_GT(samples, 0u);
}

TEST(SampledExperiment, NonSampledTimelineKeepsSampledColumnsZero) {
  sim::ExperimentConfig config;
  config.policy = "two-lru";
  config.timeline_epoch = 997;
  const auto& profile = synth::parsec_profile("canneal");
  const auto result = sim::run_workload(profile, 512, config, 42);
  EXPECT_FALSE(result.has_sampled);
  ASSERT_FALSE(result.timeline.empty());
  for (const auto& r : result.timeline.epochs) {
    EXPECT_EQ(r.samples, 0u);
    EXPECT_EQ(r.sampled_promotions, 0u);
    EXPECT_EQ(r.sampled_demotions, 0u);
    EXPECT_EQ(r.migration_backlog, 0u);
  }
}

}  // namespace
}  // namespace hymem::sample
