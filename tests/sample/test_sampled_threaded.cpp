// Threaded-mode tests: a real background migrator thread consuming the
// rings while the test thread serves accesses. Timing-dependent by design —
// assertions cover safety (invariants, conservation) and eventual drain,
// never exact migration counts. The runner CI job replays this binary
// under TSan; together with test_spsc_ring's producer/consumer stress it
// is the data-race certificate for the subsystem.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "check/sampled_invariants.hpp"
#include "os/vmm.hpp"
#include "sample/sampled_policy.hpp"
#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"

namespace hymem::sample {
namespace {

os::VmmConfig tiny_config(std::uint64_t dram, std::uint64_t nvm) {
  os::VmmConfig c;
  c.dram_frames = dram;
  c.nvm_frames = nvm;
  return c;
}

void step(SampledLruPolicy& policy, PageId page) {
  const Nanoseconds latency = policy.on_access(page, AccessType::kRead);
  policy.tap().on_access(page, AccessType::kRead, latency);
}

TEST(SampledThreaded, BackgroundMigratorDrainsTheRingsEventually) {
  os::Vmm vmm(tiny_config(2, 6));
  SampleConfig cfg;
  cfg.threaded = true;
  cfg.sample_period = 1;
  cfg.hot_threshold = 2;
  cfg.cooling_period = 1 << 20;
  cfg.drain_period = 8;
  cfg.migration_budget = 0;  // unlimited: backlog must reach zero
  SampledLruPolicy policy(vmm, cfg);

  for (PageId p = 0; p < 8; ++p) step(policy, p);
  for (int round = 0; round < 50; ++round) {
    for (PageId p = 4; p < 8; ++p) step(policy, p);
  }
  // Candidates were produced; wait (bounded) for the migrator to drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (policy.hot_ring().size() + policy.cold_ring().size() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  policy.stop_background();

  EXPECT_EQ(policy.hot_ring().size() + policy.cold_ring().size(), 0u);
  const auto stats = policy.sampled_stats();
  EXPECT_GT(stats.samples, 0u);
  // Quiesced: the full virtual-time invariant suite must hold.
  check::check_invariants(policy);
}

TEST(SampledThreaded, StopBackgroundIsIdempotentAndStatsStayConsistent) {
  os::Vmm vmm(tiny_config(1, 3));
  SampleConfig cfg;
  cfg.threaded = true;
  cfg.sample_period = 1;
  cfg.hot_threshold = 1;
  cfg.drain_period = 4;
  SampledLruPolicy policy(vmm, cfg);
  for (int round = 0; round < 100; ++round) {
    step(policy, static_cast<PageId>(round % 5));
  }
  policy.stop_background();
  policy.stop_background();  // second call must be a no-op
  const auto stats = policy.sampled_stats();
  // Copy conservation: every promotion and every demotion moves exactly
  // one page (a swap is one of each, two copies).
  EXPECT_EQ(stats.migration_copies, stats.promotions + stats.demotions);
  check::check_invariants(policy);
}

TEST(SampledThreaded, ExperimentPathRunsThreadedAndStopsCleanly) {
  sim::ExperimentConfig config;
  config.policy = "sampled-lru";
  config.sample.threaded = true;
  config.sample.sample_period = 4;
  config.sample.drain_period = 64;
  config.sample.migration_budget = 8;
  const auto& profile = synth::parsec_profile("canneal");
  const auto result = sim::run_workload(profile, 512, config, 42);
  ASSERT_TRUE(result.has_sampled);
  EXPECT_GT(result.counts.accesses, 0u);
  EXPECT_GT(result.sampled.samples, 0u);
  EXPECT_GT(result.amat().total(), 0.0);
}

}  // namespace
}  // namespace hymem::sample
