#include "sim/policy_factory.hpp"

#include <gtest/gtest.h>

#include "core/migration_scheme.hpp"

namespace hymem::sim {
namespace {

os::VmmConfig config_for(const std::string& name) {
  os::VmmConfig c;
  if (name.rfind("dram-only", 0) == 0) {
    c.dram_frames = 8;
    c.nvm_frames = 0;
  } else if (name.rfind("nvm-only", 0) == 0) {
    c.dram_frames = 0;
    c.nvm_frames = 8;
  } else {
    c.dram_frames = 2;
    c.nvm_frames = 6;
  }
  return c;
}

TEST(PolicyFactory, BuildsEveryAdvertisedPolicy) {
  for (const auto& name : policy_names()) {
    os::Vmm vmm(config_for(name));
    const auto policy = make_policy(name, vmm);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(std::string(policy->name()).rfind(name, 0) == 0 ||
                  name.rfind("dram-only", 0) == 0 ||
                  name.rfind("nvm-only", 0) == 0,
              true)
        << name << " vs " << policy->name();
    // Every policy must survive a few accesses.
    for (PageId p = 0; p < 12; ++p) policy->on_access(p, AccessType::kRead);
  }
}

TEST(PolicyFactory, SingleTierVariantsWithReplacementSuffix) {
  for (const char* name :
       {"dram-only:clock", "dram-only:clock-pro", "dram-only:car",
        "nvm-only:lru", "nvm-only:fifo"}) {
    os::Vmm vmm(config_for(name));
    const auto policy = make_policy(name, vmm);
    for (PageId p = 0; p < 12; ++p) policy->on_access(p, AccessType::kRead);
    SUCCEED() << name;
  }
}

TEST(PolicyFactory, IsSingleTierClassification) {
  EXPECT_TRUE(is_single_tier("dram-only"));
  EXPECT_TRUE(is_single_tier("nvm-only:clock"));
  EXPECT_FALSE(is_single_tier("two-lru"));
  EXPECT_FALSE(is_single_tier("clock-dwf"));
}

TEST(PolicyFactory, MigrationConfigForwarded) {
  os::Vmm vmm(config_for("two-lru"));
  core::MigrationConfig cfg;
  cfg.read_threshold = 17;
  const auto policy = make_policy("two-lru", vmm, cfg);
  const auto* scheme = dynamic_cast<core::TwoLruMigrationPolicy*>(policy.get());
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(scheme->read_threshold(), 17u);
}

TEST(PolicyFactory, AdaptiveVariantHasController) {
  os::Vmm vmm(config_for("two-lru-adaptive"));
  const auto policy = make_policy("two-lru-adaptive", vmm);
  const auto* scheme = dynamic_cast<core::TwoLruMigrationPolicy*>(policy.get());
  ASSERT_NE(scheme, nullptr);
  EXPECT_NE(scheme->controller(), nullptr);
}

TEST(PolicyFactory, UnknownNamesRejected) {
  os::Vmm vmm(config_for("two-lru"));
  EXPECT_THROW(make_policy("nope", vmm), std::invalid_argument);
  EXPECT_THROW(make_policy("dram-onlyx", vmm), std::invalid_argument);
  os::Vmm vmm2(config_for("dram-only"));
  EXPECT_THROW(make_policy("dram-only:bogus", vmm2), std::invalid_argument);
}

}  // namespace
}  // namespace hymem::sim
