#include "sim/policy_factory.hpp"

#include <gtest/gtest.h>

#include "core/migration_scheme.hpp"
#include "sample/sampled_policy.hpp"

namespace hymem::sim {
namespace {

os::VmmConfig config_for(const std::string& name) {
  os::VmmConfig c;
  if (name.rfind("dram-only", 0) == 0) {
    c.dram_frames = 8;
    c.nvm_frames = 0;
  } else if (name.rfind("nvm-only", 0) == 0) {
    c.dram_frames = 0;
    c.nvm_frames = 8;
  } else {
    c.dram_frames = 2;
    c.nvm_frames = 6;
  }
  return c;
}

TEST(PolicyFactory, BuildsEveryAdvertisedPolicy) {
  for (const auto& name : policy_names()) {
    os::Vmm vmm(config_for(name));
    const auto policy = make_policy(name, vmm);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(std::string(policy->name()).rfind(name, 0) == 0 ||
                  name.rfind("dram-only", 0) == 0 ||
                  name.rfind("nvm-only", 0) == 0,
              true)
        << name << " vs " << policy->name();
    // Every policy must survive a few accesses.
    for (PageId p = 0; p < 12; ++p) policy->on_access(p, AccessType::kRead);
  }
}

TEST(PolicyFactory, SingleTierVariantsWithReplacementSuffix) {
  for (const char* name :
       {"dram-only:clock", "dram-only:clock-pro", "dram-only:car",
        "nvm-only:lru", "nvm-only:fifo"}) {
    os::Vmm vmm(config_for(name));
    const auto policy = make_policy(name, vmm);
    for (PageId p = 0; p < 12; ++p) policy->on_access(p, AccessType::kRead);
    SUCCEED() << name;
  }
}

TEST(PolicyFactory, IsSingleTierClassification) {
  EXPECT_TRUE(is_single_tier("dram-only"));
  EXPECT_TRUE(is_single_tier("nvm-only:clock"));
  EXPECT_FALSE(is_single_tier("two-lru"));
  EXPECT_FALSE(is_single_tier("clock-dwf"));
}

TEST(PolicyFactory, MigrationConfigForwarded) {
  os::Vmm vmm(config_for("two-lru"));
  core::MigrationConfig cfg;
  cfg.read_threshold = 17;
  const auto policy = make_policy("two-lru", vmm, cfg);
  const auto* scheme = dynamic_cast<core::TwoLruMigrationPolicy*>(policy.get());
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(scheme->read_threshold(), 17u);
}

TEST(PolicyFactory, AdaptiveVariantHasController) {
  os::Vmm vmm(config_for("two-lru-adaptive"));
  const auto policy = make_policy("two-lru-adaptive", vmm);
  const auto* scheme = dynamic_cast<core::TwoLruMigrationPolicy*>(policy.get());
  ASSERT_NE(scheme, nullptr);
  EXPECT_NE(scheme->controller(), nullptr);
}

TEST(PolicyFactory, UnknownNamesRejected) {
  os::Vmm vmm(config_for("two-lru"));
  EXPECT_THROW(make_policy("nope", vmm), std::invalid_argument);
  EXPECT_THROW(make_policy("dram-onlyx", vmm), std::invalid_argument);
  os::Vmm vmm2(config_for("dram-only"));
  EXPECT_THROW(make_policy("dram-only:bogus", vmm2), std::invalid_argument);
}

// The error message must enumerate every registered name, so a typo'd
// --policy flag tells the user what would have worked.
TEST(PolicyFactory, UnknownNameErrorEnumeratesPolicies) {
  os::Vmm vmm(config_for("two-lru"));
  try {
    make_policy("nope", vmm);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const auto& name : policy_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name;
    }
    EXPECT_NE(msg.find("sampled-lru"), std::string::npos);
  }
}

TEST(PolicyFactory, UnknownReplacementErrorEnumeratesReplacements) {
  os::Vmm vmm(config_for("dram-only"));
  try {
    make_policy("dram-only:bogus", vmm);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* name : {"lru", "fifo", "clock"}) {
      EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name;
    }
  }
}

// Split-budget contexts (partitioned shards, tenant groups) cannot host the
// sampled-* family: its hotness tap and background migrator are per-run
// global structures. The classification and the rejection message are API.
TEST(PolicyFactory, ShardableNamesExcludeExactlyTheSampledFamily) {
  const auto shardable = shardable_policy_names();
  for (const auto& name : shardable) {
    EXPECT_TRUE(is_shardable(name)) << name;
    EXPECT_NE(name.rfind("sampled-", 0), 0u) << name;
  }
  EXPECT_FALSE(is_shardable("sampled-lru"));
  EXPECT_TRUE(is_shardable("two-lru"));
  // Everything advertised is either shardable or sampled-*.
  EXPECT_EQ(shardable.size() + 1, policy_names().size());
}

TEST(PolicyFactory, UnshardableErrorNamesContextAndEnumeratesSupport) {
  try {
    throw_unshardable_policy("tenant groups", "sampled-lru");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("tenant groups does not support policy: sampled-lru"),
              std::string::npos)
        << msg;
    for (const auto& name : shardable_policy_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name;
    }
  }
}

TEST(PolicyFactory, SampledLruForwardsSampleConfig) {
  os::Vmm vmm(config_for("sampled-lru"));
  sample::SampleConfig scfg;
  scfg.sample_period = 3;
  scfg.migration_budget = 7;
  const auto policy = make_policy("sampled-lru", vmm, {}, scfg);
  const auto* sampled =
      dynamic_cast<sample::SampledLruPolicy*>(policy.get());
  ASSERT_NE(sampled, nullptr);
  EXPECT_EQ(sampled->config().sample_period, 3u);
  EXPECT_EQ(sampled->config().migration_budget, 7u);
}

}  // namespace
}  // namespace hymem::sim
