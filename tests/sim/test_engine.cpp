#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/policy_factory.hpp"
#include "synth/generator.hpp"

namespace hymem::sim {
namespace {

trace::Trace tiny_trace() {
  synth::WorkloadProfile p;
  p.name = "tiny";
  p.working_set_kb = 128;  // 32 pages
  p.reads = 3000;
  p.writes = 1000;
  synth::GeneratorOptions o;
  o.seed = 13;
  return synth::generate(p, o);
}

os::VmmConfig hybrid_config() {
  os::VmmConfig c;
  c.dram_frames = 3;
  c.nvm_frames = 21;  // 75% of 32 pages total
  return c;
}

TEST(Engine, CountsCoverEveryAccess) {
  os::Vmm vmm(hybrid_config());
  const auto policy = make_policy("two-lru", vmm);
  const auto trace = tiny_trace();
  const auto result = run_trace(*policy, trace, 1.0);
  EXPECT_EQ(result.accesses, trace.size());
  EXPECT_EQ(result.counts.hits() + result.counts.page_faults, trace.size());
  EXPECT_EQ(result.workload, "tiny");
  EXPECT_EQ(result.policy, "two-lru");
}

TEST(Engine, VisibleLatencyEqualsModelAmat) {
  // Every latency the policies report flows through the same VMM cost
  // model that Eq. 1 reconstructs from counts, so the two must agree.
  for (const char* name : {"dram-only", "nvm-only", "clock-dwf", "two-lru",
                           "static-partition", "dram-cache"}) {
    os::VmmConfig cfg = hybrid_config();
    if (std::string(name) == "dram-only") {
      cfg.dram_frames = 24;
      cfg.nvm_frames = 0;
    } else if (std::string(name) == "nvm-only") {
      cfg.dram_frames = 0;
      cfg.nvm_frames = 24;
    }
    os::Vmm vmm(cfg);
    const auto policy = make_policy(name, vmm);
    const auto result = run_trace(*policy, tiny_trace(), 1.0);
    const auto breakdown = result.amat();
    EXPECT_NEAR(result.visible_latency_ns,
                breakdown.total() * static_cast<double>(result.accesses),
                result.visible_latency_ns * 1e-9 + 1e-3)
        << name;
  }
}

TEST(Engine, DerivedMetricsAvailable) {
  os::Vmm vmm(hybrid_config());
  const auto policy = make_policy("two-lru", vmm);
  const auto result = run_trace(*policy, tiny_trace(), 0.5);
  EXPECT_GT(result.amat().total(), 0.0);
  EXPECT_GT(result.appr().total(), 0.0);
  EXPECT_GT(result.appr().static_nj, 0.0);
  // Faults always fill DRAM under two-lru; with a full memory every fill
  // eventually demotes, so NVM writes must be nonzero.
  EXPECT_GT(result.nvm_writes().total(), 0u);
}

TEST(Engine, EmptyTraceRejected) {
  os::Vmm vmm(hybrid_config());
  const auto policy = make_policy("two-lru", vmm);
  trace::Trace empty;
  // invalid_argument (bad input, catchable by the sweep runner), not the
  // HYMEM_CHECK logic_error that used to kill the whole process.
  EXPECT_THROW(run_trace(*policy, empty, 1.0), std::invalid_argument);
}


TEST(Engine, WarmupPassResetsAccountingButKeepsResidency) {
  os::Vmm vmm(hybrid_config());
  const auto policy = make_policy("two-lru", vmm);
  const auto trace = tiny_trace();
  const auto result = run_trace(*policy, trace, 1.0, /*warmup_passes=*/1);
  // Warmup faulted the cold pages; the measured pass starts warm, so its
  // fault count must be far below the footprint.
  EXPECT_LT(result.counts.page_faults, 32u);
  // And the counted window still covers every access exactly once.
  EXPECT_EQ(result.counts.hits() + result.counts.page_faults, trace.size());
}

TEST(Engine, WarmupReducesMeasuredFaults) {
  auto run_with = [&](unsigned warmup) {
    os::Vmm vmm(hybrid_config());
    const auto policy = make_policy("two-lru", vmm);
    return run_trace(*policy, tiny_trace(), 1.0, warmup).counts.page_faults;
  };
  EXPECT_LT(run_with(1), run_with(0));
}

TEST(Engine, StreamedRunMatchesInMemoryRun) {
  const auto trace = tiny_trace();
  std::stringstream buf;
  {
    trace::StreamTraceWriter writer(buf, trace.name(), 512);
    for (const auto& a : trace) writer.append(a);
    writer.finish();
  }
  os::Vmm vmm_a(hybrid_config());
  const auto policy_a = make_policy("two-lru", vmm_a);
  const auto in_memory = run_trace(*policy_a, trace, 1.0);

  os::Vmm vmm_b(hybrid_config());
  const auto policy_b = make_policy("two-lru", vmm_b);
  trace::StreamTraceReader reader(buf);
  const auto streamed = run_stream(*policy_b, reader, 1.0);

  EXPECT_EQ(streamed.accesses, in_memory.accesses);
  EXPECT_EQ(streamed.counts.page_faults, in_memory.counts.page_faults);
  EXPECT_EQ(streamed.counts.migrations(), in_memory.counts.migrations());
  EXPECT_DOUBLE_EQ(streamed.visible_latency_ns, in_memory.visible_latency_ns);
  EXPECT_EQ(streamed.workload, in_memory.workload);
}

TEST(Engine, BlockRunMatchesReferenceRunExactly) {
  const auto trace = tiny_trace();
  for (const unsigned warmup : {0u, 1u, 2u}) {
    os::Vmm vmm_a(hybrid_config());
    const auto policy_a = make_policy("two-lru", vmm_a);
    const auto reference = run_trace(*policy_a, trace, 1.0, warmup);

    os::Vmm vmm_b(hybrid_config());
    const auto policy_b = make_policy("two-lru", vmm_b);
    trace::TraceBlockSource source(trace, vmm_b.config().page_size, 97);
    const auto blocked = run_blocks(*policy_b, source, 1.0, warmup);

    EXPECT_EQ(blocked.accesses, reference.accesses) << warmup;
    EXPECT_EQ(blocked.counts.page_faults, reference.counts.page_faults)
        << warmup;
    EXPECT_EQ(blocked.counts.migrations(), reference.counts.migrations())
        << warmup;
    EXPECT_DOUBLE_EQ(blocked.visible_latency_ns, reference.visible_latency_ns)
        << warmup;
    EXPECT_EQ(blocked.workload, reference.workload);
    EXPECT_EQ(blocked.policy, reference.policy);
  }
}

TEST(Engine, BlockRunObserverSeesOnlyMeasuredAccesses) {
  // The observer path replays per access with identical semantics; the
  // sampled timeline must cover exactly the measured pass.
  const auto trace = tiny_trace();
  os::Vmm vmm(hybrid_config());
  const auto policy = make_policy("two-lru", vmm);
  trace::TraceBlockSource source(trace, vmm.config().page_size, 64);
  obs::EpochSampler sampler(/*epoch_length=*/500, vmm, nullptr, 1.0);
  const auto result =
      run_blocks(*policy, source, 1.0, /*warmup_passes=*/1, &sampler);
  const auto timeline = sampler.take_timeline();
  std::uint64_t covered = 0;
  for (const auto& epoch : timeline.epochs) covered += epoch.delta.accesses;
  EXPECT_EQ(covered, result.accesses);
  EXPECT_EQ(result.accesses, trace.size());
}

TEST(Engine, EmptyBlockSourceRejected) {
  os::Vmm vmm(hybrid_config());
  const auto policy = make_policy("two-lru", vmm);
  trace::Trace empty;
  empty.set_name("void");
  trace::TraceBlockSource source(empty, vmm.config().page_size, 16);
  EXPECT_THROW(run_blocks(*policy, source, 1.0), std::invalid_argument);
}

TEST(Engine, IntegratedTransferModeShortensVisibleLatency) {
  auto run_mode = [&](mem::TransferMode mode) {
    os::VmmConfig cfg = hybrid_config();
    cfg.transfer_mode = mode;
    os::Vmm vmm(cfg);
    const auto policy = make_policy("clock-dwf", vmm);
    return run_trace(*policy, tiny_trace(), 1.0);
  };
  const auto dma = run_mode(mem::TransferMode::kDma);
  const auto integrated = run_mode(mem::TransferMode::kIntegrated);
  ASSERT_GT(dma.counts.migrations(), 0u);
  EXPECT_LT(integrated.visible_latency_ns, dma.visible_latency_ns);
  // The latency identity must hold in both modes (model knows the mode).
  for (const auto* r : {&dma, &integrated}) {
    EXPECT_NEAR(r->visible_latency_ns,
                r->amat().total() * static_cast<double>(r->accesses),
                r->visible_latency_ns * 1e-9 + 1e-3);
  }
}

}  // namespace
}  // namespace hymem::sim
