#include "sim/reporter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace hymem::sim {
namespace {

TEST(Stack, TotalSumsParts) {
  Stack s{{0.5, 0.3, 0.2}};
  EXPECT_DOUBLE_EQ(s.total(), 1.0);
  EXPECT_DOUBLE_EQ(Stack{}.total(), 0.0);
}

FigureTable sample_table() {
  FigureTable t("test figure", {"static", "dynamic"}, {"a", "b"});
  t.add("w1", {Stack{{1.0, 1.0}}, Stack{{2.0, 2.0}}});
  t.add("w2", {Stack{{2.0, 2.0}}, Stack{{4.0, 4.0}}});
  return t;
}

TEST(FigureTable, MeansOverTotals) {
  const auto t = sample_table();
  // Series a totals: 2, 4 -> G-Mean sqrt(8)=2.828..., A-Mean 3.
  EXPECT_NEAR(t.geomean_total(0), 2.8284271, 1e-6);
  EXPECT_DOUBLE_EQ(t.amean_total(0), 3.0);
  EXPECT_NEAR(t.geomean_total(1), 5.6568542, 1e-6);
}

TEST(FigureTable, PrintContainsWorkloadsAndMeans) {
  const auto t = sample_table();
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("test figure"), std::string::npos);
  EXPECT_NE(s.find("w1"), std::string::npos);
  EXPECT_NE(s.find("G-Mean"), std::string::npos);
  EXPECT_NE(s.find("A-Mean"), std::string::npos);
  EXPECT_NE(s.find("a:static"), std::string::npos);
  EXPECT_NE(s.find("b:total"), std::string::npos);
}

TEST(FigureTable, CsvRowPerWorkload) {
  const auto t = sample_table();
  std::ostringstream os;
  t.print_csv(os);
  const std::string s = os.str();
  // header + 2 workloads = 3 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  EXPECT_NE(s.find("workload,a:static"), std::string::npos);
}

TEST(FigureTable, ArityMismatchRejected) {
  FigureTable t("x", {"c1"}, {"s1"});
  EXPECT_THROW(t.add("w", {Stack{{1.0}}, Stack{{1.0}}}), std::logic_error);
  EXPECT_THROW(t.add("w", {Stack{{1.0, 2.0}}}), std::logic_error);
}

TEST(Reporter, MemoryCharacteristicsHeader) {
  std::ostringstream os;
  print_memory_characteristics(os, mem::dram_table4(), mem::pcm_table4());
  const std::string s = os.str();
  EXPECT_NE(s.find("Table IV"), std::string::npos);
  EXPECT_NE(s.find("DRAM"), std::string::npos);
  EXPECT_NE(s.find("NVM(PCM)"), std::string::npos);
  EXPECT_NE(s.find("100/350"), std::string::npos);
}

}  // namespace
}  // namespace hymem::sim
