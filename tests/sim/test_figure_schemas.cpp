// Golden tests pinning every machine-readable output header: the CSV header
// of each bench_fig* figure (via the schema registry the benches now build
// their tables from), the bench_table* column lists, and the flat RunResult
// CSV projection. Downstream plotting scripts key on these exact strings, so
// any change here is an interface break and must be deliberate.
#include "sim/figure_schemas.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "sim/results_io.hpp"

namespace hymem::sim {
namespace {

using Header = std::vector<std::string>;

TEST(FigureSchemas, RegistryCoversEveryPaperFigure) {
  std::set<std::string> ids;
  for (const auto& s : figure_schemas()) ids.insert(s.id);
  EXPECT_EQ(ids, (std::set<std::string>{"fig1", "fig2a", "fig2b", "fig2c",
                                        "fig4a", "fig4b", "fig4c"}));
  std::set<std::string> tables;
  for (const auto& s : table_schemas()) tables.insert(s.id);
  // "timeline", "sampled-frontier", "analytic-frontier" and the two tenant
  // tables are not paper artifacts but ride in the same registry so their
  // column lists are pinned the same way.
  EXPECT_EQ(tables,
            (std::set<std::string>{"table1", "table3", "timeline",
                                   "sampled-frontier", "analytic-frontier",
                                   "tenant-fairness", "tenant-timeline"}));
}

TEST(FigureSchemas, LookupReturnsTheRegisteredEntryOrThrows) {
  EXPECT_EQ(figure_schema("fig4a").title, "Fig. 4a: APPR / DRAM-only APPR");
  EXPECT_EQ(table_schema("table1").columns.front(), "workload");
  EXPECT_THROW(figure_schema("fig3"), std::logic_error);
  EXPECT_THROW(table_schema("table2"), std::logic_error);
}

// The exact CSV header each figure bench emits with --csv. One case per
// paper artifact; a mismatch means a plotting-script interface break.
TEST(FigureSchemas, GoldenFig1Header) {
  EXPECT_EQ(figure_schema("fig1").csv_header(),
            (Header{"workload", "dram-only:static", "dram-only:dynamic",
                    "dram-only:pagefault", "dram-only:total"}));
}

TEST(FigureSchemas, GoldenFig2aHeader) {
  EXPECT_EQ(figure_schema("fig2a").csv_header(),
            (Header{"workload", "clock-dwf:static", "clock-dwf:dynamic",
                    "clock-dwf:migration", "clock-dwf:total"}));
}

TEST(FigureSchemas, GoldenFig2bHeader) {
  EXPECT_EQ(figure_schema("fig2b").csv_header(),
            (Header{"workload", "clock-dwf:requests", "clock-dwf:migration",
                    "clock-dwf:total"}));
}

TEST(FigureSchemas, GoldenFig2cHeader) {
  EXPECT_EQ(figure_schema("fig2c").csv_header(),
            (Header{"workload", "clock-dwf:pagefault", "clock-dwf:migration",
                    "clock-dwf:demand", "clock-dwf:total"}));
}

TEST(FigureSchemas, GoldenFig4aHeader) {
  EXPECT_EQ(figure_schema("fig4a").csv_header(),
            (Header{"workload", "clock-dwf:static", "clock-dwf:dynamic",
                    "clock-dwf:migration", "clock-dwf:total", "two-lru:static",
                    "two-lru:dynamic", "two-lru:migration", "two-lru:total"}));
}

TEST(FigureSchemas, GoldenFig4bHeader) {
  EXPECT_EQ(
      figure_schema("fig4b").csv_header(),
      (Header{"workload", "clock-dwf:pagefault", "clock-dwf:migration",
              "clock-dwf:demand", "clock-dwf:total", "two-lru:pagefault",
              "two-lru:migration", "two-lru:demand", "two-lru:total"}));
}

TEST(FigureSchemas, GoldenFig4cHeader) {
  EXPECT_EQ(figure_schema("fig4c").csv_header(),
            (Header{"workload", "two-lru:requests", "two-lru:migration",
                    "two-lru:total"}));
}

TEST(FigureSchemas, GoldenTable1Columns) {
  EXPECT_EQ(table_schema("table1").columns,
            (Header{"workload", "PHitDRAM", "PHitNVM", "PMiss", "PWDRAM",
                    "PWNVM", "PMigD", "PMigN", "PDiskToD"}));
}

TEST(FigureSchemas, GoldenTable3Columns) {
  EXPECT_EQ(table_schema("table3").columns,
            (Header{"Workload", "Working Set (KB)", "# Reads", "# Writes",
                    "read %", "write %", "write-dominant pages"}));
}

// bench_sampled_frontier's export: the accuracy-vs-overhead frontier of
// the sampled-hotness policy against the omniscient baselines.
TEST(FigureSchemas, GoldenSampledFrontierColumns) {
  EXPECT_EQ(table_schema("sampled-frontier").columns,
            (Header{"workload", "policy", "variant", "sample_period",
                    "ring_capacity", "migration_budget", "drain_period",
                    "amat_total_ns", "amat_vs_two_lru", "appr_total_nj",
                    "nvm_writes_total", "promotions", "demotions",
                    "sample_drops", "migration_backlog"}));
}

// bench_analytic's export: closed-form predictions against exhaustive
// simulation over a threshold/window grid, with predicted-vs-simulated
// rank columns for the frontier comparison.
TEST(FigureSchemas, GoldenAnalyticFrontierColumns) {
  EXPECT_EQ(table_schema("analytic-frontier").columns,
            (Header{"workload", "policy", "variant", "read_threshold",
                    "write_threshold", "read_perc", "write_perc",
                    "predicted_amat_ns", "simulated_amat_ns", "amat_rel_err",
                    "predicted_hit_ratio", "simulated_hit_ratio",
                    "predicted_rank", "simulated_rank", "in_top3_both"}));
}

// bench_tenants' exports: the per-cell multi-tenant fairness/isolation
// grid and the per-epoch churn timeline of one cell.
TEST(FigureSchemas, GoldenTenantFairnessColumns) {
  EXPECT_EQ(table_schema("tenant-fairness").columns,
            (Header{"workload", "policy", "budget_mode", "shards", "tenants",
                    "seed", "accesses", "amat_total_ns", "amat_p50_ns",
                    "amat_p95_ns", "amat_p99_ns", "jain_index",
                    "victim_retention", "victim_retention_solo",
                    "retention_delta", "nvm_writes_total", "reconfigurations",
                    "reconfig_evictions", "visible_latency_ns"}));
}

TEST(FigureSchemas, GoldenTenantTimelineColumns) {
  EXPECT_EQ(table_schema("tenant-timeline").columns,
            (Header{"workload", "policy", "budget_mode", "shards", "epoch",
                    "end_access", "active_tenants", "arrivals", "departures",
                    "amat_total_ns", "amat_p95_ns", "jain_index",
                    "dram_resident", "nvm_resident", "reconfigurations"}));
}

// The flat RunResult CSV projection the sweep runner splices into its
// export (src/sim/results_io). 28 columns, stable order.
TEST(FigureSchemas, GoldenRunResultCsvHeader) {
  EXPECT_EQ(csv_header(),
            (Header{"workload",
                    "policy",
                    "accesses",
                    "duration_s",
                    "dram_read_hits",
                    "dram_write_hits",
                    "nvm_read_hits",
                    "nvm_write_hits",
                    "page_faults",
                    "fills_to_dram",
                    "fills_to_nvm",
                    "migrations_to_dram",
                    "migrations_to_nvm",
                    "dirty_evictions",
                    "page_factor",
                    "amat_hit_ns",
                    "amat_fault_ns",
                    "amat_migration_ns",
                    "amat_total_ns",
                    "appr_static_nj",
                    "appr_hit_nj",
                    "appr_fault_fill_nj",
                    "appr_migration_nj",
                    "appr_total_nj",
                    "nvm_writes_demand",
                    "nvm_writes_fault_fill",
                    "nvm_writes_migration",
                    "nvm_writes_total"}));
}

// make_table() must honor the schema verbatim (title and shape), so a bench
// built from the registry cannot drift from the pinned headers above.
TEST(FigureSchemas, MakeTableMatchesSchemaShape) {
  for (const auto& s : figure_schemas()) {
    const FigureTable table = s.make_table();
    EXPECT_EQ(table.title(), s.title);
    EXPECT_EQ(table.components(), s.components);
    EXPECT_EQ(table.series(), s.series);
    EXPECT_EQ(table.csv_header(), s.csv_header());
  }
}

}  // namespace
}  // namespace hymem::sim
