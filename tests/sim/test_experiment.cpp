#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace hymem::sim {
namespace {

TEST(Sizing, PaperRuleSeventyFivePercentAndTenPercent) {
  ExperimentConfig cfg;
  cfg.policy = "two-lru";
  const auto s = size_memory(1000, cfg);
  EXPECT_EQ(s.total_frames, 750u);
  EXPECT_EQ(s.dram_frames, 75u);
  EXPECT_EQ(s.nvm_frames, 675u);
}

TEST(Sizing, SingleTierGetsWholeBudget) {
  ExperimentConfig cfg;
  cfg.policy = "dram-only";
  const auto s = size_memory(1000, cfg);
  EXPECT_EQ(s.dram_frames, 750u);
  EXPECT_EQ(s.nvm_frames, 0u);
  cfg.policy = "nvm-only";
  const auto s2 = size_memory(1000, cfg);
  EXPECT_EQ(s2.nvm_frames, 750u);
  EXPECT_EQ(s2.dram_frames, 0u);
}

TEST(Sizing, HybridAlwaysHasBothModules) {
  ExperimentConfig cfg;
  cfg.policy = "two-lru";
  cfg.dram_fraction = 0.0001;  // would round to 0
  const auto s = size_memory(100, cfg);
  EXPECT_GE(s.dram_frames, 1u);
  EXPECT_GE(s.nvm_frames, 1u);
  cfg.dram_fraction = 0.9999;
  const auto s2 = size_memory(100, cfg);
  EXPECT_GE(s2.nvm_frames, 1u);
}

TEST(Sizing, TinyFootprintStillViable) {
  ExperimentConfig cfg;
  cfg.policy = "two-lru";
  const auto s = size_memory(2, cfg);
  EXPECT_GE(s.total_frames, 2u);
}

TEST(Experiment, RunWorkloadEndToEnd) {
  ExperimentConfig cfg;
  cfg.policy = "two-lru";
  const auto& profile = synth::parsec_profile("blackscholes");
  const auto result = run_workload(profile, /*scale=*/4, cfg);
  EXPECT_EQ(result.workload, "blackscholes");
  EXPECT_EQ(result.accesses, profile.scaled(4).total_accesses());
  EXPECT_GT(result.counts.page_faults, 0u) << "memory < footprint: must miss";
  EXPECT_GT(result.appr().static_nj, 0.0);
}

TEST(Experiment, MemorySizedFromTraceFootprint) {
  ExperimentConfig cfg;
  cfg.policy = "two-lru";
  trace::Trace t("micro");
  for (PageId p = 0; p < 100; ++p) {
    t.append(p * 4096, AccessType::kRead);
    t.append(p * 4096, AccessType::kRead);
  }
  const auto result = run_experiment(t, 1.0, cfg);
  // 75 frames total => some faults beyond the 75 hottest pages.
  EXPECT_EQ(result.params.dram_bytes + result.params.nvm_bytes,
            75u * 4096);
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentConfig cfg;
  cfg.policy = "clock-dwf";
  const auto& profile = synth::parsec_profile("bodytrack");
  const auto a = run_workload(profile, 64, cfg, /*seed=*/5);
  const auto b = run_workload(profile, 64, cfg, /*seed=*/5);
  EXPECT_EQ(a.counts.page_faults, b.counts.page_faults);
  EXPECT_EQ(a.counts.migrations(), b.counts.migrations());
  EXPECT_DOUBLE_EQ(a.amat().total(), b.amat().total());
}

TEST(Experiment, InvalidFootprintRejected) {
  ExperimentConfig cfg;
  // Empty workloads are bad *input*: invalid_argument so a sweep converts
  // the cell into a structured failure instead of dying.
  EXPECT_THROW(size_memory(0, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace hymem::sim
