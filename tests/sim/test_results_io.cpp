#include "sim/results_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"

namespace hymem::sim {
namespace {

RunResult sample_result() {
  ExperimentConfig config;
  config.policy = "two-lru";
  return run_workload(synth::parsec_profile("bodytrack"), 256, config, 42);
}

TEST(ResultsIo, ContainsIdentificationAndSections) {
  const std::string json = to_json(sample_result());
  EXPECT_NE(json.find("\"workload\": \"bodytrack\""), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"two-lru\""), std::string::npos);
  for (const char* section :
       {"\"counts\"", "\"amat_ns\"", "\"appr_nj\"", "\"nvm_writes\""}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
}

TEST(ResultsIo, BalancedBracesAndQuotes) {
  const std::string json = to_json(sample_result());
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(ResultsIo, NumbersMatchResult) {
  const auto result = sample_result();
  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"accesses\": " + std::to_string(result.accesses)),
            std::string::npos);
  EXPECT_NE(json.find("\"page_faults\": " +
                      std::to_string(result.counts.page_faults)),
            std::string::npos);
  EXPECT_NE(json.find("\"page_factor\": 64"), std::string::npos);
}

TEST(ResultsIo, ArrayForm) {
  const auto result = sample_result();
  std::ostringstream os;
  write_json(std::vector<RunResult>{result, result}, os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), 1);
  EXPECT_EQ(std::count(json.begin(), json.end(), ']'), 1);
  // Two objects -> the workload key appears twice.
  std::size_t first = json.find("\"workload\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(json.find("\"workload\"", first + 1), std::string::npos);
}

TEST(ResultsIo, EscapesSpecialCharacters) {
  RunResult r = sample_result();
  r.workload = "with \"quotes\" and\nnewline";
  const std::string json = to_json(r);
  EXPECT_NE(json.find("with \\\"quotes\\\" and\\nnewline"), std::string::npos);
}

TEST(ResultsIo, EscapesFullControlRange) {
  // Regression: the escaper handled only \" \\ \n; raw \x01..\x1f bytes
  // (e.g. ESC from a captured trace name) produced invalid JSON. It now
  // delegates to util::json_escape, which covers the RFC 8259 range.
  RunResult r = sample_result();
  r.workload = std::string("esc\x1b") + "\x01tab\tend";
  const std::string json = to_json(r);
  EXPECT_NE(json.find("esc\\u001b\\u0001tab\\tend"), std::string::npos) << json;
  for (const char c : json) {
    if (c == '\n') continue;  // the writer's own pretty-printing
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control byte in JSON output";
  }
}

TEST(ResultsIo, CsvFieldsMatchHeaderWidthAndIdentification) {
  const auto result = sample_result();
  const auto fields = csv_fields(result);
  ASSERT_EQ(fields.size(), csv_header().size());
  EXPECT_EQ(csv_header()[0], "workload");
  EXPECT_EQ(csv_header()[1], "policy");
  EXPECT_EQ(fields[0], result.workload);
  EXPECT_EQ(fields[1], result.policy);
}

TEST(ResultsIo, CsvRoundTripHasHeaderPlusOneRowPerResult) {
  const std::vector<RunResult> results = {sample_result(), sample_result()};
  std::ostringstream os;
  write_csv(results, os);
  const std::string text = os.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_EQ(text.rfind("workload,policy,accesses", 0), 0u);
  EXPECT_NE(text.find("bodytrack,two-lru,"), std::string::npos);
}

TEST(ResultsIo, CsvIsDeterministicAcrossCalls) {
  const std::vector<RunResult> results = {sample_result()};
  std::ostringstream a, b;
  write_csv(results, a);
  write_csv(results, b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace hymem::sim
