#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

namespace hymem::trace {
namespace {

TEST(TraceStats, CountsReadsWritesAndFootprint) {
  Trace t;
  t.append(0, AccessType::kRead);
  t.append(100, AccessType::kWrite);       // same page as 0
  t.append(4096, AccessType::kRead);       // page 1
  t.append(3 * 4096, AccessType::kWrite);  // page 3
  const TraceStats s = characterize(t, 4096);
  EXPECT_EQ(s.accesses, 4u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 2u);
  EXPECT_EQ(s.distinct_pages, 3u);
  EXPECT_EQ(s.working_set_kb(), 12u);
  EXPECT_DOUBLE_EQ(s.read_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(s.write_fraction(), 0.5);
}

TEST(TraceStats, WriteDominantPages) {
  Trace t;
  t.append(0, AccessType::kWrite);
  t.append(0, AccessType::kWrite);
  t.append(0, AccessType::kRead);  // page 0: 2/3 writes -> write-dominant
  t.append(4096, AccessType::kRead);
  t.append(4096, AccessType::kRead);  // page 1: read-only
  const TraceStats s = characterize(t, 4096);
  EXPECT_EQ(s.write_dominant_pages, 1u);
}

TEST(TraceStats, PageProfileWriteRatio) {
  PageProfile p;
  EXPECT_DOUBLE_EQ(p.write_ratio(), 0.0);
  p.reads = 3;
  p.writes = 1;
  EXPECT_DOUBLE_EQ(p.write_ratio(), 0.25);
  EXPECT_EQ(p.total(), 4u);
}

TEST(TraceStats, RankedPagesSortedByPopularity) {
  TraceCharacterizer c(4096);
  for (int i = 0; i < 5; ++i) c.observe({0, AccessType::kRead, 0});
  for (int i = 0; i < 9; ++i) c.observe({4096, AccessType::kRead, 0});
  c.observe({8192, AccessType::kWrite, 0});
  const auto ranked = c.ranked_pages();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, 1u);
  EXPECT_EQ(ranked[0].second.total(), 9u);
  EXPECT_EQ(ranked[1].first, 0u);
  EXPECT_EQ(ranked[2].first, 2u);
}

TEST(TraceStats, AccessesPerPageHistogram) {
  TraceCharacterizer c(4096);
  for (int i = 0; i < 4; ++i) c.observe({0, AccessType::kRead, 0});
  c.observe({4096, AccessType::kRead, 0});
  const TraceStats s = c.stats();
  EXPECT_EQ(s.accesses_per_page.total(), 2u);  // two pages
  EXPECT_EQ(s.accesses_per_page.bucket(Log2Histogram::bucket_index(4)), 1u);
  EXPECT_EQ(s.accesses_per_page.bucket(Log2Histogram::bucket_index(1)), 1u);
}

TEST(TraceStats, EmptyTrace) {
  Trace t;
  const TraceStats s = characterize(t, 4096);
  EXPECT_EQ(s.accesses, 0u);
  EXPECT_EQ(s.distinct_pages, 0u);
  EXPECT_DOUBLE_EQ(s.read_fraction(), 0.0);
}

TEST(TraceStats, PageSizeZeroRejected) {
  EXPECT_THROW(TraceCharacterizer(0), std::logic_error);
}

}  // namespace
}  // namespace hymem::trace
