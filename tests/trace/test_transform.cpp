#include "trace/transform.hpp"

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"

namespace hymem::trace {
namespace {

TEST(Transform, ToPageTraceAlignsAddresses) {
  Trace t;
  t.append(4097, AccessType::kRead);
  t.append(8191, AccessType::kWrite, 2);
  const Trace out = to_page_trace(t, 4096);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].addr, 4096u);
  EXPECT_EQ(out[1].addr, 4096u);
  EXPECT_EQ(out[1].type, AccessType::kWrite);
  EXPECT_EQ(out[1].core, 2);
}

TEST(Transform, InterleaveRoundRobin) {
  Trace a("a"), b("b");
  for (Addr i = 0; i < 4; ++i) a.append(i, AccessType::kRead);
  for (Addr i = 100; i < 104; ++i) b.append(i, AccessType::kWrite);
  const Trace* sources[] = {&a, &b};
  const Trace out = interleave(sources, 2, "mix");
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[0].addr, 0u);
  EXPECT_EQ(out[1].addr, 1u);
  EXPECT_EQ(out[2].addr, 100u);
  EXPECT_EQ(out[3].addr, 101u);
  EXPECT_EQ(out[4].addr, 2u);
  EXPECT_EQ(out.name(), "mix");
}

TEST(Transform, InterleaveDrainsUnevenSources) {
  Trace a("a"), b("b");
  a.append(0, AccessType::kRead);
  for (Addr i = 0; i < 5; ++i) b.append(100 + i, AccessType::kRead);
  const Trace* sources[] = {&a, &b};
  const Trace out = interleave(sources, 1, "mix");
  EXPECT_EQ(out.size(), 6u);
}

TEST(Transform, DownsampleKeepsEveryNth) {
  Trace t;
  for (Addr i = 0; i < 10; ++i) t.append(i, AccessType::kRead);
  const Trace out = downsample(t, 3);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].addr, 0u);
  EXPECT_EQ(out[1].addr, 3u);
  EXPECT_EQ(out[3].addr, 9u);
}

TEST(Transform, DownsampleWithOffset) {
  Trace t;
  for (Addr i = 0; i < 10; ++i) t.append(i, AccessType::kRead);
  const Trace out = downsample(t, 4, 1);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].addr, 1u);
  EXPECT_EQ(out[2].addr, 9u);
}

TEST(Transform, DensifyRemapsFirstTouchOrder) {
  Trace t;
  t.append(7 * 4096 + 5, AccessType::kRead);
  t.append(3 * 4096, AccessType::kWrite);
  t.append(7 * 4096 + 9, AccessType::kRead);
  const Trace out = densify_pages(t, 4096);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].addr, 5u);           // page 7 -> dense page 0
  EXPECT_EQ(out[1].addr, 4096u);        // page 3 -> dense page 1
  EXPECT_EQ(out[2].addr, 9u);           // page 7 again -> dense page 0
}

TEST(Transform, DensifyPreservesFootprintAndMix) {
  Trace t;
  t.append(0x123456000, AccessType::kRead);
  t.append(0x999999000, AccessType::kWrite);
  t.append(0x123456000, AccessType::kWrite);
  const Trace out = densify_pages(t, 4096);
  const auto before = characterize(t, 4096);
  const auto after = characterize(out, 4096);
  EXPECT_EQ(before.distinct_pages, after.distinct_pages);
  EXPECT_EQ(before.reads, after.reads);
  EXPECT_EQ(before.writes, after.writes);
}

TEST(Transform, InvalidArgumentsThrow) {
  Trace t;
  t.append(0, AccessType::kRead);
  EXPECT_THROW(to_page_trace(t, 0), std::logic_error);
  EXPECT_THROW(downsample(t, 0), std::logic_error);
  const Trace* sources[] = {&t};
  EXPECT_THROW(interleave(sources, 0, "x"), std::logic_error);
}

}  // namespace
}  // namespace hymem::trace
