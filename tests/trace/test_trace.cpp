#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace hymem::trace {
namespace {

TEST(Trace, StartsEmpty) {
  Trace t("empty");
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.name(), "empty");
}

TEST(Trace, AppendAndIterate) {
  Trace t;
  t.append(0x1000, AccessType::kRead, 1);
  t.append({0x2000, AccessType::kWrite, 2});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x1000u);
  EXPECT_EQ(t[0].type, AccessType::kRead);
  EXPECT_EQ(t[0].core, 1);
  EXPECT_EQ(t[1].type, AccessType::kWrite);
  std::size_t n = 0;
  for (const auto& a : t) {
    (void)a;
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(Trace, ReadWriteCounts) {
  Trace t;
  t.append(0, AccessType::kRead);
  t.append(64, AccessType::kRead);
  t.append(128, AccessType::kWrite);
  EXPECT_EQ(t.read_count(), 2u);
  EXPECT_EQ(t.write_count(), 1u);
}

TEST(Trace, PageOfComputesPageNumber) {
  EXPECT_EQ(page_of(0, 4096), 0u);
  EXPECT_EQ(page_of(4095, 4096), 0u);
  EXPECT_EQ(page_of(4096, 4096), 1u);
  EXPECT_EQ(page_of(0x10000, 4096), 16u);
}

TEST(Trace, SetName) {
  Trace t;
  t.set_name("renamed");
  EXPECT_EQ(t.name(), "renamed");
}

TEST(MemAccess, Equality) {
  MemAccess a{1, AccessType::kRead, 0};
  MemAccess b{1, AccessType::kRead, 0};
  MemAccess c{1, AccessType::kWrite, 0};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace hymem::trace
