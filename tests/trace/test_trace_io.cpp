#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace hymem::trace {
namespace {

Trace sample_trace() {
  Trace t("sample");
  t.append(0x1000, AccessType::kRead, 0);
  t.append(0xdeadbeef, AccessType::kWrite, 3);
  t.append(0, AccessType::kRead, 1);
  return t;
}

TEST(TraceIo, BinaryRoundTrip) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_binary(original, buf);
  const Trace loaded = read_binary(buf);
  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) EXPECT_EQ(loaded[i], original[i]);
}

TEST(TraceIo, TextRoundTrip) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_text(original, buf);
  const Trace loaded = read_text(buf, "sample");
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) EXPECT_EQ(loaded[i], original[i]);
}

TEST(TraceIo, TextSkipsCommentsAndBlanks) {
  std::stringstream buf("# comment\n\nR 0x40 0\nW 0x80 1\n");
  const Trace loaded = read_text(buf);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].addr, 0x40u);
  EXPECT_EQ(loaded[1].type, AccessType::kWrite);
  EXPECT_EQ(loaded[1].core, 1);
}

TEST(TraceIo, BadMagicThrows) {
  std::stringstream buf("NOPE....");
  EXPECT_THROW(read_binary(buf), std::runtime_error);
}

TEST(TraceIo, TruncatedBinaryThrows) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_binary(original, buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 5);
  std::stringstream cut(bytes);
  EXPECT_THROW(read_binary(cut), std::runtime_error);
}

TEST(TraceIo, BadAccessKindThrows) {
  std::stringstream buf("X 0x40 0\n");
  EXPECT_THROW(read_text(buf), std::runtime_error);
}

TEST(TraceIo, SaveLoadBinaryFile) {
  const Trace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/hymem_io_test.trc";
  save(original, path);
  const Trace loaded = load(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded[1], original[1]);
  std::remove(path.c_str());
}

TEST(TraceIo, SaveLoadTextFile) {
  const Trace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/hymem_io_test.txt";
  save(original, path);
  const Trace loaded = load(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded[0], original[0]);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load("/nonexistent/path/file.trc"), std::runtime_error);
}

}  // namespace
}  // namespace hymem::trace
