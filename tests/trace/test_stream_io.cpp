#include "trace/stream_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hymem::trace {
namespace {

TEST(StreamIo, RoundTripAcrossChunks) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "big", /*chunk_records=*/4);
    for (Addr a = 0; a < 11; ++a) {
      writer.append({a * 64, a % 3 == 0 ? AccessType::kWrite : AccessType::kRead,
                     static_cast<std::uint8_t>(a % 2)});
    }
    writer.finish();
    EXPECT_EQ(writer.written(), 11u);
  }
  StreamTraceReader reader(buf);
  EXPECT_EQ(reader.name(), "big");
  for (Addr a = 0; a < 11; ++a) {
    const auto rec = reader.next();
    ASSERT_TRUE(rec.has_value()) << a;
    EXPECT_EQ(rec->addr, a * 64);
    EXPECT_EQ(rec->type, a % 3 == 0 ? AccessType::kWrite : AccessType::kRead);
    EXPECT_EQ(rec->core, a % 2);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value()) << "terminator is sticky";
  EXPECT_EQ(reader.read_count(), 11u);
}

TEST(StreamIo, EmptyTrace) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "empty");
    writer.finish();
  }
  StreamTraceReader reader(buf);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(StreamIo, DestructorFinishes) {
  std::stringstream buf;
  { StreamTraceWriter writer(buf, "x"); writer.append({1, AccessType::kRead, 0}); }
  StreamTraceReader reader(buf);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(StreamIo, AppendAfterFinishRejected) {
  std::stringstream buf;
  StreamTraceWriter writer(buf, "x");
  writer.finish();
  EXPECT_THROW(writer.append({1, AccessType::kRead, 0}), std::logic_error);
}

TEST(StreamIo, BadMagicRejected) {
  std::stringstream buf("XXXX....");
  EXPECT_THROW(StreamTraceReader{buf}, std::runtime_error);
}

TEST(StreamIo, TruncatedChunkRejected) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "t", 8);
    for (Addr a = 0; a < 5; ++a) writer.append({a, AccessType::kRead, 0});
    writer.finish();
  }
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 7);
  std::stringstream cut(bytes);
  StreamTraceReader reader(cut);
  EXPECT_THROW(
      {
        while (reader.next().has_value()) {
        }
      },
      std::runtime_error);
}

TEST(StreamIo, ExactChunkBoundary) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "b", 4);
    for (Addr a = 0; a < 8; ++a) writer.append({a, AccessType::kRead, 0});
    writer.finish();
  }
  StreamTraceReader reader(buf);
  std::size_t n = 0;
  while (reader.next().has_value()) ++n;
  EXPECT_EQ(n, 8u);
}

}  // namespace
}  // namespace hymem::trace
