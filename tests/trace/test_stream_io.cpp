#include "trace/stream_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace hymem::trace {
namespace {

TEST(StreamIo, RoundTripAcrossChunks) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "big", /*chunk_records=*/4);
    for (Addr a = 0; a < 11; ++a) {
      writer.append({a * 64, a % 3 == 0 ? AccessType::kWrite : AccessType::kRead,
                     static_cast<std::uint8_t>(a % 2)});
    }
    writer.finish();
    EXPECT_EQ(writer.written(), 11u);
  }
  StreamTraceReader reader(buf);
  EXPECT_EQ(reader.name(), "big");
  for (Addr a = 0; a < 11; ++a) {
    const auto rec = reader.next();
    ASSERT_TRUE(rec.has_value()) << a;
    EXPECT_EQ(rec->addr, a * 64);
    EXPECT_EQ(rec->type, a % 3 == 0 ? AccessType::kWrite : AccessType::kRead);
    EXPECT_EQ(rec->core, a % 2);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value()) << "terminator is sticky";
  EXPECT_EQ(reader.read_count(), 11u);
}

TEST(StreamIo, EmptyTrace) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "empty");
    writer.finish();
  }
  StreamTraceReader reader(buf);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(StreamIo, DestructorFinishes) {
  std::stringstream buf;
  { StreamTraceWriter writer(buf, "x"); writer.append({1, AccessType::kRead, 0}); }
  StreamTraceReader reader(buf);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(StreamIo, AppendAfterFinishRejected) {
  std::stringstream buf;
  StreamTraceWriter writer(buf, "x");
  writer.finish();
  EXPECT_THROW(writer.append({1, AccessType::kRead, 0}), std::logic_error);
}

TEST(StreamIo, BadMagicRejected) {
  std::stringstream buf("XXXX....");
  EXPECT_THROW(StreamTraceReader{buf}, std::runtime_error);
}

TEST(StreamIo, TruncatedChunkRejected) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "t", 8);
    for (Addr a = 0; a < 5; ++a) writer.append({a, AccessType::kRead, 0});
    writer.finish();
  }
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 7);
  std::stringstream cut(bytes);
  StreamTraceReader reader(cut);
  EXPECT_THROW(
      {
        while (reader.next().has_value()) {
        }
      },
      std::runtime_error);
}

// --- Error-path contract: every parse error names a byte offset. ---

namespace {
/// A 3-record stream named "t": header is 4 magic + 4 version + 4 name_len
/// + 1 name byte = 13 bytes, so the first chunk header sits at byte 13 and
/// records (10 bytes each) start at byte 17.
std::string three_record_bytes() {
  std::stringstream buf;
  StreamTraceWriter writer(buf, "t", /*chunk_records=*/8);
  for (Addr a = 0; a < 3; ++a) writer.append({a * 4096, AccessType::kRead, 0});
  writer.finish();
  return buf.str();
}

std::string error_of(const std::string& bytes) {
  std::stringstream in(bytes);
  try {
    StreamTraceReader reader(in);
    while (reader.next().has_value()) {
    }
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}
}  // namespace

TEST(StreamIo, BadMagicNamesByteZero) {
  EXPECT_NE(error_of("XXXX....").find("bad magic at byte 0"),
            std::string::npos);
}

TEST(StreamIo, UnsupportedVersionNamesByteFour) {
  std::string bytes = three_record_bytes();
  bytes[4] = 9;
  EXPECT_NE(error_of(bytes).find("unsupported version 9 at byte 4"),
            std::string::npos);
}

TEST(StreamIo, TruncatedNameNamesOffset) {
  std::string bytes = three_record_bytes();
  bytes.resize(12);  // name_len says 1 byte follows; nothing does.
  EXPECT_NE(error_of(bytes).find("truncated name at byte 12"),
            std::string::npos);
}

TEST(StreamIo, TruncatedChunkHeaderNamesOffset) {
  std::string bytes = three_record_bytes();
  // Drop the 4-byte terminator and 2 bytes of the last record: the reload
  // after the corrupt chunk fails while reading the chunk header at the
  // exact truncation point.
  bytes.resize(13);  // Exactly the header: chunk header missing entirely.
  const std::string what = error_of(bytes);
  EXPECT_NE(what.find("truncated chunk header at byte 13"), std::string::npos)
      << what;
}

TEST(StreamIo, CorruptCountFailsAtHeaderNotMidChunk) {
  std::string bytes = three_record_bytes();
  // Rewrite the chunk's count from 3 to 3000: the claim (30000 record
  // bytes) exceeds what remains, and the seekable-stream precheck reports
  // it with the header's own offset instead of running off the end.
  bytes[13] = static_cast<char>(0xB8);
  bytes[14] = 0x0B;
  const std::string what = error_of(bytes);
  EXPECT_NE(what.find("chunk header claims 30000 record bytes"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("chunk of 3000 records starting at byte 13"),
            std::string::npos)
      << what;
}

TEST(StreamIo, BadAccessTypeNamesChunkAndByte) {
  std::string bytes = three_record_bytes();
  // Second record's type byte: 13 header + 4 count + 10 first record +
  // 8 addr = byte 35.
  bytes[35] = 7;
  const std::string what = error_of(bytes);
  EXPECT_NE(what.find("bad access type 7 at byte 35"), std::string::npos)
      << what;
  EXPECT_NE(what.find("chunk of 3 records starting at byte 13"),
            std::string::npos)
      << what;
}

TEST(StreamIo, ByteOffsetTracksConsumption) {
  std::stringstream buf(three_record_bytes());
  StreamTraceReader reader(buf);
  EXPECT_EQ(reader.byte_offset(), 13u);
  reader.next();
  // The whole 3-record chunk is decoded on first pull: 13 + 4 + 3*10.
  EXPECT_EQ(reader.byte_offset(), 47u);
  while (reader.next().has_value()) {
  }
  EXPECT_EQ(reader.byte_offset(), 51u) << "terminator consumed";
}

TEST(StreamIo, RewindReplaysIdentically) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "rw", 4);
    for (Addr a = 0; a < 11; ++a) {
      writer.append({a * 64, a % 2 ? AccessType::kWrite : AccessType::kRead,
                     static_cast<std::uint8_t>(a % 3)});
    }
    writer.finish();
  }
  StreamTraceReader reader(buf);
  std::vector<MemAccess> first;
  while (auto rec = reader.next()) first.push_back(*rec);
  reader.rewind();
  EXPECT_EQ(reader.read_count(), 0u);
  std::vector<MemAccess> second;
  while (auto rec = reader.next()) second.push_back(*rec);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].addr, second[i].addr) << i;
    EXPECT_EQ(first[i].type, second[i].type) << i;
    EXPECT_EQ(first[i].core, second[i].core) << i;
  }
}

TEST(StreamIo, ExactChunkBoundary) {
  std::stringstream buf;
  {
    StreamTraceWriter writer(buf, "b", 4);
    for (Addr a = 0; a < 8; ++a) writer.append({a, AccessType::kRead, 0});
    writer.finish();
  }
  StreamTraceReader reader(buf);
  std::size_t n = 0;
  while (reader.next().has_value()) ++n;
  EXPECT_EQ(n, 8u);
}

}  // namespace
}  // namespace hymem::trace
