// Readahead-mode StreamBlockSource tests: a real producer thread decodes
// ahead of the consumer, so these run under the tier1-runner label and the
// TSan CI job.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "trace/block_source.hpp"
#include "util/random.hpp"

namespace hymem::trace {
namespace {

constexpr std::uint64_t kPage = 4096;

Trace make_trace(std::size_t n, std::uint64_t seed = 11) {
  Trace trace;
  trace.set_name("readahead");
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix64(state);
    trace.append({(r % 211) * kPage,
                  (r >> 32) % 4 == 0 ? AccessType::kWrite : AccessType::kRead,
                  0});
  }
  return trace;
}

std::string encode(const Trace& trace, std::size_t chunk_records) {
  std::ostringstream bytes;
  StreamTraceWriter writer(bytes, trace.name(), chunk_records);
  for (const auto& access : trace.accesses()) writer.append(access);
  writer.finish();
  return bytes.str();
}

struct Flat {
  std::vector<PageId> pages;
  std::vector<AccessType> types;
  std::vector<std::uint64_t> hashes;

  bool operator==(const Flat& other) const {
    return pages == other.pages && types == other.types &&
           hashes == other.hashes;
  }
};

Flat drain(BlockSource& source) {
  Flat flat;
  while (const DecodedBlock* block = source.next()) {
    for (std::size_t i = 0; i < block->size; ++i) {
      flat.pages.push_back(block->pages[i]);
      flat.types.push_back(block->types[i]);
      flat.hashes.push_back(block->hashes[i]);
    }
  }
  return flat;
}

TEST(StreamBlockSourceThreaded, ReadaheadMatchesSync) {
  const auto trace = make_trace(5000);
  const std::string bytes = encode(trace, 64);
  // Small blocks force many producer/consumer handoffs.
  for (const std::size_t block : {1ul, 3ul, 64ul, 977ul, 8192ul}) {
    std::istringstream sync_in(bytes);
    StreamBlockSource sync(sync_in, kPage, block, /*readahead=*/false);
    std::istringstream ahead_in(bytes);
    StreamBlockSource ahead(ahead_in, kPage, block, /*readahead=*/true);
    const Flat want = drain(sync);
    EXPECT_EQ(want.pages.size(), 5000u);
    EXPECT_TRUE(want == drain(ahead)) << "block " << block;
  }
}

TEST(StreamBlockSourceThreaded, RewindRestartsProducer) {
  const auto trace = make_trace(700);
  const std::string bytes = encode(trace, 32);
  std::istringstream in(bytes);
  StreamBlockSource source(in, kPage, 48, /*readahead=*/true);
  const Flat first = drain(source);
  for (int pass = 0; pass < 3; ++pass) {
    source.rewind();
    EXPECT_TRUE(first == drain(source)) << "pass " << pass;
  }
}

TEST(StreamBlockSourceThreaded, MidStreamRewindDiscardsPosition) {
  const auto trace = make_trace(300);
  const std::string bytes = encode(trace, 16);
  std::istringstream in(bytes);
  StreamBlockSource source(in, kPage, 10, /*readahead=*/true);
  ASSERT_NE(source.next(), nullptr);
  ASSERT_NE(source.next(), nullptr);
  source.rewind();
  const Flat restarted = drain(source);
  EXPECT_EQ(restarted.pages.size(), 300u);
}

TEST(StreamBlockSourceThreaded, ProducerErrorReachesConsumer) {
  const auto trace = make_trace(500);
  std::string bytes = encode(trace, 16);
  bytes.resize(bytes.size() - 9);  // Mid-record truncation.
  std::istringstream in(bytes);
  StreamBlockSource source(in, kPage, 20, /*readahead=*/true);
  try {
    drain(source);
    FAIL() << "truncated stream must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hymem stream trace"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(source.next(), nullptr) << "error ends the sequence";
}

TEST(StreamBlockSourceThreaded, DestructionWithBlocksPendingDoesNotHang) {
  const auto trace = make_trace(4000);
  const std::string bytes = encode(trace, 64);
  std::istringstream in(bytes);
  auto source =
      std::make_unique<StreamBlockSource>(in, kPage, 16, /*readahead=*/true);
  ASSERT_NE(source->next(), nullptr);
  source.reset();  // Producer still has thousands of blocks to go.
}

}  // namespace
}  // namespace hymem::trace
