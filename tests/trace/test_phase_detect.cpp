#include "trace/phase_detect.hpp"

#include <gtest/gtest.h>

#include "synth/generator.hpp"
#include "synth/workload_profile.hpp"

#include "util/random.hpp"

namespace hymem::trace {
namespace {

PhaseDetectorConfig small_config() {
  PhaseDetectorConfig c;
  c.window_accesses = 256;
  c.signature_bits = 512;
  c.similarity_threshold = 0.5;
  return c;
}

TEST(PhaseDetect, JaccardBasics) {
  const std::vector<std::uint64_t> zero{0, 0};
  const std::vector<std::uint64_t> a{0b1010, 0};
  const std::vector<std::uint64_t> b{0b0110, 0};
  EXPECT_DOUBLE_EQ(PhaseDetector::jaccard(zero, zero), 1.0);
  EXPECT_DOUBLE_EQ(PhaseDetector::jaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(PhaseDetector::jaccard(a, zero), 0.0);
  // a & b = 0b0010 (1 bit), a | b = 0b1110 (3 bits).
  EXPECT_NEAR(PhaseDetector::jaccard(a, b), 1.0 / 3.0, 1e-12);
}

TEST(PhaseDetect, StableStreamIsOnePhase) {
  PhaseDetector d(4096, small_config());
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    d.observe(rng.next_below(32) * 4096);
  }
  EXPECT_EQ(d.phase_count(), 1u);
  EXPECT_GT(d.last_similarity(), 0.9);
}

TEST(PhaseDetect, RegionSwitchesAreBoundaries) {
  PhaseDetector d(4096, small_config());
  Rng rng(6);
  // Four phases over disjoint 32-page regions, 1024 accesses each.
  for (int phase = 0; phase < 4; ++phase) {
    const PageId base = static_cast<PageId>(phase) * 1000;
    for (int i = 0; i < 1024; ++i) {
      d.observe((base + rng.next_below(32)) * 4096);
    }
  }
  EXPECT_EQ(d.phase_count(), 4u) << "one boundary per region switch";
}

TEST(PhaseDetect, BoundaryIndicesAligned) {
  PhaseDetector d(4096, small_config());
  Rng rng(7);
  for (int i = 0; i < 512; ++i) d.observe(rng.next_below(16) * 4096);
  for (int i = 0; i < 512; ++i) {
    d.observe((5000 + rng.next_below(16)) * 4096);
  }
  ASSERT_EQ(d.boundaries().size(), 1u);
  EXPECT_EQ(d.boundaries()[0] % small_config().window_accesses, 0u);
}

TEST(PhaseDetect, ThresholdZeroNeverSplits) {
  PhaseDetectorConfig c = small_config();
  c.similarity_threshold = 0.0;
  PhaseDetector d(4096, c);
  Rng rng(8);
  for (int phase = 0; phase < 4; ++phase) {
    for (int i = 0; i < 1024; ++i) {
      d.observe((static_cast<PageId>(phase) * 1000 + rng.next_below(16)) *
                4096);
    }
  }
  EXPECT_EQ(d.phase_count(), 1u);
}

TEST(PhaseDetect, SubPageAddressesSharePage) {
  PhaseDetector a(4096, small_config());
  PhaseDetector b(4096, small_config());
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const PageId page = rng.next_below(20);
    a.observe(page * 4096);
    b.observe(page * 4096 + rng.next_below(4096));
  }
  EXPECT_EQ(a.phase_count(), b.phase_count());
  EXPECT_DOUBLE_EQ(a.last_similarity(), b.last_similarity());
}

TEST(PhaseDetect, ChurnyProfileHasMorePhasesThanStable) {
  // Tie the detector back to the synthetic workloads: canneal's hot-set
  // churn must register as more phase boundaries than ferret's stability.
  PhaseDetectorConfig c;
  c.window_accesses = 8192;
  c.similarity_threshold = 0.7;
  auto phases_of = [&](const char* name) {
    synth::GeneratorOptions options;
    options.seed = 3;
    const auto trace = synth::generate(synth::parsec_profile(name).scaled(64),
                                       options);
    PhaseDetector d(4096, c);
    d.observe(trace);
    return d.phase_count();
  };
  EXPECT_GE(phases_of("canneal"), phases_of("ferret"));
}

TEST(PhaseDetect, InvalidConfigRejected) {
  PhaseDetectorConfig c = small_config();
  c.window_accesses = 0;
  EXPECT_THROW(PhaseDetector(4096, c), std::logic_error);
  c = small_config();
  c.signature_bits = 100;  // not a multiple of 64
  EXPECT_THROW(PhaseDetector(4096, c), std::logic_error);
}

}  // namespace
}  // namespace hymem::trace
