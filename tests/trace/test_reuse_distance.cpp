#include "trace/reuse_distance.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <list>
#include <unordered_set>

#include "util/random.hpp"

namespace hymem::trace {
namespace {

constexpr std::uint64_t kCold = std::numeric_limits<std::uint64_t>::max();

TEST(ReuseDistance, HandComputedSequence) {
  // Page stream: A B C A B B. Distances: cold cold cold 2 2 0.
  ReuseDistanceAnalyzer rd(4096);
  const Addr A = 0, B = 4096, C = 2 * 4096;
  EXPECT_EQ(rd.observe(A), kCold);
  EXPECT_EQ(rd.observe(B), kCold);
  EXPECT_EQ(rd.observe(C), kCold);
  EXPECT_EQ(rd.observe(A), 2u);
  EXPECT_EQ(rd.observe(B), 2u);
  EXPECT_EQ(rd.observe(B), 0u);
  EXPECT_EQ(rd.cold_count(), 3u);
  EXPECT_EQ(rd.access_count(), 6u);
}

TEST(ReuseDistance, RepeatedSamePageIsDistanceZero) {
  ReuseDistanceAnalyzer rd(4096);
  rd.observe(0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rd.observe(100), 0u);
}

TEST(ReuseDistance, SubPageAddressesShareDistance) {
  ReuseDistanceAnalyzer rd(4096);
  rd.observe(0);
  rd.observe(4096);
  EXPECT_EQ(rd.observe(4095), 1u);  // same page as 0
}

TEST(ReuseDistance, HitRatioMatchesExplicitLruSimulation) {
  // Cross-check the analyzer against a brute-force LRU simulation.
  Rng rng(2024);
  std::vector<PageId> stream;
  for (int i = 0; i < 3000; ++i) stream.push_back(rng.next_below(64));

  ReuseDistanceAnalyzer rd(1);
  for (PageId p : stream) rd.observe(p);

  for (std::uint64_t capacity : {1u, 4u, 16u, 48u, 64u}) {
    std::list<PageId> lru;
    std::uint64_t hits = 0;
    for (PageId p : stream) {
      auto it = std::find(lru.begin(), lru.end(), p);
      if (it != lru.end()) {
        ++hits;
        lru.erase(it);
      } else if (lru.size() >= capacity) {
        lru.pop_back();
      }
      lru.push_front(p);
    }
    const double expected =
        static_cast<double>(hits) / static_cast<double>(stream.size());
    EXPECT_NEAR(rd.lru_hit_ratio(capacity), expected, 1e-12)
        << "capacity " << capacity;
  }
}

TEST(ReuseDistance, HitRatioMonotoneInCapacity) {
  Rng rng(7);
  ReuseDistanceAnalyzer rd(1);
  for (int i = 0; i < 2000; ++i) rd.observe(rng.next_below(100));
  double prev = 0.0;
  for (std::uint64_t c = 1; c <= 100; c += 9) {
    const double h = rd.lru_hit_ratio(c);
    EXPECT_GE(h, prev);
    prev = h;
  }
}

TEST(ReuseDistance, FullCapacityHitsEverythingWarm) {
  ReuseDistanceAnalyzer rd(1);
  const std::vector<PageId> stream{0, 1, 2, 0, 1, 2, 0, 1, 2};
  for (PageId p : stream) rd.observe(p);
  // 3 cold misses out of 9 accesses; capacity >= 3 catches all reuses.
  EXPECT_NEAR(rd.lru_hit_ratio(3), 6.0 / 9.0, 1e-12);
  EXPECT_NEAR(rd.lru_hit_ratio(100), 6.0 / 9.0, 1e-12);
}

TEST(ReuseDistance, MissRatioCurve) {
  ReuseDistanceAnalyzer rd(1);
  for (PageId p : {0u, 1u, 0u, 1u}) rd.observe(p);
  const auto curve = rd.miss_ratio_curve({1, 2});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(curve[0], 1.0, 1e-12);        // capacity 1: distance-1 reuses miss
  EXPECT_NEAR(curve[1], 0.5, 1e-12);        // capacity 2: only cold misses
}

TEST(ReuseDistance, HistogramCollectsFiniteDistances) {
  ReuseDistanceAnalyzer rd(1);
  for (PageId p : {0u, 1u, 2u, 0u}) rd.observe(p);
  EXPECT_EQ(rd.histogram().total(), 1u);  // only the distance-2 reuse
}

// --- Cold-vs-finite accounting boundary tests -------------------------------
// These pin the contract in the header: cold (first-touch) accesses carry
// infinite distance and never land in the finite histogram or CDF; every
// finite distance is represented exactly, however large.

TEST(ReuseDistance, AllColdTraceHasEmptyHistogram) {
  ReuseDistanceAnalyzer rd(1);
  for (PageId p = 0; p < 100; ++p) EXPECT_EQ(rd.observe(p), kCold);
  EXPECT_EQ(rd.cold_count(), 100u);
  EXPECT_EQ(rd.histogram().total(), 0u);  // cold never folded into a bucket
  const ReuseProfile profile = rd.profile();
  EXPECT_EQ(profile.cold(), 100u);
  EXPECT_EQ(profile.finite_total(), 0u);
  EXPECT_TRUE(profile.distance.empty());
  // Even an "infinite" capacity hits nothing: cold misses stay misses.
  EXPECT_DOUBLE_EQ(rd.lru_hit_ratio(std::numeric_limits<std::uint64_t>::max() - 1), 0.0);
  EXPECT_EQ(profile.below(std::numeric_limits<std::uint64_t>::max()), 0u);
}

TEST(ReuseDistance, SinglePageTrace) {
  ReuseDistanceAnalyzer rd(4096);
  EXPECT_EQ(rd.observe(Addr{123}), kCold);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(rd.observe(Addr{456}), 0u);
  EXPECT_EQ(rd.cold_count(), 1u);
  EXPECT_EQ(rd.distinct_pages(), 1u);
  EXPECT_EQ(rd.histogram().total(), 9u);
  // All finite mass sits in bucket 0 (value 0).
  EXPECT_EQ(rd.histogram().bucket(0), 9u);
  EXPECT_DOUBLE_EQ(rd.lru_hit_ratio(1), 0.9);
}

TEST(ReuseDistance, DistanceExactlyAtBucketEdge) {
  // Drive distances that land exactly on log2 bucket boundaries (2^(k-1) and
  // 2^k - 1) and check each is counted in ITS bucket, not a neighbour.
  for (const std::uint64_t d : {1u, 2u, 3u, 4u, 7u, 8u, 15u, 16u, 31u, 32u}) {
    ReuseDistanceAnalyzer rd(1);
    // Touch pages 0..d (d+1 distinct), then re-touch page 0: exactly d
    // distinct pages intervened.
    for (PageId p = 0; p <= d; ++p) rd.observe(p);
    EXPECT_EQ(rd.observe(PageId{0}), d);
    const std::size_t idx = Log2Histogram::bucket_index(d);
    EXPECT_EQ(rd.histogram().bucket(idx), 1u) << "distance " << d;
    EXPECT_GE(d, Log2Histogram::bucket_lo(idx));
    EXPECT_LE(d, Log2Histogram::bucket_hi(idx));
    // The exact CDF has it too: strictly-below semantics flip at d -> d+1.
    const ReuseProfile profile = rd.profile();
    EXPECT_EQ(profile.below(d), 0u);
    EXPECT_EQ(profile.below(d + 1), 1u);
  }
}

TEST(ReuseDistance, LargeFiniteDistanceNotSwallowedByTail) {
  // A finite distance far beyond any pre-existing bucket must grow the
  // histogram rather than vanish or clamp into the last bucket.
  constexpr std::uint64_t kSpan = 5000;  // distance 5000 -> bucket [4096,8191]
  ReuseDistanceAnalyzer rd(1);
  for (PageId p = 0; p <= kSpan; ++p) rd.observe(p);
  EXPECT_EQ(rd.observe(PageId{0}), kSpan);
  const std::size_t idx = Log2Histogram::bucket_index(kSpan);
  EXPECT_EQ(rd.histogram().bucket(idx), 1u);
  EXPECT_EQ(rd.histogram().total(), 1u);
  EXPECT_EQ(rd.profile().below(kSpan + 1), 1u);
}

// --- Typed profile + warmup reset -------------------------------------------

TEST(ReuseDistance, ProfileSplitsReadsAndWrites) {
  ReuseDistanceAnalyzer rd(1);
  rd.observe(PageId{0}, AccessType::kRead);   // cold read
  rd.observe(PageId{1}, AccessType::kWrite);  // cold write
  rd.observe(PageId{0}, AccessType::kWrite);  // distance 1, write
  rd.observe(PageId{0}, AccessType::kRead);   // distance 0, read
  rd.observe(PageId{1}, AccessType::kRead);   // distance 1, read
  const ReuseProfile p = rd.profile();
  EXPECT_EQ(p.accesses, 5u);
  EXPECT_EQ(p.cold_reads, 1u);
  EXPECT_EQ(p.cold_writes, 1u);
  EXPECT_EQ(p.finite_reads(), 2u);
  EXPECT_EQ(p.finite_writes(), 1u);
  EXPECT_EQ(p.reads(), 3u);
  EXPECT_EQ(p.writes(), 2u);
  // CDF: distance 0 holds one read; distance 1 holds one read + one write.
  EXPECT_EQ(p.reads_below(1), 1u);
  EXPECT_EQ(p.writes_below(1), 0u);
  EXPECT_EQ(p.reads_below(2), 2u);
  EXPECT_EQ(p.writes_below(2), 1u);
  EXPECT_DOUBLE_EQ(p.frac_below(2), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(p.lru_hit_ratio(2), rd.lru_hit_ratio(2));
}

TEST(ReuseDistance, ResetStatsKeepsLruStackState) {
  // Warmup pass touches A,B; reset; measured pass re-touches them. With the
  // stack preserved the measured accesses are finite-distance, not cold.
  ReuseDistanceAnalyzer rd(1);
  rd.observe(PageId{0});
  rd.observe(PageId{1});
  rd.reset_stats();
  EXPECT_EQ(rd.cold_count(), 0u);
  EXPECT_EQ(rd.window_access_count(), 0u);
  EXPECT_EQ(rd.histogram().total(), 0u);
  EXPECT_EQ(rd.distinct_pages(), 2u);  // footprint survives
  EXPECT_EQ(rd.observe(PageId{0}), 1u);  // B intervened: distance 1, not cold
  EXPECT_EQ(rd.observe(PageId{2}), kCold);  // genuinely new page still cold
  EXPECT_EQ(rd.cold_count(), 1u);
  const ReuseProfile p = rd.profile();
  EXPECT_EQ(p.accesses, 2u);          // measured window only
  EXPECT_EQ(p.distinct_pages, 3u);    // lifetime footprint
  EXPECT_EQ(rd.access_count(), 4u);   // stack clock never resets
}

TEST(ReuseDistance, ProfileMatchesAnalyzerAcrossRandomStream) {
  Rng rng(99);
  ReuseDistanceAnalyzer rd(1);
  for (int i = 0; i < 4000; ++i) {
    rd.observe(rng.next_below(128),
               rng.next_below(4) == 0 ? AccessType::kWrite : AccessType::kRead);
  }
  const ReuseProfile p = rd.profile();
  EXPECT_EQ(p.accesses, 4000u);
  EXPECT_EQ(p.cold() + p.finite_total(), 4000u);
  for (std::uint64_t c : {1u, 2u, 5u, 17u, 64u, 128u, 200u}) {
    EXPECT_DOUBLE_EQ(p.lru_hit_ratio(c), rd.lru_hit_ratio(c)) << "cap " << c;
  }
}

TEST(ReuseDistance, LoopPatternDistanceEqualsLoopSizeMinusOne) {
  // Cyclic access over N pages has reuse distance N-1 for every reuse.
  constexpr std::uint64_t kN = 10;
  ReuseDistanceAnalyzer rd(1);
  for (int lap = 0; lap < 3; ++lap) {
    for (PageId p = 0; p < kN; ++p) {
      const auto d = rd.observe(p);
      if (lap > 0) {
        EXPECT_EQ(d, kN - 1);
      }
    }
  }
}

}  // namespace
}  // namespace hymem::trace
