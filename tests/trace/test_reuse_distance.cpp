#include "trace/reuse_distance.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <list>
#include <unordered_set>

#include "util/random.hpp"

namespace hymem::trace {
namespace {

constexpr std::uint64_t kCold = std::numeric_limits<std::uint64_t>::max();

TEST(ReuseDistance, HandComputedSequence) {
  // Page stream: A B C A B B. Distances: cold cold cold 2 2 0.
  ReuseDistanceAnalyzer rd(4096);
  const Addr A = 0, B = 4096, C = 2 * 4096;
  EXPECT_EQ(rd.observe(A), kCold);
  EXPECT_EQ(rd.observe(B), kCold);
  EXPECT_EQ(rd.observe(C), kCold);
  EXPECT_EQ(rd.observe(A), 2u);
  EXPECT_EQ(rd.observe(B), 2u);
  EXPECT_EQ(rd.observe(B), 0u);
  EXPECT_EQ(rd.cold_count(), 3u);
  EXPECT_EQ(rd.access_count(), 6u);
}

TEST(ReuseDistance, RepeatedSamePageIsDistanceZero) {
  ReuseDistanceAnalyzer rd(4096);
  rd.observe(0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rd.observe(100), 0u);
}

TEST(ReuseDistance, SubPageAddressesShareDistance) {
  ReuseDistanceAnalyzer rd(4096);
  rd.observe(0);
  rd.observe(4096);
  EXPECT_EQ(rd.observe(4095), 1u);  // same page as 0
}

TEST(ReuseDistance, HitRatioMatchesExplicitLruSimulation) {
  // Cross-check the analyzer against a brute-force LRU simulation.
  Rng rng(2024);
  std::vector<PageId> stream;
  for (int i = 0; i < 3000; ++i) stream.push_back(rng.next_below(64));

  ReuseDistanceAnalyzer rd(1);
  for (PageId p : stream) rd.observe(p);

  for (std::uint64_t capacity : {1u, 4u, 16u, 48u, 64u}) {
    std::list<PageId> lru;
    std::uint64_t hits = 0;
    for (PageId p : stream) {
      auto it = std::find(lru.begin(), lru.end(), p);
      if (it != lru.end()) {
        ++hits;
        lru.erase(it);
      } else if (lru.size() >= capacity) {
        lru.pop_back();
      }
      lru.push_front(p);
    }
    const double expected =
        static_cast<double>(hits) / static_cast<double>(stream.size());
    EXPECT_NEAR(rd.lru_hit_ratio(capacity), expected, 1e-12)
        << "capacity " << capacity;
  }
}

TEST(ReuseDistance, HitRatioMonotoneInCapacity) {
  Rng rng(7);
  ReuseDistanceAnalyzer rd(1);
  for (int i = 0; i < 2000; ++i) rd.observe(rng.next_below(100));
  double prev = 0.0;
  for (std::uint64_t c = 1; c <= 100; c += 9) {
    const double h = rd.lru_hit_ratio(c);
    EXPECT_GE(h, prev);
    prev = h;
  }
}

TEST(ReuseDistance, FullCapacityHitsEverythingWarm) {
  ReuseDistanceAnalyzer rd(1);
  const std::vector<PageId> stream{0, 1, 2, 0, 1, 2, 0, 1, 2};
  for (PageId p : stream) rd.observe(p);
  // 3 cold misses out of 9 accesses; capacity >= 3 catches all reuses.
  EXPECT_NEAR(rd.lru_hit_ratio(3), 6.0 / 9.0, 1e-12);
  EXPECT_NEAR(rd.lru_hit_ratio(100), 6.0 / 9.0, 1e-12);
}

TEST(ReuseDistance, MissRatioCurve) {
  ReuseDistanceAnalyzer rd(1);
  for (PageId p : {0u, 1u, 0u, 1u}) rd.observe(p);
  const auto curve = rd.miss_ratio_curve({1, 2});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(curve[0], 1.0, 1e-12);        // capacity 1: distance-1 reuses miss
  EXPECT_NEAR(curve[1], 0.5, 1e-12);        // capacity 2: only cold misses
}

TEST(ReuseDistance, HistogramCollectsFiniteDistances) {
  ReuseDistanceAnalyzer rd(1);
  for (PageId p : {0u, 1u, 2u, 0u}) rd.observe(p);
  EXPECT_EQ(rd.histogram().total(), 1u);  // only the distance-2 reuse
}

TEST(ReuseDistance, LoopPatternDistanceEqualsLoopSizeMinusOne) {
  // Cyclic access over N pages has reuse distance N-1 for every reuse.
  constexpr std::uint64_t kN = 10;
  ReuseDistanceAnalyzer rd(1);
  for (int lap = 0; lap < 3; ++lap) {
    for (PageId p = 0; p < kN; ++p) {
      const auto d = rd.observe(p);
      if (lap > 0) {
        EXPECT_EQ(d, kN - 1);
      }
    }
  }
}

}  // namespace
}  // namespace hymem::trace
