#include "trace/block_source.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "util/flat_page_map.hpp"
#include "util/random.hpp"

namespace hymem::trace {
namespace {

constexpr std::uint64_t kPage = 4096;

Trace make_trace(std::size_t n, std::uint64_t seed = 7) {
  Trace trace;
  trace.set_name("blocks");
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = splitmix64(state);
    trace.append({(r % 97) * kPage + (r % 64),
                  (r >> 32) % 3 == 0 ? AccessType::kWrite : AccessType::kRead,
                  0});
  }
  return trace;
}

/// Flattens a source into (page, type, hash) triples for comparison.
struct Flat {
  std::vector<PageId> pages;
  std::vector<AccessType> types;
  std::vector<std::uint64_t> hashes;
  std::vector<std::size_t> block_sizes;

  bool operator==(const Flat& other) const {
    return pages == other.pages && types == other.types &&
           hashes == other.hashes;
  }
};

Flat drain(BlockSource& source) {
  Flat flat;
  while (const DecodedBlock* block = source.next()) {
    flat.block_sizes.push_back(block->size);
    for (std::size_t i = 0; i < block->size; ++i) {
      flat.pages.push_back(block->pages[i]);
      flat.types.push_back(block->types[i]);
      flat.hashes.push_back(block->hashes[i]);
    }
  }
  return flat;
}

TEST(TraceBlockSource, WindowsCoverTraceInOrder) {
  const auto trace = make_trace(10);
  TraceBlockSource source(trace, kPage, /*block_accesses=*/3);
  EXPECT_EQ(source.name(), "blocks");
  EXPECT_EQ(source.page_size(), kPage);
  EXPECT_EQ(source.total_accesses(), 10u);
  const Flat flat = drain(source);
  EXPECT_EQ(flat.block_sizes, (std::vector<std::size_t>{3, 3, 3, 1}));
  ASSERT_EQ(flat.pages.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(flat.pages[i], page_of(trace[i].addr, kPage)) << i;
    EXPECT_EQ(flat.types[i], trace[i].type) << i;
    EXPECT_EQ(flat.hashes[i], util::hash_page_id(flat.pages[i])) << i;
  }
  EXPECT_EQ(source.next(), nullptr) << "exhaustion is sticky";
}

TEST(TraceBlockSource, ZeroBlockSizeServesWholeTrace) {
  const auto trace = make_trace(23);
  TraceBlockSource source(trace, kPage, /*block_accesses=*/0);
  const Flat flat = drain(source);
  EXPECT_EQ(flat.block_sizes, (std::vector<std::size_t>{23}));
}

TEST(TraceBlockSource, RewindRepeatsSequence) {
  const auto trace = make_trace(17);
  TraceBlockSource source(trace, kPage, 5);
  const Flat first = drain(source);
  source.rewind();
  const Flat second = drain(source);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.block_sizes, second.block_sizes);
}

TEST(TraceBlockSource, StripedDecodeMatchesSerial) {
  const auto trace = make_trace(1001);
  TraceBlockSource serial(trace, kPage, 64, /*decode_workers=*/1);
  for (const unsigned workers : {2u, 3u, 8u, 2000u}) {
    TraceBlockSource striped(trace, kPage, 64, workers);
    serial.rewind();
    EXPECT_TRUE(drain(serial) == drain(striped)) << workers << " workers";
  }
}

TEST(TraceBlockSource, EmptyTraceYieldsNoBlocks) {
  Trace trace;
  trace.set_name("empty");
  TraceBlockSource source(trace, kPage, 4, /*decode_workers=*/8);
  EXPECT_EQ(source.next(), nullptr);
  source.rewind();
  EXPECT_EQ(source.next(), nullptr);
}

std::string encode(const Trace& trace, std::size_t chunk_records) {
  std::ostringstream bytes;
  StreamTraceWriter writer(bytes, trace.name(), chunk_records);
  for (const auto& access : trace.accesses()) writer.append(access);
  writer.finish();
  return bytes.str();
}

TEST(StreamBlockSource, SyncMatchesTraceBlockSource) {
  const auto trace = make_trace(333);
  // Stream chunking and block size deliberately disagree so block
  // boundaries cross chunk boundaries.
  const std::string bytes = encode(trace, /*chunk_records=*/16);
  std::istringstream in(bytes);
  StreamBlockSource streamed(in, kPage, /*block_accesses=*/24,
                             /*readahead=*/false);
  EXPECT_EQ(streamed.name(), "blocks");
  TraceBlockSource cached(trace, kPage, 24);
  EXPECT_TRUE(drain(streamed) == drain(cached));
}

TEST(StreamBlockSource, SyncRewindRepeatsSequence) {
  const auto trace = make_trace(50);
  const std::string bytes = encode(trace, 8);
  std::istringstream in(bytes);
  StreamBlockSource source(in, kPage, 7, /*readahead=*/false);
  const Flat first = drain(source);
  EXPECT_EQ(first.pages.size(), 50u);
  source.rewind();
  const Flat second = drain(source);
  EXPECT_TRUE(first == second);
}

TEST(StreamBlockSource, EmptyStreamYieldsNoBlocks) {
  Trace trace;
  trace.set_name("empty");
  const std::string bytes = encode(trace, 8);
  std::istringstream in(bytes);
  StreamBlockSource source(in, kPage, 4, /*readahead=*/false);
  EXPECT_EQ(source.next(), nullptr);
  EXPECT_EQ(source.next(), nullptr);
}

TEST(StreamBlockSource, SyncTruncationSurfacesReaderError) {
  const auto trace = make_trace(40);
  std::string bytes = encode(trace, 8);
  bytes.resize(bytes.size() - 11);  // Lose the terminator and one record.
  std::istringstream in(bytes);
  StreamBlockSource source(in, kPage, 6, /*readahead=*/false);
  EXPECT_THROW(drain(source), std::runtime_error);
}

}  // namespace
}  // namespace hymem::trace
