#include "trace/interner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>

#include "trace/access.hpp"
#include "trace/trace.hpp"

namespace hymem::trace {
namespace {

Trace make_trace(std::initializer_list<Addr> addrs) {
  Trace trace("t");
  for (const Addr a : addrs) trace.append(a, AccessType::kRead);
  return trace;
}

TEST(PageIdInterner, DecodesEveryAccessInOrder) {
  const Trace trace = make_trace({0, 4095, 4096, 12288, 4097});
  const PageIdInterner interner(trace, 4096);
  const auto pages = interner.pages();
  ASSERT_EQ(pages.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(pages[i], page_of(trace[i].addr, 4096)) << i;
  }
}

TEST(PageIdInterner, MatchesPageOfForNonPowerOfTwoPageSize) {
  // Power-of-two sizes decode with a shift; anything else must fall back to
  // the division and agree with page_of exactly.
  const Trace trace = make_trace({0, 2999, 3000, 9000, 123456789});
  const PageIdInterner interner(trace, 3000);
  const auto pages = interner.pages();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(pages[i], page_of(trace[i].addr, 3000)) << i;
  }
}

TEST(PageIdInterner, DenseIdsAreFirstTouchOrdered) {
  // Pages: 0, 0, 1, 3, 1 → dense 0, 0, 1, 2, 1.
  const Trace trace = make_trace({100, 200, 4096, 12288, 5000});
  const PageIdInterner interner(trace, 4096);
  const auto dense = interner.dense_ids();
  ASSERT_EQ(dense.size(), 5u);
  EXPECT_EQ(dense[0], 0u);
  EXPECT_EQ(dense[1], 0u);
  EXPECT_EQ(dense[2], 1u);
  EXPECT_EQ(dense[3], 2u);
  EXPECT_EQ(dense[4], 1u);
  EXPECT_EQ(interner.unique_pages(), 3u);
}

TEST(PageIdInterner, OriginalRoundTripsDenseIds) {
  const Trace trace = make_trace({8192, 0, 40960, 8192, 81920});
  const PageIdInterner interner(trace, 4096);
  const auto pages = interner.pages();
  const auto dense = interner.dense_ids();
  for (std::size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(interner.original(dense[i]), pages[i]) << i;
  }
  // Dense IDs cover exactly [0, unique_pages()).
  std::unordered_set<std::uint32_t> seen(dense.begin(), dense.end());
  EXPECT_EQ(seen.size(), interner.unique_pages());
  for (std::uint32_t id = 0; id < interner.unique_pages(); ++id) {
    EXPECT_TRUE(seen.contains(id));
  }
}

TEST(PageIdInterner, DenseViewIsConsistentAfterPagesOnlyUse) {
  // The dense view is built lazily; interleaving pages() reads with the
  // first dense_ids() call must not change either view.
  const Trace trace = make_trace({0, 4096, 0, 8192});
  const PageIdInterner interner(trace, 4096);
  const auto before = interner.pages();
  EXPECT_EQ(before[3], 2u);
  EXPECT_EQ(interner.unique_pages(), 3u);  // forces the dense build
  const auto after = interner.pages();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
}

}  // namespace
}  // namespace hymem::trace
