#include "synth/workload_profile.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hymem::synth {
namespace {

TEST(Profiles, TwelveWorkloadsAsInTableIII) {
  EXPECT_EQ(parsec_profiles().size(), 12u);
}

TEST(Profiles, NamesAreUniqueAndSwaptionsExcluded) {
  std::set<std::string> names;
  for (const auto& p : parsec_profiles()) names.insert(p.name);
  EXPECT_EQ(names.size(), 12u);
  EXPECT_EQ(names.count("swaptions"), 0u);
}

TEST(Profiles, TableIIIValuesExact) {
  const auto& canneal = parsec_profile("canneal");
  EXPECT_EQ(canneal.working_set_kb, 164768u);
  EXPECT_EQ(canneal.reads, 24432900u);
  EXPECT_EQ(canneal.writes, 653623u);

  const auto& sc = parsec_profile("streamcluster");
  EXPECT_EQ(sc.working_set_kb, 15452u);
  EXPECT_EQ(sc.reads, 168666464u);
  EXPECT_EQ(sc.writes, 448612u);

  const auto& bs = parsec_profile("blackscholes");
  EXPECT_EQ(bs.writes, 0u) << "blackscholes is read-only";
}

TEST(Profiles, WriteFractionsMatchTableIII) {
  // Table III percentages (rounded in the paper).
  EXPECT_NEAR(parsec_profile("bodytrack").write_fraction(), 0.38, 0.01);
  EXPECT_NEAR(parsec_profile("canneal").write_fraction(), 0.02, 0.01);
  EXPECT_NEAR(parsec_profile("vips").write_fraction(), 0.41, 0.01);
  EXPECT_NEAR(parsec_profile("streamcluster").write_fraction(), 0.002, 0.002);
}

TEST(Profiles, LookupUnknownThrows) {
  EXPECT_THROW(parsec_profile("swaptions"), std::out_of_range);
}

TEST(Profiles, FootprintPages) {
  const auto& bs = parsec_profile("blackscholes");
  EXPECT_EQ(bs.footprint_pages(4096), 1297u);  // 5188 KB / 4 KB
  EXPECT_EQ(bs.footprint_pages(8192), 649u);   // ceil(5188/8)
}

TEST(Profiles, ScaledPreservesMixAndDensity) {
  const auto& base = parsec_profile("facesim");
  const auto s = base.scaled(16);
  EXPECT_NEAR(s.write_fraction(), base.write_fraction(), 0.001);
  const double base_density = static_cast<double>(base.total_accesses()) /
                              static_cast<double>(base.footprint_pages(4096));
  const double s_density = static_cast<double>(s.total_accesses()) /
                           static_cast<double>(s.footprint_pages(4096));
  EXPECT_NEAR(s_density / base_density, 1.0, 0.05);
  EXPECT_DOUBLE_EQ(s.roi_seconds, base.roi_seconds);
}

TEST(Profiles, ScaledByOneIsIdentityOnCounts) {
  const auto& base = parsec_profile("x264");
  const auto s = base.scaled(1);
  EXPECT_EQ(s.reads, base.reads);
  EXPECT_EQ(s.writes, base.writes);
  EXPECT_EQ(s.working_set_kb, base.working_set_kb);
}

TEST(Profiles, ScaledRejectsZero) {
  EXPECT_THROW(parsec_profile("vips").scaled(0), std::logic_error);
}

TEST(Profiles, ChurnWorkloadsMarked) {
  // The migration-hostile workloads of Sections III/V carry hot-set churn.
  EXPECT_GT(parsec_profile("canneal").churn_period, 0u);
  EXPECT_GT(parsec_profile("fluidanimate").churn_period, 0u);
  EXPECT_EQ(parsec_profile("ferret").churn_period, 0u);
}

TEST(Profiles, WritePriorityKnobsConsistent) {
  for (const auto& p : parsec_profiles()) {
    EXPECT_GE(p.write_locality, 0.0) << p.name;
    EXPECT_LE(p.write_locality, 1.0) << p.name;
    EXPECT_GE(p.hot_locality, 0.0);
    EXPECT_LE(p.hot_locality + p.scan_fraction + p.cold_fraction, 1.0)
        << p.name;
    EXPECT_LE(p.hot_fraction, p.resident_fraction) << p.name;
  }
}

}  // namespace
}  // namespace hymem::synth
