// Parameterized sweep over ALL 12 PARSEC profiles: every profile must
// generate a trace whose measured characterization matches its scaled
// Table III targets exactly, and must run end-to-end under the proposed
// scheme with conserved accounting.
#include <gtest/gtest.h>

#include "model/probabilities.hpp"
#include "sim/experiment.hpp"
#include "synth/generator.hpp"
#include "synth/workload_profile.hpp"
#include "trace/trace_stats.hpp"

namespace hymem {
namespace {

class AllProfiles : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr std::uint64_t kScale = 512;

  synth::WorkloadProfile profile() const {
    return synth::parsec_profile(GetParam()).scaled(kScale);
  }
};

TEST_P(AllProfiles, TraceMatchesTableIIITargets) {
  const auto p = profile();
  synth::GeneratorOptions options;
  options.seed = 11;
  const auto trace = synth::generate(p, options);
  const auto stats = trace::characterize(trace, options.page_size);
  EXPECT_EQ(stats.reads, p.reads);
  EXPECT_EQ(stats.writes, p.writes);
  // Footprint coverage is only guaranteed when there are enough accesses.
  if (p.total_accesses() >= p.footprint_pages(options.page_size)) {
    EXPECT_EQ(stats.distinct_pages, p.footprint_pages(options.page_size));
  }
}

TEST_P(AllProfiles, GenerationIsDeterministic) {
  const auto p = profile();
  synth::GeneratorOptions options;
  options.seed = 12;
  const auto a = synth::generate(p, options);
  const auto b = synth::generate(p, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) ASSERT_EQ(a[i], b[i]);
}

TEST_P(AllProfiles, RunsEndToEndWithConservedAccounting) {
  sim::ExperimentConfig config;
  config.policy = "two-lru";
  const auto result = sim::run_workload(synth::parsec_profile(GetParam()),
                                        kScale, config, /*seed=*/13);
  EXPECT_EQ(result.counts.hits() + result.counts.page_faults, result.accesses);
  EXPECT_TRUE(model::probabilities(result.counts).is_consistent());
  EXPECT_GT(result.appr().total(), 0.0);
  EXPECT_GT(result.amat().total(), 0.0);
}

TEST_P(AllProfiles, HybridSavesStaticPowerVsDramOnly) {
  // The structural guarantee of the 90%-NVM hybrid: the static component
  // must be far below DRAM-only's, for every workload (Table IV: 10x less
  // static power per byte).
  const auto p = profile();
  if (p.footprint_pages(4096) < 30) {
    GTEST_SKIP() << "memory too small for the 10% DRAM rule to bind "
                    "(the >=1-DRAM-frame floor dominates at this scale)";
  }
  sim::ExperimentConfig ours;
  ours.policy = "two-lru";
  sim::ExperimentConfig dram;
  dram.policy = "dram-only";
  const auto a = sim::run_workload(synth::parsec_profile(GetParam()), kScale,
                                   ours, 13);
  const auto b = sim::run_workload(synth::parsec_profile(GetParam()), kScale,
                                   dram, 13);
  EXPECT_LT(a.appr().static_nj, 0.3 * b.appr().static_nj) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Parsec, AllProfiles,
    ::testing::Values("blackscholes", "bodytrack", "canneal", "dedup",
                      "facesim", "ferret", "fluidanimate", "freqmine",
                      "raytrace", "streamcluster", "vips", "x264"),
    [](const auto& param_info) { return param_info.param; });

}  // namespace
}  // namespace hymem
