// Multi-tenant churn generator: determinism per seed, boundary schedules
// (0 tenants, 1 tenant, all-depart-then-arrive), flash crowds, and the
// hot-set metadata the retention metric consumes.
#include "synth/tenant_stream.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace hymem::synth {
namespace {

TenantChurnSpec base_spec(std::uint64_t accesses) {
  TenantChurnSpec spec;
  spec.name = "t";
  spec.tenants = {
      {TenantWorkloadKind::kGupsHotset, 32, 0.25, 0.9, 0.99, 0.3, 1},
      {TenantWorkloadKind::kZipfKv, 64, 0.1, 0.9, 0.99, 0.1, 1},
      {TenantWorkloadKind::kScan, 48, 0.1, 0.9, 0.99, 0.2, 1},
  };
  spec.total_accesses = accesses;
  spec.initial_active = 2;
  spec.seed = 7;
  return spec;
}

/// Ops rendered one token per op, so streams compare as strings.
std::string render(const TenantStream& stream) {
  std::ostringstream os;
  for (const TenantOp& op : stream.ops) {
    switch (op.kind) {
      case TenantOp::Kind::kArrive: os << "+" << op.tenant << " "; break;
      case TenantOp::Kind::kDepart: os << "-" << op.tenant << " "; break;
      default:
        os << op.tenant << (op.access.type == AccessType::kWrite ? "W" : "R")
           << op.access.addr << " ";
        break;
    }
  }
  return os.str();
}

TEST(TenantStream, DeterministicPerSeed) {
  TenantChurnSpec spec = base_spec(500);
  spec.arrival_prob = 0.01;
  spec.departure_prob = 0.005;
  spec.rearrival = true;
  const std::string a = render(generate_tenant_stream(spec));
  const std::string b = render(generate_tenant_stream(spec));
  EXPECT_EQ(a, b);

  spec.seed = 8;
  const std::string c = render(generate_tenant_stream(spec));
  EXPECT_NE(a, c);
}

TEST(TenantStream, ZeroTenantsProducesAnEmptyStream) {
  TenantChurnSpec spec;
  spec.total_accesses = 100;
  const TenantStream stream = generate_tenant_stream(spec);
  EXPECT_TRUE(stream.ops.empty());
  EXPECT_EQ(stream.accesses, 0u);
}

TEST(TenantStream, SingleTenantServesEveryAccess) {
  TenantChurnSpec spec = base_spec(200);
  spec.tenants.resize(1);
  spec.initial_active = 1;
  const TenantStream stream = generate_tenant_stream(spec);
  EXPECT_EQ(stream.accesses, 200u);
  std::uint64_t accesses = 0;
  for (const TenantOp& op : stream.ops) {
    EXPECT_EQ(op.tenant, 0u);
    if (op.kind == TenantOp::Kind::kAccess) {
      ++accesses;
      EXPECT_LT(op.access.addr / stream.page_size, 32u);
    }
  }
  EXPECT_EQ(accesses, 200u);
}

TEST(TenantStream, AllDepartThenArriveKeepsTheStreamAlive) {
  TenantChurnSpec spec = base_spec(300);
  spec.tenants.resize(2);
  spec.initial_active = 2;
  spec.schedule = {
      {100, 0, false},
      {100, 1, false},
      {200, 0, true},  // Dead air from 100..200: nobody to serve.
  };
  const TenantStream stream = generate_tenant_stream(spec);
  // The generator cannot emit accesses while nobody is active (and without
  // rearrival the departed pool is gone for good), so it pulls the scripted
  // re-arrival forward instead of truncating the stream.
  EXPECT_EQ(stream.accesses, 300u);
  std::uint64_t departs = 0, arrives = 0;
  bool seen_gap_arrival = false;
  for (const TenantOp& op : stream.ops) {
    if (op.kind == TenantOp::Kind::kDepart) ++departs;
    if (op.kind == TenantOp::Kind::kArrive) {
      ++arrives;
      if (departs == 2) seen_gap_arrival = true;
    }
  }
  EXPECT_EQ(departs, 2u);
  EXPECT_EQ(arrives, 3u);  // 2 initial + the scripted return of tenant 0.
  EXPECT_TRUE(seen_gap_arrival);
}

TEST(TenantStream, FlashCrowdAdmitsPendingTenantsAtOnce) {
  TenantChurnSpec spec = base_spec(400);
  spec.initial_active = 1;
  spec.flash_at = 200;
  spec.flash_arrivals = 2;
  const TenantStream stream = generate_tenant_stream(spec);
  std::uint64_t accesses_before = 0;
  std::vector<std::uint32_t> flash;
  for (const TenantOp& op : stream.ops) {
    if (op.kind == TenantOp::Kind::kAccess) {
      ++accesses_before;
    } else if (op.kind == TenantOp::Kind::kArrive && accesses_before > 0) {
      flash.push_back(op.tenant);
      EXPECT_EQ(accesses_before, 200u) << "flash fired off schedule";
    }
  }
  EXPECT_EQ(flash, (std::vector<std::uint32_t>{1, 2}));
}

TEST(TenantStream, ScanTenantSweepsSequentially) {
  TenantChurnSpec spec = base_spec(100);
  spec.tenants = {{TenantWorkloadKind::kScan, 16, 0.1, 0.9, 0.99, 0.0, 1}};
  spec.initial_active = 1;
  const TenantStream stream = generate_tenant_stream(spec);
  std::uint64_t expected = 0;
  for (const TenantOp& op : stream.ops) {
    if (op.kind != TenantOp::Kind::kAccess) continue;
    EXPECT_EQ(op.access.addr / stream.page_size, expected);
    expected = (expected + 1) % 16;
  }
}

TEST(TenantStream, HotPagesAreTheFootprintPrefix) {
  TenantChurnSpec spec = base_spec(10);
  const TenantStream stream = generate_tenant_stream(spec);
  const std::vector<PageId> hot = stream.hot_pages(0);  // ceil(0.25 * 32)
  ASSERT_EQ(hot.size(), 8u);
  for (PageId p = 0; p < 8; ++p) EXPECT_EQ(hot[p], p);
  // Hot set never collapses to zero pages.
  EXPECT_EQ(stream.hot_pages(1).size(), 7u);  // ceil(0.1 * 64)
}

TEST(TenantStream, RateWeightsShiftTheInterleave) {
  TenantChurnSpec spec = base_spec(2000);
  spec.tenants[0].rate_weight = 3;
  const TenantStream stream = generate_tenant_stream(spec);
  std::uint64_t t0 = 0, t1 = 0;
  for (const TenantOp& op : stream.ops) {
    if (op.kind != TenantOp::Kind::kAccess) continue;
    if (op.tenant == 0) ++t0;
    if (op.tenant == 1) ++t1;
  }
  EXPECT_GT(t0, 2 * t1);
}

TEST(TenantStream, RejectsInvalidSpecs) {
  TenantChurnSpec spec = base_spec(10);
  spec.tenants[0].pages = 0;
  EXPECT_THROW(generate_tenant_stream(spec), std::invalid_argument);
  spec = base_spec(10);
  spec.tenants[0].rate_weight = 0;
  EXPECT_THROW(generate_tenant_stream(spec), std::invalid_argument);
  spec = base_spec(10);
  spec.initial_active = 9;
  EXPECT_THROW(generate_tenant_stream(spec), std::invalid_argument);
}

}  // namespace
}  // namespace hymem::synth
