#include "synth/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "trace/trace_stats.hpp"

namespace hymem::synth {
namespace {

GeneratorOptions small_options() {
  GeneratorOptions o;
  o.seed = 99;
  return o;
}

WorkloadProfile tiny_profile() {
  WorkloadProfile p;
  p.name = "tiny";
  p.working_set_kb = 256;  // 64 pages
  p.reads = 5000;
  p.writes = 2000;
  p.zipf_alpha = 0.8;
  p.hot_fraction = 0.25;
  p.hot_locality = 0.8;
  p.scan_fraction = 0.05;
  p.burst_prob = 0.1;
  p.burst_mean = 4;
  p.write_page_fraction = 0.4;
  p.write_locality = 0.7;
  return p;
}

TEST(Generator, ExactReadWriteCounts) {
  const auto trace = generate(tiny_profile(), small_options());
  EXPECT_EQ(trace.size(), 7000u);
  EXPECT_EQ(trace.read_count(), 5000u);
  EXPECT_EQ(trace.write_count(), 2000u);
}

TEST(Generator, ExactFootprint) {
  const auto profile = tiny_profile();
  const auto trace = generate(profile, small_options());
  const auto stats = trace::characterize(trace, 4096);
  EXPECT_EQ(stats.distinct_pages, profile.footprint_pages(4096));
  EXPECT_EQ(stats.working_set_kb(), profile.working_set_kb);
}

TEST(Generator, DeterministicForSameSeed) {
  const auto a = generate(tiny_profile(), small_options());
  const auto b = generate(tiny_profile(), small_options());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorOptions o1 = small_options(), o2 = small_options();
  o2.seed = 1234;
  const auto a = generate(tiny_profile(), o1);
  const auto b = generate(tiny_profile(), o2);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += (a[i] == b[i]);
  EXPECT_LT(same, a.size() / 2);
}

TEST(Generator, AddressesLineAlignedWithinFootprint) {
  const auto profile = tiny_profile();
  const auto opts = small_options();
  const auto trace = generate(profile, opts);
  const Addr limit = profile.footprint_pages(4096) * 4096;
  for (const auto& a : trace) {
    ASSERT_LT(a.addr, limit);
    ASSERT_EQ(a.addr % opts.line_size, 0u);
  }
}

TEST(Generator, PopularitySkewFollowsZipf) {
  // With strong locality, the busiest decile of pages should absorb well
  // over its proportional share of accesses.
  auto profile = tiny_profile();
  profile.reads = 50000;
  profile.writes = 0;
  profile.zipf_alpha = 1.2;
  const auto trace = generate(profile, small_options());
  trace::TraceCharacterizer c(4096);
  c.observe(trace);
  const auto ranked = c.ranked_pages();
  const std::size_t decile = ranked.size() / 10;
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < decile; ++i) top += ranked[i].second.total();
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(trace.size()), 0.3);
}

TEST(Generator, WriteBiasConcentratesWrites) {
  auto profile = tiny_profile();
  profile.reads = 20000;
  profile.writes = 20000;
  profile.write_page_fraction = 0.2;
  profile.write_locality = 0.9;
  const auto trace = generate(profile, small_options());
  trace::TraceCharacterizer c(4096);
  c.observe(trace);
  const auto stats = c.stats();
  // Some pages must be write-dominant, but not all.
  EXPECT_GT(stats.write_dominant_pages, 0u);
  EXPECT_LT(stats.write_dominant_pages, stats.distinct_pages);
}

TEST(Generator, ReadOnlyProfileProducesNoWrites) {
  auto profile = tiny_profile();
  profile.writes = 0;
  const auto trace = generate(profile, small_options());
  EXPECT_EQ(trace.write_count(), 0u);
}

TEST(Generator, FewerAccessesThanPagesStillExact) {
  auto profile = tiny_profile();
  profile.reads = 40;  // fewer than 64 pages
  profile.writes = 10;
  const auto trace = generate(profile, small_options());
  EXPECT_EQ(trace.size(), 50u);
  const auto stats = trace::characterize(trace, 4096);
  // Cannot touch 64 pages with 50 accesses; coverage is bounded by size.
  EXPECT_EQ(stats.distinct_pages, 50u);
}

TEST(Generator, ChurnChangesHotSetOverTime) {
  auto profile = tiny_profile();
  profile.reads = 40000;
  profile.writes = 0;
  profile.churn_period = 5000;
  profile.churn_shift = 0.5;
  profile.hot_locality = 0.9;
  profile.scan_fraction = 0.0;
  const auto trace = generate(profile, small_options());
  // Compare the popular pages of the first and last quarter.
  trace::TraceCharacterizer head(4096), tail(4096);
  for (std::size_t i = 0; i < trace.size() / 4; ++i) head.observe(trace[i]);
  for (std::size_t i = 3 * trace.size() / 4; i < trace.size(); ++i) {
    tail.observe(trace[i]);
  }
  const auto top = [](const trace::TraceCharacterizer& c) {
    auto ranked = c.ranked_pages();
    ranked.resize(std::min<std::size_t>(ranked.size(), 5));
    std::set<PageId> pages;
    for (const auto& [page, prof] : ranked) pages.insert(page);
    return pages;
  };
  const auto head_top = top(head);
  const auto tail_top = top(tail);
  std::size_t overlap = 0;
  for (PageId p : head_top) overlap += tail_top.count(p);
  EXPECT_LT(overlap, head_top.size()) << "hot set never rotated";
}

TEST(Generator, RejectsBadOptions) {
  GeneratorOptions o;
  o.line_size = 0;
  EXPECT_THROW(generate(tiny_profile(), o), std::logic_error);
  o = GeneratorOptions{};
  o.line_size = 8192;  // larger than page
  EXPECT_THROW(generate(tiny_profile(), o), std::logic_error);
}

}  // namespace
}  // namespace hymem::synth
