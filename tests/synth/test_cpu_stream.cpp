#include "synth/cpu_stream.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hymem::synth {
namespace {

CpuStreamOptions small_stream() {
  CpuStreamOptions o;
  o.cores = 4;
  o.accesses_per_core = 2000;
  o.private_bytes = 1u << 20;
  o.shared_bytes = 1u << 18;
  o.seed = 5;
  return o;
}

TEST(CpuStream, TotalCountAndPerCoreCounts) {
  const auto o = small_stream();
  const auto trace = generate_cpu_stream(o);
  EXPECT_EQ(trace.size(), o.cores * o.accesses_per_core);
  std::vector<std::uint64_t> per_core(o.cores, 0);
  for (const auto& a : trace) {
    ASSERT_LT(a.core, o.cores);
    ++per_core[a.core];
  }
  for (auto c : per_core) EXPECT_EQ(c, o.accesses_per_core);
}

TEST(CpuStream, AddressesWithinLayout) {
  const auto o = small_stream();
  const auto trace = generate_cpu_stream(o);
  const Addr limit = o.shared_bytes + o.cores * o.private_bytes;
  for (const auto& a : trace) ASSERT_LT(a.addr, limit);
}

TEST(CpuStream, SharedFractionApproximatelyMet) {
  auto o = small_stream();
  o.shared_fraction = 0.25;
  o.accesses_per_core = 10000;
  const auto trace = generate_cpu_stream(o);
  std::uint64_t shared = 0;
  for (const auto& a : trace) shared += (a.addr < o.shared_bytes);
  const double frac = static_cast<double>(shared) / static_cast<double>(trace.size());
  EXPECT_NEAR(frac, 0.25, 0.03);
}

TEST(CpuStream, WriteFractionApproximatelyMet) {
  auto o = small_stream();
  o.write_fraction = 0.4;
  o.accesses_per_core = 10000;
  const auto trace = generate_cpu_stream(o);
  const double frac = static_cast<double>(trace.write_count()) / static_cast<double>(trace.size());
  EXPECT_NEAR(frac, 0.4, 0.03);
}

TEST(CpuStream, Deterministic) {
  const auto a = generate_cpu_stream(small_stream());
  const auto b = generate_cpu_stream(small_stream());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(CpuStream, InterleavesInBursts) {
  auto o = small_stream();
  o.interleave_burst = 4;
  const auto trace = generate_cpu_stream(o);
  // The first 4 accesses come from core 0, the next 4 from core 1, ...
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(trace[i].core, static_cast<std::uint8_t>((i / 4) % o.cores));
  }
}

TEST(CpuStream, SequentialRunsPresent) {
  auto o = small_stream();
  o.run_continue = 0.95;
  o.shared_fraction = 0.0;
  o.interleave_burst = 8;
  const auto trace = generate_cpu_stream(o);
  // Within a burst from one core, high run_continue means mostly +stride.
  std::uint64_t sequential = 0, pairs = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].core != trace[i - 1].core) continue;
    ++pairs;
    sequential += (trace[i].addr == trace[i - 1].addr + o.stride);
  }
  EXPECT_GT(static_cast<double>(sequential) / static_cast<double>(pairs), 0.7);
}

TEST(CpuStream, RejectsBadOptions) {
  auto o = small_stream();
  o.cores = 0;
  EXPECT_THROW(generate_cpu_stream(o), std::logic_error);
  o = small_stream();
  o.stride = 0;
  EXPECT_THROW(generate_cpu_stream(o), std::logic_error);
}

}  // namespace
}  // namespace hymem::synth
