// End-to-end pipeline tests: CPU stream -> cache hierarchy -> memory trace
// -> hybrid simulation -> models, all wired together as a downstream user
// would.
#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"
#include "model/probabilities.hpp"
#include "sim/experiment.hpp"
#include "sim/policy_factory.hpp"
#include "synth/cpu_stream.hpp"
#include "synth/generator.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"

#include <cstdio>
#include <sstream>

namespace hymem {
namespace {

TEST(Pipeline, CpuStreamThroughCachesIntoHybridMemory) {
  synth::CpuStreamOptions cpu_opts;
  cpu_opts.cores = 4;
  cpu_opts.accesses_per_core = 20000;
  cpu_opts.private_bytes = 2u << 20;
  cpu_opts.shared_bytes = 512u << 10;
  cpu_opts.seed = 12;
  const auto cpu_trace = synth::generate_cpu_stream(cpu_opts);

  cachesim::HierarchyConfig hier;  // Table II defaults
  cachesim::HierarchyStats hier_stats;
  const auto mem_trace =
      cachesim::Hierarchy::filter(cpu_trace, hier, &hier_stats);
  ASSERT_GT(mem_trace.size(), 0u);
  EXPECT_LT(hier_stats.memory_filter_ratio(), 1.0);

  sim::ExperimentConfig cfg;
  cfg.policy = "two-lru";
  const auto result = sim::run_experiment(mem_trace, 0.1, cfg);
  EXPECT_EQ(result.accesses, mem_trace.size());
  EXPECT_GT(result.amat().total(), 0.0);
  EXPECT_TRUE(model::probabilities(result.counts).is_consistent());
}

TEST(Pipeline, TraceRoundTripThroughDiskPreservesSimulation) {
  const auto& profile = synth::parsec_profile("raytrace");
  synth::GeneratorOptions gen;
  gen.seed = 21;
  const auto trace = synth::generate(profile.scaled(64), gen);

  const std::string path = ::testing::TempDir() + "/pipeline.trc";
  trace::save(trace, path);
  const auto loaded = trace::load(path);
  std::remove(path.c_str());

  sim::ExperimentConfig cfg;
  cfg.policy = "clock-dwf";
  const auto a = sim::run_experiment(trace, 1.0, cfg);
  const auto b = sim::run_experiment(loaded, 1.0, cfg);
  EXPECT_EQ(a.counts.page_faults, b.counts.page_faults);
  EXPECT_EQ(a.counts.migrations(), b.counts.migrations());
  EXPECT_DOUBLE_EQ(a.amat().total(), b.amat().total());
}

TEST(Pipeline, TableIIIRegeneratedFromSyntheticTraces) {
  // The characterization tooling must reproduce Table III's columns from
  // the generated traces exactly (scaled).
  for (const char* name : {"blackscholes", "bodytrack", "raytrace"}) {
    const auto profile = synth::parsec_profile(name).scaled(16);
    synth::GeneratorOptions gen;
    gen.seed = 7;
    const auto trace = synth::generate(profile, gen);
    const auto stats = trace::characterize(trace, 4096);
    EXPECT_EQ(stats.reads, profile.reads) << name;
    EXPECT_EQ(stats.writes, profile.writes) << name;
    EXPECT_EQ(stats.distinct_pages, profile.footprint_pages(4096)) << name;
  }
}

TEST(Pipeline, WearLevelingReducesImbalanceForHotPages) {
  // Ablation wiring: the same workload with/without Start-Gap.
  synth::WorkloadProfile p;
  p.name = "hotspot";
  p.working_set_kb = 128;
  p.reads = 2000;
  p.writes = 8000;
  p.zipf_alpha = 1.4;
  p.hot_fraction = 0.1;
  p.hot_locality = 0.95;
  p.write_page_fraction = 1.0;
  p.write_locality = 1.0;
  synth::GeneratorOptions gen;
  gen.seed = 31;
  const auto trace = synth::generate(p, gen);

  sim::ExperimentConfig base;
  base.policy = "two-lru";
  base.migration.read_threshold = ~0ULL;  // pin pages in NVM
  base.migration.write_threshold = ~0ULL;
  sim::ExperimentConfig leveled = base;
  leveled.wear_leveling = true;

  // Re-run through the full experiment API; compare wear imbalance through
  // a direct VMM run since run_experiment does not expose the tracker.
  auto run = [&](const sim::ExperimentConfig& cfg) {
    const auto footprint = trace::characterize(trace, 4096).distinct_pages;
    const auto sizing = sim::size_memory(footprint, cfg);
    os::VmmConfig vc;
    vc.dram_frames = sizing.dram_frames;
    vc.nvm_frames = sizing.nvm_frames;
    vc.wear_leveling = cfg.wear_leveling;
    vc.wear_gap_interval = 8;
    os::Vmm vmm(vc);
    auto policy = sim::make_policy(cfg.policy, vmm, cfg.migration);
    for (const auto& a : trace) {
      policy->on_access(trace::page_of(a.addr, 4096), a.type);
    }
    return vmm.nvm_endurance().wear_imbalance();
  };
  EXPECT_LT(run(leveled), run(base));
}

}  // namespace
}  // namespace hymem
