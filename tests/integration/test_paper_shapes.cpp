// Scaled-down assertions of the paper's headline claims (the full-size
// versions are the bench harnesses). These use heavily scaled PARSEC
// profiles so the whole suite stays fast, and assert *directions*, not
// absolute numbers.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"

namespace hymem {
namespace {

constexpr std::uint64_t kScale = 256;

sim::RunResult run(const char* workload, const char* policy,
                   std::uint64_t scale = kScale) {
  sim::ExperimentConfig cfg;
  cfg.policy = policy;
  return sim::run_workload(synth::parsec_profile(workload), scale, cfg,
                           /*seed=*/42);
}

TEST(PaperShapes, ClockDwfNeverServesWritesFromNvm) {
  const auto r = run("facesim", "clock-dwf");
  EXPECT_EQ(r.counts.nvm_write_hits, 0u);
}

TEST(PaperShapes, ProposedServesWritesFromNvm) {
  const auto r = run("facesim", "two-lru");
  EXPECT_GT(r.counts.nvm_write_hits, 0u);
}

TEST(PaperShapes, ProposedMigratesLessThanClockDwf) {
  // The core claim: threshold filtering prevents non-beneficial migrations.
  for (const char* w : {"facesim", "bodytrack", "x264"}) {
    const auto dwf = run(w, "clock-dwf");
    const auto ours = run(w, "two-lru");
    EXPECT_LT(ours.counts.migrations(), dwf.counts.migrations()) << w;
  }
}

TEST(PaperShapes, ProposedReducesNvmWritesVsClockDwf) {
  // Fig. 4b direction: up to 93% fewer NVM writes.
  const auto dwf = run("facesim", "clock-dwf");
  const auto ours = run("facesim", "two-lru");
  EXPECT_LT(ours.nvm_writes().total(), dwf.nvm_writes().total());
}

TEST(PaperShapes, ProposedBeatsClockDwfAmatOnWriteHeavyWorkload) {
  // Fig. 4c direction (48% average improvement).
  const auto dwf = run("facesim", "clock-dwf");
  const auto ours = run("facesim", "two-lru");
  EXPECT_LT(ours.amat().total(), dwf.amat().total());
}

TEST(PaperShapes, HybridBeatsDramOnlyOnPower) {
  // Fig. 4a direction: static power savings dominate (up to 79%).
  const auto dram = run("ferret", "dram-only");
  const auto ours = run("ferret", "two-lru");
  EXPECT_LT(ours.appr().total(), dram.appr().total());
  EXPECT_LT(ours.appr().static_nj, dram.appr().static_nj);
}

TEST(PaperShapes, StaticPowerIdenticalAcrossHybridPolicies) {
  // Section V.B: "The static power consumption is the same for both
  // methods since they are evaluated using the same DRAM and NVM size."
  const auto dwf = run("bodytrack", "clock-dwf");
  const auto ours = run("bodytrack", "two-lru");
  EXPECT_DOUBLE_EQ(dwf.appr().static_nj, ours.appr().static_nj);
}

TEST(PaperShapes, DramOnlyStaticPowerDominates) {
  // Fig. 1: static is 60-80% of DRAM-only power for ordinary workloads...
  const auto r = run("ferret", "dram-only");
  const auto p = r.appr();
  EXPECT_GT(p.static_nj / p.total(), 0.5);
}

TEST(PaperShapes, StreamclusterIsDynamicDominated) {
  // ...but streamcluster's burst over a tiny footprint is the exception.
  const auto r = run("streamcluster", "dram-only", 2048);
  const auto p = r.appr();
  EXPECT_LT(p.static_nj / p.total(), 0.5);
}

TEST(PaperShapes, ProposedReducesNvmWritesVsNvmOnly) {
  // Section V.B: up to 75% (49% average) fewer NVM writes than NVM-only.
  const auto nvm = run("x264", "nvm-only");
  const auto ours = run("x264", "two-lru");
  EXPECT_LT(ours.nvm_writes().total(), nvm.nvm_writes().total());
}

TEST(PaperShapes, MigrationShareOfClockDwfAmatIsLarge) {
  // Section III.B: migrations contribute heavily to CLOCK-DWF's AMAT.
  const auto dwf = run("facesim", "clock-dwf");
  const auto b = dwf.amat();
  EXPECT_GT(b.migration_ns / b.total(), 0.2);
}

TEST(PaperShapes, ThresholdZeroApproachesDramCacheBehaviour) {
  sim::ExperimentConfig aggressive;
  aggressive.policy = "two-lru";
  aggressive.migration.read_threshold = 0;
  aggressive.migration.write_threshold = 0;
  const auto zero = sim::run_workload(synth::parsec_profile("bodytrack"),
                                      kScale, aggressive, 42);
  const auto cache = run("bodytrack", "dram-cache");
  const auto tuned = run("bodytrack", "two-lru");
  // Promote-on-touch migrates far more than the tuned scheme.
  EXPECT_GT(zero.counts.migrations(), tuned.counts.migrations());
  EXPECT_GT(cache.counts.migrations(), tuned.counts.migrations());
}

TEST(PaperShapes, StaticPartitionHasNoMigrations) {
  const auto r = run("bodytrack", "static-partition");
  EXPECT_EQ(r.counts.migrations(), 0u);
}

}  // namespace
}  // namespace hymem
