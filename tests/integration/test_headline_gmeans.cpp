// Regression guard for the paper's headline aggregate claims: the three
// G-Mean orderings over the full 12-workload suite. These are the numbers
// EXPERIMENTS.md reports; if a calibration or policy change breaks one of
// them, this test (not a bench reading) catches it.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"
#include "util/stats.hpp"

namespace hymem {
namespace {

constexpr std::uint64_t kScale = 512;

struct SuiteMetrics {
  std::vector<double> power_vs_dram;
  std::vector<double> amat_vs_dwf;
  std::vector<double> writes_vs_nvm_only;
};

const SuiteMetrics& suite() {
  static const SuiteMetrics metrics = [] {
    SuiteMetrics m;
    for (const auto& profile : synth::parsec_profiles()) {
      auto run = [&](const char* policy) {
        sim::ExperimentConfig config;
        config.policy = policy;
        return sim::run_workload(profile, kScale, config, 42);
      };
      const auto dram = run("dram-only");
      const auto nvm = run("nvm-only");
      const auto dwf = run("clock-dwf");
      const auto ours = run("two-lru");
      m.power_vs_dram.push_back(ours.appr().total() / dram.appr().total());
      m.amat_vs_dwf.push_back(ours.amat().total() / dwf.amat().total());
      m.writes_vs_nvm_only.push_back(
          (static_cast<double>(ours.nvm_writes().total()) + 1.0) /
          (static_cast<double>(nvm.nvm_writes().total()) + 1.0));
    }
    return m;
  }();
  return metrics;
}

TEST(HeadlineGmeans, ProposedBeatsDramOnlyPowerOnMostWorkloads) {
  // Paper: up to 79% reduction, 43% G-Mean. Synthetic hostility makes our
  // overall G-Mean weaker; require a clear majority of wins and a strong
  // best case.
  int wins = 0;
  double best = 1e9;
  for (double r : suite().power_vs_dram) {
    wins += (r < 1.0);
    best = std::min(best, r);
  }
  EXPECT_GE(wins, 7) << "proposed must beat DRAM-only on most workloads";
  EXPECT_LT(best, 0.55) << "best-case saving should approach the paper's 79%";
}

TEST(HeadlineGmeans, ProposedBeatsClockDwfAmatGmean) {
  // Paper: 48% average improvement. Require the G-Mean to be clearly < 1.
  EXPECT_LT(geometric_mean(suite().amat_vs_dwf), 0.95);
}

TEST(HeadlineGmeans, ProposedCutsNvmWritesVsNvmOnlyGmean) {
  // Paper: 49% average reduction. Ours is stronger; require < 0.6.
  EXPECT_LT(geometric_mean(suite().writes_vs_nvm_only), 0.6);
}

TEST(HeadlineGmeans, HostileWorkloadsRemainHostile) {
  // canneal / fluidanimate / streamcluster must stay above DRAM-only power
  // (the paper: "not suitable for using hybrid memories").
  const auto profiles = synth::parsec_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto& name = profiles[i].name;
    if (name == "canneal" || name == "fluidanimate" ||
        name == "streamcluster") {
      EXPECT_GT(suite().power_vs_dram[i], 1.0) << name;
    }
    if (name == "facesim" || name == "ferret" || name == "x264") {
      EXPECT_LT(suite().power_vs_dram[i], 0.7) << name;
    }
  }
}

}  // namespace
}  // namespace hymem
