// Guards the hot-path overhaul's central invariant: the data-layout changes
// (page-ID interning, flat open-addressing maps, slab/index-linked queues)
// are pure performance work — simulation results must be byte-identical to
// the pre-overhaul implementation. The golden CSV was captured from the
// pre-overhaul tree with the exact spec below and committed; any behavioural
// drift in the sim core shows up here as a byte diff.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runner/sweep.hpp"
#include "synth/workload_profile.hpp"

#ifndef HYMEM_GOLDEN_SWEEP_CSV
#error "HYMEM_GOLDEN_SWEEP_CSV must point at the committed golden sweep CSV"
#endif

namespace hymem {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open golden CSV: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Mirrors bench_sweep's default grid at --scale 512 --seed 42 --jobs 1.
TEST(SweepParity, CsvIsByteIdenticalToPreOverhaulGolden) {
  runner::SweepSpec spec;
  const auto profiles = synth::parsec_profiles();
  spec.workloads.assign(profiles.begin(), profiles.end());
  spec.policies = {"dram-only", "nvm-only", "static-partition", "dram-cache",
                   "rank-mq",   "clock-dwf", "two-lru", "two-lru-adaptive"};
  spec.scale = 512;
  spec.base_seed = 42;
  spec.seed_mode = runner::SeedMode::kShared;

  runner::SweepOptions options;
  options.jobs = 1;

  const auto sweep = runner::run_sweep(spec, options);
  ASSERT_EQ(sweep.failures(), 0u);

  std::ostringstream csv;
  sweep.write_csv(csv);

  const std::string golden = read_file(HYMEM_GOLDEN_SWEEP_CSV);
  ASSERT_FALSE(golden.empty());
  // Compare sizes first for a readable failure before the full diff.
  ASSERT_EQ(csv.str().size(), golden.size());
  EXPECT_EQ(csv.str(), golden);
}

}  // namespace
}  // namespace hymem
