// End-to-end parity of the streaming/block/sharded replay engines against
// the serial reference engine (the ISSUE.md acceptance gates):
//
//   * every ingest mode (cached blocks, striped decode, HYTS stream with
//     and without readahead) reproduces the reference RunResult bytes on
//     hostile fuzz scenarios;
//   * --chunk-accesses and exact-mode --shards leave the full sweep CSV and
//     the epoch timeline CSV byte-identical for any value;
//   * replaying a stream far larger than the chunk budget keeps peak RSS
//     O(chunk), not O(trace).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/stream_parity.hpp"
#include "core/migration_scheme.hpp"
#include "os/vmm.hpp"
#include "runner/sweep.hpp"
#include "sim/engine.hpp"
#include "synth/workload_profile.hpp"
#include "trace/block_source.hpp"
#include "trace/stream_io.hpp"

namespace hymem {
namespace {

TEST(StreamParity, FuzzScenariosMatchAcrossEveryIngestMode) {
  // Same scenario family as the differential fuzzer: thrash loops, write
  // bursts, capacity-1 modules. Block size derives from the seed, covering
  // one-access blocks through whole-trace blocks.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto report = check::run_stream_parity_case(seed, 2000);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.divergence;
    EXPECT_GT(report.accesses, 0u);
  }
}

/// One tiny sweep (workload × policies) serialized as results CSV plus
/// timeline CSV — the exact bytes the CI determinism smokes diff.
std::string sweep_bytes(std::uint64_t chunk_accesses, unsigned shards) {
  runner::SweepSpec spec;
  spec.workloads = {synth::parsec_profile("streamcluster")};
  spec.policies = {"two-lru", "clock-dwf"};
  spec.scale = 512;
  runner::ConfigVariant variant;
  variant.config.timeline_epoch = 512;
  variant.config.chunk_accesses = chunk_accesses;
  variant.config.shards = shards;
  variant.config.shard_mode = sim::ShardMode::kExact;
  spec.variants = {variant};
  runner::SweepOptions options;
  options.jobs = 1;
  const auto sweep = runner::run_sweep(spec, options);
  EXPECT_EQ(sweep.failures(), 0u);
  std::ostringstream csv;
  sweep.write_csv(csv);
  const std::size_t rows = sweep.write_timeline_csv(csv);
  EXPECT_GT(rows, 0u);
  return csv.str();
}

TEST(StreamParity, ChunkAndExactShardsKeepSweepCsvByteIdentical) {
  const std::string reference = sweep_bytes(/*chunk_accesses=*/0, /*shards=*/1);
  EXPECT_EQ(sweep_bytes(1, 1), reference) << "one-access blocks";
  EXPECT_EQ(sweep_bytes(777, 1), reference) << "odd block size";
  EXPECT_EQ(sweep_bytes(1 << 20, 1), reference) << "whole-trace block";
  EXPECT_EQ(sweep_bytes(4096, 2), reference) << "2 exact shards";
  EXPECT_EQ(sweep_bytes(4096, 7), reference) << "7 exact shards";
  EXPECT_EQ(sweep_bytes(0, 5), reference) << "shards without chunking";
}

/// VmHWM ("peak RSS") in bytes from /proc/self/status.
std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

std::uint64_t current_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

/// Resets VmHWM to the current RSS (Linux: "5" into clear_refs).
bool reset_peak_rss() {
  std::ofstream clear("/proc/self/clear_refs");
  if (!clear) return false;
  clear << "5";
  clear.close();
  return peak_rss_bytes() <= current_rss_bytes() + (4u << 20);
}

TEST(StreamParity, StreamedReplayPeakMemoryIsBoundedByChunkNotTrace) {
  // 2M accesses = ~20 MB on disk and would cost ~100 MB to materialize and
  // decode (16 B MemAccess + 17 B decoded arrays per access). The streamed
  // engine holds two 16 Ki-access buffers (~0.6 MB) plus one reader chunk.
  constexpr std::size_t kAccesses = 2'000'000;
  constexpr std::size_t kBlock = 1 << 14;
  const std::string path =
      testing::TempDir() + "stream_parity_rss_trace.hyts";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out);
    trace::StreamTraceWriter writer(out, "huge", kBlock);
    std::uint64_t addr = 0;
    for (std::size_t i = 0; i < kAccesses; ++i) {
      // 64-page working set, striding so every page stays hot.
      addr = (addr + 4096) % (64 * 4096);
      writer.append({addr, i % 5 == 0 ? AccessType::kWrite : AccessType::kRead,
                     0});
    }
    writer.finish();
  }
  if (!reset_peak_rss()) {
    std::remove(path.c_str());
    GTEST_SKIP() << "kernel does not support resetting VmHWM";
  }
  const std::uint64_t before = peak_rss_bytes();
  {
    os::VmmConfig config;
    config.dram_frames = 8;
    config.nvm_frames = 48;
    os::Vmm vmm(config);
    core::TwoLruMigrationPolicy policy(vmm, {});
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in);
    trace::StreamBlockSource source(in, config.page_size, kBlock,
                                    /*readahead=*/true);
    const auto result = sim::run_blocks(policy, source, 1.0);
    EXPECT_EQ(result.accesses, kAccesses);
  }
  const std::uint64_t after = peak_rss_bytes();
  std::remove(path.c_str());
  // O(chunk) head-room budget: far below the ~100 MB a materialized replay
  // of this trace costs, far above the ~1 MB the double buffer needs.
  EXPECT_LT(after - before, 16u << 20)
      << "peak grew by " << (after - before) / 1024 << " KiB";
}

}  // namespace
}  // namespace hymem
