#include "model/probabilities.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace hymem::model {
namespace {

EventCounts sample_counts() {
  EventCounts c;
  c.accesses = 100;
  c.dram_read_hits = 30;
  c.dram_write_hits = 20;
  c.nvm_read_hits = 24;
  c.nvm_write_hits = 6;
  c.page_faults = 20;
  c.fills_to_dram = 15;
  c.fills_to_nvm = 5;
  c.migrations_to_dram = 4;
  c.migrations_to_nvm = 4;
  c.page_factor = 64;
  return c;
}

TEST(Probabilities, TableIValues) {
  const auto p = probabilities(sample_counts());
  EXPECT_DOUBLE_EQ(p.hit_dram, 0.5);
  EXPECT_DOUBLE_EQ(p.hit_nvm, 0.3);
  EXPECT_DOUBLE_EQ(p.miss, 0.2);
  EXPECT_DOUBLE_EQ(p.read_dram, 0.6);
  EXPECT_DOUBLE_EQ(p.write_dram, 0.4);
  EXPECT_DOUBLE_EQ(p.read_nvm, 0.8);
  EXPECT_DOUBLE_EQ(p.write_nvm, 0.2);
  EXPECT_DOUBLE_EQ(p.mig_to_dram, 0.04);
  EXPECT_DOUBLE_EQ(p.mig_to_nvm, 0.04);
  EXPECT_DOUBLE_EQ(p.disk_to_dram, 0.75);
  EXPECT_DOUBLE_EQ(p.disk_to_nvm, 0.25);
}

TEST(Probabilities, PartitionOfUnity) {
  const auto p = probabilities(sample_counts());
  EXPECT_TRUE(p.is_consistent());
  EXPECT_NEAR(p.read_dram + p.write_dram, 1.0, 1e-12);
  EXPECT_NEAR(p.read_nvm + p.write_nvm, 1.0, 1e-12);
  EXPECT_NEAR(p.disk_to_dram + p.disk_to_nvm, 1.0, 1e-12);
}

TEST(Probabilities, ZeroDenominatorsAreZero) {
  EventCounts c;
  c.accesses = 10;
  c.dram_read_hits = 10;  // no NVM hits, no faults
  const auto p = probabilities(c);
  EXPECT_DOUBLE_EQ(p.read_nvm, 0.0);
  EXPECT_DOUBLE_EQ(p.disk_to_dram, 0.0);
  EXPECT_TRUE(p.is_consistent());
}

TEST(Probabilities, InconsistencyDetectable) {
  EventCounts c;
  c.accesses = 10;
  c.dram_read_hits = 3;  // 7 accesses unaccounted
  const auto p = probabilities(c);
  EXPECT_FALSE(p.is_consistent());
}

TEST(Probabilities, ZeroAccessRunYieldsConsistentZeroStruct) {
  // Empty or warmup-only runs must degrade gracefully: no division by zero,
  // an all-zero struct, and is_consistent() accepting it.
  const auto p = probabilities(EventCounts{});
  EXPECT_DOUBLE_EQ(p.hit_dram, 0.0);
  EXPECT_DOUBLE_EQ(p.hit_nvm, 0.0);
  EXPECT_DOUBLE_EQ(p.miss, 0.0);
  EXPECT_DOUBLE_EQ(p.mig_to_dram, 0.0);
  EXPECT_DOUBLE_EQ(p.disk_to_dram, 0.0);
  EXPECT_TRUE(p.is_consistent());
  EXPECT_TRUE(TableIProbabilities{}.is_consistent());
}

TEST(Probabilities, NonFiniteFieldsAreInconsistent) {
  const auto base = probabilities(sample_counts());
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()}) {
    auto p = base;
    p.read_nvm = bad;  // conditional split: does not disturb the unity sum
    EXPECT_FALSE(p.is_consistent());
    auto z = TableIProbabilities{};
    z.mig_to_dram = bad;
    EXPECT_FALSE(z.is_consistent());
  }
}

}  // namespace
}  // namespace hymem::model
