#include "model/perf_model.hpp"

#include <gtest/gtest.h>

namespace hymem::model {
namespace {

ModelParams table4_params() {
  ModelParams p;
  p.page_factor = 64;
  p.dram_bytes = 64 * 4096;
  p.nvm_bytes = 576 * 4096;
  return p;
}

TEST(PerfModel, PureDramHitsGiveDramLatency) {
  EventCounts c;
  c.accesses = 10;
  c.dram_read_hits = 6;
  c.dram_write_hits = 4;
  c.page_factor = 64;
  const auto b = amat(c, table4_params());
  EXPECT_DOUBLE_EQ(b.hit_ns, 50.0);
  EXPECT_DOUBLE_EQ(b.fault_ns, 0.0);
  EXPECT_DOUBLE_EQ(b.migration_ns, 0.0);
  EXPECT_DOUBLE_EQ(b.total(), 50.0);
}

TEST(PerfModel, HandComputedEquationOne) {
  // 4 accesses: 1 DRAM read (50), 1 NVM read (100), 1 NVM write (350),
  // 1 miss (5e6). Plus 1 migration each way at PageFactor 64:
  //   N->D: 64*(100+50) = 9600; D->N: 64*(50+350) = 25600.
  EventCounts c;
  c.accesses = 4;
  c.dram_read_hits = 1;
  c.nvm_read_hits = 1;
  c.nvm_write_hits = 1;
  c.page_faults = 1;
  c.fills_to_dram = 1;
  c.migrations_to_dram = 1;
  c.migrations_to_nvm = 1;
  c.page_factor = 64;
  const auto b = amat(c, table4_params());
  EXPECT_DOUBLE_EQ(b.hit_ns, (50.0 + 100.0 + 350.0) / 4);
  EXPECT_DOUBLE_EQ(b.fault_ns, 5e6 / 4);
  EXPECT_DOUBLE_EQ(b.migration_ns, (9600.0 + 25600.0) / 4);
  EXPECT_DOUBLE_EQ(b.request_ns(), b.hit_ns + b.fault_ns);
}

TEST(PerfModel, MigrationTermScalesWithPageFactor) {
  EventCounts c;
  c.accesses = 1;
  c.dram_read_hits = 1;
  c.migrations_to_dram = 1;
  c.page_factor = 64;
  const auto small = amat(c, table4_params());
  c.page_factor = 128;
  const auto large = amat(c, table4_params());
  EXPECT_DOUBLE_EQ(large.migration_ns, 2 * small.migration_ns);
}

TEST(PerfModel, EmptyRunYieldsZeroBreakdown) {
  // Eq. 1 over zero accesses is a legitimate query now that the epoch
  // sampler evaluates it per epoch (a window can contain no accesses):
  // every term is zero, not a crash.
  EventCounts c;
  const auto breakdown = amat(c, table4_params());
  EXPECT_DOUBLE_EQ(breakdown.total(), 0.0);
  EXPECT_DOUBLE_EQ(breakdown.request_ns(), 0.0);
  EXPECT_DOUBLE_EQ(breakdown.migration_ns, 0.0);
}

TEST(PerfModel, ModelParamsFromVmm) {
  os::VmmConfig cfg;
  cfg.dram_frames = 10;
  cfg.nvm_frames = 90;
  cfg.page_size = 4096;
  cfg.access_granularity = 64;
  os::Vmm vmm(cfg);
  const auto p = ModelParams::from_vmm(vmm);
  EXPECT_EQ(p.page_factor, 64u);
  EXPECT_EQ(p.dram_bytes, 10u * 4096);
  EXPECT_EQ(p.nvm_bytes, 90u * 4096);
  EXPECT_DOUBLE_EQ(p.disk_latency_ns, 5e6);
  EXPECT_EQ(p.dram.name, "DRAM");
}

}  // namespace
}  // namespace hymem::model
