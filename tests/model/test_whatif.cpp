#include "model/whatif.hpp"

#include <gtest/gtest.h>

#include "mem/dma.hpp"
#include "model/endurance_model.hpp"
#include "model/probabilities.hpp"

namespace hymem::model {
namespace {

EventCounts sample_counts() {
  EventCounts c;
  c.accesses = 100;
  c.dram_read_hits = 50;
  c.nvm_read_hits = 20;
  c.nvm_write_hits = 20;
  c.page_faults = 10;
  c.fills_to_dram = 10;
  c.migrations_to_dram = 2;
  c.migrations_to_nvm = 2;
  c.page_factor = 64;
  return c;
}

ModelParams base_params() {
  ModelParams p;
  p.page_factor = 64;
  p.dram_bytes = 1 << 20;
  p.nvm_bytes = 10 << 20;
  return p;
}

// The analytic estimator (model/analytic) evaluates Eq. 1 / Eq. 2 / the
// endurance accounting through the probability-form overloads; the replay
// path evaluates the counts form. These agreement tests are what licenses
// keeping exactly one home per formula: on shared inputs the two forms are
// the same expression regrouped, so they must match to round-off.

TEST(FormAgreement, AmatCountsAndProbabilityFormsMatch) {
  EventCounts c = sample_counts();
  c.dram_write_hits = 12;
  c.fills_to_nvm = 3;
  ModelParams p = base_params();
  p.page_factor = c.page_factor;
  const AmatBreakdown from_counts = amat(c, p);
  const AmatBreakdown from_probs = amat(probabilities(c), p);
  EXPECT_NEAR(from_probs.hit_ns, from_counts.hit_ns,
              1e-12 * from_counts.hit_ns);
  EXPECT_NEAR(from_probs.fault_ns, from_counts.fault_ns,
              1e-12 * from_counts.fault_ns);
  EXPECT_NEAR(from_probs.migration_ns, from_counts.migration_ns,
              1e-12 * from_counts.migration_ns);
}

TEST(FormAgreement, AmatFormsMatchUnderIntegratedTransferMode) {
  const EventCounts c = sample_counts();
  ModelParams p = base_params();
  p.page_factor = c.page_factor;
  p.transfer_mode = mem::TransferMode::kIntegrated;
  const AmatBreakdown from_counts = amat(c, p);
  const AmatBreakdown from_probs = amat(probabilities(c), p);
  EXPECT_NEAR(from_probs.migration_ns, from_counts.migration_ns,
              1e-12 * from_counts.migration_ns);
}

TEST(FormAgreement, ApprCountsAndProbabilityFormsMatch) {
  EventCounts c = sample_counts();
  c.fills_to_nvm = 4;
  c.fills_to_dram = 6;
  ModelParams p = base_params();
  p.page_factor = c.page_factor;
  const double duration_s = 2.5;
  const PowerBreakdown from_counts = appr(c, p, duration_s);
  const PowerBreakdown from_probs = appr(
      probabilities(c), p, duration_s, static_cast<double>(c.accesses));
  EXPECT_NEAR(from_probs.hit_nj, from_counts.hit_nj,
              1e-12 * from_counts.hit_nj);
  EXPECT_NEAR(from_probs.fault_fill_nj, from_counts.fault_fill_nj,
              1e-12 * from_counts.fault_fill_nj);
  EXPECT_NEAR(from_probs.migration_nj, from_counts.migration_nj,
              1e-12 * from_counts.migration_nj);
  EXPECT_DOUBLE_EQ(from_probs.static_nj, from_counts.static_nj);
}

TEST(FormAgreement, NvmWriteCountsAndProbabilityFormsMatch) {
  EventCounts c = sample_counts();
  c.fills_to_nvm = 4;
  c.fills_to_dram = 6;
  const double per_access =
      nvm_writes_per_access(probabilities(c), c.page_factor);
  const double total_from_counts =
      static_cast<double>(nvm_writes(c).total());
  EXPECT_NEAR(per_access * static_cast<double>(c.accesses),
              total_from_counts, 1e-9 * total_from_counts);
}

TEST(WhatIf, BasePointMatchesDirectEvaluation) {
  const auto counts = sample_counts();
  const auto params = base_params();
  const auto points = sweep_nvm_write_latency(counts, params, 1.0,
                                              {params.nvm.write_latency_ns});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].amat.total(), amat(counts, params).total());
  EXPECT_DOUBLE_EQ(points[0].power.total(),
                   appr(counts, params, 1.0).total());
}

TEST(WhatIf, NvmWriteLatencyMonotone) {
  const auto points = sweep_nvm_write_latency(sample_counts(), base_params(),
                                              1.0, {100, 200, 350, 700});
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].amat.total(), points[i - 1].amat.total());
    // Power is untouched by a latency change... except through nothing:
    EXPECT_DOUBLE_EQ(points[i].power.hit_nj, points[0].power.hit_nj);
  }
}

TEST(WhatIf, NvmWriteEnergyAffectsPowerNotLatency) {
  const auto points = sweep_nvm_write_energy(sample_counts(), base_params(),
                                             1.0, {16, 32, 64});
  EXPECT_DOUBLE_EQ(points[0].amat.total(), points[2].amat.total());
  EXPECT_LT(points[0].power.total(), points[2].power.total());
}

TEST(WhatIf, DiskLatencyScalesFaultTermOnly) {
  const auto points = sweep_disk_latency(sample_counts(), base_params(), 1.0,
                                         {1e6, 5e6});
  EXPECT_DOUBLE_EQ(points[1].amat.fault_ns, 5 * points[0].amat.fault_ns);
  EXPECT_DOUBLE_EQ(points[0].amat.hit_ns, points[1].amat.hit_ns);
  EXPECT_DOUBLE_EQ(points[0].amat.migration_ns, points[1].amat.migration_ns);
}

TEST(WhatIf, CustomMutator) {
  const auto points =
      sweep(sample_counts(), base_params(), 0.0, {1.0, 2.0},
            [](ModelParams p, double factor) {
              p.dram.read_latency_ns *= factor;
              return p;
            });
  EXPECT_LT(points[0].amat.hit_ns, points[1].amat.hit_ns);
}

}  // namespace
}  // namespace hymem::model
