#include "model/whatif.hpp"

#include <gtest/gtest.h>

namespace hymem::model {
namespace {

EventCounts sample_counts() {
  EventCounts c;
  c.accesses = 100;
  c.dram_read_hits = 50;
  c.nvm_read_hits = 20;
  c.nvm_write_hits = 20;
  c.page_faults = 10;
  c.fills_to_dram = 10;
  c.migrations_to_dram = 2;
  c.migrations_to_nvm = 2;
  c.page_factor = 64;
  return c;
}

ModelParams base_params() {
  ModelParams p;
  p.page_factor = 64;
  p.dram_bytes = 1 << 20;
  p.nvm_bytes = 10 << 20;
  return p;
}

TEST(WhatIf, BasePointMatchesDirectEvaluation) {
  const auto counts = sample_counts();
  const auto params = base_params();
  const auto points = sweep_nvm_write_latency(counts, params, 1.0,
                                              {params.nvm.write_latency_ns});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].amat.total(), amat(counts, params).total());
  EXPECT_DOUBLE_EQ(points[0].power.total(),
                   appr(counts, params, 1.0).total());
}

TEST(WhatIf, NvmWriteLatencyMonotone) {
  const auto points = sweep_nvm_write_latency(sample_counts(), base_params(),
                                              1.0, {100, 200, 350, 700});
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].amat.total(), points[i - 1].amat.total());
    // Power is untouched by a latency change... except through nothing:
    EXPECT_DOUBLE_EQ(points[i].power.hit_nj, points[0].power.hit_nj);
  }
}

TEST(WhatIf, NvmWriteEnergyAffectsPowerNotLatency) {
  const auto points = sweep_nvm_write_energy(sample_counts(), base_params(),
                                             1.0, {16, 32, 64});
  EXPECT_DOUBLE_EQ(points[0].amat.total(), points[2].amat.total());
  EXPECT_LT(points[0].power.total(), points[2].power.total());
}

TEST(WhatIf, DiskLatencyScalesFaultTermOnly) {
  const auto points = sweep_disk_latency(sample_counts(), base_params(), 1.0,
                                         {1e6, 5e6});
  EXPECT_DOUBLE_EQ(points[1].amat.fault_ns, 5 * points[0].amat.fault_ns);
  EXPECT_DOUBLE_EQ(points[0].amat.hit_ns, points[1].amat.hit_ns);
  EXPECT_DOUBLE_EQ(points[0].amat.migration_ns, points[1].amat.migration_ns);
}

TEST(WhatIf, CustomMutator) {
  const auto points =
      sweep(sample_counts(), base_params(), 0.0, {1.0, 2.0},
            [](ModelParams p, double factor) {
              p.dram.read_latency_ns *= factor;
              return p;
            });
  EXPECT_LT(points[0].amat.hit_ns, points[1].amat.hit_ns);
}

}  // namespace
}  // namespace hymem::model
