#include "model/analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "trace/reuse_distance.hpp"
#include "util/fraction.hpp"

namespace hymem::model {
namespace {

// A deterministic mixture with structure at several reuse distances: 8 hot
// pages cycled every iteration (short gaps, read/write mix), a 64-page scan
// touched in rotating 16-page stripes (medium gaps) and a long cold tail.
trace::ReuseProfile mixed_profile() {
  trace::ReuseDistanceAnalyzer analyzer(/*page_size=*/1);
  for (int rep = 0; rep < 400; ++rep) {
    for (std::uint64_t p = 0; p < 8; ++p) {
      analyzer.observe(p,
                       rep % 3 == 0 ? AccessType::kWrite : AccessType::kRead);
    }
    const auto stripe = static_cast<std::uint64_t>(100 + (rep % 4) * 16);
    for (std::uint64_t p = stripe; p < stripe + 16; ++p) {
      analyzer.observe(p,
                       p % 5 == 0 ? AccessType::kWrite : AccessType::kRead);
    }
    analyzer.observe(10000 + static_cast<std::uint64_t>(rep));  // cold tail
  }
  return analyzer.profile();
}

AnalyticConfig two_tier_config(std::uint64_t dram = 16,
                               std::uint64_t nvm = 64) {
  AnalyticConfig cfg;
  cfg.dram_frames = dram;
  cfg.nvm_frames = nvm;
  cfg.params.page_factor = 64;
  cfg.params.dram_bytes = dram * 4096;
  cfg.params.nvm_bytes = nvm * 4096;
  cfg.duration_s = 1.0;
  return cfg;
}

TEST(Analytic, EmptyProfileYieldsAllZeroEstimate) {
  const trace::ReuseProfile empty;
  const AnalyticEstimate e = estimate(empty, two_tier_config());
  EXPECT_EQ(e.hit_ratio, 0.0);
  EXPECT_EQ(e.probs.hit_dram, 0.0);
  EXPECT_EQ(e.probs.miss, 0.0);
  EXPECT_EQ(e.nvm_writes_per_access, 0.0);
  EXPECT_EQ(e.iterations, 0);
}

TEST(Analytic, SingleTierHitRatioIsExactlyTheCdf) {
  const trace::ReuseProfile profile = mixed_profile();
  for (const std::uint64_t capacity : {4u, 8u, 9u, 24u, 88u, 200u}) {
    AnalyticConfig dram_only = two_tier_config(capacity, 0);
    const AnalyticEstimate d = estimate(profile, dram_only);
    EXPECT_NEAR(d.hit_ratio, profile.lru_hit_ratio(capacity), 1e-12)
        << "dram-only capacity " << capacity;
    EXPECT_EQ(d.probs.hit_nvm, 0.0);
    EXPECT_TRUE(d.probs.is_consistent());

    AnalyticConfig nvm_only = two_tier_config(0, capacity);
    const AnalyticEstimate n = estimate(profile, nvm_only);
    EXPECT_NEAR(n.hit_ratio, profile.lru_hit_ratio(capacity), 1e-12)
        << "nvm-only capacity " << capacity;
    EXPECT_EQ(n.probs.hit_dram, 0.0);
    EXPECT_TRUE(n.probs.is_consistent());
  }
}

TEST(Analytic, TwoTierEstimateIsConsistent) {
  const trace::ReuseProfile profile = mixed_profile();
  const AnalyticEstimate e = estimate(profile, two_tier_config());
  EXPECT_TRUE(e.probs.is_consistent());
  // The combined hit ratio is the global-LRU CDF at Cd + Cn, exactly.
  EXPECT_NEAR(e.hit_ratio, profile.lru_hit_ratio(16 + 64), 1e-12);
  EXPECT_GE(e.probs.hit_dram, 0.0);
  EXPECT_GE(e.probs.hit_nvm, 0.0);
  EXPECT_GT(e.probs.miss, 0.0);  // the cold tail always misses
  EXPECT_GT(e.amat.total(), 0.0);
  EXPECT_GT(e.power.total(), 0.0);
  EXPECT_GT(e.nvm_writes_per_access, 0.0);
  EXPECT_GT(e.lifetime_s, 0.0);
  EXPECT_TRUE(std::isfinite(e.lifetime_s));
  EXPECT_GT(e.effective_dram_frames, 0.0);
  EXPECT_GT(e.iterations, 0);
}

TEST(Analytic, ZeroThresholdPromotesMoreThanHugeThreshold) {
  const trace::ReuseProfile profile = mixed_profile();
  AnalyticConfig eager = two_tier_config();
  eager.migration.read_threshold = 0;
  eager.migration.write_threshold = 0;
  AnalyticConfig reluctant = two_tier_config();
  reluctant.migration.read_threshold = 1000;
  reluctant.migration.write_threshold = 1000;
  const AnalyticEstimate e = estimate(profile, eager);
  const AnalyticEstimate r = estimate(profile, reluctant);
  EXPECT_GT(e.probs.mig_to_dram, r.probs.mig_to_dram);
  EXPECT_EQ(e.promotion_rate_read, 1.0);  // threshold 0: first hit promotes
  EXPECT_NEAR(r.probs.mig_to_dram, 0.0, 1e-9);
}

TEST(Analytic, PromotionCapBoundsMigrationRate) {
  const trace::ReuseProfile profile = mixed_profile();
  AnalyticConfig capped = two_tier_config();
  capped.migration.read_threshold = 0;
  capped.migration.write_threshold = 0;
  capped.migration.max_promotions_per_kacc = 1;
  const AnalyticEstimate e = estimate(profile, capped);
  EXPECT_LE(e.probs.mig_to_dram, 1.0 / 1000.0 + 1e-12);
}

TEST(Analytic, ZeroWidthWindowNeverPromotes) {
  const trace::ReuseProfile profile = mixed_profile();
  AnalyticConfig cfg = two_tier_config();
  cfg.migration.read_perc = 0.0;
  cfg.migration.write_perc = 0.0;
  const AnalyticEstimate e = estimate(profile, cfg);
  EXPECT_EQ(e.probs.mig_to_dram, 0.0);
  EXPECT_EQ(e.promotion_rate_read, 0.0);
  EXPECT_EQ(e.promotion_rate_write, 0.0);
}

TEST(Analytic, WindowSnappingMatchesCountedLruQueue) {
  // Fractions that snap to the same integer window must give identical
  // estimates — the estimator shares util::snap_ceil_fraction with
  // core::CountedLruQueue, so there is no way for the two to drift.
  const trace::ReuseProfile profile = mixed_profile();
  AnalyticConfig a = two_tier_config(16, 100);
  a.migration.read_perc = 0.101;
  AnalyticConfig b = two_tier_config(16, 100);
  b.migration.read_perc = 0.11;
  ASSERT_EQ(util::snap_ceil_fraction(a.migration.read_perc, 100u),
            util::snap_ceil_fraction(b.migration.read_perc, 100u));
  const AnalyticEstimate ea = estimate(profile, a);
  const AnalyticEstimate eb = estimate(profile, b);
  EXPECT_DOUBLE_EQ(ea.probs.hit_dram, eb.probs.hit_dram);
  EXPECT_DOUBLE_EQ(ea.probs.mig_to_dram, eb.probs.mig_to_dram);
  EXPECT_DOUBLE_EQ(ea.amat.total(), eb.amat.total());
}

TEST(Analytic, ThresholdBiasMovesThePromotionTerm) {
  const trace::ReuseProfile profile = mixed_profile();
  AnalyticConfig cfg = two_tier_config();
  cfg.migration.read_threshold = 8;
  cfg.migration.write_threshold = 12;
  const AnalyticEstimate base = estimate(profile, cfg);
  AnalyticBias promote_everything;
  promote_everything.threshold_bias = -12;  // both thresholds clamp to 0
  const AnalyticEstimate biased = estimate(profile, cfg, promote_everything);
  EXPECT_GT(biased.probs.mig_to_dram, base.probs.mig_to_dram);
  EXPECT_EQ(biased.promotion_rate_read, 1.0);
}

TEST(Analytic, CapacityScaleBiasMovesTheDramSplitNotTheHitRatio) {
  const trace::ReuseProfile profile = mixed_profile();
  const AnalyticConfig cfg = two_tier_config();
  const AnalyticEstimate base = estimate(profile, cfg);
  AnalyticBias inflate;
  inflate.dram_capacity_scale = 64.0;
  const AnalyticEstimate biased = estimate(profile, cfg, inflate);
  EXPECT_GT(biased.probs.hit_dram, base.probs.hit_dram);
  // The combined hit ratio is set by total capacity, not the tier split.
  EXPECT_NEAR(biased.hit_ratio, base.hit_ratio, 1e-12);
}

TEST(Analytic, EstimateIsDeterministic) {
  const trace::ReuseProfile profile = mixed_profile();
  const AnalyticConfig cfg = two_tier_config();
  const AnalyticEstimate a = estimate(profile, cfg);
  const AnalyticEstimate b = estimate(profile, cfg);
  EXPECT_EQ(a.probs.hit_dram, b.probs.hit_dram);
  EXPECT_EQ(a.probs.mig_to_dram, b.probs.mig_to_dram);
  EXPECT_EQ(a.amat.total(), b.amat.total());
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Analytic, SweepEvaluatesEveryPointWithTheMutatedConfig) {
  const trace::ReuseProfile profile = mixed_profile();
  const AnalyticConfig base = two_tier_config();
  const std::vector<double> dram_sizes{4, 16, 48};
  const auto points = analytic_sweep(
      profile, base, dram_sizes, [](AnalyticConfig cfg, double x) {
        cfg.dram_frames = static_cast<std::uint64_t>(x);
        return cfg;
      });
  ASSERT_EQ(points.size(), dram_sizes.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].x, dram_sizes[i]);
    const AnalyticConfig direct = [&] {
      AnalyticConfig cfg = base;
      cfg.dram_frames = static_cast<std::uint64_t>(dram_sizes[i]);
      return cfg;
    }();
    EXPECT_EQ(points[i].estimate.amat.total(),
              estimate(profile, direct).amat.total());
  }
}

TEST(Analytic, ThresholdSweepIsMonotoneInPromotions) {
  const trace::ReuseProfile profile = mixed_profile();
  const AnalyticConfig base = two_tier_config();
  const auto points = analytic_sweep_read_threshold(profile, base,
                                                    {0, 2, 8, 32, 128});
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].estimate.promotion_rate_read,
              points[i - 1].estimate.promotion_rate_read);
  }
}

TEST(Analytic, LifetimeIsInfiniteWithoutNvmWrites) {
  const trace::ReuseProfile profile = mixed_profile();
  // dram-only never writes NVM.
  const AnalyticEstimate e = estimate(profile, two_tier_config(64, 0));
  EXPECT_EQ(e.nvm_writes_per_access, 0.0);
  EXPECT_EQ(e.lifetime_s, std::numeric_limits<double>::infinity());
}

}  // namespace
}  // namespace hymem::model
