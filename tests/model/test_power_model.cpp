#include "model/power_model.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace hymem::model {
namespace {

ModelParams gig_params() {
  ModelParams p;
  p.page_factor = 64;
  p.dram_bytes = kGiB;      // 1 W static
  p.nvm_bytes = 10 * kGiB;  // 1 W static
  return p;
}

TEST(PowerModel, HandComputedEquationTwo) {
  // 4 accesses: DRAM read (3.2), DRAM write (3.2), NVM read (6.4),
  // NVM write (32). One fill to DRAM: 64*3.2 = 204.8; one fill to NVM:
  // 64*32 = 2048. One migration each way:
  //   N->D: 64*(6.4+3.2) = 614.4; D->N: 64*(3.2+32) = 2252.8.
  EventCounts c;
  c.accesses = 4;
  c.dram_read_hits = 1;
  c.dram_write_hits = 1;
  c.nvm_read_hits = 1;
  c.nvm_write_hits = 1;
  c.page_faults = 2;
  c.fills_to_dram = 1;
  c.fills_to_nvm = 1;
  c.migrations_to_dram = 1;
  c.migrations_to_nvm = 1;
  c.page_factor = 64;
  const auto b = appr(c, gig_params(), /*duration_s=*/0.0);
  EXPECT_DOUBLE_EQ(b.hit_nj, (3.2 + 3.2 + 6.4 + 32.0) / 4);
  EXPECT_DOUBLE_EQ(b.fault_fill_nj, (204.8 + 2048.0) / 4);
  EXPECT_DOUBLE_EQ(b.migration_nj, (614.4 + 2252.8) / 4);
  EXPECT_DOUBLE_EQ(b.static_nj, 0.0);
  EXPECT_DOUBLE_EQ(b.dynamic(), b.total());
}

TEST(PowerModel, StaticProrationEquationThree) {
  EventCounts c;
  c.accesses = 1000;
  c.dram_read_hits = 1000;
  c.page_factor = 64;
  // 2 W for 1 s over 1000 requests = 2 mJ / 1000 = 2e6 nJ per request.
  const auto b = appr(c, gig_params(), 1.0);
  EXPECT_DOUBLE_EQ(b.static_nj, 2e9 / 1000);
}

TEST(PowerModel, StaticTermIndependentOfEventMix) {
  // Eq. 3's term depends only on (capacity, duration, request count) — the
  // paper's observation that both schemes share the same static power.
  EventCounts a;
  a.accesses = 500;
  a.dram_read_hits = 500;
  a.page_factor = 64;
  EventCounts b_counts;
  b_counts.accesses = 500;
  b_counts.nvm_write_hits = 400;
  b_counts.dram_read_hits = 100;
  b_counts.page_factor = 64;
  const auto pa = appr(a, gig_params(), 2.0);
  const auto pb = appr(b_counts, gig_params(), 2.0);
  EXPECT_DOUBLE_EQ(pa.static_nj, pb.static_nj);
  EXPECT_NE(pa.hit_nj, pb.hit_nj);
}

TEST(PowerModel, NvmStaticAdvantage) {
  // Same capacity as NVM consumes 10x less static power (Table IV).
  ModelParams dram_only;
  dram_only.dram_bytes = kGiB;
  dram_only.nvm_bytes = 0;
  ModelParams nvm_only;
  nvm_only.dram_bytes = 0;
  nvm_only.nvm_bytes = kGiB;
  EXPECT_DOUBLE_EQ(dram_only.total_static_power(), 1.0);
  EXPECT_DOUBLE_EQ(nvm_only.total_static_power(), 0.1);
}

TEST(PowerModel, NegativeDurationRejected) {
  EventCounts c;
  c.accesses = 1;
  c.dram_read_hits = 1;
  EXPECT_THROW(appr(c, gig_params(), -1.0), std::logic_error);
}

TEST(PowerModel, EmptyRunYieldsZeroBreakdown) {
  // Zero-access windows happen under epoch sampling; Eq. 2 degrades to an
  // all-zero breakdown instead of aborting the process.
  EventCounts c;
  const auto breakdown = appr(c, gig_params(), 1.0);
  EXPECT_DOUBLE_EQ(breakdown.total(), 0.0);
  EXPECT_DOUBLE_EQ(breakdown.static_nj, 0.0);
}

}  // namespace
}  // namespace hymem::model
