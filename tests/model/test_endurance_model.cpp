#include "model/endurance_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "os/vmm.hpp"

namespace hymem::model {
namespace {

TEST(EnduranceModel, BreakdownFromCounts) {
  EventCounts c;
  c.accesses = 100;
  c.nvm_write_hits = 10;
  c.fills_to_nvm = 2;
  c.migrations_to_nvm = 3;
  c.page_factor = 64;
  const auto w = nvm_writes(c);
  EXPECT_EQ(w.demand_writes, 10u);
  EXPECT_EQ(w.fault_fill_writes, 128u);
  EXPECT_EQ(w.migration_writes, 192u);
  EXPECT_EQ(w.total(), 330u);
}

TEST(EnduranceModel, CrossCheckAgainstVmmTracker) {
  // The model derived from event counts must agree with the wear tracker's
  // ground truth, write for write.
  os::VmmConfig cfg;
  cfg.dram_frames = 2;
  cfg.nvm_frames = 4;
  os::Vmm vmm(cfg);
  vmm.fault_in(1, Tier::kNvm);
  vmm.fault_in(2, Tier::kDram);
  vmm.access(1, AccessType::kWrite);
  vmm.access(1, AccessType::kWrite);
  vmm.access(2, AccessType::kWrite);  // DRAM write: not an NVM write
  vmm.migrate(2, Tier::kNvm);
  const auto counts = EventCounts::from_vmm(vmm, 5);
  const auto w = nvm_writes(counts);
  EXPECT_EQ(w.total(), vmm.nvm_endurance().total_writes());
  EXPECT_EQ(w.demand_writes,
            vmm.nvm_endurance().writes_from(mem::NvmWriteSource::kDemandWrite));
  EXPECT_EQ(w.fault_fill_writes,
            vmm.nvm_endurance().writes_from(mem::NvmWriteSource::kPageFault));
  EXPECT_EQ(w.migration_writes,
            vmm.nvm_endurance().writes_from(mem::NvmWriteSource::kMigration));
}

TEST(EnduranceModel, LifetimeInverselyProportionalToWriteRate) {
  NvmWriteBreakdown w;
  w.demand_writes = 1000;
  const double life_slow = lifetime_seconds(w, 1e8, 100, 64, 10.0);
  const double life_fast = lifetime_seconds(w, 1e8, 100, 64, 1.0);
  EXPECT_NEAR(life_slow / life_fast, 10.0, 1e-9);
}

TEST(EnduranceModel, NoWritesMeansInfiniteLifetime) {
  NvmWriteBreakdown w;
  EXPECT_TRUE(std::isinf(lifetime_seconds(w, 1e8, 100, 64, 1.0)));
}

TEST(EnduranceModel, HandComputedLifetime) {
  NvmWriteBreakdown w;
  w.demand_writes = 100;
  // Budget = 1e6 cycles * 10 pages * 64 cells = 6.4e8 writes.
  // Rate = 100 writes / 2 s = 50 writes/s. Lifetime = 1.28e7 s.
  EXPECT_NEAR(lifetime_seconds(w, 1e6, 10, 64, 2.0), 6.4e8 / 50.0, 1e-6);
}

}  // namespace
}  // namespace hymem::model
