#include "model/events.hpp"

#include <gtest/gtest.h>

namespace hymem::model {
namespace {

os::VmmConfig small_config() {
  os::VmmConfig c;
  c.dram_frames = 2;
  c.nvm_frames = 4;
  return c;
}

TEST(Events, FromVmmCollectsEverything) {
  os::Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kDram);
  vmm.fault_in(2, Tier::kNvm);
  vmm.access(1, AccessType::kRead);
  vmm.access(1, AccessType::kWrite);
  vmm.access(2, AccessType::kRead);
  vmm.access(2, AccessType::kWrite);
  vmm.migrate(2, Tier::kDram);
  vmm.migrate(1, Tier::kNvm);
  // 4 demand accesses + 2 faults = 6 "requests" for the identity check.
  const auto counts = EventCounts::from_vmm(vmm, 6);
  EXPECT_EQ(counts.dram_read_hits, 1u);
  EXPECT_EQ(counts.dram_write_hits, 1u);
  EXPECT_EQ(counts.nvm_read_hits, 1u);
  EXPECT_EQ(counts.nvm_write_hits, 1u);
  EXPECT_EQ(counts.page_faults, 2u);
  EXPECT_EQ(counts.fills_to_dram, 1u);
  EXPECT_EQ(counts.fills_to_nvm, 1u);
  EXPECT_EQ(counts.migrations_to_dram, 1u);
  EXPECT_EQ(counts.migrations_to_nvm, 1u);
  EXPECT_EQ(counts.page_factor, 64u);
  EXPECT_EQ(counts.hits(), 4u);
  EXPECT_EQ(counts.migrations(), 2u);
}

TEST(Events, ConservationViolationDetected) {
  os::Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kDram);
  vmm.access(1, AccessType::kRead);
  // Claiming 10 accesses when only 1 hit + 1 fault happened must throw.
  EXPECT_THROW(EventCounts::from_vmm(vmm, 10), std::logic_error);
}

TEST(Events, DirtyEvictionsCounted) {
  os::Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kDram);
  vmm.access(1, AccessType::kWrite);
  vmm.evict(1);
  const auto counts = EventCounts::from_vmm(vmm, 2);
  EXPECT_EQ(counts.dirty_evictions, 1u);
}

}  // namespace
}  // namespace hymem::model
