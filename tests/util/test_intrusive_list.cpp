#include "util/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hymem {
namespace {

struct Node {
  int value = 0;
  ListHook hook;
};

using List = IntrusiveList<Node, &Node::hook>;

std::vector<int> to_vector(const List& list) {
  std::vector<int> out;
  list.for_each([&out](const Node& n) { out.push_back(n.value); });
  return out;
}

TEST(IntrusiveList, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.pop_back(), nullptr);
}

TEST(IntrusiveList, PushFrontOrders) {
  List list;
  Node a{1, {}}, b{2, {}}, c{3, {}};
  list.push_front(a);
  list.push_front(b);
  list.push_front(c);
  EXPECT_EQ(to_vector(list), (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(list.front()->value, 3);
  EXPECT_EQ(list.back()->value, 1);
}

TEST(IntrusiveList, PushBackOrders) {
  List list;
  Node a{1, {}}, b{2, {}};
  list.push_back(a);
  list.push_back(b);
  EXPECT_EQ(to_vector(list), (std::vector<int>{1, 2}));
}

TEST(IntrusiveList, MoveToFront) {
  List list;
  Node a{1, {}}, b{2, {}}, c{3, {}};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.move_to_front(c);
  EXPECT_EQ(to_vector(list), (std::vector<int>{3, 1, 2}));
  list.move_to_front(c);  // already at front: no-op ordering
  EXPECT_EQ(to_vector(list), (std::vector<int>{3, 1, 2}));
}

TEST(IntrusiveList, EraseMiddle) {
  List list;
  Node a{1, {}}, b{2, {}}, c{3, {}};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(b);
  EXPECT_EQ(to_vector(list), (std::vector<int>{1, 3}));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(b.hook.is_linked());
}

TEST(IntrusiveList, PopBackReturnsLru) {
  List list;
  Node a{1, {}}, b{2, {}};
  list.push_front(a);
  list.push_front(b);
  Node* victim = list.pop_back();
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->value, 1);
  EXPECT_EQ(list.size(), 1u);
}

TEST(IntrusiveList, NextPrevNavigation) {
  List list;
  Node a{1, {}}, b{2, {}}, c{3, {}};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.next(a)->value, 2);
  EXPECT_EQ(list.prev(c)->value, 2);
  EXPECT_EQ(list.next(c), nullptr);
  EXPECT_EQ(list.prev(a), nullptr);
}

TEST(IntrusiveList, InsertBefore) {
  List list;
  Node a{1, {}}, c{3, {}}, b{2, {}};
  list.push_back(a);
  list.push_back(c);
  list.insert_before(c, b);
  EXPECT_EQ(to_vector(list), (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveList, ReinsertAfterErase) {
  List list;
  Node a{1, {}};
  list.push_front(a);
  list.erase(a);
  list.push_back(a);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.front(), &a);
}

TEST(IntrusiveList, DoubleLinkDetected) {
  List list;
  Node a{1, {}};
  list.push_front(a);
  EXPECT_THROW(list.push_front(a), std::logic_error);
}

TEST(IntrusiveList, EraseUnlinkedDetected) {
  List list;
  Node a{1, {}};
  EXPECT_THROW(list.erase(a), std::logic_error);
}

}  // namespace
}  // namespace hymem
