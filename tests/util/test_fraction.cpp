#include "util/fraction.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hymem::util {
namespace {

TEST(SnapCeilFraction, ExactProductsDoNotRoundUp) {
  EXPECT_EQ(snap_ceil_fraction(0.25, 8), 2u);
  EXPECT_EQ(snap_ceil_fraction(0.5, 10), 5u);
  EXPECT_EQ(snap_ceil_fraction(0.1, 10), 1u);
}

TEST(SnapCeilFraction, FractionalRemainderRoundsUp) {
  EXPECT_EQ(snap_ceil_fraction(0.3, 7), 3u);   // 2.1 -> 3
  EXPECT_EQ(snap_ceil_fraction(0.34, 50), 17u);
  EXPECT_EQ(snap_ceil_fraction(0.01, 10), 1u);  // 0.1 -> 1
}

TEST(SnapCeilFraction, FloatingNoiseAboveIntegerSnapsDown) {
  // 0.07 * 100 = 7.000000000000001 in binary64; a naive ceil() reports 8.
  // The 1e-9 relative snap recovers the intended 7 — the bug this helper
  // exists to fix, previously hand-mirrored in four call sites.
  EXPECT_EQ(snap_ceil_fraction(0.07, 100), 7u);
  EXPECT_EQ(snap_ceil_fraction(0.29, 100), 29u);
}

TEST(SnapCeilFraction, Extremes) {
  EXPECT_EQ(snap_ceil_fraction(0.0, 1000), 0u);
  EXPECT_EQ(snap_ceil_fraction(1.0, 1000), 1000u);
  EXPECT_EQ(snap_ceil_fraction(0.5, 0), 0u);
  // Result never exceeds the total even if rounding pushes it up.
  EXPECT_EQ(snap_ceil_fraction(0.999999, 3), 3u);
}

TEST(SnapCeilFraction, OutOfRangeFractionRejected) {
  EXPECT_THROW(snap_ceil_fraction(-0.1, 10), std::logic_error);
  EXPECT_THROW(snap_ceil_fraction(1.5, 10), std::logic_error);
}

}  // namespace
}  // namespace hymem::util
