#include "util/flat_page_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/random.hpp"

namespace hymem::util {
namespace {

TEST(FlatPageMap, StartsEmpty) {
  FlatPageMap<int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7), nullptr);
  EXPECT_FALSE(map.contains(7));
  EXPECT_FALSE(map.erase(7));
  EXPECT_FALSE(map.take(7).has_value());
}

TEST(FlatPageMap, InsertFindErase) {
  FlatPageMap<int> map;
  const auto [slot, inserted] = map.try_emplace(42);
  ASSERT_TRUE(inserted);
  *slot = 11;
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 11);

  const auto [again, second] = map.try_emplace(42);
  EXPECT_FALSE(second);
  EXPECT_EQ(*again, 11);
  EXPECT_EQ(map.size(), 1u);

  EXPECT_TRUE(map.erase(42));
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatPageMap, TakeReturnsValue) {
  FlatPageMap<int> map;
  *map.try_emplace(5).first = 50;
  const auto taken = map.take(5);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(*taken, 50);
  EXPECT_FALSE(map.contains(5));
}

TEST(FlatPageMap, RejectsSentinelKey) {
  FlatPageMap<int> map;
  EXPECT_THROW(map.try_emplace(kInvalidPage), std::logic_error);
}

TEST(FlatPageMap, ReserveAvoidsGrowth) {
  FlatPageMap<int> map;
  map.reserve(1000);
  // Pointers stay valid across inserts up to the reserved population —
  // i.e. no rehash happened.
  int* first = map.try_emplace(0).first;
  for (PageId p = 1; p < 1000; ++p) map.try_emplace(p);
  EXPECT_EQ(first, map.find(0));
  EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatPageMap, ClearEmptiesButKeepsWorking) {
  FlatPageMap<int> map;
  for (PageId p = 0; p < 100; ++p) *map.try_emplace(p).first = static_cast<int>(p);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  for (PageId p = 0; p < 100; ++p) EXPECT_FALSE(map.contains(p));
  *map.try_emplace(3).first = 33;
  EXPECT_EQ(*map.find(3), 33);
}

TEST(FlatPageMap, DenseSequentialKeys) {
  // Page IDs decode from contiguous address regions, so dense runs are the
  // common case; they must probe and erase correctly despite clustering.
  FlatPageMap<std::uint64_t> map;
  for (PageId p = 0; p < 5000; ++p) *map.try_emplace(p).first = p * 3;
  for (PageId p = 0; p < 5000; ++p) {
    ASSERT_NE(map.find(p), nullptr) << p;
    EXPECT_EQ(*map.find(p), p * 3);
  }
  // Erase every other key, then verify the survivors (backward-shift must
  // keep every remaining probe chain reachable).
  for (PageId p = 0; p < 5000; p += 2) EXPECT_TRUE(map.erase(p));
  for (PageId p = 0; p < 5000; ++p) {
    EXPECT_EQ(map.contains(p), p % 2 == 1) << p;
  }
}

// The core property test: a FlatPageMap and a std::unordered_map fed the
// same randomized churn must agree on every lookup, every erase result and
// the full iteration contents. Mixed key ranges force wrap-around clusters
// and long backward shifts.
TEST(FlatPageMap, MatchesUnorderedMapUnderChurn) {
  FlatPageMap<std::uint64_t> map;
  std::unordered_map<PageId, std::uint64_t> reference;
  Rng rng(1234);
  std::uint64_t next_value = 1;
  for (int step = 0; step < 200000; ++step) {
    // Narrow key range → heavy insert/erase of the *same* keys, which is
    // exactly the regime where stale tombstones or a wrong shift test break
    // probe chains.
    const PageId key = rng.next_below(512);
    switch (rng.next_below(4)) {
      case 0:
      case 1: {  // insert (or re-find)
        const auto [slot, inserted] = map.try_emplace(key);
        const auto [it, ref_inserted] = reference.try_emplace(key, 0);
        ASSERT_EQ(inserted, ref_inserted);
        if (inserted) {
          *slot = next_value;
          it->second = next_value;
          ++next_value;
        } else {
          ASSERT_EQ(*slot, it->second);
        }
        break;
      }
      case 2: {  // erase
        ASSERT_EQ(map.erase(key), reference.erase(key) == 1);
        break;
      }
      case 3: {  // lookup
        const std::uint64_t* found = map.find(key);
        const auto it = reference.find(key);
        if (it == reference.end()) {
          ASSERT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          ASSERT_EQ(*found, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
  // Full-iteration parity at the end.
  std::vector<std::pair<PageId, std::uint64_t>> entries;
  map.for_each([&entries](PageId key, std::uint64_t& value) {
    entries.emplace_back(key, value);
  });
  ASSERT_EQ(entries.size(), reference.size());
  for (const auto& [key, value] : entries) {
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(value, it->second);
  }
}

// Same property under sparse, high-entropy keys (hashes land anywhere in
// the table, including the wrap-around seam).
TEST(FlatPageMap, MatchesUnorderedMapSparseKeys) {
  FlatPageMap<std::uint64_t> map;
  std::unordered_map<PageId, std::uint64_t> reference;
  Rng rng(99);
  std::vector<PageId> keys;
  for (int i = 0; i < 400; ++i) {
    keys.push_back(rng.next() | (static_cast<PageId>(1) << 60));
  }
  for (int step = 0; step < 50000; ++step) {
    const PageId key = keys[rng.next_below(keys.size())];
    if (rng.next_bool(0.6)) {
      const auto [slot, inserted] = map.try_emplace(key);
      reference.try_emplace(key, 7);
      if (inserted) *slot = 7;
    } else {
      ASSERT_EQ(map.take(key).has_value(), reference.erase(key) == 1);
    }
  }
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(map.contains(key));
  }
}

/// Keys whose home slot (for a table of `capacity`) is exactly `slot`.
std::vector<PageId> keys_homing_at(std::size_t slot, std::size_t capacity,
                                   std::size_t how_many) {
  std::vector<PageId> keys;
  for (PageId k = 0; keys.size() < how_many; ++k) {
    if ((hash_page_id(k) & (capacity - 1)) == slot) keys.push_back(k);
  }
  return keys;
}

// Backward-shift erase across the table seam: build a probe cluster that
// starts in the last slots and wraps to slot 0, then erase entries at every
// position in it. The wrap-aware displacement test must keep every survivor
// reachable.
TEST(FlatPageMap, EraseCompactsWrappedClusters) {
  constexpr std::size_t kCap = 16;  // kMinCapacity: never rehashes below 9
  // Five keys all homing at the last slot: they occupy slots 15,0,1,2,3.
  const std::vector<PageId> cluster = keys_homing_at(kCap - 1, kCap, 5);
  for (std::size_t victim = 0; victim < cluster.size(); ++victim) {
    FlatPageMap<std::uint64_t> map;
    for (const PageId k : cluster) *map.try_emplace(k).first = k * 10;
    ASSERT_TRUE(map.erase(cluster[victim]));
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (i == victim) {
        EXPECT_FALSE(map.contains(cluster[i]));
      } else {
        const std::uint64_t* found = map.find(cluster[i]);
        ASSERT_NE(found, nullptr) << "lost key " << cluster[i]
                                  << " after erasing " << cluster[victim];
        EXPECT_EQ(*found, cluster[i] * 10);
      }
    }
  }
}

// A wrapped cluster whose members home on *different* sides of the seam:
// the displaced suffix must only move entries whose home precedes the hole
// in wrap order, never an entry already at home.
TEST(FlatPageMap, EraseAcrossSeamKeepsHomeSlotEntriesPut) {
  constexpr std::size_t kCap = 16;
  const PageId at_last = keys_homing_at(kCap - 1, kCap, 2)[0];
  const PageId also_last = keys_homing_at(kCap - 1, kCap, 2)[1];
  const PageId at_zero = keys_homing_at(0, kCap, 1)[0];
  FlatPageMap<std::uint64_t> map;
  // Occupancy: slot 15 <- at_last, slot 0 <- also_last (displaced across the
  // seam), slot 1 <- at_zero (displaced by the intruder in its home).
  *map.try_emplace(at_last).first = 1;
  *map.try_emplace(also_last).first = 2;
  *map.try_emplace(at_zero).first = 3;
  // Erasing the seam-straddling entry must pull at_zero back toward its
  // home, not lose it.
  ASSERT_TRUE(map.erase(also_last));
  ASSERT_NE(map.find(at_last), nullptr);
  ASSERT_NE(map.find(at_zero), nullptr);
  EXPECT_EQ(*map.find(at_last), 1u);
  EXPECT_EQ(*map.find(at_zero), 3u);
}

// The table rehashes when an insert would push the load factor past 1/2.
// Hover around exactly that boundary with churn: entries must never be lost
// or duplicated on either side of the growth.
TEST(FlatPageMap, ChurnAtExactlyHalfLoadFactor) {
  FlatPageMap<std::uint64_t> map;
  map.reserve(8);  // capacity 16; 8 entries fit, the 9th insert rehashes
  for (PageId k = 0; k < 8; ++k) *map.try_emplace(k).first = k;
  ASSERT_EQ(map.size(), 8u);
  // Replace one entry at the boundary several times: erase + reinsert keeps
  // size at capacity/2, never triggering growth, never losing entries.
  for (int round = 0; round < 32; ++round) {
    const PageId out = static_cast<PageId>(round % 8);
    ASSERT_TRUE(map.erase(out));
    *map.try_emplace(out).first = out;
    ASSERT_EQ(map.size(), 8u);
    for (PageId k = 0; k < 8; ++k) {
      ASSERT_NE(map.find(k), nullptr);
      ASSERT_EQ(*map.find(k), k);
    }
  }
  // The insert crossing the boundary (9 > 16/2) grows the table and must
  // carry every entry across the rehash.
  *map.try_emplace(100).first = 100;
  ASSERT_EQ(map.size(), 9u);
  for (PageId k = 0; k < 8; ++k) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(*map.find(k), k);
  }
  PageId* const grown = map.find(100);
  ASSERT_NE(grown, nullptr);
  EXPECT_EQ(*grown, 100u);
}

}  // namespace
}  // namespace hymem::util
