#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hymem {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSinglePass) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Means, ArithmeticMean) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(arithmetic_mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(arithmetic_mean({}), 0.0);
}

TEST(Means, GeometricMean) {
  const std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

TEST(Means, GeometricMeanIsBelowArithmeticForSpread) {
  const std::vector<double> xs{0.5, 2.0, 8.0};
  EXPECT_LT(geometric_mean(xs), arithmetic_mean(xs));
}

TEST(Means, GeometricMeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), std::logic_error);
}

TEST(Quantile, InterpolatesSorted) {
  std::vector<double> xs{4, 1, 3, 2};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::logic_error);
  EXPECT_THROW(quantile({1.0}, 1.5), std::logic_error);
}

}  // namespace
}  // namespace hymem
