#include "util/slab_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace hymem::util {
namespace {

struct Node {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

TEST(SlabPool, AllocatesConstructedNodes) {
  SlabPool<Node> pool(8);
  Node* n = pool.allocate();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->a, 0u);
  EXPECT_EQ(n->b, 0u);
  EXPECT_EQ(pool.live(), 1u);
  pool.release(n);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, ReusesReleasedNodes) {
  SlabPool<Node> pool(4);
  Node* first = pool.allocate();
  pool.release(first);
  // The free list is LIFO: the next allocation reuses the released slot.
  Node* second = pool.allocate();
  EXPECT_EQ(first, second);
}

TEST(SlabPool, AddressesAreStableAndDistinct) {
  SlabPool<Node> pool(4);  // small first block to force growth
  std::vector<Node*> nodes;
  for (int i = 0; i < 1000; ++i) {
    Node* n = pool.allocate();
    n->a = static_cast<std::uint64_t>(i);
    nodes.push_back(n);
  }
  std::set<Node*> distinct(nodes.begin(), nodes.end());
  EXPECT_EQ(distinct.size(), nodes.size());
  // Growth must not move previously handed-out nodes (intrusive hooks and
  // index pointers rely on stable addresses).
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)]->a,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(pool.live(), 1000u);
  EXPECT_GE(pool.capacity(), 1000u);
}

TEST(SlabPool, ChurnKeepsLiveCountExact) {
  SlabPool<Node> pool(16);
  std::vector<Node*> live;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) live.push_back(pool.allocate());
    for (int i = 0; i < 5; ++i) {
      pool.release(live.back());
      live.pop_back();
    }
    EXPECT_EQ(pool.live(), live.size());
  }
}

TEST(SlabPool, AllocateForwardsConstructorArgs) {
  struct Pair {
    int x;
    int y;
  };
  SlabPool<Pair> pool(2);
  Pair* p = pool.allocate(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

// Freed slots must be recycled (LIFO) before the pool carves fresh slots or
// grows a new block.
TEST(SlabPool, ReusesFreedSlotsBeforeGrowing) {
  SlabPool<Node> pool(8);
  std::vector<Node*> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back(pool.allocate());
  const std::size_t cap_before = pool.capacity();
  Node* const a = nodes[2];
  Node* const b = nodes[5];
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.live(), 6u);
  // LIFO: the most recently freed slot comes back first.
  EXPECT_EQ(pool.allocate(), b);
  EXPECT_EQ(pool.allocate(), a);
  EXPECT_EQ(pool.capacity(), cap_before);  // no growth needed
  EXPECT_EQ(pool.live(), 8u);
}

// Interleaved free/alloc cycles: every handed-out address is distinct among
// live nodes, recycled addresses stay inside previously-seen storage, and
// the pool never grows while the free list can satisfy demand.
TEST(SlabPool, InterleavedFreeAllocRecyclesExactly) {
  SlabPool<Node> pool(16);
  std::vector<Node*> live;
  std::set<Node*> ever_seen;
  for (int i = 0; i < 16; ++i) {
    live.push_back(pool.allocate(static_cast<std::uint64_t>(i), 0ull));
    ever_seen.insert(live.back());
  }
  const std::size_t cap = pool.capacity();
  for (int round = 0; round < 200; ++round) {
    // Free a varying prefix, then reallocate the same amount.
    const std::size_t n = 1 + static_cast<std::size_t>(round % 7);
    std::vector<Node*> freed;
    for (std::size_t i = 0; i < n; ++i) {
      freed.push_back(live.back());
      pool.release(live.back());
      live.pop_back();
    }
    for (std::size_t i = 0; i < n; ++i) {
      Node* node = pool.allocate(static_cast<std::uint64_t>(round), i);
      // Recycled, not fresh storage.
      EXPECT_TRUE(ever_seen.contains(node));
      live.push_back(node);
    }
    EXPECT_EQ(pool.capacity(), cap);
    EXPECT_EQ(pool.live(), 16u);
    const std::set<Node*> distinct(live.begin(), live.end());
    ASSERT_EQ(distinct.size(), live.size());
  }
}

// Releasing everything and refilling reuses the original block entirely.
TEST(SlabPool, DrainAndRefillStaysInPlace) {
  SlabPool<Node> pool(32);
  std::vector<Node*> nodes;
  for (int i = 0; i < 32; ++i) nodes.push_back(pool.allocate());
  const std::size_t cap = pool.capacity();
  std::set<Node*> first_gen(nodes.begin(), nodes.end());
  for (Node* n : nodes) pool.release(n);
  EXPECT_EQ(pool.live(), 0u);
  for (int i = 0; i < 32; ++i) {
    Node* n = pool.allocate();
    EXPECT_TRUE(first_gen.contains(n));
  }
  EXPECT_EQ(pool.capacity(), cap);
  EXPECT_EQ(pool.live(), 32u);
}

}  // namespace
}  // namespace hymem::util
