#include "util/slab_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace hymem::util {
namespace {

struct Node {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

TEST(SlabPool, AllocatesConstructedNodes) {
  SlabPool<Node> pool(8);
  Node* n = pool.allocate();
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->a, 0u);
  EXPECT_EQ(n->b, 0u);
  EXPECT_EQ(pool.live(), 1u);
  pool.release(n);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, ReusesReleasedNodes) {
  SlabPool<Node> pool(4);
  Node* first = pool.allocate();
  pool.release(first);
  // The free list is LIFO: the next allocation reuses the released slot.
  Node* second = pool.allocate();
  EXPECT_EQ(first, second);
}

TEST(SlabPool, AddressesAreStableAndDistinct) {
  SlabPool<Node> pool(4);  // small first block to force growth
  std::vector<Node*> nodes;
  for (int i = 0; i < 1000; ++i) {
    Node* n = pool.allocate();
    n->a = static_cast<std::uint64_t>(i);
    nodes.push_back(n);
  }
  std::set<Node*> distinct(nodes.begin(), nodes.end());
  EXPECT_EQ(distinct.size(), nodes.size());
  // Growth must not move previously handed-out nodes (intrusive hooks and
  // index pointers rely on stable addresses).
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)]->a,
              static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(pool.live(), 1000u);
  EXPECT_GE(pool.capacity(), 1000u);
}

TEST(SlabPool, ChurnKeepsLiveCountExact) {
  SlabPool<Node> pool(16);
  std::vector<Node*> live;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) live.push_back(pool.allocate());
    for (int i = 0; i < 5; ++i) {
      pool.release(live.back());
      live.pop_back();
    }
    EXPECT_EQ(pool.live(), live.size());
  }
}

TEST(SlabPool, AllocateForwardsConstructorArgs) {
  struct Pair {
    int x;
    int y;
  };
  SlabPool<Pair> pool(2);
  Pair* p = pool.allocate(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

}  // namespace
}  // namespace hymem::util
