#include "util/table.hpp"

#include <gtest/gtest.h>

namespace hymem {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Every line is at least as wide as the widest cell arrangement.
  const auto first_newline = s.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  EXPECT_GE(first_newline, std::string("alpha  value").size() - 1);
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::logic_error);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt(0.5), "0.500");
}

TEST(TextTable, CountsRows) {
  TextTable t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, HeaderUnderlinePresent) {
  TextTable t({"col"});
  t.add_row({"v"});
  EXPECT_NE(t.to_string().find("---"), std::string::npos);
}

}  // namespace
}  // namespace hymem
