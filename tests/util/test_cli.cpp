#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace hymem {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
  const auto args = parse({"prog", "--scale=16", "--policy=two-lru"});
  EXPECT_EQ(args.get_uint("scale", 1), 16u);
  EXPECT_EQ(args.get("policy"), "two-lru");
}

TEST(Cli, ParsesSpaceForm) {
  const auto args = parse({"prog", "--scale", "8"});
  EXPECT_EQ(args.get_uint("scale", 1), 8u);
}

TEST(Cli, BooleanFlags) {
  const auto args = parse({"prog", "--csv", "--verbose=false"});
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_FALSE(args.get_bool("verbose", true));
  EXPECT_FALSE(args.get_bool("absent", false));
  EXPECT_TRUE(args.get_bool("absent", true));
}

TEST(Cli, BadBooleanThrows) {
  const auto args = parse({"prog", "--flag=maybe"});
  EXPECT_THROW(args.get_bool("flag"), std::invalid_argument);
}

TEST(Cli, Positionals) {
  const auto args = parse({"prog", "input.trc", "--x=1", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.trc");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get("missing", "def"), "def");
  EXPECT_EQ(args.get_int("missing", -3), -3);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, DoubleValues) {
  const auto args = parse({"prog", "--frac=0.75"});
  EXPECT_DOUBLE_EQ(args.get_double("frac", 0.0), 0.75);
}

TEST(Cli, ProgramName) {
  const auto args = parse({"myprog"});
  EXPECT_EQ(args.program(), "myprog");
}

}  // namespace
}  // namespace hymem
