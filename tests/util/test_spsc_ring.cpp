#include "util/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "util/random.hpp"

namespace hymem::util {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, ZeroCapacityRejected) {
  EXPECT_THROW(SpscRing<int>(0), std::logic_error);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = ring.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, FullRingRejectsPush) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.push(99));
  // The rejected push must not disturb the queued values.
  EXPECT_EQ(ring.pop().value(), 0);
  EXPECT_TRUE(ring.push(4));
  for (int i = 1; i <= 4; ++i) EXPECT_EQ(ring.pop().value(), i);
}

TEST(SpscRing, EmptyPopReturnsNullopt) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.pop().has_value());
  ring.push(1);
  EXPECT_FALSE(ring.empty());
  ring.pop();
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, CapacityOneBoundary) {
  SpscRing<int> ring(1);
  EXPECT_TRUE(ring.push(7));
  EXPECT_FALSE(ring.push(8));
  EXPECT_EQ(ring.pop().value(), 7);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, WraparoundManyTimesOverSmallRing) {
  // Cursors are monotonic and indices masked: push/pop far more values than
  // the capacity and the FIFO contract must survive every wrap.
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.push(next_in)) ++next_in;
    for (int drain = 0; drain < 3; ++drain) {
      const auto v = ring.pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_out++);
    }
  }
  while (const auto v = ring.pop()) EXPECT_EQ(*v, next_out++);
  EXPECT_EQ(next_in, next_out);
}

TEST(SpscRing, PropertyRandomInterleavingMatchesDeque) {
  // Single-threaded oracle: any interleaving of pushes and pops behaves
  // exactly like an unbounded deque truncated at capacity.
  std::uint64_t s = 0x5eed5eed5eed5eedULL;
  SpscRing<std::uint64_t> ring(8);
  std::deque<std::uint64_t> oracle;
  std::uint64_t value = 0;
  for (int step = 0; step < 20000; ++step) {
    if (splitmix64(s) % 2 == 0) {
      const bool accepted = ring.push(value);
      EXPECT_EQ(accepted, oracle.size() < ring.capacity());
      if (accepted) oracle.push_back(value);
      ++value;
    } else {
      const auto popped = ring.pop();
      EXPECT_EQ(popped.has_value(), !oracle.empty());
      if (popped) {
        EXPECT_EQ(*popped, oracle.front());
        oracle.pop_front();
      }
    }
    EXPECT_EQ(ring.size(), oracle.size());
  }
}

TEST(SpscRing, ThreadedProducerConsumerDeliversEverythingInOrder) {
  // One producer thread, one consumer thread, a deliberately tiny ring so
  // both full-ring spins and empty-ring spins happen constantly. Under
  // TSan (the runner CI job) this is the data-race certificate for the
  // acquire/release protocol.
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(16);
  std::vector<std::uint64_t> received;
  received.reserve(kCount);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.push(i)) std::this_thread::yield();
    }
  });
  std::thread consumer([&ring, &received] {
    while (received.size() < kCount) {
      if (const auto v = ring.pop()) {
        received.push_back(*v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "out-of-order delivery at index " << i;
  }
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace hymem::util
