#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace hymem::util {
namespace {

TEST(JsonEscape, PlainTextPassesThrough) {
  EXPECT_EQ(json_escape("hello world_42.csv"), "hello world_42.csv");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, QuoteAndBackslash) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("C:\\temp"), "C:\\\\temp");
}

TEST(JsonEscape, ShorthandControls) {
  EXPECT_EQ(json_escape("a\bb"), "a\\bb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\fb"), "a\\fb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
}

TEST(JsonEscape, FullRfc8259ControlRange) {
  // RFC 8259 requires escaping EVERY code point below 0x20, not just the
  // five with shorthands — \x01, \x1b (ESC) etc. used to leak through raw.
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1b')), "\\u001b");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped = json_escape(std::string(1, static_cast<char>(c)));
    for (const char out : escaped) {
      EXPECT_GE(static_cast<unsigned char>(out), 0x20u)
          << "control byte " << c << " leaked through unescaped";
    }
  }
}

TEST(JsonEscape, Utf8AndHighBytesPassThrough) {
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
  EXPECT_EQ(json_escape("\xf0\x9f\x94\xa5"), "\xf0\x9f\x94\xa5");
}

// Minimal JSON string unescaper for the round-trip check below.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'f': out += '\f'; break;
      case 'r': out += '\r'; break;
      case 'u': {
        unsigned code = 0;
        std::sscanf(s.c_str() + i + 1, "%4x", &code);
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: ADD_FAILURE() << "unknown escape: \\" << s[i];
    }
  }
  return out;
}

TEST(JsonEscape, RoundTripsEveryByte) {
  std::string all;
  for (int c = 0; c < 256; ++c) all += static_cast<char>(c);
  EXPECT_EQ(json_unescape(json_escape(all)), all);
}

}  // namespace
}  // namespace hymem::util
