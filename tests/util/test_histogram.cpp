#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace hymem {
namespace {

TEST(Log2Histogram, BucketIndexBoundaries) {
  EXPECT_EQ(Log2Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Log2Histogram::bucket_index(8), 4u);
}

TEST(Log2Histogram, BucketBoundsRoundTrip) {
  for (std::size_t idx = 0; idx < 20; ++idx) {
    EXPECT_EQ(Log2Histogram::bucket_index(Log2Histogram::bucket_lo(idx)), idx);
    EXPECT_EQ(Log2Histogram::bucket_index(Log2Histogram::bucket_hi(idx)), idx);
  }
}

TEST(Log2Histogram, CountsAndTotal) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(100, 5);
  EXPECT_EQ(h.total(), 9u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(Log2Histogram::bucket_index(100)), 5u);
}

TEST(Log2Histogram, OutOfRangeBucketIsZero) {
  Log2Histogram h;
  h.add(1);
  EXPECT_EQ(h.bucket(50), 0u);
}

TEST(Log2Histogram, QuantileUpperBound) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(1);   // bucket [1,1]
  for (int i = 0; i < 10; ++i) h.add(64);  // bucket [64,127]
  EXPECT_EQ(h.quantile_upper_bound(0.5), 1u);
  EXPECT_EQ(h.quantile_upper_bound(0.95), 127u);
}

TEST(Log2Histogram, QuantileOfEmptyIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.quantile_upper_bound(0.9), 0u);
}

TEST(Log2Histogram, ToStringSkipsEmptyBuckets) {
  Log2Histogram h;
  h.add(0);
  h.add(5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("0..0 : 1"), std::string::npos);
  EXPECT_NE(s.find("4..7 : 1"), std::string::npos);
  EXPECT_EQ(s.find("1..1"), std::string::npos);
}

}  // namespace
}  // namespace hymem
