#include "util/budget.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace hymem::util {
namespace {

using U64s = std::vector<std::uint64_t>;

TEST(SplitBudget, ProportionalAndExact) {
  EXPECT_EQ(split_budget(12, {1, 1, 1}), (U64s{4, 4, 4}));
  EXPECT_EQ(split_budget(10, {3, 1}), (U64s{8, 2}));  // 7.5 -> largest rem.
  EXPECT_EQ(split_budget(7, {1}), (U64s{7}));
}

TEST(SplitBudget, SharesAlwaysSumToTotal) {
  for (std::uint64_t total = 3; total < 40; ++total) {
    const U64s shares = split_budget(total, {5, 3, 1});
    EXPECT_EQ(std::accumulate(shares.begin(), shares.end(),
                              std::uint64_t{0}),
              total)
        << "total " << total;
  }
}

TEST(SplitBudget, RemainderTiesBreakToLowestIndex) {
  // 5 into three equal weights: 1 each plus 2 remainder units, which must
  // land on indices 0 and 1 — never on a higher index first.
  EXPECT_EQ(split_budget(5, {1, 1, 1}), (U64s{2, 2, 1}));
  EXPECT_EQ(split_budget(7, {1, 1, 1}), (U64s{3, 2, 2}));
}

TEST(SplitBudget, ZeroWeightsGetNothing) {
  EXPECT_EQ(split_budget(8, {1, 0, 1}), (U64s{4, 0, 4}));
  EXPECT_EQ(split_budget(8, {0, 0, 2}), (U64s{0, 0, 8}));
}

TEST(SplitBudget, AllZeroWeightsPutTotalOnIndexZero) {
  EXPECT_EQ(split_budget(8, {0, 0, 0}), (U64s{8, 0, 0}));
  EXPECT_EQ(split_budget(0, {0, 0}), (U64s{0, 0}));
}

TEST(SplitBudget, FloorOfOneForPositiveWeights) {
  // Weight 1 against weight 1000 would round to zero; the floor takes a
  // unit from the largest share instead.
  const U64s shares = split_budget(10, {1000, 1, 1});
  EXPECT_EQ(shares[1], 1u);
  EXPECT_EQ(shares[2], 1u);
  EXPECT_EQ(shares[0], 8u);
}

TEST(SplitBudget, ThrowsWhenTotalCannotCoverTheFloors) {
  EXPECT_THROW(split_budget(2, {1, 1, 1}), std::invalid_argument);
  try {
    split_budget(1, {1, 1});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("split_budget"), std::string::npos);
  }
}

TEST(SplitBudget, EmptyWeights) {
  EXPECT_EQ(split_budget(0, {}), (U64s{}));
}

}  // namespace
}  // namespace hymem::util
