#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hymem {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommas) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(Csv, LeavesPlainFieldsAlone) {
  EXPECT_EQ(CsvWriter::escape("plain_field-1.0"), "plain_field-1.0");
}

TEST(Csv, MultipleRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"h1", "h2"});
  csv.write_row({"1,5", "2"});
  EXPECT_EQ(os.str(), "h1,h2\n\"1,5\",2\n");
}

}  // namespace
}  // namespace hymem
