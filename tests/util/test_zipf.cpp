#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

namespace hymem {
namespace {

TEST(Zipf, PmfSumsToOne) {
  for (double alpha : {0.0, 0.5, 1.0, 2.0}) {
    ZipfSampler z(50, alpha);
    double sum = 0;
    for (std::uint64_t r = 0; r < 50; ++r) sum += z.pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "alpha=" << alpha;
  }
}

TEST(Zipf, PmfIsMonotoneDecreasing) {
  ZipfSampler z(100, 0.8);
  for (std::uint64_t r = 1; r < 100; ++r) {
    EXPECT_GT(z.pmf(r - 1), z.pmf(r));
  }
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::uint64_t r = 0; r < 10; ++r) EXPECT_NEAR(z.pmf(r), 0.1, 1e-12);
}

TEST(Zipf, SamplesStayInRange) {
  ZipfSampler z(17, 1.2);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) ASSERT_LT(z.sample(rng), 17u);
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  constexpr std::uint64_t kN = 20;
  constexpr int kDraws = 200000;
  ZipfSampler z(kN, 1.0);
  Rng rng(77);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::uint64_t r = 0; r < kN; ++r) {
    const double expected = z.pmf(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, expected * 0.1 + 30) << "rank " << r;
  }
}

TEST(Zipf, HigherAlphaConcentratesMass) {
  ZipfSampler mild(100, 0.5);
  ZipfSampler steep(100, 1.5);
  EXPECT_GT(steep.pmf(0), mild.pmf(0));
  EXPECT_LT(steep.pmf(99), mild.pmf(99));
}

TEST(Zipf, SingleElementAlwaysSamplesZero) {
  ZipfSampler z(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::logic_error);
  EXPECT_THROW(ZipfSampler(5, -0.1), std::logic_error);
  ZipfSampler z(5, 1.0);
  EXPECT_THROW(z.pmf(5), std::logic_error);
}

}  // namespace
}  // namespace hymem
