#include "util/random.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hymem {
namespace {

TEST(Rng, IsDeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DiffersForDifferentSeeds) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.next_below(1), 0u);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(42);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 40000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 40000.0, 0.3, 0.02);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, NextInIsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GeometricMeanMatchesContinuationProbability) {
  Rng rng(13);
  // E[k] = p / (1 - p) for P(k) = (1-p) p^k.
  const double p = 0.75;
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(rng.next_geometric(p));
  }
  EXPECT_NEAR(sum / kDraws, p / (1 - p), 0.1);
}

TEST(Rng, GeometricZeroProbabilityIsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.next_geometric(0.0), 0u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Splitmix64, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  const std::uint64_t first = splitmix64(s1);
  const std::uint64_t second = splitmix64(s1);
  EXPECT_NE(first, second);  // the state advances
}

// Thread-safety audit (sweep runner): Rng has no global or shared state —
// generators with the same seed advanced concurrently on many threads must
// emit exactly the sequence a lone generator emits.
TEST(Rng, ConcurrentGeneratorsWithSameSeedAreBitIdentical) {
  constexpr int kThreads = 8;
  constexpr int kDraws = 10000;
  std::vector<std::uint64_t> expected(kDraws);
  Rng reference(1234);
  for (auto& v : expected) v = reference.next();

  std::vector<std::vector<std::uint64_t>> seen(
      kThreads, std::vector<std::uint64_t>(kDraws));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&seen, t] {
      Rng rng(1234);  // each thread owns its generator
      for (int i = 0; i < kDraws; ++i) seen[static_cast<std::size_t>(t)]
          [static_cast<std::size_t>(i)] = rng.next();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& sequence : seen) EXPECT_EQ(sequence, expected);
}

}  // namespace
}  // namespace hymem
