#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/access.hpp"
#include "util/random.hpp"
#include "util/units.hpp"

namespace hymem::check {
namespace {

trace::Trace noisy_trace(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  trace::Trace t("noise");
  for (std::size_t i = 0; i < n; ++i) {
    t.append(rng.next_below(50) * kDefaultPageSize,
             rng.next_bool(0.4) ? AccessType::kWrite : AccessType::kRead);
  }
  return t;
}

std::uint64_t writes_to(const trace::Trace& t, PageId page) {
  std::uint64_t n = 0;
  for (const trace::MemAccess& a : t) {
    if (a.type == AccessType::kWrite &&
        trace::page_of(a.addr, kDefaultPageSize) == page) {
      ++n;
    }
  }
  return n;
}

TEST(ShrinkTrace, ReducesToTheMinimalFailingCore) {
  // "Fails" iff the trace holds >= 3 writes to page 7. The minimum is
  // exactly those three writes, renumbered onto page 0.
  trace::Trace t = noisy_trace(1, 400);
  t.append(7 * kDefaultPageSize, AccessType::kWrite);
  t.append(7 * kDefaultPageSize, AccessType::kWrite);
  t.append(7 * kDefaultPageSize, AccessType::kWrite);
  const auto fails = [](const trace::Trace& c) { return writes_to(c, 7) >= 3; };
  // After renumbering, page 7 becomes page 0, so the predicate must look at
  // whichever page carries the writes; use an id-agnostic version.
  const auto fails_any = [](const trace::Trace& c) {
    for (const trace::MemAccess& a : c) {
      if (writes_to(c, trace::page_of(a.addr, kDefaultPageSize)) >= 3 &&
          a.type == AccessType::kWrite) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(fails(t));
  const trace::Trace minimal = shrink_trace(t, fails_any);
  EXPECT_EQ(minimal.size(), 3u);
  EXPECT_TRUE(fails_any(minimal));
  for (const trace::MemAccess& a : minimal) {
    EXPECT_EQ(trace::page_of(a.addr, kDefaultPageSize), 0u);
    EXPECT_EQ(a.type, AccessType::kWrite);
  }
}

TEST(ShrinkTrace, PreservesRequiredOrdering) {
  // Fails iff a read of page 3 happens strictly before a write of page 9.
  const auto fails = [](const trace::Trace& c) {
    bool seen_read = false;
    for (const trace::MemAccess& a : c) {
      // Renumber-agnostic: any read, then any later write.
      if (a.type == AccessType::kRead) seen_read = true;
      if (seen_read && a.type == AccessType::kWrite) return true;
    }
    return false;
  };
  trace::Trace t("order");
  t.append(1 * kDefaultPageSize, AccessType::kWrite);  // removable
  t.append(3 * kDefaultPageSize, AccessType::kRead);
  t.append(5 * kDefaultPageSize, AccessType::kRead);  // removable
  t.append(9 * kDefaultPageSize, AccessType::kWrite);
  ASSERT_TRUE(fails(t));
  const trace::Trace minimal = shrink_trace(t, fails);
  ASSERT_EQ(minimal.size(), 2u);
  EXPECT_EQ(minimal[0].type, AccessType::kRead);
  EXPECT_EQ(minimal[1].type, AccessType::kWrite);
  EXPECT_EQ(trace::page_of(minimal[0].addr, kDefaultPageSize), 0u);
}

TEST(ShrinkTrace, RespectsThePredicateCallBudget) {
  trace::Trace t = noisy_trace(2, 300);
  std::size_t calls = 0;
  const auto fails = [&calls](const trace::Trace& c) {
    ++calls;
    return !c.empty();  // everything non-empty "fails"
  };
  const trace::Trace minimal =
      shrink_trace(t, fails, /*max_predicate_calls=*/25);
  EXPECT_LE(calls, 26u);  // budget + at most one canonicalization probe
  EXPECT_FALSE(minimal.empty());
  EXPECT_LE(minimal.size(), t.size());
}

TEST(ShrinkTrace, SingleAccessStaysSingleAccess) {
  trace::Trace t("one");
  t.append(41 * kDefaultPageSize, AccessType::kWrite);
  const auto fails = [](const trace::Trace& c) { return c.size() >= 1; };
  const trace::Trace minimal = shrink_trace(t, fails);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(trace::page_of(minimal[0].addr, kDefaultPageSize), 0u);
}

}  // namespace
}  // namespace hymem::check
