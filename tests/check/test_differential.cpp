// The differential acceptance gate: fuzzed traces replayed through the
// optimized stack and the reference oracle in lockstep, with per-access
// invariant audits, must never diverge — and a deliberately skewed oracle
// (the permanent mutation-check knob) must always be caught and shrunk.
#include "check/differential.hpp"

#include <gtest/gtest.h>

#include "trace/access.hpp"
#include "util/units.hpp"

namespace hymem::check {
namespace {

DiffSpec tiny_spec() {
  DiffSpec spec;
  spec.dram_frames = 2;
  spec.nvm_frames = 4;
  spec.migration.read_threshold = 1;
  spec.migration.write_threshold = 2;
  spec.migration.read_perc = 0.5;
  spec.migration.write_perc = 1.0;
  return spec;
}

trace::Trace busy_trace(std::size_t rounds) {
  // Hammers promotions, demotions, eviction chains and window boundaries on
  // the tiny shape above.
  trace::Trace t("busy");
  for (std::size_t r = 0; r < rounds; ++r) {
    for (PageId p = 0; p < 9; ++p) {
      t.append(p * kDefaultPageSize,
               (r + p) % 3 == 0 ? AccessType::kWrite : AccessType::kRead);
    }
    t.append(((r * 5) % 9) * kDefaultPageSize, AccessType::kRead);
    t.append(((r * 5) % 9) * kDefaultPageSize, AccessType::kRead);
  }
  return t;
}

TEST(Differential, HandcraftedChurnRunsClean) {
  const DiffResult r = run_differential(busy_trace(200), tiny_spec());
  EXPECT_TRUE(r.ok()) << r.divergence->what;
  EXPECT_EQ(r.accesses, busy_trace(200).size());
}

TEST(Differential, CapacityOneQueuesRunClean) {
  DiffSpec spec = tiny_spec();
  spec.dram_frames = 1;
  spec.nvm_frames = 1;
  const DiffResult r = run_differential(busy_trace(100), spec);
  EXPECT_TRUE(r.ok()) << r.divergence->what;
}

TEST(Differential, RateLimitedPromotionsRunClean) {
  DiffSpec spec = tiny_spec();
  spec.migration.max_promotions_per_kacc = 5;
  const DiffResult r = run_differential(busy_trace(200), spec);
  EXPECT_TRUE(r.ok()) << r.divergence->what;
}

// The acceptance criterion: >= 8 fuzzed seeds x >= 10k accesses each, full
// per-access invariant audits, zero divergence anywhere (decisions, queue
// states, counters, final event ledgers, Eq. 1-3 + endurance outputs).
TEST(Differential, FuzzedSeedsProduceZeroDivergence) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FuzzReport report = run_fuzz_case(seed, /*accesses=*/10000);
    EXPECT_TRUE(report.ok()) << report.summary;
    EXPECT_EQ(report.result.accesses, 10000u) << report.fuzz.describe();
  }
}

// Mutation check, always in-tree: biasing the oracle's thresholds by +1
// turns it into an off-by-one specification of the promotion rule. The
// harness must notice on a workload that promotes, and the shrinker must
// cut the repro down to a handful of accesses.
TEST(Differential, SkewedOracleIsCaughtAndShrunk) {
  DiffSpec spec = tiny_spec();
  spec.oracle_threshold_bias = 1;
  const trace::Trace t = busy_trace(50);
  const DiffResult direct = run_differential(t, spec);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.divergence->what.find("outcome"), std::string::npos)
      << direct.divergence->what;
}

TEST(Differential, SkewedOracleShrinksToAMinimalRepro) {
  // Same knob through the fuzzing entry point: report carries the shrunk
  // trace. A promotion needs threshold+1 counted hits on one NVM page plus
  // the faults that put it there, so the minimal repro stays tiny.
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 4 && !caught; ++seed) {
    const FuzzReport report =
        run_fuzz_case(seed, /*accesses=*/3000, /*oracle_threshold_bias=*/1);
    if (report.ok()) continue;  // a seed may never promote; try the next
    caught = true;
    EXPECT_FALSE(report.minimal.empty());
    // The true minimum needs dram_frames faults to force the first demotion
    // plus a handful of NVM hits; anything near that is a good shrink.
    EXPECT_LE(report.minimal.size(),
              report.fuzz.dram_frames + report.fuzz.nvm_frames + 16)
        << report.summary;
    EXPECT_FALSE(report.summary.empty());
    // The report must carry the reproduction line.
    EXPECT_NE(report.summary.find("seed="), std::string::npos);
    EXPECT_NE(report.summary.find("repro:"), std::string::npos);
  }
  EXPECT_TRUE(caught) << "no fuzz seed exercised a promotion";
}

TEST(Differential, NegativeBiasIsAlsoCaught) {
  // Bias -1 makes the oracle promote *earlier* than the implementation.
  DiffSpec spec = tiny_spec();
  spec.migration.read_threshold = 2;
  spec.migration.write_threshold = 3;
  spec.oracle_threshold_bias = -1;
  const DiffResult r = run_differential(busy_trace(50), spec);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace hymem::check
