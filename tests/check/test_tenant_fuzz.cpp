// Fuzz smoke for the multi-tenant serving layer: seed-derived churn
// scenarios with the per-operation structural audit plus the double-replay
// determinism and attribution-conservation oracles (see
// check/tenant_invariants.hpp). The shrinker contract for failing tenant-op
// schedules rides here too. The nightly sweep lives in
// test_tenant_fuzz_long.cpp.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "check/fuzzer.hpp"
#include "check/shrink.hpp"
#include "check/tenant_invariants.hpp"

namespace hymem::check {
namespace {

std::uint64_t seed_count(std::uint64_t fallback) {
  const char* env = std::getenv("HYMEM_FUZZ_SEEDS");
  if (env == nullptr) return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<std::uint64_t>(parsed) : fallback;
}

TEST(TenantFuzz, SeedsHoldInvariantsAndReplayDeterministically) {
  const std::uint64_t seeds = seed_count(8);
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 0xc3a5c85c97cb3127ull + i;
    try {
      const TenantFuzzOutcome out = run_tenant_fuzz_case(seed, 1500);
      EXPECT_GT(out.accesses, 0u) << out.describe;
      EXPECT_GT(out.tenants, 0u) << out.describe;
      EXPECT_EQ(out.totals.accesses, out.accesses) << out.describe;
    } catch (const std::logic_error& e) {
      FAIL() << "seed " << seed << ": " << e.what();
    }
  }
}

TEST(TenantFuzz, ScenariosVaryAcrossSeeds) {
  // The derivation must explore the space (policies, budget modes, shard
  // counts, schedule shapes) or coverage silently collapses to one shape.
  const TenantFuzzCase a = make_tenant_fuzz_case(1, 300);
  const TenantFuzzCase b = make_tenant_fuzz_case(2, 300);
  const TenantFuzzCase c = make_tenant_fuzz_case(3, 300);
  EXPECT_FALSE(a.describe() == b.describe() && b.describe() == c.describe());
}

TEST(TenantFuzz, ShrinkerMinimizesAFailingSchedule) {
  // A synthetic failure ("any access by tenant 2 after a tenant-1 depart")
  // embedded in a large generated schedule must shrink to its 2-op core.
  TenantFuzzCase fuzz = make_tenant_fuzz_case(0x5eed, 800);
  fuzz.spec.tenants.resize(3);
  fuzz.spec.initial_active = 3;
  fuzz.spec.schedule = {{200, 1, false}};
  const synth::TenantStream stream = synth::generate_tenant_stream(fuzz.spec);

  const auto still_fails = [](const std::vector<synth::TenantOp>& ops) {
    bool departed = false;
    for (const synth::TenantOp& op : ops) {
      if (op.kind == synth::TenantOp::Kind::kDepart && op.tenant == 1) {
        departed = true;
      }
      if (departed && op.kind == synth::TenantOp::Kind::kAccess &&
          op.tenant == 2) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(still_fails(stream.ops));

  const std::vector<synth::TenantOp> minimal =
      shrink_tenant_ops(stream.ops, still_fails);
  ASSERT_EQ(minimal.size(), 2u)
      << format_tenant_ops(minimal, stream.page_size);
  EXPECT_EQ(minimal[0].kind, synth::TenantOp::Kind::kDepart);
  EXPECT_EQ(minimal[0].tenant, 1u);
  EXPECT_EQ(minimal[1].kind, synth::TenantOp::Kind::kAccess);
  EXPECT_EQ(minimal[1].tenant, 2u);
  EXPECT_TRUE(still_fails(minimal));
}

TEST(TenantFuzz, FormatRendersEveryOpKind) {
  std::vector<synth::TenantOp> ops;
  ops.push_back({synth::TenantOp::Kind::kArrive, 2, {}});
  ops.push_back(
      {synth::TenantOp::Kind::kAccess, 2, {7 * 4096, AccessType::kWrite}});
  ops.push_back(
      {synth::TenantOp::Kind::kAccess, 0, {3 * 4096, AccessType::kRead}});
  ops.push_back({synth::TenantOp::Kind::kDepart, 2, {}});
  EXPECT_EQ(format_tenant_ops(ops, 4096), "+2 2W7 0R3 -2");
}

}  // namespace
}  // namespace hymem::check
