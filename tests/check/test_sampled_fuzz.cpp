// Fuzz smoke for the sampled-hotness policy: seed-derived scenarios with
// per-access invariant auditing plus the double-replay determinism oracle
// (see check/sampled_invariants.hpp). The nightly sweep lives in
// test_sampled_fuzz_long.cpp.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "check/sampled_invariants.hpp"

namespace hymem::check {
namespace {

std::uint64_t seed_count(std::uint64_t fallback) {
  const char* env = std::getenv("HYMEM_FUZZ_SEEDS");
  if (env == nullptr) return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<std::uint64_t>(parsed) : fallback;
}

TEST(SampledFuzz, SeedsHoldInvariantsAndReplayDeterministically) {
  const std::uint64_t seeds = seed_count(8);
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 0x9e3779b97f4a7c15ull + i;
    try {
      const SampledFuzzOutcome out = run_sampled_fuzz_case(seed, 3000);
      EXPECT_GT(out.accesses, 0u) << out.describe;
      EXPECT_EQ(out.dram_resident + out.nvm_resident > 0u, true)
          << out.describe;
    } catch (const std::logic_error& e) {
      FAIL() << "seed " << seed << ": " << e.what();
    }
  }
}

TEST(SampledFuzz, TunablesVaryAcrossSeeds) {
  // The config derivation must actually explore the space, or the fuzz
  // coverage silently collapses to one shape.
  const SampledFuzzOutcome a = run_sampled_fuzz_case(1, 300);
  const SampledFuzzOutcome b = run_sampled_fuzz_case(2, 300);
  EXPECT_NE(a.describe, b.describe);
}

}  // namespace
}  // namespace hymem::check
