// Long multi-tenant fuzz sweep (nightly CI; ctest -L fuzz). Same oracles as
// test_tenant_fuzz.cpp — per-operation structural audit, double-replay
// determinism, attribution conservation — over a wider seed range and
// longer churn schedules.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "check/tenant_invariants.hpp"

namespace hymem::check {
namespace {

std::uint64_t seed_count(std::uint64_t fallback) {
  const char* env = std::getenv("HYMEM_FUZZ_SEEDS");
  if (env == nullptr) return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<std::uint64_t>(parsed) : fallback;
}

TEST(TenantFuzzLong, SweepRunsClean) {
  const std::uint64_t seeds = seed_count(32);
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 0x7e4a4d5600000000ull + i;
    try {
      const TenantFuzzOutcome out = run_tenant_fuzz_case(seed, 6000);
      EXPECT_GT(out.accesses, 0u) << out.describe;
    } catch (const std::logic_error& e) {
      FAIL() << "seed " << seed << ": " << e.what();
      break;  // one full report is enough to act on
    }
  }
}

}  // namespace
}  // namespace hymem::check
