#include "check/analytic_parity.hpp"

#include <gtest/gtest.h>

namespace hymem::check {
namespace {

// Pinned tolerances for the default parity grid (2 workloads x 8 seeds x 6
// cells). The values are the measured worst-case errors plus margin — see
// DESIGN.md §13 for the calibration table and where each error comes from.
// Probability metrics are absolute error, cost metrics relative error.
//
// hit_ratio / miss are near-exact (global-LRU assumption; ~6e-4 measured).
// The tier split carries the iid-gap approximation: fault events are
// dominated by cold pages, so the unconditional burst model overestimates
// PHitDRAM at high thresholds (0.29 measured worst).
constexpr double kTolHitRatio = 0.005;
constexpr double kTolMiss = 0.005;
constexpr double kTolHitDram = 0.35;
constexpr double kTolAmat = 0.45;
constexpr double kTolAppr = 0.45;
constexpr double kTolNvmWrites = 0.95;

// The ISSUE's speed floor for the prescreen to make sense; measured
// throughput is well above (thousands per second).
constexpr double kMinEvalsPerSecond = 1000.0;

// One full default-grid run shared by the assertions below (each run costs
// 96 simulations).
const ParityReport& default_report() {
  static const ParityReport report = run_analytic_parity(ParitySpec{});
  return report;
}

// A small spec for the mutation checks: one workload, two seeds, the
// default two-LRU cell. Each mutation run re-simulates these cells.
ParitySpec reduced_spec() {
  ParitySpec spec;
  spec.workloads = {"canneal"};
  spec.seeds = {1, 2};
  sim::ExperimentConfig cell;
  cell.policy = "two-lru";
  spec.cells = {cell};
  return spec;
}

TEST(AnalyticParity, DefaultGridWithinPinnedTolerances) {
  const ParityReport& report = default_report();
  ASSERT_EQ(report.cells.size(), 2u * 8u * 6u);
  EXPECT_LE(report.worst.hit_ratio, kTolHitRatio);
  EXPECT_LE(report.worst.miss, kTolMiss);
  EXPECT_LE(report.worst.hit_dram, kTolHitDram);
  EXPECT_LE(report.worst.amat, kTolAmat);
  EXPECT_LE(report.worst.appr, kTolAppr);
  EXPECT_LE(report.worst.nvm_writes, kTolNvmWrites);
}

TEST(AnalyticParity, SingleTierCellsAreExact) {
  // The degenerate configs exercise no approximation: plain LRU hit ratio
  // is the reuse-distance CDF, so every metric must agree to round-off.
  // This is the canary separating "model approximation error" from "profile
  // or plumbing bug" — a miscounted cold access shows up here first.
  int single_tier_cells = 0;
  for (const ParityCell& cell : default_report().cells) {
    if (cell.policy != "dram-only" && cell.policy != "nvm-only") continue;
    ++single_tier_cells;
    EXPECT_LE(cell.errors.hit_ratio, 1e-9) << cell.policy;
    EXPECT_LE(cell.errors.hit_dram, 1e-9) << cell.policy;
    EXPECT_LE(cell.errors.miss, 1e-9) << cell.policy;
    EXPECT_LE(cell.errors.amat, 1e-9) << cell.policy;
    EXPECT_LE(cell.errors.appr, 1e-9) << cell.policy;
    EXPECT_LE(cell.errors.nvm_writes, 1e-9) << cell.policy;
  }
  EXPECT_EQ(single_tier_cells, 2 * 8 * 2);
}

TEST(AnalyticParity, AnalyticThroughputClearsPrescreenFloor) {
  EXPECT_GE(default_report().analytic_evals_per_second, kMinEvalsPerSecond);
}

TEST(AnalyticParity, EveryPredictionIsConsistent) {
  for (const ParityCell& cell : default_report().cells) {
    EXPECT_TRUE(cell.predicted.probs.is_consistent())
        << cell.workload << " seed " << cell.seed << " " << cell.policy;
    EXPECT_TRUE(cell.simulated.is_consistent());
  }
}

// Mutation checks, mirroring check::DiffSpec::oracle_threshold_bias: bias
// one analytic term and the harness must blow the pinned tolerance —
// proving the parity gate can actually detect a wrong model, not just
// bless whatever the estimator emits.

TEST(AnalyticParity, ThresholdBiasMutationIsDetected) {
  ParitySpec spec = reduced_spec();
  spec.bias.threshold_bias = -16;  // clamp both thresholds to 0
  const ParityReport report = run_analytic_parity(spec);
  EXPECT_GT(report.worst.nvm_writes, kTolNvmWrites);
}

TEST(AnalyticParity, CapacityScaleMutationIsDetected) {
  ParitySpec spec = reduced_spec();
  spec.bias.dram_capacity_scale = 64.0;
  const ParityReport report = run_analytic_parity(spec);
  EXPECT_GT(report.worst.hit_dram, kTolHitDram);
}

}  // namespace
}  // namespace hymem::check
