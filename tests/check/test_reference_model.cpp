// Hand-computed Algorithm 1 scenarios against the reference oracle. These
// pin the *specification*: if the oracle drifts, the differential harness
// would dutifully verify the wrong behavior.
#include "check/reference_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hymem::check {
namespace {

core::MigrationConfig config(std::uint64_t read_thr, std::uint64_t write_thr,
                             double read_perc = 1.0, double write_perc = 1.0) {
  core::MigrationConfig c;
  c.read_threshold = read_thr;
  c.write_threshold = write_thr;
  c.read_perc = read_perc;
  c.write_perc = write_perc;
  return c;
}

constexpr std::uint64_t kPageFactor = 64;

TEST(ReferenceModel, FaultsFillDramInLruOrder) {
  ReferenceModel m(3, 4, config(1, 2), kPageFactor);
  for (PageId p : {0u, 1u, 2u}) {
    const Decision d = m.on_access(p, AccessType::kRead);
    EXPECT_EQ(d.outcome, Outcome::kFault);
    EXPECT_EQ(d.demoted, kInvalidPage);
    EXPECT_EQ(m.tier_of(p), Tier::kDram);
  }
  EXPECT_EQ(m.dram_mru_to_lru(), (std::vector<PageId>{2, 1, 0}));
  EXPECT_TRUE(m.nvm_mru_to_lru().empty());
  EXPECT_EQ(m.counts().page_faults, 3u);
  EXPECT_EQ(m.counts().fills_to_dram, 3u);
  EXPECT_EQ(m.counts().fills_to_nvm, 0u);
}

TEST(ReferenceModel, FullDramFaultDemotesLruVictimToNvmHead) {
  ReferenceModel m(2, 4, config(1, 2), kPageFactor);
  m.on_access(0, AccessType::kRead);
  m.on_access(1, AccessType::kRead);
  const Decision d = m.on_access(2, AccessType::kRead);
  EXPECT_EQ(d.outcome, Outcome::kFault);
  EXPECT_EQ(d.demoted, 0u);  // LRU victim
  EXPECT_EQ(d.evicted, kInvalidPage);
  EXPECT_EQ(m.tier_of(0), Tier::kNvm);
  EXPECT_EQ(m.nvm_mru_to_lru(), (std::vector<PageId>{0}));
  EXPECT_EQ(m.counts().migrations_to_nvm, 1u);
  EXPECT_EQ(m.counts().nvm_migration_cell_writes, kPageFactor);
}

TEST(ReferenceModel, ReadCounterCrossingThresholdPromotes) {
  // read_threshold = 2: promotion on the hit that makes the counter 3.
  ReferenceModel m(1, 4, config(2, 9), kPageFactor);
  m.on_access(0, AccessType::kRead);  // fills DRAM
  m.on_access(1, AccessType::kRead);  // demotes 0 to NVM
  EXPECT_EQ(m.tier_of(0), Tier::kNvm);
  EXPECT_EQ(m.on_access(0, AccessType::kRead).outcome, Outcome::kNvmHit);
  EXPECT_EQ(m.read_counter(0), 1u);
  EXPECT_EQ(m.on_access(0, AccessType::kRead).outcome, Outcome::kNvmHit);
  EXPECT_EQ(m.read_counter(0), 2u);
  const Decision d = m.on_access(0, AccessType::kRead);  // counter 3 > 2
  EXPECT_EQ(d.outcome, Outcome::kPromotion);
  EXPECT_EQ(d.demoted, 1u);  // swap: DRAM victim takes its place
  EXPECT_EQ(m.tier_of(0), Tier::kDram);
  EXPECT_EQ(m.tier_of(1), Tier::kNvm);
  EXPECT_EQ(m.counts().migrations_to_dram, 1u);
  EXPECT_EQ(m.counts().migrations_to_nvm, 2u);
  EXPECT_EQ(m.promotion_hits(0), 0u);  // open promotion, no DRAM hits yet
}

TEST(ReferenceModel, CounterResetsWhenPageFallsPastWindowBoundary) {
  // NVM capacity 4, read_perc 0.5 -> read window = top 2 positions.
  ReferenceModel m(1, 4, config(9, 9, 0.5, 0.5), kPageFactor);
  // Fill: 5 faults leave pages 0..3 cycling through; build NVM = {3,2,1,0}.
  for (PageId p : {0u, 1u, 2u, 3u, 4u}) m.on_access(p, AccessType::kRead);
  // NVM MRU->LRU is {3,2,1,0}: window = {3,2}.
  ASSERT_EQ(m.nvm_mru_to_lru(), (std::vector<PageId>{3, 2, 1, 0}));
  m.on_access(3, AccessType::kRead);  // in window: ctr 1, order unchanged
  EXPECT_EQ(m.read_counter(3), 1u);
  m.on_access(1, AccessType::kRead);  // outside: restarts at 1, moves to MRU
  EXPECT_EQ(m.read_counter(1), 1u);
  // {1,3,2,0}: page 2 fell out of the window, its counter must be gone.
  ASSERT_EQ(m.nvm_mru_to_lru(), (std::vector<PageId>{1, 3, 2, 0}));
  EXPECT_FALSE(m.in_read_window(2));
  EXPECT_EQ(m.read_counter(2), 0u);
  EXPECT_EQ(m.read_counter(3), 1u);  // still inside, kept
}

TEST(ReferenceModel, ZeroWidthWindowNeverCounts) {
  ReferenceModel m(1, 4, config(0, 0, 0.0, 0.0), kPageFactor);
  m.on_access(0, AccessType::kRead);
  m.on_access(1, AccessType::kRead);
  for (int i = 0; i < 10; ++i) {
    const Decision d = m.on_access(0, AccessType::kRead);
    EXPECT_EQ(d.outcome, Outcome::kNvmHit);  // threshold 0 but ctr stays 0
  }
  EXPECT_EQ(m.read_counter(0), 0u);
  EXPECT_EQ(m.promotions(), 0u);
}

TEST(ReferenceModel, WriteFaultBornDirtyCostsDirtyEviction) {
  // dram=1, nvm=1: the third fault evicts the write-faulted page 0.
  ReferenceModel m(1, 1, config(9, 9), kPageFactor);
  m.on_access(0, AccessType::kWrite);  // born dirty, no demand write billed
  EXPECT_EQ(m.counts().dram_write_hits, 0u);
  EXPECT_EQ(m.counts().nvm_demand_cell_writes, 0u);
  m.on_access(1, AccessType::kRead);  // 0 demoted to NVM
  const Decision d = m.on_access(2, AccessType::kRead);  // 0 evicted to disk
  EXPECT_EQ(d.evicted, 0u);
  EXPECT_TRUE(d.evicted_dirty);
  EXPECT_EQ(m.counts().dirty_evictions, 1u);
  EXPECT_EQ(m.tier_of(0), std::nullopt);
}

TEST(ReferenceModel, NvmWriteHitCountsOneDemandCellWrite) {
  ReferenceModel m(1, 2, config(9, 9), kPageFactor);
  m.on_access(0, AccessType::kRead);
  m.on_access(1, AccessType::kRead);
  m.on_access(0, AccessType::kWrite);  // NVM hit
  EXPECT_EQ(m.counts().nvm_write_hits, 1u);
  EXPECT_EQ(m.counts().nvm_demand_cell_writes, 1u);
}

TEST(ReferenceModel, TokenBucketThrottlesPromotions) {
  // 1 promotion per kacc: tokens accrue at 0.001/access from 0, so the
  // first threshold crossings are suppressed and counted as throttled.
  core::MigrationConfig cfg = config(0, 0);
  cfg.max_promotions_per_kacc = 1;
  ReferenceModel m(1, 2, cfg, kPageFactor);
  m.on_access(0, AccessType::kRead);
  m.on_access(1, AccessType::kRead);
  const Decision d = m.on_access(0, AccessType::kRead);  // ctr 1 > 0, no token
  EXPECT_EQ(d.outcome, Outcome::kNvmHit);
  EXPECT_TRUE(d.throttled);
  EXPECT_EQ(m.throttled_promotions(), 1u);
  EXPECT_EQ(m.promotions(), 0u);
}

TEST(ReferenceModel, LedgerIdentitiesHold) {
  ReferenceModel m(2, 3, config(1, 2, 0.5, 1.0), kPageFactor);
  // A busy little mixed run.
  const PageId pages[] = {0, 1, 2, 3, 0, 1, 4, 0, 2, 5, 0, 1, 2, 3, 4, 5, 0};
  std::uint64_t accesses = 0;
  for (PageId p : pages) {
    m.on_access(p, accesses % 3 == 0 ? AccessType::kWrite : AccessType::kRead);
    ++accesses;
  }
  const ReferenceCounts& c = m.counts();
  EXPECT_EQ(c.accesses, accesses);
  EXPECT_EQ(c.hits() + c.page_faults, c.accesses);
  EXPECT_EQ(c.fills_to_dram + c.fills_to_nvm, c.page_faults);
  EXPECT_EQ(c.fills_to_nvm, 0u);  // all faults fill DRAM
  EXPECT_EQ(c.nvm_demand_cell_writes, c.nvm_write_hits);
  EXPECT_EQ(c.nvm_fill_cell_writes, kPageFactor * c.fills_to_nvm);
  EXPECT_EQ(c.nvm_migration_cell_writes, kPageFactor * c.migrations_to_nvm);
  EXPECT_EQ(m.counts().migrations_to_dram, m.promotions());
  EXPECT_EQ(m.counts().migrations_to_nvm, m.demotions());
}

TEST(ReferenceModel, RejectsAdaptiveConfig) {
  core::MigrationConfig cfg = config(1, 2);
  cfg.adaptive = true;
  EXPECT_THROW(ReferenceModel(2, 2, cfg, kPageFactor), std::logic_error);
}

}  // namespace
}  // namespace hymem::check
