// The oracle recomputes Eqs. 1-3 in the paper's probability form; the
// production models use the algebraically identical counts form. These tests
// pin the agreement on a hand-built ledger and prove diff_metrics actually
// rejects perturbed inputs.
#include "check/oracle_metrics.hpp"

#include <gtest/gtest.h>

#include "model/endurance_model.hpp"
#include "model/events.hpp"
#include "model/perf_model.hpp"
#include "model/power_model.hpp"

namespace hymem::check {
namespace {

constexpr std::uint64_t kPageFactor = 64;
constexpr double kDurationS = 0.01;

model::EventCounts sample_events() {
  model::EventCounts e;
  e.accesses = 100;
  e.dram_read_hits = 30;
  e.dram_write_hits = 20;
  e.nvm_read_hits = 25;
  e.nvm_write_hits = 10;
  e.page_faults = 15;
  e.fills_to_dram = 15;
  e.fills_to_nvm = 0;
  e.migrations_to_dram = 4;
  e.migrations_to_nvm = 6;
  e.dirty_evictions = 2;
  e.page_factor = kPageFactor;
  return e;
}

ReferenceCounts mirror(const model::EventCounts& e) {
  ReferenceCounts c;
  c.accesses = e.accesses;
  c.dram_read_hits = e.dram_read_hits;
  c.dram_write_hits = e.dram_write_hits;
  c.nvm_read_hits = e.nvm_read_hits;
  c.nvm_write_hits = e.nvm_write_hits;
  c.page_faults = e.page_faults;
  c.fills_to_dram = e.fills_to_dram;
  c.fills_to_nvm = e.fills_to_nvm;
  c.migrations_to_dram = e.migrations_to_dram;
  c.migrations_to_nvm = e.migrations_to_nvm;
  c.dirty_evictions = e.dirty_evictions;
  c.nvm_demand_cell_writes = e.nvm_write_hits;
  c.nvm_fill_cell_writes = e.fills_to_nvm * kPageFactor;
  c.nvm_migration_cell_writes = e.migrations_to_nvm * kPageFactor;
  return c;
}

model::ModelParams params() {
  model::ModelParams p;
  p.page_factor = kPageFactor;
  p.dram_bytes = 64ull * 4096;
  p.nvm_bytes = 192ull * 4096;
  return p;
}

TEST(OracleMetrics, ProbabilityFormMatchesCountsForm) {
  const model::EventCounts e = sample_events();
  const model::ModelParams p = params();
  const OracleMetrics m =
      recompute_metrics(mirror(e), p, kPageFactor, kDurationS);
  const auto d = diff_metrics(m, model::amat(e, p),
                              model::appr(e, p, kDurationS),
                              model::nvm_writes(e));
  EXPECT_EQ(d, std::nullopt) << *d;
}

TEST(OracleMetrics, AgreesOnDegenerateAllFaultRun) {
  model::EventCounts e;
  e.accesses = 7;
  e.page_faults = 7;
  e.fills_to_dram = 7;
  e.page_factor = kPageFactor;
  const model::ModelParams p = params();
  const OracleMetrics m =
      recompute_metrics(mirror(e), p, kPageFactor, kDurationS);
  const auto d = diff_metrics(m, model::amat(e, p),
                              model::appr(e, p, kDurationS),
                              model::nvm_writes(e));
  EXPECT_EQ(d, std::nullopt) << *d;
}

TEST(OracleMetrics, DetectsPerturbedCounts) {
  const model::EventCounts e = sample_events();
  const model::ModelParams p = params();
  ReferenceCounts skewed = mirror(e);
  ++skewed.nvm_read_hits;  // the oracle now derives different probabilities
  const OracleMetrics m =
      recompute_metrics(skewed, p, kPageFactor, kDurationS);
  const auto d = diff_metrics(m, model::amat(e, p),
                              model::appr(e, p, kDurationS),
                              model::nvm_writes(e));
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->find("amat_hit_ns"), std::string::npos) << *d;
}

TEST(OracleMetrics, DetectsEnduranceDrift) {
  const model::EventCounts e = sample_events();
  const model::ModelParams p = params();
  ReferenceCounts skewed = mirror(e);
  ++skewed.nvm_demand_cell_writes;
  const OracleMetrics m =
      recompute_metrics(skewed, p, kPageFactor, kDurationS);
  // The demand-write count feeds only the endurance comparison.
  const auto d = diff_metrics(m, model::amat(e, p),
                              model::appr(e, p, kDurationS),
                              model::nvm_writes(e));
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->find("nvm_demand_writes"), std::string::npos) << *d;
}

}  // namespace
}  // namespace hymem::check
