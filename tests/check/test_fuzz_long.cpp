// The long randomized differential sweep (nightly CI; ctest -L fuzz).
// Deliberately a separate binary so `ctest -L tier1` never pays for it.
// HYMEM_FUZZ_SEEDS scales the sweep (default 32 seeds x 10k accesses).
#include <gtest/gtest.h>

#include <cstdlib>

#include "check/differential.hpp"

namespace hymem::check {
namespace {

std::uint64_t seed_count(std::uint64_t fallback) {
  const char* env = std::getenv("HYMEM_FUZZ_SEEDS");
  if (env == nullptr) return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<std::uint64_t>(parsed) : fallback;
}

TEST(FuzzLong, SweepRunsClean) {
  const std::uint64_t seeds = seed_count(32);
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 0xdeadbeef00000000ull + i;
    const FuzzReport report = run_fuzz_case(seed, /*accesses=*/10000);
    EXPECT_TRUE(report.ok()) << report.summary;
    if (!report.ok()) break;  // one full report is enough to act on
  }
}

}  // namespace
}  // namespace hymem::check
