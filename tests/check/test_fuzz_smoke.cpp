// Quick randomized smoke for the main CI job (~seconds): a few fuzz seeds
// beyond the fixed acceptance set in test_differential.cpp, scalable via
// HYMEM_FUZZ_SEEDS for local soak runs. The nightly job runs the larger
// sweep in test_fuzz_long.cpp.
#include <gtest/gtest.h>

#include <cstdlib>

#include "check/differential.hpp"

namespace hymem::check {
namespace {

std::uint64_t seed_count(std::uint64_t fallback) {
  const char* env = std::getenv("HYMEM_FUZZ_SEEDS");
  if (env == nullptr) return fallback;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<std::uint64_t>(parsed) : fallback;
}

TEST(FuzzSmoke, FreshSeedsRunClean) {
  const std::uint64_t seeds = seed_count(4);
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 0x9e3779b97f4a7c15ull + i;
    const FuzzReport report = run_fuzz_case(seed, /*accesses=*/2500);
    EXPECT_TRUE(report.ok()) << report.summary;
  }
}

TEST(FuzzSmoke, FuzzCasesAreDeterministic) {
  const FuzzCase a = make_fuzz_case(77, 500);
  const FuzzCase b = make_fuzz_case(77, 500);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.describe(), b.describe());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i], b.trace[i]) << "at access " << i;
  }
  const FuzzCase c = make_fuzz_case(78, 500);
  EXPECT_NE(a.describe(), c.describe());
}

}  // namespace
}  // namespace hymem::check
