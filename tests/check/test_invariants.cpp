// The invariant checker must pass on healthy runs of any shape and throw on
// genuinely corrupted state. We corrupt by driving the VMM behind the
// policy's back — the supported mutation surface — rather than by friending
// into private state.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include "check/fuzzer.hpp"
#include "os/vmm.hpp"
#include "trace/access.hpp"
#include "util/units.hpp"

namespace hymem::check {
namespace {

os::VmmConfig hybrid_config(std::uint64_t dram, std::uint64_t nvm) {
  os::VmmConfig c;
  c.dram_frames = dram;
  c.nvm_frames = nvm;
  return c;
}

core::MigrationConfig scheme_config() {
  core::MigrationConfig c;
  c.read_threshold = 1;
  c.write_threshold = 2;
  c.read_perc = 0.5;
  c.write_perc = 0.75;
  return c;
}

TEST(Invariants, HoldAfterEveryAccessOfAFuzzedRun) {
  const FuzzCase fc = make_fuzz_case(/*seed=*/42, /*accesses=*/3000);
  os::Vmm vmm(hybrid_config(fc.dram_frames, fc.nvm_frames));
  core::TwoLruMigrationPolicy policy(vmm, fc.migration);
  for (const trace::MemAccess& a : fc.trace) {
    policy.on_access(trace::page_of(a.addr, kDefaultPageSize), a.type);
    EXPECT_NO_THROW(check_invariants(policy));
  }
}

TEST(Invariants, HookRunsAfterEveryAccess) {
  os::Vmm vmm(hybrid_config(2, 4));
  core::TwoLruMigrationPolicy policy(vmm, scheme_config());
  install_invariant_hook(policy);
  for (PageId p = 0; p < 32; ++p) {
    EXPECT_NO_THROW(policy.on_access(p % 9, p % 3 == 0 ? AccessType::kWrite
                                                       : AccessType::kRead));
  }
}

TEST(Invariants, DetectEvictionBehindThePolicysBack) {
  os::Vmm vmm(hybrid_config(2, 4));
  core::TwoLruMigrationPolicy policy(vmm, scheme_config());
  policy.on_access(0, AccessType::kRead);
  policy.on_access(1, AccessType::kRead);
  ASSERT_NO_THROW(check_invariants(policy));
  // Page 0 is still in the policy's DRAM queue but no longer resident.
  policy.vmm().evict(0);
  EXPECT_THROW(check_invariants(policy), std::logic_error);
}

TEST(Invariants, DetectMigrationBehindThePolicysBack) {
  os::Vmm vmm(hybrid_config(2, 4));
  core::TwoLruMigrationPolicy policy(vmm, scheme_config());
  policy.on_access(0, AccessType::kRead);
  policy.on_access(1, AccessType::kRead);
  // Page 0 now sits in NVM per the VMM but in the DRAM queue per the policy.
  policy.vmm().migrate(0, Tier::kNvm);
  EXPECT_THROW(check_invariants(policy), std::logic_error);
}

TEST(Invariants, VmmSelfAuditPassesThroughAWholeLifecycle) {
  os::Vmm vmm(hybrid_config(1, 1));
  EXPECT_NO_THROW(vmm.check_consistency());
  vmm.fault_in(7, Tier::kDram);
  vmm.access(7, AccessType::kWrite);
  EXPECT_NO_THROW(vmm.check_consistency());
  vmm.migrate(7, Tier::kNvm);
  EXPECT_NO_THROW(vmm.check_consistency());
  vmm.fault_in(8, Tier::kDram);
  vmm.swap(7, 8);
  EXPECT_NO_THROW(vmm.check_consistency());
  vmm.evict(7);
  vmm.evict(8);
  EXPECT_NO_THROW(vmm.check_consistency());
}

}  // namespace
}  // namespace hymem::check
