#include "mem/endurance.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hymem::mem {
namespace {

TEST(Endurance, RecordsPerSource) {
  EnduranceTracker t(8, 1e8);
  t.record(0, NvmWriteSource::kDemandWrite);
  t.record(1, NvmWriteSource::kPageFault, 64);
  t.record(1, NvmWriteSource::kMigration, 64);
  EXPECT_EQ(t.total_writes(), 129u);
  EXPECT_EQ(t.writes_from(NvmWriteSource::kDemandWrite), 1u);
  EXPECT_EQ(t.writes_from(NvmWriteSource::kPageFault), 64u);
  EXPECT_EQ(t.writes_from(NvmWriteSource::kMigration), 64u);
  EXPECT_EQ(t.frame_wear(0), 1u);
  EXPECT_EQ(t.frame_wear(1), 128u);
}

TEST(Endurance, WearStatistics) {
  EnduranceTracker t(4, 0);
  t.record(0, NvmWriteSource::kDemandWrite, 10);
  t.record(1, NvmWriteSource::kDemandWrite, 2);
  EXPECT_EQ(t.max_wear(), 10u);
  EXPECT_DOUBLE_EQ(t.mean_wear(), 3.0);
  EXPECT_NEAR(t.wear_imbalance(), 10.0 / 3.0, 1e-12);
}

TEST(Endurance, LifetimeConsumed) {
  EnduranceTracker t(2, 100.0);
  t.record(0, NvmWriteSource::kDemandWrite, 25);
  EXPECT_DOUBLE_EQ(t.lifetime_consumed(), 0.25);
}

TEST(Endurance, UnlimitedEnduranceNeverConsumed) {
  EnduranceTracker t(2, 0.0);
  t.record(0, NvmWriteSource::kDemandWrite, 1000);
  EXPECT_DOUBLE_EQ(t.lifetime_consumed(), 0.0);
}

TEST(Endurance, OutOfRangeFrameRejected) {
  EnduranceTracker t(2, 0.0);
  EXPECT_THROW(t.record(2, NvmWriteSource::kDemandWrite), std::logic_error);
}

TEST(StartGap, MappingIsInjective) {
  StartGapRemapper r(16, 4);
  for (int step = 0; step < 200; ++step) {
    std::set<FrameId> used;
    for (FrameId l = 0; l < 16; ++l) {
      const FrameId p = r.physical(l);
      EXPECT_LT(p, 17u);
      EXPECT_TRUE(used.insert(p).second) << "collision at step " << step;
    }
    r.on_write();
  }
}

TEST(StartGap, RotatesEveryInterval) {
  StartGapRemapper r(8, 4);
  EXPECT_EQ(r.rotations(), 0u);
  for (int i = 0; i < 3; ++i) r.on_write();
  EXPECT_EQ(r.rotations(), 0u);
  r.on_write();
  EXPECT_EQ(r.rotations(), 1u);
  for (int i = 0; i < 4; ++i) r.on_write();
  EXPECT_EQ(r.rotations(), 2u);
}

TEST(StartGap, EventuallyEveryPhysicalSlotBacksFrameZero) {
  StartGapRemapper r(4, 1);
  std::set<FrameId> slots;
  for (int i = 0; i < 200; ++i) {
    slots.insert(r.physical(0));
    r.on_write();
  }
  EXPECT_EQ(slots.size(), 5u) << "gap rotation must sweep all slots";
}

TEST(StartGap, SpreadsWearOfAHotFrame) {
  // Hammering one logical frame, the physical wear must spread over many
  // slots when the gap rotates frequently.
  StartGapRemapper r(8, 2);
  std::vector<std::uint64_t> wear(9, 0);
  for (int i = 0; i < 1000; ++i) {
    ++wear[r.physical(3)];
    r.on_write();
  }
  std::uint64_t max_wear = 0;
  for (auto w : wear) max_wear = std::max(max_wear, w);
  EXPECT_LT(max_wear, 1000u / 2) << "one slot absorbed too much wear";
}

TEST(StartGap, RejectsBadArguments) {
  EXPECT_THROW(StartGapRemapper(0, 1), std::logic_error);
  EXPECT_THROW(StartGapRemapper(4, 0), std::logic_error);
  StartGapRemapper r(4, 1);
  EXPECT_THROW(r.physical(4), std::logic_error);
}

}  // namespace
}  // namespace hymem::mem
