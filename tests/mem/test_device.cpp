#include "mem/device.hpp"

#include <gtest/gtest.h>

namespace hymem::mem {
namespace {

MemoryDevice make_nvm(std::uint64_t frames = 16) {
  return MemoryDevice(Tier::kNvm, pcm_table4(), frames, 4096);
}

TEST(Device, BasicProperties) {
  const auto d = make_nvm(16);
  EXPECT_EQ(d.tier(), Tier::kNvm);
  EXPECT_EQ(d.frames(), 16u);
  EXPECT_EQ(d.page_size(), 4096u);
  EXPECT_EQ(d.capacity_bytes(), 16u * 4096);
}

TEST(Device, DemandAccessLatencyAndCounters) {
  auto d = make_nvm();
  EXPECT_DOUBLE_EQ(d.record_demand(AccessType::kRead), 100);
  EXPECT_DOUBLE_EQ(d.record_demand(AccessType::kWrite), 350);
  EXPECT_EQ(d.counters().demand_reads, 1u);
  EXPECT_EQ(d.counters().demand_writes, 1u);
  EXPECT_EQ(d.counters().total(), 2u);
}

TEST(Device, TransferLatencyScalesWithCount) {
  auto d = make_nvm();
  EXPECT_DOUBLE_EQ(d.record_transfer(AccessType::kWrite, 64), 64 * 350.0);
  EXPECT_EQ(d.counters().transfer_writes, 64u);
  EXPECT_EQ(d.counters().demand_writes, 0u);
}

TEST(Device, DynamicEnergyAccumulates) {
  auto d = make_nvm();
  d.record_demand(AccessType::kRead);                // 6.4 nJ
  d.record_demand(AccessType::kWrite);               // 32 nJ
  d.record_transfer(AccessType::kRead, 10);          // 64 nJ
  EXPECT_DOUBLE_EQ(d.dynamic_energy_nj(), 6.4 + 32.0 + 64.0);
}

TEST(Device, StaticPowerFromCapacity) {
  const MemoryDevice d(Tier::kDram, dram_table4(), 262144, 4096);  // 1 GiB
  EXPECT_DOUBLE_EQ(d.static_power(), 1.0);
}

TEST(Device, ZeroFramesAllowedForSingleTierBaselines) {
  const MemoryDevice d(Tier::kNvm, pcm_table4(), 0, 4096);
  EXPECT_EQ(d.capacity_bytes(), 0u);
  EXPECT_DOUBLE_EQ(d.static_power(), 0.0);
}

}  // namespace
}  // namespace hymem::mem
