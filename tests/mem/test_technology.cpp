#include "mem/technology.hpp"

#include <gtest/gtest.h>

namespace hymem::mem {
namespace {

TEST(Technology, TableIvDramRow) {
  const auto& d = dram_table4();
  EXPECT_EQ(d.name, "DRAM");
  EXPECT_DOUBLE_EQ(d.read_latency_ns, 50);
  EXPECT_DOUBLE_EQ(d.write_latency_ns, 50);
  EXPECT_DOUBLE_EQ(d.read_energy_nj, 3.2);
  EXPECT_DOUBLE_EQ(d.write_energy_nj, 3.2);
  EXPECT_DOUBLE_EQ(d.static_power_j_per_gb_s, 1.0);
}

TEST(Technology, TableIvPcmRow) {
  const auto& n = pcm_table4();
  EXPECT_DOUBLE_EQ(n.read_latency_ns, 100);
  EXPECT_DOUBLE_EQ(n.write_latency_ns, 350);
  EXPECT_DOUBLE_EQ(n.read_energy_nj, 6.4);
  EXPECT_DOUBLE_EQ(n.write_energy_nj, 32.0);
  EXPECT_DOUBLE_EQ(n.static_power_j_per_gb_s, 0.1);
  EXPECT_GT(n.endurance_cycles, 0.0);
}

TEST(Technology, AsymmetryRelationsFromThePaper) {
  const auto& d = dram_table4();
  const auto& n = pcm_table4();
  // NVM writes are slower and costlier than reads; both worse than DRAM.
  EXPECT_GT(n.write_latency_ns, n.read_latency_ns);
  EXPECT_GT(n.write_energy_nj, n.read_energy_nj);
  EXPECT_GT(n.read_latency_ns, d.read_latency_ns);
  // NVM static power is 10x lower: the whole point of the hybrid.
  EXPECT_LT(n.static_power_j_per_gb_s, d.static_power_j_per_gb_s / 5);
}

TEST(Technology, StaticPowerScalesWithCapacity) {
  const auto& d = dram_table4();
  EXPECT_DOUBLE_EQ(d.static_power(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(d.static_power(kGiB / 2), 0.5);
  EXPECT_DOUBLE_EQ(pcm_table4().static_power(kGiB), 0.1);
}

TEST(Technology, LatencyEnergyAccessors) {
  const auto& n = pcm_table4();
  EXPECT_DOUBLE_EQ(n.latency(false), 100);
  EXPECT_DOUBLE_EQ(n.latency(true), 350);
  EXPECT_DOUBLE_EQ(n.energy(false), 6.4);
  EXPECT_DOUBLE_EQ(n.energy(true), 32.0);
}

TEST(Technology, ExtensionPresetsSane) {
  for (const auto* t : {&stt_ram(), &rram()}) {
    EXPECT_GT(t->read_latency_ns, 0);
    EXPECT_GE(t->write_latency_ns, t->read_latency_ns);
    EXPECT_GT(t->endurance_cycles, pcm_table4().endurance_cycles);
  }
}

TEST(Technology, DiskDefaultsTo5ms) {
  DiskModel disk;
  EXPECT_DOUBLE_EQ(disk.access_latency_ns, 5e6);
}

}  // namespace
}  // namespace hymem::mem
