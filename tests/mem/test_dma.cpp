#include "mem/dma.hpp"

#include <gtest/gtest.h>

namespace hymem::mem {
namespace {

TEST(Dma, PageFactorComputation) {
  EXPECT_EQ(page_factor(4096, 64), 64u);
  EXPECT_EQ(page_factor(8192, 64), 128u);
  EXPECT_EQ(page_factor(4096, 4096), 1u);
}

TEST(Dma, MigrationChargesBothDevices) {
  MemoryDevice dram(Tier::kDram, dram_table4(), 4, 4096);
  MemoryDevice nvm(Tier::kNvm, pcm_table4(), 4, 4096);
  DmaEngine dma(4096, 64);
  // NVM -> DRAM: 64 NVM reads + 64 DRAM writes.
  const Nanoseconds lat = dma.migrate(nvm, dram);
  EXPECT_DOUBLE_EQ(lat, 64 * 100.0 + 64 * 50.0);
  EXPECT_EQ(nvm.counters().transfer_reads, 64u);
  EXPECT_EQ(dram.counters().transfer_writes, 64u);
  EXPECT_EQ(dma.counters().migrations_nvm_to_dram, 1u);
  EXPECT_EQ(dma.counters().migrations_dram_to_nvm, 0u);
}

TEST(Dma, ReverseMigrationCountedSeparately) {
  MemoryDevice dram(Tier::kDram, dram_table4(), 4, 4096);
  MemoryDevice nvm(Tier::kNvm, pcm_table4(), 4, 4096);
  DmaEngine dma(4096, 64);
  const Nanoseconds lat = dma.migrate(dram, nvm);
  EXPECT_DOUBLE_EQ(lat, 64 * 50.0 + 64 * 350.0);
  EXPECT_EQ(dma.counters().migrations_dram_to_nvm, 1u);
  EXPECT_EQ(dma.counters().migrations(), 1u);
}

TEST(Dma, FillFromDiskChargesDestinationWrites) {
  MemoryDevice nvm(Tier::kNvm, pcm_table4(), 4, 4096);
  DmaEngine dma(4096, 64);
  dma.fill_from_disk(nvm);
  EXPECT_EQ(nvm.counters().transfer_writes, 64u);
  EXPECT_EQ(dma.counters().disk_fills_to_nvm, 1u);
  EXPECT_EQ(dma.counters().disk_fills_to_dram, 0u);
}

TEST(Dma, SameTierMigrationRejected) {
  MemoryDevice a(Tier::kDram, dram_table4(), 4, 4096);
  MemoryDevice b(Tier::kDram, dram_table4(), 4, 4096);
  DmaEngine dma(4096, 64);
  EXPECT_THROW(dma.migrate(a, b), std::logic_error);
}

TEST(Dma, BadGranularityRejected) {
  EXPECT_THROW(DmaEngine(4096, 0), std::logic_error);
  EXPECT_THROW(DmaEngine(4096, 100), std::logic_error);  // not a divisor
}


TEST(Dma, IntegratedModeOverlapsStreams) {
  MemoryDevice dram(Tier::kDram, dram_table4(), 4, 4096);
  MemoryDevice nvm(Tier::kNvm, pcm_table4(), 4, 4096);
  DmaEngine dma(4096, 64, TransferMode::kIntegrated);
  // NVM -> DRAM: max(64*100, 64*50) = 6400 instead of 9600.
  EXPECT_DOUBLE_EQ(dma.migrate(nvm, dram), 64 * 100.0);
  // DRAM -> NVM: max(64*50, 64*350) = 22400 instead of 25600.
  EXPECT_DOUBLE_EQ(dma.migrate(dram, nvm), 64 * 350.0);
  // Energy accounting is unchanged: the same device accesses happen.
  EXPECT_EQ(nvm.counters().transfer_reads, 64u);
  EXPECT_EQ(nvm.counters().transfer_writes, 64u);
}

TEST(Dma, IntegratedNeverSlowerThanDma) {
  MemoryDevice dram1(Tier::kDram, dram_table4(), 4, 4096);
  MemoryDevice nvm1(Tier::kNvm, pcm_table4(), 4, 4096);
  MemoryDevice dram2(Tier::kDram, dram_table4(), 4, 4096);
  MemoryDevice nvm2(Tier::kNvm, pcm_table4(), 4, 4096);
  DmaEngine dma(4096, 64, TransferMode::kDma);
  DmaEngine integrated(4096, 64, TransferMode::kIntegrated);
  EXPECT_LT(integrated.migrate(nvm2, dram2), dma.migrate(nvm1, dram1));
}

TEST(Dma, ResetCountersClears) {
  MemoryDevice dram(Tier::kDram, dram_table4(), 4, 4096);
  MemoryDevice nvm(Tier::kNvm, pcm_table4(), 4, 4096);
  DmaEngine dma(4096, 64);
  dma.migrate(nvm, dram);
  dma.fill_from_disk(dram);
  dma.reset_counters();
  EXPECT_EQ(dma.counters().migrations(), 0u);
  EXPECT_EQ(dma.counters().disk_fills_to_dram, 0u);
}

}  // namespace
}  // namespace hymem::mem
