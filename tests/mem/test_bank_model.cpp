#include "mem/bank_model.hpp"

#include <gtest/gtest.h>

namespace hymem::mem {
namespace {

BankModelConfig tiny_config() {
  BankModelConfig c;
  c.banks = 2;
  c.row_bytes = 1024;
  c.row_hit_ns = 10;
  c.row_miss_penalty_ns = 30;
  c.write_recovery_ns = 5;
  return c;
}

TEST(BankModel, FirstAccessMissesThenHits) {
  BankModel m(tiny_config());
  EXPECT_DOUBLE_EQ(m.access(0, AccessType::kRead), 40);   // cold row
  EXPECT_DOUBLE_EQ(m.access(64, AccessType::kRead), 10);  // same row
  EXPECT_EQ(m.stats().row_hits, 1u);
  EXPECT_EQ(m.stats().row_misses, 1u);
}

TEST(BankModel, DifferentRowSameBankConflicts) {
  BankModel m(tiny_config());
  // banks=2, row 1024B: addr 0 -> bank 0 row 0; addr 2048 -> bank 0 row 1.
  m.access(0, AccessType::kRead);
  EXPECT_DOUBLE_EQ(m.access(2048, AccessType::kRead), 40);
  // Going back also conflicts (row buffer now holds row 1).
  EXPECT_DOUBLE_EQ(m.access(0, AccessType::kRead), 40);
}

TEST(BankModel, DifferentBanksDoNotConflict) {
  BankModel m(tiny_config());
  m.access(0, AccessType::kRead);     // bank 0
  m.access(1024, AccessType::kRead);  // bank 1
  EXPECT_DOUBLE_EQ(m.access(0, AccessType::kRead), 10);
  EXPECT_DOUBLE_EQ(m.access(1024, AccessType::kRead), 10);
}

TEST(BankModel, WriteRecoveryAdded) {
  BankModel m(tiny_config());
  m.access(0, AccessType::kRead);
  EXPECT_DOUBLE_EQ(m.access(0, AccessType::kWrite), 15);  // hit + recovery
}

TEST(BankModel, StatsAccumulate) {
  BankModel m(tiny_config());
  m.access(0, AccessType::kRead);
  m.access(0, AccessType::kRead);
  m.access(0, AccessType::kRead);
  EXPECT_EQ(m.stats().accesses, 3u);
  EXPECT_NEAR(m.stats().row_hit_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.stats().average_latency_ns(), (40 + 10 + 10) / 3.0);
}

TEST(BankModel, SequentialStreamMostlyHits) {
  BankModel m(tiny_config());
  for (Addr a = 0; a < 16 * 1024; a += 64) m.access(a, AccessType::kRead);
  EXPECT_GT(m.stats().row_hit_ratio(), 0.9);
}

TEST(BankModel, FromTechnologyReproducesFlatLatency) {
  const double p = 0.6;  // expected row-hit ratio
  const auto config = BankModel::from_technology(dram_table4(), p);
  const double expected_avg =
      config.row_hit_ns + (1.0 - p) * config.row_miss_penalty_ns;
  EXPECT_NEAR(expected_avg, dram_table4().read_latency_ns, 1e-9);
}

TEST(BankModel, InvalidConfigRejected) {
  BankModelConfig c = tiny_config();
  c.banks = 0;
  EXPECT_THROW(BankModel{c}, std::logic_error);
}

}  // namespace
}  // namespace hymem::mem
