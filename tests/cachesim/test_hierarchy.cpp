#include "cachesim/hierarchy.hpp"

#include <gtest/gtest.h>

#include "synth/cpu_stream.hpp"

namespace hymem::cachesim {
namespace {

HierarchyConfig tiny_config() {
  HierarchyConfig c;
  c.cores = 2;
  c.l1d = {.size_bytes = 512, .associativity = 2, .line_size = 64};
  c.llc = {.size_bytes = 2048, .associativity = 4, .line_size = 64};
  return c;
}

TEST(Hierarchy, ColdReadMissGoesToMemory) {
  Hierarchy h(tiny_config());
  h.access({0x1000, AccessType::kRead, 0});
  const auto& s = h.stats();
  EXPECT_EQ(s.accesses, 1u);
  EXPECT_EQ(s.l1_misses, 1u);
  EXPECT_EQ(s.llc_misses, 1u);
  EXPECT_EQ(s.memory_reads, 1u);
  EXPECT_EQ(s.memory_writes, 0u);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  Hierarchy h(tiny_config());
  h.access({0x1000, AccessType::kRead, 0});
  h.access({0x1010, AccessType::kRead, 0});  // same line
  EXPECT_EQ(h.stats().l1_hits, 1u);
  EXPECT_EQ(h.stats().memory_reads, 1u);
}

TEST(Hierarchy, WriteMakesLineModified) {
  Hierarchy h(tiny_config());
  h.access({0x1000, AccessType::kWrite, 0});
  // A peer read must see a dirty intervention.
  h.access({0x1000, AccessType::kRead, 1});
  EXPECT_EQ(h.stats().interventions, 1u);
}

TEST(Hierarchy, PeerWriteInvalidatesSharers) {
  Hierarchy h(tiny_config());
  h.access({0x1000, AccessType::kRead, 0});
  h.access({0x1000, AccessType::kRead, 1});
  h.access({0x1000, AccessType::kWrite, 0});  // upgrade: invalidate core 1
  EXPECT_GE(h.stats().invalidations, 1u);
  // Core 1 must now miss in L1.
  const auto before = h.stats().l1_misses;
  h.access({0x1000, AccessType::kRead, 1});
  EXPECT_EQ(h.stats().l1_misses, before + 1);
}

TEST(Hierarchy, ReadFillIsExclusiveThenSilentUpgrade) {
  Hierarchy h(tiny_config());
  h.access({0x1000, AccessType::kRead, 0});
  const auto invalidations_before = h.stats().invalidations;
  h.access({0x1000, AccessType::kWrite, 0});  // E -> M needs no bus work
  EXPECT_EQ(h.stats().invalidations, invalidations_before);
}

TEST(Hierarchy, DirtyLlcEvictionWritesToMemory) {
  auto cfg = tiny_config();
  cfg.cores = 1;
  Hierarchy h(cfg);
  // Write a line, then stream enough distinct lines through one LLC set to
  // evict it. LLC: 8 sets; same set every 8 lines (512B stride).
  h.access({0, AccessType::kWrite, 0});
  for (Addr i = 1; i <= 4; ++i) {
    h.access({i * 512, AccessType::kRead, 0});
  }
  EXPECT_GE(h.stats().llc_writebacks, 1u);
  EXPECT_GE(h.stats().memory_writes, 1u);
}

TEST(Hierarchy, InclusionInvalidatesL1OnLlcEviction) {
  auto cfg = tiny_config();
  cfg.cores = 1;
  Hierarchy h(cfg);
  h.access({0, AccessType::kRead, 0});
  for (Addr i = 1; i <= 4; ++i) h.access({i * 512, AccessType::kRead, 0});
  // Line 0 must have left L1 along with the LLC: re-access misses.
  const auto misses_before = h.stats().l1_misses;
  h.access({0, AccessType::kRead, 0});
  EXPECT_EQ(h.stats().l1_misses, misses_before + 1);
}

TEST(Hierarchy, AccountingIdentities) {
  Hierarchy h(HierarchyConfig{});  // Table II geometry
  synth::CpuStreamOptions o;
  o.cores = 4;
  o.accesses_per_core = 5000;
  o.private_bytes = 256 * 1024;
  o.shared_bytes = 64 * 1024;
  o.seed = 3;
  const auto trace = synth::generate_cpu_stream(o);
  h.run(trace);
  const auto& s = h.stats();
  EXPECT_EQ(s.accesses, trace.size());
  EXPECT_EQ(s.l1_hits + s.l1_misses, s.accesses);
  EXPECT_EQ(s.llc_hits + s.llc_misses, s.l1_misses);
  EXPECT_EQ(s.memory_reads, s.llc_misses);
  EXPECT_GT(s.l1_hit_ratio(), 0.0);
  EXPECT_LE(s.memory_filter_ratio(), 1.0);
}

TEST(Hierarchy, FilterProducesMemoryTrace) {
  synth::CpuStreamOptions o;
  o.cores = 2;
  o.accesses_per_core = 3000;
  o.private_bytes = 128 * 1024;
  o.shared_bytes = 0;
  o.seed = 4;
  const auto cpu = synth::generate_cpu_stream(o);
  HierarchyStats stats;
  const auto mem = Hierarchy::filter(cpu, HierarchyConfig{}, &stats);
  EXPECT_EQ(mem.size(), stats.memory_reads + stats.memory_writes);
  EXPECT_LT(mem.size(), cpu.size()) << "caches must filter traffic";
  for (const auto& a : mem) EXPECT_EQ(a.addr % 64, 0u) << "line-granular";
}

TEST(Hierarchy, FilteringImprovesWithLocality) {
  synth::CpuStreamOptions hot;
  hot.cores = 1;
  hot.accesses_per_core = 5000;
  hot.private_bytes = 4 * 1024;  // fits in LLC
  hot.shared_bytes = 0;
  synth::CpuStreamOptions cold = hot;
  cold.private_bytes = 1u << 22;  // far beyond LLC
  cold.run_continue = 0.0;
  cold.jump_zipf_alpha = 0.0;
  HierarchyStats hs, cs;
  Hierarchy::filter(synth::generate_cpu_stream(hot), tiny_config(), &hs);
  Hierarchy::filter(synth::generate_cpu_stream(cold), tiny_config(), &cs);
  EXPECT_LT(hs.memory_filter_ratio(), cs.memory_filter_ratio());
}

TEST(Hierarchy, RejectsMismatchedLineSizes) {
  auto cfg = tiny_config();
  cfg.llc.line_size = 128;
  EXPECT_THROW(Hierarchy h(cfg), std::logic_error);
}

TEST(Hierarchy, RejectsOutOfRangeCore) {
  Hierarchy h(tiny_config());
  EXPECT_THROW(h.access({0, AccessType::kRead, 7}), std::logic_error);
}

}  // namespace
}  // namespace hymem::cachesim
