#include "cachesim/cache.hpp"

#include <gtest/gtest.h>

namespace hymem::cachesim {
namespace {

CacheGeometry tiny_geometry() {
  // 4 sets x 2 ways x 64B lines = 512B.
  return {.size_bytes = 512, .associativity = 2, .line_size = 64};
}

TEST(CacheGeometry, DerivedQuantities) {
  const auto g = tiny_geometry();
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.lines(), 8u);
  EXPECT_EQ(g.sets(), 4u);
}

TEST(CacheGeometry, Table2Presets) {
  EXPECT_TRUE(table2_l1().valid());
  EXPECT_TRUE(table2_llc().valid());
  EXPECT_EQ(table2_l1().size_bytes, 32u * 1024);
  EXPECT_EQ(table2_l1().associativity, 4u);
  EXPECT_EQ(table2_llc().size_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(table2_llc().associativity, 16u);
  EXPECT_EQ(table2_llc().line_size, 64u);
}

TEST(CacheGeometry, InvalidGeometriesRejected) {
  CacheGeometry bad{.size_bytes = 500, .associativity = 2, .line_size = 64};
  EXPECT_FALSE(bad.valid());
  EXPECT_THROW(Cache{bad}, std::logic_error);
}

TEST(Cache, InsertAndProbe) {
  Cache c(tiny_geometry());
  EXPECT_EQ(c.probe(0x100), LineState::kInvalid);
  c.insert(0x100, LineState::kExclusive);
  EXPECT_EQ(c.probe(0x100), LineState::kExclusive);
  EXPECT_TRUE(c.contains(0x13f));  // same 64B line
  EXPECT_FALSE(c.contains(0x140));
  EXPECT_EQ(c.valid_lines(), 1u);
}

TEST(Cache, LruEvictionWithinSet) {
  Cache c(tiny_geometry());
  // Set index = (addr/64) % 4. Addresses 0, 1024, 2048 all map to set 0.
  c.insert(0, LineState::kShared);
  c.insert(1024, LineState::kShared);
  c.touch(0);  // 1024 becomes LRU
  const auto ev = c.insert(2048, LineState::kShared);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 1024u);
  EXPECT_FALSE(ev->dirty);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1024));
}

TEST(Cache, DirtyEvictionReported) {
  Cache c(tiny_geometry());
  c.insert(0, LineState::kModified);
  c.insert(1024, LineState::kShared);
  const auto ev = c.insert(2048, LineState::kShared);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0u);
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, InsertPrefersInvalidWay) {
  Cache c(tiny_geometry());
  c.insert(0, LineState::kShared);
  const auto ev = c.insert(1024, LineState::kShared);
  EXPECT_FALSE(ev.has_value());
}

TEST(Cache, InvalidateReturnsPriorState) {
  Cache c(tiny_geometry());
  c.insert(0, LineState::kModified);
  EXPECT_EQ(c.invalidate(0), LineState::kModified);
  EXPECT_EQ(c.invalidate(0), LineState::kInvalid);
  EXPECT_EQ(c.valid_lines(), 0u);
}

TEST(Cache, SetStateUpgrades) {
  Cache c(tiny_geometry());
  c.insert(0, LineState::kShared);
  c.set_state(0, LineState::kModified);
  EXPECT_EQ(c.probe(0), LineState::kModified);
}

TEST(Cache, LineOfMasksOffset) {
  Cache c(tiny_geometry());
  EXPECT_EQ(c.line_of(0x1234), 0x1200u);
  EXPECT_EQ(c.line_of(0x1240), 0x1240u);
}

TEST(Cache, ErrorsOnMisuse) {
  Cache c(tiny_geometry());
  EXPECT_THROW(c.touch(0), std::logic_error);
  c.insert(0, LineState::kShared);
  EXPECT_THROW(c.insert(0, LineState::kShared), std::logic_error);
  EXPECT_THROW(c.insert(32, LineState::kInvalid), std::logic_error);
}

TEST(Cache, DistinctSetsDoNotInterfere) {
  Cache c(tiny_geometry());
  // Fill set 0 beyond capacity; set 1 lines must be untouched.
  c.insert(64, LineState::kShared);  // set 1
  c.insert(0, LineState::kShared);
  c.insert(1024, LineState::kShared);
  c.insert(2048, LineState::kShared);  // evicts from set 0
  EXPECT_TRUE(c.contains(64));
}

}  // namespace
}  // namespace hymem::cachesim
