#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace hymem::obs {
namespace {

TEST(MetricsRegistry, GetOrCreateReturnsSameObject) {
  MetricsRegistry registry;
  Counter& a = registry.counter("hits");
  a.inc(3);
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value, 3u);
  EXPECT_NE(&registry.counter("misses"), &a);
}

TEST(MetricsRegistry, SameNameDifferentKindsAreDistinct) {
  MetricsRegistry registry;
  registry.counter("x").inc();
  registry.gauge("x").set(2.5);
  EXPECT_EQ(registry.counter("x").value, 1u);
  EXPECT_DOUBLE_EQ(registry.gauge("x").value, 2.5);
}

TEST(MetricsRegistry, ReferencesStayStableAcrossGrowth) {
  MetricsRegistry registry;
  Counter& first = registry.counter("first");
  // Force many reallocations of the entry vector.
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i)).inc();
  }
  first.inc(7);
  EXPECT_EQ(registry.counter("first").value, 7u);
}

TEST(MetricsRegistry, IterationFollowsRegistrationOrder) {
  MetricsRegistry registry;
  registry.counter("zulu");
  registry.counter("alpha");
  registry.counter("mike");
  std::vector<std::string> names;
  registry.for_each_counter(
      [&](const std::string& name, const Counter&) { names.push_back(name); });
  EXPECT_EQ(names, (std::vector<std::string>{"zulu", "alpha", "mike"}));
}

TEST(Histogram, BucketsByUpperBoundInclusive) {
  Histogram h({10.0, 20.0});
  h.record(5.0);    // <= 10 -> bucket 0
  h.record(10.0);   // == bound -> bucket 0
  h.record(10.5);   // bucket 1
  h.record(20.0);   // bucket 1
  h.record(1e9);    // overflow bucket
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 10.0 + 10.5 + 20.0 + 1e9);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
}

TEST(Histogram, EmptyMeanIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({10.0, 10.0}), std::logic_error);
  EXPECT_THROW(Histogram({20.0, 10.0}), std::logic_error);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 2.0});
  Histogram& again = registry.histogram("lat", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.upper_bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistry, WriteJsonEscapesAndSerializes) {
  MetricsRegistry registry;
  registry.counter("evil\"name").inc(2);
  registry.gauge("g").set(1.5);
  registry.histogram("h", {10.0}).record(3.0);
  std::ostringstream out;
  registry.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"evil\\\"name\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\": 1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\": [1, 0]"), std::string::npos) << json;
}

}  // namespace
}  // namespace hymem::obs
