#include "obs/timeline_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/figure_schemas.hpp"

namespace hymem::obs {
namespace {

EpochRecord sample_record() {
  EpochRecord r;
  r.epoch = 2;
  r.end_access = 3000;
  r.delta.accesses = 1000;
  r.delta.dram_read_hits = 600;
  r.delta.nvm_read_hits = 300;
  r.delta.page_faults = 100;
  r.dram_resident = 3;
  r.nvm_resident = 21;
  r.read_window.target = 5;
  r.read_window.pages = 4;
  r.read_window.counter_sum = 12;
  r.read_threshold = 6;
  r.promotions = 7;
  r.amat_total_ns = 123.5;
  r.samples = 42;
  r.sampled_promotions = 9;
  r.migration_backlog = 5;
  return r;
}

TEST(TimelineIo, GoldenHeader) {
  // Pinned column list: plotting scripts and the figure-schema registry
  // depend on these exact names in this exact order.
  const std::vector<std::string> expected = {
      "epoch",
      "end_access",
      "accesses",
      "dram_read_hits",
      "dram_write_hits",
      "nvm_read_hits",
      "nvm_write_hits",
      "page_faults",
      "fills_to_dram",
      "fills_to_nvm",
      "migrations_to_dram",
      "migrations_to_nvm",
      "dirty_evictions",
      "dram_resident",
      "nvm_resident",
      "read_window_pages",
      "read_window_target",
      "read_counter_mean",
      "write_window_pages",
      "write_window_target",
      "write_counter_mean",
      "read_threshold",
      "write_threshold",
      "promotions",
      "demotions",
      "throttled_promotions",
      "amat_total_ns",
      "appr_total_nj",
      "mean_visible_latency_ns",
      "samples",
      "sample_drops",
      "coolings",
      "sampled_promotions",
      "sampled_demotions",
      "sampled_stale",
      "migration_backlog",
      "hot_ring_hwm",
      "cold_ring_hwm"};
  EXPECT_EQ(timeline_csv_header(), expected);
}

TEST(TimelineIo, FieldsAlignWithHeader) {
  EXPECT_EQ(timeline_csv_fields(sample_record()).size(),
            timeline_csv_header().size());
}

TEST(TimelineIo, TableSchemaComposesJobIdentityPlusEpochColumns) {
  const auto& schema = sim::table_schema("timeline");
  std::vector<std::string> expected = {"workload", "policy", "variant", "seed"};
  const auto& epoch_columns = timeline_csv_header();
  expected.insert(expected.end(), epoch_columns.begin(), epoch_columns.end());
  EXPECT_EQ(schema.columns, expected);
}

TEST(TimelineIo, CsvHasHeaderAndOneRowPerEpoch) {
  Timeline timeline;
  timeline.epoch_length = 1000;
  timeline.epochs = {sample_record(), sample_record(), sample_record()};
  std::ostringstream out;
  write_timeline_csv(timeline, out);
  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].rfind("epoch,end_access,accesses,", 0), 0u);
  EXPECT_EQ(lines[1].rfind("2,3000,1000,600,", 0), 0u);
}

TEST(TimelineIo, WindowMeanUsesPopulationNotTarget) {
  const EpochRecord r = sample_record();
  // 12 counter sum over 4 pages in the window -> mean 3.
  EXPECT_DOUBLE_EQ(r.read_window.mean_counter(), 3.0);
  const auto fields = timeline_csv_fields(r);
  const auto& header = timeline_csv_header();
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "read_counter_mean") {
      EXPECT_EQ(fields[i], "3");
    }
  }
}

TEST(TimelineIo, SampledColumnsCarryRecordValues) {
  const auto fields = timeline_csv_fields(sample_record());
  const auto& header = timeline_csv_header();
  ASSERT_EQ(fields.size(), header.size());
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "samples") {
      EXPECT_EQ(fields[i], "42");
    } else if (header[i] == "sampled_promotions") {
      EXPECT_EQ(fields[i], "9");
    } else if (header[i] == "migration_backlog") {
      EXPECT_EQ(fields[i], "5");
    } else if (header[i] == "sample_drops") {
      EXPECT_EQ(fields[i], "0");
    }
  }
}

TEST(TimelineIo, JsonCarriesTagsAndEpochObjects) {
  Timeline timeline;
  timeline.epoch_length = 512;
  timeline.epochs = {sample_record()};
  std::ostringstream out;
  write_timeline_json(timeline, out, "can\"neal", "two-lru");
  const std::string json = out.str();
  EXPECT_NE(json.find("\"epoch_length\": 512"), std::string::npos) << json;
  EXPECT_NE(json.find("\"workload\": \"can\\\"neal\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"policy\": \"two-lru\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"end_access\": 3000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"amat_total_ns\": 123.5"), std::string::npos) << json;
}

TEST(TimelineIo, EmptyTimelineWritesHeaderOnly) {
  Timeline timeline;
  std::ostringstream out;
  write_timeline_csv(timeline, out);
  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  EXPECT_EQ(lines.size(), 1u);
}

}  // namespace
}  // namespace hymem::obs
