#include "obs/epoch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/policy_factory.hpp"
#include "synth/generator.hpp"

namespace hymem::obs {
namespace {

trace::Trace tiny_trace() {
  synth::WorkloadProfile p;
  p.name = "tiny";
  p.working_set_kb = 128;  // 32 pages
  p.reads = 3000;
  p.writes = 1000;
  synth::GeneratorOptions o;
  o.seed = 13;
  return synth::generate(p, o);
}

os::VmmConfig hybrid_config() {
  os::VmmConfig c;
  c.dram_frames = 3;
  c.nvm_frames = 21;
  return c;
}

sim::RunResult sampled_run(const trace::Trace& trace, std::uint64_t epoch) {
  os::Vmm vmm(hybrid_config());
  const auto policy = sim::make_policy("two-lru", vmm);
  EpochSampler sampler(
      epoch, vmm,
      dynamic_cast<const core::TwoLruMigrationPolicy*>(policy.get()), 1.0);
  sim::RunResult result = sim::run_trace(*policy, trace, 1.0, 0, &sampler);
  result.timeline = sampler.take_timeline();
  return result;
}

TEST(EpochSampler, EvenBoundaryArithmetic) {
  const auto trace = tiny_trace();  // 4000 accesses
  const auto result = sampled_run(trace, 1000);
  ASSERT_EQ(result.timeline.epochs.size(), 4u);
  EXPECT_EQ(result.timeline.epoch_length, 1000u);
  for (std::size_t i = 0; i < 4; ++i) {
    const EpochRecord& r = result.timeline.epochs[i];
    EXPECT_EQ(r.epoch, i);
    EXPECT_EQ(r.end_access, (i + 1) * 1000);
    EXPECT_EQ(r.delta.accesses, 1000u);
  }
}

TEST(EpochSampler, RemainderEpochKeepsTheTail) {
  const auto trace = tiny_trace();  // 4000 accesses
  const auto result = sampled_run(trace, 1536);
  ASSERT_EQ(result.timeline.epochs.size(), 3u);
  EXPECT_EQ(result.timeline.epochs[0].end_access, 1536u);
  EXPECT_EQ(result.timeline.epochs[1].end_access, 3072u);
  EXPECT_EQ(result.timeline.epochs[2].end_access, 4000u);
  EXPECT_EQ(result.timeline.epochs[2].delta.accesses, 4000u - 3072u);
}

TEST(EpochSampler, EpochLongerThanRunEmitsOneRecord) {
  const auto trace = tiny_trace();
  const auto result = sampled_run(trace, 1u << 20);
  ASSERT_EQ(result.timeline.epochs.size(), 1u);
  EXPECT_EQ(result.timeline.epochs[0].end_access, trace.size());
  EXPECT_EQ(result.timeline.epochs[0].delta.accesses, trace.size());
}

void expect_deltas_sum_to_totals(const Timeline& timeline,
                                 const model::EventCounts& totals) {
  model::EventCounts sum;
  for (const EpochRecord& r : timeline.epochs) {
    sum.accesses += r.delta.accesses;
    sum.dram_read_hits += r.delta.dram_read_hits;
    sum.dram_write_hits += r.delta.dram_write_hits;
    sum.nvm_read_hits += r.delta.nvm_read_hits;
    sum.nvm_write_hits += r.delta.nvm_write_hits;
    sum.page_faults += r.delta.page_faults;
    sum.fills_to_dram += r.delta.fills_to_dram;
    sum.fills_to_nvm += r.delta.fills_to_nvm;
    sum.migrations_to_dram += r.delta.migrations_to_dram;
    sum.migrations_to_nvm += r.delta.migrations_to_nvm;
    sum.dirty_evictions += r.delta.dirty_evictions;
    sum.page_factor = r.delta.page_factor;  // run constant, not additive
  }
  EXPECT_EQ(sum.accesses, totals.accesses);
  EXPECT_EQ(sum.dram_read_hits, totals.dram_read_hits);
  EXPECT_EQ(sum.dram_write_hits, totals.dram_write_hits);
  EXPECT_EQ(sum.nvm_read_hits, totals.nvm_read_hits);
  EXPECT_EQ(sum.nvm_write_hits, totals.nvm_write_hits);
  EXPECT_EQ(sum.page_faults, totals.page_faults);
  EXPECT_EQ(sum.fills_to_dram, totals.fills_to_dram);
  EXPECT_EQ(sum.fills_to_nvm, totals.fills_to_nvm);
  EXPECT_EQ(sum.migrations_to_dram, totals.migrations_to_dram);
  EXPECT_EQ(sum.migrations_to_nvm, totals.migrations_to_nvm);
  EXPECT_EQ(sum.dirty_evictions, totals.dirty_evictions);
  EXPECT_EQ(sum.page_factor, totals.page_factor);
}

TEST(EpochSampler, DeltasSumExactlyToRunTotals) {
  // Odd epoch length so the remainder epoch is exercised too.
  const auto result = sampled_run(tiny_trace(), 257);
  expect_deltas_sum_to_totals(result.timeline, result.counts);
}

TEST(EpochSampler, DeltasSumToTotalsOnFuzzSmokeSeeds) {
  // The fuzz-smoke seed convention (golden gamma + i) over full
  // run_workload experiments: warmup passes, real sizing, real policies.
  sim::ExperimentConfig config;
  config.timeline_epoch = 997;  // prime: every run ends mid-epoch
  const auto& profile = synth::parsec_profile("bodytrack");
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t seed = 0x9e3779b97f4a7c15ull + i;
    const auto result = sim::run_workload(profile, 512, config, seed);
    ASSERT_FALSE(result.timeline.empty()) << "seed " << seed;
    EXPECT_EQ(result.timeline.epoch_length, 997u);
    expect_deltas_sum_to_totals(result.timeline, result.counts);
  }
}

TEST(EpochSampler, ObserverSeesMeasuredPassOnly) {
  // With a warmup pass, the timeline must cover exactly the measured
  // accesses — warmup replays are invisible to the observer.
  os::Vmm vmm(hybrid_config());
  const auto policy = sim::make_policy("two-lru", vmm);
  const auto trace = tiny_trace();
  EpochSampler sampler(
      1000, vmm,
      dynamic_cast<const core::TwoLruMigrationPolicy*>(policy.get()), 1.0);
  const auto result =
      sim::run_trace(*policy, trace, 1.0, /*warmup_passes=*/1, &sampler);
  ASSERT_FALSE(sampler.timeline().empty());
  EXPECT_EQ(sampler.timeline().epochs.back().end_access, trace.size());
  expect_deltas_sum_to_totals(sampler.timeline(), result.counts);
}

TEST(EpochSampler, RegistryTracksAccessMix) {
  os::Vmm vmm(hybrid_config());
  const auto policy = sim::make_policy("two-lru", vmm);
  const auto trace = tiny_trace();
  EpochSampler sampler(
      500, vmm,
      dynamic_cast<const core::TwoLruMigrationPolicy*>(policy.get()), 1.0);
  sim::run_trace(*policy, trace, 1.0, 0, &sampler);
  MetricsRegistry& registry = sampler.registry();
  const std::uint64_t reads = registry.counter("accesses.read").value;
  const std::uint64_t writes = registry.counter("accesses.write").value;
  EXPECT_EQ(reads + writes, trace.size());
  EXPECT_GT(reads, 0u);
  EXPECT_GT(writes, 0u);
  EXPECT_EQ(registry.histogram("visible_latency_ns", {}).count(),
            trace.size());
}

TEST(EpochSampler, TwoLruWindowsAndModelsPopulated) {
  const auto result = sampled_run(tiny_trace(), 500);
  bool saw_window = false;
  for (const EpochRecord& r : result.timeline.epochs) {
    EXPECT_GT(r.dram_resident + r.nvm_resident, 0u);
    EXPECT_GT(r.amat_total_ns, 0.0);
    EXPECT_GT(r.appr_total_nj, 0.0);
    EXPECT_GT(r.mean_visible_latency_ns, 0.0);
    EXPECT_LE(r.read_window.pages, r.read_window.target);
    EXPECT_LE(r.write_window.pages, r.write_window.target);
    if (r.read_window.pages > 0) saw_window = true;
  }
  EXPECT_TRUE(saw_window) << "NVM read window never populated";
}

TEST(EpochSampler, SingleTierPolicyStillSamplesVmmColumns) {
  os::VmmConfig cfg;
  cfg.dram_frames = 24;
  cfg.nvm_frames = 0;
  os::Vmm vmm(cfg);
  const auto policy = sim::make_policy("dram-only", vmm);
  EpochSampler sampler(1000, vmm, nullptr, 1.0);
  const auto trace = tiny_trace();
  const auto result = sim::run_trace(*policy, trace, 1.0, 0, &sampler);
  ASSERT_EQ(sampler.timeline().epochs.size(), 4u);
  for (const EpochRecord& r : sampler.timeline().epochs) {
    EXPECT_EQ(r.read_window.pages, 0u);
    EXPECT_EQ(r.write_window.pages, 0u);
    EXPECT_EQ(r.promotions, 0u);
    EXPECT_GT(r.dram_resident, 0u);
  }
  EXPECT_EQ(result.counts.accesses, trace.size());
}

TEST(EpochSampler, ZeroEpochLengthRejected) {
  os::Vmm vmm(hybrid_config());
  EXPECT_THROW(EpochSampler(0, vmm, nullptr, 1.0), std::logic_error);
}

}  // namespace
}  // namespace hymem::obs
