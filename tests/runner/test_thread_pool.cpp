#include "runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hymem::runner {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueueCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        ++counter;
      });
    }
    // No wait_idle: the destructor must finish everything queued.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleIsReusableBetweenBatches) {
  std::atomic<int> counter{0};
  ThreadPool pool(3);
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (batch + 1) * 50);
  }
}

TEST(ThreadPool, StressManyTinyTasks) {
  std::atomic<std::uint64_t> sum{0};
  ThreadPool pool(8);
  constexpr int kTasks = 20000;
  for (int i = 1; i <= kTasks; ++i) {
    pool.submit([&sum, i] { sum += static_cast<std::uint64_t>(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(kTasks) * (kTasks + 1) / 2);
}

TEST(ThreadPool, ConcurrentSubmitters) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 500; ++i) {
        pool.submit([&counter] { ++counter; });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2000);
}

TEST(ThreadPool, TasksRunOnWorkerThreadsWhenPoolIsWide) {
  // With more workers than long-running tasks, tasks overlap: total wall
  // time for 4 × 50ms sleeps on 4 workers stays well under the 200ms
  // serial time. Generous bound to stay robust on loaded 1-core CI.
  ThreadPool pool(4);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
  }
  pool.wait_idle();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(elapsed_ms, 190.0) << "sleeps should overlap across workers";
}

}  // namespace
}  // namespace hymem::runner
