#include "runner/progress.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace hymem::runner {
namespace {

TEST(Progress, CountsCompletionsAndFailures) {
  ProgressTracker tracker(4);
  tracker.job_done(true);
  tracker.job_done(false);
  tracker.job_done(true);
  const auto snap = tracker.snapshot();
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.total, 4u);
  EXPECT_GE(snap.elapsed_s, 0.0);
  EXPECT_GE(snap.eta_s, 0.0);
  EXPECT_DOUBLE_EQ(snap.fraction(), 0.75);
}

TEST(Progress, EtaZeroBeforeFirstAndAfterLastCompletion) {
  ProgressTracker tracker(2);
  EXPECT_EQ(tracker.snapshot().eta_s, 0.0);
  tracker.job_done(true);
  tracker.job_done(true);
  EXPECT_EQ(tracker.snapshot().eta_s, 0.0);
}

TEST(Progress, CallbackFiresOncePerCompletionWithConsistentSnapshots) {
  std::vector<ProgressSnapshot> seen;
  ProgressTracker tracker(3, [&seen](const ProgressSnapshot& snap) {
    seen.push_back(snap);
  });
  tracker.job_done(true);
  tracker.job_done(false);
  tracker.job_done(true);
  ASSERT_EQ(seen.size(), 3u);
  // Callbacks may interleave under threads, but here they are sequential:
  // completed must be 1, 2, 3 and failed monotone.
  EXPECT_EQ(seen[0].completed, 1u);
  EXPECT_EQ(seen[2].completed, 3u);
  EXPECT_EQ(seen[2].failed, 1u);
}

TEST(Progress, ThreadSafeUnderConcurrentCompletions) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::atomic<int> callbacks{0};
  ProgressTracker tracker(kThreads * kPerThread,
                          [&callbacks](const ProgressSnapshot&) {
                            ++callbacks;
                          });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kPerThread; ++i) tracker.job_done(i % 10 != 0);
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = tracker.snapshot();
  EXPECT_EQ(snap.completed, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.failed, static_cast<std::uint64_t>(kThreads * kPerThread / 10));
  EXPECT_EQ(callbacks.load(), kThreads * kPerThread);
}

TEST(Progress, FormatIsHumanReadable) {
  ProgressSnapshot snap;
  snap.completed = 12;
  snap.total = 96;
  snap.failed = 1;
  snap.elapsed_s = 3.14;
  snap.eta_s = 21.9;
  const std::string line = format_progress(snap);
  EXPECT_NE(line.find("12/96"), std::string::npos);
  EXPECT_NE(line.find("12.5%"), std::string::npos);
  EXPECT_NE(line.find("eta 21.9s"), std::string::npos);
  EXPECT_NE(line.find("1 failed"), std::string::npos);
}

TEST(Progress, FormatOmitsEtaBeforeFirstCompletion) {
  // With zero completions there is no observed rate; "eta 0.0s" would read
  // as "done". The line simply drops the eta field.
  ProgressSnapshot snap;
  snap.total = 96;
  snap.elapsed_s = 0.5;
  const std::string line = format_progress(snap);
  EXPECT_NE(line.find("0/96"), std::string::npos);
  EXPECT_EQ(line.find("eta"), std::string::npos) << line;
  EXPECT_NE(line.find("0 failed"), std::string::npos);
}

TEST(Progress, FormatHandlesFullUint64Range) {
  // The formatter uses PRIu64: values past 2^32 (where a mismatched %lu
  // on LLP64 would truncate) must print exactly.
  ProgressSnapshot snap;
  snap.completed = 18446744073709551614ull;
  snap.total = 18446744073709551615ull;
  snap.failed = 4294967297ull;  // 2^32 + 1
  const std::string line = format_progress(snap);
  EXPECT_NE(line.find("18446744073709551614/18446744073709551615"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("4294967297 failed"), std::string::npos) << line;
}

}  // namespace
}  // namespace hymem::runner
