#include "runner/sharded.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/results_io.hpp"
#include "synth/workload_profile.hpp"

namespace hymem::runner {
namespace {

// Wide footprint (1024 pages -> ~76 DRAM frames under Section V.A sizing)
// with few accesses, so every shard gets a real budget slice and the whole
// suite runs in milliseconds.
synth::WorkloadProfile tiny_profile() {
  synth::WorkloadProfile p;
  p.name = "shard-tiny";
  p.working_set_kb = 4096;
  p.reads = 30000;
  p.writes = 10000;
  return p;
}

sim::ExperimentConfig partitioned_config(unsigned shards) {
  sim::ExperimentConfig config;
  config.shards = shards;
  config.shard_mode = sim::ShardMode::kPartitioned;
  return config;
}

constexpr std::uint64_t kScale = 1;

TEST(Sharded, RejectsFewerThanTwoShards) {
  EXPECT_THROW(
      run_sharded_workload(tiny_profile(), kScale, partitioned_config(1)),
      std::invalid_argument);
}

TEST(Sharded, RejectsSampledPolicies) {
  auto config = partitioned_config(3);
  config.policy = "sampled-lru";
  EXPECT_THROW(run_sharded_workload(tiny_profile(), kScale, config),
               std::invalid_argument);
}

TEST(Sharded, DeterministicAcrossRepeatsForFixedShardCount) {
  const auto config = partitioned_config(3);
  const auto a = run_sharded_workload(tiny_profile(), kScale, config);
  const auto b = run_sharded_workload(tiny_profile(), kScale, config);
  EXPECT_EQ(sim::to_json(a), sim::to_json(b));
}

TEST(Sharded, ReplaysEveryAccessAndConservesBudget) {
  // The serial engine and the partitioned run consume the same generated
  // traces, so total accesses and the Section V.A memory budget must agree
  // exactly even though per-shard placement differs.
  sim::ExperimentConfig serial_config;
  const auto serial = sim::run_workload(tiny_profile(), kScale, serial_config);
  for (const unsigned shards : {2u, 5u}) {
    const auto sharded =
        run_sharded_workload(tiny_profile(), kScale, partitioned_config(shards));
    EXPECT_EQ(sharded.accesses, serial.accesses) << shards;
    EXPECT_EQ(sharded.counts.accesses, serial.counts.accesses) << shards;
    EXPECT_EQ(sharded.counts.hits() + sharded.counts.page_faults,
              sharded.counts.accesses)
        << shards;
    EXPECT_EQ(sharded.params.dram_bytes, serial.params.dram_bytes) << shards;
    EXPECT_EQ(sharded.params.nvm_bytes, serial.params.nvm_bytes) << shards;
    EXPECT_EQ(sharded.workload, serial.workload);
    EXPECT_EQ(sharded.policy, serial.policy);
  }
}

TEST(Sharded, TimelineEpochsCoverEveryShard) {
  auto config = partitioned_config(2);
  config.timeline_epoch = 256;
  const auto result = run_sharded_workload(tiny_profile(), kScale, config);
  EXPECT_EQ(result.timeline.epoch_length, 256u);
  ASSERT_FALSE(result.timeline.epochs.empty());
  std::uint64_t covered = 0;
  for (const auto& epoch : result.timeline.epochs) {
    covered += epoch.delta.accesses;
  }
  EXPECT_EQ(covered, result.accesses);
}

TEST(Sharded, DispatchRoutesByModeAndCount) {
  // Exact mode (any shard count) and a single shard both take the serial
  // engine; the result must be byte-identical to the plain run_workload.
  sim::ExperimentConfig serial_config;
  const auto serial = sim::run_workload(tiny_profile(), kScale, serial_config);
  sim::ExperimentConfig exact;
  exact.shards = 4;
  exact.shard_mode = sim::ShardMode::kExact;
  EXPECT_EQ(sim::to_json(run_workload_dispatch(tiny_profile(), kScale, exact)),
            sim::to_json(serial));
  const auto partitioned = run_workload_dispatch(tiny_profile(), kScale,
                                                 partitioned_config(2));
  EXPECT_EQ(partitioned.accesses, serial.accesses);
}

}  // namespace
}  // namespace hymem::runner
