#include "runner/prescreen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"

namespace hymem::runner {
namespace {

// One workload, a supported and an unsupported policy, and sizing variants
// far enough apart that the simulated AMAT ranking is unambiguous.
SweepSpec screen_spec() {
  SweepSpec spec;
  spec.workloads = {synth::parsec_profile("canneal")};
  spec.policies = {"two-lru", "two-lru-adaptive"};
  for (const double memory_fraction : {0.40, 0.60, 0.75, 0.95}) {
    ConfigVariant variant;
    variant.label = "mem" + std::to_string(memory_fraction);
    variant.config.memory_fraction = memory_fraction;
    spec.variants.push_back(variant);
  }
  spec.scale = 512;
  spec.base_seed = 42;
  return spec;
}

std::string serialize(const SweepResults& sweep) {
  std::ostringstream csv;
  sweep.write_csv(csv);
  std::ostringstream json;
  sweep.write_json(json);
  return csv.str() + json.str();
}

TEST(Prescreen, SelectionMirrorsAnalyticSupport) {
  PrescreenOptions options;
  options.refine_top = 0;  // keep everything
  options.run.jobs = 1;
  const PrescreenResults screened =
      run_prescreened_sweep(screen_spec(), options);
  ASSERT_EQ(screened.screen.size(), 8u);
  ASSERT_EQ(screened.sweep.jobs.size(), 8u);
  for (const ScreenedJob& job : screened.screen) {
    const auto& config = screened.sweep.jobs[job.index].job.config;
    EXPECT_EQ(job.analytic, sim::analytic_supported(config));
    EXPECT_TRUE(job.selected);  // refine_top 0 simulates everything
  }
  EXPECT_EQ(screened.simulated, 8u);
  EXPECT_EQ(screened.sweep.skipped(), 0u);
  EXPECT_EQ(screened.analytic_evals, 4u);  // the two-lru cells
}

TEST(Prescreen, RefineTopSimulatesOnlyTheBestSupportedCells) {
  PrescreenOptions options;
  options.refine_top = 2;
  options.run.jobs = 1;
  const PrescreenResults screened =
      run_prescreened_sweep(screen_spec(), options);
  // 2 refined two-lru cells + 4 always-simulated adaptive cells.
  EXPECT_EQ(screened.simulated, 6u);
  EXPECT_EQ(screened.sweep.skipped(), 2u);
  EXPECT_EQ(screened.sweep.failures(), 0u);
  for (const ScreenedJob& job : screened.screen) {
    const auto& slot = screened.sweep.jobs[job.index];
    if (!job.analytic) {
      EXPECT_TRUE(job.selected) << "unsupported cells are always simulated";
    }
    EXPECT_EQ(slot.skipped, !job.selected);
    EXPECT_EQ(slot.ok, job.selected);
  }
  // Skipped rows export as status "skipped", not as failures.
  std::ostringstream csv;
  screened.sweep.write_csv(csv);
  EXPECT_NE(csv.str().find(",skipped,"), std::string::npos);
}

TEST(Prescreen, RecoversTheTrueBestSimulatedCell) {
  const SweepSpec spec = screen_spec();
  // Exhaustive reference: simulate the whole grid, find the supported cell
  // with the lowest simulated AMAT.
  const SweepResults exhaustive = run_sweep(spec, {});
  std::size_t best = 0;
  double best_amat = std::numeric_limits<double>::infinity();
  for (const JobResult& job : exhaustive.jobs) {
    if (!job.ok || !sim::analytic_supported(job.job.config)) continue;
    const double amat = job.result.amat().total();
    if (amat < best_amat) {
      best_amat = amat;
      best = job.job.index;
    }
  }
  ASSERT_LT(best_amat, std::numeric_limits<double>::infinity());

  PrescreenOptions options;
  options.refine_top = 2;
  options.run.jobs = 1;
  const PrescreenResults screened = run_prescreened_sweep(spec, options);
  EXPECT_TRUE(screened.screen[best].selected)
      << "the analytically ranked top-2 must contain the true best cell";
  // And the refined cells reproduce the exhaustive numbers exactly: the
  // prescreen only prunes, it never perturbs a simulation.
  for (const ScreenedJob& job : screened.screen) {
    if (!job.selected) continue;
    EXPECT_DOUBLE_EQ(screened.sweep.jobs[job.index].result.amat().total(),
                     exhaustive.jobs[job.index].result.amat().total());
  }
}

TEST(Prescreen, OutputIsByteIdenticalForAnyWorkerCount) {
  const SweepSpec spec = screen_spec();
  PrescreenOptions serial;
  serial.refine_top = 2;
  serial.run.jobs = 1;
  PrescreenOptions threaded;
  threaded.refine_top = 2;
  threaded.run.jobs = 4;
  const PrescreenResults a = run_prescreened_sweep(spec, serial);
  const PrescreenResults b = run_prescreened_sweep(spec, threaded);
  EXPECT_EQ(serialize(a.sweep), serialize(b.sweep));
  ASSERT_EQ(a.screen.size(), b.screen.size());
  for (std::size_t i = 0; i < a.screen.size(); ++i) {
    EXPECT_EQ(a.screen[i].selected, b.screen[i].selected);
    EXPECT_EQ(a.screen[i].predicted_amat_ns, b.screen[i].predicted_amat_ns);
  }
}

TEST(Prescreen, CharacterizationIsSharedAcrossTheGrid) {
  // 8 cells, one workload/seed/page-size: the ranking pass must cost one
  // characterization and one estimate per supported cell, and the analytic
  // throughput must clear the ISSUE's >= 1000 configs/s floor.
  PrescreenOptions options;
  options.refine_top = 1;
  options.run.jobs = 1;
  const PrescreenResults screened =
      run_prescreened_sweep(screen_spec(), options);
  EXPECT_EQ(screened.analytic_evals, 4u);
  EXPECT_GE(screened.analytic_evals_per_second(), 1000.0);
}

}  // namespace
}  // namespace hymem::runner
