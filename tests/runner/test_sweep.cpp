#include "runner/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/results_io.hpp"
#include "synth/workload_profile.hpp"

namespace hymem::runner {
namespace {

// Tiny spec: two small workloads × two policies at a harsh scale divisor,
// so the whole grid runs in milliseconds.
SweepSpec tiny_spec() {
  SweepSpec spec;
  spec.workloads = {synth::parsec_profile("streamcluster"),
                    synth::parsec_profile("blackscholes")};
  spec.policies = {"two-lru", "clock-dwf"};
  spec.scale = 256;
  spec.base_seed = 42;
  return spec;
}

std::string serialize(const SweepResults& sweep) {
  std::ostringstream csv;
  sweep.write_csv(csv);
  std::ostringstream json;
  sweep.write_json(json);
  return csv.str() + json.str();
}

TEST(SweepGrid, ExpandsRowMajorWithSequentialIndices) {
  auto spec = tiny_spec();
  ConfigVariant fast;
  fast.label = "thr0";
  fast.config.migration.read_threshold = 0;
  spec.variants = {ConfigVariant{}, fast};
  const auto jobs = expand_grid(spec);
  ASSERT_EQ(jobs.size(), 2u * 2u * 2u);
  // Workload-major, then policy, then variant.
  EXPECT_EQ(jobs[0].workload.name, "streamcluster");
  EXPECT_EQ(jobs[0].policy, "two-lru");
  EXPECT_EQ(jobs[0].variant, "");
  EXPECT_EQ(jobs[1].variant, "thr0");
  EXPECT_EQ(jobs[2].policy, "clock-dwf");
  EXPECT_EQ(jobs[4].workload.name, "blackscholes");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].config.policy, jobs[i].policy);
  }
}

TEST(SweepGrid, EmptyVariantListMeansOneDefaultConfig) {
  const auto jobs = expand_grid(tiny_spec());
  ASSERT_EQ(jobs.size(), 4u);
  for (const auto& job : jobs) EXPECT_EQ(job.variant, "");
}

TEST(SweepGrid, PerJobSeedsAreDistinctAndPositionDerived) {
  auto spec = tiny_spec();
  spec.seed_mode = SeedMode::kPerJob;
  const auto jobs = expand_grid(spec);
  std::set<std::uint64_t> seeds;
  for (const auto& job : jobs) {
    EXPECT_EQ(job.seed, job_seed(spec.base_seed, job.index));
    seeds.insert(job.seed);
  }
  EXPECT_EQ(seeds.size(), jobs.size()) << "per-job seeds must not collide";
}

TEST(SweepGrid, SharedSeedModeUsesBaseSeedEverywhere) {
  auto spec = tiny_spec();
  spec.seed_mode = SeedMode::kShared;
  for (const auto& job : expand_grid(spec)) {
    EXPECT_EQ(job.seed, spec.base_seed);
  }
}

TEST(SweepGrid, JobSeedIsAPureFunction) {
  EXPECT_EQ(job_seed(42, 7), job_seed(42, 7));
  EXPECT_NE(job_seed(42, 7), job_seed(42, 8));
  EXPECT_NE(job_seed(42, 7), job_seed(43, 7));
}

TEST(Sweep, ParallelResultsAreByteIdenticalToSerialAnyThreadCount) {
  auto spec = tiny_spec();
  spec.seed_mode = SeedMode::kPerJob;
  SweepOptions serial;
  serial.jobs = 1;
  const auto reference = serialize(run_sweep(spec, serial));
  for (const unsigned jobs : {2u, 3u, 8u}) {
    SweepOptions parallel;
    parallel.jobs = jobs;
    EXPECT_EQ(serialize(run_sweep(spec, parallel)), reference)
        << "divergence with " << jobs << " workers";
  }
}

TEST(Sweep, ResultsLandInGridOrderRegardlessOfCompletionOrder) {
  auto spec = tiny_spec();
  SweepOptions options;
  options.jobs = 4;
  const auto sweep = run_sweep(spec, options);
  ASSERT_EQ(sweep.jobs.size(), 4u);
  for (std::size_t i = 0; i < sweep.jobs.size(); ++i) {
    EXPECT_EQ(sweep.jobs[i].job.index, i);
    ASSERT_TRUE(sweep.jobs[i].ok) << sweep.jobs[i].error;
    EXPECT_EQ(sweep.jobs[i].result.workload, sweep.jobs[i].job.workload.name);
  }
}

TEST(Sweep, OneThrowingJobDoesNotKillTheSweep) {
  auto spec = tiny_spec();
  spec.policies = {"two-lru", "no-such-policy", "clock-dwf"};
  SweepOptions options;
  options.jobs = 3;
  const auto sweep = run_sweep(spec, options);
  ASSERT_EQ(sweep.jobs.size(), 6u);
  EXPECT_EQ(sweep.failures(), 2u);  // one bad policy × two workloads
  for (const auto& job : sweep.jobs) {
    if (job.job.policy == "no-such-policy") {
      EXPECT_FALSE(job.ok);
      EXPECT_FALSE(job.error.empty());
    } else {
      EXPECT_TRUE(job.ok) << job.error;
    }
  }
  // The failure summary names the casualties; results() skips them.
  std::ostringstream summary;
  sweep.write_failures(summary);
  EXPECT_NE(summary.str().find("no-such-policy"), std::string::npos);
  EXPECT_EQ(sweep.results().size(), 4u);
}

TEST(Sweep, FailedJobsAppearInCsvWithErrorAndBlankMetrics) {
  auto spec = tiny_spec();
  spec.workloads.resize(1);
  spec.policies = {"no-such-policy"};
  const auto sweep = run_sweep(spec, SweepOptions{});
  std::ostringstream csv;
  sweep.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("failed"), std::string::npos);
  EXPECT_NE(text.find("no-such-policy"), std::string::npos);
}

TEST(Sweep, AllJobsPassingProducesNoFailureSummary) {
  const auto sweep = run_sweep(tiny_spec(), SweepOptions{});
  std::ostringstream summary;
  sweep.write_failures(summary);
  EXPECT_TRUE(summary.str().empty());
}

TEST(Sweep, ProgressCallbackFiresOncePerJob) {
  auto spec = tiny_spec();
  std::atomic<int> calls{0};
  SweepOptions options;
  options.jobs = 2;
  options.progress = [&calls](const ProgressSnapshot&) { ++calls; };
  const auto sweep = run_sweep(spec, options);
  EXPECT_EQ(calls.load(), static_cast<int>(sweep.jobs.size()));
}

TEST(Sweep, WorkerCountIsClampedToGridSize) {
  auto spec = tiny_spec();
  SweepOptions options;
  options.jobs = 64;
  const auto sweep = run_sweep(spec, options);
  EXPECT_EQ(sweep.workers, 4u);
  EXPECT_EQ(sweep.failures(), 0u);
}

TEST(Sweep, EmptyTraceJobFailsItsCellOnly) {
  // Regression: an empty workload used to HYMEM_CHECK-abort the whole
  // process from size_memory/run_trace. It must now surface as one failed
  // cell (std::invalid_argument, captured) with every other cell intact.
  auto spec = tiny_spec();
  synth::WorkloadProfile empty;
  empty.name = "empty-capture";
  empty.working_set_kb = 128;
  empty.reads = 0;
  empty.writes = 0;
  spec.workloads.push_back(empty);
  SweepOptions options;
  options.jobs = 3;
  const auto sweep = run_sweep(spec, options);
  ASSERT_EQ(sweep.jobs.size(), 6u);
  EXPECT_EQ(sweep.failures(), 2u);  // empty workload × two policies
  for (const auto& job : sweep.jobs) {
    if (job.job.workload.name == "empty-capture") {
      EXPECT_FALSE(job.ok);
      EXPECT_FALSE(job.error.empty());
    } else {
      EXPECT_TRUE(job.ok) << job.error;
    }
  }
  // The surviving cells match a sweep that never contained the poisoned
  // workload: fault isolation cannot perturb neighbours.
  const auto clean = run_sweep(tiny_spec(), SweepOptions{});
  const auto survivors = sweep.results();
  const auto reference = clean.results();
  ASSERT_EQ(survivors.size(), reference.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(survivors[i].counts.page_faults, reference[i].counts.page_faults);
    EXPECT_DOUBLE_EQ(survivors[i].amat().total(), reference[i].amat().total());
  }
}

std::string timeline_of(const SweepSpec& spec, unsigned workers) {
  SweepOptions options;
  options.jobs = workers;
  const auto sweep = run_sweep(spec, options);
  std::ostringstream out;
  sweep.write_timeline_csv(out);
  return out.str();
}

TEST(Sweep, TimelineCsvIsByteIdenticalForAnyWorkerCount) {
  auto spec = tiny_spec();
  ConfigVariant sampled;
  sampled.label = "timeline";
  sampled.config.timeline_epoch = 512;
  spec.variants = {sampled};
  const std::string reference = timeline_of(spec, 1);
  // Sampling happened and spliced rows carry the job identity prefix.
  EXPECT_NE(reference.find("\nstreamcluster,two-lru,timeline,42,0,"),
            std::string::npos);
  for (const unsigned workers : {2u, 4u}) {
    EXPECT_EQ(timeline_of(spec, workers), reference)
        << "timeline divergence with " << workers << " workers";
  }
}

TEST(Sweep, TimelineCsvIsHeaderOnlyWhenSamplingOff) {
  const auto sweep = run_sweep(tiny_spec(), SweepOptions{});
  std::ostringstream out;
  EXPECT_EQ(sweep.write_timeline_csv(out), 0u);
  EXPECT_EQ(out.str().rfind("workload,policy,variant,seed,epoch,", 0), 0u);
  EXPECT_EQ(out.str().find('\n'), out.str().size() - 1)
      << "expected a single header line";
}

TEST(Sweep, SweepCsvSplicesSimResultsIoColumns) {
  const auto sweep = run_sweep(tiny_spec(), SweepOptions{});
  std::ostringstream csv;
  sweep.write_csv(csv);
  std::istringstream lines(csv.str());
  std::string header;
  std::getline(lines, header);
  // Sweep columns, then every sim::csv_header() metric column.
  EXPECT_EQ(header.rfind("workload,policy,variant,seed,status,error,", 0), 0u);
  const auto& metric_header = sim::csv_header();
  for (std::size_t i = 2; i < metric_header.size(); ++i) {
    EXPECT_NE(header.find(metric_header[i]), std::string::npos)
        << "missing column " << metric_header[i];
  }
}

}  // namespace
}  // namespace hymem::runner
