#include "policy/clock_dwf.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace hymem::policy {
namespace {

os::VmmConfig hybrid_config(std::uint64_t dram, std::uint64_t nvm) {
  os::VmmConfig c;
  c.dram_frames = dram;
  c.nvm_frames = nvm;
  return c;
}

TEST(ClockDwf, WriteFaultFillsDram) {
  os::Vmm vmm(hybrid_config(2, 4));
  ClockDwfPolicy policy(vmm);
  policy.on_access(1, AccessType::kWrite);
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
}

TEST(ClockDwf, ReadFaultFillsDramWhileDramHasSpace) {
  os::Vmm vmm(hybrid_config(2, 4));
  ClockDwfPolicy policy(vmm);
  policy.on_access(1, AccessType::kRead);
  // The paper notes an empty DRAM absorbs pages regardless of type
  // (blackscholes discussion).
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
}

TEST(ClockDwf, ReadFaultFillsNvmOnceDramFull) {
  os::Vmm vmm(hybrid_config(1, 4));
  ClockDwfPolicy policy(vmm);
  policy.on_access(1, AccessType::kWrite);  // DRAM now full
  policy.on_access(2, AccessType::kRead);
  EXPECT_EQ(vmm.tier_of(2), Tier::kNvm);
}

TEST(ClockDwf, NvmNeverServesWrites) {
  os::Vmm vmm(hybrid_config(2, 8));
  ClockDwfPolicy policy(vmm);
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    policy.on_access(rng.next_below(12),
                     rng.next_bool(0.4) ? AccessType::kWrite
                                        : AccessType::kRead);
  }
  EXPECT_EQ(vmm.device(Tier::kNvm).counters().demand_writes, 0u)
      << "CLOCK-DWF must respond to every write from DRAM";
}

TEST(ClockDwf, WriteToNvmPageTriggersMigration) {
  os::Vmm vmm(hybrid_config(1, 4));
  ClockDwfPolicy policy(vmm);
  policy.on_access(1, AccessType::kWrite);  // DRAM full
  policy.on_access(2, AccessType::kRead);   // 2 -> NVM
  ASSERT_EQ(vmm.tier_of(2), Tier::kNvm);
  const auto migrations_before = vmm.dma_counters().migrations();
  policy.on_access(2, AccessType::kWrite);  // forced promotion (swap)
  EXPECT_EQ(vmm.tier_of(2), Tier::kDram);
  // Full memory: the promotion costs BOTH directions (Section III).
  EXPECT_EQ(vmm.dma_counters().migrations(), migrations_before + 2);
}

TEST(ClockDwf, PromotionUsesFreeDramFrameWithoutDemotion) {
  os::Vmm vmm(hybrid_config(2, 4));
  ClockDwfPolicy policy(vmm);
  policy.on_access(1, AccessType::kWrite);  // DRAM (1 frame used)
  // Fill NVM via read faults after exhausting... DRAM still has space, so
  // force an NVM resident page by filling DRAM first.
  policy.on_access(2, AccessType::kWrite);  // DRAM full
  policy.on_access(3, AccessType::kRead);   // -> NVM
  ASSERT_EQ(vmm.tier_of(3), Tier::kNvm);
  // Free a DRAM frame by... none available; instead verify swap path above.
  // Here verify the write is served by DRAM afterwards.
  policy.on_access(3, AccessType::kWrite);
  EXPECT_EQ(vmm.tier_of(3), Tier::kDram);
  EXPECT_GT(vmm.device(Tier::kDram).counters().demand_writes, 0u);
}

TEST(ClockDwf, DramVictimDemotesToNvmNotDisk) {
  os::Vmm vmm(hybrid_config(2, 4));
  ClockDwfPolicy policy(vmm);
  policy.on_access(1, AccessType::kWrite);
  policy.on_access(2, AccessType::kWrite);
  policy.on_access(3, AccessType::kWrite);  // DRAM full: one page demotes
  EXPECT_EQ(vmm.resident(Tier::kDram), 2u);
  EXPECT_EQ(vmm.resident(Tier::kNvm), 1u);
  EXPECT_EQ(vmm.dma_counters().migrations_dram_to_nvm, 1u);
  EXPECT_EQ(vmm.disk().page_ins(), 3u);
}

TEST(ClockDwf, NvmEvictsToDiskWhenFull) {
  os::Vmm vmm(hybrid_config(1, 1));
  ClockDwfPolicy policy(vmm);
  policy.on_access(1, AccessType::kWrite);  // DRAM
  policy.on_access(2, AccessType::kRead);   // NVM
  policy.on_access(3, AccessType::kRead);   // NVM full -> evict 2 to disk
  EXPECT_FALSE(vmm.is_resident(2));
  EXPECT_TRUE(vmm.is_resident(3));
}

TEST(ClockDwf, ResidencyMatchesClockBookkeeping) {
  os::Vmm vmm(hybrid_config(3, 6));
  ClockDwfPolicy policy(vmm);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    policy.on_access(rng.next_below(20),
                     rng.next_bool(0.3) ? AccessType::kWrite
                                        : AccessType::kRead);
    ASSERT_EQ(policy.dram_clock().size(), vmm.resident(Tier::kDram));
    ASSERT_EQ(policy.nvm_clock().size(), vmm.resident(Tier::kNvm));
    ASSERT_LE(vmm.resident(Tier::kDram), 3u);
    ASSERT_LE(vmm.resident(Tier::kNvm), 6u);
  }
}

TEST(ClockDwf, RequiresBothModules) {
  os::VmmConfig cfg;
  cfg.dram_frames = 4;
  cfg.nvm_frames = 0;
  os::Vmm vmm(cfg);
  EXPECT_THROW(ClockDwfPolicy{vmm}, std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
