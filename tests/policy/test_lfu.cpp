#include "policy/lfu.hpp"

#include <gtest/gtest.h>

namespace hymem::policy {
namespace {

TEST(Lfu, EvictsLeastFrequentlyUsed) {
  LfuPolicy lfu(3);
  lfu.insert(1, AccessType::kRead);
  lfu.insert(2, AccessType::kRead);
  lfu.insert(3, AccessType::kRead);
  lfu.on_hit(1, AccessType::kRead);
  lfu.on_hit(1, AccessType::kRead);
  lfu.on_hit(3, AccessType::kRead);
  EXPECT_EQ(lfu.select_victim(), PageId{2});
}

TEST(Lfu, TiesBrokenByInsertionOrder) {
  LfuPolicy lfu(2);
  lfu.insert(5, AccessType::kRead);
  lfu.insert(6, AccessType::kRead);
  EXPECT_EQ(lfu.select_victim(), PageId{5});
}

TEST(Lfu, FrequencyTracking) {
  LfuPolicy lfu(2);
  lfu.insert(1, AccessType::kRead);
  EXPECT_EQ(lfu.frequency(1), 1u);
  lfu.on_hit(1, AccessType::kWrite);
  lfu.on_hit(1, AccessType::kRead);
  EXPECT_EQ(lfu.frequency(1), 3u);
}

TEST(Lfu, EraseAndReinsertResetsFrequency) {
  LfuPolicy lfu(2);
  lfu.insert(1, AccessType::kRead);
  lfu.on_hit(1, AccessType::kRead);
  lfu.erase(1);
  lfu.insert(1, AccessType::kRead);
  EXPECT_EQ(lfu.frequency(1), 1u);
}

TEST(Lfu, MisuseDetected) {
  LfuPolicy lfu(1);
  EXPECT_THROW(lfu.on_hit(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(lfu.frequency(1), std::logic_error);
  lfu.insert(1, AccessType::kRead);
  EXPECT_THROW(lfu.insert(2, AccessType::kRead), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
