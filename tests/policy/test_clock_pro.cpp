#include "policy/clock_pro.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace hymem::policy {
namespace {

/// Drives a replacement policy like a cache with eviction-on-full; returns
/// the hit count.
template <typename Policy>
std::uint64_t drive(Policy& policy, const std::vector<PageId>& stream) {
  std::uint64_t hits = 0;
  for (PageId page : stream) {
    if (policy.contains(page)) {
      ++hits;
      policy.on_hit(page, AccessType::kRead);
      continue;
    }
    if (policy.full()) {
      const auto victim = policy.select_victim();
      EXPECT_TRUE(victim.has_value());
      policy.erase(*victim);
    }
    policy.insert(page, AccessType::kRead);
  }
  return hits;
}

TEST(ClockPro, BasicInsertAndHit) {
  ClockProPolicy cp(4);
  cp.insert(1, AccessType::kRead);
  EXPECT_TRUE(cp.contains(1));
  EXPECT_EQ(cp.size(), 1u);
  cp.on_hit(1, AccessType::kRead);
  EXPECT_TRUE(cp.contains(1));
}

TEST(ClockPro, CapacityNeverExceeded) {
  ClockProPolicy cp(8);
  Rng rng(5);
  std::vector<PageId> stream;
  for (int i = 0; i < 2000; ++i) stream.push_back(rng.next_below(40));
  drive(cp, stream);
  EXPECT_LE(cp.size(), 8u);
}

TEST(ClockPro, GhostHistoryBounded) {
  ClockProPolicy cp(8);
  Rng rng(6);
  std::vector<PageId> stream;
  for (int i = 0; i < 5000; ++i) stream.push_back(rng.next_below(200));
  drive(cp, stream);
  EXPECT_LE(cp.nonresident_count(), 8u);
}

TEST(ClockPro, ColdTargetStaysInBounds) {
  ClockProPolicy cp(16);
  Rng rng(7);
  std::vector<PageId> stream;
  for (int i = 0; i < 5000; ++i) stream.push_back(rng.next_below(64));
  drive(cp, stream);
  EXPECT_GE(cp.cold_target(), 1u);
  EXPECT_LE(cp.cold_target(), 15u);
}

TEST(ClockPro, QuickRefaultPromotesViaTestPeriod) {
  // Evict a page inside its test period, then re-fault it: it must come
  // back as hot (observable: it survives pressure that evicts cold pages).
  ClockProPolicy cp(4);
  std::vector<PageId> stream;
  // Thrash pages 0..5 in a loop (classic LRU-killer); CLOCK-Pro's test
  // period lets re-faulted pages become hot.
  for (int lap = 0; lap < 50; ++lap) {
    for (PageId p = 0; p < 6; ++p) stream.push_back(p);
  }
  const auto hits = drive(cp, stream);
  // Plain LRU gets zero hits on this pattern; CLOCK-Pro must beat that.
  EXPECT_GT(hits, 0u);
}

TEST(ClockPro, HitRatioReasonableOnSkewedStream) {
  ClockProPolicy cp(16);
  Rng rng(8);
  std::vector<PageId> stream;
  for (int i = 0; i < 10000; ++i) {
    // 80% of accesses to 8 hot pages, the rest to 200 cold ones.
    stream.push_back(rng.next_bool(0.8) ? rng.next_below(8)
                                        : 8 + rng.next_below(200));
  }
  const auto hits = drive(cp, stream);
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(stream.size()), 0.6);
}

TEST(ClockPro, EraseHotPage) {
  ClockProPolicy cp(4);
  cp.insert(1, AccessType::kRead);
  cp.insert(2, AccessType::kRead);
  // Force enough traffic that something becomes hot, then erase explicitly.
  cp.on_hit(1, AccessType::kRead);
  cp.erase(1);
  EXPECT_FALSE(cp.contains(1));
  cp.erase(2);
  EXPECT_EQ(cp.size(), 0u);
}

TEST(ClockPro, MisuseDetected) {
  ClockProPolicy cp(4);
  EXPECT_THROW(cp.on_hit(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(cp.erase(1), std::logic_error);
  EXPECT_THROW(ClockProPolicy(1), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
