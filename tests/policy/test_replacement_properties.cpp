// Property suite run over EVERY replacement policy: invariants that must
// hold regardless of the algorithm.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "policy/factory.hpp"
#include "util/random.hpp"

namespace hymem::policy {
namespace {

class ReplacementProperties : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<ReplacementPolicy> make(std::size_t capacity) {
    return make_replacement(GetParam(), capacity, /*seed=*/11);
  }
};

TEST_P(ReplacementProperties, NameMatchesFactoryKey) {
  const auto policy = make(8);
  EXPECT_EQ(policy->name(), GetParam());
  EXPECT_EQ(policy->capacity(), 8u);
}

TEST_P(ReplacementProperties, SizeNeverExceedsCapacityUnderChurn) {
  const auto policy = make(16);
  Rng rng(21);
  for (int i = 0; i < 5000; ++i) {
    const PageId page = rng.next_below(100);
    if (policy->contains(page)) {
      policy->on_hit(page, rng.next_bool(0.3) ? AccessType::kWrite
                                              : AccessType::kRead);
    } else {
      if (policy->full()) {
        const auto victim = policy->select_victim();
        ASSERT_TRUE(victim.has_value());
        ASSERT_TRUE(policy->contains(*victim))
            << "victim must be a tracked page";
        policy->erase(*victim);
      }
      policy->insert(page, AccessType::kRead);
    }
    ASSERT_LE(policy->size(), policy->capacity());
  }
}

TEST_P(ReplacementProperties, ContainsConsistentWithInsertErase) {
  const auto policy = make(4);
  policy->insert(42, AccessType::kRead);
  EXPECT_TRUE(policy->contains(42));
  EXPECT_EQ(policy->size(), 1u);
  policy->erase(42);
  EXPECT_FALSE(policy->contains(42));
  EXPECT_EQ(policy->size(), 0u);
}

TEST_P(ReplacementProperties, VictimOfEmptyIsNull) {
  const auto policy = make(4);
  EXPECT_FALSE(policy->select_victim().has_value());
}

TEST_P(ReplacementProperties, CanRefillAfterDrain) {
  const auto policy = make(4);
  for (PageId p = 0; p < 4; ++p) policy->insert(p, AccessType::kRead);
  for (PageId p = 0; p < 4; ++p) policy->erase(p);
  EXPECT_EQ(policy->size(), 0u);
  for (PageId p = 10; p < 14; ++p) policy->insert(p, AccessType::kRead);
  EXPECT_EQ(policy->size(), 4u);
}

TEST_P(ReplacementProperties, HighLocalityStreamGetsHighHitRatio) {
  const auto policy = make(8);
  Rng rng(31);
  std::uint64_t hits = 0;
  constexpr int kAccesses = 4000;
  for (int i = 0; i < kAccesses; ++i) {
    // 90% of accesses to 6 pages that fit in the cache.
    const PageId page =
        rng.next_bool(0.9) ? rng.next_below(6) : 100 + rng.next_below(400);
    if (policy->contains(page)) {
      ++hits;
      policy->on_hit(page, AccessType::kRead);
    } else {
      if (policy->full()) {
        const auto victim = policy->select_victim();
        ASSERT_TRUE(victim.has_value());
        policy->erase(*victim);
      }
      policy->insert(page, AccessType::kRead);
    }
  }
  // Even Random beats 50% here; real policies score much higher.
  EXPECT_GT(static_cast<double>(hits) / kAccesses, 0.5) << GetParam();
}

TEST_P(ReplacementProperties, SelectVictimIsStableWithoutMutation) {
  // Two consecutive select_victim calls with no intervening mutation must
  // agree (the call may mutate internal bits, but must converge).
  const auto policy = make(4);
  for (PageId p = 0; p < 4; ++p) policy->insert(p, AccessType::kRead);
  const auto v1 = policy->select_victim();
  const auto v2 = policy->select_victim();
  ASSERT_TRUE(v1.has_value());
  EXPECT_TRUE(v2.has_value());
  if (GetParam() != "random") {
    EXPECT_EQ(*v1, *v2);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementProperties,
                         ::testing::Values("lru", "fifo", "clock", "clock-pro",
                                           "car", "lirs", "lfu", "lru-k",
                                           "2q", "random"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hymem::policy
