#include "policy/car.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace hymem::policy {
namespace {

void miss_insert(CarPolicy& car, PageId page) {
  if (car.full()) {
    const auto victim = car.select_victim();
    ASSERT_TRUE(victim.has_value());
    car.erase(*victim);
  }
  car.insert(page, AccessType::kRead);
}

TEST(Car, BasicInsertHitErase) {
  CarPolicy car(4);
  car.insert(1, AccessType::kRead);
  EXPECT_TRUE(car.contains(1));
  car.on_hit(1, AccessType::kRead);
  car.erase(1);
  EXPECT_FALSE(car.contains(1));
}

TEST(Car, NewPagesEnterRecencyClock) {
  CarPolicy car(4);
  car.insert(1, AccessType::kRead);
  car.insert(2, AccessType::kRead);
  EXPECT_EQ(car.t1_size(), 2u);
  EXPECT_EQ(car.t2_size(), 0u);
}

TEST(Car, GhostHitMovesToFrequencyClock) {
  CarPolicy car(2);
  miss_insert(car, 1);
  miss_insert(car, 2);
  miss_insert(car, 3);  // evicts 1 (T1 head, unreferenced) into B1
  EXPECT_FALSE(car.contains(1));
  miss_insert(car, 1);  // B1 ghost hit -> joins T2
  EXPECT_TRUE(car.contains(1));
  EXPECT_GE(car.t2_size(), 1u);
}

TEST(Car, GhostRecencyHitGrowsTarget) {
  CarPolicy car(2);
  miss_insert(car, 1);
  miss_insert(car, 2);
  miss_insert(car, 3);
  const double before = car.target_p();
  miss_insert(car, 1);  // B1 hit: p grows
  EXPECT_GT(car.target_p(), before);
}

TEST(Car, TargetStaysInBounds) {
  CarPolicy car(8);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const PageId page = rng.next_below(64);
    if (car.contains(page)) {
      car.on_hit(page, AccessType::kRead);
    } else {
      miss_insert(car, page);
    }
  }
  EXPECT_GE(car.target_p(), 0.0);
  EXPECT_LE(car.target_p(), 8.0);
  EXPECT_LE(car.size(), 8u);
  EXPECT_LE(car.ghost_recency_size(), 8u);
  EXPECT_LE(car.ghost_frequency_size(), 8u);
}

TEST(Car, ReferencedT1HeadGraduatesToT2) {
  CarPolicy car(2);
  miss_insert(car, 1);
  miss_insert(car, 2);
  car.on_hit(1, AccessType::kRead);
  // Replace: head 1 is referenced -> moves to T2; victim is 2.
  const auto victim = car.select_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, PageId{2});
  EXPECT_GE(car.t2_size(), 1u);
}

TEST(Car, HitRatioReasonableOnSkewedStream) {
  CarPolicy car(16);
  Rng rng(9);
  std::uint64_t hits = 0;
  constexpr int kAccesses = 10000;
  for (int i = 0; i < kAccesses; ++i) {
    const PageId page =
        rng.next_bool(0.8) ? rng.next_below(8) : 8 + rng.next_below(300);
    if (car.contains(page)) {
      ++hits;
      car.on_hit(page, AccessType::kRead);
    } else {
      miss_insert(car, page);
    }
  }
  EXPECT_GT(static_cast<double>(hits) / kAccesses, 0.6);
}

TEST(Car, MisuseDetected) {
  CarPolicy car(2);
  EXPECT_THROW(car.on_hit(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(car.erase(1), std::logic_error);
  EXPECT_THROW(CarPolicy(0), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
