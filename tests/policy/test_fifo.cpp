#include "policy/fifo.hpp"

#include <gtest/gtest.h>

namespace hymem::policy {
namespace {

TEST(Fifo, EvictsInInsertionOrder) {
  FifoPolicy fifo(3);
  fifo.insert(1, AccessType::kRead);
  fifo.insert(2, AccessType::kRead);
  fifo.insert(3, AccessType::kRead);
  EXPECT_EQ(fifo.select_victim(), PageId{1});
  fifo.erase(1);
  EXPECT_EQ(fifo.select_victim(), PageId{2});
}

TEST(Fifo, HitsDoNotChangeOrder) {
  FifoPolicy fifo(3);
  fifo.insert(1, AccessType::kRead);
  fifo.insert(2, AccessType::kRead);
  fifo.on_hit(1, AccessType::kWrite);
  fifo.on_hit(1, AccessType::kWrite);
  EXPECT_EQ(fifo.select_victim(), PageId{1});
}

TEST(Fifo, ContainsAndSize) {
  FifoPolicy fifo(2);
  fifo.insert(4, AccessType::kRead);
  EXPECT_TRUE(fifo.contains(4));
  EXPECT_EQ(fifo.size(), 1u);
  fifo.erase(4);
  EXPECT_FALSE(fifo.contains(4));
}

TEST(Fifo, MisuseDetected) {
  FifoPolicy fifo(1);
  EXPECT_THROW(fifo.on_hit(9, AccessType::kRead), std::logic_error);
  fifo.insert(9, AccessType::kRead);
  EXPECT_THROW(fifo.insert(2, AccessType::kRead), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
