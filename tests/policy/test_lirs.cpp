#include "policy/lirs.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.hpp"

namespace hymem::policy {
namespace {

template <typename Policy>
std::uint64_t drive(Policy& policy, const std::vector<PageId>& stream) {
  std::uint64_t hits = 0;
  for (PageId page : stream) {
    if (policy.contains(page)) {
      ++hits;
      policy.on_hit(page, AccessType::kRead);
      continue;
    }
    if (policy.full()) {
      const auto victim = policy.select_victim();
      EXPECT_TRUE(victim.has_value());
      policy.erase(*victim);
    }
    policy.insert(page, AccessType::kRead);
  }
  return hits;
}

TEST(Lirs, WarmupFillsLirSetFirst) {
  LirsPolicy p(16);  // lir_target = 15
  for (PageId i = 0; i < 15; ++i) p.insert(i, AccessType::kRead);
  EXPECT_EQ(p.lir_count(), 15u);
  EXPECT_EQ(p.hir_resident_count(), 0u);
  p.insert(99, AccessType::kRead);
  EXPECT_EQ(p.hir_resident_count(), 1u);
}

TEST(Lirs, VictimIsResidentHirFirst) {
  LirsPolicy p(16);
  for (PageId i = 0; i < 16; ++i) p.insert(i, AccessType::kRead);
  // The only resident HIR page is 15.
  EXPECT_EQ(p.select_victim(), PageId{15});
}

TEST(Lirs, QuickRefaultPromotesToLir) {
  LirsPolicy p(4);  // lir_target = 3
  for (PageId i = 0; i < 4; ++i) p.insert(i, AccessType::kRead);
  // 3 is resident HIR. Evict it, then re-fault quickly: must come back LIR.
  p.erase(*p.select_victim());
  EXPECT_FALSE(p.contains(3));
  p.insert(3, AccessType::kRead);
  EXPECT_TRUE(p.contains(3));
  EXPECT_EQ(p.lir_count(), 3u) << "ghost hit must re-enter as LIR";
}

TEST(Lirs, HirHitInStackSwapsWithLirBottom) {
  LirsPolicy p(4);
  for (PageId i = 0; i < 4; ++i) p.insert(i, AccessType::kRead);
  EXPECT_EQ(p.hir_resident_count(), 1u);
  p.on_hit(3, AccessType::kRead);  // HIR 3 is still in the stack
  // 3 became LIR; one old LIR page was demoted to resident HIR.
  EXPECT_EQ(p.lir_count(), 3u);
  EXPECT_EQ(p.hir_resident_count(), 1u);
  EXPECT_NE(p.select_victim(), PageId{3});
}

TEST(Lirs, ScanResistance) {
  // LIRS' signature property: a one-pass scan must not displace the LIR set.
  LirsPolicy p(16);
  std::vector<PageId> stream;
  // Establish a hot set 0..11 with reuse.
  for (int lap = 0; lap < 6; ++lap) {
    for (PageId page = 0; page < 12; ++page) stream.push_back(page);
  }
  // One-shot scan of 200 cold pages.
  for (PageId page = 1000; page < 1200; ++page) stream.push_back(page);
  // Hot set again: should still be resident.
  drive(p, stream);
  std::uint64_t still_resident = 0;
  for (PageId page = 0; page < 12; ++page) still_resident += p.contains(page);
  EXPECT_GE(still_resident, 10u) << "scan evicted the LIR set";
}

TEST(Lirs, BeatsNothingButStaysBounded) {
  LirsPolicy p(32);
  Rng rng(5);
  std::vector<PageId> stream;
  for (int i = 0; i < 20000; ++i) {
    stream.push_back(rng.next_bool(0.7) ? rng.next_below(20)
                                        : 20 + rng.next_below(500));
  }
  drive(p, stream);
  EXPECT_LE(p.size(), 32u);
  EXPECT_LE(p.nonresident_count(), 64u);
}

TEST(Lirs, HitRatioCompetitiveOnSkewedStream) {
  LirsPolicy p(16);
  Rng rng(8);
  std::vector<PageId> stream;
  for (int i = 0; i < 10000; ++i) {
    stream.push_back(rng.next_bool(0.8) ? rng.next_below(8)
                                        : 8 + rng.next_below(200));
  }
  const auto hits = drive(p, stream);
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(stream.size()),
            0.6);
}

TEST(Lirs, EraseLirPageDirectly) {
  LirsPolicy p(4);
  for (PageId i = 0; i < 3; ++i) p.insert(i, AccessType::kRead);
  p.erase(0);  // a LIR page (e.g. migrated away)
  EXPECT_FALSE(p.contains(0));
  EXPECT_EQ(p.lir_count(), 2u);
}

TEST(Lirs, MisuseDetected) {
  EXPECT_THROW(LirsPolicy(1), std::logic_error);
  LirsPolicy p(4);
  EXPECT_THROW(p.on_hit(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(p.erase(1), std::logic_error);
  p.insert(1, AccessType::kRead);
  EXPECT_THROW(p.insert(1, AccessType::kRead), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
