#include "policy/static_partition.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace hymem::policy {
namespace {

os::VmmConfig hybrid_config(std::uint64_t dram, std::uint64_t nvm) {
  os::VmmConfig c;
  c.dram_frames = dram;
  c.nvm_frames = nvm;
  return c;
}

TEST(StaticPartition, NeverMigrates) {
  os::Vmm vmm(hybrid_config(4, 16));
  StaticPartitionPolicy policy(vmm);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    policy.on_access(rng.next_below(60),
                     rng.next_bool(0.3) ? AccessType::kWrite
                                        : AccessType::kRead);
  }
  EXPECT_EQ(vmm.dma_counters().migrations(), 0u);
}

TEST(StaticPartition, HomeIsStable) {
  os::Vmm vmm(hybrid_config(4, 16));
  StaticPartitionPolicy policy(vmm);
  for (PageId p = 0; p < 100; ++p) {
    EXPECT_EQ(policy.home(p), policy.home(p));
  }
}

TEST(StaticPartition, PagesLandInTheirHome) {
  os::Vmm vmm(hybrid_config(8, 32));
  StaticPartitionPolicy policy(vmm);
  for (PageId p = 0; p < 30; ++p) {
    policy.on_access(p, AccessType::kRead);
    if (vmm.is_resident(p)) {
      EXPECT_EQ(vmm.tier_of(p), policy.home(p)) << "page " << p;
    }
  }
}

TEST(StaticPartition, HomeDistributionTracksShare) {
  os::Vmm vmm(hybrid_config(10, 90));
  StaticPartitionPolicy policy(vmm);
  std::uint64_t dram_homes = 0;
  constexpr PageId kPages = 20000;
  for (PageId p = 0; p < kPages; ++p) {
    dram_homes += (policy.home(p) == Tier::kDram);
  }
  EXPECT_NEAR(static_cast<double>(dram_homes) / kPages, 0.10, 0.02);
}

TEST(StaticPartition, CapacityRespectedPerModule) {
  os::Vmm vmm(hybrid_config(2, 4));
  StaticPartitionPolicy policy(vmm);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    policy.on_access(rng.next_below(50), AccessType::kRead);
    ASSERT_LE(vmm.resident(Tier::kDram), 2u);
    ASSERT_LE(vmm.resident(Tier::kNvm), 4u);
  }
}

TEST(StaticPartition, RequiresBothModules) {
  os::VmmConfig cfg;
  cfg.dram_frames = 0;
  cfg.nvm_frames = 4;
  os::Vmm vmm(cfg);
  EXPECT_THROW(StaticPartitionPolicy{vmm}, std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
