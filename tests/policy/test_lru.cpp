#include "policy/lru.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.hpp"

namespace hymem::policy {
namespace {

std::vector<PageId> order(const LruPolicy& lru) {
  std::vector<PageId> out;
  lru.for_each_mru_to_lru([&out](PageId p) { out.push_back(p); });
  return out;
}

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruPolicy lru(3);
  lru.insert(1, AccessType::kRead);
  lru.insert(2, AccessType::kRead);
  lru.insert(3, AccessType::kRead);
  EXPECT_EQ(lru.select_victim(), PageId{1});
  lru.on_hit(1, AccessType::kRead);  // 2 becomes LRU
  EXPECT_EQ(lru.select_victim(), PageId{2});
}

TEST(Lru, HitMovesToMruPosition) {
  LruPolicy lru(3);
  lru.insert(1, AccessType::kRead);
  lru.insert(2, AccessType::kRead);
  lru.insert(3, AccessType::kRead);
  lru.on_hit(2, AccessType::kWrite);
  EXPECT_EQ(order(lru), (std::vector<PageId>{2, 3, 1}));
}

TEST(Lru, SizeAndContains) {
  LruPolicy lru(2);
  EXPECT_EQ(lru.size(), 0u);
  EXPECT_FALSE(lru.full());
  lru.insert(7, AccessType::kRead);
  EXPECT_TRUE(lru.contains(7));
  EXPECT_FALSE(lru.contains(8));
  lru.insert(8, AccessType::kRead);
  EXPECT_TRUE(lru.full());
}

TEST(Lru, EraseRemovesAnywhere) {
  LruPolicy lru(3);
  lru.insert(1, AccessType::kRead);
  lru.insert(2, AccessType::kRead);
  lru.insert(3, AccessType::kRead);
  lru.erase(2);
  EXPECT_EQ(order(lru), (std::vector<PageId>{3, 1}));
  EXPECT_FALSE(lru.contains(2));
}

TEST(Lru, VictimOfEmptyIsNull) {
  LruPolicy lru(2);
  EXPECT_FALSE(lru.select_victim().has_value());
}

TEST(Lru, StackInclusionProperty) {
  // An LRU of capacity C+1 always contains everything an LRU of capacity C
  // contains (Mattson). Simulate both with eviction-on-full.
  LruPolicy small(4), big(5);
  auto simulate = [](LruPolicy& lru, PageId page) {
    if (lru.contains(page)) {
      lru.on_hit(page, AccessType::kRead);
      return;
    }
    if (lru.full()) lru.erase(*lru.select_victim());
    lru.insert(page, AccessType::kRead);
  };
  std::uint64_t x = 42;
  for (int i = 0; i < 3000; ++i) {
    const PageId page = splitmix64(x) % 12;
    simulate(small, page);
    simulate(big, page);
    small.for_each_mru_to_lru(
        [&](PageId p) { ASSERT_TRUE(big.contains(p)); });
  }
}

TEST(Lru, MisuseDetected) {
  LruPolicy lru(1);
  EXPECT_THROW(lru.on_hit(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(lru.erase(1), std::logic_error);
  lru.insert(1, AccessType::kRead);
  EXPECT_THROW(lru.insert(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(lru.insert(2, AccessType::kRead), std::logic_error);  // full
  EXPECT_THROW(LruPolicy(0), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
