#include "policy/dram_cache.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace hymem::policy {
namespace {

os::VmmConfig hybrid_config(std::uint64_t dram, std::uint64_t nvm) {
  os::VmmConfig c;
  c.dram_frames = dram;
  c.nvm_frames = nvm;
  return c;
}

TEST(DramCache, FaultsFillDram) {
  os::Vmm vmm(hybrid_config(2, 4));
  DramCachePolicy policy(vmm);
  policy.on_access(1, AccessType::kRead);
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
}

TEST(DramCache, OverflowDemotesToNvm) {
  os::Vmm vmm(hybrid_config(2, 4));
  DramCachePolicy policy(vmm);
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);
  policy.on_access(3, AccessType::kRead);  // demote LRU (1) to NVM
  EXPECT_EQ(vmm.tier_of(1), Tier::kNvm);
  EXPECT_EQ(vmm.tier_of(3), Tier::kDram);
  EXPECT_EQ(vmm.dma_counters().migrations_dram_to_nvm, 1u);
}

TEST(DramCache, EveryNvmTouchPromotes) {
  os::Vmm vmm(hybrid_config(2, 4));
  DramCachePolicy policy(vmm);
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);
  policy.on_access(3, AccessType::kRead);  // 1 now in NVM
  ASSERT_EQ(vmm.tier_of(1), Tier::kNvm);
  policy.on_access(1, AccessType::kRead);  // promote-on-touch
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
}

TEST(DramCache, NvmHitServedFromNvmBeforePromotion) {
  os::Vmm vmm(hybrid_config(1, 4));
  DramCachePolicy policy(vmm);
  policy.on_access(1, AccessType::kRead);
  policy.on_access(2, AccessType::kRead);  // 1 -> NVM
  const auto nvm_reads_before = vmm.device(Tier::kNvm).counters().demand_reads;
  policy.on_access(1, AccessType::kRead);
  EXPECT_EQ(vmm.device(Tier::kNvm).counters().demand_reads,
            nvm_reads_before + 1);
}

TEST(DramCache, MoreMigrationsThanThresholdedScheme) {
  // The aggressive baseline migrates on every NVM touch; churny traffic
  // makes it thrash.
  os::Vmm vmm(hybrid_config(2, 8));
  DramCachePolicy policy(vmm);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    policy.on_access(rng.next_below(10), AccessType::kRead);
  }
  EXPECT_GT(vmm.dma_counters().migrations(), 500u);
}

TEST(DramCache, CapacityInvariants) {
  os::Vmm vmm(hybrid_config(2, 3));
  DramCachePolicy policy(vmm);
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    policy.on_access(rng.next_below(20), AccessType::kRead);
    ASSERT_LE(vmm.resident(Tier::kDram), 2u);
    ASSERT_LE(vmm.resident(Tier::kNvm), 3u);
  }
}

}  // namespace
}  // namespace hymem::policy
