#include "policy/random_repl.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hymem::policy {
namespace {

TEST(RandomRepl, VictimIsTracked) {
  RandomPolicy r(4, 1);
  for (PageId p = 10; p < 14; ++p) r.insert(p, AccessType::kRead);
  for (int i = 0; i < 50; ++i) {
    const auto victim = r.select_victim();
    ASSERT_TRUE(victim.has_value());
    EXPECT_TRUE(r.contains(*victim));
  }
}

TEST(RandomRepl, DeterministicUnderSeed) {
  RandomPolicy a(4, 7), b(4, 7);
  for (PageId p = 0; p < 4; ++p) {
    a.insert(p, AccessType::kRead);
    b.insert(p, AccessType::kRead);
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.select_victim(), b.select_victim());
}

TEST(RandomRepl, EventuallyPicksEveryPage) {
  RandomPolicy r(4, 3);
  for (PageId p = 0; p < 4; ++p) r.insert(p, AccessType::kRead);
  std::set<PageId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(*r.select_victim());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RandomRepl, SwapRemoveKeepsIndexConsistent) {
  RandomPolicy r(4, 1);
  for (PageId p = 0; p < 4; ++p) r.insert(p, AccessType::kRead);
  r.erase(1);  // middle erase triggers swap-with-last
  EXPECT_FALSE(r.contains(1));
  EXPECT_TRUE(r.contains(3));
  r.erase(3);
  EXPECT_EQ(r.size(), 2u);
}

TEST(RandomRepl, EmptyVictimIsNull) {
  RandomPolicy r(2, 1);
  EXPECT_FALSE(r.select_victim().has_value());
}

}  // namespace
}  // namespace hymem::policy
