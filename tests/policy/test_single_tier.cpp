#include "policy/single_tier.hpp"

#include <gtest/gtest.h>

#include "policy/lru.hpp"
#include "trace/reuse_distance.hpp"
#include "util/random.hpp"

namespace hymem::policy {
namespace {

os::VmmConfig dram_only_config(std::uint64_t frames) {
  os::VmmConfig c;
  c.dram_frames = frames;
  c.nvm_frames = 0;
  return c;
}

std::unique_ptr<SingleTierPolicy> make_dram_lru(os::Vmm& vmm) {
  return std::make_unique<SingleTierPolicy>(
      vmm, Tier::kDram,
      std::make_unique<LruPolicy>(
          static_cast<std::size_t>(vmm.frames(Tier::kDram))));
}

TEST(SingleTier, NameReflectsTierAndPolicy) {
  os::Vmm vmm(dram_only_config(4));
  const auto policy = make_dram_lru(vmm);
  EXPECT_EQ(policy->name(), "dram-only-lru");
}

TEST(SingleTier, ColdMissCostsDiskLatency) {
  os::Vmm vmm(dram_only_config(4));
  const auto policy = make_dram_lru(vmm);
  EXPECT_DOUBLE_EQ(policy->on_access(1, AccessType::kRead), 5e6);
  EXPECT_DOUBLE_EQ(policy->on_access(1, AccessType::kRead), 50);
}

TEST(SingleTier, EvictionAtCapacity) {
  os::Vmm vmm(dram_only_config(2));
  const auto policy = make_dram_lru(vmm);
  policy->on_access(1, AccessType::kRead);
  policy->on_access(2, AccessType::kRead);
  policy->on_access(3, AccessType::kRead);  // evicts 1
  EXPECT_FALSE(vmm.is_resident(1));
  EXPECT_TRUE(vmm.is_resident(2));
  EXPECT_TRUE(vmm.is_resident(3));
  EXPECT_EQ(vmm.resident(Tier::kDram), 2u);
}

TEST(SingleTier, WriteFaultMarksPageDirty) {
  os::Vmm vmm(dram_only_config(1));
  const auto policy = make_dram_lru(vmm);
  policy->on_access(1, AccessType::kWrite);
  policy->on_access(2, AccessType::kRead);  // evicts dirty 1
  EXPECT_EQ(vmm.disk().page_outs(), 1u);
}

TEST(SingleTier, HitRatioMatchesMattsonStackAnalysis) {
  // The gold-standard cross-check: a DRAM-only LRU must hit exactly when
  // the reuse distance is below capacity.
  constexpr std::uint64_t kCapacity = 24;
  os::Vmm vmm(dram_only_config(kCapacity));
  const auto policy = make_dram_lru(vmm);
  trace::ReuseDistanceAnalyzer rd(4096);
  Rng rng(123);
  std::uint64_t accesses = 0;
  for (int i = 0; i < 8000; ++i) {
    const PageId page = rng.next_below(100);
    rd.observe(page * 4096);
    policy->on_access(page, AccessType::kRead);
    ++accesses;
  }
  const auto& counters = vmm.device(Tier::kDram).counters();
  const double simulated_hit_ratio =
      static_cast<double>(counters.demand_reads) / static_cast<double>(accesses);
  EXPECT_NEAR(simulated_hit_ratio, rd.lru_hit_ratio(kCapacity), 1e-12);
}

TEST(SingleTier, NvmOnlyVariantUsesNvmTimings) {
  os::VmmConfig cfg;
  cfg.dram_frames = 0;
  cfg.nvm_frames = 2;
  os::Vmm vmm(cfg);
  SingleTierPolicy policy(vmm, Tier::kNvm, std::make_unique<LruPolicy>(2));
  EXPECT_EQ(policy.name(), "nvm-only-lru");
  policy.on_access(1, AccessType::kRead);
  EXPECT_DOUBLE_EQ(policy.on_access(1, AccessType::kWrite), 350);
  EXPECT_GT(vmm.nvm_endurance().total_writes(), 0u);
}

TEST(SingleTier, RequiresMatchingCapacity) {
  os::Vmm vmm(dram_only_config(4));
  EXPECT_THROW(SingleTierPolicy(vmm, Tier::kDram,
                                std::make_unique<LruPolicy>(3)),
               std::logic_error);
}

TEST(SingleTier, RequiresEmptyOtherModule) {
  os::VmmConfig cfg;
  cfg.dram_frames = 4;
  cfg.nvm_frames = 4;
  os::Vmm vmm(cfg);
  EXPECT_THROW(SingleTierPolicy(vmm, Tier::kDram,
                                std::make_unique<LruPolicy>(4)),
               std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
