#include "policy/two_q.hpp"

#include <gtest/gtest.h>

namespace hymem::policy {
namespace {

TEST(TwoQ, NewPagesEnterProbation) {
  TwoQPolicy p(8);
  p.insert(1, AccessType::kRead);
  EXPECT_EQ(p.probation_size(), 1u);
  EXPECT_EQ(p.protected_size(), 0u);
}

TEST(TwoQ, ProbationHitsDoNotPromote) {
  TwoQPolicy p(8);
  p.insert(1, AccessType::kRead);
  p.on_hit(1, AccessType::kRead);
  p.on_hit(1, AccessType::kRead);
  EXPECT_EQ(p.protected_size(), 0u) << "bursts must not earn protection";
}

TEST(TwoQ, GhostReferencePromotesToProtected) {
  TwoQPolicy p(8);  // kin = 2
  p.insert(1, AccessType::kRead);
  p.insert(2, AccessType::kRead);
  p.insert(3, AccessType::kRead);  // probation over share
  const auto victim = p.select_victim();
  ASSERT_EQ(victim, PageId{1});  // FIFO order
  p.erase(1);                    // becomes a ghost
  EXPECT_EQ(p.ghost_size(), 1u);
  p.insert(1, AccessType::kRead);  // ghost hit
  EXPECT_EQ(p.protected_size(), 1u);
  EXPECT_EQ(p.ghost_size(), 0u);
}

TEST(TwoQ, ProtectedLruOrder) {
  TwoQPolicy p(8);
  // Promote 1 and 2 via the ghost path.
  for (PageId page : {1u, 2u}) {
    p.insert(page, AccessType::kRead);
    p.erase(page);
    p.insert(page, AccessType::kRead);
  }
  ASSERT_EQ(p.protected_size(), 2u);
  p.on_hit(1, AccessType::kRead);  // 2 is now protected-LRU
  // Drain probation first; then the protected victim must be 2.
  while (p.probation_size() > 0) {
    const auto victim = p.select_victim();
    ASSERT_TRUE(victim.has_value());
    if (!p.contains(*victim)) break;
    p.erase(*victim);
  }
  EXPECT_EQ(p.select_victim(), PageId{2});
}

TEST(TwoQ, GhostCapacityBounded) {
  TwoQPolicy p(4);  // kout = 2
  for (PageId page = 0; page < 10; ++page) {
    if (p.full()) p.erase(*p.select_victim());
    p.insert(page, AccessType::kRead);
  }
  EXPECT_LE(p.ghost_size(), 2u);
}

TEST(TwoQ, ScanResistanceForProtectedPages) {
  TwoQPolicy p(4);
  p.insert(100, AccessType::kRead);
  p.erase(100);
  p.insert(100, AccessType::kRead);  // protected
  ASSERT_EQ(p.protected_size(), 1u);
  for (PageId scan = 0; scan < 50; ++scan) {
    if (p.full()) {
      const auto victim = p.select_victim();
      ASSERT_TRUE(victim.has_value());
      if (*victim == 100) break;
      p.erase(*victim);
    }
    p.insert(scan, AccessType::kRead);
  }
  EXPECT_TRUE(p.contains(100)) << "scan displaced the protected page";
}

TEST(TwoQ, MisuseDetected) {
  EXPECT_THROW(TwoQPolicy(1), std::logic_error);
  TwoQPolicy p(2);
  EXPECT_THROW(p.on_hit(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(p.erase(1), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
