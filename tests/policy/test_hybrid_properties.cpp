// Property suite run over EVERY hybrid-memory policy: conservation and
// residency invariants that must hold regardless of the migration strategy.
#include <gtest/gtest.h>

#include <string>

#include "model/endurance_model.hpp"
#include "model/events.hpp"
#include "sim/policy_factory.hpp"
#include "util/random.hpp"
#include "util/zipf.hpp"

namespace hymem {
namespace {

class HybridProperties : public ::testing::TestWithParam<std::string> {
 protected:
  static os::VmmConfig config_for(const std::string& name) {
    os::VmmConfig c;
    if (name.rfind("dram-only", 0) == 0) {
      c.dram_frames = 24;
      c.nvm_frames = 0;
    } else if (name.rfind("nvm-only", 0) == 0) {
      c.dram_frames = 0;
      c.nvm_frames = 24;
    } else {
      c.dram_frames = 4;
      c.nvm_frames = 20;
    }
    return c;
  }
};

TEST_P(HybridProperties, ResidencyNeverExceedsCapacity) {
  os::Vmm vmm(config_for(GetParam()));
  const auto policy = sim::make_policy(GetParam(), vmm);
  Rng rng(17);
  ZipfSampler zipf(64, 0.8);
  for (int i = 0; i < 5000; ++i) {
    policy->on_access(zipf.sample(rng), rng.next_bool(0.3)
                                            ? AccessType::kWrite
                                            : AccessType::kRead);
    ASSERT_LE(vmm.resident(Tier::kDram), vmm.frames(Tier::kDram));
    ASSERT_LE(vmm.resident(Tier::kNvm), vmm.frames(Tier::kNvm));
  }
}

TEST_P(HybridProperties, EventConservationHolds) {
  os::Vmm vmm(config_for(GetParam()));
  const auto policy = sim::make_policy(GetParam(), vmm);
  Rng rng(23);
  ZipfSampler zipf(80, 0.9);
  constexpr std::uint64_t kAccesses = 4000;
  for (std::uint64_t i = 0; i < kAccesses; ++i) {
    policy->on_access(zipf.sample(rng), rng.next_bool(0.25)
                                            ? AccessType::kWrite
                                            : AccessType::kRead);
  }
  // from_vmm internally asserts hits + faults == accesses and
  // fills == faults; reaching here means conservation held.
  const auto counts = model::EventCounts::from_vmm(vmm, kAccesses);
  EXPECT_EQ(counts.accesses, kAccesses);
}

TEST_P(HybridProperties, LatenciesAreNonNegativeAndFinite) {
  os::Vmm vmm(config_for(GetParam()));
  const auto policy = sim::make_policy(GetParam(), vmm);
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    const Nanoseconds lat =
        policy->on_access(rng.next_below(60), AccessType::kRead);
    ASSERT_GE(lat, 0.0);
    ASSERT_LT(lat, 1e9);
  }
}

TEST_P(HybridProperties, DeterministicAcrossRuns) {
  auto run = [&] {
    os::Vmm vmm(config_for(GetParam()));
    const auto policy = sim::make_policy(GetParam(), vmm);
    Rng rng(31);
    ZipfSampler zipf(64, 0.7);
    Nanoseconds total = 0;
    for (int i = 0; i < 3000; ++i) {
      total += policy->on_access(zipf.sample(rng), rng.next_bool(0.3)
                                                       ? AccessType::kWrite
                                                       : AccessType::kRead);
    }
    return total;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST_P(HybridProperties, RepeatedHitsNeverFault) {
  os::Vmm vmm(config_for(GetParam()));
  const auto policy = sim::make_policy(GetParam(), vmm);
  policy->on_access(1, AccessType::kRead);
  const auto faults_before = vmm.disk().page_ins();
  for (int i = 0; i < 100; ++i) policy->on_access(1, AccessType::kRead);
  EXPECT_EQ(vmm.disk().page_ins(), faults_before);
}

TEST_P(HybridProperties, NvmWearMatchesEventAccounting) {
  os::Vmm vmm(config_for(GetParam()));
  const auto policy = sim::make_policy(GetParam(), vmm);
  Rng rng(41);
  constexpr std::uint64_t kAccesses = 3000;
  for (std::uint64_t i = 0; i < kAccesses; ++i) {
    policy->on_access(rng.next_below(70), rng.next_bool(0.4)
                                              ? AccessType::kWrite
                                              : AccessType::kRead);
  }
  const auto counts = model::EventCounts::from_vmm(vmm, kAccesses);
  const auto writes = model::nvm_writes(counts);
  EXPECT_EQ(writes.total(), vmm.nvm_endurance().total_writes());
}

INSTANTIATE_TEST_SUITE_P(AllHybridPolicies, HybridProperties,
                         ::testing::Values("dram-only", "nvm-only",
                                           "clock-dwf", "two-lru",
                                           "two-lru-adaptive",
                                           "static-partition", "dram-cache",
                                           "rank-mq"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hymem
