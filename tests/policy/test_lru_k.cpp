#include "policy/lru_k.hpp"

#include <gtest/gtest.h>

namespace hymem::policy {
namespace {

TEST(LruK, SingleReferencePagesEvictFirst) {
  LruKPolicy p(3, 2);
  p.insert(1, AccessType::kRead);
  p.insert(2, AccessType::kRead);
  p.insert(3, AccessType::kRead);
  p.on_hit(1, AccessType::kRead);  // page 1 now has 2 references
  // Pages 2 and 3 have one reference each; 2 is older.
  EXPECT_EQ(p.select_victim(), PageId{2});
}

TEST(LruK, KthReferenceOrdersVictims) {
  LruKPolicy p(2, 2);
  p.insert(1, AccessType::kRead);  // t1
  p.insert(2, AccessType::kRead);  // t2
  p.on_hit(1, AccessType::kRead);  // t3: page1 kth = t1
  p.on_hit(2, AccessType::kRead);  // t4: page2 kth = t2
  // Both have K references; page 1's K-th reference (t1) is older.
  EXPECT_EQ(p.select_victim(), PageId{1});
  p.on_hit(1, AccessType::kRead);  // t5: page1 kth = t3 > t2
  EXPECT_EQ(p.select_victim(), PageId{2});
}

TEST(LruK, KthReferenceAccessorZeroUntilKRefs) {
  LruKPolicy p(2, 3);
  p.insert(1, AccessType::kRead);
  EXPECT_EQ(p.kth_reference(1), 0u);
  p.on_hit(1, AccessType::kRead);
  EXPECT_EQ(p.kth_reference(1), 0u);
  p.on_hit(1, AccessType::kRead);
  EXPECT_GT(p.kth_reference(1), 0u);
}

TEST(LruK, ScanResistance) {
  // A stream of one-shot pages must not displace a page with history.
  LruKPolicy p(4, 2);
  p.insert(100, AccessType::kRead);
  p.on_hit(100, AccessType::kRead);
  p.on_hit(100, AccessType::kRead);
  for (PageId scan = 0; scan < 50; ++scan) {
    if (p.full()) {
      const auto victim = p.select_victim();
      ASSERT_TRUE(victim.has_value());
      ASSERT_NE(*victim, PageId{100}) << "history page evicted by scan";
      p.erase(*victim);
    }
    p.insert(scan, AccessType::kRead);
  }
  EXPECT_TRUE(p.contains(100));
}

TEST(LruK, KEqualsOneDegeneratesToLru) {
  LruKPolicy p(3, 1);
  p.insert(1, AccessType::kRead);
  p.insert(2, AccessType::kRead);
  p.insert(3, AccessType::kRead);
  p.on_hit(1, AccessType::kRead);
  EXPECT_EQ(p.select_victim(), PageId{2});
}

TEST(LruK, MisuseDetected) {
  LruKPolicy p(1, 2);
  EXPECT_THROW(p.on_hit(1, AccessType::kRead), std::logic_error);
  p.insert(1, AccessType::kRead);
  EXPECT_THROW(p.insert(2, AccessType::kRead), std::logic_error);
  EXPECT_THROW(LruKPolicy(0, 2), std::logic_error);
  EXPECT_THROW(LruKPolicy(2, 0), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
