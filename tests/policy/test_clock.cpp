#include "policy/clock.hpp"

#include <gtest/gtest.h>

namespace hymem::policy {
namespace {

TEST(Clock, EvictsUnreferencedPage) {
  ClockPolicy clock(3);
  clock.insert(1, AccessType::kRead);
  clock.insert(2, AccessType::kRead);
  clock.insert(3, AccessType::kRead);
  // No references: the hand takes the first page it visits.
  const auto victim = clock.select_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_FALSE(clock.ref_bit(*victim));
}

TEST(Clock, SecondChanceForReferencedPages) {
  ClockPolicy clock(3);
  clock.insert(1, AccessType::kRead);
  clock.insert(2, AccessType::kRead);
  clock.insert(3, AccessType::kRead);
  clock.on_hit(1, AccessType::kRead);
  // 1 is referenced: victim must not be 1.
  const auto victim = clock.select_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_NE(*victim, PageId{1});
}

TEST(Clock, SweepClearsReferenceBits) {
  ClockPolicy clock(2);
  clock.insert(1, AccessType::kRead);
  clock.insert(2, AccessType::kRead);
  clock.on_hit(1, AccessType::kRead);
  clock.on_hit(2, AccessType::kRead);
  // All referenced: the sweep clears bits and settles on some victim.
  const auto victim = clock.select_victim();
  ASSERT_TRUE(victim.has_value());
  // After the sweep at least one bit was cleared.
  EXPECT_FALSE(clock.ref_bit(*victim));
}

TEST(Clock, AllReferencedStillTerminates) {
  ClockPolicy clock(5);
  for (PageId p = 0; p < 5; ++p) {
    clock.insert(p, AccessType::kRead);
    clock.on_hit(p, AccessType::kRead);
  }
  EXPECT_TRUE(clock.select_victim().has_value());
}

TEST(Clock, EraseAtHandPosition) {
  ClockPolicy clock(3);
  clock.insert(1, AccessType::kRead);
  clock.insert(2, AccessType::kRead);
  clock.insert(3, AccessType::kRead);
  const auto victim = clock.select_victim();
  ASSERT_TRUE(victim.has_value());
  clock.erase(*victim);  // hand pointed here
  EXPECT_EQ(clock.size(), 2u);
  EXPECT_TRUE(clock.select_victim().has_value());
}

TEST(Clock, EraseAllThenReuse) {
  ClockPolicy clock(2);
  clock.insert(1, AccessType::kRead);
  clock.insert(2, AccessType::kRead);
  clock.erase(1);
  clock.erase(2);
  EXPECT_EQ(clock.size(), 0u);
  EXPECT_FALSE(clock.select_victim().has_value());
  clock.insert(3, AccessType::kRead);
  EXPECT_EQ(clock.select_victim(), PageId{3});
}

TEST(Clock, ApproximatesLruOnSkewedStream) {
  // The frequently hit page should survive a long stream of insertions.
  ClockPolicy clock(4);
  clock.insert(100, AccessType::kRead);
  for (PageId p = 0; p < 50; ++p) {
    clock.on_hit(100, AccessType::kRead);
    if (!clock.contains(p)) {
      if (clock.full()) {
        const auto victim = clock.select_victim();
        ASSERT_TRUE(victim.has_value());
        clock.erase(*victim);
      }
      clock.insert(p, AccessType::kRead);
    }
  }
  EXPECT_TRUE(clock.contains(100));
}

TEST(Clock, MisuseDetected) {
  ClockPolicy clock(1);
  EXPECT_THROW(clock.on_hit(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(clock.ref_bit(1), std::logic_error);
  clock.insert(1, AccessType::kRead);
  EXPECT_THROW(clock.insert(1, AccessType::kRead), std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
