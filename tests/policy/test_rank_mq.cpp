#include "policy/rank_mq.hpp"

#include <gtest/gtest.h>

#include "util/random.hpp"

namespace hymem::policy {
namespace {

os::VmmConfig hybrid_config(std::uint64_t dram, std::uint64_t nvm) {
  os::VmmConfig c;
  c.dram_frames = dram;
  c.nvm_frames = nvm;
  return c;
}

TEST(RankMq, LevelOfIsLogTwo) {
  EXPECT_EQ(RankMqPolicy::level_of(0), 0u);
  EXPECT_EQ(RankMqPolicy::level_of(1), 0u);
  EXPECT_EQ(RankMqPolicy::level_of(2), 1u);
  EXPECT_EQ(RankMqPolicy::level_of(3), 1u);
  EXPECT_EQ(RankMqPolicy::level_of(4), 2u);
  EXPECT_EQ(RankMqPolicy::level_of(255), 7u);
  EXPECT_EQ(RankMqPolicy::level_of(1 << 20), RankMqPolicy::kLevels - 1);
}

TEST(RankMq, NewPagesFaultIntoNvm) {
  os::Vmm vmm(hybrid_config(2, 8));
  RankMqPolicy policy(vmm);
  policy.on_access(1, AccessType::kRead);
  EXPECT_EQ(vmm.tier_of(1), Tier::kNvm);
  EXPECT_EQ(vmm.dma_counters().disk_fills_to_dram, 0u);
}

TEST(RankMq, HotPageEarnsDram) {
  os::Vmm vmm(hybrid_config(2, 8));
  RankMqPolicy policy(vmm, /*promote_level=*/3);
  // Level 3 needs count >= 8.
  for (int i = 0; i < 6; ++i) {
    policy.on_access(1, AccessType::kRead);
    ASSERT_EQ(vmm.tier_of(1), Tier::kNvm) << "promoted too early at " << i;
  }
  for (int i = 0; i < 3; ++i) policy.on_access(1, AccessType::kRead);
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(policy.promotions(), 1u);
}

TEST(RankMq, PromotionIntoFullDramRequiresColderVictim) {
  os::Vmm vmm(hybrid_config(1, 8));
  RankMqPolicy policy(vmm, 3);
  // Make page 1 very hot: it lands in DRAM.
  for (int i = 0; i < 10; ++i) policy.on_access(1, AccessType::kRead);
  ASSERT_EQ(vmm.tier_of(1), Tier::kDram);
  // Page 2 reaches the same level: must NOT displace the equally-hot 1.
  for (int i = 0; i < 10; ++i) policy.on_access(2, AccessType::kRead);
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(vmm.tier_of(2), Tier::kNvm);
  // Page 3 gets much hotter than 1: it eventually swaps in.
  for (int i = 0; i < 300; ++i) policy.on_access(3, AccessType::kRead);
  EXPECT_EQ(vmm.tier_of(3), Tier::kDram);
  EXPECT_EQ(vmm.tier_of(1), Tier::kNvm);
  EXPECT_GT(policy.demotions(), 0u);
}

TEST(RankMq, EvictsColdestNvmOnPressure) {
  os::Vmm vmm(hybrid_config(1, 2));
  RankMqPolicy policy(vmm);
  policy.on_access(1, AccessType::kRead);
  policy.on_access(1, AccessType::kRead);  // page 1 count 2 (level 1)
  policy.on_access(2, AccessType::kRead);  // count 1 (level 0)
  policy.on_access(3, AccessType::kRead);  // NVM full: evict coldest (2)
  EXPECT_FALSE(vmm.is_resident(2));
  EXPECT_TRUE(vmm.is_resident(1)) << "higher-ranked page survived";
}

TEST(RankMq, ExpirationDecaysStalePages) {
  os::Vmm vmm(hybrid_config(2, 16));
  RankMqPolicy policy(vmm, /*promote_level=*/3, /*lifetime=*/64);
  // Heat page 1, then hammer others long enough for its rank to decay.
  for (int i = 0; i < 16; ++i) policy.on_access(1, AccessType::kRead);
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    policy.on_access(10 + rng.next_below(10), AccessType::kRead);
  }
  EXPECT_GT(policy.expirations(), 0u);
}

TEST(RankMq, CapacityInvariantsUnderChurn) {
  os::Vmm vmm(hybrid_config(3, 9));
  RankMqPolicy policy(vmm);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    policy.on_access(rng.next_below(40), rng.next_bool(0.3)
                                             ? AccessType::kWrite
                                             : AccessType::kRead);
    ASSERT_LE(vmm.resident(Tier::kDram), 3u);
    ASSERT_LE(vmm.resident(Tier::kNvm), 9u);
  }
}

TEST(RankMq, RequiresBothModules) {
  os::VmmConfig cfg;
  cfg.dram_frames = 4;
  cfg.nvm_frames = 0;
  os::Vmm vmm(cfg);
  EXPECT_THROW(RankMqPolicy{vmm}, std::logic_error);
}

}  // namespace
}  // namespace hymem::policy
