#include "os/frame_allocator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hymem::os {
namespace {

TEST(FrameAllocator, AllocatesDistinctFrames) {
  FrameAllocator alloc(4);
  std::set<FrameId> frames;
  for (int i = 0; i < 4; ++i) {
    const auto f = alloc.allocate();
    ASSERT_TRUE(f.has_value());
    EXPECT_LT(*f, 4u);
    EXPECT_TRUE(frames.insert(*f).second);
  }
  EXPECT_TRUE(alloc.full());
  EXPECT_FALSE(alloc.allocate().has_value());
}

TEST(FrameAllocator, LowFramesFirst) {
  FrameAllocator alloc(3);
  EXPECT_EQ(alloc.allocate(), FrameId{0});
  EXPECT_EQ(alloc.allocate(), FrameId{1});
}

TEST(FrameAllocator, ReleaseMakesFrameAvailable) {
  FrameAllocator alloc(1);
  const auto f = alloc.allocate();
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(alloc.full());
  alloc.release(*f);
  EXPECT_FALSE(alloc.full());
  EXPECT_EQ(alloc.allocate(), f);
}

TEST(FrameAllocator, Counts) {
  FrameAllocator alloc(5);
  EXPECT_EQ(alloc.capacity(), 5u);
  EXPECT_EQ(alloc.free_count(), 5u);
  alloc.allocate();
  alloc.allocate();
  EXPECT_EQ(alloc.allocated(), 2u);
  EXPECT_EQ(alloc.free_count(), 3u);
}

TEST(FrameAllocator, DoubleFreeDetected) {
  FrameAllocator alloc(2);
  const auto f = alloc.allocate();
  alloc.release(*f);
  EXPECT_THROW(alloc.release(*f), std::logic_error);
}

TEST(FrameAllocator, ReleaseOfNeverAllocatedDetected) {
  FrameAllocator alloc(2);
  EXPECT_THROW(alloc.release(0), std::logic_error);
  EXPECT_THROW(alloc.release(5), std::logic_error);
}

TEST(FrameAllocator, ZeroCapacity) {
  FrameAllocator alloc(0);
  EXPECT_TRUE(alloc.full());
  EXPECT_FALSE(alloc.allocate().has_value());
}

}  // namespace
}  // namespace hymem::os
