#include "os/page_table.hpp"

#include <gtest/gtest.h>

namespace hymem::os {
namespace {

TEST(PageTable, MapLookupUnmap) {
  PageTable pt;
  EXPECT_FALSE(pt.is_resident(7));
  pt.map(7, Tier::kDram, 3);
  ASSERT_TRUE(pt.is_resident(7));
  const auto entry = pt.lookup(7);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->tier(), Tier::kDram);
  EXPECT_EQ(entry->frame(), 3u);
  EXPECT_FALSE(entry->dirty());
  const auto removed = pt.unmap(7);
  EXPECT_EQ(removed.frame(), 3u);
  EXPECT_FALSE(pt.is_resident(7));
}

TEST(PageTable, ResidentCountsPerTier) {
  PageTable pt;
  pt.map(1, Tier::kDram, 0);
  pt.map(2, Tier::kNvm, 0);
  pt.map(3, Tier::kNvm, 1);
  EXPECT_EQ(pt.resident_pages(), 3u);
  EXPECT_EQ(pt.resident_in(Tier::kDram), 1u);
  EXPECT_EQ(pt.resident_in(Tier::kNvm), 2u);
  pt.unmap(2);
  EXPECT_EQ(pt.resident_in(Tier::kNvm), 1u);
}

TEST(PageTable, RemapKeepsDirtyBit) {
  PageTable pt;
  pt.map(5, Tier::kNvm, 2, /*dirty=*/true);
  pt.remap(5, Tier::kDram, 9);
  const auto entry = pt.lookup(5);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->tier(), Tier::kDram);
  EXPECT_EQ(entry->frame(), 9u);
  EXPECT_TRUE(entry->dirty());
  EXPECT_EQ(pt.resident_in(Tier::kDram), 1u);
  EXPECT_EQ(pt.resident_in(Tier::kNvm), 0u);
}

TEST(PageTable, FindAllowsInPlaceUpdate) {
  PageTable pt;
  pt.map(5, Tier::kDram, 2);
  PageTableEntry* entry = pt.find(5);
  ASSERT_NE(entry, nullptr);
  entry->mark_dirty();
  EXPECT_TRUE(pt.lookup(5)->dirty());
  EXPECT_EQ(pt.find(99), nullptr);
}

TEST(PageTable, DoubleMapRejected) {
  PageTable pt;
  pt.map(1, Tier::kDram, 0);
  EXPECT_THROW(pt.map(1, Tier::kNvm, 1), std::logic_error);
}

TEST(PageTable, UnmapMissingRejected) {
  PageTable pt;
  EXPECT_THROW(pt.unmap(1), std::logic_error);
  EXPECT_THROW(pt.remap(1, Tier::kDram, 0), std::logic_error);
}

}  // namespace
}  // namespace hymem::os
