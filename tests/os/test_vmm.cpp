#include "os/vmm.hpp"

#include <gtest/gtest.h>

namespace hymem::os {
namespace {

VmmConfig small_config() {
  VmmConfig c;
  c.dram_frames = 2;
  c.nvm_frames = 4;
  c.page_size = 4096;
  c.access_granularity = 64;
  return c;
}

TEST(Vmm, FaultInMakesResident) {
  Vmm vmm(small_config());
  EXPECT_FALSE(vmm.is_resident(1));
  const Nanoseconds lat = vmm.fault_in(1, Tier::kDram);
  EXPECT_DOUBLE_EQ(lat, 5e6);  // only the disk delay is visible
  EXPECT_TRUE(vmm.is_resident(1));
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(vmm.resident(Tier::kDram), 1u);
  EXPECT_EQ(vmm.disk().page_ins(), 1u);
}

TEST(Vmm, FaultChargesFillEnergyButNotLatency) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kNvm);
  // 64 transfer writes into NVM (energy side of Eq. 2 terms 3-4).
  EXPECT_EQ(vmm.device(Tier::kNvm).counters().transfer_writes, 64u);
  EXPECT_EQ(vmm.device(Tier::kNvm).counters().demand_writes, 0u);
}

TEST(Vmm, AccessLatenciesMatchTechnology) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kDram);
  vmm.fault_in(2, Tier::kNvm);
  EXPECT_DOUBLE_EQ(vmm.access(1, AccessType::kRead), 50);
  EXPECT_DOUBLE_EQ(vmm.access(1, AccessType::kWrite), 50);
  EXPECT_DOUBLE_EQ(vmm.access(2, AccessType::kRead), 100);
  EXPECT_DOUBLE_EQ(vmm.access(2, AccessType::kWrite), 350);
  EXPECT_EQ(vmm.device(Tier::kDram).counters().demand_reads, 1u);
  EXPECT_EQ(vmm.device(Tier::kNvm).counters().demand_writes, 1u);
}

TEST(Vmm, WriteSetsDirtyAndEvictionPagesOut) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kDram);
  vmm.access(1, AccessType::kWrite);
  vmm.evict(1);
  EXPECT_EQ(vmm.disk().page_outs(), 1u);
  EXPECT_FALSE(vmm.is_resident(1));
}

TEST(Vmm, CleanEvictionDoesNotPageOut) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kDram);
  vmm.access(1, AccessType::kRead);
  vmm.evict(1);
  EXPECT_EQ(vmm.disk().page_outs(), 0u);
}

TEST(Vmm, TouchDirtyWithoutAccessCounting) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kDram);
  vmm.touch_dirty(1);
  EXPECT_EQ(vmm.device(Tier::kDram).counters().demand_writes, 0u);
  vmm.evict(1);
  EXPECT_EQ(vmm.disk().page_outs(), 1u);
}

TEST(Vmm, MigrateMovesAndCharges) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kNvm);
  const Nanoseconds lat = vmm.migrate(1, Tier::kDram);
  // 64 NVM reads + 64 DRAM writes.
  EXPECT_DOUBLE_EQ(lat, 64 * 100.0 + 64 * 50.0);
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(vmm.dma_counters().migrations_nvm_to_dram, 1u);
  EXPECT_EQ(vmm.resident(Tier::kNvm), 0u);
  EXPECT_EQ(vmm.resident(Tier::kDram), 1u);
}

TEST(Vmm, MigrationFreesSourceFrame) {
  VmmConfig cfg = small_config();
  cfg.nvm_frames = 1;
  Vmm vmm(cfg);
  vmm.fault_in(1, Tier::kNvm);
  EXPECT_FALSE(vmm.has_free_frame(Tier::kNvm));
  vmm.migrate(1, Tier::kDram);
  EXPECT_TRUE(vmm.has_free_frame(Tier::kNvm));
}

TEST(Vmm, SwapExchangesTiers) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kNvm);
  vmm.fault_in(2, Tier::kDram);
  const Nanoseconds lat = vmm.swap(1, 2);
  // One migration each way.
  EXPECT_DOUBLE_EQ(lat, (64 * 100.0 + 64 * 50.0) + (64 * 50.0 + 64 * 350.0));
  EXPECT_EQ(vmm.tier_of(1), Tier::kDram);
  EXPECT_EQ(vmm.tier_of(2), Tier::kNvm);
  EXPECT_EQ(vmm.dma_counters().migrations_nvm_to_dram, 1u);
  EXPECT_EQ(vmm.dma_counters().migrations_dram_to_nvm, 1u);
}

TEST(Vmm, SwapWorksWithBothModulesFull) {
  VmmConfig cfg = small_config();
  cfg.dram_frames = 1;
  cfg.nvm_frames = 1;
  Vmm vmm(cfg);
  vmm.fault_in(1, Tier::kDram);
  vmm.fault_in(2, Tier::kNvm);
  EXPECT_NO_THROW(vmm.swap(2, 1));
  EXPECT_EQ(vmm.tier_of(2), Tier::kDram);
  EXPECT_EQ(vmm.tier_of(1), Tier::kNvm);
}

TEST(Vmm, EnduranceTracksAllNvmWriteSources) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kNvm);  // 64 fault-fill writes
  vmm.access(1, AccessType::kWrite);  // 1 demand write
  vmm.fault_in(2, Tier::kDram);
  vmm.migrate(2, Tier::kNvm);  // 64 migration writes
  const auto& endurance = vmm.nvm_endurance();
  EXPECT_EQ(endurance.writes_from(mem::NvmWriteSource::kPageFault), 64u);
  EXPECT_EQ(endurance.writes_from(mem::NvmWriteSource::kDemandWrite), 1u);
  EXPECT_EQ(endurance.writes_from(mem::NvmWriteSource::kMigration), 64u);
  EXPECT_EQ(endurance.total_writes(), 129u);
}

TEST(Vmm, WearLevelingSpreadsAcrossSpareSlot) {
  VmmConfig cfg = small_config();
  cfg.wear_leveling = true;
  cfg.wear_gap_interval = 1;
  Vmm vmm(cfg);
  vmm.fault_in(1, Tier::kNvm);
  for (int i = 0; i < 50; ++i) vmm.access(1, AccessType::kWrite);
  // With rotation every write, the hot page's wear spreads over slots.
  EXPECT_LT(vmm.nvm_endurance().wear_imbalance(), 60.0);
  EXPECT_GT(vmm.nvm_endurance().total_writes(), 50u);
}

TEST(Vmm, PreconditionsEnforced) {
  Vmm vmm(small_config());
  EXPECT_THROW(vmm.access(1, AccessType::kRead), std::logic_error);
  EXPECT_THROW(vmm.migrate(1, Tier::kDram), std::logic_error);
  EXPECT_THROW(vmm.evict(1), std::logic_error);
  vmm.fault_in(1, Tier::kDram);
  EXPECT_THROW(vmm.fault_in(1, Tier::kDram), std::logic_error);
  EXPECT_THROW(vmm.migrate(1, Tier::kDram), std::logic_error);  // same tier
}

TEST(Vmm, FaultIntoFullModuleRejected) {
  VmmConfig cfg = small_config();
  cfg.dram_frames = 1;
  Vmm vmm(cfg);
  vmm.fault_in(1, Tier::kDram);
  EXPECT_THROW(vmm.fault_in(2, Tier::kDram), std::logic_error);
}

TEST(Vmm, PageFactorDerived) {
  Vmm vmm(small_config());
  EXPECT_EQ(vmm.page_factor(), 64u);
}


TEST(Vmm, SwapPreservesDirtyBits) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kNvm);
  vmm.fault_in(2, Tier::kDram);
  vmm.access(1, AccessType::kWrite);  // 1 dirty in NVM
  vmm.swap(1, 2);                     // 1 -> DRAM, 2 -> NVM
  vmm.evict(1);
  EXPECT_EQ(vmm.disk().page_outs(), 1u) << "dirty bit must travel with 1";
  vmm.evict(2);
  EXPECT_EQ(vmm.disk().page_outs(), 1u) << "2 was never written";
}

TEST(Vmm, ResetAccountingKeepsResidency) {
  Vmm vmm(small_config());
  vmm.fault_in(1, Tier::kDram);
  vmm.access(1, AccessType::kWrite);
  vmm.reset_accounting();
  EXPECT_TRUE(vmm.is_resident(1));
  EXPECT_EQ(vmm.device(Tier::kDram).counters().total(), 0u);
  EXPECT_EQ(vmm.disk().page_ins(), 0u);
  EXPECT_EQ(vmm.nvm_endurance().total_writes(), 0u);
  // Dirty state survives the counter reset.
  vmm.evict(1);
  EXPECT_EQ(vmm.disk().page_outs(), 1u);
}

}  // namespace
}  // namespace hymem::os
