#include "os/tlb.hpp"

#include <gtest/gtest.h>

namespace hymem::os {
namespace {

TlbConfig tiny() { return {.entries = 8, .associativity = 2}; }

TEST(Tlb, MissThenHit) {
  Tlb tlb(tiny());
  EXPECT_FALSE(tlb.lookup(5));
  EXPECT_TRUE(tlb.lookup(5));
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(tlb.stats().hit_ratio(), 0.5);
}

TEST(Tlb, LruEvictionWithinSet) {
  Tlb tlb(tiny());  // 4 sets, 2 ways; pages with equal low bits share a set
  tlb.lookup(0);
  tlb.lookup(4);
  tlb.lookup(0);   // 4 becomes set-LRU
  tlb.lookup(8);   // evicts 4
  EXPECT_TRUE(tlb.lookup(0));
  EXPECT_FALSE(tlb.lookup(4));
}

TEST(Tlb, ShootdownInvalidates) {
  Tlb tlb(tiny());
  tlb.lookup(3);
  EXPECT_TRUE(tlb.shootdown(3));
  EXPECT_FALSE(tlb.shootdown(3)) << "second shootdown finds nothing";
  EXPECT_FALSE(tlb.lookup(3)) << "entry gone after shootdown";
  EXPECT_EQ(tlb.stats().shootdowns, 1u);
}

TEST(Tlb, FlushDropsAll) {
  Tlb tlb(tiny());
  for (PageId p = 0; p < 6; ++p) tlb.lookup(p);
  EXPECT_GT(tlb.valid_entries(), 0u);
  tlb.flush();
  EXPECT_EQ(tlb.valid_entries(), 0u);
}

TEST(Tlb, DistinctSetsDoNotInterfere) {
  Tlb tlb(tiny());
  tlb.lookup(0);
  tlb.lookup(1);  // different set
  tlb.lookup(4);
  tlb.lookup(8);  // churns set 0 only
  EXPECT_TRUE(tlb.lookup(1));
}

TEST(Tlb, HighLocalityStreamHitsOften) {
  Tlb tlb(TlbConfig{.entries = 64, .associativity = 4});
  for (int round = 0; round < 100; ++round) {
    for (PageId p = 0; p < 32; ++p) tlb.lookup(p);
  }
  EXPECT_GT(tlb.stats().hit_ratio(), 0.95);
}

TEST(Tlb, InvalidGeometryRejected) {
  EXPECT_THROW(Tlb(TlbConfig{.entries = 0, .associativity = 1}),
               std::logic_error);
  EXPECT_THROW(Tlb(TlbConfig{.entries = 7, .associativity = 2}),
               std::logic_error);
  EXPECT_THROW(Tlb(TlbConfig{.entries = 24, .associativity = 4}),
               std::logic_error);  // 6 sets: not a power of two
}

}  // namespace
}  // namespace hymem::os
