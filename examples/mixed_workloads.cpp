// Co-scheduled workloads: interleave two PARSEC traces (a quad-core server
// runs more than one job) and see how the migration policies behave when a
// migration-friendly and a migration-hostile application share the hybrid
// memory — the interference case single-workload figures cannot show.
//
//   $ mixed_workloads [--a ferret] [--b canneal] [--scale 128] [--burst 64]
#include <iostream>

#include "sim/experiment.hpp"
#include "synth/generator.hpp"
#include "synth/workload_profile.hpp"
#include "trace/transform.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hymem;

namespace {

trace::Trace offset_pages(const trace::Trace& in, Addr offset_bytes) {
  trace::Trace out(in.name());
  out.reserve(in.size());
  for (const auto& a : in) out.append(a.addr + offset_bytes, a.type, a.core);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string name_a = args.get("a", "ferret");
  const std::string name_b = args.get("b", "canneal");
  const std::uint64_t scale = args.get_uint("scale", 128);
  const std::size_t burst = args.get_uint("burst", 64);

  const auto profile_a = synth::parsec_profile(name_a).scaled(scale);
  const auto profile_b = synth::parsec_profile(name_b).scaled(scale);
  synth::GeneratorOptions options;
  options.seed = args.get_uint("seed", 42);

  const auto trace_a = synth::generate(profile_a, options);
  // Give B its own address-space region so the footprints do not collide.
  const auto trace_b = offset_pages(synth::generate(profile_b, options),
                                    1ULL << 40);
  const trace::Trace* sources[] = {&trace_a, &trace_b};
  const auto mixed =
      trace::interleave(sources, burst, name_a + "+" + name_b);

  std::cout << "Co-scheduled " << name_a << " + " << name_b << " ("
            << mixed.size() << " interleaved accesses, burst " << burst
            << ")\n\n";

  TextTable table({"policy", "APPR (nJ)", "AMAT (ns)", "mig/kacc",
                   "NVM writes"});
  const double duration =
      profile_a.roi_seconds + profile_b.roi_seconds;
  for (const char* policy :
       {"dram-only", "clock-dwf", "rank-mq", "two-lru"}) {
    sim::ExperimentConfig config;
    config.policy = policy;
    const auto r = sim::run_experiment(mixed, duration, config);
    table.add_row(
        {policy, TextTable::fmt(r.appr().total(), 2),
         TextTable::fmt(r.amat().total(), 1),
         TextTable::fmt(1000.0 * static_cast<double>(r.counts.migrations()) /
                            static_cast<double>(r.accesses),
                        2),
         std::to_string(r.nvm_writes().total())});
  }
  std::cout << table.to_string();
  std::cout << "\nThe hostile co-runner (" << name_b
            << ") inflates every policy's migration traffic; the threshold"
               "\nscheme degrades the least because its windows filter the"
               " co-runner's churn.\n";
  return 0;
}
