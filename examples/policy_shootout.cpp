// Policy shootout: run every hybrid-memory policy in the suite on one
// workload and compare power, performance, endurance and migration traffic
// side by side — the "which policy should I use for my workload?" view a
// downstream user wants first. The per-policy runs fan out across worker
// threads; the table is identical for any `--jobs` value.
//
//   $ policy_shootout [--workload bodytrack] [--scale 64] [--jobs N]
#include <iostream>
#include <vector>

#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "synth/workload_profile.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string workload = args.get("workload", "bodytrack");
  const std::uint64_t scale = args.get_uint("scale", 64);
  const auto jobs = static_cast<unsigned>(
      args.get_uint("jobs", runner::ThreadPool::default_threads()));

  std::cout << "Policy comparison on " << workload << " (scale 1/" << scale
            << ", memory = 75% of footprint, DRAM = 10% of memory)\n\n";

  runner::SweepSpec spec;
  spec.workloads = {synth::parsec_profile(workload)};
  spec.policies = {"dram-only", "nvm-only", "static-partition", "dram-cache",
                   "rank-mq",   "clock-dwf", "two-lru", "two-lru-adaptive"};
  spec.scale = scale;
  // kShared: every policy replays the identical trace — a fair comparison.
  spec.seed_mode = runner::SeedMode::kShared;
  runner::SweepOptions options;
  options.jobs = jobs;
  const auto sweep = runner::run_sweep(spec, options);
  sweep.write_failures(std::cerr);

  TextTable table({"policy", "APPR (nJ)", "AMAT (ns)", "hit%", "mig/kacc",
                   "NVM writes", "dirty evictions"});
  for (const auto& job : sweep.jobs) {
    if (!job.ok) continue;
    const auto& r = job.result;
    const double hit_pct = 100.0 * static_cast<double>(r.counts.hits()) /
                           static_cast<double>(r.accesses);
    const double mig_per_kacc =
        1000.0 * static_cast<double>(r.counts.migrations()) /
        static_cast<double>(r.accesses);
    table.add_row({job.job.policy, TextTable::fmt(r.appr().total(), 2),
                   TextTable::fmt(r.amat().total(), 1),
                   TextTable::fmt(hit_pct, 3),
                   TextTable::fmt(mig_per_kacc, 2),
                   std::to_string(r.nvm_writes().total()),
                   std::to_string(r.counts.dirty_evictions)});
  }
  std::cout << table.to_string();
  std::cout << "\nReading guide: 'two-lru' should roughly halve APPR vs"
               " 'dram-only'\nwhile keeping AMAT near 'dram-only' and NVM"
               " writes far below 'nvm-only'.\n";
  return sweep.failures() == 0 ? 0 : 1;
}
