// trace_tool: command-line utility for working with hymem trace files —
// the adoption path for users who have their own captures (e.g. from a
// real COTSon/valgrind/pin run) and want to feed them to the simulator.
//
//   trace_tool gen --workload ferret --scale 64 --out ferret.trc
//   trace_tool info ferret.trc
//   trace_tool convert ferret.trc ferret.txt
//   trace_tool downsample ferret.trc small.trc --stride 16
//   trace_tool sim ferret.trc --policy two-lru [--duration 0.5]
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/results_io.hpp"
#include "synth/generator.hpp"
#include "synth/workload_profile.hpp"
#include "trace/phase_detect.hpp"
#include "trace/reuse_distance.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "trace/transform.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hymem;

namespace {

int usage() {
  std::cerr << "usage: trace_tool <gen|info|convert|downsample|sim> ...\n"
               "  gen        --workload NAME [--scale N] [--seed S] --out F\n"
               "  info       FILE\n"
               "  convert    IN OUT        (.trc = binary, else text)\n"
               "  downsample IN OUT --stride N\n"
               "  sim        FILE [--policy NAME] [--duration SECONDS] [--json]\n";
  return 2;
}

int cmd_gen(const CliArgs& args) {
  const auto profile =
      synth::parsec_profile(args.get("workload", "ferret"))
          .scaled(args.get_uint("scale", 64));
  synth::GeneratorOptions options;
  options.seed = args.get_uint("seed", 42);
  const auto trace = synth::generate(profile, options);
  const std::string out = args.get("out", profile.name + ".trc");
  trace::save(trace, out);
  std::cout << "wrote " << trace.size() << " accesses to " << out << "\n";
  return 0;
}

int cmd_info(const CliArgs& args) {
  const auto trace = trace::load(args.positional().at(1));
  const auto stats = trace::characterize(trace, 4096);
  std::cout << "name         : " << trace.name() << "\n"
            << "accesses     : " << stats.accesses << " (" << stats.reads
            << " R / " << stats.writes << " W)\n"
            << "footprint    : " << stats.distinct_pages << " pages ("
            << stats.working_set_kb() << " KB)\n"
            << "write-dominant pages: " << stats.write_dominant_pages << "\n";
  trace::ReuseDistanceAnalyzer rd(4096);
  rd.observe(trace);
  const auto p75 = static_cast<std::uint64_t>(
      0.75 * static_cast<double>(stats.distinct_pages));
  if (p75 > 0) {
    std::cout << "LRU hit ratio at 75% of footprint: "
              << TextTable::fmt(100.0 * rd.lru_hit_ratio(p75), 3) << "%\n";
  }
  trace::PhaseDetector phases(4096);
  phases.observe(trace);
  std::cout << "phases       : " << phases.phase_count() << "\n";
  return 0;
}

int cmd_convert(const CliArgs& args) {
  const auto trace = trace::load(args.positional().at(1));
  trace::save(trace, args.positional().at(2));
  std::cout << "converted " << trace.size() << " accesses\n";
  return 0;
}

int cmd_downsample(const CliArgs& args) {
  const auto trace = trace::load(args.positional().at(1));
  const auto out = trace::downsample(trace, args.get_uint("stride", 16));
  trace::save(out, args.positional().at(2));
  std::cout << trace.size() << " -> " << out.size() << " accesses\n";
  return 0;
}

int cmd_sim(const CliArgs& args) {
  const auto trace = trace::load(args.positional().at(1));
  sim::ExperimentConfig config;
  config.policy = args.get("policy", "two-lru");
  const double duration = args.get_double("duration", 1.0);
  const auto result = sim::run_experiment(trace, duration, config);
  if (args.get_bool("json", false)) {
    sim::write_json(result, std::cout);
    std::cout << "\n";
    return 0;
  }
  std::cout << "policy " << result.policy << " on " << result.accesses
            << " accesses:\n"
            << "  AMAT " << TextTable::fmt(result.amat().total(), 1)
            << " ns, APPR " << TextTable::fmt(result.appr().total(), 2)
            << " nJ, migrations " << result.counts.migrations()
            << ", NVM writes " << result.nvm_writes().total() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& cmd = args.positional().front();
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "downsample") return cmd_downsample(args);
    if (cmd == "sim") return cmd_sim(args);
  } catch (const std::exception& e) {
    std::cerr << "trace_tool: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
