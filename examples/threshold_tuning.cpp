// Threshold tuning: sweep the migration thresholds on a workload and watch
// the trade-off the paper's Section IV describes ("the values of
// read_threshold and write_threshold determine how aggressive we plan to
// prevent the migrations with low probability of being useful"), then let
// the adaptive controller (the paper's future-work extension) find its own
// operating point.
//
//   $ threshold_tuning [--workload raytrace] [--scale 128]
#include <iostream>

#include "core/migration_scheme.hpp"
#include "sim/experiment.hpp"
#include "synth/workload_profile.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string workload = args.get("workload", "raytrace");
  const std::uint64_t scale = args.get_uint("scale", 128);
  const auto& profile = synth::parsec_profile(workload);

  std::cout << "Threshold sweep on " << workload << "\n\n";
  TextTable table({"read_thr", "write_thr", "promotions", "APPR (nJ)",
                   "AMAT (ns)"});
  double best_power = 1e300;
  std::uint64_t best_thr = 0;
  for (std::uint64_t thr : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 128ULL}) {
    sim::ExperimentConfig config;
    config.policy = "two-lru";
    config.migration.read_threshold = thr;
    config.migration.write_threshold = 2 * thr;
    const auto r = sim::run_workload(profile, scale, config);
    table.add_row({std::to_string(thr), std::to_string(2 * thr),
                   std::to_string(r.counts.migrations_to_dram),
                   TextTable::fmt(r.appr().total(), 2),
                   TextTable::fmt(r.amat().total(), 1)});
    if (r.appr().total() < best_power) {
      best_power = r.appr().total();
      best_thr = thr;
    }
  }
  std::cout << table.to_string();
  std::cout << "\nbest fixed read threshold for " << workload << ": "
            << best_thr << " (APPR " << TextTable::fmt(best_power, 2)
            << " nJ)\n\n";

  // Adaptive controller run: report where it settles.
  sim::ExperimentConfig adaptive;
  adaptive.policy = "two-lru-adaptive";
  const auto r = sim::run_workload(profile, scale, adaptive);
  std::cout << "adaptive controller: APPR " << TextTable::fmt(r.appr().total(), 2)
            << " nJ, AMAT " << TextTable::fmt(r.amat().total(), 1) << " ns\n"
            << "(break-even for Table IV technologies: "
            << core::AdaptiveThresholdController::break_even(
                   mem::dram_table4(), mem::pcm_table4(), 64)
            << " DRAM hits amortize one promotion round trip)\n";
  return 0;
}
