// Workload explorer: characterize a workload the way Section III does —
// Table III columns, per-page popularity skew, reuse-distance profile and
// the LRU miss-ratio curve that determines how the paper's 75%/10% memory
// sizing will behave.
//
//   $ workload_explorer [--workload canneal] [--scale 256] [--csv]
#include <iostream>

#include "synth/generator.hpp"
#include "synth/workload_profile.hpp"
#include "trace/phase_detect.hpp"
#include "trace/reuse_distance.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string workload = args.get("workload", "canneal");
  const std::uint64_t scale = args.get_uint("scale", 256);
  const auto profile = synth::parsec_profile(workload).scaled(scale);

  synth::GeneratorOptions options;
  options.seed = args.get_uint("seed", 42);
  const auto trace = synth::generate(profile, options);

  // --- Table III style characterization -----------------------------------
  trace::TraceCharacterizer characterizer(options.page_size);
  characterizer.observe(trace);
  const auto stats = characterizer.stats();
  std::cout << "== " << workload << " (x1/" << scale << ") ==\n"
            << "working set : " << stats.working_set_kb() << " KB ("
            << stats.distinct_pages << " pages)\n"
            << "accesses    : " << stats.accesses << "  (" << stats.reads
            << " reads / " << stats.writes << " writes, "
            << TextTable::fmt(100 * stats.write_fraction(), 1) << "% writes)\n"
            << "write-dominant pages: " << stats.write_dominant_pages << "\n\n";

  // --- Popularity skew ------------------------------------------------------
  const auto ranked = characterizer.ranked_pages();
  std::uint64_t cum = 0;
  std::size_t pages_for_half = 0;
  for (const auto& [page, prof] : ranked) {
    cum += prof.total();
    ++pages_for_half;
    if (cum * 2 >= stats.accesses) break;
  }
  std::cout << "hottest " << pages_for_half << " pages ("
            << TextTable::fmt(100.0 * static_cast<double>(pages_for_half) /
                                  static_cast<double>(stats.distinct_pages),
                              1)
            << "% of footprint) absorb 50% of all accesses\n\n";

  // --- Phase structure -------------------------------------------------------
  trace::PhaseDetectorConfig phase_config;
  phase_config.window_accesses = std::max<std::uint64_t>(1024, trace.size() / 64);
  phase_config.similarity_threshold = 0.6;
  trace::PhaseDetector phases(options.page_size, phase_config);
  phases.observe(trace);
  std::cout << "phase structure: " << phases.phase_count()
            << " phase(s) at window " << phase_config.window_accesses
            << " (working-set signature similarity threshold 0.6)\n\n";

  // --- Reuse distances and the miss-ratio curve ----------------------------
  trace::ReuseDistanceAnalyzer rd(options.page_size);
  rd.observe(trace);
  std::cout << "reuse-distance histogram (log2 buckets, finite reuses):\n"
            << rd.histogram().to_string() << '\n';

  TextTable curve({"capacity (pages)", "capacity/footprint", "LRU hit %"});
  for (double fraction : {0.05, 0.10, 0.25, 0.50, 0.75, 1.00}) {
    const auto capacity = static_cast<std::uint64_t>(
        fraction * static_cast<double>(stats.distinct_pages));
    if (capacity == 0) continue;
    curve.add_row({std::to_string(capacity), TextTable::fmt(fraction, 2),
                   TextTable::fmt(100.0 * rd.lru_hit_ratio(capacity), 2)});
  }
  std::cout << curve.to_string();
  std::cout << "\nThe paper sizes memory at 0.75 of the footprint: the gap"
               "\nbetween the 0.75 row and 100% is the steady-state fault"
               " rate\nany policy must pay.\n";
  return 0;
}
