// Quickstart: simulate one workload on a hybrid DRAM-NVM memory with the
// paper's proposed two-LRU migration scheme and print the Eq. 1/2 metrics.
//
//   $ quickstart [--workload facesim] [--policy two-lru] [--scale 64]
//
// This is the smallest end-to-end use of the public API:
//   profile -> synthetic trace -> sized hybrid memory -> policy -> models.
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/policy_factory.hpp"
#include "synth/workload_profile.hpp"
#include "util/cli.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string workload = args.get("workload", "facesim");
  const std::string policy = args.get("policy", "two-lru");
  const std::uint64_t scale = args.get_uint("scale", 64);

  // 1. Pick a workload (Table III calibrated) and an experiment config
  //    (the paper's sizing: memory = 75% of footprint, DRAM = 10% of it).
  const auto& profile = synth::parsec_profile(workload);
  sim::ExperimentConfig config;
  config.policy = policy;

  // 2. Run: generates the trace, sizes the memory, warms up, measures.
  const sim::RunResult result = sim::run_workload(profile, scale, config);

  // 3. Read out the models.
  const auto amat = result.amat();
  const auto power = result.appr();
  const auto writes = result.nvm_writes();

  std::cout << "workload : " << result.workload << " (x1/" << scale << ")\n"
            << "policy   : " << result.policy << "\n"
            << "accesses : " << result.accesses << "\n"
            << "faults   : " << result.counts.page_faults << "\n"
            << "migrations " << result.counts.migrations_to_dram << " to DRAM, "
            << result.counts.migrations_to_nvm << " to NVM\n\n"
            << "AMAT (Eq.1): " << amat.total() << " ns"
            << "  [hits " << amat.hit_ns << ", faults " << amat.fault_ns
            << ", migrations " << amat.migration_ns << "]\n"
            << "APPR (Eq.2+3): " << power.total() << " nJ/request"
            << "  [static " << power.static_nj << ", hits " << power.hit_nj
            << ", fills " << power.fault_fill_nj << ", migrations "
            << power.migration_nj << "]\n"
            << "NVM writes: " << writes.total() << "  [demand "
            << writes.demand_writes << ", fills " << writes.fault_fill_writes
            << ", migrations " << writes.migration_writes << "]\n";
  return 0;
}
