// Full-pipeline example: a multi-core CPU-level stream is filtered through
// the Table II cache hierarchy (the COTSon stand-in) and the surviving
// main-memory accesses drive the hybrid memory — the complete methodology
// of the paper in one program.
//
//   $ cache_filter_pipeline [--cores 4] [--accesses 200000] [--policy two-lru]
#include <iostream>

#include "cachesim/hierarchy.hpp"
#include "sim/experiment.hpp"
#include "synth/cpu_stream.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace hymem;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  synth::CpuStreamOptions cpu_opts;
  cpu_opts.cores = static_cast<unsigned>(args.get_uint("cores", 4));
  cpu_opts.accesses_per_core = args.get_uint("accesses", 200000);
  cpu_opts.private_bytes = args.get_uint("private-kb", 8192) * 1024;
  cpu_opts.shared_bytes = args.get_uint("shared-kb", 2048) * 1024;
  cpu_opts.seed = args.get_uint("seed", 7);

  std::cout << "1) generating CPU-level stream: " << cpu_opts.cores
            << " cores x " << cpu_opts.accesses_per_core << " accesses\n";
  const auto cpu_trace = synth::generate_cpu_stream(cpu_opts);

  std::cout << "2) filtering through the Table II hierarchy (32KB L1 x"
            << cpu_opts.cores << ", 2MB shared LLC, MESI)\n";
  cachesim::HierarchyStats hstats;
  const auto mem_trace =
      cachesim::Hierarchy::filter(cpu_trace, cachesim::HierarchyConfig{}, &hstats);
  std::cout << "   L1 hit " << TextTable::fmt(100 * hstats.l1_hit_ratio(), 1)
            << "%, LLC hit " << TextTable::fmt(100 * hstats.llc_hit_ratio(), 1)
            << "%, invalidations " << hstats.invalidations
            << ", dirty LLC writebacks " << hstats.llc_writebacks << "\n   "
            << cpu_trace.size() << " CPU accesses -> " << mem_trace.size()
            << " memory accesses ("
            << TextTable::fmt(100 * hstats.memory_filter_ratio(), 2) << "%)\n";

  std::cout << "3) replaying the memory trace on the hybrid memory\n";
  sim::ExperimentConfig config;
  config.policy = args.get("policy", "two-lru");
  const auto result = sim::run_experiment(mem_trace, /*duration_s=*/0.05, config);

  std::cout << "   policy " << result.policy << ": AMAT "
            << TextTable::fmt(result.amat().total(), 1) << " ns, APPR "
            << TextTable::fmt(result.appr().total(), 2) << " nJ, migrations "
            << result.counts.migrations() << ", NVM writes "
            << result.nvm_writes().total() << "\n";
  return 0;
}
