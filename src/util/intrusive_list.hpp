// Intrusive doubly-linked list used for the LRU/CLOCK queues.
//
// The migration policies move pages between queue positions on every access;
// an intrusive list gives O(1) splice/erase with zero allocation per
// operation, and — crucially for the proposed scheme — stable node addresses
// so per-page metadata can live next to the link fields.
#pragma once

#include <cstddef>

#include "util/check.hpp"

namespace hymem {

/// Embed one of these in your node type.
struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  bool is_linked() const { return prev != nullptr; }
};

/// Intrusive list over T, where T derives from (or contains as first member)
/// ListHook reachable via HookOf. Head = most-recently-used by convention.
template <typename T, ListHook T::* Hook>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return sentinel_.next == &sentinel_; }
  std::size_t size() const { return size_; }

  /// Inserts node at the front (MRU position). Node must be unlinked.
  void push_front(T& node) {
    ListHook& h = node.*Hook;
    HYMEM_CHECK_MSG(!h.is_linked(), "node already linked");
    insert_after(&sentinel_, &h);
    ++size_;
  }

  /// Inserts node at the back (LRU position). Node must be unlinked.
  void push_back(T& node) {
    ListHook& h = node.*Hook;
    HYMEM_CHECK_MSG(!h.is_linked(), "node already linked");
    insert_after(sentinel_.prev, &h);
    ++size_;
  }

  /// Inserts `node` immediately before `pos` (pos must be linked here).
  void insert_before(T& pos, T& node) {
    ListHook& h = node.*Hook;
    HYMEM_CHECK_MSG(!h.is_linked(), "node already linked");
    insert_after((pos.*Hook).prev, &h);
    ++size_;
  }

  /// Unlinks node from the list.
  void erase(T& node) {
    ListHook& h = node.*Hook;
    HYMEM_CHECK_MSG(h.is_linked(), "node not linked");
    h.prev->next = h.next;
    h.next->prev = h.prev;
    h.prev = nullptr;
    h.next = nullptr;
    --size_;
  }

  /// Moves an already-linked node to the front. This is the per-hit
  /// operation of every LRU queue, so it splices directly (no unlink /
  /// relink round trip, no size bookkeeping) and skips the no-op case.
  void move_to_front(T& node) {
    ListHook& h = node.*Hook;
    HYMEM_CHECK_MSG(h.is_linked(), "node not linked");
    if (sentinel_.next == &h) return;
    h.prev->next = h.next;
    h.next->prev = h.prev;
    insert_after(&sentinel_, &h);
  }

  /// Moves an already-linked node to the back.
  void move_to_back(T& node) {
    ListHook& h = node.*Hook;
    HYMEM_CHECK_MSG(h.is_linked(), "node not linked");
    if (sentinel_.prev == &h) return;
    h.prev->next = h.next;
    h.next->prev = h.prev;
    insert_after(sentinel_.prev, &h);
  }

  T* front() { return empty() ? nullptr : owner(sentinel_.next); }
  T* back() { return empty() ? nullptr : owner(sentinel_.prev); }
  const T* front() const { return empty() ? nullptr : owner(sentinel_.next); }
  const T* back() const { return empty() ? nullptr : owner(sentinel_.prev); }

  /// Node after `node` (towards LRU end), or nullptr at the end.
  T* next(T& node) {
    ListHook* n = (node.*Hook).next;
    return n == &sentinel_ ? nullptr : owner(n);
  }
  const T* next(const T& node) const {
    const ListHook* n = (node.*Hook).next;
    return n == &sentinel_ ? nullptr : owner(n);
  }

  /// Node before `node` (towards MRU end), or nullptr at the front.
  T* prev(T& node) {
    ListHook* p = (node.*Hook).prev;
    return p == &sentinel_ ? nullptr : owner(p);
  }
  const T* prev(const T& node) const {
    const ListHook* p = (node.*Hook).prev;
    return p == &sentinel_ ? nullptr : owner(p);
  }

  /// Pops and returns the back (LRU victim), or nullptr when empty.
  T* pop_back() {
    if (empty()) return nullptr;
    T* victim = back();
    erase(*victim);
    return victim;
  }

  /// Calls fn(T&) front-to-back. fn must not mutate the list.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (ListHook* h = sentinel_.next; h != &sentinel_; h = h->next) {
      fn(*owner(h));
    }
  }

 private:
  static void insert_after(ListHook* where, ListHook* h) {
    h->prev = where;
    h->next = where->next;
    where->next->prev = h;
    where->next = h;
  }

  static T* owner(ListHook* h) {
    // Standard-layout offset computation; T must be standard-layout or the
    // hook must be a direct member (true for all hymem node types).
    const auto offset = reinterpret_cast<std::size_t>(
        &(static_cast<T*>(nullptr)->*Hook));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - offset);
  }
  static const T* owner(const ListHook* h) {
    return owner(const_cast<ListHook*>(h));
  }

  ListHook sentinel_;
  std::size_t size_ = 0;
};

}  // namespace hymem
