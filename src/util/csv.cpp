#include "util/csv.hpp"

namespace hymem {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace hymem
