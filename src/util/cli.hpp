// Tiny command-line flag parser for the bench harnesses and examples.
// Supports --flag=value, --flag value, and boolean --flag.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hymem {

/// Parses argv into named flags and positional arguments.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;

  /// Names of every flag present on the command line, sorted (strict
  /// harnesses diff this against their known-flag list).
  std::vector<std::string> flag_names() const;

  /// Returns the flag's value, or `def` when absent.
  std::string get(const std::string& name, const std::string& def = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  std::uint64_t get_uint(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hymem
