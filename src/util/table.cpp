#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace hymem {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  HYMEM_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  HYMEM_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 != row.size()) os << "  ";
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace hymem
