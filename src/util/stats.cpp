#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hymem {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double arithmetic_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    HYMEM_CHECK_MSG(x > 0.0, "geometric mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double quantile(std::vector<double> xs, double p) {
  HYMEM_CHECK(!xs.empty());
  HYMEM_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace hymem
