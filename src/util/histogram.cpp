#include "util/histogram.hpp"

#include <bit>
#include <sstream>

#include "util/check.hpp"

namespace hymem {

std::size_t Log2Histogram::bucket_index(std::uint64_t value) {
  if (value == 0) return 0;
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t Log2Histogram::bucket_lo(std::size_t idx) {
  if (idx == 0) return 0;
  return 1ULL << (idx - 1);
}

std::uint64_t Log2Histogram::bucket_hi(std::size_t idx) {
  if (idx == 0) return 0;
  if (idx >= 64) return ~0ULL;
  return (1ULL << idx) - 1;
}

void Log2Histogram::add(std::uint64_t value, std::uint64_t weight) {
  const std::size_t idx = bucket_index(value);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += weight;
  total_ += weight;
}

std::uint64_t Log2Histogram::bucket(std::size_t idx) const {
  return idx < counts_.size() ? counts_[idx] : 0;
}

std::uint64_t Log2Histogram::quantile_upper_bound(double p) const {
  HYMEM_CHECK(p >= 0.0 && p <= 1.0);
  if (total_ == 0) return 0;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return bucket_hi(i);
  }
  return bucket_hi(counts_.size() - 1);
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    os << bucket_lo(i) << ".." << bucket_hi(i) << " : " << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace hymem
