// Open-addressing hash map keyed by PageId — the hot-path index of every
// per-page structure (page table, LRU indexes, windowed-queue index,
// promotion scoreboard).
//
// Why not std::unordered_map: the node-based layout costs one heap
// allocation per insert and one dependent pointer chase per lookup, and its
// chaining metadata evicts useful cache lines. This map stores keys and
// values in two parallel power-of-two arrays, probes linearly, and erases by
// backward shift — no tombstones, so probe sequences never degrade with
// churn. Keys live in their own array so a probe walks 8 keys per cache
// line and never pulls value bytes it does not need; the value array is
// touched exactly once, on match.
//
// Contract: PageId `kInvalidPage` is reserved as the empty-slot sentinel and
// must never be inserted (nothing in hymem uses it as a real page — it is
// already the "no page" sentinel everywhere else).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/types.hpp"

namespace hymem::util {

/// Finalizer-strength mixer (splitmix64). Page IDs decode from addresses in
/// contiguous regions, so keys are dense and low-entropy; weaker
/// locality-preserving hashes were tried and rejected — they pack dense key
/// runs into long 100%-full clusters, which makes the backward-shift erase
/// walk (and any aliased probe) degrade far more than the saved cache
/// misses are worth.
constexpr std::uint64_t hash_page_id(PageId key) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Linear-probe open-addressing map PageId -> V. V must be default
/// constructible and movable (values are moved during backward-shift erase
/// and rehash).
template <typename V>
class FlatPageMap {
 public:
  FlatPageMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Grows the table so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    // Max load factor 1/2: linear probing without per-slot metadata clusters
    // quickly, and the backward-shift erase pays for every extra cluster
    // entry, so trade memory for uniformly short probe chains.
    while (cap / 2 < n) cap *= 2;
    if (cap > keys_.size()) rehash(cap);
  }

  V* find(PageId key) { return find_hashed(key, hash_page_id(key)); }
  const V* find(PageId key) const {
    return const_cast<FlatPageMap*>(this)->find(key);
  }

  /// `find` with the hash supplied by the caller. The block-replay fast path
  /// probes up to three maps (page table + both queue indexes) with the
  /// *same* key-only hash per access; memoizing it once at decode time
  /// instead of recomputing the mixer per probe is a measurable share of the
  /// per-access budget. `hash` must equal hash_page_id(key).
  V* find_hashed(PageId key, std::uint64_t hash) {
    if (keys_.empty()) return nullptr;
    for (std::size_t i = hash & mask_;; i = (i + 1) & mask_) {
      if (keys_[i] == key) return &values_[i];
      if (keys_[i] == kInvalidPage) {
        // An absent key is usually about to be inserted (fault fills, LRU
        // refills); warm the value line of the slot the insert will take —
        // the probe above only touched the key array.
        __builtin_prefetch(&values_[i], /*rw=*/1);
        return nullptr;
      }
    }
  }
  const V* find_hashed(PageId key, std::uint64_t hash) const {
    return const_cast<FlatPageMap*>(this)->find_hashed(key, hash);
  }
  bool contains(PageId key) const { return find(key) != nullptr; }

  /// Hints the CPU to pull `key`'s home slot into cache. Replay loops know
  /// the access sequence ahead of time, so probing can be overlapped with
  /// the work of earlier accesses instead of stalling on a miss per probe.
  void prefetch(PageId key) const { prefetch_hashed(hash_page_id(key)); }

  /// `prefetch` with the hash supplied by the caller (see find_hashed).
  void prefetch_hashed(std::uint64_t hash) const {
    if (!keys_.empty()) {
      const std::size_t home = hash & mask_;
      __builtin_prefetch(&keys_[home]);
      __builtin_prefetch(&values_[home]);
    }
  }

  /// Inserts `{key, V{}}` if absent. Returns {value slot, inserted}. The
  /// pointer is invalidated by any later insert or erase.
  std::pair<V*, bool> try_emplace(PageId key) {
    HYMEM_CHECK_MSG(key != kInvalidPage, "kInvalidPage is the empty sentinel");
    if (keys_.empty() || size_ + 1 > keys_.size() / 2) {
      rehash(keys_.empty() ? kMinCapacity : keys_.size() * 2);
    }
    for (std::size_t i = hash_page_id(key) & mask_;; i = (i + 1) & mask_) {
      if (keys_[i] == key) return {&values_[i], false};
      if (keys_[i] == kInvalidPage) {
        keys_[i] = key;
        values_[i] = V{};
        ++size_;
        return {&values_[i], true};
      }
    }
  }

  /// Removes `key` if present (backward-shift: the probe chain after the
  /// hole is compacted, so no tombstones exist). Returns whether it was
  /// present.
  bool erase(PageId key) { return take(key).has_value(); }

  /// Removes `key` and returns its value in the same single probe sequence,
  /// or nullopt if absent.
  std::optional<V> take(PageId key) {
    if (keys_.empty()) return std::nullopt;
    std::size_t i = hash_page_id(key) & mask_;
    for (;; i = (i + 1) & mask_) {
      if (keys_[i] == key) break;
      if (keys_[i] == kInvalidPage) return std::nullopt;
    }
    std::optional<V> taken(std::move(values_[i]));
    // Shift the displaced suffix of the cluster back over the hole.
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask_;; j = (j + 1) & mask_) {
      if (keys_[j] == kInvalidPage) break;
      const std::size_t home = hash_page_id(keys_[j]) & mask_;
      // The entry may move into the hole only if its home position does not
      // lie strictly inside (hole, j] — i.e. the wrap-aware displacement
      // test.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        keys_[hole] = keys_[j];
        values_[hole] = std::move(values_[j]);
        hole = j;
      }
    }
    keys_[hole] = kInvalidPage;
    values_[hole] = V{};
    --size_;
    return taken;
  }

  void clear() {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      keys_[i] = kInvalidPage;
      values_[i] = V{};
    }
    size_ = 0;
  }

  /// Calls fn(PageId, V&) for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kInvalidPage) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kInvalidPage) fn(keys_[i], values_[i]);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  void rehash(std::size_t new_capacity) {
    std::vector<PageId> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_capacity, kInvalidPage);
    values_.assign(new_capacity, V{});
    mask_ = new_capacity - 1;
    for (std::size_t k = 0; k < old_keys.size(); ++k) {
      if (old_keys[k] == kInvalidPage) continue;
      for (std::size_t i = hash_page_id(old_keys[k]) & mask_;;
           i = (i + 1) & mask_) {
        if (keys_[i] == kInvalidPage) {
          keys_[i] = old_keys[k];
          values_[i] = std::move(old_values[k]);
          break;
        }
      }
    }
  }

  std::vector<PageId> keys_;
  std::vector<V> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hymem::util
