// Round-off-safe fractional sizing shared by every window-target
// computation (CountedLruQueue, the differential oracle, the invariant
// checker, the fuzzer, the epoch sampler).
//
// ceil(perc * capacity) is the paper's window-size rule, but binary
// round-off can land the product a hair above the intended integer
// (0.07 * 100 == 7.000000000000001), which a raw ceil turns into an
// off-by-one window. PR 3 found that bug and snapped products within one
// part in 1e9 of an integer before rounding up; this header is the single
// home of that snap so the five call sites cannot drift apart.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/check.hpp"

namespace hymem::util {

/// min(total, ceil(fraction * total)) with near-integer products snapped:
/// products within one part in 1e9 of an integer round to that integer
/// instead of up. `fraction` must lie in [0, 1].
inline std::size_t snap_ceil_fraction(double fraction, std::size_t total) {
  HYMEM_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
                  "fraction out of [0,1]");
  const double product = fraction * static_cast<double>(total);
  const double nearest = std::round(product);
  const double snapped =
      std::abs(product - nearest) <= 1e-9 * std::max(1.0, nearest) ? nearest
                                                                   : product;
  return std::min(total, static_cast<std::size_t>(std::ceil(snapped)));
}

}  // namespace hymem::util
