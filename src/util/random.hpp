// Deterministic pseudo-random number generation for workload synthesis.
//
// We use xoshiro256** (public domain, Blackman & Vigna) seeded through
// splitmix64 so a single 64-bit seed fully determines every experiment.
#pragma once

#include <array>
#include <cstdint>

namespace hymem {

/// splitmix64 step — used for seeding and as a cheap hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator, so it
/// plugs into <random> distributions, but the samplers below avoid <random>
/// to stay bit-reproducible across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t next();
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Geometric number of extra repetitions with continuation probability p
  /// (i.e. returns k >= 0 with P(k) = (1-p) p^k). Used for burst lengths.
  std::uint64_t next_geometric(double p);

  /// Creates an independent stream (splits the current state).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace hymem
