// ASCII table rendering used by the benchmark harnesses to print
// paper-figure-shaped rows (workload x metric, with mean columns).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hymem {

/// Column-aligned plain-text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header underline and two-space column gaps.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hymem
