#include "util/random.hpp"

#include <cmath>

namespace hymem {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  return lo + next_below(hi - lo + 1);
}

std::uint64_t Rng::next_geometric(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) p = 0.999999;
  const double u = 1.0 - next_double();  // in (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log(p)));
}

Rng Rng::split() { return Rng(next()); }

}  // namespace hymem
