// Slab allocator for queue nodes.
//
// The LRU/FIFO/windowed-queue nodes used to be individual heap allocations
// (`std::make_unique` per insert), so list traversal pointer-chased across
// the whole heap and every insert/erase paid malloc/free. A SlabPool hands
// out nodes from large contiguous blocks and recycles freed nodes through an
// intrusive free list: O(1) allocate/release with no per-node malloc, and
// nodes that are inserted together tend to share cache lines.
//
// Addresses are stable for the lifetime of the pool (blocks never move), so
// intrusive-list hooks and index pointers into the nodes stay valid.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hymem::util {

/// Fixed-size-object pool. T must be trivially destructible (nodes are plain
/// data), so the pool can drop whole blocks at destruction without tracking
/// which slots are live.
template <typename T>
class SlabPool {
  static_assert(std::is_trivially_destructible_v<T>,
                "SlabPool drops blocks wholesale; T must not need teardown");

 public:
  /// `capacity_hint` pre-sizes the first block so a structure with a known
  /// maximum population (policy capacity, frame count) never re-allocates.
  explicit SlabPool(std::size_t capacity_hint = 0)
      : next_block_size_(capacity_hint > 0 ? capacity_hint : kDefaultBlock) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Constructs a T. O(1); allocates a new block only when the free list and
  /// the current block are both exhausted.
  template <typename... Args>
  T* allocate(Args&&... args) {
    Slot* slot = free_head_;
    if (slot != nullptr) {
      free_head_ = slot->next_free;
    } else {
      if (used_in_block_ == block_slots_) grow();
      slot = &blocks_.back()[used_in_block_++];
    }
    ++live_;
    return ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
  }

  /// Returns a node to the pool. The object is dead after this call.
  void release(T* ptr) {
    Slot* slot = std::launder(reinterpret_cast<Slot*>(ptr));
    slot->next_free = free_head_;
    free_head_ = slot;
    --live_;
  }

  /// Nodes handed out and not yet released.
  std::size_t live() const { return live_; }
  /// Total slots across all blocks.
  std::size_t capacity() const { return capacity_; }

 private:
  union Slot {
    Slot* next_free;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  static constexpr std::size_t kDefaultBlock = 1024;

  void grow() {
    block_slots_ = next_block_size_;
    next_block_size_ *= 2;  // geometric so pathological growth stays O(log n)
    blocks_.push_back(std::make_unique<Slot[]>(block_slots_));
    capacity_ += block_slots_;
    used_in_block_ = 0;
  }

  std::vector<std::unique_ptr<Slot[]>> blocks_;
  Slot* free_head_ = nullptr;
  std::size_t block_slots_ = 0;
  std::size_t used_in_block_ = 0;
  std::size_t next_block_size_;
  std::size_t capacity_ = 0;
  std::size_t live_ = 0;
};

}  // namespace hymem::util
