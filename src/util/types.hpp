// Core vocabulary types shared by every hymem subsystem.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace hymem {

/// Virtual page number. Traces are expressed in byte addresses; everything
/// above the trace layer works in pages.
using PageId = std::uint64_t;

/// Physical frame index within one memory device.
using FrameId = std::uint64_t;

/// Byte address as it appears in a trace.
using Addr = std::uint64_t;

/// Sentinel for "no page" / "no frame".
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();
inline constexpr FrameId kInvalidFrame = std::numeric_limits<FrameId>::max();

/// Kind of a memory request as seen by the main memory.
enum class AccessType : std::uint8_t { kRead = 0, kWrite = 1 };

/// Human-readable name ("read"/"write").
constexpr std::string_view to_string(AccessType t) {
  return t == AccessType::kRead ? "read" : "write";
}

/// The two modules of the hybrid main memory.
enum class Tier : std::uint8_t { kDram = 0, kNvm = 1 };

/// Human-readable name ("DRAM"/"NVM").
constexpr std::string_view to_string(Tier t) {
  return t == Tier::kDram ? "DRAM" : "NVM";
}

/// The opposite module.
constexpr Tier other(Tier t) { return t == Tier::kDram ? Tier::kNvm : Tier::kDram; }

/// Where a virtual page currently lives.
enum class PageLocation : std::uint8_t { kDram = 0, kNvm = 1, kDisk = 2 };

constexpr std::string_view to_string(PageLocation l) {
  switch (l) {
    case PageLocation::kDram: return "DRAM";
    case PageLocation::kNvm: return "NVM";
    default: return "disk";
  }
}

constexpr PageLocation to_location(Tier t) {
  return t == Tier::kDram ? PageLocation::kDram : PageLocation::kNvm;
}

}  // namespace hymem
