// Power-of-two bucketed histogram for long-tailed quantities (reuse
// distances, per-page access counts, burst lengths).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hymem {

/// Histogram over uint64 values with buckets [0], [1], [2,3], [4,7], ...
/// Bucket index 0 holds the value 0; bucket k>=1 holds [2^(k-1), 2^k - 1].
class Log2Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t idx) const;

  /// Lower bound of bucket idx.
  static std::uint64_t bucket_lo(std::size_t idx);
  /// Inclusive upper bound of bucket idx.
  static std::uint64_t bucket_hi(std::size_t idx);
  /// Bucket index a value falls in.
  static std::size_t bucket_index(std::uint64_t value);

  /// Smallest value v such that at least fraction p of the mass is <= hi(v)'s
  /// bucket; returns the bucket upper bound (coarse quantile).
  std::uint64_t quantile_upper_bound(double p) const;

  /// Multi-line "lo..hi : count" dump for reports.
  std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace hymem
