// Fixed-capacity lock-free single-producer/single-consumer ring buffer —
// the channel between the sampling tap (producer: the thread replaying
// accesses) and the background migrator (consumer: the migrator thread in
// threaded mode, or the same thread at virtual-time drain boundaries).
//
// The design is the classic two-cursor SPSC queue (HeMem's pebs rings use
// the same shape): monotonically increasing head/tail cursors, a
// power-of-two slot array indexed by masking, and exactly one
// acquire/release pair per operation. push() is wait-free for the single
// producer, pop() for the single consumer; a full ring rejects the push
// (callers count the drop — samples are droppable by design, migrations
// just happen later). Cursors live on separate cache lines so the producer
// and consumer never false-share.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace hymem::util {

/// SPSC ring over T (movable; trivially copyable in all hymem uses).
/// Exactly one thread may call push() and exactly one thread may call
/// pop(); size() and empty() are safe from either side but only
/// approximate when both sides are live.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (masked indexing); the
  /// effective value is reported by capacity().
  explicit SpscRing(std::size_t min_capacity) {
    HYMEM_CHECK_MSG(min_capacity > 0, "ring capacity must be positive");
    std::size_t cap = 1;
    while (cap < min_capacity) cap *= 2;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side: enqueues `value` unless the ring is full. Returns
  /// whether the value was accepted.
  bool push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[static_cast<std::size_t>(tail) & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: dequeues the oldest value, or nullopt when empty.
  std::optional<T> pop() {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    std::optional<T> value(std::move(slots_[static_cast<std::size_t>(head) & mask_]));
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  /// Occupancy. Exact when only one side is live (virtual-time mode);
  /// a conservative snapshot when producer and consumer race.
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Consumer cursor; on its own cache line so pop() never invalidates the
  /// producer's line and vice versa.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace hymem::util
