// Shared JSON string escaping for every JSON writer in the tree
// (sim/results_io, runner sweep export, obs timeline export).
//
// RFC 8259 requires escaping `"`, `\` and the full control range
// U+0000..U+001F. The historical per-file escapers handled only `"` `\`
// and `\n`, so a tab or carriage return in a workload/trace name produced
// invalid JSON; this is the single compliant implementation.
#pragma once

#include <string>
#include <string_view>

namespace hymem::util {

/// Escapes `s` for embedding inside a JSON string literal: `"` and `\` get
/// backslash-escaped, control characters use the two-character shorthands
/// (\b \t \n \f \r) where they exist and \u00XX otherwise. Input is treated
/// as opaque bytes (UTF-8 passes through untouched).
std::string json_escape(std::string_view s);

}  // namespace hymem::util
