#include "util/json.hpp"

namespace hymem::util {

std::string json_escape(std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (byte < 0x20) {
          out += "\\u00";
          out += kHex[byte >> 4];
          out += kHex[byte & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hymem::util
