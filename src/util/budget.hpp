// Integer budget splitting shared by every layer that carves one physical
// frame budget into proportional shares: the partitioned-shard runner
// (runner/sharded) and the multi-tenant group (src/tenant).
//
// Largest-remainder rounding keeps the split exact in integer arithmetic
// (shares always sum to the total) and deterministic (remainder ties break
// to the lowest index), which is what lets budget-conservation invariants
// assert equality instead of tolerances.
#pragma once

#include <cstdint>
#include <vector>

namespace hymem::util {

/// Splits `total` into `weights.size()` integer shares proportional to the
/// weights (largest-remainder rounding, ties to the lowest index), then
/// enforces a floor of 1 on every share with a positive weight by taking
/// from the largest shares. Shares sum to exactly `total`. All-zero weights
/// put the whole total on index 0. Throws std::invalid_argument when the
/// total is too small to give every positively-weighted share its floor.
std::vector<std::uint64_t> split_budget(
    std::uint64_t total, const std::vector<std::uint64_t>& weights);

}  // namespace hymem::util
