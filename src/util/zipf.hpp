// Zipf-distributed sampling over ranks {0, ..., n-1}.
//
// PARSEC memory footprints are strongly skewed; the synthetic generator uses
// a Zipf hot-set to reproduce the per-page popularity skew that decides which
// pages are worth migrating. Sampling is O(1) amortized via Walker's alias
// method built once per (n, alpha).
#pragma once

#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace hymem {

/// Samples rank r in [0, n) with probability proportional to 1 / (r+1)^alpha.
/// alpha = 0 degenerates to uniform; larger alpha concentrates mass on the
/// first ranks.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

  /// Draws one rank.
  std::uint64_t sample(Rng& rng) const;

  /// Probability mass of a given rank (for tests / analytics).
  double pmf(std::uint64_t rank) const;

 private:
  std::uint64_t n_;
  double alpha_;
  double norm_ = 0.0;
  // Alias tables.
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace hymem
