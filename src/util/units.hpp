// Unit helpers. All latencies are carried in nanoseconds and all energies in
// nanojoules (the paper's Table IV units); powers are in watts.
#pragma once

#include <cstdint>

namespace hymem {

/// Nanoseconds, the simulator's latency unit.
using Nanoseconds = double;
/// Nanojoules, the simulator's energy unit.
using Nanojoules = double;
/// Watts (J/s), used for static power densities.
using Watts = double;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// Default OS page size assumed throughout the paper (Section II.A).
inline constexpr std::uint64_t kDefaultPageSize = 4 * kKiB;

/// Milliseconds to nanoseconds.
constexpr Nanoseconds ms_to_ns(double ms) { return ms * 1e6; }
/// Microseconds to nanoseconds.
constexpr Nanoseconds us_to_ns(double us) { return us * 1e3; }
/// Nanoseconds to seconds.
constexpr double ns_to_s(Nanoseconds ns) { return ns * 1e-9; }
/// Nanojoules to joules.
constexpr double nj_to_j(Nanojoules nj) { return nj * 1e-9; }

}  // namespace hymem
