#include "util/zipf.hpp"

#include <cmath>
#include <deque>

#include "util/check.hpp"

namespace hymem {

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  HYMEM_CHECK_MSG(n > 0, "Zipf support must be non-empty");
  HYMEM_CHECK_MSG(alpha >= 0.0, "Zipf exponent must be non-negative");
  std::vector<double> w(n);
  for (std::uint64_t r = 0; r < n; ++r) {
    w[r] = std::pow(static_cast<double>(r + 1), -alpha);
    norm_ += w[r];
  }
  // Walker alias construction.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::deque<std::uint32_t> small, large;
  std::vector<double> scaled(n);
  for (std::uint64_t r = 0; r < n; ++r) {
    scaled[r] = w[r] / norm_ * static_cast<double>(n);
    (scaled[r] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(r));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.front();
    small.pop_front();
    const std::uint32_t l = large.front();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_front();
      small.push_back(l);
    }
  }
  for (std::uint32_t r : large) prob_[r] = 1.0;
  for (std::uint32_t r : small) prob_[r] = 1.0;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const std::uint64_t col = rng.next_below(n_);
  return rng.next_double() < prob_[col] ? col : alias_[col];
}

double ZipfSampler::pmf(std::uint64_t rank) const {
  HYMEM_CHECK(rank < n_);
  return std::pow(static_cast<double>(rank + 1), -alpha_) / norm_;
}

}  // namespace hymem
