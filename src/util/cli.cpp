#include "util/cli.hpp"

#include <stdexcept>

namespace hymem {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) > 0; }

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

std::string CliArgs::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::stoll(it->second);
}

std::uint64_t CliArgs::get_uint(const std::string& name, std::uint64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::stoull(it->second);
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("bad boolean flag --" + name + "=" + v);
}

}  // namespace hymem
