#include "util/budget.hpp"

#include <algorithm>
#include <stdexcept>

namespace hymem::util {

std::vector<std::uint64_t> split_budget(
    std::uint64_t total, const std::vector<std::uint64_t>& weights) {
  const std::size_t n = weights.size();
  std::vector<std::uint64_t> shares(n, 0);
  if (total == 0 || n == 0) return shares;
  std::uint64_t weight_sum = 0;
  for (const std::uint64_t w : weights) weight_sum += w;
  if (weight_sum == 0) {
    shares[0] = total;
    return shares;
  }
  // Floor allocation plus largest-remainder distribution (exact in integer
  // arithmetic: remainder_i = total * w_i mod weight_sum).
  std::uint64_t allocated = 0;
  std::vector<std::uint64_t> remainders(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t scaled = total * weights[i];
    shares[i] = scaled / weight_sum;
    remainders[i] = scaled % weight_sum;
    allocated += shares[i];
  }
  std::uint64_t leftover = total - allocated;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&remainders](std::size_t a, std::size_t b) {
                     return remainders[a] > remainders[b];
                   });
  for (std::size_t k = 0; leftover > 0 && k < n; ++k, --leftover) {
    ++shares[order[k]];
  }
  // Floor of 1 for every populated share, funded by the largest shares.
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0 || shares[i] > 0) continue;
    const std::size_t donor = static_cast<std::size_t>(
        std::max_element(shares.begin(), shares.end()) - shares.begin());
    if (shares[donor] <= 1) {
      throw std::invalid_argument(
          "split_budget: total too small to give every weighted share a "
          "unit — lower the share count or grow the budget");
    }
    --shares[donor];
    shares[i] = 1;
  }
  return shares;
}

}  // namespace hymem::util
