// Small statistics helpers: streaming accumulators and the arithmetic /
// geometric means the paper reports (every figure carries A-Mean and G-Mean
// columns; averages quoted in the text are geometric means).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hymem {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Population variance.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Arithmetic mean of a sample (0 for empty input).
double arithmetic_mean(std::span<const double> xs);

/// Geometric mean of a strictly positive sample (0 for empty input).
/// Throws std::logic_error if any element is non-positive.
double geometric_mean(std::span<const double> xs);

/// p-quantile (0 <= p <= 1) by linear interpolation of the sorted sample.
double quantile(std::vector<double> xs, double p);

}  // namespace hymem
