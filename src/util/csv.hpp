// Minimal CSV emission so bench harnesses can dump machine-readable series
// next to the human-readable tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hymem {

/// Streams RFC-4180-ish CSV rows (quotes fields containing , " or newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Escapes one field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
};

}  // namespace hymem
