// Lightweight runtime checking. HYMEM_CHECK is always on (these simulators
// are correctness-first); violations throw so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hymem::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "HYMEM_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace hymem::detail

#define HYMEM_CHECK(expr)                                                    \
  do {                                                                       \
    if (!(expr)) ::hymem::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define HYMEM_CHECK_MSG(expr, msg)                                             \
  do {                                                                         \
    if (!(expr)) ::hymem::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
