// Secondary storage model. Table II: HDD, 5 ms response time. Page-in delay
// is the only disk latency visible in AMAT (Eq. 1, third term); page-out is
// asynchronous and therefore only counted, never charged.
#pragma once

#include <cstdint>

#include "mem/technology.hpp"
#include "util/units.hpp"

namespace hymem::os {

/// Counts page traffic to/from the backing store.
class Disk {
 public:
  explicit Disk(mem::DiskModel model = {}) : model_(model) {}

  Nanoseconds access_latency_ns() const { return model_.access_latency_ns; }

  /// Synchronous page-in; returns the visible latency.
  Nanoseconds read_page() {
    ++page_ins_;
    return model_.access_latency_ns;
  }

  /// Asynchronous page-out (dirty eviction); no visible latency.
  void write_page() { ++page_outs_; }

  std::uint64_t page_ins() const { return page_ins_; }
  std::uint64_t page_outs() const { return page_outs_; }

  /// Zeroes the traffic counters (start of a measurement window).
  void reset_counters() {
    page_ins_ = 0;
    page_outs_ = 0;
  }

 private:
  mem::DiskModel model_;
  std::uint64_t page_ins_ = 0;
  std::uint64_t page_outs_ = 0;
};

}  // namespace hymem::os
