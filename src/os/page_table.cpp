#include "os/page_table.hpp"

#include "util/check.hpp"

namespace hymem::os {

void PageTable::reserve(std::uint64_t frames) {
  entries_.reserve(static_cast<std::size_t>(frames));
}

std::optional<PageTableEntry> PageTable::lookup(PageId page) const {
  const PageTableEntry* entry = entries_.find(page);
  if (entry == nullptr) return std::nullopt;
  return *entry;
}

PageTableEntry* PageTable::find(PageId page) { return entries_.find(page); }

const PageTableEntry* PageTable::find(PageId page) const {
  return entries_.find(page);
}

void PageTable::map(PageId page, Tier tier, FrameId frame, bool dirty) {
  const auto [entry, inserted] = entries_.try_emplace(page);
  HYMEM_CHECK_MSG(inserted, "page already resident");
  *entry = PageTableEntry{tier, frame, dirty};
  (tier == Tier::kDram ? dram_count_ : nvm_count_) += 1;
}

PageTableEntry PageTable::unmap(PageId page) {
  PageTableEntry* found = entries_.find(page);
  HYMEM_CHECK_MSG(found != nullptr, "unmap of non-resident page");
  const PageTableEntry entry = *found;
  entries_.erase(page);
  (entry.tier() == Tier::kDram ? dram_count_ : nvm_count_) -= 1;
  return entry;
}

void PageTable::remap(PageId page, Tier tier, FrameId frame) {
  PageTableEntry* entry = entries_.find(page);
  HYMEM_CHECK_MSG(entry != nullptr, "remap of non-resident page");
  (entry->tier() == Tier::kDram ? dram_count_ : nvm_count_) -= 1;
  entry->retarget(tier, frame);
  (tier == Tier::kDram ? dram_count_ : nvm_count_) += 1;
}

}  // namespace hymem::os
