#include "os/page_table.hpp"

#include "util/check.hpp"

namespace hymem::os {

std::optional<PageTableEntry> PageTable::lookup(PageId page) const {
  const auto it = entries_.find(page);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

PageTableEntry* PageTable::find(PageId page) {
  const auto it = entries_.find(page);
  return it == entries_.end() ? nullptr : &it->second;
}

const PageTableEntry* PageTable::find(PageId page) const {
  return const_cast<PageTable*>(this)->find(page);
}

void PageTable::map(PageId page, Tier tier, FrameId frame, bool dirty) {
  const auto [it, inserted] =
      entries_.try_emplace(page, PageTableEntry{tier, frame, dirty});
  HYMEM_CHECK_MSG(inserted, "page already resident");
  (tier == Tier::kDram ? dram_count_ : nvm_count_) += 1;
}

PageTableEntry PageTable::unmap(PageId page) {
  const auto it = entries_.find(page);
  HYMEM_CHECK_MSG(it != entries_.end(), "unmap of non-resident page");
  const PageTableEntry entry = it->second;
  entries_.erase(it);
  (entry.tier == Tier::kDram ? dram_count_ : nvm_count_) -= 1;
  return entry;
}

void PageTable::remap(PageId page, Tier tier, FrameId frame) {
  const auto it = entries_.find(page);
  HYMEM_CHECK_MSG(it != entries_.end(), "remap of non-resident page");
  (it->second.tier == Tier::kDram ? dram_count_ : nvm_count_) -= 1;
  it->second.tier = tier;
  it->second.frame = frame;
  (tier == Tier::kDram ? dram_count_ : nvm_count_) += 1;
}

}  // namespace hymem::os
