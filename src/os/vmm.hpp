// Virtual memory manager: the mechanism layer all hybrid-memory policies
// share. Policies *decide* (where to place a fault, what to migrate, what to
// evict); the VMM *executes* — page-table updates, frame management, DMA
// copies, disk traffic, device energy and NVM endurance accounting — so that
// every policy is costed identically.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "mem/device.hpp"
#include "mem/dma.hpp"
#include "mem/endurance.hpp"
#include "mem/technology.hpp"
#include "os/disk.hpp"
#include "os/frame_allocator.hpp"
#include "os/page_table.hpp"
#include "util/units.hpp"

namespace hymem::os {

/// Hybrid main-memory configuration.
struct VmmConfig {
  std::uint64_t dram_frames = 0;
  std::uint64_t nvm_frames = 0;
  std::uint64_t page_size = kDefaultPageSize;
  /// Device access width (the LLC line size); PageFactor =
  /// page_size / access_granularity.
  std::uint64_t access_granularity = 64;
  mem::MemTechnology dram = mem::dram_table4();
  mem::MemTechnology nvm = mem::pcm_table4();
  mem::DiskModel disk{};
  /// Page transfers: separate modules over DMA (the paper's assumption) or
  /// an integrated module with pipelined copies (its mentioned alternative).
  mem::TransferMode transfer_mode = mem::TransferMode::kDma;
  /// Optional Start-Gap wear leveling on the NVM module (extension).
  bool wear_leveling = false;
  std::uint64_t wear_gap_interval = 64;

  std::uint64_t total_frames() const { return dram_frames + nvm_frames; }
};

/// The mechanism layer. All operations return the latency they contribute to
/// the request being served (0 for asynchronous work, per the paper's model).
class Vmm {
 public:
  explicit Vmm(const VmmConfig& config);

  const VmmConfig& config() const { return config_; }

  // --- Queries -------------------------------------------------------------
  bool is_resident(PageId page) const { return table_.is_resident(page); }
  /// Tier holding the page, or nullopt when it is on disk.
  std::optional<Tier> tier_of(PageId page) const;
  /// Warms the page-table cache line for an upcoming access to `page`.
  void prefetch_translation(PageId page) const { table_.prefetch(page); }
  bool has_free_frame(Tier tier) const;
  std::uint64_t frames(Tier tier) const;
  std::uint64_t resident(Tier tier) const { return table_.resident_in(tier); }

  // --- Operations ------------------------------------------------------------
  /// Serves a demand hit; the page must be resident. Returns the device
  /// latency. Marks the page dirty on writes and records NVM wear.
  Nanoseconds access(PageId page, AccessType type);

  /// Result of a combined residency-check-plus-access (one page-table probe
  /// instead of the historical is_resident/tier_of + access pair).
  struct ResidentAccess {
    Tier tier;
    Nanoseconds latency;
  };

  /// If `page` is resident, serves the demand access (same accounting as
  /// `access`) and reports which tier served it; otherwise does nothing and
  /// returns nullopt. This is the one lookup every policy's hit path needs.
  std::optional<ResidentAccess> access_if_resident(PageId page,
                                                   AccessType type);

  // --- Block-replay fast path -----------------------------------------------
  // The three calls below decompose access_if_resident for a *trusted*
  // caller: a policy whose own per-tier indexes already prove residency and
  // tier (the queues and the page table track the same pages by invariant —
  // check_consistency and the stream-vs-materialized differential pin it).
  // Splitting the accounting from the probe lets the policy's block loop
  // skip the page-table probe entirely on reads (reads have no dirty or
  // endurance side effects) and reuse a cached entry across same-page runs.

  /// Page-table entry for the fast path, probed with the decode-time
  /// memoized hash (must equal util::hash_page_id(page)); nullptr when
  /// non-resident. The caller may mark_dirty() the entry but must route all
  /// other mutations through VMM operations. The pointer is invalidated by
  /// any residency change (fault_in, evict, migrate, swap).
  PageTableEntry* entry_hashed(PageId page, std::uint64_t hash) {
    return table_.find_hashed(page, hash);
  }

  /// Demand-access accounting for a page the caller has proven resident in
  /// `tier`: identical counters and latency to `access`, minus the probe.
  /// For writes the caller must also mark the entry dirty and, on NVM,
  /// call note_nvm_demand_write.
  Nanoseconds record_demand_resident(Tier tier, AccessType type) {
    return device_mut(tier).record_demand(type);
  }

  /// The latency `record_demand_resident` would charge — a constant per
  /// (tier, type) — so a block loop can hoist all four values and defer the
  /// counter updates to one `record_demand_batch` per block.
  Nanoseconds demand_latency(Tier tier, AccessType type) const {
    return device(tier).demand_latency(type);
  }

  /// Folds a block's worth of demand-access counts into `tier`'s counters
  /// in one step. Integer addition commutes, so batching at block end leaves
  /// every counter identical to per-access recording.
  void record_demand_batch(Tier tier, std::uint64_t reads,
                           std::uint64_t writes) {
    device_mut(tier).record_demand_batch(reads, writes);
  }

  /// Endurance/wear accounting for one demand write into an NVM frame (the
  /// same bookkeeping `access` does internally for NVM writes).
  void note_nvm_demand_write(FrameId frame) {
    record_nvm_page_write(frame, mem::NvmWriteSource::kDemandWrite);
  }

  /// Brings a page in from disk into `tier` (a free frame must exist).
  /// Returns the visible latency: the disk delay only — the paper overlaps
  /// the memory fill writes with the disk transfer via DMA (Section II.A),
  /// though their energy is still charged (Eq. 2).
  Nanoseconds fault_in(PageId page, Tier tier);

  /// Migrates a resident page to the other module (a free frame must exist
  /// there). Returns the DMA latency: PageFactor * (read src + write dst).
  Nanoseconds migrate(PageId page, Tier destination);

  /// Exchanges a page in one module with a page in the other when neither
  /// module has a free frame (the common case once memory fills up: e.g. a
  /// promotion to a full DRAM paired with the demotion it forces). Charges
  /// one migration in each direction; returns the combined DMA latency.
  Nanoseconds swap(PageId a, PageId b);

  /// Marks a resident page dirty without charging a demand access. Used for
  /// write page faults: the written data arrives with the disk fill, so no
  /// separate memory access is billed, but the page now differs from disk.
  void touch_dirty(PageId page);

  /// Evicts a resident page to disk. Dirty pages count a disk page-out.
  /// Asynchronous: contributes no latency (Eq. 1 charges only TDisk on the
  /// fill side).
  void evict(PageId page);

  /// Structural self-audit (HYMEM_CHECK debug hook): every residency count
  /// agrees with the frame allocators, no tier exceeds its capacity, and the
  /// per-source NVM endurance ledger equals what the device/DMA/disk
  /// counters imply (demand writes 1 cell-write each; fills and DRAM->NVM
  /// migrations PageFactor each). Throws std::logic_error on violation.
  /// O(1); safe to call after every access. Invariant checkers (src/check)
  /// call this alongside their policy-level checks.
  void check_consistency() const;

  /// Zeroes every accounting counter (device accesses, DMA transfers, disk
  /// traffic, NVM wear) without touching residency. Called at the end of a
  /// warmup pass so measurements reflect the steady state — the paper's
  /// setup explicitly minimizes cold-memory effects (Section V.A).
  void reset_accounting();

  // --- Accounting views ------------------------------------------------------
  const mem::MemoryDevice& device(Tier tier) const;
  const mem::DmaCounters& dma_counters() const { return dma_.counters(); }
  std::uint64_t page_factor() const { return dma_.accesses_per_page(); }
  const Disk& disk() const { return disk_; }
  const mem::EnduranceTracker& nvm_endurance() const { return endurance_; }
  const PageTable& page_table() const { return table_; }

 private:
  mem::MemoryDevice& device_mut(Tier tier) {
    return tier == Tier::kDram ? dram_ : nvm_;
  }
  FrameAllocator& allocator(Tier tier);
  void record_nvm_page_write(FrameId frame, mem::NvmWriteSource source);

  VmmConfig config_;
  PageTable table_;
  mem::MemoryDevice dram_;
  mem::MemoryDevice nvm_;
  FrameAllocator dram_alloc_;
  FrameAllocator nvm_alloc_;
  mem::DmaEngine dma_;
  Disk disk_;
  mem::EnduranceTracker endurance_;
  std::unique_ptr<mem::StartGapRemapper> remapper_;
};

}  // namespace hymem::os
