#include "os/tlb.hpp"

#include "util/check.hpp"

namespace hymem::os {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  HYMEM_CHECK_MSG(config.valid(), "invalid TLB geometry");
  entries_.resize(config.entries);
}

std::uint32_t Tlb::set_of(PageId page) const {
  return static_cast<std::uint32_t>(page & (config_.sets() - 1));
}

Tlb::Entry* Tlb::find(PageId page) {
  Entry* base = &entries_[set_of(page) * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].page == page) return &base[w];
  }
  return nullptr;
}

bool Tlb::lookup(PageId page) {
  ++stats_.lookups;
  if (Entry* entry = find(page)) {
    ++stats_.hits;
    entry->lru = ++clock_;
    return true;
  }
  ++stats_.misses;
  Entry* base = &entries_[set_of(page) * config_.associativity];
  Entry* victim = &base[0];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  victim->page = page;
  victim->valid = true;
  victim->lru = ++clock_;
  return false;
}

bool Tlb::shootdown(PageId page) {
  if (Entry* entry = find(page)) {
    entry->valid = false;
    ++stats_.shootdowns;
    return true;
  }
  return false;
}

void Tlb::flush() {
  for (Entry& e : entries_) e.valid = false;
}

std::uint64_t Tlb::valid_entries() const {
  std::uint64_t n = 0;
  for (const Entry& e : entries_) n += e.valid;
  return n;
}

}  // namespace hymem::os
