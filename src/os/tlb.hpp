// Translation lookaside buffer model.
//
// The paper's scheme lives in the OS paging path: every migration is a
// page-table remap, and real systems pay a TLB shootdown for each. This
// model quantifies that hidden cost: a set-associative TLB with LRU,
// invalidate-on-remap, and hit/miss/shootdown counters. The analytic models
// stay faithful to the paper (which ignores TLB effects); the TLB is an
// optional observer for sensitivity analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace hymem::os {

/// TLB geometry; defaults resemble a typical L1 DTLB.
struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t associativity = 4;

  std::uint32_t sets() const { return entries / associativity; }
  bool valid() const {
    return entries > 0 && associativity > 0 &&
           entries % associativity == 0 &&
           (sets() & (sets() - 1)) == 0;
  }
};

/// Hit/miss/shootdown counters.
struct TlbStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t shootdowns = 0;  ///< Invalidations due to remap/unmap.

  double hit_ratio() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

/// Set-associative TLB over virtual page numbers with per-set LRU.
class Tlb {
 public:
  explicit Tlb(const TlbConfig& config = {});

  const TlbConfig& config() const { return config_; }
  const TlbStats& stats() const { return stats_; }

  /// Translates a page: records hit or miss (a miss installs the entry,
  /// evicting the set's LRU victim). Returns true on a hit.
  bool lookup(PageId page);

  /// Invalidates a page's entry if present (migration/eviction shootdown).
  /// Returns true if an entry was dropped.
  bool shootdown(PageId page);

  /// Drops everything (context switch).
  void flush();

  /// Number of currently valid entries.
  std::uint64_t valid_entries() const;

 private:
  struct Entry {
    PageId page = kInvalidPage;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  std::uint32_t set_of(PageId page) const;
  Entry* find(PageId page);

  TlbConfig config_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  TlbStats stats_;
};

}  // namespace hymem::os
