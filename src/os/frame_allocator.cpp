#include "os/frame_allocator.hpp"

#include "util/check.hpp"

namespace hymem::os {

FrameAllocator::FrameAllocator(std::uint64_t capacity)
    : capacity_(capacity), in_use_(capacity, false) {
  free_.reserve(capacity);
  // Hand out low frame numbers first.
  for (std::uint64_t f = capacity; f > 0; --f) free_.push_back(f - 1);
}

std::optional<FrameId> FrameAllocator::allocate() {
  if (free_.empty()) return std::nullopt;
  const FrameId frame = free_.back();
  free_.pop_back();
  in_use_[frame] = true;
  return frame;
}

void FrameAllocator::release(FrameId frame) {
  HYMEM_CHECK_MSG(frame < capacity_, "frame out of range");
  HYMEM_CHECK_MSG(in_use_[frame], "double free of frame");
  in_use_[frame] = false;
  free_.push_back(frame);
}

}  // namespace hymem::os
