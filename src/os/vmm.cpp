#include "os/vmm.hpp"

#include "util/check.hpp"

namespace hymem::os {

Vmm::Vmm(const VmmConfig& config)
    : config_(config),
      dram_(Tier::kDram, config.dram, config.dram_frames, config.page_size),
      nvm_(Tier::kNvm, config.nvm, config.nvm_frames, config.page_size),
      dram_alloc_(config.dram_frames),
      nvm_alloc_(config.nvm_frames),
      dma_(config.page_size, config.access_granularity, config.transfer_mode),
      disk_(config.disk),
      endurance_(config.nvm_frames > 0
                     ? config.nvm_frames + (config.wear_leveling ? 1 : 0)
                     : 1,
                 config.nvm.endurance_cycles) {
  HYMEM_CHECK_MSG(config.total_frames() > 0, "memory must have capacity");
  table_.reserve(config.total_frames());
  if (config.wear_leveling && config.nvm_frames > 0) {
    remapper_ = std::make_unique<mem::StartGapRemapper>(
        config.nvm_frames, config.wear_gap_interval);
  }
}

std::optional<Tier> Vmm::tier_of(PageId page) const {
  const auto entry = table_.lookup(page);
  if (!entry) return std::nullopt;
  return entry->tier();
}

bool Vmm::has_free_frame(Tier tier) const {
  return tier == Tier::kDram ? !dram_alloc_.full() : !nvm_alloc_.full();
}

std::uint64_t Vmm::frames(Tier tier) const {
  return tier == Tier::kDram ? config_.dram_frames : config_.nvm_frames;
}

const mem::MemoryDevice& Vmm::device(Tier tier) const {
  return tier == Tier::kDram ? dram_ : nvm_;
}

FrameAllocator& Vmm::allocator(Tier tier) {
  return tier == Tier::kDram ? dram_alloc_ : nvm_alloc_;
}

void Vmm::record_nvm_page_write(FrameId frame, mem::NvmWriteSource source) {
  const std::uint64_t cells =
      source == mem::NvmWriteSource::kDemandWrite ? 1 : dma_.accesses_per_page();
  FrameId slot = frame;
  if (remapper_) {
    slot = remapper_->physical(frame);
    remapper_->on_write();
  }
  endurance_.record(slot, source, cells);
}

Nanoseconds Vmm::access(PageId page, AccessType type) {
  PageTableEntry* entry = table_.find(page);
  HYMEM_CHECK_MSG(entry != nullptr, "demand access to non-resident page");
  if (type == AccessType::kWrite) {
    entry->mark_dirty();
    if (entry->tier() == Tier::kNvm) {
      record_nvm_page_write(entry->frame(), mem::NvmWriteSource::kDemandWrite);
    }
  }
  return device_mut(entry->tier()).record_demand(type);
}

std::optional<Vmm::ResidentAccess> Vmm::access_if_resident(PageId page,
                                                           AccessType type) {
  PageTableEntry* entry = table_.find(page);
  if (entry == nullptr) return std::nullopt;
  if (type == AccessType::kWrite) {
    entry->mark_dirty();
    if (entry->tier() == Tier::kNvm) {
      record_nvm_page_write(entry->frame(), mem::NvmWriteSource::kDemandWrite);
    }
  }
  return ResidentAccess{entry->tier(), device_mut(entry->tier()).record_demand(type)};
}

Nanoseconds Vmm::fault_in(PageId page, Tier tier) {
  HYMEM_CHECK_MSG(!table_.is_resident(page), "fault_in of resident page");
  const auto frame = allocator(tier).allocate();
  HYMEM_CHECK_MSG(frame.has_value(), "fault_in with no free frame");
  table_.map(page, tier, *frame, /*dirty=*/false);
  dma_.fill_from_disk(device_mut(tier));
  if (tier == Tier::kNvm) {
    record_nvm_page_write(*frame, mem::NvmWriteSource::kPageFault);
  }
  return disk_.read_page();
}

Nanoseconds Vmm::migrate(PageId page, Tier destination) {
  PageTableEntry* entry = table_.find(page);
  HYMEM_CHECK_MSG(entry != nullptr, "migrate of non-resident page");
  HYMEM_CHECK_MSG(entry->tier() != destination, "migrate to current tier");
  const auto frame = allocator(destination).allocate();
  HYMEM_CHECK_MSG(frame.has_value(), "migrate with no free destination frame");
  const Tier source = entry->tier();
  allocator(source).release(entry->frame());
  const Nanoseconds latency =
      dma_.migrate(device_mut(source), device_mut(destination));
  if (destination == Tier::kNvm) {
    record_nvm_page_write(*frame, mem::NvmWriteSource::kMigration);
  }
  table_.remap(page, destination, *frame);
  return latency;
}

void Vmm::check_consistency() const {
  // Residency bookkeeping: the page table's per-tier counts must equal the
  // frames handed out by the allocators, and never exceed capacity.
  HYMEM_CHECK_MSG(table_.resident_in(Tier::kDram) == dram_alloc_.allocated(),
                  "DRAM residency disagrees with the frame allocator");
  HYMEM_CHECK_MSG(table_.resident_in(Tier::kNvm) == nvm_alloc_.allocated(),
                  "NVM residency disagrees with the frame allocator");
  HYMEM_CHECK_MSG(table_.resident_in(Tier::kDram) <= config_.dram_frames,
                  "more DRAM-resident pages than DRAM frames");
  HYMEM_CHECK_MSG(table_.resident_in(Tier::kNvm) <= config_.nvm_frames,
                  "more NVM-resident pages than NVM frames");
  HYMEM_CHECK_MSG(table_.resident_pages() == table_.resident_in(Tier::kDram) +
                                                 table_.resident_in(Tier::kNvm),
                  "per-tier residency counts do not sum to the table size");
  // Every page fault filled exactly one module.
  const mem::DmaCounters& dma = dma_.counters();
  HYMEM_CHECK_MSG(
      dma.disk_fills_to_dram + dma.disk_fills_to_nvm == disk_.page_ins(),
      "disk page-ins disagree with the DMA fill counters");
  // NVM physical-write ledger (the paper's endurance accounting): demand
  // writes contribute one cell-write, fault fills and DRAM->NVM migrations
  // PageFactor each. The endurance tracker must agree with the independent
  // device/DMA/disk counters it mirrors.
  const std::uint64_t pf = dma_.accesses_per_page();
  HYMEM_CHECK_MSG(
      endurance_.writes_from(mem::NvmWriteSource::kDemandWrite) ==
          nvm_.counters().demand_writes,
      "endurance demand-write ledger disagrees with the NVM device counter");
  HYMEM_CHECK_MSG(
      endurance_.writes_from(mem::NvmWriteSource::kPageFault) ==
          pf * dma.disk_fills_to_nvm,
      "endurance fault-fill ledger disagrees with the DMA fill counter");
  HYMEM_CHECK_MSG(
      endurance_.writes_from(mem::NvmWriteSource::kMigration) ==
          pf * dma.migrations_dram_to_nvm,
      "endurance migration ledger disagrees with the DMA migration counter");
  HYMEM_CHECK_MSG(
      endurance_.total_writes() ==
          nvm_.counters().demand_writes +
              pf * (dma.disk_fills_to_nvm + dma.migrations_dram_to_nvm),
      "NVM physical writes != demand + PageFactor*(fills + demotions)");
}

void Vmm::reset_accounting() {
  dram_.reset_counters();
  nvm_.reset_counters();
  dma_.reset_counters();
  disk_.reset_counters();
  endurance_.reset();
}

Nanoseconds Vmm::swap(PageId a, PageId b) {
  PageTableEntry* ea = table_.find(a);
  PageTableEntry* eb = table_.find(b);
  HYMEM_CHECK_MSG(ea != nullptr && eb != nullptr, "swap of non-resident page");
  HYMEM_CHECK_MSG(ea->tier() != eb->tier(), "swap must cross modules");
  // One DMA copy in each direction (a real implementation stages through a
  // bounce buffer; the cost model is identical).
  Nanoseconds latency = dma_.migrate(device_mut(ea->tier()), device_mut(eb->tier()));
  latency += dma_.migrate(device_mut(eb->tier()), device_mut(ea->tier()));
  const Tier tier_a = ea->tier();
  const FrameId frame_a = ea->frame();
  const Tier tier_b = eb->tier();
  const FrameId frame_b = eb->frame();
  table_.remap(a, tier_b, frame_b);
  table_.remap(b, tier_a, frame_a);
  const PageTableEntry* into_nvm = tier_b == Tier::kNvm ? table_.find(a) : table_.find(b);
  record_nvm_page_write(into_nvm->frame(), mem::NvmWriteSource::kMigration);
  return latency;
}

void Vmm::touch_dirty(PageId page) {
  PageTableEntry* entry = table_.find(page);
  HYMEM_CHECK_MSG(entry != nullptr, "touch_dirty of non-resident page");
  entry->mark_dirty();
}

void Vmm::evict(PageId page) {
  const PageTableEntry entry = table_.unmap(page);
  allocator(entry.tier()).release(entry.frame());
  if (entry.dirty()) disk_.write_page();
}

}  // namespace hymem::os
