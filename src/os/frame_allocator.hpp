// Free-list physical frame allocator for one memory module.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace hymem::os {

/// LIFO free-list allocator over frames [0, capacity).
class FrameAllocator {
 public:
  explicit FrameAllocator(std::uint64_t capacity);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t free_count() const { return free_.size(); }
  std::uint64_t allocated() const { return capacity_ - free_.size(); }
  bool full() const { return free_.empty(); }

  /// Allocates a frame, or nullopt when exhausted.
  std::optional<FrameId> allocate();

  /// Returns a frame to the pool. Double-free is detected and throws.
  void release(FrameId frame);

 private:
  std::uint64_t capacity_;
  std::vector<FrameId> free_;
  std::vector<bool> in_use_;
};

}  // namespace hymem::os
