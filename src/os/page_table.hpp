// Page table: virtual page -> {module, frame, dirty}.
//
// This is the OS-level structure the paper's scheme manipulates: migrations
// are page-table remappings plus DMA copies, invisible to the application.
#pragma once

#include <cstdint>
#include <optional>

#include "util/flat_page_map.hpp"
#include "util/types.hpp"

namespace hymem::os {

/// One mapping. Pages not present in the table live on disk.
///
/// Packed into a single word so a map slot (page + entry) is 16 bytes and a
/// cache line covers four probe slots — the page table is probed on every
/// simulated access, so its footprint and line utilisation dominate the
/// replay loop's cache behaviour.
class PageTableEntry {
 public:
  PageTableEntry() = default;
  PageTableEntry(Tier tier, FrameId frame, bool dirty)
      : bits_((frame << kFrameShift) |
              (tier == Tier::kNvm ? kNvmBit : 0u) | (dirty ? kDirtyBit : 0u)) {}

  Tier tier() const { return (bits_ & kNvmBit) != 0 ? Tier::kNvm : Tier::kDram; }
  FrameId frame() const { return bits_ >> kFrameShift; }
  bool dirty() const { return (bits_ & kDirtyBit) != 0; }

  void mark_dirty() { bits_ |= kDirtyBit; }
  /// Re-points the entry at a new tier/frame, keeping the dirty bit.
  void retarget(Tier tier, FrameId frame) {
    bits_ = (frame << kFrameShift) | (tier == Tier::kNvm ? kNvmBit : 0u) |
            (bits_ & kDirtyBit);
  }

 private:
  static constexpr std::uint64_t kNvmBit = 1;
  static constexpr std::uint64_t kDirtyBit = 2;
  static constexpr int kFrameShift = 2;

  std::uint64_t bits_ = 0;
};

/// Hash-map page table. Only *resident* pages have entries; a miss means the
/// page is on disk (or never touched — the distinction is the caller's).
class PageTable {
 public:
  /// Pre-sizes the table for `frames` resident pages (residency is bounded
  /// by the frame count, so sizing here removes all rehashing at runtime).
  void reserve(std::uint64_t frames);

  /// Entry for a resident page, or nullopt.
  std::optional<PageTableEntry> lookup(PageId page) const;

  /// Pointer access for in-place updates; nullptr when not resident.
  PageTableEntry* find(PageId page);
  const PageTableEntry* find(PageId page) const;

  /// `find` with the caller-memoized key hash (block-replay fast path; see
  /// FlatPageMap::find_hashed). `hash` must equal hash_page_id(page).
  PageTableEntry* find_hashed(PageId page, std::uint64_t hash) {
    return entries_.find_hashed(page, hash);
  }
  const PageTableEntry* find_hashed(PageId page, std::uint64_t hash) const {
    return entries_.find_hashed(page, hash);
  }

  /// Adds a mapping; the page must not be resident.
  void map(PageId page, Tier tier, FrameId frame, bool dirty = false);

  /// Removes a mapping; the page must be resident. Returns the old entry.
  PageTableEntry unmap(PageId page);

  /// Re-points a resident page at a new tier/frame (migration), keeping the
  /// dirty bit.
  void remap(PageId page, Tier tier, FrameId frame);

  /// Warms the cache line holding `page`'s entry (see FlatPageMap::prefetch).
  void prefetch(PageId page) const { entries_.prefetch(page); }

  bool is_resident(PageId page) const { return entries_.contains(page); }
  std::uint64_t resident_pages() const { return entries_.size(); }
  std::uint64_t resident_in(Tier tier) const {
    return tier == Tier::kDram ? dram_count_ : nvm_count_;
  }

 private:
  util::FlatPageMap<PageTableEntry> entries_;
  std::uint64_t dram_count_ = 0;
  std::uint64_t nvm_count_ = 0;
};

}  // namespace hymem::os
