// Page table: virtual page -> {module, frame, dirty}.
//
// This is the OS-level structure the paper's scheme manipulates: migrations
// are page-table remappings plus DMA copies, invisible to the application.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "util/types.hpp"

namespace hymem::os {

/// One mapping. Pages not present in the table live on disk.
struct PageTableEntry {
  Tier tier = Tier::kDram;
  FrameId frame = kInvalidFrame;
  bool dirty = false;
};

/// Hash-map page table. Only *resident* pages have entries; a miss means the
/// page is on disk (or never touched — the distinction is the caller's).
class PageTable {
 public:
  /// Entry for a resident page, or nullopt.
  std::optional<PageTableEntry> lookup(PageId page) const;

  /// Pointer access for in-place updates; nullptr when not resident.
  PageTableEntry* find(PageId page);
  const PageTableEntry* find(PageId page) const;

  /// Adds a mapping; the page must not be resident.
  void map(PageId page, Tier tier, FrameId frame, bool dirty = false);

  /// Removes a mapping; the page must be resident. Returns the old entry.
  PageTableEntry unmap(PageId page);

  /// Re-points a resident page at a new tier/frame (migration), keeping the
  /// dirty bit.
  void remap(PageId page, Tier tier, FrameId frame);

  bool is_resident(PageId page) const { return entries_.count(page) > 0; }
  std::uint64_t resident_pages() const { return entries_.size(); }
  std::uint64_t resident_in(Tier tier) const {
    return tier == Tier::kDram ? dram_count_ : nvm_count_;
  }

 private:
  std::unordered_map<PageId, PageTableEntry> entries_;
  std::uint64_t dram_count_ = 0;
  std::uint64_t nvm_count_ = 0;
};

}  // namespace hymem::os
