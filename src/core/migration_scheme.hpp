// The paper's proposed data-migration scheme (Section IV, Algorithm 1).
//
// Two unmodified LRU queues — one per module — so the hit ratio matches a
// plain LRU of the same total size. The scheme only decides *placement*:
//
//   * every page fault fills DRAM (all-new pages are the most likely to be
//     re-accessed; landing them in NVM would cost an NVM page write anyway,
//     because the demotion it forces writes a page into NVM regardless);
//   * the DRAM LRU victim demotes to the NVM queue head;
//   * the NVM LRU victim evicts to disk;
//   * an NVM page migrates to DRAM only when its windowed read/write counter
//     exceeds read_threshold / write_threshold — i.e. only when the page has
//     proven hot enough that the DMA round trip will pay for itself. Unlike
//     CLOCK-DWF, writes to NVM pages are served *by NVM* until that proof
//     arrives.
#pragma once

#include <functional>
#include <memory>

#include "core/adaptive_threshold.hpp"
#include "core/dram_queue.hpp"
#include "core/migration_config.hpp"
#include "core/nvm_queue.hpp"
#include "policy/hybrid_policy.hpp"

namespace hymem::core {

/// The proposed two-LRU migration policy.
class TwoLruMigrationPolicy final : public policy::HybridPolicy {
 public:
  TwoLruMigrationPolicy(os::Vmm& vmm, const MigrationConfig& config);

  std::string_view name() const override {
    return config_.adaptive ? "two-lru-adaptive" : "two-lru";
  }
  Nanoseconds on_access(PageId page, AccessType type) override;
  /// Block-batched replay path: same decisions as on_access in sequence
  /// (the stream-vs-materialized differential pins this), restructured
  /// around two batch-only facts — a read's residency/tier classification
  /// needs only the policy's own queue indexes (one probe instead of two),
  /// and same-page runs can serve from a cached node cursor with no probe
  /// at all. Every probe reuses the decode-time memoized page hash.
  Nanoseconds on_block(const policy::AccessBlock& block) override;
  void prefetch(PageId page) const override {
    vmm_.prefetch_translation(page);
    dram_.prefetch(page);
    nvm_.prefetch(page);
  }

  const MigrationConfig& config() const { return config_; }
  const CountedLruQueue& nvm_queue() const { return nvm_; }
  const DramLruQueue& dram_queue() const { return dram_; }

  /// Effective thresholds (tracks the controller when adaptive).
  std::uint64_t read_threshold() const;
  std::uint64_t write_threshold() const;

  /// Migrations the scheme initiated NVM->DRAM (threshold crossings).
  std::uint64_t promotions() const { return promotions_; }
  /// Demotions DRAM->NVM (capacity-forced).
  std::uint64_t demotions() const { return demotions_; }
  /// Promotions suppressed by the rate limiter.
  std::uint64_t throttled_promotions() const { return throttled_; }

  /// Controller (null unless adaptive).
  const AdaptiveThresholdController* controller() const {
    return controller_.get();
  }

  /// Debug hook, run after every completed on_access (HYMEM_CHECK-style
  /// validation: src/check installs its invariant checker here). Null by
  /// default; the hot path pays one branch. The hook must not mutate the
  /// policy or the VMM.
  using AuditHook = std::function<void(const TwoLruMigrationPolicy&, PageId,
                                       AccessType)>;
  void set_audit_hook(AuditHook hook) { audit_hook_ = std::move(hook); }

 private:
  /// Promotes an NVM-resident page into DRAM, demoting the DRAM LRU victim
  /// when DRAM is full. Returns migration latency.
  Nanoseconds promote(PageId page);
  /// Frees a DRAM frame by demoting the DRAM LRU victim into the NVM queue
  /// head (evicting the NVM LRU victim to disk when NVM is full too).
  Nanoseconds demote_dram_victim();
  /// Removes `page` from the DRAM queue, reporting its promotion score (if
  /// it arrived via promotion) to the adaptive controller.
  void evict_from_dram(PageId page);
  /// Token-bucket admission for one promotion (true = allowed).
  bool admit_promotion();
  /// The actual Algorithm 1 access path (on_access wraps it with the audit
  /// hook).
  Nanoseconds serve(PageId page, AccessType type);

  MigrationConfig config_;
  DramLruQueue dram_;
  CountedLruQueue nvm_;
  std::unique_ptr<AdaptiveThresholdController> controller_;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t throttled_ = 0;
  std::uint64_t accesses_seen_ = 0;
  double tokens_ = 0.0;
  AuditHook audit_hook_;
};

}  // namespace hymem::core
