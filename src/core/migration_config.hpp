// Parameters of the proposed data-migration scheme (Section IV).
//
// The paper prescribes the *relations*: write-dominant pages get priority,
// so `write_perc` and `write_threshold` are set higher than `read_perc` and
// `read_threshold`; the absolute values depend on the migration cost of the
// chosen NVM and are swept by bench_ablation_thresholds.
#pragma once

#include <cstdint>

namespace hymem::core {

/// Tunables of the two-LRU migration scheme.
struct MigrationConfig {
  /// Fraction of top NVM LRU positions holding a read counter.
  double read_perc = 0.10;
  /// Fraction of top NVM LRU positions holding a write counter (> read_perc).
  double write_perc = 0.30;
  /// A page whose windowed read counter EXCEEDS this migrates to DRAM.
  std::uint64_t read_threshold = 8;
  /// A page whose windowed write counter EXCEEDS this migrates to DRAM
  /// (> read_threshold, per Section IV).
  std::uint64_t write_threshold = 12;
  /// Enable the adaptive threshold controller (the paper's "ongoing
  /// research" extension).
  bool adaptive = false;
  /// Optional migration rate limit: at most this many promotions per 1000
  /// accesses (token bucket; 0 = unlimited). A real OS bounds migration
  /// bandwidth so the DMA engine cannot starve demand traffic; the limiter
  /// also caps the damage of a mis-set threshold on churny workloads.
  std::uint64_t max_promotions_per_kacc = 0;
};

}  // namespace hymem::core
