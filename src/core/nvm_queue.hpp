// The NVM-side queue of the proposed scheme: an *unmodified* LRU order plus
// windowed read/write counters layered on top (Fig. 3 / Algorithm 1).
//
// Counters exist only for the top `read_perc` / `write_perc` fraction of
// queue positions. A page falling past a window boundary has that counter
// reset (Algorithm 1 lines 8-9); a hit on a page outside a window re-enters
// it with counter = 1 (lines 13-14 / 19-20). This windowing is what filters
// out (a) cold pages that merely sit in NVM long enough to accumulate
// accesses and (b) pages that bounce around the queue — the two failure
// modes Section IV identifies for naive whole-queue counters.
//
// Implementation note: both windows are maintained as strict prefixes of the
// LRU list with O(1) incremental boundary updates per operation (no scans).
#pragma once

#include <cstdint>
#include <optional>

#include "util/check.hpp"
#include "util/flat_page_map.hpp"
#include "util/intrusive_list.hpp"
#include "util/slab_pool.hpp"
#include "util/types.hpp"

namespace hymem::core {

/// LRU queue with windowed access counters.
class CountedLruQueue {
 public:
  /// One tracked page. Public so the block-replay fast path can update a
  /// found node directly; treat as opaque outside hymem::core.
  ///
  /// Each windowed counter packs its membership flag into the top bit of a
  /// 32-bit word, making the node exactly 32 bytes (half the naive layout):
  /// the NVM-hit and demotion paths chase a random node pointer, so fewer
  /// node cache lines is fewer misses. Counters saturate at 2^31 - 1 — a
  /// promotion threshold at or above that is unreachable either way.
  struct Node {
    PageId page = kInvalidPage;
    ListHook hook;
    std::uint32_t packed[2] = {0, 0};  // [kRead, kWrite]: flag<<31 | counter

    static constexpr std::uint32_t kInWindowBit = 1u << 31;
    static constexpr std::uint32_t kCounterMax = kInWindowBit - 1;
    bool in_window(int idx) const {
      return (packed[idx] & kInWindowBit) != 0;
    }
    std::uint32_t counter(int idx) const { return packed[idx] & kCounterMax; }
  };

  /// `capacity` pages; window sizes are ceil(perc * capacity), clamped to
  /// [0, capacity].
  CountedLruQueue(std::size_t capacity, double read_perc, double write_perc);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool contains(PageId page) const { return index_.contains(page); }
  bool full() const { return size() >= capacity_; }

  std::size_t read_window_target() const { return read_win_.target; }
  std::size_t write_window_target() const { return write_win_.target; }

  /// Warms the membership-index cache line for an upcoming record_hit.
  void prefetch(PageId page) const { index_.prefetch(page); }

  /// Records a hit per Algorithm 1: promotes the page to MRU, maintains both
  /// windows (resetting counters that fall off), and updates the counter for
  /// the access type (increment inside the window, restart at 1 from
  /// outside). Returns the new value of that counter.
  std::uint64_t record_hit(PageId page, AccessType type);

  /// Node cursor for the block-replay fast path, probed with the
  /// caller-memoized key hash; nullptr when the page is untracked. Valid
  /// until the next insert/erase.
  Node* find_node_hashed(PageId page, std::uint64_t hash) {
    Node* const* found = index_.find_hashed(page, hash);
    return found != nullptr ? *found : nullptr;
  }

  /// The window/counter/splice body of record_hit, applied to an
  /// already-found node. Header-inline: ~10% of replayed accesses land here,
  /// and the whole body is a handful of pointer moves and counter updates —
  /// an out-of-line call roughly doubled its measured cost.
  std::uint64_t record_hit_node(Node& node, AccessType type) {
    const int idx = type == AccessType::kRead ? 0 : 1;
    const bool was_in = node.in_window(idx);

    enter_front(read_win_, node);
    enter_front(write_win_, node);
    list_.move_to_front(node);

    // Algorithm 1 lines 10-22: increment inside the window, restart at 1
    // when (re-)entering from outside. A zero-width window tracks nothing.
    const bool now_in = node.in_window(idx);
    const std::uint32_t before = node.counter(idx);
    const std::uint32_t after =
        now_in ? (was_in ? std::min(before + 1, Node::kCounterMax) : 1u) : 0u;
    node.packed[idx] = (node.packed[idx] & Node::kInWindowBit) | after;
    // The new value never drops below the old one here (resets happen in
    // enter_front/leave, which already debit the sum).
    (idx == 0 ? read_win_ : write_win_).sum += after - before;
    return after;
  }

  /// Inserts a new page at the MRU position (demotion from DRAM or fill).
  void insert_front(PageId page);

  /// Removes a page (migration to DRAM, or eviction).
  void erase(PageId page);

  /// The LRU-end page, i.e. the eviction victim. nullopt when empty.
  std::optional<PageId> lru_victim() const;

  /// One window's aggregate state, for epoch sampling: configured target,
  /// current population and the sum of the member pages' counters. The sum
  /// is maintained incrementally (like the boundaries), so a snapshot is
  /// O(1) — epoch sampling never walks the queue.
  struct WindowStats {
    std::size_t target = 0;
    std::size_t pages = 0;
    std::uint64_t counter_sum = 0;
    double mean_counter() const {
      return pages ? static_cast<double>(counter_sum) /
                         static_cast<double>(pages)
                   : 0.0;
    }
  };
  WindowStats read_window_stats() const { return window_stats(read_win_); }
  WindowStats write_window_stats() const { return window_stats(write_win_); }

  // --- Introspection (tests, debugging) -------------------------------------
  bool in_read_window(PageId page) const;
  bool in_write_window(PageId page) const;
  std::uint64_t read_counter(PageId page) const;
  std::uint64_t write_counter(PageId page) const;
  /// MRU-to-LRU traversal.
  template <typename Fn>
  void for_each_mru_to_lru(Fn&& fn) const {
    list_.for_each([&fn](const Node& n) { fn(n.page); });
  }
  /// Validates all window invariants (prefix property, counts, resets);
  /// throws on violation. O(n) — test use only.
  void check_invariants() const;

 private:
  /// One window over the list prefix. `idx` selects the node's packed
  /// flag+counter word (0 = read window, 1 = write window).
  struct Window {
    std::size_t target = 0;
    std::size_t count = 0;
    Node* boundary = nullptr;  // last node inside the window
    std::uint64_t sum = 0;     // sum of member counters, kept incrementally
    int idx = 0;
  };

  Node* find(PageId page) const;
  WindowStats window_stats(const Window& w) const;
  /// Handles window membership for a node about to move to the front
  /// (in-class so record_hit_node fuses into one inlined body).
  void enter_front(Window& w, Node& node) {
    if (w.target == 0) return;
    if (node.in_window(w.idx)) {
      // Already a member: membership is unchanged; only the boundary can
      // shift if the boundary node itself is moving to the front.
      if (w.boundary == &node && w.count > 1) {
        w.boundary = list_.prev(node);
      }
      return;
    }
    if (w.count >= w.target) {
      // Window is full: the current boundary page drops out and its counter
      // resets (Algorithm 1 lines 8-9).
      Node* leaver = w.boundary;
      w.sum -= leaver->counter(w.idx);
      leaver->packed[w.idx] = 0;
      w.boundary = w.count > 1 ? list_.prev(*leaver) : nullptr;
    } else {
      ++w.count;
    }
    node.packed[w.idx] |= Node::kInWindowBit;
    if (w.boundary == nullptr) w.boundary = &node;
  }
  /// Re-fills a window after a removal shrank it below min(target, size).
  void refill(Window& w);
  /// Removes a node from a window it belongs to (before list erase).
  void leave(Window& w, Node& node);

  std::size_t capacity_;
  IntrusiveList<Node, &Node::hook> list_;  // front = MRU
  util::SlabPool<Node> pool_;
  util::FlatPageMap<Node*> index_;
  Window read_win_;
  Window write_win_;
};

}  // namespace hymem::core
