// The NVM-side queue of the proposed scheme: an *unmodified* LRU order plus
// windowed read/write counters layered on top (Fig. 3 / Algorithm 1).
//
// Counters exist only for the top `read_perc` / `write_perc` fraction of
// queue positions. A page falling past a window boundary has that counter
// reset (Algorithm 1 lines 8-9); a hit on a page outside a window re-enters
// it with counter = 1 (lines 13-14 / 19-20). This windowing is what filters
// out (a) cold pages that merely sit in NVM long enough to accumulate
// accesses and (b) pages that bounce around the queue — the two failure
// modes Section IV identifies for naive whole-queue counters.
//
// Implementation note: both windows are maintained as strict prefixes of the
// LRU list with O(1) incremental boundary updates per operation (no scans).
#pragma once

#include <cstdint>
#include <optional>

#include "util/flat_page_map.hpp"
#include "util/intrusive_list.hpp"
#include "util/slab_pool.hpp"
#include "util/types.hpp"

namespace hymem::core {

/// LRU queue with windowed access counters.
class CountedLruQueue {
 public:
  /// `capacity` pages; window sizes are ceil(perc * capacity), clamped to
  /// [0, capacity].
  CountedLruQueue(std::size_t capacity, double read_perc, double write_perc);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool contains(PageId page) const { return index_.contains(page); }
  bool full() const { return size() >= capacity_; }

  std::size_t read_window_target() const { return read_win_.target; }
  std::size_t write_window_target() const { return write_win_.target; }

  /// Warms the membership-index cache line for an upcoming record_hit.
  void prefetch(PageId page) const { index_.prefetch(page); }

  /// Records a hit per Algorithm 1: promotes the page to MRU, maintains both
  /// windows (resetting counters that fall off), and updates the counter for
  /// the access type (increment inside the window, restart at 1 from
  /// outside). Returns the new value of that counter.
  std::uint64_t record_hit(PageId page, AccessType type);

  /// Inserts a new page at the MRU position (demotion from DRAM or fill).
  void insert_front(PageId page);

  /// Removes a page (migration to DRAM, or eviction).
  void erase(PageId page);

  /// The LRU-end page, i.e. the eviction victim. nullopt when empty.
  std::optional<PageId> lru_victim() const;

  /// One window's aggregate state, for epoch sampling: configured target,
  /// current population and the sum of the member pages' counters. The sum
  /// is maintained incrementally (like the boundaries), so a snapshot is
  /// O(1) — epoch sampling never walks the queue.
  struct WindowStats {
    std::size_t target = 0;
    std::size_t pages = 0;
    std::uint64_t counter_sum = 0;
    double mean_counter() const {
      return pages ? static_cast<double>(counter_sum) /
                         static_cast<double>(pages)
                   : 0.0;
    }
  };
  WindowStats read_window_stats() const { return window_stats(read_win_); }
  WindowStats write_window_stats() const { return window_stats(write_win_); }

  // --- Introspection (tests, debugging) -------------------------------------
  bool in_read_window(PageId page) const;
  bool in_write_window(PageId page) const;
  std::uint64_t read_counter(PageId page) const;
  std::uint64_t write_counter(PageId page) const;
  /// MRU-to-LRU traversal.
  template <typename Fn>
  void for_each_mru_to_lru(Fn&& fn) const {
    list_.for_each([&fn](const Node& n) { fn(n.page); });
  }
  /// Validates all window invariants (prefix property, counts, resets);
  /// throws on violation. O(n) — test use only.
  void check_invariants() const;

 private:
  struct Node {
    PageId page = kInvalidPage;
    ListHook hook;
    std::uint64_t read_ctr = 0;
    std::uint64_t write_ctr = 0;
    bool in_read = false;
    bool in_write = false;
  };

  /// One window over the list prefix.
  struct Window {
    std::size_t target = 0;
    std::size_t count = 0;
    Node* boundary = nullptr;  // last node inside the window
    std::uint64_t sum = 0;     // sum of member counters, kept incrementally
    bool Node::* flag;
    std::uint64_t Node::* ctr;
  };

  Node* find(PageId page) const;
  WindowStats window_stats(const Window& w) const;
  /// Handles window membership for a node about to move to the front.
  void enter_front(Window& w, Node& node);
  /// Re-fills a window after a removal shrank it below min(target, size).
  void refill(Window& w);
  /// Removes a node from a window it belongs to (before list erase).
  void leave(Window& w, Node& node);

  std::size_t capacity_;
  IntrusiveList<Node, &Node::hook> list_;  // front = MRU
  util::SlabPool<Node> pool_;
  util::FlatPageMap<Node*> index_;
  Window read_win_;
  Window write_win_;
};

}  // namespace hymem::core
