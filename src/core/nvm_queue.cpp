#include "core/nvm_queue.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/fraction.hpp"

namespace hymem::core {

CountedLruQueue::CountedLruQueue(std::size_t capacity, double read_perc,
                                 double write_perc)
    : capacity_(capacity), pool_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "queue capacity must be positive");
  index_.reserve(capacity);
  read_win_ = Window{util::snap_ceil_fraction(read_perc, capacity), 0, nullptr,
                     0, /*idx=*/0};
  write_win_ = Window{util::snap_ceil_fraction(write_perc, capacity), 0,
                      nullptr, 0, /*idx=*/1};
}

CountedLruQueue::Node* CountedLruQueue::find(PageId page) const {
  Node* const* found = index_.find(page);
  return found == nullptr ? nullptr : *found;
}

void CountedLruQueue::leave(Window& w, Node& node) {
  if (!node.in_window(w.idx)) return;
  if (w.boundary == &node) {
    w.boundary = w.count > 1 ? list_.prev(node) : nullptr;
  }
  w.sum -= node.counter(w.idx);
  node.packed[w.idx] = 0;
  --w.count;
}

void CountedLruQueue::refill(Window& w) {
  while (w.count < std::min(w.target, list_.size())) {
    Node* next = w.boundary ? list_.next(*w.boundary) : list_.front();
    if (next == nullptr) break;
    next->packed[w.idx] = Node::kInWindowBit;
    w.boundary = next;
    ++w.count;
  }
}

std::uint64_t CountedLruQueue::record_hit(PageId page, AccessType type) {
  Node* node = find(page);
  HYMEM_CHECK_MSG(node != nullptr, "hit on untracked page");
  return record_hit_node(*node, type);
}

void CountedLruQueue::insert_front(PageId page) {
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full queue");
  const auto [slot, inserted] = index_.try_emplace(page);
  HYMEM_CHECK_MSG(inserted, "insert of tracked page");
  Node* node = pool_.allocate();
  node->page = page;
  node->packed[0] = 0;
  node->packed[1] = 0;
  *slot = node;
  enter_front(read_win_, *node);
  enter_front(write_win_, *node);
  list_.push_front(*node);
}

void CountedLruQueue::erase(PageId page) {
  const std::optional<Node*> found = index_.take(page);
  HYMEM_CHECK_MSG(found.has_value(), "erase of untracked page");
  Node* node = *found;
  leave(read_win_, *node);
  leave(write_win_, *node);
  list_.erase(*node);
  pool_.release(node);
  refill(read_win_);
  refill(write_win_);
}

CountedLruQueue::WindowStats CountedLruQueue::window_stats(
    const Window& w) const {
  WindowStats stats;
  stats.target = w.target;
  stats.pages = w.count;
  stats.counter_sum = w.sum;
  return stats;
}

std::optional<PageId> CountedLruQueue::lru_victim() const {
  const Node* victim = list_.back();
  if (victim == nullptr) return std::nullopt;
  return victim->page;
}

bool CountedLruQueue::in_read_window(PageId page) const {
  const Node* node = find(page);
  HYMEM_CHECK(node != nullptr);
  return node->in_window(0);
}

bool CountedLruQueue::in_write_window(PageId page) const {
  const Node* node = find(page);
  HYMEM_CHECK(node != nullptr);
  return node->in_window(1);
}

std::uint64_t CountedLruQueue::read_counter(PageId page) const {
  const Node* node = find(page);
  HYMEM_CHECK(node != nullptr);
  return node->counter(0);
}

std::uint64_t CountedLruQueue::write_counter(PageId page) const {
  const Node* node = find(page);
  HYMEM_CHECK(node != nullptr);
  return node->counter(1);
}

void CountedLruQueue::check_invariants() const {
  for (const Window* w : {&read_win_, &write_win_}) {
    HYMEM_CHECK(w->count == std::min(w->target, list_.size()));
    // The window must be exactly the first `count` nodes, ending at boundary.
    std::size_t seen = 0;
    std::uint64_t walked_sum = 0;
    bool prefix_over = false;
    const Node* last_in = nullptr;
    list_.for_each([&](const Node& n) {
      if (n.in_window(w->idx)) {
        HYMEM_CHECK_MSG(!prefix_over, "window is not a prefix");
        ++seen;
        walked_sum += n.counter(w->idx);
        last_in = &n;
      } else {
        prefix_over = true;
        HYMEM_CHECK_MSG(n.counter(w->idx) == 0,
                        "counter not reset outside window");
      }
    });
    HYMEM_CHECK(seen == w->count);
    HYMEM_CHECK_MSG(walked_sum == w->sum,
                    "incremental window counter sum drifted from the walk");
    HYMEM_CHECK((w->count == 0) == (w->boundary == nullptr));
    if (w->boundary != nullptr) HYMEM_CHECK(w->boundary == last_in);
  }
}

}  // namespace hymem::core
