// Adaptive threshold controller — the extension the paper flags as ongoing
// research in Section V.B ("using adaptive threshold prediction can further
// improve the efficiency of the proposed scheme", motivated by raytrace,
// whose optimal thresholds differ from the other workloads').
//
// Mechanism: every promoted page is scored when it later leaves DRAM. The
// migration "paid off" iff the page collected at least `break_even` DRAM
// hits — the number of accesses at which the DRAM-vs-NVM latency savings
// amortize the round-trip DMA cost. The controller tracks the recent
// beneficial fraction and nudges the thresholds: too many wasted migrations
// -> raise thresholds (be pickier); almost all beneficial -> lower them
// (harvest more candidates).
#pragma once

#include <cstdint>

#include "core/migration_config.hpp"
#include "mem/technology.hpp"

namespace hymem::core {

/// Controller tunables.
struct AdaptiveConfig {
  /// Migrations scored per adaptation step.
  std::uint64_t window = 64;
  /// Raise thresholds when the beneficial fraction drops below this.
  double raise_below = 0.5;
  /// Lower thresholds when the beneficial fraction exceeds this.
  double lower_above = 0.9;
  std::uint64_t min_threshold = 1;
  std::uint64_t max_threshold = 64;
};

/// Feedback controller over the two migration thresholds.
class AdaptiveThresholdController {
 public:
  AdaptiveThresholdController(const MigrationConfig& initial,
                              const AdaptiveConfig& config,
                              std::uint64_t break_even_hits);

  /// Break-even DRAM hit count for the given technologies and page factor:
  /// ceil(PageFactor * (TR_nvm + TW_dram + TR_dram + TW_nvm) /
  ///      (avg NVM latency - avg DRAM latency)) — a full round trip,
  /// amortized by the per-access latency saving.
  static std::uint64_t break_even(const mem::MemTechnology& dram,
                                  const mem::MemTechnology& nvm,
                                  std::uint64_t page_factor);

  std::uint64_t read_threshold() const { return read_threshold_; }
  std::uint64_t write_threshold() const { return write_threshold_; }
  std::uint64_t break_even_hits() const { return break_even_; }

  /// Scores one finished promotion: the page left DRAM after `dram_hits`
  /// demand hits.
  void observe_promotion_outcome(std::uint64_t dram_hits);

  std::uint64_t adaptations() const { return adaptations_; }
  std::uint64_t observed() const { return observed_; }
  /// Beneficial fraction over everything observed so far.
  double lifetime_beneficial_fraction() const;

 private:
  void adapt();

  AdaptiveConfig config_;
  std::uint64_t break_even_;
  std::uint64_t read_threshold_;
  std::uint64_t write_threshold_;
  std::uint64_t window_total_ = 0;
  std::uint64_t window_beneficial_ = 0;
  std::uint64_t observed_ = 0;
  std::uint64_t beneficial_ = 0;
  std::uint64_t adaptations_ = 0;
};

}  // namespace hymem::core
