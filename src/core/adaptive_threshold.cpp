#include "core/adaptive_threshold.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hymem::core {

AdaptiveThresholdController::AdaptiveThresholdController(
    const MigrationConfig& initial, const AdaptiveConfig& config,
    std::uint64_t break_even_hits)
    : config_(config),
      break_even_(std::max<std::uint64_t>(1, break_even_hits)),
      read_threshold_(initial.read_threshold),
      write_threshold_(initial.write_threshold) {
  HYMEM_CHECK(config.window > 0);
  HYMEM_CHECK(config.min_threshold >= 1);
  HYMEM_CHECK(config.max_threshold >= config.min_threshold);
}

std::uint64_t AdaptiveThresholdController::break_even(
    const mem::MemTechnology& dram, const mem::MemTechnology& nvm,
    std::uint64_t page_factor) {
  const double round_trip =
      static_cast<double>(page_factor) *
      (nvm.read_latency_ns + dram.write_latency_ns +  // NVM -> DRAM
       dram.read_latency_ns + nvm.write_latency_ns);  // eventual DRAM -> NVM
  const double nvm_avg = (nvm.read_latency_ns + nvm.write_latency_ns) / 2.0;
  const double dram_avg = (dram.read_latency_ns + dram.write_latency_ns) / 2.0;
  const double saving = nvm_avg - dram_avg;
  if (saving <= 0.0) return 1;
  return static_cast<std::uint64_t>(std::ceil(round_trip / saving));
}

void AdaptiveThresholdController::observe_promotion_outcome(
    std::uint64_t dram_hits) {
  const bool beneficial = dram_hits >= break_even_;
  ++observed_;
  ++window_total_;
  if (beneficial) {
    ++beneficial_;
    ++window_beneficial_;
  }
  if (window_total_ >= config_.window) adapt();
}

double AdaptiveThresholdController::lifetime_beneficial_fraction() const {
  return observed_ ? static_cast<double>(beneficial_) /
                         static_cast<double>(observed_)
                   : 1.0;
}

void AdaptiveThresholdController::adapt() {
  const double fraction = static_cast<double>(window_beneficial_) /
                          static_cast<double>(window_total_);
  auto clamp = [&](std::uint64_t v) {
    return std::clamp(v, config_.min_threshold, config_.max_threshold);
  };
  if (fraction < config_.raise_below) {
    // Too many wasted round trips: demand more evidence before promoting.
    read_threshold_ = clamp(read_threshold_ + 1);
    write_threshold_ = clamp(write_threshold_ + 2);
    ++adaptations_;
  } else if (fraction > config_.lower_above) {
    // Nearly everything pays off: we are likely leaving hot pages in NVM.
    read_threshold_ = clamp(read_threshold_ > 1 ? read_threshold_ - 1 : 1);
    write_threshold_ = clamp(write_threshold_ > 1 ? write_threshold_ - 1 : 1);
    ++adaptations_;
  }
  window_total_ = 0;
  window_beneficial_ = 0;
}

}  // namespace hymem::core
