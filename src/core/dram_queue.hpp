// DRAM-side queue of the migration scheme: a plain LRU (Algorithm 1 keeps
// both queues unmodified LRU) that additionally carries the open-promotion
// hit counter inside the queue node. The scheme needs that counter on every
// DRAM demand hit to score promotions; storing it next to the recency hook
// means the per-access DRAM-hit path pays exactly one index probe — the
// node found for the LRU splice is the node holding the counter (a separate
// page -> counter map costs a second hash probe per hit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/flat_page_map.hpp"
#include "util/intrusive_list.hpp"
#include "util/slab_pool.hpp"
#include "util/types.hpp"

namespace hymem::core {

/// LRU queue over DRAM-resident pages with per-node promotion scoring.
/// Nodes live in slab storage; the index is a flat map pre-sized to
/// `capacity` — no per-operation allocation, no rehashing.
class DramLruQueue {
 public:
  explicit DramLruQueue(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool full() const { return size() >= capacity_; }
  bool contains(PageId page) const { return index_.contains(page); }

  /// Warms the index cache line for an upcoming access to `page`.
  void prefetch(PageId page) const { index_.prefetch(page); }

  /// Records a demand hit: moves the page to MRU and, if it is an open
  /// promotion, counts the hit towards its score.
  void on_hit(PageId page);

  /// Starts tracking `page` at the MRU position (must be absent, queue not
  /// full). `promoted` opens a promotion with a zeroed hit score.
  void insert(PageId page, bool promoted);

  /// The page next in line for demotion (LRU tail); nullopt iff empty.
  std::optional<PageId> lru_victim() const;

  /// Stops tracking `page` (demotion or eviction). Returns its hit score if
  /// it was an open promotion, nullopt otherwise.
  std::optional<std::uint64_t> erase(PageId page);

  /// Open-promotion hit score of `page` (for tests); nullopt when the page
  /// is not an open promotion.
  std::optional<std::uint64_t> promotion_hits(PageId page) const;

  /// MRU-to-LRU traversal (invariant checking, differential diffing).
  template <typename Fn>
  void for_each_mru_to_lru(Fn&& fn) const {
    list_.for_each([&fn](const Node& n) { fn(n.page); });
  }

 private:
  struct Node {
    PageId page = kInvalidPage;
    std::uint64_t hits = 0;
    bool promoted = false;
    ListHook hook;
  };

  std::size_t capacity_;
  IntrusiveList<Node, &Node::hook> list_;  // front = MRU
  util::SlabPool<Node> pool_;
  util::FlatPageMap<Node*> index_;
};

}  // namespace hymem::core
