// DRAM-side queue of the migration scheme: a plain LRU (Algorithm 1 keeps
// both queues unmodified LRU) that additionally carries the open-promotion
// hit counter inside the queue node. The scheme needs that counter on every
// DRAM demand hit to score promotions; storing it next to the recency hook
// means the per-access DRAM-hit path pays exactly one index probe — the
// node found for the LRU splice is the node holding the counter (a separate
// page -> counter map costs a second hash probe per hit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "util/check.hpp"
#include "util/flat_page_map.hpp"
#include "util/intrusive_list.hpp"
#include "util/slab_pool.hpp"
#include "util/types.hpp"

namespace hymem::core {

/// LRU queue over DRAM-resident pages with per-node promotion scoring.
/// Nodes live in slab storage; the index is a flat map pre-sized to
/// `capacity` — no per-operation allocation, no rehashing.
class DramLruQueue {
 public:
  /// One tracked page. Public so the block-replay fast path can splice a
  /// found node directly; treat as opaque outside hymem::core.
  ///
  /// The open-promotion flag lives in the top bit of `score` so the node is
  /// exactly 32 bytes — the DRAM-hit path chases a random node pointer per
  /// access, and a third less node footprint is a third fewer cache lines
  /// under that random walk. A promotion's hit count cannot reach 2^62.
  ///
  /// Bit 62 is a *deferred dirty mark*: the block-replay fast path classifies
  /// writes with the same single index probe as reads and parks the
  /// page-table dirty bit here instead of paying a second (page-table) probe
  /// per write. The scheme flushes it to the real page-table entry when the
  /// page leaves DRAM — eviction, the only consumer of the dirty bit, can
  /// only happen after that demotion.
  struct Node {
    PageId page = kInvalidPage;
    std::uint64_t score = 0;  // kPromotedBit | kDirtyBit | hits
    ListHook hook;

    static constexpr std::uint64_t kPromotedBit = 1ULL << 63;
    static constexpr std::uint64_t kDirtyBit = 1ULL << 62;
    bool promoted() const { return (score & kPromotedBit) != 0; }
    bool dirty() const { return (score & kDirtyBit) != 0; }
    void mark_dirty() { score |= kDirtyBit; }
    std::uint64_t hits() const { return score & ~(kPromotedBit | kDirtyBit); }
  };

  explicit DramLruQueue(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool full() const { return size() >= capacity_; }
  bool contains(PageId page) const { return index_.contains(page); }

  /// Warms the index cache line for an upcoming access to `page`.
  void prefetch(PageId page) const { index_.prefetch(page); }

  /// Records a demand hit: moves the page to MRU and, if it is an open
  /// promotion, counts the hit towards its score.
  void on_hit(PageId page);

  /// Node cursor for the block-replay fast path, probed with the
  /// caller-memoized key hash; nullptr when the page is untracked. Valid
  /// until the next insert/erase.
  Node* find_node_hashed(PageId page, std::uint64_t hash) {
    Node* const* found = index_.find_hashed(page, hash);
    return found != nullptr ? *found : nullptr;
  }

  /// `find_node_hashed` without a memoized hash (demotion-path use).
  Node* find_node(PageId page) {
    return find_node_hashed(page, util::hash_page_id(page));
  }

  /// The splice/scoring half of on_hit, applied to an already-found node
  /// (header-inline so it fuses into the block loop). Branchless: adding
  /// `score >> 63` increments the hit count iff the promoted bit is set.
  void on_hit_node(Node& node) {
    list_.move_to_front(node);
    node.score += node.score >> 63;
  }

  /// Starts tracking `page` at the MRU position (must be absent, queue not
  /// full). `promoted` opens a promotion with a zeroed hit score.
  void insert(PageId page, bool promoted);

  /// The page next in line for demotion (LRU tail); nullopt iff empty.
  std::optional<PageId> lru_victim() const;

  /// Stops tracking `page` (demotion or eviction). Returns its hit score if
  /// it was an open promotion, nullopt otherwise.
  std::optional<std::uint64_t> erase(PageId page);

  /// Open-promotion hit score of `page` (for tests); nullopt when the page
  /// is not an open promotion.
  std::optional<std::uint64_t> promotion_hits(PageId page) const;

  /// MRU-to-LRU traversal (invariant checking, differential diffing).
  template <typename Fn>
  void for_each_mru_to_lru(Fn&& fn) const {
    list_.for_each([&fn](const Node& n) { fn(n.page); });
  }

 private:
  std::size_t capacity_;
  IntrusiveList<Node, &Node::hook> list_;  // front = MRU
  util::SlabPool<Node> pool_;
  util::FlatPageMap<Node*> index_;
};

}  // namespace hymem::core
