#include "core/dram_queue.hpp"

#include "util/check.hpp"

namespace hymem::core {

DramLruQueue::DramLruQueue(std::size_t capacity)
    : capacity_(capacity), pool_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "DRAM queue capacity must be positive");
  index_.reserve(capacity);
}

void DramLruQueue::on_hit(PageId page) {
  Node* const* found = index_.find(page);
  HYMEM_CHECK_MSG(found != nullptr, "hit on untracked page");
  Node* node = *found;
  on_hit_node(*node);
}

void DramLruQueue::insert(PageId page, bool promoted) {
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full DRAM queue");
  const auto [slot, inserted] = index_.try_emplace(page);
  HYMEM_CHECK_MSG(inserted, "insert of tracked page");
  Node* node = pool_.allocate();
  node->page = page;
  node->score = promoted ? Node::kPromotedBit : 0;
  *slot = node;
  list_.push_front(*node);
}

std::optional<PageId> DramLruQueue::lru_victim() const {
  const Node* victim = list_.back();
  if (victim == nullptr) return std::nullopt;
  return victim->page;
}

std::optional<std::uint64_t> DramLruQueue::erase(PageId page) {
  const std::optional<Node*> found = index_.take(page);
  HYMEM_CHECK_MSG(found.has_value(), "erase of untracked page");
  Node* node = *found;
  const std::optional<std::uint64_t> score =
      node->promoted() ? std::optional<std::uint64_t>(node->hits())
                       : std::nullopt;
  list_.erase(*node);
  pool_.release(node);
  return score;
}

std::optional<std::uint64_t> DramLruQueue::promotion_hits(PageId page) const {
  Node* const* found = index_.find(page);
  if (found == nullptr || !(*found)->promoted()) return std::nullopt;
  return (*found)->hits();
}

}  // namespace hymem::core
