#include "core/migration_scheme.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::core {

TwoLruMigrationPolicy::TwoLruMigrationPolicy(os::Vmm& vmm,
                                             const MigrationConfig& config)
    : policy::HybridPolicy(vmm),
      config_(config),
      dram_(static_cast<std::size_t>(vmm.frames(Tier::kDram))),
      nvm_(static_cast<std::size_t>(vmm.frames(Tier::kNvm)),
           config.read_perc, config.write_perc) {
  HYMEM_CHECK_MSG(vmm.frames(Tier::kDram) > 0 && vmm.frames(Tier::kNvm) > 0,
                  "the migration scheme needs both modules populated");
  if (config_.adaptive) {
    const auto& cfg = vmm.config();
    controller_ = std::make_unique<AdaptiveThresholdController>(
        config_, AdaptiveConfig{},
        AdaptiveThresholdController::break_even(cfg.dram, cfg.nvm,
                                                vmm.page_factor()));
  }
}

std::uint64_t TwoLruMigrationPolicy::read_threshold() const {
  return controller_ ? controller_->read_threshold() : config_.read_threshold;
}

std::uint64_t TwoLruMigrationPolicy::write_threshold() const {
  return controller_ ? controller_->write_threshold() : config_.write_threshold;
}

void TwoLruMigrationPolicy::evict_from_dram(PageId page) {
  const std::optional<std::uint64_t> score = dram_.erase(page);
  if (score.has_value() && controller_) {
    controller_->observe_promotion_outcome(*score);
  }
}

Nanoseconds TwoLruMigrationPolicy::demote_dram_victim() {
  const auto victim = dram_.lru_victim();
  HYMEM_CHECK_MSG(victim.has_value(), "DRAM LRU empty while full");
  if (!vmm_.has_free_frame(Tier::kNvm)) {
    const auto nvm_victim = nvm_.lru_victim();
    HYMEM_CHECK_MSG(nvm_victim.has_value(), "NVM queue empty while full");
    nvm_.erase(*nvm_victim);
    vmm_.evict(*nvm_victim);
  }
  evict_from_dram(*victim);
  const Nanoseconds latency = vmm_.migrate(*victim, Tier::kNvm);
  nvm_.insert_front(*victim);
  ++demotions_;
  return latency;
}

Nanoseconds TwoLruMigrationPolicy::promote(PageId page) {
  Nanoseconds latency = 0;
  if (vmm_.has_free_frame(Tier::kDram)) {
    nvm_.erase(page);
    latency += vmm_.migrate(page, Tier::kDram);
  } else {
    const auto victim = dram_.lru_victim();
    HYMEM_CHECK_MSG(victim.has_value(), "DRAM LRU empty while full");
    evict_from_dram(*victim);
    nvm_.erase(page);
    latency += vmm_.swap(page, *victim);
    nvm_.insert_front(*victim);
    ++demotions_;
  }
  dram_.insert(page, /*promoted=*/true);
  ++promotions_;
  return latency;
}

bool TwoLruMigrationPolicy::admit_promotion() {
  if (config_.max_promotions_per_kacc == 0) return true;
  if (tokens_ < 1.0) {
    ++throttled_;
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

Nanoseconds TwoLruMigrationPolicy::on_access(PageId page, AccessType type) {
  const Nanoseconds latency = serve(page, type);
  if (audit_hook_) audit_hook_(*this, page, type);
  return latency;
}

Nanoseconds TwoLruMigrationPolicy::serve(PageId page, AccessType type) {
  // Refill the promotion token bucket (rate per 1000 accesses).
  ++accesses_seen_;
  if (config_.max_promotions_per_kacc > 0) {
    tokens_ = std::min(
        static_cast<double>(config_.max_promotions_per_kacc),
        tokens_ + static_cast<double>(config_.max_promotions_per_kacc) / 1000.0);
  }
  // One page-table probe classifies the access AND serves resident hits
  // (the historical tier_of + access pair probed twice).
  const auto hit = vmm_.access_if_resident(page, type);
  if (hit.has_value() && hit->tier == Tier::kDram) {
    // Algorithm 1 lines 2-3: plain LRU housekeeping. The queue node carries
    // the open-promotion score, so this is a single index probe.
    dram_.on_hit(page);
    return hit->latency;
  }
  if (hit.has_value()) {
    // Lines 5-25: served from NVM; update the windowed counter and promote
    // only past the threshold.
    const std::uint64_t counter = nvm_.record_hit(page, type);
    const std::uint64_t threshold =
        type == AccessType::kRead ? read_threshold() : write_threshold();
    if (counter > threshold && admit_promotion()) {
      return hit->latency + promote(page);
    }
    return hit->latency;
  }
  // Lines 27-28: all page faults fill DRAM; demote the DRAM LRU victim when
  // needed.
  Nanoseconds latency = 0;
  if (!vmm_.has_free_frame(Tier::kDram)) latency += demote_dram_victim();
  latency += vmm_.fault_in(page, Tier::kDram);
  dram_.insert(page, /*promoted=*/false);
  if (type == AccessType::kWrite) vmm_.touch_dirty(page);
  return latency;
}

}  // namespace hymem::core
