#include "core/migration_scheme.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::core {

TwoLruMigrationPolicy::TwoLruMigrationPolicy(os::Vmm& vmm,
                                             const MigrationConfig& config)
    : policy::HybridPolicy(vmm),
      config_(config),
      dram_(static_cast<std::size_t>(vmm.frames(Tier::kDram))),
      nvm_(static_cast<std::size_t>(vmm.frames(Tier::kNvm)),
           config.read_perc, config.write_perc) {
  HYMEM_CHECK_MSG(vmm.frames(Tier::kDram) > 0 && vmm.frames(Tier::kNvm) > 0,
                  "the migration scheme needs both modules populated");
  if (config_.adaptive) {
    const auto& cfg = vmm.config();
    controller_ = std::make_unique<AdaptiveThresholdController>(
        config_, AdaptiveConfig{},
        AdaptiveThresholdController::break_even(cfg.dram, cfg.nvm,
                                                vmm.page_factor()));
  }
}

std::uint64_t TwoLruMigrationPolicy::read_threshold() const {
  return controller_ ? controller_->read_threshold() : config_.read_threshold;
}

std::uint64_t TwoLruMigrationPolicy::write_threshold() const {
  return controller_ ? controller_->write_threshold() : config_.write_threshold;
}

void TwoLruMigrationPolicy::evict_from_dram(PageId page) {
  // Flush the node-deferred dirty mark (see on_block) into the page table
  // before the page leaves DRAM: the migrated-to-NVM entry keeps the bit,
  // and eviction accounting reads it from there.
  if (const DramLruQueue::Node* node = dram_.find_node(page);
      node != nullptr && node->dirty()) {
    vmm_.touch_dirty(page);
  }
  const std::optional<std::uint64_t> score = dram_.erase(page);
  if (score.has_value() && controller_) {
    controller_->observe_promotion_outcome(*score);
  }
}

Nanoseconds TwoLruMigrationPolicy::demote_dram_victim() {
  const auto victim = dram_.lru_victim();
  HYMEM_CHECK_MSG(victim.has_value(), "DRAM LRU empty while full");
  if (!vmm_.has_free_frame(Tier::kNvm)) {
    const auto nvm_victim = nvm_.lru_victim();
    HYMEM_CHECK_MSG(nvm_victim.has_value(), "NVM queue empty while full");
    nvm_.erase(*nvm_victim);
    vmm_.evict(*nvm_victim);
  }
  evict_from_dram(*victim);
  const Nanoseconds latency = vmm_.migrate(*victim, Tier::kNvm);
  nvm_.insert_front(*victim);
  ++demotions_;
  return latency;
}

Nanoseconds TwoLruMigrationPolicy::promote(PageId page) {
  Nanoseconds latency = 0;
  if (vmm_.has_free_frame(Tier::kDram)) {
    nvm_.erase(page);
    latency += vmm_.migrate(page, Tier::kDram);
  } else {
    const auto victim = dram_.lru_victim();
    HYMEM_CHECK_MSG(victim.has_value(), "DRAM LRU empty while full");
    evict_from_dram(*victim);
    nvm_.erase(page);
    latency += vmm_.swap(page, *victim);
    nvm_.insert_front(*victim);
    ++demotions_;
  }
  dram_.insert(page, /*promoted=*/true);
  ++promotions_;
  return latency;
}

bool TwoLruMigrationPolicy::admit_promotion() {
  if (config_.max_promotions_per_kacc == 0) return true;
  if (tokens_ < 1.0) {
    ++throttled_;
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

Nanoseconds TwoLruMigrationPolicy::on_access(PageId page, AccessType type) {
  const Nanoseconds latency = serve(page, type);
  if (audit_hook_) audit_hook_(*this, page, type);
  return latency;
}

Nanoseconds TwoLruMigrationPolicy::on_block(const policy::AccessBlock& block) {
  // Auditing wants the hook after every access: take the generic loop so
  // the checker semantics are identical to the reference engine.
  if (audit_hook_ || block.hashes == nullptr) {
    return policy::HybridPolicy::on_block(block);
  }
  // Batched Algorithm 1 with decisions and accounting identical to serve()
  // access for access (the stream-vs-materialized differential pins this).
  // One structural cut makes it fast — queue-index-first classification:
  // the policy's queues track exactly the DRAM/NVM-resident pages
  // (check_consistency and src/check verify that invariant), so a DRAM hit
  // classifies with ONE probe of the DRAM index. Reads have no dirty or
  // endurance side effects at all; DRAM writes park the dirty bit on the
  // queue node (Node::kDirtyBit) and evict_from_dram flushes it to the page
  // table at demotion — eviction, the only dirty-bit consumer, can only
  // follow a demotion, so deferral is invisible to every output. Only NVM
  // writes still fetch the page-table entry (wear accounting needs the
  // frame). Every probe reuses the decode-time memoized hash.
  //
  // Rejected by measurement on this loop (kept here so the next tuner does
  // not re-try them blind): staged/distance prefetching of the indexes and
  // split probe/serve mini-batches both ran slower — at replay footprints
  // the indexes are cache-resident and the extra instructions cost more
  // than the latency they hide; a same-page node cursor (~28% repeats)
  // also lost to its unpredictable guard branch.
  const Nanoseconds lat_dram_read =
      vmm_.demand_latency(Tier::kDram, AccessType::kRead);
  const Nanoseconds lat_dram_write =
      vmm_.demand_latency(Tier::kDram, AccessType::kWrite);
  const Nanoseconds lat_nvm_read =
      vmm_.demand_latency(Tier::kNvm, AccessType::kRead);
  const Nanoseconds lat_nvm_write =
      vmm_.demand_latency(Tier::kNvm, AccessType::kWrite);
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t nvm_reads = 0;
  std::uint64_t nvm_writes = 0;
  accesses_seen_ += block.size;  // serve() counts per access; the sum is equal
  // Hoisted by hand: promote() writes through `this`, so the compiler must
  // otherwise reload the throttle config on every access.
  const double token_cap = static_cast<double>(config_.max_promotions_per_kacc);
  const double token_refill = token_cap / 1000.0;
  Nanoseconds total = 0;
  for (std::size_t i = 0; i < block.size; ++i) {
    const PageId page = block.pages[i];
    const std::uint64_t hash = block.hashes[i];
    const AccessType type = block.types[i];
    // Token-bucket refill, exactly as serve().
    if (token_cap > 0) {
      tokens_ = std::min(token_cap, tokens_ + token_refill);
    }
    if (type == AccessType::kRead) {
      if (DramLruQueue::Node* node = dram_.find_node_hashed(page, hash)) {
        // Algorithm 1 lines 2-3 (DRAM read hit): one probe total.
        ++dram_reads;
        dram_.on_hit_node(*node);
        continue;
      }
      if (CountedLruQueue::Node* node = nvm_.find_node_hashed(page, hash)) {
        // Lines 5-25 (NVM read hit).
        ++nvm_reads;
        const std::uint64_t counter =
            nvm_.record_hit_node(*node, AccessType::kRead);
        if (counter > read_threshold() && admit_promotion()) {
          total += promote(page);
        }
        continue;
      }
    } else {
      if (DramLruQueue::Node* node = dram_.find_node_hashed(page, hash)) {
        // DRAM write hit: one probe, dirty mark deferred to the node.
        ++dram_writes;
        node->mark_dirty();
        dram_.on_hit_node(*node);
        continue;
      }
      if (os::PageTableEntry* entry = vmm_.entry_hashed(page, hash)) {
        // Resident but not in the DRAM queue: must be NVM (the queues track
        // residency exactly).
        HYMEM_CHECK_MSG(entry->tier() == Tier::kNvm, "hit on untracked page");
        entry->mark_dirty();
        vmm_.note_nvm_demand_write(entry->frame());
        ++nvm_writes;
        CountedLruQueue::Node* node = nvm_.find_node_hashed(page, hash);
        HYMEM_CHECK_MSG(node != nullptr, "hit on untracked page");
        const std::uint64_t counter =
            nvm_.record_hit_node(*node, AccessType::kWrite);
        if (counter > write_threshold() && admit_promotion()) {
          total += promote(page);
        }
        continue;
      }
    }
    // Lines 27-28: page fault; all fills go to DRAM.
    Nanoseconds latency = 0;
    if (!vmm_.has_free_frame(Tier::kDram)) latency += demote_dram_victim();
    latency += vmm_.fault_in(page, Tier::kDram);
    dram_.insert(page, /*promoted=*/false);
    if (type == AccessType::kWrite) vmm_.touch_dirty(page);
    total += latency;
  }
  vmm_.record_demand_batch(Tier::kDram, dram_reads, dram_writes);
  vmm_.record_demand_batch(Tier::kNvm, nvm_reads, nvm_writes);
  total += static_cast<double>(dram_reads) * lat_dram_read +
           static_cast<double>(dram_writes) * lat_dram_write +
           static_cast<double>(nvm_reads) * lat_nvm_read +
           static_cast<double>(nvm_writes) * lat_nvm_write;
  return total;
}

Nanoseconds TwoLruMigrationPolicy::serve(PageId page, AccessType type) {
  // Refill the promotion token bucket (rate per 1000 accesses).
  ++accesses_seen_;
  if (config_.max_promotions_per_kacc > 0) {
    tokens_ = std::min(
        static_cast<double>(config_.max_promotions_per_kacc),
        tokens_ + static_cast<double>(config_.max_promotions_per_kacc) / 1000.0);
  }
  // One page-table probe classifies the access AND serves resident hits
  // (the historical tier_of + access pair probed twice).
  const auto hit = vmm_.access_if_resident(page, type);
  if (hit.has_value() && hit->tier == Tier::kDram) {
    // Algorithm 1 lines 2-3: plain LRU housekeeping. The queue node carries
    // the open-promotion score, so this is a single index probe.
    dram_.on_hit(page);
    return hit->latency;
  }
  if (hit.has_value()) {
    // Lines 5-25: served from NVM; update the windowed counter and promote
    // only past the threshold.
    const std::uint64_t counter = nvm_.record_hit(page, type);
    const std::uint64_t threshold =
        type == AccessType::kRead ? read_threshold() : write_threshold();
    if (counter > threshold && admit_promotion()) {
      return hit->latency + promote(page);
    }
    return hit->latency;
  }
  // Lines 27-28: all page faults fill DRAM; demote the DRAM LRU victim when
  // needed.
  Nanoseconds latency = 0;
  if (!vmm_.has_free_frame(Tier::kDram)) latency += demote_dram_victim();
  latency += vmm_.fault_in(page, Tier::kDram);
  dram_.insert(page, /*promoted=*/false);
  if (type == AccessType::kWrite) vmm_.touch_dirty(page);
  return latency;
}

}  // namespace hymem::core
