#include "obs/policy_tap.hpp"

namespace hymem::obs {

void attach_policy_tap(core::TwoLruMigrationPolicy& policy,
                       MetricsRegistry& registry) {
  // Resolve every metric once; the hook then touches plain fields.
  Counter& reads = registry.counter("scheme.accesses.read");
  Counter& writes = registry.counter("scheme.accesses.write");
  Gauge& promotions = registry.gauge("scheme.promotions");
  Gauge& demotions = registry.gauge("scheme.demotions");
  Gauge& throttled = registry.gauge("scheme.throttled_promotions");
  Gauge& read_threshold = registry.gauge("scheme.read_threshold");
  Gauge& write_threshold = registry.gauge("scheme.write_threshold");
  Gauge& dram_resident = registry.gauge("scheme.dram_resident");
  Gauge& nvm_resident = registry.gauge("scheme.nvm_resident");
  policy.set_audit_hook([&reads, &writes, &promotions, &demotions, &throttled,
                         &read_threshold, &write_threshold, &dram_resident,
                         &nvm_resident](const core::TwoLruMigrationPolicy& p,
                                        PageId, AccessType type) {
    (type == AccessType::kRead ? reads : writes).inc();
    promotions.set(static_cast<double>(p.promotions()));
    demotions.set(static_cast<double>(p.demotions()));
    throttled.set(static_cast<double>(p.throttled_promotions()));
    read_threshold.set(static_cast<double>(p.read_threshold()));
    write_threshold.set(static_cast<double>(p.write_threshold()));
    dram_resident.set(static_cast<double>(p.vmm().resident(Tier::kDram)));
    nvm_resident.set(static_cast<double>(p.vmm().resident(Tier::kNvm)));
  });
}

}  // namespace hymem::obs
