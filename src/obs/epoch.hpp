// Epoch sampler: time-series versions of the paper's end-of-run metrics.
//
// The paper's evaluation (AMAT Eq. 1, APPR Eq. 2, endurance) reasons about
// end-of-run aggregates, but the mechanism it proposes — windowed
// read/write counters over the top readperc/writeperc of the NVM LRU
// queue — is a dynamic process. The sampler snapshots that process every
// `epoch_length` accesses:
//
//   * per-epoch delta EventCounts (hits, faults, fills, migrations), which
//     by construction sum exactly to the end-of-run totals the PR-3 oracle
//     verifies;
//   * queue occupancies and the windowed-counter population (pages in each
//     window, mean counter value, effective thresholds, crossings);
//   * rolling AMAT/APPR evaluated over each epoch's delta counts — the
//     paper's figures as time series, showing convergence and churn.
//
// One sampler instruments one run (no locks, no sharing); the resulting
// Timeline travels inside RunResult so the sweep runner can splice
// per-job timelines into one deterministic export.
#pragma once

#include <cstdint>
#include <vector>

#include "core/migration_scheme.hpp"
#include "model/events.hpp"
#include "model/model_params.hpp"
#include "obs/metrics.hpp"
#include "obs/sampled_stats.hpp"
#include "obs/tap.hpp"
#include "os/vmm.hpp"

namespace hymem::obs {

/// One epoch's sample: delta counts plus instantaneous structure snapshots
/// taken at the epoch boundary.
struct EpochRecord {
  std::uint64_t epoch = 0;       ///< 0-based epoch index.
  std::uint64_t end_access = 0;  ///< Cumulative accesses at the boundary.
  /// Events inside this epoch only (delta.accesses = epoch's length; the
  /// final epoch may be shorter than the configured length).
  model::EventCounts delta;

  // Queue state at the epoch boundary.
  std::uint64_t dram_resident = 0;
  std::uint64_t nvm_resident = 0;

  // Windowed-counter population (two-lru policies only; zero otherwise).
  core::CountedLruQueue::WindowStats read_window;
  core::CountedLruQueue::WindowStats write_window;
  std::uint64_t read_threshold = 0;   ///< Effective (tracks adaptive).
  std::uint64_t write_threshold = 0;
  std::uint64_t promotions = 0;  ///< Threshold crossings admitted (delta).
  std::uint64_t demotions = 0;   ///< Capacity demotions (delta).
  std::uint64_t throttled_promotions = 0;  ///< Crossings suppressed (delta).

  // Rolling models over the delta counts (Eq. 1 / Eq. 2 per epoch).
  double amat_total_ns = 0.0;
  double appr_total_nj = 0.0;
  /// Mean visible latency the policy reported over the epoch's accesses.
  double mean_visible_latency_ns = 0.0;

  // Sampled-hotness subsystem (sampled-lru runs only; zero otherwise).
  std::uint64_t samples = 0;             ///< Accesses sampled (delta).
  std::uint64_t sample_drops = 0;        ///< Ring-full drops (delta).
  std::uint64_t coolings = 0;            ///< Cooling passes (delta).
  std::uint64_t sampled_promotions = 0;  ///< Async promotions (delta).
  std::uint64_t sampled_demotions = 0;   ///< Async demotions (delta).
  std::uint64_t sampled_stale = 0;       ///< Stale candidates (delta).
  std::uint64_t migration_backlog = 0;   ///< Ring occupancy at the boundary.
  std::uint64_t hot_ring_hwm = 0;        ///< High-water marks (cumulative
  std::uint64_t cold_ring_hwm = 0;       ///< gauges, not deltas).
};

/// The whole run's epoch series.
struct Timeline {
  std::uint64_t epoch_length = 0;  ///< 0 = sampling was off.
  std::vector<EpochRecord> epochs;

  bool empty() const { return epochs.empty(); }
};

/// RunObserver that cuts the run into epochs of `epoch_length` accesses
/// (the final epoch keeps the remainder). Reads the VMM — and, when the
/// run uses the paper's scheme, the policy's queues — at every boundary.
class EpochSampler final : public RunObserver {
 public:
  /// `policy` may be null (single-tier runs have no windows to sample);
  /// `duration_s` is the run's ROI wall time, prorated per epoch by access
  /// share for the Eq. 2 static term. `sampled` is the sampled-hotness
  /// stats source when the run's policy carries one (sampled-lru), null
  /// otherwise; when present its counters are charted per epoch and
  /// exported through the registry as "sampled.*".
  EpochSampler(std::uint64_t epoch_length, const os::Vmm& vmm,
               const core::TwoLruMigrationPolicy* policy, double duration_s,
               const SampledStatsSource* sampled = nullptr);

  void on_access(PageId page, AccessType type, Nanoseconds latency) override;
  void on_run_end() override;

  const Timeline& timeline() const { return timeline_; }
  Timeline take_timeline() { return std::move(timeline_); }

  /// The sampler's own registry: access/read/write counters and a visible-
  /// latency histogram, owned by this run (no cross-job synchronization).
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

 private:
  void emit_epoch();

  const os::Vmm& vmm_;
  const core::TwoLruMigrationPolicy* policy_;
  const SampledStatsSource* sampled_;
  double duration_s_;
  model::ModelParams params_;
  Timeline timeline_;
  std::uint64_t epoch_length_;
  std::uint64_t accesses_ = 0;       ///< Total accesses observed.
  std::uint64_t in_epoch_ = 0;       ///< Accesses in the open epoch.
  double epoch_latency_ns_ = 0.0;    ///< Visible latency in the open epoch.
  model::EventCounts last_counts_;   ///< Cumulative counts at last boundary.
  std::uint64_t last_promotions_ = 0;
  std::uint64_t last_demotions_ = 0;
  std::uint64_t last_throttled_ = 0;
  SampledStats last_sampled_;  ///< Snapshot at the previous boundary.
  MetricsRegistry registry_;
  Counter& reads_;
  Counter& writes_;
  Histogram& latency_hist_;
  // Registered (non-null) only when the run carries a sampled subsystem,
  // so non-sampled runs keep their registry export byte-identical.
  Counter* sampled_samples_ = nullptr;
  Counter* sampled_drops_ = nullptr;
  Counter* sampled_coolings_ = nullptr;
  Counter* sampled_promotions_ = nullptr;
  Counter* sampled_demotions_ = nullptr;
  Gauge* sampled_backlog_ = nullptr;
  Gauge* sampled_hot_hwm_ = nullptr;
  Gauge* sampled_cold_hwm_ = nullptr;
};

}  // namespace hymem::obs
