#include "obs/timeline_io.hpp"

#include <iomanip>
#include <sstream>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace hymem::obs {

namespace {

std::string fmt_double(double value) {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

}  // namespace

const std::vector<std::string>& timeline_csv_header() {
  static const std::vector<std::string> header = {
      "epoch",
      "end_access",
      "accesses",
      "dram_read_hits",
      "dram_write_hits",
      "nvm_read_hits",
      "nvm_write_hits",
      "page_faults",
      "fills_to_dram",
      "fills_to_nvm",
      "migrations_to_dram",
      "migrations_to_nvm",
      "dirty_evictions",
      "dram_resident",
      "nvm_resident",
      "read_window_pages",
      "read_window_target",
      "read_counter_mean",
      "write_window_pages",
      "write_window_target",
      "write_counter_mean",
      "read_threshold",
      "write_threshold",
      "promotions",
      "demotions",
      "throttled_promotions",
      "amat_total_ns",
      "appr_total_nj",
      "mean_visible_latency_ns",
      "samples",
      "sample_drops",
      "coolings",
      "sampled_promotions",
      "sampled_demotions",
      "sampled_stale",
      "migration_backlog",
      "hot_ring_hwm",
      "cold_ring_hwm"};
  return header;
}

std::vector<std::string> timeline_csv_fields(const EpochRecord& r) {
  return {std::to_string(r.epoch),
          std::to_string(r.end_access),
          std::to_string(r.delta.accesses),
          std::to_string(r.delta.dram_read_hits),
          std::to_string(r.delta.dram_write_hits),
          std::to_string(r.delta.nvm_read_hits),
          std::to_string(r.delta.nvm_write_hits),
          std::to_string(r.delta.page_faults),
          std::to_string(r.delta.fills_to_dram),
          std::to_string(r.delta.fills_to_nvm),
          std::to_string(r.delta.migrations_to_dram),
          std::to_string(r.delta.migrations_to_nvm),
          std::to_string(r.delta.dirty_evictions),
          std::to_string(r.dram_resident),
          std::to_string(r.nvm_resident),
          std::to_string(r.read_window.pages),
          std::to_string(r.read_window.target),
          fmt_double(r.read_window.mean_counter()),
          std::to_string(r.write_window.pages),
          std::to_string(r.write_window.target),
          fmt_double(r.write_window.mean_counter()),
          std::to_string(r.read_threshold),
          std::to_string(r.write_threshold),
          std::to_string(r.promotions),
          std::to_string(r.demotions),
          std::to_string(r.throttled_promotions),
          fmt_double(r.amat_total_ns),
          fmt_double(r.appr_total_nj),
          fmt_double(r.mean_visible_latency_ns),
          std::to_string(r.samples),
          std::to_string(r.sample_drops),
          std::to_string(r.coolings),
          std::to_string(r.sampled_promotions),
          std::to_string(r.sampled_demotions),
          std::to_string(r.sampled_stale),
          std::to_string(r.migration_backlog),
          std::to_string(r.hot_ring_hwm),
          std::to_string(r.cold_ring_hwm)};
}

void write_timeline_csv(const Timeline& timeline, std::ostream& out) {
  CsvWriter writer(out);
  writer.write_row(timeline_csv_header());
  for (const EpochRecord& record : timeline.epochs) {
    writer.write_row(timeline_csv_fields(record));
  }
}

void write_timeline_json(const Timeline& timeline, std::ostream& out,
                         std::string_view workload, std::string_view policy) {
  out << std::setprecision(12);
  out << "{\n  \"epoch_length\": " << timeline.epoch_length;
  if (!workload.empty()) {
    out << ",\n  \"workload\": \"" << util::json_escape(workload) << "\"";
  }
  if (!policy.empty()) {
    out << ",\n  \"policy\": \"" << util::json_escape(policy) << "\"";
  }
  out << ",\n  \"epochs\": [";
  const auto& header = timeline_csv_header();
  for (std::size_t i = 0; i < timeline.epochs.size(); ++i) {
    if (i) out << ",";
    // Reuse the CSV projection: same columns, same values, one schema.
    const auto fields = timeline_csv_fields(timeline.epochs[i]);
    out << "\n    {";
    for (std::size_t j = 0; j < fields.size(); ++j) {
      if (j) out << ", ";
      out << "\"" << util::json_escape(header[j]) << "\": " << fields[j];
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace hymem::obs
