// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Everything here is plain structs and vectors — no atomics, no locks, no
// allocation on the hot path. The concurrency model is ownership, not
// synchronization: each engine run (each sweep job) owns its own registry,
// so the parallel runner drives instrumented engines with zero shared
// mutable state. Hot-path users resolve a metric once by name at setup
// (references are stable for the registry's lifetime) and then touch a
// plain field per event.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hymem::obs {

/// Monotonically increasing event count.
struct Counter {
  std::uint64_t value = 0;
  void inc(std::uint64_t n = 1) { value += n; }
};

/// Last-write-wins instantaneous value.
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Fixed-bucket histogram: `upper_bounds` (strictly increasing) define the
/// bucket edges; values <= upper_bounds[i] land in bucket i, anything
/// larger in the implicit overflow bucket. Bucket layout is fixed at
/// registration, so record() is a branchless-ish search plus one increment.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value);

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Bucket counts; size() == upper_bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Owns named metrics for one engine instance. Names are unique per kind;
/// re-requesting a name returns the same object. Iteration order is
/// registration order, which is deterministic because registration happens
/// on the (deterministic) setup path — exports are therefore byte-stable.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` are only consulted on first registration; a later call
  /// with the same name returns the existing histogram unchanged.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  /// Flat JSON object: counters as integers, gauges as numbers, histograms
  /// as {buckets, upper_bounds, count, sum}. Keys are escaped with the
  /// shared util::json_escape.
  void write_json(std::ostream& out) const;

  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    for (const auto& e : counters_) fn(e.name, *e.metric);
  }
  template <typename Fn>
  void for_each_gauge(Fn&& fn) const {
    for (const auto& e : gauges_) fn(e.name, *e.metric);
  }
  template <typename Fn>
  void for_each_histogram(Fn&& fn) const {
    for (const auto& e : histograms_) fn(e.name, *e.metric);
  }

 private:
  /// unique_ptr storage keeps returned references stable across growth.
  template <typename M>
  struct Entry {
    std::string name;
    std::unique_ptr<M> metric;
  };

  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

}  // namespace hymem::obs
