#include "obs/metrics.hpp"

#include <algorithm>
#include <iomanip>

#include "util/check.hpp"
#include "util/json.hpp"

namespace hymem::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1, 0) {
  HYMEM_CHECK_MSG(
      std::adjacent_find(upper_bounds_.begin(), upper_bounds_.end(),
                         [](double a, double b) { return a >= b; }) ==
          upper_bounds_.end(),
      "histogram bucket bounds must be strictly increasing");
}

void Histogram::record(double value) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += value;
}

namespace {

template <typename Entries>
auto* find_entry(Entries& entries, std::string_view name) {
  for (auto& e : entries) {
    if (e.name == name) return e.metric.get();
  }
  return decltype(entries.front().metric.get()){nullptr};
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  if (Counter* found = find_entry(counters_, name)) return *found;
  counters_.push_back({std::string(name), std::make_unique<Counter>()});
  return *counters_.back().metric;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  if (Gauge* found = find_entry(gauges_, name)) return *found;
  gauges_.push_back({std::string(name), std::make_unique<Gauge>()});
  return *gauges_.back().metric;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  if (Histogram* found = find_entry(histograms_, name)) return *found;
  histograms_.push_back(
      {std::string(name), std::make_unique<Histogram>(std::move(upper_bounds))});
  return *histograms_.back().metric;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << std::setprecision(12);
  out << "{";
  bool first = true;
  const auto key = [&](const std::string& name) {
    if (!first) out << ",";
    first = false;
    out << "\n  \"" << util::json_escape(name) << "\": ";
  };
  for (const auto& e : counters_) {
    key(e.name);
    out << e.metric->value;
  }
  for (const auto& e : gauges_) {
    key(e.name);
    out << e.metric->value;
  }
  for (const auto& e : histograms_) {
    key(e.name);
    out << "{\"count\": " << e.metric->count()
        << ", \"sum\": " << e.metric->sum() << ", \"upper_bounds\": [";
    for (std::size_t i = 0; i < e.metric->upper_bounds().size(); ++i) {
      if (i) out << ", ";
      out << e.metric->upper_bounds()[i];
    }
    out << "], \"buckets\": [";
    for (std::size_t i = 0; i < e.metric->buckets().size(); ++i) {
      if (i) out << ", ";
      out << e.metric->buckets()[i];
    }
    out << "]}";
  }
  out << "\n}";
}

}  // namespace hymem::obs
