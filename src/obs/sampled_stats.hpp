// Counters of the sampled-hotness subsystem (src/sample), published through
// an obs-level interface so the EpochSampler can chart them without obs
// depending on the sample library (dependencies flow sample -> obs).
//
// All totals are cumulative over the run; the EpochSampler differences
// consecutive snapshots into per-epoch deltas the same way it does for the
// VMM event counts. `backlog` and the ring high-water marks are
// instantaneous / monotone gauges, exported as-is.
#pragma once

#include <cstdint>

namespace hymem::obs {

/// One snapshot of the sampled subsystem's counters.
struct SampledStats {
  // Tap side.
  std::uint64_t samples = 0;        ///< Accesses actually sampled (every Nth).
  std::uint64_t sample_drops = 0;   ///< Candidates lost to a full ring.
  std::uint64_t coolings = 0;       ///< Global counter-halving passes.
  std::uint64_t hot_ring_hwm = 0;   ///< Hot ring occupancy high water.
  std::uint64_t cold_ring_hwm = 0;  ///< Cold ring occupancy high water.

  // Migrator side.
  std::uint64_t promotions = 0;  ///< Async NVM->DRAM migrations applied.
  std::uint64_t demotions = 0;   ///< DRAM->NVM (cooling + swap-forced).
  std::uint64_t stale_candidates = 0;  ///< Ring entries invalid at drain time.
  std::uint64_t migration_copies = 0;  ///< Page copies performed (swap = 2).
  std::uint64_t drains = 0;            ///< Drain passes executed.
  std::uint64_t backlog = 0;  ///< Candidates still queued (instantaneous).
};

/// Implemented by policies that carry a sampled-hotness subsystem
/// (sample::SampledLruPolicy). The EpochSampler snapshots this at every
/// epoch boundary; implementations must make the call safe from the
/// replaying thread at any access boundary.
class SampledStatsSource {
 public:
  virtual ~SampledStatsSource() = default;
  virtual SampledStats sampled_stats() const = 0;
};

}  // namespace hymem::obs
