// The per-access event tap: the seam through which the simulation engine
// feeds observers (epoch samplers, metric taps, test probes).
//
// Design rules, in priority order:
//   * zero cost when observability is off — the engine carries a single
//     nullable pointer and the replay loop pays one perfectly-predicted
//     branch per access (measured < 2% on BM_RunTrace end to end);
//   * no locks anywhere — an observer belongs to exactly one engine run,
//     mirroring the one-registry-per-engine rule that lets the parallel
//     sweep runner instrument every job without synchronization;
//   * observers see *completed* accesses only, the same contract as the
//     policy audit hook from src/check: by the time on_access fires, the
//     VMM ledgers and queue structures are consistent and may be read.
#pragma once

#include "util/types.hpp"
#include "util/units.hpp"

namespace hymem::obs {

/// Interface for per-access observation of one engine run. Implementations
/// must not mutate the policy's serving state or the VMM (read-only
/// introspection, same rule as TwoLruMigrationPolicy::AuditHook). The one
/// sanctioned carve-out is the sampled-hotness tap (src/sample), which
/// mutates only its own out-of-band sampling state — rings, hotness
/// counters — never the placement the policy is executing.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// One completed measured access: the page, the request type and the
  /// visible latency the policy reported for it.
  virtual void on_access(PageId page, AccessType type,
                         Nanoseconds latency) = 0;

  /// The measured pass finished (flush partial epochs, finalize rollups).
  virtual void on_run_end() {}
};

/// Fans one run's events out to two observers, in order (first, then
/// second). Used when a run needs both the sampling tap and the epoch
/// sampler on the single observer seam the engine carries; the tap runs
/// first so epoch-boundary snapshots see the sample that access produced.
class TeeObserver final : public RunObserver {
 public:
  TeeObserver(RunObserver& first, RunObserver& second)
      : first_(first), second_(second) {}

  void on_access(PageId page, AccessType type, Nanoseconds latency) override {
    first_.on_access(page, type, latency);
    second_.on_access(page, type, latency);
  }
  void on_run_end() override {
    first_.on_run_end();
    second_.on_run_end();
  }

 private:
  RunObserver& first_;
  RunObserver& second_;
};

}  // namespace hymem::obs
