// Timeline export: the epoch series as CSV (one row per epoch) and JSON.
//
// The CSV column list is registered in the sim::figure_schemas registry
// (id "timeline") and pinned by the same golden-header tests as every
// other paper artifact, so plotting scripts can rely on it; the JSON
// writer shares util::json_escape with every other JSON emitter.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/epoch.hpp"

namespace hymem::obs {

/// Epoch-level CSV columns (no job identity; the sweep runner prefixes
/// workload/policy/variant/seed when splicing multi-job timelines).
const std::vector<std::string>& timeline_csv_header();

/// One epoch's row, aligned with timeline_csv_header().
std::vector<std::string> timeline_csv_fields(const EpochRecord& record);

/// Header plus one row per epoch.
void write_timeline_csv(const Timeline& timeline, std::ostream& out);

/// {"epoch_length": N, "workload": ..., "policy": ..., "epochs": [...]}.
/// `workload`/`policy` tag the series (escaped; omitted when empty).
void write_timeline_json(const Timeline& timeline, std::ostream& out,
                         std::string_view workload = {},
                         std::string_view policy = {});

}  // namespace hymem::obs
