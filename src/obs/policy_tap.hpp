// Policy-level metric tap: wires a MetricsRegistry into the migration
// scheme's per-access audit-hook seam (the same seam src/check uses for
// its invariant checker). Where the engine tap sees the run from above
// (latencies, request mix), this tap sees Algorithm 1 from inside:
// threshold crossings, demotion pressure, queue occupancy.
#pragma once

#include "core/migration_scheme.hpp"
#include "obs/metrics.hpp"

namespace hymem::obs {

/// Installs an audit hook on `policy` that keeps these registry metrics
/// current after every access (read-only policy introspection; the hook
/// mutates only the registry, which must outlive the policy's run):
///
///   counters  scheme.accesses.read / scheme.accesses.write
///   gauges    scheme.promotions, scheme.demotions,
///             scheme.throttled_promotions, scheme.read_threshold,
///             scheme.write_threshold, scheme.dram_resident,
///             scheme.nvm_resident
///
/// Replaces any previously installed audit hook (the seam holds one hook;
/// compose manually if both the invariant checker and this tap are
/// needed).
void attach_policy_tap(core::TwoLruMigrationPolicy& policy,
                       MetricsRegistry& registry);

}  // namespace hymem::obs
