#include "obs/epoch.hpp"

#include "model/perf_model.hpp"
#include "model/power_model.hpp"
#include "util/check.hpp"

namespace hymem::obs {

namespace {

/// Bucket edges for the visible-latency histogram, matched to the cost
/// model's landmarks: DRAM hit (~50 ns), NVM read/write (~100/350 ns),
/// migrations (PageFactor * device latencies, ~1e4 ns) and the disk fault
/// plateau (~5e6 ns).
std::vector<double> latency_bounds() {
  return {50.0, 100.0, 350.0, 1e3, 1e4, 1e5, 1e6, 1e7};
}

/// counts-at-boundary minus counts-at-previous-boundary, field by field.
/// page_factor is a run constant, not an accumulator, so it carries over.
model::EventCounts delta_counts(const model::EventCounts& now,
                                const model::EventCounts& then) {
  model::EventCounts d;
  d.accesses = now.accesses - then.accesses;
  d.dram_read_hits = now.dram_read_hits - then.dram_read_hits;
  d.dram_write_hits = now.dram_write_hits - then.dram_write_hits;
  d.nvm_read_hits = now.nvm_read_hits - then.nvm_read_hits;
  d.nvm_write_hits = now.nvm_write_hits - then.nvm_write_hits;
  d.page_faults = now.page_faults - then.page_faults;
  d.fills_to_dram = now.fills_to_dram - then.fills_to_dram;
  d.fills_to_nvm = now.fills_to_nvm - then.fills_to_nvm;
  d.migrations_to_dram = now.migrations_to_dram - then.migrations_to_dram;
  d.migrations_to_nvm = now.migrations_to_nvm - then.migrations_to_nvm;
  d.dirty_evictions = now.dirty_evictions - then.dirty_evictions;
  d.page_factor = now.page_factor;
  return d;
}

}  // namespace

EpochSampler::EpochSampler(std::uint64_t epoch_length, const os::Vmm& vmm,
                           const core::TwoLruMigrationPolicy* policy,
                           double duration_s,
                           const SampledStatsSource* sampled)
    : vmm_(vmm),
      policy_(policy),
      sampled_(sampled),
      duration_s_(duration_s),
      params_(model::ModelParams::from_vmm(vmm)),
      epoch_length_(epoch_length),
      reads_(registry_.counter("accesses.read")),
      writes_(registry_.counter("accesses.write")),
      latency_hist_(
          registry_.histogram("visible_latency_ns", latency_bounds())) {
  HYMEM_CHECK_MSG(epoch_length > 0, "epoch length must be positive");
  timeline_.epoch_length = epoch_length;
  last_counts_.page_factor = vmm.page_factor();
  if (sampled_ != nullptr) {
    sampled_samples_ = &registry_.counter("sampled.samples");
    sampled_drops_ = &registry_.counter("sampled.sample_drops");
    sampled_coolings_ = &registry_.counter("sampled.coolings");
    sampled_promotions_ = &registry_.counter("sampled.promotions");
    sampled_demotions_ = &registry_.counter("sampled.demotions");
    sampled_backlog_ = &registry_.gauge("sampled.migration_backlog");
    sampled_hot_hwm_ = &registry_.gauge("sampled.hot_ring_hwm");
    sampled_cold_hwm_ = &registry_.gauge("sampled.cold_ring_hwm");
  }
}

void EpochSampler::on_access(PageId, AccessType type, Nanoseconds latency) {
  (type == AccessType::kRead ? reads_ : writes_).inc();
  latency_hist_.record(latency);
  ++accesses_;
  ++in_epoch_;
  epoch_latency_ns_ += latency;
  if (in_epoch_ == epoch_length_) emit_epoch();
}

void EpochSampler::emit_epoch() {
  EpochRecord record;
  record.epoch = timeline_.epochs.size();
  record.end_access = accesses_;

  const model::EventCounts cumulative =
      model::EventCounts::from_vmm(vmm_, accesses_);
  record.delta = delta_counts(cumulative, last_counts_);

  record.dram_resident = vmm_.resident(Tier::kDram);
  record.nvm_resident = vmm_.resident(Tier::kNvm);

  if (policy_ != nullptr) {
    const core::CountedLruQueue& nvm = policy_->nvm_queue();
    record.read_window = nvm.read_window_stats();
    record.write_window = nvm.write_window_stats();
    record.read_threshold = policy_->read_threshold();
    record.write_threshold = policy_->write_threshold();
    record.promotions = policy_->promotions() - last_promotions_;
    record.demotions = policy_->demotions() - last_demotions_;
    record.throttled_promotions =
        policy_->throttled_promotions() - last_throttled_;
    last_promotions_ = policy_->promotions();
    last_demotions_ = policy_->demotions();
    last_throttled_ = policy_->throttled_promotions();
  }

  if (sampled_ != nullptr) {
    const SampledStats now = sampled_->sampled_stats();
    record.samples = now.samples - last_sampled_.samples;
    record.sample_drops = now.sample_drops - last_sampled_.sample_drops;
    record.coolings = now.coolings - last_sampled_.coolings;
    record.sampled_promotions = now.promotions - last_sampled_.promotions;
    record.sampled_demotions = now.demotions - last_sampled_.demotions;
    record.sampled_stale =
        now.stale_candidates - last_sampled_.stale_candidates;
    record.migration_backlog = now.backlog;
    record.hot_ring_hwm = now.hot_ring_hwm;
    record.cold_ring_hwm = now.cold_ring_hwm;
    sampled_samples_->inc(record.samples);
    sampled_drops_->inc(record.sample_drops);
    sampled_coolings_->inc(record.coolings);
    sampled_promotions_->inc(record.sampled_promotions);
    sampled_demotions_->inc(record.sampled_demotions);
    sampled_backlog_->set(static_cast<double>(now.backlog));
    sampled_hot_hwm_->set(static_cast<double>(now.hot_ring_hwm));
    sampled_cold_hwm_->set(static_cast<double>(now.cold_ring_hwm));
    last_sampled_ = now;
  }

  record.amat_total_ns = model::amat(record.delta, params_).total();
  record.mean_visible_latency_ns =
      in_epoch_ ? epoch_latency_ns_ / static_cast<double>(in_epoch_) : 0.0;
  // APPR needs the epoch's wall-time share, which is only known once the
  // run's total access count is: on_run_end() back-fills appr_total_nj.

  timeline_.epochs.push_back(record);
  last_counts_ = cumulative;
  in_epoch_ = 0;
  epoch_latency_ns_ = 0.0;
}

void EpochSampler::on_run_end() {
  if (in_epoch_ > 0) emit_epoch();  // the remainder epoch
  if (accesses_ == 0) return;
  // Eq. 2 per epoch: static power prorated by the epoch's access share of
  // the run's ROI wall time.
  for (EpochRecord& record : timeline_.epochs) {
    const double share = static_cast<double>(record.delta.accesses) /
                         static_cast<double>(accesses_);
    record.appr_total_nj =
        model::appr(record.delta, params_, duration_s_ * share).total();
  }
}

}  // namespace hymem::obs
