#include "cachesim/hierarchy.hpp"

#include "util/check.hpp"

namespace hymem::cachesim {

Hierarchy::Hierarchy(const HierarchyConfig& config, MemorySink sink)
    : config_(config), sink_(std::move(sink)), llc_(config.llc) {
  HYMEM_CHECK(config.cores > 0);
  HYMEM_CHECK_MSG(config.l1d.line_size == config.llc.line_size,
                  "L1 and LLC line sizes must match");
  l1d_.reserve(config.cores);
  for (unsigned c = 0; c < config.cores; ++c) l1d_.emplace_back(config.l1d);
}

void Hierarchy::emit(Addr line, AccessType type) {
  if (type == AccessType::kRead) {
    ++stats_.memory_reads;
  } else {
    ++stats_.memory_writes;
  }
  if (sink_) sink_(line, type);
}

void Hierarchy::llc_insert(Addr line, bool dirty) {
  const auto evicted =
      llc_.insert(line, dirty ? LineState::kModified : LineState::kShared);
  if (!evicted) return;
  // Inclusive LLC: evicting a line forces it out of every L1. A Modified L1
  // copy holds fresher data than the LLC, so it must reach memory too.
  bool needs_writeback = evicted->dirty;
  for (Cache& l1 : l1d_) {
    const LineState prior = l1.invalidate(evicted->line_addr);
    if (prior == LineState::kInvalid) continue;
    ++stats_.invalidations;
    if (prior == LineState::kModified) needs_writeback = true;
  }
  if (needs_writeback) {
    ++stats_.llc_writebacks;
    emit(evicted->line_addr, AccessType::kWrite);
  }
}

void Hierarchy::miss_fill(unsigned core, Addr line, AccessType type) {
  // Snoop peer L1s: a Modified peer supplies the data (via the LLC) and is
  // downgraded; on a write every peer copy is invalidated.
  bool peer_has_copy = false;
  for (unsigned c = 0; c < config_.cores; ++c) {
    if (c == core) continue;
    Cache& peer = l1d_[c];
    const LineState st = peer.probe(line);
    if (st == LineState::kInvalid) continue;
    peer_has_copy = true;
    if (st == LineState::kModified) {
      ++stats_.interventions;
      // Inclusive hierarchy: the LLC holds the line; absorb the dirty data.
      llc_.set_state(line, LineState::kModified);
    }
    if (type == AccessType::kWrite) {
      peer.invalidate(line);
      ++stats_.invalidations;
    } else if (st != LineState::kShared) {
      peer.set_state(line, LineState::kShared);
    }
  }

  if (llc_.contains(line)) {
    ++stats_.llc_hits;
    llc_.touch(line);
  } else {
    ++stats_.llc_misses;
    emit(line, AccessType::kRead);
    llc_insert(line, /*dirty=*/false);
  }

  const LineState fill_state =
      type == AccessType::kWrite
          ? LineState::kModified
          : (peer_has_copy ? LineState::kShared : LineState::kExclusive);
  const auto evicted = l1d_[core].insert(line, fill_state);
  if (evicted && evicted->dirty) {
    ++stats_.l1_writebacks;
    // Write-back lands in the (inclusive, hence present) LLC, not memory.
    HYMEM_CHECK_MSG(llc_.contains(evicted->line_addr),
                    "inclusion violated: dirty L1 line absent from LLC");
    llc_.set_state(evicted->line_addr, LineState::kModified);
  }
}

void Hierarchy::access(const trace::MemAccess& access) {
  HYMEM_CHECK_MSG(access.core < config_.cores, "access.core out of range");
  ++stats_.accesses;
  const Addr line = llc_.line_of(access.addr);
  Cache& l1 = l1d_[access.core];
  const LineState st = l1.probe(line);
  if (st != LineState::kInvalid) {
    ++stats_.l1_hits;
    l1.touch(line);
    if (access.type == AccessType::kWrite) {
      if (st == LineState::kShared) {
        // Upgrade: invalidate every peer copy (bus upgrade, no memory traffic).
        for (unsigned c = 0; c < config_.cores; ++c) {
          if (c == access.core) continue;
          if (l1d_[c].invalidate(line) != LineState::kInvalid) {
            ++stats_.invalidations;
          }
        }
      }
      l1.set_state(line, LineState::kModified);
    }
    return;
  }
  ++stats_.l1_misses;
  miss_fill(access.core, line, access.type);
}

void Hierarchy::run(const trace::Trace& cpu_trace) {
  for (const auto& a : cpu_trace) access(a);
}

trace::Trace Hierarchy::filter(const trace::Trace& cpu_trace,
                               const HierarchyConfig& config,
                               HierarchyStats* stats_out) {
  trace::Trace out(cpu_trace.name() + ".mem");
  Hierarchy h(config, [&out](Addr line, AccessType type) {
    out.append(line, type);
  });
  h.run(cpu_trace);
  if (stats_out) *stats_out = h.stats();
  return out;
}

}  // namespace hymem::cachesim
