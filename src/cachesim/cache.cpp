#include "cachesim/cache.hpp"

#include "util/check.hpp"

namespace hymem::cachesim {

Cache::Cache(const CacheGeometry& geometry) : geom_(geometry) {
  HYMEM_CHECK_MSG(geom_.valid(), "invalid cache geometry");
  lines_.resize(geom_.sets() * geom_.associativity);
}

std::uint64_t Cache::set_index(Addr addr) const {
  return (addr / geom_.line_size) & (geom_.sets() - 1);
}

Cache::Line* Cache::find(Addr addr) {
  const Addr tag = tag_of(addr);
  Line* base = &lines_[set_index(addr) * geom_.associativity];
  for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
    if (base[w].state != LineState::kInvalid && base[w].tag == tag) {
      return &base[w];
    }
  }
  return nullptr;
}

const Cache::Line* Cache::find(Addr addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

LineState Cache::probe(Addr addr) const {
  const Line* line = find(addr);
  return line ? line->state : LineState::kInvalid;
}

void Cache::touch(Addr addr) {
  Line* line = find(addr);
  HYMEM_CHECK_MSG(line != nullptr, "touch on absent line");
  line->lru = ++clock_;
}

void Cache::set_state(Addr addr, LineState state) {
  HYMEM_CHECK_MSG(state != LineState::kInvalid, "use invalidate() instead");
  Line* line = find(addr);
  HYMEM_CHECK_MSG(line != nullptr, "set_state on absent line");
  line->state = state;
}

std::optional<Eviction> Cache::insert(Addr addr, LineState state) {
  HYMEM_CHECK_MSG(state != LineState::kInvalid, "cannot insert invalid line");
  HYMEM_CHECK_MSG(find(addr) == nullptr, "line already present");
  Line* base = &lines_[set_index(addr) * geom_.associativity];
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < geom_.associativity; ++w) {
    Line& candidate = base[w];
    if (candidate.state == LineState::kInvalid) {
      victim = &candidate;
      break;
    }
    if (candidate.lru < victim->lru) victim = &candidate;
  }
  std::optional<Eviction> evicted;
  if (victim->state != LineState::kInvalid) {
    evicted = Eviction{victim->tag, is_dirty(victim->state)};
  }
  victim->tag = tag_of(addr);
  victim->state = state;
  victim->lru = ++clock_;
  return evicted;
}

LineState Cache::invalidate(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return LineState::kInvalid;
  const LineState prior = line->state;
  line->state = LineState::kInvalid;
  return prior;
}

std::uint64_t Cache::valid_lines() const {
  std::uint64_t n = 0;
  for (const Line& line : lines_) n += (line.state != LineState::kInvalid);
  return n;
}

}  // namespace hymem::cachesim
