// Cache geometry description and the paper's Table II presets.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace hymem::cachesim {

/// Geometry of one set-associative cache.
struct CacheGeometry {
  std::uint64_t size_bytes = 32 * kKiB;
  std::uint32_t associativity = 4;
  std::uint32_t line_size = 64;

  std::uint64_t lines() const { return size_bytes / line_size; }
  std::uint64_t sets() const { return lines() / associativity; }

  /// Valid iff sizes are powers of two and divide evenly.
  bool valid() const {
    auto pow2 = [](std::uint64_t v) { return v && (v & (v - 1)) == 0; };
    return pow2(size_bytes) && pow2(line_size) && associativity > 0 &&
           size_bytes % (static_cast<std::uint64_t>(line_size) * associativity) == 0 &&
           pow2(sets());
  }
};

/// Table II: 32KB write-back 4-way L1 (data and instruction), 64B lines.
constexpr CacheGeometry table2_l1() {
  return {.size_bytes = 32 * kKiB, .associativity = 4, .line_size = 64};
}

/// Table II: 2MB write-back 16-way shared last-level cache, 64B lines.
constexpr CacheGeometry table2_llc() {
  return {.size_bytes = 2 * kMiB, .associativity = 16, .line_size = 64};
}

}  // namespace hymem::cachesim
