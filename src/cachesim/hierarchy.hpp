// Multi-core cache hierarchy: per-core private L1 data caches kept coherent
// with a MESI invalidation protocol over an inclusive shared LLC.
//
// This is the reproduction's substitute for COTSon (Table II): its only job
// in the paper's methodology is to turn CPU request streams into the
// *main-memory* access stream — LLC fills become memory reads, dirty LLC
// evictions become memory writes. Instruction fetch is not modeled (the
// evaluation uses ROI data accesses); the L1I geometry is retained in the
// config for documentation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/cache_config.hpp"
#include "trace/trace.hpp"

namespace hymem::cachesim {

/// Hierarchy configuration; defaults reproduce Table II.
struct HierarchyConfig {
  unsigned cores = 4;
  CacheGeometry l1d = table2_l1();
  CacheGeometry l1i = table2_l1();  ///< Documented but not simulated.
  CacheGeometry llc = table2_llc();
};

/// Per-level and coherence counters.
struct HierarchyStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t l1_writebacks = 0;    ///< Dirty L1 evictions into the LLC.
  std::uint64_t llc_writebacks = 0;   ///< Dirty LLC evictions into memory.
  std::uint64_t invalidations = 0;    ///< Coherence invalidations of L1 copies.
  std::uint64_t interventions = 0;    ///< Dirty peer-L1 supplies (M -> S/I).
  std::uint64_t memory_reads = 0;
  std::uint64_t memory_writes = 0;

  double l1_hit_ratio() const {
    return accesses ? static_cast<double>(l1_hits) / static_cast<double>(accesses) : 0.0;
  }
  double llc_hit_ratio() const {
    const auto probes = llc_hits + llc_misses;
    return probes ? static_cast<double>(llc_hits) / static_cast<double>(probes) : 0.0;
  }
  /// Fraction of CPU requests that reach main memory.
  double memory_filter_ratio() const {
    return accesses ? static_cast<double>(memory_reads + memory_writes) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

/// The hierarchy. Feed CPU accesses in program order; main-memory requests
/// come out through the sink callback (line-granular addresses).
class Hierarchy {
 public:
  /// Called for every main-memory request the hierarchy generates.
  using MemorySink = std::function<void(Addr line_addr, AccessType type)>;

  explicit Hierarchy(const HierarchyConfig& config, MemorySink sink = {});

  const HierarchyConfig& config() const { return config_; }
  const HierarchyStats& stats() const { return stats_; }

  /// Simulates one CPU access (access.core selects the L1).
  void access(const trace::MemAccess& access);

  /// Replays an entire CPU trace.
  void run(const trace::Trace& cpu_trace);

  /// Convenience: filters a CPU trace into the main-memory trace it induces.
  static trace::Trace filter(const trace::Trace& cpu_trace,
                             const HierarchyConfig& config,
                             HierarchyStats* stats_out = nullptr);

 private:
  void miss_fill(unsigned core, Addr line, AccessType type);
  void llc_insert(Addr line, bool dirty);
  void emit(Addr line, AccessType type);

  HierarchyConfig config_;
  MemorySink sink_;
  std::vector<Cache> l1d_;
  Cache llc_;
  HierarchyStats stats_;
};

}  // namespace hymem::cachesim
