// One set-associative, write-back cache array with per-set LRU and
// MESI-style line states. The Cache stores tags and states only — the
// coherence protocol itself lives in Hierarchy, which drives these arrays.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cachesim/cache_config.hpp"
#include "util/types.hpp"

namespace hymem::cachesim {

/// MESI line state. For the (non-coherent) LLC, kModified simply means dirty.
enum class LineState : std::uint8_t {
  kInvalid = 0,
  kShared,
  kExclusive,
  kModified,
};

/// Whether the state implies ownership of a dirty copy.
constexpr bool is_dirty(LineState s) { return s == LineState::kModified; }

/// Result of inserting a line: the victim that had to leave, if any.
struct Eviction {
  Addr line_addr = 0;
  bool dirty = false;
};

/// Tag/state array. All addresses passed in are full byte addresses; the
/// cache masks them to line granularity internally.
class Cache {
 public:
  explicit Cache(const CacheGeometry& geometry);

  const CacheGeometry& geometry() const { return geom_; }

  /// Line-aligned base of an address.
  Addr line_of(Addr addr) const { return addr & ~(static_cast<Addr>(geom_.line_size) - 1); }

  /// State of the line holding addr (kInvalid when absent). Does not touch LRU.
  LineState probe(Addr addr) const;

  bool contains(Addr addr) const { return probe(addr) != LineState::kInvalid; }

  /// Marks the line as most-recently used. Line must be present.
  void touch(Addr addr);

  /// Changes a present line's state (upgrade/downgrade).
  void set_state(Addr addr, LineState state);

  /// Inserts the line with the given state, evicting the set's LRU victim if
  /// needed. The line must not already be present. Returns the eviction.
  std::optional<Eviction> insert(Addr addr, LineState state);

  /// Removes the line if present; returns its state before removal.
  LineState invalidate(Addr addr);

  /// Number of valid lines (for tests / occupancy checks).
  std::uint64_t valid_lines() const;

 private:
  struct Line {
    Addr tag = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t lru = 0;  // larger = more recent
  };

  std::uint64_t set_index(Addr addr) const;
  Addr tag_of(Addr addr) const { return line_of(addr); }
  Line* find(Addr addr);
  const Line* find(Addr addr) const;

  CacheGeometry geom_;
  std::vector<Line> lines_;  // sets * ways, row-major by set
  std::uint64_t clock_ = 0;
};

}  // namespace hymem::cachesim
