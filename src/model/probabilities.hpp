// Table I of the paper: the probability parameters of the analytic models,
// extracted from simulation event counts.
#pragma once

#include "model/events.hpp"

namespace hymem::model {

/// The Table I probabilities. All are fractions of total accesses except the
/// conditional read/write splits, which are fractions of the module's hits,
/// and the PDiskTo* terms, which are fractions of page faults.
struct TableIProbabilities {
  double hit_dram = 0;      ///< PHitDRAM
  double hit_nvm = 0;       ///< PHitNVM
  double read_dram = 0;     ///< PRDRAM  (given a DRAM hit)
  double write_dram = 0;    ///< PWDRAM  (given a DRAM hit)
  double read_nvm = 0;      ///< PRNVM   (given an NVM hit)
  double write_nvm = 0;     ///< PWNVM   (given an NVM hit)
  double miss = 0;          ///< PMiss
  double mig_to_dram = 0;   ///< PMigD   (NVM->DRAM migrations per access)
  double mig_to_nvm = 0;    ///< PMigN   (DRAM->NVM migrations per access)
  double disk_to_dram = 0;  ///< PDiskToD (given a page fault)
  double disk_to_nvm = 0;   ///< PDiskToN (given a page fault)

  /// True when the struct is a plausible probability set: every field is
  /// finite (NaN/Inf always fail), and either PHitDRAM + PHitNVM + PMiss == 1
  /// (within tolerance) or the struct is all-zero — the graceful-degradation
  /// output `probabilities()` returns for a zero-access run.
  bool is_consistent(double eps = 1e-9) const;
};

/// Extracts Table I from counts.
TableIProbabilities probabilities(const EventCounts& counts);

}  // namespace hymem::model
