#include "model/whatif.hpp"

namespace hymem::model {

std::vector<WhatIfPoint> sweep(
    const EventCounts& counts, const ModelParams& base, double duration_s,
    const std::vector<double>& xs,
    const std::function<ModelParams(ModelParams, double)>& mutate) {
  std::vector<WhatIfPoint> points;
  points.reserve(xs.size());
  for (double x : xs) {
    const ModelParams params = mutate(base, x);
    points.push_back(WhatIfPoint{x, amat(counts, params),
                                 appr(counts, params, duration_s)});
  }
  return points;
}

std::vector<WhatIfPoint> sweep_nvm_write_latency(
    const EventCounts& counts, const ModelParams& base, double duration_s,
    const std::vector<double>& latencies_ns) {
  return sweep(counts, base, duration_s, latencies_ns,
               [](ModelParams p, double x) {
                 p.nvm.write_latency_ns = x;
                 return p;
               });
}

std::vector<WhatIfPoint> sweep_nvm_write_energy(
    const EventCounts& counts, const ModelParams& base, double duration_s,
    const std::vector<double>& energies_nj) {
  return sweep(counts, base, duration_s, energies_nj,
               [](ModelParams p, double x) {
                 p.nvm.write_energy_nj = x;
                 return p;
               });
}

std::vector<WhatIfPoint> sweep_disk_latency(
    const EventCounts& counts, const ModelParams& base, double duration_s,
    const std::vector<double>& latencies_ns) {
  return sweep(counts, base, duration_s, latencies_ns,
               [](ModelParams p, double x) {
                 p.disk_latency_ns = x;
                 return p;
               });
}

}  // namespace hymem::model
