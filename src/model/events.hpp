// Event counts: the bridge between the simulator and the analytic models.
//
// Every probability in the paper's Table I is a ratio of these counts; the
// AMAT (Eq. 1) and APPR (Eq. 2) models consume them directly.
#pragma once

#include <cstdint>

#include "os/vmm.hpp"

namespace hymem::model {

/// Counts of every costed event over one simulation run.
struct EventCounts {
  std::uint64_t accesses = 0;  ///< Total CPU requests served.

  // Demand hits per module and type (a faulted request is a miss, not a hit).
  std::uint64_t dram_read_hits = 0;
  std::uint64_t dram_write_hits = 0;
  std::uint64_t nvm_read_hits = 0;
  std::uint64_t nvm_write_hits = 0;

  // Page faults and their fill destination.
  std::uint64_t page_faults = 0;
  std::uint64_t fills_to_dram = 0;
  std::uint64_t fills_to_nvm = 0;

  // Migrations between the modules.
  std::uint64_t migrations_to_dram = 0;  ///< NVM -> DRAM promotions.
  std::uint64_t migrations_to_nvm = 0;   ///< DRAM -> NVM demotions.

  // Evictions to disk (reporting only; uncosted per the paper's models).
  std::uint64_t dirty_evictions = 0;

  /// PageFactor: device accesses per page move.
  std::uint64_t page_factor = 0;

  std::uint64_t dram_hits() const { return dram_read_hits + dram_write_hits; }
  std::uint64_t nvm_hits() const { return nvm_read_hits + nvm_write_hits; }
  std::uint64_t hits() const { return dram_hits() + nvm_hits(); }
  std::uint64_t migrations() const {
    return migrations_to_dram + migrations_to_nvm;
  }

  /// Snapshot from a VMM after a run of `accesses` requests. Validates that
  /// hits + faults account for every request.
  static EventCounts from_vmm(const os::Vmm& vmm, std::uint64_t accesses);
};

}  // namespace hymem::model
