// Endurance model — the NVM physical-write accounting behind Figs. 2c / 4b.
//
// Physical writes into NVM come from three sources:
//   * demand writes served by NVM (1 device write each),
//   * page-fault fills into NVM (PageFactor writes each),
//   * DRAM->NVM migrations (PageFactor writes each).
// The figures normalize the total against an NVM-only main memory running
// the same trace.
#pragma once

#include <cstdint>

#include "model/events.hpp"
#include "model/probabilities.hpp"

namespace hymem::model {

/// NVM write totals per source.
struct NvmWriteBreakdown {
  std::uint64_t demand_writes = 0;
  std::uint64_t fault_fill_writes = 0;
  std::uint64_t migration_writes = 0;

  std::uint64_t total() const {
    return demand_writes + fault_fill_writes + migration_writes;
  }
};

/// Derives the breakdown from event counts.
NvmWriteBreakdown nvm_writes(const EventCounts& counts);

/// Estimated NVM lifetime in seconds under perfect wear leveling:
/// endurance_cycles * cells / write_rate. `duration_s` is the trace's ROI
/// wall time; returns +inf when there are no writes.
double lifetime_seconds(const NvmWriteBreakdown& writes,
                        double endurance_cycles, std::uint64_t nvm_pages,
                        std::uint64_t page_factor, double duration_s);

/// Probability-form of the same accounting: physical NVM writes per CPU
/// request (demand writes + fault fills to NVM + demotions, page moves
/// costing `page_factor` device writes each).
double nvm_writes_per_access(const TableIProbabilities& probs,
                             std::uint64_t page_factor);

/// Rate-form lifetime for the analytic path: `total_writes` device-sized
/// NVM writes over `duration_s` seconds. Same perfect-wear-leveling budget
/// as the breakdown overload; +inf when nothing is written.
double lifetime_seconds(double total_writes, double endurance_cycles,
                        std::uint64_t nvm_pages, std::uint64_t page_factor,
                        double duration_s);

}  // namespace hymem::model
