// Endurance model — the NVM physical-write accounting behind Figs. 2c / 4b.
//
// Physical writes into NVM come from three sources:
//   * demand writes served by NVM (1 device write each),
//   * page-fault fills into NVM (PageFactor writes each),
//   * DRAM->NVM migrations (PageFactor writes each).
// The figures normalize the total against an NVM-only main memory running
// the same trace.
#pragma once

#include <cstdint>

#include "model/events.hpp"

namespace hymem::model {

/// NVM write totals per source.
struct NvmWriteBreakdown {
  std::uint64_t demand_writes = 0;
  std::uint64_t fault_fill_writes = 0;
  std::uint64_t migration_writes = 0;

  std::uint64_t total() const {
    return demand_writes + fault_fill_writes + migration_writes;
  }
};

/// Derives the breakdown from event counts.
NvmWriteBreakdown nvm_writes(const EventCounts& counts);

/// Estimated NVM lifetime in seconds under perfect wear leveling:
/// endurance_cycles * cells / write_rate. `duration_s` is the trace's ROI
/// wall time; returns +inf when there are no writes.
double lifetime_seconds(const NvmWriteBreakdown& writes,
                        double endurance_cycles, std::uint64_t nvm_pages,
                        std::uint64_t page_factor, double duration_s);

}  // namespace hymem::model
