// Shared parameter bundle of the analytic models: the Table IV technology
// characteristics, the disk, the page factor and the module capacities.
#pragma once

#include <cstdint>

#include "mem/dma.hpp"
#include "mem/technology.hpp"
#include "os/vmm.hpp"

namespace hymem::model {

/// Everything Eqs. 1-3 need besides the event counts.
struct ModelParams {
  mem::MemTechnology dram = mem::dram_table4();
  mem::MemTechnology nvm = mem::pcm_table4();
  Nanoseconds disk_latency_ns = ms_to_ns(5.0);
  std::uint64_t page_factor = 64;
  std::uint64_t dram_bytes = 0;
  std::uint64_t nvm_bytes = 0;
  /// Migration latency composition: kDma sums source reads and destination
  /// writes (Eq. 1 as published); kIntegrated overlaps them (max instead of
  /// sum — the paper's "assembled in one module" design point).
  mem::TransferMode transfer_mode = mem::TransferMode::kDma;

  /// Combined static power of both modules (W).
  Watts total_static_power() const {
    return dram.static_power(dram_bytes) + nvm.static_power(nvm_bytes);
  }

  /// Snapshot from a configured VMM.
  static ModelParams from_vmm(const os::Vmm& vmm);
};

}  // namespace hymem::model
