#include "model/perf_model.hpp"

#include <algorithm>

namespace hymem::model {

ModelParams ModelParams::from_vmm(const os::Vmm& vmm) {
  const auto& cfg = vmm.config();
  ModelParams p;
  p.dram = cfg.dram;
  p.nvm = cfg.nvm;
  p.disk_latency_ns = cfg.disk.access_latency_ns;
  p.page_factor = vmm.page_factor();
  p.dram_bytes = cfg.dram_frames * cfg.page_size;
  p.nvm_bytes = cfg.nvm_frames * cfg.page_size;
  p.transfer_mode = cfg.transfer_mode;
  return p;
}

AmatBreakdown amat(const EventCounts& c, const ModelParams& p) {
  // Zero accesses is a well-defined input, not a programming error: epoch
  // sampling legitimately evaluates Eq. 1 over 0-access delta windows, and
  // an empty run must surface as a zero breakdown (or a structured per-job
  // failure upstream), never abort the process.
  if (c.accesses == 0) return AmatBreakdown{};
  const auto n = static_cast<double>(c.accesses);
  const auto pf = static_cast<double>(c.page_factor);
  AmatBreakdown b;
  b.hit_ns = (static_cast<double>(c.dram_read_hits) * p.dram.read_latency_ns +
              static_cast<double>(c.dram_write_hits) * p.dram.write_latency_ns +
              static_cast<double>(c.nvm_read_hits) * p.nvm.read_latency_ns +
              static_cast<double>(c.nvm_write_hits) * p.nvm.write_latency_ns) /
             n;
  b.fault_ns = static_cast<double>(c.page_faults) * p.disk_latency_ns / n;
  // Eq. 1 composes a migration as source reads + destination writes; the
  // integrated-module variant overlaps the two streams.
  auto compose = [&](Nanoseconds read_ns, Nanoseconds write_ns) {
    return p.transfer_mode == mem::TransferMode::kDma
               ? read_ns + write_ns
               : std::max(read_ns, write_ns);
  };
  b.migration_ns =
      (static_cast<double>(c.migrations_to_dram) * pf *
           compose(p.nvm.read_latency_ns, p.dram.write_latency_ns) +
       static_cast<double>(c.migrations_to_nvm) * pf *
           compose(p.dram.read_latency_ns, p.nvm.write_latency_ns)) /
      n;
  return b;
}

AmatBreakdown amat(const TableIProbabilities& probs, const ModelParams& p) {
  const auto pf = static_cast<double>(p.page_factor);
  AmatBreakdown b;
  b.hit_ns = probs.hit_dram * (probs.read_dram * p.dram.read_latency_ns +
                               probs.write_dram * p.dram.write_latency_ns) +
             probs.hit_nvm * (probs.read_nvm * p.nvm.read_latency_ns +
                              probs.write_nvm * p.nvm.write_latency_ns);
  b.fault_ns = probs.miss * p.disk_latency_ns;
  auto compose = [&](Nanoseconds read_ns, Nanoseconds write_ns) {
    return p.transfer_mode == mem::TransferMode::kDma
               ? read_ns + write_ns
               : std::max(read_ns, write_ns);
  };
  b.migration_ns =
      probs.mig_to_dram * pf *
          compose(p.nvm.read_latency_ns, p.dram.write_latency_ns) +
      probs.mig_to_nvm * pf *
          compose(p.dram.read_latency_ns, p.nvm.write_latency_ns);
  return b;
}

}  // namespace hymem::model
