// Analytical estimator — src/model's third citizen (ROADMAP item 2).
//
// Predicts the two-LRU migration scheme's Table I probabilities, Eq. 1 AMAT,
// Eq. 2 APPR and NVM endurance/lifetime directly from a workload's
// reuse-distance profile (trace/reuse_distance) and a MigrationConfig — no
// trace replay. The approach follows the authors' own analytical follow-up
// (arXiv:1903.10067): for a stack algorithm, the hit ratio at capacity C is
// the reuse-distance CDF at C, so a single O(n log n) profiling pass per
// workload replaces a simulation per configuration, and a config grid can be
// ranked at thousands of cells per second (the runner's analytic prescreen).
//
// Model sketch (derivation + measured error bands: DESIGN.md §13):
//   * Total residency behaves as a global LRU of C = Cd + Cn frames:
//     PMiss = 1 - F(C), with cold (first-touch) accesses always missing.
//   * The DRAM front receives faults, promotions and DRAM hits; NVM hits do
//     not touch it. A DRAM-resident page therefore decays at the fractional
//     rate psi = PMiss + PHitDRAM + PMigD, giving an *effective* DRAM
//     capacity Cd/psi in reuse-distance units: PHitDRAM = F(Cd/psi).
//   * Promotions follow the windowed-counter Markov chain: a page re-enters
//     a window at counter 1 and must survive in-window across T consecutive
//     same-type hits (survival q from the conditional gap CDF against the
//     window's reach W / nu, nu = NVM front-entry rate). The expected hits
//     per promotion is 1 + (1-q^T)/((1-q) q^T), and its reciprocal is the
//     per-NVM-hit promotion probability.
//   * These couple (psi needs PMigD, q needs PHitNVM). The PHitDRAM map is
//     monotone decreasing (more DRAM hits -> faster front turnover -> shorter
//     bursts), so the estimator bisects it to its unique root inside a damped
//     outer loop on PMigD — deterministic, typically < 40 outer rounds.
// Window sizes use util::snap_ceil_fraction, the same snapping as
// core::CountedLruQueue, so analytic and simulated windows cannot drift.
//
// Supported configurations: the two-LRU scheme with static thresholds, plus
// the dram-only / nvm-only single-tier baselines (degenerate Cd or Cn = 0).
// The adaptive-threshold controller is out of scope — callers (the runner
// prescreen) must fall back to simulation for adaptive cells.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/migration_config.hpp"
#include "model/endurance_model.hpp"
#include "model/perf_model.hpp"
#include "model/power_model.hpp"
#include "model/probabilities.hpp"
#include "trace/reuse_distance.hpp"

namespace hymem::model {

/// Everything the estimator needs besides the workload profile. Frame counts
/// are raw (the sim::ExperimentConfig -> AnalyticConfig mapping lives in
/// sim/experiment to keep model below sim in the layering).
struct AnalyticConfig {
  std::uint64_t dram_frames = 0;  ///< 0 = nvm-only baseline.
  std::uint64_t nvm_frames = 0;   ///< 0 = dram-only baseline.
  core::MigrationConfig migration;
  ModelParams params;
  /// ROI wall time of the measured window (Eq. 3 static proration and the
  /// lifetime write rate).
  double duration_s = 0.0;
};

/// The estimator's prediction for one (profile, config) cell: the same
/// quantities a simulation run reports, derived in closed form.
struct AnalyticEstimate {
  TableIProbabilities probs;
  AmatBreakdown amat;
  PowerBreakdown power;
  /// PHitDRAM + PHitNVM.
  double hit_ratio = 0.0;
  /// Physical NVM writes per CPU request (endurance-model accounting).
  double nvm_writes_per_access = 0.0;
  /// Estimated NVM lifetime under perfect wear leveling; +inf when the
  /// config writes nothing to NVM.
  double lifetime_s = 0.0;

  // Diagnostics (DESIGN.md §13; also what the mutation check biases).
  double effective_dram_frames = 0.0;  ///< Cd / psi after convergence.
  double promotion_rate_read = 0.0;    ///< Per NVM read hit.
  double promotion_rate_write = 0.0;   ///< Per NVM write hit.
  int iterations = 0;                  ///< Fixed-point rounds to converge.
};

/// Testing-only bias knobs, mirroring check::DiffSpec::oracle_threshold_bias:
/// the parity suite biases one analytic term and asserts the cross-validation
/// harness catches it. All-zero (the default) is the production path.
struct AnalyticBias {
  /// Added to both promotion thresholds inside the Markov term only.
  std::int64_t threshold_bias = 0;
  /// Multiplies the effective DRAM capacity (1.0 = no bias).
  double dram_capacity_scale = 1.0;
};

/// Runs the estimator for one cell. `profile` must cover the measured window
/// the prediction is compared against (observe warmup, reset_stats, observe
/// measured — the analyzer mirror of the engine's accounting reset).
AnalyticEstimate estimate(const trace::ReuseProfile& profile,
                          const AnalyticConfig& config,
                          const AnalyticBias& bias = {});

/// One point of an analytic what-if sweep.
struct AnalyticSweepPoint {
  double x = 0.0;
  AnalyticEstimate estimate;
};

/// Re-estimates a fixed profile across a parameter sweep: the analytic
/// counterpart of model::sweep, except the swept knob may change *behaviour*
/// (thresholds, window fractions, capacities), not just costing — the whole
/// point of the fast path. `mutate` receives a copy of the base config and
/// the sweep value.
std::vector<AnalyticSweepPoint> analytic_sweep(
    const trace::ReuseProfile& profile, const AnalyticConfig& base,
    const std::vector<double>& xs,
    const std::function<AnalyticConfig(AnalyticConfig, double)>& mutate);

/// Convenience sweeps over the scheme's two headline knobs.
std::vector<AnalyticSweepPoint> analytic_sweep_read_threshold(
    const trace::ReuseProfile& profile, const AnalyticConfig& base,
    const std::vector<double>& thresholds);
std::vector<AnalyticSweepPoint> analytic_sweep_write_threshold(
    const trace::ReuseProfile& profile, const AnalyticConfig& base,
    const std::vector<double>& thresholds);

}  // namespace hymem::model
