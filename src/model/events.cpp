#include "model/events.hpp"

#include "util/check.hpp"

namespace hymem::model {

EventCounts EventCounts::from_vmm(const os::Vmm& vmm, std::uint64_t accesses) {
  EventCounts c;
  c.accesses = accesses;
  const auto& dram = vmm.device(Tier::kDram).counters();
  const auto& nvm = vmm.device(Tier::kNvm).counters();
  c.dram_read_hits = dram.demand_reads;
  c.dram_write_hits = dram.demand_writes;
  c.nvm_read_hits = nvm.demand_reads;
  c.nvm_write_hits = nvm.demand_writes;
  c.page_faults = vmm.disk().page_ins();
  const auto& dma = vmm.dma_counters();
  c.fills_to_dram = dma.disk_fills_to_dram;
  c.fills_to_nvm = dma.disk_fills_to_nvm;
  c.migrations_to_dram = dma.migrations_nvm_to_dram;
  c.migrations_to_nvm = dma.migrations_dram_to_nvm;
  c.dirty_evictions = vmm.disk().page_outs();
  c.page_factor = vmm.page_factor();
  HYMEM_CHECK_MSG(c.fills_to_dram + c.fills_to_nvm == c.page_faults,
                  "every fault must fill exactly one module");
  HYMEM_CHECK_MSG(c.hits() + c.page_faults == c.accesses,
                  "hits + faults must cover all accesses");
  return c;
}

}  // namespace hymem::model
