// Power model — Equations 2 and 3 of the paper.
//
// Dynamic (Eq. 2, per request):
//   APPR =   PHitDRAM * (PRDRAM*PoRDRAM + PWDRAM*PoWDRAM)
//          + PHitNVM  * (PRNVM*PoRNVM  + PWNVM*PoWNVM)
//          + PMiss * PDiskToD * PageFactor * PoWDRAM
//          + PMiss * PDiskToN * PageFactor * PoWNVM
//          + PMigD * PageFactor * (PoRNVM + PoWDRAM)
//          + PMigN * PageFactor * (PoRDRAM + PoWNVM)
//
// Static (Eq. 3): AvgStaticPowerPage = StperPage / AccessperPage. Concretely:
// the modules burn `total_static_power()` watts for the workload's ROI
// duration regardless of the requests; prorating that energy over the
// requests gives static-nJ-per-request = static_power_W * duration_s / N.
// Because both compared schemes use the same module sizes and the same
// trace, this term is identical across policies (as the paper notes in
// Section V.B) — it differs only across workloads, via their request rates.
#pragma once

#include "model/events.hpp"
#include "model/model_params.hpp"
#include "model/probabilities.hpp"
#include "util/units.hpp"

namespace hymem::model {

/// Per-request energy decomposition (nJ). Figures 1/2a/4a stack exactly
/// these: Static, Dynamic (hits), Page Fault (fills), Migration.
struct PowerBreakdown {
  Nanojoules static_nj = 0;
  Nanojoules hit_nj = 0;        ///< Eq. 2 terms 1-2.
  Nanojoules fault_fill_nj = 0; ///< Eq. 2 terms 3-4.
  Nanojoules migration_nj = 0;  ///< Eq. 2 terms 5-6.

  Nanojoules total() const {
    return static_nj + hit_nj + fault_fill_nj + migration_nj;
  }
  Nanojoules dynamic() const { return hit_nj + fault_fill_nj + migration_nj; }
};

/// Computes Eq. 2 + Eq. 3. `duration_s` is the workload ROI wall time used
/// to prorate static power.
PowerBreakdown appr(const EventCounts& counts, const ModelParams& params,
                    double duration_s);

/// Computes Eq. 2 + Eq. 3 directly from Table I probabilities (see the
/// probability-form `amat` note: this is the formula's single home for the
/// analytic path). `accesses` is the request count Eq. 3 prorates static
/// energy over; zero accesses yields a zero breakdown.
PowerBreakdown appr(const TableIProbabilities& probs, const ModelParams& params,
                    double duration_s, double accesses);

}  // namespace hymem::model
