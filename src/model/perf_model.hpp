// Performance model — Equation 1 of the paper.
//
// AMAT =   PHitDRAM * (PRDRAM*TRDRAM + PWDRAM*TWDRAM)
//        + PHitNVM  * (PRNVM*TRNVM  + PWNVM*TWNVM)
//        + PMiss * TDisk
//        + PMigD * PageFactor * (TRNVM + TWDRAM)
//        + PMigN * PageFactor * (TRDRAM + TWNVM)
//
// Implemented on raw counts (mathematically identical, no 0/0 corner cases).
#pragma once

#include "model/events.hpp"
#include "model/model_params.hpp"
#include "model/probabilities.hpp"
#include "util/units.hpp"

namespace hymem::model {

/// Per-request AMAT decomposition, in nanoseconds. The paper's Figs. 2b/4c
/// plot exactly these two stacks: Read/Write Requests (hit_ns + fault_ns is
/// shown as "requests" with faults folded in) and Migrations.
struct AmatBreakdown {
  Nanoseconds hit_ns = 0;        ///< Terms 1-2: demand hits in either module.
  Nanoseconds fault_ns = 0;      ///< Term 3: page faults (disk latency).
  Nanoseconds migration_ns = 0;  ///< Terms 4-5: inter-module migrations.

  Nanoseconds total() const { return hit_ns + fault_ns + migration_ns; }
  /// The paper's "Read/Write Requests" stack (hits + faults).
  Nanoseconds request_ns() const { return hit_ns + fault_ns; }
};

/// Computes Eq. 1 from event counts.
AmatBreakdown amat(const EventCounts& counts, const ModelParams& params);

/// Computes Eq. 1 directly from Table I probabilities — the published form.
/// PageFactor comes from `params.page_factor`. This is the single formula
/// home for probability-form costing: the analytic estimator and the what-if
/// helpers route through it (check/oracle_metrics deliberately keeps its own
/// independent recomputation). Agrees with the counts form exactly:
/// PHitDRAM * PRDRAM == dram_read_hits / accesses, including the 0/0 cases.
AmatBreakdown amat(const TableIProbabilities& probs, const ModelParams& params);

}  // namespace hymem::model
