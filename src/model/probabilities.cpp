#include "model/probabilities.hpp"

#include <cmath>

namespace hymem::model {

namespace {
double ratio(std::uint64_t num, std::uint64_t den) {
  return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}
}  // namespace

bool TableIProbabilities::is_consistent(double eps) const {
  for (const double v : {hit_dram, hit_nvm, read_dram, write_dram, read_nvm,
                         write_nvm, miss, mig_to_dram, mig_to_nvm,
                         disk_to_dram, disk_to_nvm}) {
    if (!std::isfinite(v)) return false;
  }
  const double total = hit_dram + hit_nvm + miss;
  // A zero-access run (empty or warmup-only) legitimately yields the
  // all-zero struct; accept it alongside the normal sums-to-one case.
  if (std::abs(total) <= eps) {
    return hit_dram == 0.0 && hit_nvm == 0.0 && miss == 0.0;
  }
  return std::abs(total - 1.0) <= eps;
}

TableIProbabilities probabilities(const EventCounts& c) {
  TableIProbabilities p;
  p.hit_dram = ratio(c.dram_hits(), c.accesses);
  p.hit_nvm = ratio(c.nvm_hits(), c.accesses);
  p.miss = ratio(c.page_faults, c.accesses);
  p.read_dram = ratio(c.dram_read_hits, c.dram_hits());
  p.write_dram = ratio(c.dram_write_hits, c.dram_hits());
  p.read_nvm = ratio(c.nvm_read_hits, c.nvm_hits());
  p.write_nvm = ratio(c.nvm_write_hits, c.nvm_hits());
  p.mig_to_dram = ratio(c.migrations_to_dram, c.accesses);
  p.mig_to_nvm = ratio(c.migrations_to_nvm, c.accesses);
  p.disk_to_dram = ratio(c.fills_to_dram, c.page_faults);
  p.disk_to_nvm = ratio(c.fills_to_nvm, c.page_faults);
  return p;
}

}  // namespace hymem::model
