#include "model/power_model.hpp"

#include "util/check.hpp"

namespace hymem::model {

PowerBreakdown appr(const EventCounts& c, const ModelParams& p,
                    double duration_s) {
  HYMEM_CHECK_MSG(duration_s >= 0.0, "negative duration");
  // Same contract as model::amat: a 0-access window (empty run, epoch
  // delta) yields a zero breakdown instead of aborting.
  if (c.accesses == 0) return PowerBreakdown{};
  const auto n = static_cast<double>(c.accesses);
  const auto pf = static_cast<double>(c.page_factor);
  PowerBreakdown b;
  b.hit_nj = (static_cast<double>(c.dram_read_hits) * p.dram.read_energy_nj +
              static_cast<double>(c.dram_write_hits) * p.dram.write_energy_nj +
              static_cast<double>(c.nvm_read_hits) * p.nvm.read_energy_nj +
              static_cast<double>(c.nvm_write_hits) * p.nvm.write_energy_nj) /
             n;
  b.fault_fill_nj =
      (static_cast<double>(c.fills_to_dram) * pf * p.dram.write_energy_nj +
       static_cast<double>(c.fills_to_nvm) * pf * p.nvm.write_energy_nj) /
      n;
  b.migration_nj =
      (static_cast<double>(c.migrations_to_dram) * pf *
           (p.nvm.read_energy_nj + p.dram.write_energy_nj) +
       static_cast<double>(c.migrations_to_nvm) * pf *
           (p.dram.read_energy_nj + p.nvm.write_energy_nj)) /
      n;
  // Eq. 3: static energy prorated over all requests, in nJ.
  b.static_nj = p.total_static_power() * duration_s * 1e9 / n;
  return b;
}

PowerBreakdown appr(const TableIProbabilities& probs, const ModelParams& p,
                    double duration_s, double accesses) {
  HYMEM_CHECK_MSG(duration_s >= 0.0, "negative duration");
  if (accesses <= 0.0) return PowerBreakdown{};
  const auto pf = static_cast<double>(p.page_factor);
  PowerBreakdown b;
  b.hit_nj = probs.hit_dram * (probs.read_dram * p.dram.read_energy_nj +
                               probs.write_dram * p.dram.write_energy_nj) +
             probs.hit_nvm * (probs.read_nvm * p.nvm.read_energy_nj +
                              probs.write_nvm * p.nvm.write_energy_nj);
  b.fault_fill_nj =
      probs.miss * probs.disk_to_dram * pf * p.dram.write_energy_nj +
      probs.miss * probs.disk_to_nvm * pf * p.nvm.write_energy_nj;
  b.migration_nj = probs.mig_to_dram * pf *
                       (p.nvm.read_energy_nj + p.dram.write_energy_nj) +
                   probs.mig_to_nvm * pf *
                       (p.dram.read_energy_nj + p.nvm.write_energy_nj);
  b.static_nj = p.total_static_power() * duration_s * 1e9 / accesses;
  return b;
}

}  // namespace hymem::model
