#include "model/power_model.hpp"

#include "util/check.hpp"

namespace hymem::model {

PowerBreakdown appr(const EventCounts& c, const ModelParams& p,
                    double duration_s) {
  HYMEM_CHECK_MSG(duration_s >= 0.0, "negative duration");
  // Same contract as model::amat: a 0-access window (empty run, epoch
  // delta) yields a zero breakdown instead of aborting.
  if (c.accesses == 0) return PowerBreakdown{};
  const auto n = static_cast<double>(c.accesses);
  const auto pf = static_cast<double>(c.page_factor);
  PowerBreakdown b;
  b.hit_nj = (static_cast<double>(c.dram_read_hits) * p.dram.read_energy_nj +
              static_cast<double>(c.dram_write_hits) * p.dram.write_energy_nj +
              static_cast<double>(c.nvm_read_hits) * p.nvm.read_energy_nj +
              static_cast<double>(c.nvm_write_hits) * p.nvm.write_energy_nj) /
             n;
  b.fault_fill_nj =
      (static_cast<double>(c.fills_to_dram) * pf * p.dram.write_energy_nj +
       static_cast<double>(c.fills_to_nvm) * pf * p.nvm.write_energy_nj) /
      n;
  b.migration_nj =
      (static_cast<double>(c.migrations_to_dram) * pf *
           (p.nvm.read_energy_nj + p.dram.write_energy_nj) +
       static_cast<double>(c.migrations_to_nvm) * pf *
           (p.dram.read_energy_nj + p.nvm.write_energy_nj)) /
      n;
  // Eq. 3: static energy prorated over all requests, in nJ.
  b.static_nj = p.total_static_power() * duration_s * 1e9 / n;
  return b;
}

}  // namespace hymem::model
