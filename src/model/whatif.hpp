// What-if analysis over the analytic models.
//
// Because Eq. 1/2 are pure functions of (event counts, parameters), a run's
// counts can be re-costed under different technology assumptions without
// re-simulating — the standard way to ask "would the conclusion change with
// a faster NVM / bigger pages / an integrated module?" These helpers embody
// that pattern (used by the sensitivity benches and available to users).
#pragma once

#include <functional>
#include <vector>

#include "model/perf_model.hpp"
#include "model/power_model.hpp"

namespace hymem::model {

/// One re-costed point of a sweep.
struct WhatIfPoint {
  double x = 0;  ///< The swept parameter value.
  AmatBreakdown amat;
  PowerBreakdown power;
};

/// Re-costs fixed event counts across a parameter sweep. `mutate` receives a
/// copy of the base params and the sweep value, and returns the adjusted
/// params. `duration_s` feeds the Eq. 3 static term.
std::vector<WhatIfPoint> sweep(
    const EventCounts& counts, const ModelParams& base, double duration_s,
    const std::vector<double>& xs,
    const std::function<ModelParams(ModelParams, double)>& mutate);

/// Convenience sweeps for the common axes.
std::vector<WhatIfPoint> sweep_nvm_write_latency(
    const EventCounts& counts, const ModelParams& base, double duration_s,
    const std::vector<double>& latencies_ns);

std::vector<WhatIfPoint> sweep_nvm_write_energy(
    const EventCounts& counts, const ModelParams& base, double duration_s,
    const std::vector<double>& energies_nj);

std::vector<WhatIfPoint> sweep_disk_latency(
    const EventCounts& counts, const ModelParams& base, double duration_s,
    const std::vector<double>& latencies_ns);

}  // namespace hymem::model
