#include "model/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/check.hpp"
#include "util/fraction.hpp"

namespace hymem::model {

namespace {

// CDF evaluations at fractional capacities. The profile's CDF is defined at
// integer distances; effective capacities (Cd / psi) are fractional, so
// interpolate linearly between adjacent integer points — this also keeps the
// fixed point smooth instead of stepping.
double interp(double f0, double f1, double x, double lo) {
  return f0 + (x - lo) * (f1 - f0);
}

double frac_reads_below(const trace::ReuseProfile& p, double x) {
  if (x <= 0.0 || p.accesses == 0) return 0.0;
  const double lo = std::floor(x);
  const auto i = static_cast<std::uint64_t>(lo);
  const double n = static_cast<double>(p.accesses);
  const double f0 = static_cast<double>(p.reads_below(i)) / n;
  if (x == lo) return f0;
  const double f1 = static_cast<double>(p.reads_below(i + 1)) / n;
  return interp(f0, f1, x, lo);
}

double frac_writes_below(const trace::ReuseProfile& p, double x) {
  if (x <= 0.0 || p.accesses == 0) return 0.0;
  const double lo = std::floor(x);
  const auto i = static_cast<std::uint64_t>(lo);
  const double n = static_cast<double>(p.accesses);
  const double f0 = static_cast<double>(p.writes_below(i)) / n;
  if (x == lo) return f0;
  const double f1 = static_cast<double>(p.writes_below(i + 1)) / n;
  return interp(f0, f1, x, lo);
}

double frac_below(const trace::ReuseProfile& p, double x) {
  return frac_reads_below(p, x) + frac_writes_below(p, x);
}

// Per-hit promotion probability of the windowed-counter Markov chain. A page
// (re-)enters a window at counter 1 and must survive in-window across T
// further same-type hits (survival probability q each) to exceed threshold
// T; a drop-out resets the streak. Expected hits per promotion is
// 1 + (1 - q^T) / ((1 - q) q^T); the rate is its reciprocal.
// Limits: T = 0 promotes on the first hit; q -> 1 gives 1 / (T + 1);
// a zero-width window (target 0) never tracks, so never promotes.
double promotion_rate(double q, std::uint64_t threshold,
                      std::size_t window_target) {
  if (window_target == 0) return 0.0;
  if (threshold == 0) return 1.0;
  if (q <= 0.0) return 0.0;
  const double t = static_cast<double>(threshold);
  if (q >= 1.0) return 1.0 / (t + 1.0);
  const double q_t = std::pow(q, t);
  const double expected_hits = 1.0 + (1.0 - q_t) / ((1.0 - q) * q_t);
  return 1.0 / expected_hits;
}

AnalyticEstimate finalize(AnalyticEstimate e, const AnalyticConfig& cfg,
                          double accesses) {
  e.hit_ratio = e.probs.hit_dram + e.probs.hit_nvm;
  e.amat = amat(e.probs, cfg.params);
  e.power = appr(e.probs, cfg.params, cfg.duration_s, accesses);
  e.nvm_writes_per_access =
      nvm_writes_per_access(e.probs, cfg.params.page_factor);
  e.lifetime_s = lifetime_seconds(
      e.nvm_writes_per_access * accesses, cfg.params.nvm.endurance_cycles,
      cfg.nvm_frames, cfg.params.page_factor, cfg.duration_s);
  return e;
}

// Degenerate single-module configs (the dram-only / nvm-only baselines):
// a plain LRU of the full capacity, every fault filling the one module.
AnalyticEstimate estimate_single_tier(const trace::ReuseProfile& profile,
                                      const AnalyticConfig& cfg) {
  const bool dram = cfg.nvm_frames == 0;
  const std::uint64_t capacity = dram ? cfg.dram_frames : cfg.nvm_frames;
  const double n = static_cast<double>(profile.accesses);
  const double hit_r = static_cast<double>(profile.reads_below(capacity)) / n;
  const double hit_w = static_cast<double>(profile.writes_below(capacity)) / n;
  const double hit = hit_r + hit_w;

  AnalyticEstimate e;
  e.probs.miss = 1.0 - hit;
  if (dram) {
    e.probs.hit_dram = hit;
    e.probs.read_dram = hit > 0.0 ? hit_r / hit : 0.0;
    e.probs.write_dram = hit > 0.0 ? hit_w / hit : 0.0;
    e.probs.disk_to_dram = e.probs.miss > 0.0 ? 1.0 : 0.0;
    e.effective_dram_frames = static_cast<double>(capacity);
  } else {
    e.probs.hit_nvm = hit;
    e.probs.read_nvm = hit > 0.0 ? hit_r / hit : 0.0;
    e.probs.write_nvm = hit > 0.0 ? hit_w / hit : 0.0;
    e.probs.disk_to_nvm = e.probs.miss > 0.0 ? 1.0 : 0.0;
  }
  return finalize(e, cfg, n);
}

}  // namespace

AnalyticEstimate estimate(const trace::ReuseProfile& profile,
                          const AnalyticConfig& config,
                          const AnalyticBias& bias) {
  HYMEM_CHECK_MSG(config.dram_frames + config.nvm_frames > 0,
                  "analytic estimate needs at least one frame");
  if (profile.accesses == 0) return AnalyticEstimate{};  // graceful, all-zero
  if (config.dram_frames == 0 || config.nvm_frames == 0) {
    return estimate_single_tier(profile, config);
  }

  const double n = static_cast<double>(profile.accesses);
  const auto cd = static_cast<double>(config.dram_frames);
  const std::uint64_t total = config.dram_frames + config.nvm_frames;
  const double c = static_cast<double>(total);

  // Combined residency: global-LRU miss ratio at Cd + Cn. Cold accesses have
  // infinite distance and are misses at any capacity.
  const double hit_r_total =
      static_cast<double>(profile.reads_below(total)) / n;
  const double hit_w_total =
      static_cast<double>(profile.writes_below(total)) / n;
  const double hit = hit_r_total + hit_w_total;
  const double miss = 1.0 - hit;
  // Steady state: after warmup the DRAM module is full whenever the
  // footprint covers it (the Section V.A sizing makes this the normal case).
  const bool dram_full = profile.distinct_pages >= config.dram_frames;

  // Window geometry — identical snapping to core::CountedLruQueue.
  const core::MigrationConfig& mig = config.migration;
  const std::size_t w_read = util::snap_ceil_fraction(
      mig.read_perc, static_cast<std::size_t>(config.nvm_frames));
  const std::size_t w_write = util::snap_ceil_fraction(
      mig.write_perc, static_cast<std::size_t>(config.nvm_frames));
  const auto biased = [&](std::uint64_t t) {
    const auto shifted = static_cast<std::int64_t>(t) + bias.threshold_bias;
    return shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
  };
  const std::uint64_t t_read = biased(mig.read_threshold);
  const std::uint64_t t_write = biased(mig.write_threshold);
  const double promo_cap = mig.max_promotions_per_kacc > 0
                               ? static_cast<double>(
                                     mig.max_promotions_per_kacc) / 1000.0
                               : std::numeric_limits<double>::infinity();

  // Fixed point over (PHitDRAM, PMigD); everything else is derived.
  //
  // DRAM hits are modeled as *bursts* following each DRAM entry (a fault
  // fill or a promotion): once a page leaves DRAM it serves even short-gap
  // re-accesses from NVM until promoted again, so DRAM's hit share is
  // entry-rate x expected burst length, not the raw short-gap mass. A burst
  // lasts while the page's gaps stay below the effective capacity
  // (geometric under the iid-gap approximation; promotion *selects* pages
  // whose gaps fit the window reach, which lengthens their bursts — the
  // conditional short-gap probability S_sel below).
  //
  // The burst map hd -> hd_new is monotone *decreasing* in hd (more DRAM
  // hits -> faster DRAM-front turnover -> smaller effective capacity ->
  // shorter bursts), so damped iteration two-cycles around the crossing;
  // bisection finds the unique root directly. migd perturbs the map only
  // weakly, so a damped outer loop over it settles in a few rounds.
  struct StepResult {
    double hd_new = 0.0;
    double migd_new = 0.0;
    double cd_eff = 0.0;
    double r_read = 0.0;
    double r_write = 0.0;
  };
  constexpr double kAlmostOne = 1.0 - 1e-6;
  const auto step = [&](double hd_cur, double migd_cur) {
    StepResult out;
    const double psi = std::clamp(miss + hd_cur + migd_cur, 1e-12, 1.0);
    out.cd_eff = std::min(cd / psi * bias.dram_capacity_scale, c);
    const double short_mass =
        std::min(frac_below(profile, out.cd_eff), hit);
    const double hn = std::max(hit - hd_cur, 0.0);
    const double mign = dram_full ? miss + migd_cur : 0.0;
    const double nu = std::clamp(mign + hn, 1e-12, 1.0);

    // Per-type NVM-hit mass: NVM serves everything DRAM does not, so split
    // the DRAM share by the short-gap read/write mix.
    const double short_r = frac_reads_below(profile, out.cd_eff);
    const double read_share =
        short_mass > 0.0 ? std::clamp(short_r / short_mass, 0.0, 1.0) : 0.0;
    const double hd_r = hd_cur * read_share;
    const double hd_w = hd_cur - hd_r;
    const double hn_r = std::clamp(hit_r_total - hd_r, 0.0, hit_r_total);
    const double hn_w = std::clamp(hit_w_total - hd_w, 0.0, hit_w_total);

    // Window survival: a page at the NVM front stays inside a window of W
    // slots while fewer than W front entries intervene; with nu entries per
    // access the reach is W / nu reuse-distance units. NVM-resident pages
    // see the full hit-gap distribution (sticky residency serves short-gap
    // re-accesses too), so condition on gap < C, not on the NVM band.
    const double reach_read =
        std::min(static_cast<double>(w_read) / nu, c);
    const double reach_write =
        std::min(static_cast<double>(w_write) / nu, c);
    const double q_read =
        hit_r_total > 0.0
            ? std::clamp(frac_reads_below(profile, reach_read) / hit_r_total,
                         0.0, 1.0)
            : 0.0;
    const double q_write =
        hit_w_total > 0.0
            ? std::clamp(frac_writes_below(profile, reach_write) /
                             hit_w_total,
                         0.0, 1.0)
            : 0.0;
    out.r_read = promotion_rate(q_read, t_read, w_read);
    out.r_write = promotion_rate(q_write, t_write, w_write);
    double migd_r = hn_r * out.r_read;
    double migd_w = hn_w * out.r_write;
    const double migd_raw = migd_r + migd_w;
    out.migd_new = std::min(migd_raw, promo_cap);
    if (migd_raw > 0.0 && out.migd_new < migd_raw) {
      const double scale = out.migd_new / migd_raw;
      migd_r *= scale;
      migd_w *= scale;
    }

    // Burst lengths. Fault fills land an average page: short-gap
    // probability = the unconditional short mass. Promotions land a page
    // that just survived the window T times: short-gap probability
    // conditioned on gaps below the window reach.
    const double s_fault = std::min(short_mass, kAlmostOne);
    const double burst_fault = s_fault / (1.0 - s_fault);
    const auto burst_promoted = [&](double reach) {
      const double below_reach = frac_below(profile, reach);
      if (below_reach <= 0.0) return 0.0;
      const double s_sel = std::min(
          frac_below(profile, std::min(out.cd_eff, reach)) / below_reach,
          kAlmostOne);
      return s_sel / (1.0 - s_sel);
    };
    out.hd_new = std::min(
        miss * burst_fault + migd_r * burst_promoted(reach_read) +
            migd_w * burst_promoted(reach_write),
        short_mass);
    return out;
  };

  double hd = 0.0;
  double migd = 0.0;
  int iterations = 0;
  constexpr int kOuterIterations = 40;
  constexpr int kBisectIterations = 50;
  constexpr double kTolerance = 1e-10;
  StepResult last = step(0.0, 0.0);
  for (int outer = 0; outer < kOuterIterations; ++outer) {
    // g(hd) = hd_new(hd) - hd is strictly decreasing with g(0) >= 0 and
    // g(hit) <= F(Cd) - hit <= 0, so the root is bracketed by [0, hit].
    double lo = 0.0;
    double hi = hit;
    for (int i = 0; i < kBisectIterations; ++i) {
      const double mid = 0.5 * (lo + hi);
      if (step(mid, migd).hd_new > mid) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    hd = 0.5 * (lo + hi);
    last = step(hd, migd);
    ++iterations;
    const double dm = last.migd_new - migd;
    migd += 0.5 * dm;
    if (std::abs(dm) < kTolerance) break;
  }
  const double cd_eff = last.cd_eff;
  const double r_read = last.r_read;
  const double r_write = last.r_write;

  AnalyticEstimate e;
  e.probs.hit_dram = hd;
  e.probs.hit_nvm = std::max(hit - hd, 0.0);
  e.probs.miss = miss;
  // Conditional read/write splits: DRAM hits follow the short-gap mix, NVM
  // hits take the remainder of the per-type hit mass.
  const double short_mass = std::min(frac_below(profile, cd_eff), hit);
  const double short_r = frac_reads_below(profile, cd_eff);
  const double read_share =
      short_mass > 0.0 ? std::clamp(short_r / short_mass, 0.0, 1.0) : 0.0;
  e.probs.read_dram = hd > 0.0 ? read_share : 0.0;
  e.probs.write_dram = hd > 0.0 ? 1.0 - read_share : 0.0;
  const double hn_r =
      std::clamp(hit_r_total - hd * read_share, 0.0, hit_r_total);
  const double hn_w = std::clamp(hit_w_total - hd * (1.0 - read_share), 0.0,
                                 hit_w_total);
  const double hn_sum = hn_r + hn_w;
  e.probs.read_nvm = hn_sum > 0.0 ? hn_r / hn_sum : 0.0;
  e.probs.write_nvm = hn_sum > 0.0 ? hn_w / hn_sum : 0.0;
  e.probs.mig_to_dram = migd;
  e.probs.mig_to_nvm = dram_full ? miss + migd : 0.0;
  e.probs.disk_to_dram = miss > 0.0 ? 1.0 : 0.0;  // all faults fill DRAM
  e.effective_dram_frames = cd_eff;
  e.promotion_rate_read = r_read;
  e.promotion_rate_write = r_write;
  e.iterations = iterations;
  return finalize(e, config, n);
}

std::vector<AnalyticSweepPoint> analytic_sweep(
    const trace::ReuseProfile& profile, const AnalyticConfig& base,
    const std::vector<double>& xs,
    const std::function<AnalyticConfig(AnalyticConfig, double)>& mutate) {
  std::vector<AnalyticSweepPoint> points;
  points.reserve(xs.size());
  for (double x : xs) {
    points.push_back(AnalyticSweepPoint{x, estimate(profile, mutate(base, x))});
  }
  return points;
}

std::vector<AnalyticSweepPoint> analytic_sweep_read_threshold(
    const trace::ReuseProfile& profile, const AnalyticConfig& base,
    const std::vector<double>& thresholds) {
  return analytic_sweep(profile, base, thresholds,
                        [](AnalyticConfig cfg, double x) {
                          cfg.migration.read_threshold =
                              static_cast<std::uint64_t>(x);
                          return cfg;
                        });
}

std::vector<AnalyticSweepPoint> analytic_sweep_write_threshold(
    const trace::ReuseProfile& profile, const AnalyticConfig& base,
    const std::vector<double>& thresholds) {
  return analytic_sweep(profile, base, thresholds,
                        [](AnalyticConfig cfg, double x) {
                          cfg.migration.write_threshold =
                              static_cast<std::uint64_t>(x);
                          return cfg;
                        });
}

}  // namespace hymem::model
