#include "model/endurance_model.hpp"

#include <limits>

namespace hymem::model {

NvmWriteBreakdown nvm_writes(const EventCounts& c) {
  NvmWriteBreakdown b;
  b.demand_writes = c.nvm_write_hits;
  b.fault_fill_writes = c.fills_to_nvm * c.page_factor;
  b.migration_writes = c.migrations_to_nvm * c.page_factor;
  return b;
}

double lifetime_seconds(const NvmWriteBreakdown& writes,
                        double endurance_cycles, std::uint64_t nvm_pages,
                        std::uint64_t page_factor, double duration_s) {
  if (writes.total() == 0 || endurance_cycles <= 0.0 || duration_s <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  // Total endurance budget in device-granularity writes, spread perfectly.
  const double budget = endurance_cycles *
                        static_cast<double>(nvm_pages) *
                        static_cast<double>(page_factor);
  const double rate = static_cast<double>(writes.total()) / duration_s;
  return budget / rate;
}

double nvm_writes_per_access(const TableIProbabilities& probs,
                             std::uint64_t page_factor) {
  const auto pf = static_cast<double>(page_factor);
  return probs.hit_nvm * probs.write_nvm +
         probs.miss * probs.disk_to_nvm * pf + probs.mig_to_nvm * pf;
}

double lifetime_seconds(double total_writes, double endurance_cycles,
                        std::uint64_t nvm_pages, std::uint64_t page_factor,
                        double duration_s) {
  if (total_writes <= 0.0 || endurance_cycles <= 0.0 || duration_s <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double budget = endurance_cycles * static_cast<double>(nvm_pages) *
                        static_cast<double>(page_factor);
  return budget / (total_writes / duration_s);
}

}  // namespace hymem::model
