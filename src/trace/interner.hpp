// Page-ID interning: decode a trace's byte addresses to page IDs exactly
// once, instead of re-dividing on every access of every warmup pass.
//
// `page_of` on the replay path is a 64-bit division by a runtime divisor —
// tens of cycles per access before the policy does any work. The interner
// pays it once per trace (as a shift: page sizes are powers of two), caches
// the page sequence, and additionally assigns dense IDs in [0, N) in
// first-touch order for consumers that want array indexing instead of
// hashing (reuse-distance tools, benchmarks, tests).
//
// The replay engine feeds policies the *original* page IDs: several policies
// (e.g. static-partition's hash-based home assignment) make decisions from
// the ID value, so relabeling would change results. Dense IDs are an opt-in
// view, not a substitute.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace hymem::trace {

/// One-shot decode of a trace at a given page size.
class PageIdInterner {
 public:
  /// Decodes every access of `trace` at `page_size` (> 0; powers of two
  /// decode with a shift, others with the page_of division).
  PageIdInterner(const Trace& trace, std::uint64_t page_size);

  std::uint64_t page_size() const { return page_size_; }

  /// Page ID per access (same order and length as the trace).
  std::span<const PageId> pages() const { return pages_; }

  /// Dense ID in [0, unique_pages()) per access, assigned in first-touch
  /// order. Built lazily on first use: the replay engine only needs
  /// `pages()`, and the dense view costs a hash probe per access.
  std::span<const std::uint32_t> dense_ids() const {
    ensure_dense();
    return dense_;
  }

  /// Number of distinct pages touched (the trace footprint).
  std::size_t unique_pages() const {
    ensure_dense();
    return originals_.size();
  }

  /// Original page ID of a dense ID.
  PageId original(std::uint32_t dense_id) const {
    ensure_dense();
    return originals_[dense_id];
  }

 private:
  void ensure_dense() const;

  std::uint64_t page_size_;
  std::vector<PageId> pages_;
  mutable std::vector<std::uint32_t> dense_;
  mutable std::vector<PageId> originals_;  // dense id -> original page
};

}  // namespace hymem::trace
