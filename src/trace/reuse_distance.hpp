// Mattson stack-distance (LRU reuse-distance) analysis.
//
// For a stack algorithm like LRU, the hit ratio at any capacity C equals the
// fraction of accesses with reuse distance < C. The hybrid-memory sizing in
// the paper (memory = 75% of footprint, DRAM = 10% of memory) makes the
// reuse-distance profile the single most predictive workload feature, so the
// characterization tooling exposes it directly — and the analytic estimator
// (src/model/analytic) consumes the exported ReuseProfile to predict Table I
// probabilities, Eq. 1 AMAT and NVM lifetime without replaying the trace.
//
// Cold-vs-finite accounting contract (pinned by tests/trace):
//   * A first-touch access has no previous occurrence; its distance is
//     *infinite*. It is counted in cold_count() (split per access type for
//     the profile) and NEVER folded into the finite histogram or CDF — not
//     even into the top bucket.
//   * Every finite distance, however large, lands in the exact per-distance
//     CDF and in a Log2Histogram bucket covering it (the histogram grows;
//     no tail bucket silently swallows out-of-range values).
//
// Implementation: classic O(n log n) algorithm — a Fenwick tree over access
// timestamps marks the most recent position of each page; the reuse distance
// is the count of marked positions newer than the page's previous access.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "util/histogram.hpp"

namespace hymem::trace {

/// Compact per-workload reuse-distance profile: the exact finite-distance
/// CDF split by access type, plus the cold-miss counts. This is everything
/// the analytic models need — computed once per workload, O(distinct
/// distances) storage, O(log n) queries.
struct ReuseProfile {
  /// Accesses observed since construction (or the last reset_stats()).
  std::uint64_t accesses = 0;
  /// First-touch (infinite-distance) accesses per type. Cold accesses are
  /// NOT part of the finite CDF below.
  std::uint64_t cold_reads = 0;
  std::uint64_t cold_writes = 0;
  /// Distinct pages ever observed (lifetime — survives reset_stats(), since
  /// the LRU stack state does too). This is the workload footprint the
  /// Section V.A sizing rule consumes.
  std::uint64_t distinct_pages = 0;

  /// Ascending unique finite distances with parallel cumulative counts:
  /// reads_cum[i] = read accesses with distance <= distance[i].
  std::vector<std::uint64_t> distance;
  std::vector<std::uint64_t> reads_cum;
  std::vector<std::uint64_t> writes_cum;

  std::uint64_t cold() const { return cold_reads + cold_writes; }
  std::uint64_t finite_reads() const {
    return reads_cum.empty() ? 0 : reads_cum.back();
  }
  std::uint64_t finite_writes() const {
    return writes_cum.empty() ? 0 : writes_cum.back();
  }
  std::uint64_t finite_total() const {
    return finite_reads() + finite_writes();
  }
  std::uint64_t reads() const { return finite_reads() + cold_reads; }
  std::uint64_t writes() const { return finite_writes() + cold_writes; }

  /// Read / write / total accesses with finite distance strictly below `x`
  /// (an LRU of capacity x hits exactly these accesses). x = 0 returns 0;
  /// cold accesses are never included, no matter how large x is.
  std::uint64_t reads_below(std::uint64_t x) const;
  std::uint64_t writes_below(std::uint64_t x) const;
  std::uint64_t below(std::uint64_t x) const {
    return reads_below(x) + writes_below(x);
  }

  /// below(x) as a fraction of all observed accesses (0 when empty).
  double frac_below(std::uint64_t x) const;
  /// Exact LRU hit ratio at `capacity_pages` (identical contract to
  /// ReuseDistanceAnalyzer::lru_hit_ratio, served from the CDF).
  double lru_hit_ratio(std::uint64_t capacity_pages) const {
    return frac_below(capacity_pages);
  }
};

/// Streaming LRU stack-distance analyzer over pages.
class ReuseDistanceAnalyzer {
 public:
  /// `page_size` maps addresses to pages; `capacity_hint` pre-sizes internal
  /// structures (optional).
  explicit ReuseDistanceAnalyzer(std::uint64_t page_size,
                                 std::size_t capacity_hint = 0);

  /// Feeds one access; returns its reuse distance in distinct pages, or
  /// UINT64_MAX for a cold (first-touch) access.
  std::uint64_t observe(Addr addr, AccessType type = AccessType::kRead);

  /// Feeds a whole trace (typed: read/write split lands in the profile).
  void observe(const Trace& trace);

  /// Forgets the collected statistics (histogram, CDF, cold counts, recorded
  /// distances) while KEEPING the LRU stack state — the analyzer's
  /// counterpart of the engine's post-warmup accounting reset. Feed the
  /// warmup trace, reset_stats(), feed the measured trace: the profile then
  /// covers exactly the measured window, with warmup-resident pages warm.
  void reset_stats();

  /// Number of cold (first-touch) accesses since the last reset.
  std::uint64_t cold_count() const { return cold_reads_ + cold_writes_; }
  /// Total accesses observed since construction (the stack clock; NOT reset
  /// by reset_stats()).
  std::uint64_t access_count() const { return time_; }
  /// Accesses observed since the last reset (what the profile covers).
  std::uint64_t window_access_count() const { return distances_.size(); }
  /// Distinct pages ever observed (lifetime footprint).
  std::uint64_t distinct_pages() const { return last_slot_.size(); }

  /// Histogram of finite reuse distances (log2 buckets, grows on demand).
  const Log2Histogram& histogram() const { return hist_; }

  /// Exports the compact profile (sorted exact CDF + cold counts) covering
  /// the window since the last reset.
  ReuseProfile profile() const;

  /// Exact hit ratio a fully-associative LRU of `capacity_pages` would see
  /// on the observed stream (cold misses count as misses). Exact because it
  /// replays the recorded per-access distances.
  double lru_hit_ratio(std::uint64_t capacity_pages) const;

  /// Miss-ratio curve at the given capacities (1 - hit ratio each).
  std::vector<double> miss_ratio_curve(const std::vector<std::uint64_t>& capacities) const;

 private:
  // Fenwick tree over access slots.
  void bit_add(std::size_t pos, std::int64_t delta);
  std::int64_t bit_sum(std::size_t pos) const;  // prefix sum [0, pos]

  std::uint64_t page_size_;
  std::uint64_t time_ = 0;
  std::uint64_t cold_reads_ = 0;
  std::uint64_t cold_writes_ = 0;
  std::vector<std::int64_t> bit_;
  std::unordered_map<PageId, std::uint64_t> last_slot_;
  Log2Histogram hist_;
  std::vector<std::uint64_t> distances_;  // per-access; UINT64_MAX = cold
  /// Exact finite-distance counts: distance -> {reads, writes}.
  std::unordered_map<std::uint64_t, std::array<std::uint64_t, 2>> finite_;
};

}  // namespace hymem::trace
