// Mattson stack-distance (LRU reuse-distance) analysis.
//
// For a stack algorithm like LRU, the hit ratio at any capacity C equals the
// fraction of accesses with reuse distance < C. The hybrid-memory sizing in
// the paper (memory = 75% of footprint, DRAM = 10% of memory) makes the
// reuse-distance profile the single most predictive workload feature, so the
// characterization tooling exposes it directly.
//
// Implementation: classic O(n log n) algorithm — a Fenwick tree over access
// timestamps marks the most recent position of each page; the reuse distance
// is the count of marked positions newer than the page's previous access.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "util/histogram.hpp"

namespace hymem::trace {

/// Streaming LRU stack-distance analyzer over pages.
class ReuseDistanceAnalyzer {
 public:
  /// `page_size` maps addresses to pages; `capacity_hint` pre-sizes internal
  /// structures (optional).
  explicit ReuseDistanceAnalyzer(std::uint64_t page_size,
                                 std::size_t capacity_hint = 0);

  /// Feeds one access; returns its reuse distance in distinct pages, or
  /// UINT64_MAX for a cold (first-touch) access.
  std::uint64_t observe(Addr addr);

  /// Feeds a whole trace.
  void observe(const Trace& trace);

  /// Number of cold (first-touch) accesses so far.
  std::uint64_t cold_count() const { return cold_; }
  /// Total accesses observed.
  std::uint64_t access_count() const { return time_; }

  /// Histogram of finite reuse distances (log2 buckets).
  const Log2Histogram& histogram() const { return hist_; }

  /// Exact hit ratio a fully-associative LRU of `capacity_pages` would see
  /// on the observed stream (cold misses count as misses). Exact because it
  /// replays the recorded per-access distances.
  double lru_hit_ratio(std::uint64_t capacity_pages) const;

  /// Hit-ratio curve at the given capacities.
  std::vector<double> miss_ratio_curve(const std::vector<std::uint64_t>& capacities) const;

 private:
  // Fenwick tree over access slots.
  void bit_add(std::size_t pos, std::int64_t delta);
  std::int64_t bit_sum(std::size_t pos) const;  // prefix sum [0, pos]

  std::uint64_t page_size_;
  std::uint64_t time_ = 0;
  std::uint64_t cold_ = 0;
  std::vector<std::int64_t> bit_;
  std::unordered_map<PageId, std::uint64_t> last_slot_;
  Log2Histogram hist_;
  std::vector<std::uint64_t> distances_;  // per-access; UINT64_MAX = cold
};

}  // namespace hymem::trace
