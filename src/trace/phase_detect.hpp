// Working-set phase detection.
//
// The migration-hostile workloads of the paper (canneal, fluidanimate,
// raytrace, vips) are hostile precisely because their active sets *shift*:
// pages migrate to DRAM and the phase moves on. This detector makes those
// shifts measurable: it hashes each window's touched-page set into a fixed
// signature and declares a phase boundary when consecutive signatures'
// Jaccard similarity drops below a threshold (the classic working-set
// signature technique of Dhodapkar & Smith).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace hymem::trace {

/// Detector tunables.
struct PhaseDetectorConfig {
  std::uint64_t window_accesses = 4096;  ///< Accesses per signature window.
  std::uint32_t signature_bits = 1024;   ///< Signature bitmap width.
  double similarity_threshold = 0.5;     ///< Below this = phase boundary.
};

/// Streaming phase detector over page accesses.
class PhaseDetector {
 public:
  explicit PhaseDetector(std::uint64_t page_size,
                         const PhaseDetectorConfig& config = {});

  /// Feeds one access.
  void observe(Addr addr);
  /// Feeds a whole trace.
  void observe(const Trace& trace);

  /// Access indices where a phase boundary was declared.
  const std::vector<std::uint64_t>& boundaries() const { return boundaries_; }
  /// Number of phases seen so far (boundaries + 1).
  std::uint64_t phase_count() const { return boundaries_.size() + 1; }
  /// Jaccard similarity of the two most recent completed windows
  /// (1.0 before two windows completed).
  double last_similarity() const { return last_similarity_; }
  std::uint64_t accesses() const { return accesses_; }

  /// Jaccard similarity of two equal-width bitmaps (|and| / |or|; 1.0 when
  /// both are empty). Exposed for tests.
  static double jaccard(const std::vector<std::uint64_t>& a,
                        const std::vector<std::uint64_t>& b);

 private:
  void close_window();

  std::uint64_t page_size_;
  PhaseDetectorConfig config_;
  std::vector<std::uint64_t> current_;   // signature being filled
  std::vector<std::uint64_t> previous_;  // last completed signature
  bool have_previous_ = false;
  std::uint64_t accesses_ = 0;
  std::uint64_t in_window_ = 0;
  double last_similarity_ = 1.0;
  std::vector<std::uint64_t> boundaries_;
};

}  // namespace hymem::trace
