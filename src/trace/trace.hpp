// In-memory access trace.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/access.hpp"

namespace hymem::trace {

/// A sequence of memory requests plus the metadata needed to interpret it.
///
/// Traces are the interchange format between the synthetic generator, the
/// cache-hierarchy filter, and the hybrid-memory simulator.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void reserve(std::size_t n) { accesses_.reserve(n); }
  void append(MemAccess a) { accesses_.push_back(a); }
  void append(Addr addr, AccessType type, std::uint8_t core = 0) {
    accesses_.push_back({addr, type, core});
  }

  bool empty() const { return accesses_.empty(); }
  std::size_t size() const { return accesses_.size(); }
  const MemAccess& operator[](std::size_t i) const { return accesses_[i]; }

  std::span<const MemAccess> accesses() const { return accesses_; }

  auto begin() const { return accesses_.begin(); }
  auto end() const { return accesses_.end(); }

  /// Number of read / write requests.
  std::uint64_t read_count() const;
  std::uint64_t write_count() const;

 private:
  std::string name_;
  std::vector<MemAccess> accesses_;
};

}  // namespace hymem::trace
