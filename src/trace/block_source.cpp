#include "trace/block_source.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/flat_page_map.hpp"

namespace hymem::trace {

TraceBlockSource::TraceBlockSource(const Trace& trace, std::uint64_t page_size,
                                   std::size_t block_accesses,
                                   unsigned decode_workers)
    : name_(trace.name()),
      page_size_(page_size),
      block_accesses_(block_accesses) {
  HYMEM_CHECK_MSG(page_size > 0, "page size must be positive");
  const std::span<const MemAccess> accesses = trace.accesses();
  const std::size_t n = accesses.size();
  if (n > 0) {
    // Guarded: GCC 12's -Wnull-dereference misfires on resize(0) at -O3.
    pages_.resize(n);
    types_.resize(n);
    hashes_.resize(n);
  }
  const auto decode_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const PageId page = page_of(accesses[i].addr, page_size_);
      pages_[i] = page;
      types_[i] = accesses[i].type;
      hashes_[i] = util::hash_page_id(page);
    }
  };
  const unsigned workers =
      n == 0 ? 1
             : static_cast<unsigned>(std::min<std::size_t>(
                   std::max(1u, decode_workers), n));
  if (workers <= 1) {
    decode_range(0, n);
    return;
  }
  // Contiguous stripes, one per worker: every element is written by exactly
  // one thread and the result is independent of scheduling — decode
  // parallelism can never perturb replay output.
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t stride = (n + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t begin = std::min<std::size_t>(w * stride, n);
    const std::size_t end = std::min<std::size_t>(begin + stride, n);
    threads.emplace_back(decode_range, begin, end);
  }
  for (std::thread& t : threads) t.join();
}

const DecodedBlock* TraceBlockSource::next() {
  if (cursor_ >= pages_.size()) return nullptr;
  const std::size_t n =
      block_accesses_ == 0
          ? pages_.size() - cursor_
          : std::min(block_accesses_, pages_.size() - cursor_);
  view_ = {pages_.data() + cursor_, types_.data() + cursor_,
           hashes_.data() + cursor_, n};
  cursor_ += n;
  return &view_;
}

StreamBlockSource::StreamBlockSource(std::istream& in, std::uint64_t page_size,
                                     std::size_t block_accesses,
                                     bool readahead)
    : reader_(in),
      page_size_(page_size),
      block_accesses_(block_accesses),
      readahead_(readahead) {
  HYMEM_CHECK_MSG(page_size > 0, "page size must be positive");
  HYMEM_CHECK_MSG(block_accesses > 0, "block size must be positive");
  for (Buffer& buf : buffers_) {
    buf.pages.resize(block_accesses);
    buf.types.resize(block_accesses);
    buf.hashes.resize(block_accesses);
  }
  if (readahead_) start_producer();
}

StreamBlockSource::~StreamBlockSource() { stop_producer(); }

void StreamBlockSource::fill(Buffer& buf) {
  std::size_t n = 0;
  while (n < block_accesses_) {
    const auto access = reader_.next();
    if (!access.has_value()) {
      buf.eof = true;
      break;
    }
    const PageId page = page_of(access->addr, page_size_);
    buf.pages[n] = page;
    buf.types[n] = access->type;
    buf.hashes[n] = util::hash_page_id(page);
    ++n;
  }
  buf.size = n;
}

void StreamBlockSource::producer_loop() {
  while (true) {
    std::unique_lock lock(mutex_);
    free_cv_.wait(lock, [this] {
      return stop_ || !buffers_[produce_index_].filled;
    });
    if (stop_) return;
    Buffer& buf = buffers_[produce_index_];
    buf.eof = false;
    lock.unlock();
    // Decode outside the lock: the consumer never touches an unfilled
    // buffer, so the producer owns it until the filled handoff below.
    try {
      fill(buf);
    } catch (...) {
      lock.lock();
      producer_error_ = std::current_exception();
      filled_cv_.notify_one();
      return;
    }
    lock.lock();
    buf.filled = true;
    filled_cv_.notify_one();
    if (buf.eof) return;  // Terminal block produced; nothing left to decode.
    produce_index_ ^= 1;
  }
}

void StreamBlockSource::start_producer() {
  stop_ = false;
  producer_error_ = nullptr;
  producer_ = std::thread([this] { producer_loop(); });
}

void StreamBlockSource::stop_producer() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  free_cv_.notify_all();
  if (producer_.joinable()) producer_.join();
}

const DecodedBlock* StreamBlockSource::next() {
  if (!readahead_) {
    if (holding_ >= 0) buffers_[static_cast<std::size_t>(holding_)].filled = false;
    holding_ = -1;
    if (finished_) return nullptr;
    Buffer& buf = buffers_[consume_index_];
    buf.eof = false;
    fill(buf);
    if (buf.eof) finished_ = true;
    if (buf.size == 0) return nullptr;
    view_ = {buf.pages.data(), buf.types.data(), buf.hashes.data(), buf.size};
    holding_ = static_cast<int>(consume_index_);
    consume_index_ ^= 1;
    return &view_;
  }
  std::unique_lock lock(mutex_);
  if (holding_ >= 0) {
    buffers_[static_cast<std::size_t>(holding_)].filled = false;
    holding_ = -1;
    free_cv_.notify_one();
  }
  if (finished_) return nullptr;
  filled_cv_.wait(lock, [this] {
    return buffers_[consume_index_].filled || producer_error_ != nullptr;
  });
  if (producer_error_ != nullptr) {
    std::exception_ptr error = producer_error_;
    producer_error_ = nullptr;
    finished_ = true;
    std::rethrow_exception(error);
  }
  Buffer& buf = buffers_[consume_index_];
  if (buf.eof) finished_ = true;
  if (buf.size == 0) {
    buf.filled = false;
    return nullptr;
  }
  view_ = {buf.pages.data(), buf.types.data(), buf.hashes.data(), buf.size};
  holding_ = static_cast<int>(consume_index_);
  consume_index_ ^= 1;
  return &view_;
}

void StreamBlockSource::rewind() {
  if (readahead_) stop_producer();
  reader_.rewind();
  for (Buffer& buf : buffers_) {
    buf.filled = false;
    buf.eof = false;
    buf.size = 0;
  }
  consume_index_ = 0;
  produce_index_ = 0;
  holding_ = -1;
  finished_ = false;
  if (readahead_) start_producer();
}

}  // namespace hymem::trace
