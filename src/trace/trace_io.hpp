// Trace serialization.
//
// Binary format (little-endian):
//   magic "HYTR" | u32 version | u32 name_len | name bytes | u64 count |
//   count * { u64 addr | u8 type | u8 core }
//
// Text format: one record per line, `R <hex-addr> <core>` / `W <hex-addr>
// <core>`; lines starting with '#' are comments. The text form exists so
// externally captured traces (e.g. real COTSon/valgrind dumps) can be fed in.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace hymem::trace {

/// Current binary format version.
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Writes/reads the binary format. Throws std::runtime_error on malformed
/// input (bad magic, truncated payload, unsupported version).
void write_binary(const Trace& trace, std::ostream& out);
Trace read_binary(std::istream& in);

/// Writes/reads the text format. Throws std::runtime_error on parse errors.
void write_text(const Trace& trace, std::ostream& out);
Trace read_text(std::istream& in, std::string name = "");

/// File helpers; format chosen by extension (".trc" binary, anything else
/// text).
void save(const Trace& trace, const std::string& path);
Trace load(const std::string& path);

}  // namespace hymem::trace
