#include "trace/interner.hpp"

#include <bit>

#include "trace/access.hpp"
#include "util/check.hpp"
#include "util/flat_page_map.hpp"

namespace hymem::trace {

PageIdInterner::PageIdInterner(const Trace& trace, std::uint64_t page_size)
    : page_size_(page_size) {
  HYMEM_CHECK_MSG(page_size > 0, "page size must be positive");
  // Power-of-two page sizes (the overwhelmingly common case) decode with a
  // shift; anything else falls back to the page_of division.
  const bool pow2 = std::has_single_bit(page_size);
  const int shift = pow2 ? std::countr_zero(page_size) : 0;
  pages_.reserve(trace.size());
  for (const MemAccess& access : trace.accesses()) {
    pages_.push_back(pow2 ? access.addr >> shift
                          : page_of(access.addr, page_size));
  }
}

void PageIdInterner::ensure_dense() const {
  if (!dense_.empty() || pages_.empty()) return;
  dense_.reserve(pages_.size());
  util::FlatPageMap<std::uint32_t> ids;
  for (const PageId page : pages_) {
    const auto [slot, inserted] = ids.try_emplace(page);
    if (inserted) {
      *slot = static_cast<std::uint32_t>(originals_.size());
      originals_.push_back(page);
    }
    dense_.push_back(*slot);
  }
}

}  // namespace hymem::trace
