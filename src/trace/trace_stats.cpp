#include "trace/trace_stats.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/units.hpp"

namespace hymem::trace {

std::uint64_t TraceStats::working_set_kb() const {
  return distinct_pages * page_size / kKiB;
}

TraceCharacterizer::TraceCharacterizer(std::uint64_t page_size)
    : page_size_(page_size) {
  HYMEM_CHECK_MSG(page_size > 0, "page size must be positive");
}

void TraceCharacterizer::observe(const MemAccess& access) {
  auto& profile = pages_[page_of(access.addr, page_size_)];
  if (access.type == AccessType::kRead) {
    ++profile.reads;
    ++reads_;
  } else {
    ++profile.writes;
    ++writes_;
  }
}

void TraceCharacterizer::observe(const Trace& trace) {
  for (const auto& a : trace) observe(a);
}

TraceStats TraceCharacterizer::stats() const {
  TraceStats s;
  s.page_size = page_size_;
  s.reads = reads_;
  s.writes = writes_;
  s.accesses = reads_ + writes_;
  s.distinct_pages = pages_.size();
  for (const auto& [page, profile] : pages_) {
    s.accesses_per_page.add(profile.total());
    if (profile.write_ratio() >= 0.5 && profile.writes > 0) {
      ++s.write_dominant_pages;
    }
  }
  return s;
}

std::vector<std::pair<PageId, PageProfile>> TraceCharacterizer::ranked_pages() const {
  std::vector<std::pair<PageId, PageProfile>> ranked(pages_.begin(), pages_.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.total() != b.second.total()) return a.second.total() > b.second.total();
    return a.first < b.first;
  });
  return ranked;
}

TraceStats characterize(const Trace& trace, std::uint64_t page_size) {
  TraceCharacterizer c(page_size);
  c.observe(trace);
  return c.stats();
}

}  // namespace hymem::trace
