// Streaming trace I/O for traces too large to materialize.
//
// Chunked binary format (little-endian):
//   magic "HYTS" | u32 version | u32 name_len | name |
//   repeated chunks: u32 record_count | record_count * {u64 addr|u8 type|u8 core}
//   terminated by a chunk with record_count == 0.
//
// Unlike trace_io's monolithic format, a writer never needs to know the
// total record count up front (no seeking), and a reader holds only one
// chunk in memory — so multi-billion-access captures stream through
// constant memory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/access.hpp"

namespace hymem::trace {

inline constexpr std::uint32_t kStreamFormatVersion = 1;

/// Appends records to a chunked stream; finish() writes the terminator.
class StreamTraceWriter {
 public:
  /// `chunk_records` bounds both buffering and reader memory.
  StreamTraceWriter(std::ostream& out, std::string name,
                    std::size_t chunk_records = 1 << 16);
  ~StreamTraceWriter();
  StreamTraceWriter(const StreamTraceWriter&) = delete;
  StreamTraceWriter& operator=(const StreamTraceWriter&) = delete;

  void append(const MemAccess& access);
  std::uint64_t written() const { return written_; }

  /// Flushes the pending chunk and writes the terminator. Idempotent;
  /// called by the destructor if forgotten.
  void finish();

 private:
  void flush_chunk();

  std::ostream& out_;
  std::size_t chunk_records_;
  std::vector<MemAccess> pending_;
  std::uint64_t written_ = 0;
  bool finished_ = false;
};

/// Pulls records one at a time from a chunked stream.
///
/// Every parse error is a std::runtime_error whose message carries the byte
/// offset where decoding failed (and, inside a chunk, the offset and declared
/// record count of that chunk's header) — a truncated or corrupt capture
/// names the exact spot instead of silently ending the trace early.
class StreamTraceReader {
 public:
  /// Parses the header; throws std::runtime_error on malformed input.
  explicit StreamTraceReader(std::istream& in);

  const std::string& name() const { return name_; }

  /// Next record, or nullopt at the terminator.
  std::optional<MemAccess> next();

  std::uint64_t read_count() const { return read_; }

  /// Bytes consumed from the start of the stream so far.
  std::uint64_t byte_offset() const { return offset_; }

  /// Restarts the record sequence from the first chunk (multi-pass replay;
  /// warmup passes of the streaming engine). Requires a seekable stream —
  /// throws std::runtime_error when the seek fails (e.g. a pipe).
  void rewind();

 private:
  bool load_chunk();
  template <typename T>
  T take(const char* what);

  std::istream& in_;
  std::string name_;
  std::vector<MemAccess> chunk_;
  std::size_t cursor_ = 0;
  std::uint64_t read_ = 0;
  std::uint64_t offset_ = 0;       ///< Bytes consumed so far.
  std::uint64_t data_offset_ = 0;  ///< Offset of the first chunk header.
  bool done_ = false;
};

}  // namespace hymem::trace
