// The unit record of every hymem pipeline: one main-memory request.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace hymem::trace {

/// One memory request as seen below the last-level cache.
///
/// `addr` is a byte address; the simulation layers derive the page from it.
/// `core` identifies the issuing core (used by the cache-hierarchy substrate
/// and ignored by the memory policies, which are core-agnostic like the
/// paper's OS-level scheme).
struct MemAccess {
  Addr addr = 0;
  AccessType type = AccessType::kRead;
  std::uint8_t core = 0;

  friend bool operator==(const MemAccess&, const MemAccess&) = default;
};

/// Page containing an address for a power-of-two page size.
constexpr PageId page_of(Addr addr, std::uint64_t page_size) {
  return addr / page_size;
}

}  // namespace hymem::trace
