#include "trace/transform.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace hymem::trace {

Trace to_page_trace(const Trace& in, std::uint64_t page_size) {
  HYMEM_CHECK(page_size > 0);
  Trace out(in.name());
  out.reserve(in.size());
  for (const auto& a : in) {
    out.append(page_of(a.addr, page_size) * page_size, a.type, a.core);
  }
  return out;
}

Trace interleave(std::span<const Trace* const> sources, std::size_t burst_len,
                 std::string name) {
  HYMEM_CHECK(burst_len > 0);
  Trace out(std::move(name));
  std::size_t total = 0;
  std::vector<std::size_t> cursor(sources.size(), 0);
  for (const Trace* t : sources) {
    HYMEM_CHECK(t != nullptr);
    total += t->size();
  }
  out.reserve(total);
  std::size_t emitted = 0;
  while (emitted < total) {
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const Trace& src = *sources[s];
      for (std::size_t b = 0; b < burst_len && cursor[s] < src.size(); ++b) {
        out.append(src[cursor[s]++]);
        ++emitted;
      }
    }
  }
  return out;
}

Trace downsample(const Trace& in, std::uint64_t stride, std::uint64_t offset) {
  HYMEM_CHECK(stride > 0);
  Trace out(in.name());
  out.reserve(in.size() / stride + 1);
  for (std::uint64_t i = offset; i < in.size(); i += stride) {
    out.append(in[static_cast<std::size_t>(i)]);
  }
  return out;
}

Trace densify_pages(const Trace& in, std::uint64_t page_size) {
  HYMEM_CHECK(page_size > 0);
  Trace out(in.name());
  out.reserve(in.size());
  std::unordered_map<PageId, PageId> remap;
  for (const auto& a : in) {
    const PageId page = page_of(a.addr, page_size);
    const auto [it, inserted] = remap.try_emplace(page, remap.size());
    const Addr offset_in_page = a.addr % page_size;
    out.append(it->second * page_size + offset_in_page, a.type, a.core);
  }
  return out;
}

}  // namespace hymem::trace
