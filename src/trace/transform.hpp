// Trace transformations: page-granularity projection, multi-trace
// interleaving (to emulate co-scheduled workloads), and deterministic
// downsampling (to run paper-sized experiments at a reduced scale).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace hymem::trace {

/// Projects a byte-address trace onto page granularity: every access address
/// becomes its page base address. Preserves order, types and cores.
Trace to_page_trace(const Trace& in, std::uint64_t page_size);

/// Round-robin interleaves several traces with the given burst length
/// (requests taken from each source per turn). Sources are drained fully;
/// shorter traces simply drop out of the rotation.
Trace interleave(std::span<const Trace* const> sources, std::size_t burst_len,
                 std::string name);

/// Keeps every `stride`-th access starting at `offset` (deterministic
/// systematic sampling; preserves the read/write mix in expectation and the
/// relative page popularity exactly for large traces).
Trace downsample(const Trace& in, std::uint64_t stride, std::uint64_t offset = 0);

/// Remaps page numbers to a dense 0..N-1 space (first-touch order), which
/// keeps simulator memory proportional to footprint regardless of the
/// original address layout.
Trace densify_pages(const Trace& in, std::uint64_t page_size);

}  // namespace hymem::trace
