// Block sources: the decoded-block ingest layer of the streaming replay
// engine.
//
// The engine's unit of work is a DecodedBlock — parallel arrays of page IDs,
// access types and memoized page-ID hashes. A BlockSource produces the run's
// blocks in trace order and can rewind for warmup passes; the engine never
// sees raw byte addresses, so decode cost (the page shift and the hash
// mixer) is paid where the source can amortize or hide it:
//
//   * TraceBlockSource decodes a materialized trace exactly once, at
//     construction (optionally striped across worker threads), and serves
//     every pass from the cached arrays — the multi-pass replay loop does
//     zero decode work.
//   * StreamBlockSource pulls the chunked stream_io format and holds only
//     two blocks of memory: with readahead on, a producer thread decodes
//     block N+1 while the consumer replays block N (double buffering), so
//     run memory is O(chunk) for captures too large to materialize.
//
// Both sources emit identical block sequences for the same input, so every
// consumer downstream of this seam is byte-identical across ingest modes —
// the property tests/integration/test_stream_parity.cpp pins.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/stream_io.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace hymem::trace {

/// One decoded block of replay work. Views into source-owned storage, valid
/// until the next next()/rewind() on the producing source.
struct DecodedBlock {
  const PageId* pages = nullptr;
  const AccessType* types = nullptr;
  const std::uint64_t* hashes = nullptr;  ///< hash_page_id(pages[i]), memoized.
  std::size_t size = 0;
};

/// Produces a run's decoded blocks in trace order.
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  virtual const std::string& name() const = 0;
  virtual std::uint64_t page_size() const = 0;

  /// Next block of the current pass, or nullptr at the end. The returned
  /// view is valid until the following next()/rewind().
  virtual const DecodedBlock* next() = 0;

  /// Restarts the block sequence from the beginning (warmup passes).
  virtual void rewind() = 0;
};

/// Decode-once source over a materialized trace. Construction decodes every
/// access (page shift + hash mixer) into cached arrays — striped across
/// `decode_workers` threads when > 1, with each worker writing a disjoint
/// range, so the arrays are byte-identical for any worker count. next()
/// serves successive `block_accesses`-sized windows of the cache.
class TraceBlockSource final : public BlockSource {
 public:
  /// `block_accesses` 0 serves the whole trace as a single block.
  TraceBlockSource(const Trace& trace, std::uint64_t page_size,
                   std::size_t block_accesses = 0, unsigned decode_workers = 1);

  const std::string& name() const override { return name_; }
  std::uint64_t page_size() const override { return page_size_; }
  const DecodedBlock* next() override;
  void rewind() override { cursor_ = 0; }

  std::size_t total_accesses() const { return pages_.size(); }

 private:
  std::string name_;
  std::uint64_t page_size_;
  std::size_t block_accesses_;
  std::vector<PageId> pages_;
  std::vector<AccessType> types_;
  std::vector<std::uint64_t> hashes_;
  std::size_t cursor_ = 0;
  DecodedBlock view_;
};

/// Streaming source over the chunked stream_io format: O(block) memory.
///
/// With `readahead` on, a producer thread decodes the next block into the
/// idle half of a double buffer while the consumer replays the other half;
/// next() blocks only when the producer has not finished yet. With it off,
/// next() decodes synchronously — same block sequence, no second thread
/// (the serial reference mode the determinism smokes compare against).
class StreamBlockSource final : public BlockSource {
 public:
  /// `in` must outlive the source; rewind() requires it to be seekable.
  StreamBlockSource(std::istream& in, std::uint64_t page_size,
                    std::size_t block_accesses = std::size_t{1} << 16,
                    bool readahead = true);
  ~StreamBlockSource() override;

  const std::string& name() const override { return reader_.name(); }
  std::uint64_t page_size() const override { return page_size_; }
  const DecodedBlock* next() override;
  void rewind() override;

 private:
  /// One half of the double buffer.
  struct Buffer {
    std::vector<PageId> pages;
    std::vector<AccessType> types;
    std::vector<std::uint64_t> hashes;
    std::size_t size = 0;
    bool filled = false;  ///< Producer wrote it; consumer has not taken it.
    bool eof = false;     ///< No records behind this buffer's contents.
  };

  /// Decodes up to one block from the reader into `buf` (caller owns
  /// synchronization). Sets buf.eof when the stream is exhausted.
  void fill(Buffer& buf);
  void start_producer();
  void stop_producer();
  void producer_loop();

  StreamTraceReader reader_;
  std::uint64_t page_size_;
  std::size_t block_accesses_;
  bool readahead_;

  Buffer buffers_[2];
  std::size_t consume_index_ = 0;  ///< Next buffer the consumer takes.
  std::size_t produce_index_ = 0;  ///< Next buffer the producer fills.
  int holding_ = -1;               ///< Buffer backing the live view, or -1.
  bool finished_ = false;          ///< All records behind delivered blocks.
  DecodedBlock view_;

  std::thread producer_;
  std::mutex mutex_;
  std::condition_variable filled_cv_;  ///< Signals consumer: buffer ready.
  std::condition_variable free_cv_;    ///< Signals producer: buffer free.
  bool stop_ = false;
  std::exception_ptr producer_error_;
};

}  // namespace hymem::trace
