#include "trace/stream_io.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/check.hpp"

namespace hymem::trace {

namespace {

constexpr std::array<char, 4> kMagic = {'H', 'Y', 'T', 'S'};

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T take(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("hymem stream trace: truncated input");
  return value;
}

}  // namespace

StreamTraceWriter::StreamTraceWriter(std::ostream& out, std::string name,
                                     std::size_t chunk_records)
    : out_(out), chunk_records_(chunk_records) {
  HYMEM_CHECK_MSG(chunk_records > 0, "chunk size must be positive");
  out_.write(kMagic.data(), kMagic.size());
  put<std::uint32_t>(out_, kStreamFormatVersion);
  put<std::uint32_t>(out_, static_cast<std::uint32_t>(name.size()));
  out_.write(name.data(), static_cast<std::streamsize>(name.size()));
  pending_.reserve(chunk_records);
}

StreamTraceWriter::~StreamTraceWriter() {
  if (!finished_) finish();
}

void StreamTraceWriter::flush_chunk() {
  if (pending_.empty()) return;
  put<std::uint32_t>(out_, static_cast<std::uint32_t>(pending_.size()));
  for (const auto& a : pending_) {
    put<std::uint64_t>(out_, a.addr);
    put<std::uint8_t>(out_, static_cast<std::uint8_t>(a.type));
    put<std::uint8_t>(out_, a.core);
  }
  pending_.clear();
}

void StreamTraceWriter::append(const MemAccess& access) {
  HYMEM_CHECK_MSG(!finished_, "append after finish");
  pending_.push_back(access);
  ++written_;
  if (pending_.size() >= chunk_records_) flush_chunk();
}

void StreamTraceWriter::finish() {
  if (finished_) return;
  flush_chunk();
  put<std::uint32_t>(out_, 0);  // terminator
  finished_ = true;
}

StreamTraceReader::StreamTraceReader(std::istream& in) : in_(in) {
  std::array<char, 4> magic{};
  in_.read(magic.data(), magic.size());
  if (!in_ || magic != kMagic) {
    throw std::runtime_error("hymem stream trace: bad magic");
  }
  const auto version = take<std::uint32_t>(in_);
  if (version != kStreamFormatVersion) {
    throw std::runtime_error("hymem stream trace: unsupported version " +
                             std::to_string(version));
  }
  const auto name_len = take<std::uint32_t>(in_);
  name_.resize(name_len);
  in_.read(name_.data(), name_len);
  if (!in_) throw std::runtime_error("hymem stream trace: truncated name");
}

bool StreamTraceReader::load_chunk() {
  const auto count = take<std::uint32_t>(in_);
  if (count == 0) {
    done_ = true;
    return false;
  }
  chunk_.clear();
  chunk_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto addr = take<std::uint64_t>(in_);
    const auto type = take<std::uint8_t>(in_);
    const auto core = take<std::uint8_t>(in_);
    if (type > 1) throw std::runtime_error("hymem stream trace: bad type");
    chunk_.push_back({addr, static_cast<AccessType>(type), core});
  }
  cursor_ = 0;
  return true;
}

std::optional<MemAccess> StreamTraceReader::next() {
  if (done_) return std::nullopt;
  if (cursor_ >= chunk_.size() && !load_chunk()) return std::nullopt;
  ++read_;
  return chunk_[cursor_++];
}

}  // namespace hymem::trace
