#include "trace/stream_io.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/check.hpp"

namespace hymem::trace {

namespace {

constexpr std::array<char, 4> kMagic = {'H', 'Y', 'T', 'S'};

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

}  // namespace

StreamTraceWriter::StreamTraceWriter(std::ostream& out, std::string name,
                                     std::size_t chunk_records)
    : out_(out), chunk_records_(chunk_records) {
  HYMEM_CHECK_MSG(chunk_records > 0, "chunk size must be positive");
  out_.write(kMagic.data(), kMagic.size());
  put<std::uint32_t>(out_, kStreamFormatVersion);
  put<std::uint32_t>(out_, static_cast<std::uint32_t>(name.size()));
  out_.write(name.data(), static_cast<std::streamsize>(name.size()));
  pending_.reserve(chunk_records);
}

StreamTraceWriter::~StreamTraceWriter() {
  if (!finished_) finish();
}

void StreamTraceWriter::flush_chunk() {
  if (pending_.empty()) return;
  put<std::uint32_t>(out_, static_cast<std::uint32_t>(pending_.size()));
  for (const auto& a : pending_) {
    put<std::uint64_t>(out_, a.addr);
    put<std::uint8_t>(out_, static_cast<std::uint8_t>(a.type));
    put<std::uint8_t>(out_, a.core);
  }
  pending_.clear();
}

void StreamTraceWriter::append(const MemAccess& access) {
  HYMEM_CHECK_MSG(!finished_, "append after finish");
  pending_.push_back(access);
  ++written_;
  if (pending_.size() >= chunk_records_) flush_chunk();
}

void StreamTraceWriter::finish() {
  if (finished_) return;
  flush_chunk();
  put<std::uint32_t>(out_, 0);  // terminator
  finished_ = true;
}

template <typename T>
T StreamTraceReader::take(const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in_.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in_) {
    throw std::runtime_error("hymem stream trace: truncated " +
                             std::string(what) + " at byte " +
                             std::to_string(offset_));
  }
  offset_ += sizeof(value);
  return value;
}

StreamTraceReader::StreamTraceReader(std::istream& in) : in_(in) {
  std::array<char, 4> magic{};
  in_.read(magic.data(), magic.size());
  if (!in_ || magic != kMagic) {
    throw std::runtime_error("hymem stream trace: bad magic at byte 0");
  }
  offset_ += magic.size();
  const auto version = take<std::uint32_t>("version");
  if (version != kStreamFormatVersion) {
    throw std::runtime_error("hymem stream trace: unsupported version " +
                             std::to_string(version) + " at byte 4");
  }
  const auto name_len = take<std::uint32_t>("name length");
  name_.resize(name_len);
  in_.read(name_.data(), name_len);
  if (!in_) {
    throw std::runtime_error("hymem stream trace: truncated name at byte " +
                             std::to_string(offset_));
  }
  offset_ += name_len;
  data_offset_ = offset_;
}

bool StreamTraceReader::load_chunk() {
  const std::uint64_t header_offset = offset_;
  const auto count = take<std::uint32_t>("chunk header");
  if (count == 0) {
    done_ = true;
    return false;
  }
  chunk_.clear();
  // Record size is fixed (u64 + 2 * u8), so a header's claim is checkable
  // directly against a seekable stream: a corrupt count fails here with the
  // header's own offset rather than a truncation deep inside the chunk.
  constexpr std::uint64_t kRecordBytes = sizeof(std::uint64_t) + 2;
  const auto chunk_error = [&](const std::string& what) {
    return std::runtime_error("hymem stream trace: " + what + " (chunk of " +
                              std::to_string(count) +
                              " records starting at byte " +
                              std::to_string(header_offset) + ")");
  };
  const auto here = in_.tellg();
  if (here != std::istream::pos_type(-1)) {
    in_.seekg(0, std::ios::end);
    const auto end = in_.tellg();
    in_.seekg(here);
    if (end != std::istream::pos_type(-1) &&
        static_cast<std::uint64_t>(end - here) < count * kRecordBytes) {
      throw chunk_error("chunk header claims " +
                        std::to_string(count * kRecordBytes) +
                        " record bytes but only " +
                        std::to_string(static_cast<std::uint64_t>(end - here)) +
                        " remain");
    }
  }
  chunk_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto addr = take<std::uint64_t>("record address");
    const auto type = take<std::uint8_t>("record type");
    const auto core = take<std::uint8_t>("record core");
    if (type > 1) {
      throw chunk_error("bad access type " + std::to_string(type) +
                        " at byte " + std::to_string(offset_ - 2));
    }
    chunk_.push_back({addr, static_cast<AccessType>(type), core});
  }
  cursor_ = 0;
  return true;
}

std::optional<MemAccess> StreamTraceReader::next() {
  if (done_) return std::nullopt;
  if (cursor_ >= chunk_.size() && !load_chunk()) return std::nullopt;
  ++read_;
  return chunk_[cursor_++];
}

void StreamTraceReader::rewind() {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(data_offset_));
  if (!in_) {
    throw std::runtime_error(
        "hymem stream trace: rewind failed (stream not seekable)");
  }
  offset_ = data_offset_;
  chunk_.clear();
  cursor_ = 0;
  read_ = 0;
  done_ = false;
}

}  // namespace hymem::trace
