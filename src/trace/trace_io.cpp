#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hymem::trace {

namespace {

constexpr std::array<char, 4> kMagic = {'H', 'Y', 'T', 'R'};

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
T take(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) throw std::runtime_error("hymem trace: truncated binary trace");
  return value;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  put<std::uint32_t>(out, kTraceFormatVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(trace.name().size()));
  out.write(trace.name().data(),
            static_cast<std::streamsize>(trace.name().size()));
  put<std::uint64_t>(out, trace.size());
  for (const auto& a : trace) {
    put<std::uint64_t>(out, a.addr);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(a.type));
    put<std::uint8_t>(out, a.core);
  }
}

Trace read_binary(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("hymem trace: bad magic");
  }
  const auto version = take<std::uint32_t>(in);
  if (version != kTraceFormatVersion) {
    throw std::runtime_error("hymem trace: unsupported version " +
                             std::to_string(version));
  }
  const auto name_len = take<std::uint32_t>(in);
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) throw std::runtime_error("hymem trace: truncated name");
  const auto count = take<std::uint64_t>(in);
  Trace trace(std::move(name));
  trace.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto addr = take<std::uint64_t>(in);
    const auto type = take<std::uint8_t>(in);
    const auto core = take<std::uint8_t>(in);
    if (type > 1) throw std::runtime_error("hymem trace: bad access type");
    trace.append(addr, static_cast<AccessType>(type), core);
  }
  return trace;
}

void write_text(const Trace& trace, std::ostream& out) {
  out << "# hymem trace: " << trace.name() << '\n';
  for (const auto& a : trace) {
    out << (a.type == AccessType::kRead ? 'R' : 'W') << " 0x" << std::hex
        << a.addr << std::dec << ' ' << static_cast<int>(a.core) << '\n';
  }
}

Trace read_text(std::istream& in, std::string name) {
  Trace trace(std::move(name));
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char kind = 0;
    std::string addr_str;
    int core = 0;
    ls >> kind >> addr_str;
    if (!(ls >> core)) core = 0;
    if (!ls && ls.fail() && addr_str.empty()) {
      throw std::runtime_error("hymem trace: parse error at line " +
                               std::to_string(line_no));
    }
    AccessType type;
    if (kind == 'R' || kind == 'r') {
      type = AccessType::kRead;
    } else if (kind == 'W' || kind == 'w') {
      type = AccessType::kWrite;
    } else {
      throw std::runtime_error("hymem trace: bad access kind at line " +
                               std::to_string(line_no));
    }
    const Addr addr = std::stoull(addr_str, nullptr, 0);
    trace.append(addr, type, static_cast<std::uint8_t>(core));
  }
  return trace;
}

void save(const Trace& trace, const std::string& path) {
  const bool binary = path.size() >= 4 && path.ends_with(".trc");
  std::ofstream out(path, binary ? std::ios::binary : std::ios::out);
  if (!out) throw std::runtime_error("hymem trace: cannot open " + path);
  if (binary) {
    write_binary(trace, out);
  } else {
    write_text(trace, out);
  }
}

Trace load(const std::string& path) {
  const bool binary = path.size() >= 4 && path.ends_with(".trc");
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw std::runtime_error("hymem trace: cannot open " + path);
  return binary ? read_binary(in) : read_text(in, path);
}

}  // namespace hymem::trace
