#include "trace/trace.hpp"

namespace hymem::trace {

std::uint64_t Trace::read_count() const {
  std::uint64_t n = 0;
  for (const auto& a : accesses_) n += (a.type == AccessType::kRead);
  return n;
}

std::uint64_t Trace::write_count() const {
  return size() - read_count();
}

}  // namespace hymem::trace
