// Workload characterization — regenerates the paper's Table III columns
// (working-set size, read/write counts and percentages) plus the per-page
// popularity data the migration analysis leans on.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "util/histogram.hpp"

namespace hymem::trace {

/// Per-page access counters.
struct PageProfile {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  std::uint64_t total() const { return reads + writes; }
  /// Fraction of accesses that are writes (0 when untouched).
  double write_ratio() const {
    return total() ? static_cast<double>(writes) / static_cast<double>(total()) : 0.0;
  }
};

/// Summary statistics of one trace at a given page size.
struct TraceStats {
  std::uint64_t page_size = 0;
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t distinct_pages = 0;  ///< Footprint in pages.

  /// Working-set size in KB: distinct_pages * page_size / 1024 — the paper's
  /// Table III "Working Set Size (KB)" column.
  std::uint64_t working_set_kb() const;

  double read_fraction() const {
    return accesses ? static_cast<double>(reads) / static_cast<double>(accesses) : 0.0;
  }
  double write_fraction() const {
    return accesses ? static_cast<double>(writes) / static_cast<double>(accesses) : 0.0;
  }

  /// Distribution of per-page access counts (popularity skew).
  Log2Histogram accesses_per_page;
  /// Pages whose accesses are >= 50% writes.
  std::uint64_t write_dominant_pages = 0;
};

/// Full characterization: summary stats plus the per-page table.
class TraceCharacterizer {
 public:
  explicit TraceCharacterizer(std::uint64_t page_size);

  /// Streams one access into the counters.
  void observe(const MemAccess& access);
  /// Streams a whole trace.
  void observe(const Trace& trace);

  /// Finalizes and returns the summary.
  TraceStats stats() const;

  /// Per-page profiles (page -> counters).
  const std::unordered_map<PageId, PageProfile>& pages() const { return pages_; }

  /// Pages sorted by total access count, descending (popularity ranking).
  std::vector<std::pair<PageId, PageProfile>> ranked_pages() const;

 private:
  std::uint64_t page_size_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::unordered_map<PageId, PageProfile> pages_;
};

/// One-shot convenience.
TraceStats characterize(const Trace& trace, std::uint64_t page_size);

}  // namespace hymem::trace
