#include "trace/reuse_distance.hpp"

#include <limits>

#include "util/check.hpp"

namespace hymem::trace {

namespace {
constexpr std::uint64_t kCold = std::numeric_limits<std::uint64_t>::max();
}

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(std::uint64_t page_size,
                                             std::size_t capacity_hint)
    : page_size_(page_size) {
  HYMEM_CHECK(page_size > 0);
  if (capacity_hint) {
    bit_.reserve(capacity_hint + 1);
    distances_.reserve(capacity_hint);
  }
}

void ReuseDistanceAnalyzer::bit_add(std::size_t pos, std::int64_t delta) {
  for (std::size_t i = pos + 1; i < bit_.size(); i += i & (~i + 1)) {
    bit_[i] += delta;
  }
}

std::int64_t ReuseDistanceAnalyzer::bit_sum(std::size_t pos) const {
  std::int64_t s = 0;
  for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) s += bit_[i];
  return s;
}

std::uint64_t ReuseDistanceAnalyzer::observe(Addr addr) {
  const PageId page = page_of(addr, page_size_);
  const std::uint64_t slot = time_++;
  // Grow the Fenwick tree (1-indexed internally). A plain resize would
  // corrupt the tree (new nodes must hold range sums), so grow by doubling
  // and rebuild from the live marks — amortized O(log n) per access.
  if (time_ + 1 > bit_.size()) {
    std::size_t cap = bit_.size() < 64 ? 64 : (bit_.size() - 1) * 2;
    while (cap < time_ + 1) cap *= 2;
    bit_.assign(cap + 1, 0);
    for (const auto& [p, s] : last_slot_) {
      bit_add(static_cast<std::size_t>(s), +1);
    }
  }
  std::uint64_t distance = kCold;
  const auto it = last_slot_.find(page);
  if (it != last_slot_.end()) {
    const std::uint64_t prev = it->second;
    // Marked slots strictly after prev = distinct pages touched since.
    const std::int64_t newer =
        bit_sum(static_cast<std::size_t>(slot == 0 ? 0 : slot - 1)) -
        bit_sum(static_cast<std::size_t>(prev));
    distance = static_cast<std::uint64_t>(newer);
    bit_add(static_cast<std::size_t>(prev), -1);
    hist_.add(distance);
  } else {
    ++cold_;
  }
  bit_add(static_cast<std::size_t>(slot), +1);
  last_slot_[page] = slot;
  distances_.push_back(distance);
  return distance;
}

void ReuseDistanceAnalyzer::observe(const Trace& trace) {
  for (const auto& a : trace) observe(a.addr);
}

double ReuseDistanceAnalyzer::lru_hit_ratio(std::uint64_t capacity_pages) const {
  if (distances_.empty()) return 0.0;
  std::uint64_t hits = 0;
  for (std::uint64_t d : distances_) {
    if (d != kCold && d < capacity_pages) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(distances_.size());
}

std::vector<double> ReuseDistanceAnalyzer::miss_ratio_curve(
    const std::vector<std::uint64_t>& capacities) const {
  std::vector<double> curve;
  curve.reserve(capacities.size());
  for (std::uint64_t c : capacities) curve.push_back(1.0 - lru_hit_ratio(c));
  return curve;
}

}  // namespace hymem::trace
