#include "trace/reuse_distance.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace hymem::trace {

namespace {
constexpr std::uint64_t kCold = std::numeric_limits<std::uint64_t>::max();
}

std::uint64_t ReuseProfile::reads_below(std::uint64_t x) const {
  if (x == 0 || distance.empty()) return 0;
  // Largest index with distance[i] < x, i.e. distance[i] <= x - 1.
  const auto it = std::upper_bound(distance.begin(), distance.end(), x - 1);
  if (it == distance.begin()) return 0;
  return reads_cum[static_cast<std::size_t>(it - distance.begin()) - 1];
}

std::uint64_t ReuseProfile::writes_below(std::uint64_t x) const {
  if (x == 0 || distance.empty()) return 0;
  const auto it = std::upper_bound(distance.begin(), distance.end(), x - 1);
  if (it == distance.begin()) return 0;
  return writes_cum[static_cast<std::size_t>(it - distance.begin()) - 1];
}

double ReuseProfile::frac_below(std::uint64_t x) const {
  if (accesses == 0) return 0.0;
  return static_cast<double>(below(x)) / static_cast<double>(accesses);
}

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(std::uint64_t page_size,
                                             std::size_t capacity_hint)
    : page_size_(page_size) {
  HYMEM_CHECK(page_size > 0);
  if (capacity_hint) {
    bit_.reserve(capacity_hint + 1);
    distances_.reserve(capacity_hint);
  }
}

void ReuseDistanceAnalyzer::bit_add(std::size_t pos, std::int64_t delta) {
  for (std::size_t i = pos + 1; i < bit_.size(); i += i & (~i + 1)) {
    bit_[i] += delta;
  }
}

std::int64_t ReuseDistanceAnalyzer::bit_sum(std::size_t pos) const {
  std::int64_t s = 0;
  for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) s += bit_[i];
  return s;
}

std::uint64_t ReuseDistanceAnalyzer::observe(Addr addr, AccessType type) {
  const PageId page = page_of(addr, page_size_);
  const std::uint64_t slot = time_++;
  // Grow the Fenwick tree (1-indexed internally). A plain resize would
  // corrupt the tree (new nodes must hold range sums), so grow by doubling
  // and rebuild from the live marks — amortized O(log n) per access.
  if (time_ + 1 > bit_.size()) {
    std::size_t cap = bit_.size() < 64 ? 64 : (bit_.size() - 1) * 2;
    while (cap < time_ + 1) cap *= 2;
    bit_.assign(cap + 1, 0);
    for (const auto& [p, s] : last_slot_) {
      bit_add(static_cast<std::size_t>(s), +1);
    }
  }
  std::uint64_t distance = kCold;
  const auto it = last_slot_.find(page);
  if (it != last_slot_.end()) {
    const std::uint64_t prev = it->second;
    // Marked slots strictly after prev = distinct pages touched since.
    const std::int64_t newer =
        bit_sum(static_cast<std::size_t>(slot == 0 ? 0 : slot - 1)) -
        bit_sum(static_cast<std::size_t>(prev));
    distance = static_cast<std::uint64_t>(newer);
    bit_add(static_cast<std::size_t>(prev), -1);
    // Finite distances only: the log2 histogram grows to cover any value,
    // and the exact CDF records it per type. Cold accesses never get here.
    hist_.add(distance);
    ++finite_[distance][type == AccessType::kRead ? 0 : 1];
  } else {
    if (type == AccessType::kRead) {
      ++cold_reads_;
    } else {
      ++cold_writes_;
    }
  }
  bit_add(static_cast<std::size_t>(slot), +1);
  last_slot_[page] = slot;
  distances_.push_back(distance);
  return distance;
}

void ReuseDistanceAnalyzer::observe(const Trace& trace) {
  for (const auto& a : trace) observe(a.addr, a.type);
}

void ReuseDistanceAnalyzer::reset_stats() {
  cold_reads_ = 0;
  cold_writes_ = 0;
  hist_ = Log2Histogram{};
  distances_.clear();
  finite_.clear();
  // last_slot_, bit_ and time_ survive: they ARE the LRU stack state.
}

ReuseProfile ReuseDistanceAnalyzer::profile() const {
  ReuseProfile p;
  p.accesses = distances_.size();
  p.cold_reads = cold_reads_;
  p.cold_writes = cold_writes_;
  p.distinct_pages = last_slot_.size();
  p.distance.reserve(finite_.size());
  for (const auto& kv : finite_) p.distance.push_back(kv.first);
  std::sort(p.distance.begin(), p.distance.end());
  p.reads_cum.reserve(p.distance.size());
  p.writes_cum.reserve(p.distance.size());
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  for (const std::uint64_t d : p.distance) {
    const auto& counts = finite_.at(d);
    reads += counts[0];
    writes += counts[1];
    p.reads_cum.push_back(reads);
    p.writes_cum.push_back(writes);
  }
  return p;
}

double ReuseDistanceAnalyzer::lru_hit_ratio(std::uint64_t capacity_pages) const {
  if (distances_.empty()) return 0.0;
  std::uint64_t hits = 0;
  for (std::uint64_t d : distances_) {
    if (d != kCold && d < capacity_pages) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(distances_.size());
}

std::vector<double> ReuseDistanceAnalyzer::miss_ratio_curve(
    const std::vector<std::uint64_t>& capacities) const {
  std::vector<double> curve;
  curve.reserve(capacities.size());
  for (std::uint64_t c : capacities) curve.push_back(1.0 - lru_hit_ratio(c));
  return curve;
}

}  // namespace hymem::trace
