#include "trace/phase_detect.hpp"

#include <bit>

#include "util/check.hpp"
#include "util/random.hpp"

namespace hymem::trace {

PhaseDetector::PhaseDetector(std::uint64_t page_size,
                             const PhaseDetectorConfig& config)
    : page_size_(page_size), config_(config) {
  HYMEM_CHECK(page_size > 0);
  HYMEM_CHECK_MSG(config.window_accesses > 0, "window must be positive");
  HYMEM_CHECK_MSG(config.signature_bits >= 64 &&
                      config.signature_bits % 64 == 0,
                  "signature width must be a positive multiple of 64");
  HYMEM_CHECK(config.similarity_threshold >= 0.0 &&
              config.similarity_threshold <= 1.0);
  current_.assign(config.signature_bits / 64, 0);
  previous_.assign(config.signature_bits / 64, 0);
}

double PhaseDetector::jaccard(const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b) {
  HYMEM_CHECK(a.size() == b.size());
  std::uint64_t inter = 0, uni = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    inter += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    uni += static_cast<std::uint64_t>(std::popcount(a[i] | b[i]));
  }
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

void PhaseDetector::close_window() {
  if (have_previous_) {
    last_similarity_ = jaccard(current_, previous_);
    if (last_similarity_ < config_.similarity_threshold) {
      boundaries_.push_back(accesses_);
    }
  }
  previous_ = current_;
  have_previous_ = true;
  std::fill(current_.begin(), current_.end(), 0);
  in_window_ = 0;
}

void PhaseDetector::observe(Addr addr) {
  const PageId page = page_of(addr, page_size_);
  std::uint64_t h = page;
  const std::uint64_t bit = splitmix64(h) % (current_.size() * 64);
  current_[bit / 64] |= 1ULL << (bit % 64);
  ++accesses_;
  if (++in_window_ >= config_.window_accesses) close_window();
}

void PhaseDetector::observe(const Trace& trace) {
  for (const auto& a : trace) observe(a.addr);
}

}  // namespace hymem::trace
