// DRAM-as-cache: the "first group" of related work in the paper's Section
// III — DRAM acts as a buffer in front of NVM and every NVM hit promotes the
// page immediately (Qureshi-style, exclusive variant). This is the
// aggressive-migration endpoint against which the proposed scheme's
// threshold filtering is contrasted.
#pragma once

#include "policy/hybrid_policy.hpp"
#include "policy/lru.hpp"

namespace hymem::policy {

/// Exclusive DRAM cache over NVM with promote-on-first-touch.
class DramCachePolicy final : public HybridPolicy {
 public:
  explicit DramCachePolicy(os::Vmm& vmm);

  std::string_view name() const override { return "dram-cache"; }
  Nanoseconds on_access(PageId page, AccessType type) override;
  void prefetch(PageId page) const override {
    vmm_.prefetch_translation(page);
    dram_.prefetch(page);
    nvm_.prefetch(page);
  }

 private:
  /// Frees one DRAM frame by demoting the DRAM LRU victim to NVM (evicting
  /// the NVM LRU victim to disk first if needed). Returns demotion latency.
  Nanoseconds make_dram_room();

  LruPolicy dram_;
  LruPolicy nvm_;
};

}  // namespace hymem::policy
