// Single-module baselines: a DRAM-only or NVM-only main memory managed by
// any ReplacementPolicy. These are the normalization anchors of every figure
// (power is normalized to DRAM-only, NVM write counts to NVM-only).
#pragma once

#include <memory>

#include "policy/hybrid_policy.hpp"
#include "policy/replacement.hpp"

namespace hymem::policy {

/// Runs the whole main memory as one module; the other module must be
/// configured with zero frames.
class SingleTierPolicy final : public HybridPolicy {
 public:
  SingleTierPolicy(os::Vmm& vmm, Tier tier,
                   std::unique_ptr<ReplacementPolicy> replacement);

  std::string_view name() const override { return name_; }
  Nanoseconds on_access(PageId page, AccessType type) override;
  void prefetch(PageId page) const override {
    vmm_.prefetch_translation(page);
    replacement_->prefetch(page);
  }

  const ReplacementPolicy& replacement() const { return *replacement_; }

 private:
  Tier tier_;
  std::unique_ptr<ReplacementPolicy> replacement_;
  std::string name_;
};

}  // namespace hymem::policy
