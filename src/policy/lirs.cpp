#include "policy/lirs.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::policy {

LirsPolicy::LirsPolicy(std::size_t capacity)
    : capacity_(capacity),
      lir_target_(capacity - std::max<std::size_t>(1, capacity / 16)) {
  HYMEM_CHECK_MSG(capacity >= 2, "LIRS needs capacity >= 2");
  HYMEM_CHECK(lir_target_ >= 1);
}

bool LirsPolicy::contains(PageId page) const {
  const auto it = index_.find(page);
  return it != index_.end() && it->second.state != State::kHirNonResident;
}

void LirsPolicy::stack_push_front(PageId page, State state) {
  auto& idx = index_[page];
  stack_.push_front(Entry{page, state});
  idx.stack_it = stack_.begin();
  idx.in_stack = true;
  idx.state = state;
}

void LirsPolicy::queue_push_back(PageId page) {
  auto& idx = index_[page];
  queue_.push_back(page);
  idx.queue_it = std::prev(queue_.end());
  idx.in_queue = true;
}

void LirsPolicy::stack_remove(PageId page) {
  auto& idx = index_.at(page);
  if (!idx.in_stack) return;
  stack_.erase(idx.stack_it);
  idx.in_stack = false;
}

void LirsPolicy::queue_remove(PageId page) {
  auto& idx = index_.at(page);
  if (!idx.in_queue) return;
  queue_.erase(idx.queue_it);
  idx.in_queue = false;
}

void LirsPolicy::prune() {
  while (!stack_.empty()) {
    const Entry& bottom = stack_.back();
    auto& idx = index_.at(bottom.page);
    if (idx.state == State::kLir) return;
    const PageId page = bottom.page;
    stack_.pop_back();
    idx.in_stack = false;
    if (idx.state == State::kHirNonResident) {
      --nonresident_count_;
      index_.erase(page);
    }
    // Resident HIR pages stay in Q; their stack history simply expires.
  }
}

void LirsPolicy::demote_bottom_lir() {
  HYMEM_CHECK_MSG(!stack_.empty(), "no LIR page to demote");
  const PageId page = stack_.back().page;
  auto& idx = index_.at(page);
  HYMEM_CHECK_MSG(idx.state == State::kLir, "stack bottom must be LIR");
  stack_.pop_back();
  idx.in_stack = false;
  idx.state = State::kHirResident;
  --lir_count_;
  ++hir_resident_count_;
  queue_push_back(page);
  prune();
}

void LirsPolicy::enforce_nonresident_cap() {
  const std::size_t cap = 2 * capacity_;
  if (nonresident_count_ <= cap) return;
  for (auto it = std::prev(stack_.end());
       nonresident_count_ > cap && it != stack_.begin();) {
    auto current = it--;
    auto& idx = index_.at(current->page);
    if (idx.state == State::kHirNonResident) {
      const PageId page = current->page;
      stack_.erase(current);
      --nonresident_count_;
      index_.erase(page);
    }
  }
}

void LirsPolicy::on_hit(PageId page, AccessType /*type*/) {
  const auto it = index_.find(page);
  HYMEM_CHECK_MSG(it != index_.end() && it->second.state != State::kHirNonResident,
                  "hit on untracked page");
  Index& idx = it->second;
  if (idx.state == State::kLir) {
    stack_remove(page);
    stack_push_front(page, State::kLir);
    prune();
    return;
  }
  // Resident HIR.
  if (idx.in_stack) {
    // Small inter-reference recency proven: swap roles with the LIR bottom.
    stack_remove(page);
    queue_remove(page);
    idx.state = State::kLir;
    --hir_resident_count_;
    ++lir_count_;
    stack_push_front(page, State::kLir);
    if (lir_count_ > lir_target_) demote_bottom_lir();
    prune();
  } else {
    // Recency too large to be in S: stay HIR, refresh both recencies.
    stack_push_front(page, State::kHirResident);
    queue_remove(page);
    queue_push_back(page);
  }
}

void LirsPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full LIRS");
  const auto ghost = index_.find(page);
  if (ghost != index_.end()) {
    // Re-fault within the stack: the page has small reuse distance -> LIR.
    Index& idx = ghost->second;
    HYMEM_CHECK(idx.state == State::kHirNonResident);
    stack_remove(page);
    --nonresident_count_;
    idx.state = State::kLir;
    ++lir_count_;
    stack_push_front(page, State::kLir);
    if (lir_count_ > lir_target_) demote_bottom_lir();
    prune();
    return;
  }
  if (lir_count_ < lir_target_) {
    // Warmup: fill the LIR set first.
    ++lir_count_;
    stack_push_front(page, State::kLir);
    return;
  }
  ++hir_resident_count_;
  stack_push_front(page, State::kHirResident);
  queue_push_back(page);
  enforce_nonresident_cap();
}

std::optional<PageId> LirsPolicy::select_victim() {
  if (size() == 0) return std::nullopt;
  if (!queue_.empty()) return queue_.front();
  // No resident HIR pages: the coldest LIR page (stack bottom) goes.
  HYMEM_CHECK(!stack_.empty());
  return stack_.back().page;
}

void LirsPolicy::erase(PageId page) {
  const auto it = index_.find(page);
  HYMEM_CHECK_MSG(it != index_.end() && it->second.state != State::kHirNonResident,
                  "erase of untracked page");
  Index& idx = it->second;
  if (idx.state == State::kLir) {
    stack_remove(page);
    --lir_count_;
    index_.erase(page);
    prune();
    return;
  }
  // Resident HIR: keep the stack history as a non-resident ghost.
  queue_remove(page);
  --hir_resident_count_;
  if (idx.in_stack) {
    idx.state = State::kHirNonResident;
    ++nonresident_count_;
    enforce_nonresident_cap();
  } else {
    index_.erase(page);
  }
}

}  // namespace hymem::policy
