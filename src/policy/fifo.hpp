// First-In-First-Out replacement: insertion order, hits ignored. A lower
// bound for recency-aware policies in the baseline sweeps.
#pragma once

#include "policy/replacement.hpp"
#include "util/flat_page_map.hpp"
#include "util/intrusive_list.hpp"
#include "util/slab_pool.hpp"

namespace hymem::policy {

/// FIFO queue of pages (slab-allocated nodes, flat-map index; see LruPolicy).
class FifoPolicy final : public ReplacementPolicy {
 public:
  explicit FifoPolicy(std::size_t capacity);

  std::string_view name() const override { return "fifo"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return index_.size(); }
  bool contains(PageId page) const override { return index_.contains(page); }

  void prefetch(PageId page) const override { index_.prefetch(page); }
  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

 private:
  struct Node {
    PageId page;
    ListHook hook;
  };

  std::size_t capacity_;
  IntrusiveList<Node, &Node::hook> list_;  // front = newest
  util::SlabPool<Node> pool_;
  util::FlatPageMap<Node*> index_;
};

}  // namespace hymem::policy
