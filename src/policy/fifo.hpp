// First-In-First-Out replacement: insertion order, hits ignored. A lower
// bound for recency-aware policies in the baseline sweeps.
#pragma once

#include <memory>
#include <unordered_map>

#include "policy/replacement.hpp"
#include "util/intrusive_list.hpp"

namespace hymem::policy {

/// FIFO queue of pages.
class FifoPolicy final : public ReplacementPolicy {
 public:
  explicit FifoPolicy(std::size_t capacity);

  std::string_view name() const override { return "fifo"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return nodes_.size(); }
  bool contains(PageId page) const override { return nodes_.count(page) > 0; }

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

 private:
  struct Node {
    PageId page;
    ListHook hook;
  };

  std::size_t capacity_;
  IntrusiveList<Node, &Node::hook> list_;  // front = newest
  std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
};

}  // namespace hymem::policy
