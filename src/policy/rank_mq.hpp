// Rank-based Multi-Queue hybrid policy — an OS-level rendition of RaPP
// (Ramos, Gorbatov & Bianchini, "Page placement in hybrid memory systems",
// ICS'11), one of the related works the paper cites as requiring hardware
// support (Section III). Pages are ranked by access frequency in
// Zhou-style multi-queues (level = log2(access count), with expiration
// demoting stale pages); pages ranked above a promotion level migrate to
// DRAM, displacing lower-ranked DRAM pages.
//
// Against the paper's scheme this baseline shows what frequency ranking
// buys (and costs) relative to windowed recency counters.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>

#include "policy/hybrid_policy.hpp"
#include "util/intrusive_list.hpp"

namespace hymem::policy {

/// RaPP-style rank-and-migrate hybrid.
class RankMqPolicy final : public HybridPolicy {
 public:
  /// `promote_level`: NVM pages ranked at or above this level migrate to
  /// DRAM. `lifetime`: accesses without a touch before a page's rank decays.
  RankMqPolicy(os::Vmm& vmm, unsigned promote_level = 3,
               std::uint64_t lifetime = 4096);

  std::string_view name() const override { return "rank-mq"; }
  Nanoseconds on_access(PageId page, AccessType type) override;

  static constexpr unsigned kLevels = 8;

  /// Rank level for an access count: floor(log2(count)), clamped.
  static unsigned level_of(std::uint64_t count);

  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t demotions() const { return demotions_; }
  std::uint64_t expirations() const { return expirations_; }

 private:
  struct Node {
    PageId page = kInvalidPage;
    ListHook hook;
    std::uint64_t count = 0;
    std::uint64_t last_access = 0;
    unsigned level = 0;
    Tier tier = Tier::kNvm;
  };
  using Queue = IntrusiveList<Node, &Node::hook>;

  Queue& queue(Tier tier, unsigned level) {
    return queues_[tier == Tier::kDram ? 0 : 1][level];
  }

  /// Inserts an unlinked node at the MRU position of its (tier, level) queue.
  void enqueue(Node& node);
  /// Unlinks a node from its current (tier, level) queue if linked.
  void dequeue(Node& node);
  /// Lowest-level LRU resident of a tier, or nullptr when the tier is empty.
  Node* coldest(Tier tier);
  /// Ages one queue tail per call (round-robin lazy expiration).
  void age_step();
  /// Evicts the coldest NVM page to disk.
  void evict_coldest_nvm();
  /// Promotes an NVM node into DRAM (swapping with a colder DRAM page when
  /// DRAM is full). Returns the migration latency (0 if skipped).
  Nanoseconds try_promote(Node& node);

  unsigned promote_level_;
  std::uint64_t lifetime_;
  std::uint64_t clock_ = 0;
  unsigned age_cursor_ = 0;
  std::array<std::array<Queue, kLevels>, 2> queues_;
  std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  std::uint64_t expirations_ = 0;
};

}  // namespace hymem::policy
