#include "policy/clock.hpp"

#include "util/check.hpp"

namespace hymem::policy {

ClockPolicy::ClockPolicy(std::size_t capacity) : capacity_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "CLOCK capacity must be positive");
}

void ClockPolicy::advance_hand() {
  HYMEM_CHECK(!ring_.empty());
  if (hand_ == ring_.end()) hand_ = ring_.begin();
  ++hand_;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
}

void ClockPolicy::on_hit(PageId page, AccessType /*type*/) {
  const auto it = index_.find(page);
  HYMEM_CHECK_MSG(it != index_.end(), "hit on untracked page");
  it->second->ref = true;
}

void ClockPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full CLOCK");
  // New pages enter just behind the hand (i.e. they are visited last).
  Ring::iterator pos = hand_ == ring_.end() ? ring_.end() : hand_;
  const auto it = ring_.insert(pos, Entry{page, false});
  index_.emplace(page, it);
  if (hand_ == ring_.end()) hand_ = it;
}

std::optional<PageId> ClockPolicy::select_victim() {
  if (ring_.empty()) return std::nullopt;
  if (hand_ == ring_.end()) hand_ = ring_.begin();
  // Sweep: give referenced pages a second chance. Terminates within two
  // laps because every visited page's bit is cleared.
  for (std::size_t steps = 0; steps < 2 * ring_.size() + 1; ++steps) {
    if (hand_->ref) {
      hand_->ref = false;
      advance_hand();
    } else {
      return hand_->page;
    }
  }
  HYMEM_CHECK_MSG(false, "CLOCK sweep failed to find a victim");
  return std::nullopt;
}

void ClockPolicy::erase(PageId page) {
  const auto it = index_.find(page);
  HYMEM_CHECK_MSG(it != index_.end(), "erase of untracked page");
  if (hand_ == it->second) {
    ++hand_;
    if (hand_ == ring_.end() && ring_.size() > 1) hand_ = ring_.begin();
  }
  ring_.erase(it->second);
  index_.erase(it);
  if (ring_.empty()) hand_ = ring_.end();
}

bool ClockPolicy::ref_bit(PageId page) const {
  const auto it = index_.find(page);
  HYMEM_CHECK_MSG(it != index_.end(), "ref_bit of untracked page");
  return it->second->ref;
}

}  // namespace hymem::policy
