// CLOCK-Pro (Jiang, Chen & Zhang, USENIX ATC'05), the strongest
// CLOCK-family baseline the CLOCK-DWF paper compares against.
//
// Faithful structure: one circular list holding hot pages, resident cold
// pages and non-resident cold ("test ghost") entries, swept by three hands
// (hot / cold / test). Cold pages carry a test period; a hit during the test
// period promotes the page to hot and grows the cold target `mc`; an expired
// test shrinks it. The non-resident history is capped at the cache size.
#pragma once

#include <list>
#include <unordered_map>

#include "policy/replacement.hpp"

namespace hymem::policy {

/// CLOCK-Pro replacement.
class ClockProPolicy final : public ReplacementPolicy {
 public:
  explicit ClockProPolicy(std::size_t capacity);

  std::string_view name() const override { return "clock-pro"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return hot_count_ + cold_res_count_; }
  bool contains(PageId page) const override;

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  /// Current adaptive cold-page target (for tests).
  std::size_t cold_target() const { return cold_target_; }
  /// Number of non-resident test entries currently remembered.
  std::size_t nonresident_count() const { return nonres_count_; }

 private:
  enum class Kind : std::uint8_t { kHot, kColdResident, kColdNonResident };

  struct Entry {
    PageId page;
    Kind kind;
    bool ref = false;
    bool test = false;
  };
  using Ring = std::list<Entry>;

  Ring::iterator advance(Ring::iterator it);
  void detach(Ring::iterator it);
  void run_hand_hot();
  void run_hand_test();
  void ensure_cold_resident();

  std::size_t capacity_;
  std::size_t cold_target_;  // mc: desired number of resident cold pages
  Ring ring_;
  Ring::iterator hand_hot_ = ring_.end();
  Ring::iterator hand_cold_ = ring_.end();
  Ring::iterator hand_test_ = ring_.end();
  std::unordered_map<PageId, Ring::iterator> index_;
  std::size_t hot_count_ = 0;
  std::size_t cold_res_count_ = 0;
  std::size_t nonres_count_ = 0;
};

}  // namespace hymem::policy
