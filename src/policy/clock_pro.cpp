#include "policy/clock_pro.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::policy {

ClockProPolicy::ClockProPolicy(std::size_t capacity)
    : capacity_(capacity),
      cold_target_(std::max<std::size_t>(1, capacity / 4)) {
  HYMEM_CHECK_MSG(capacity >= 2, "CLOCK-Pro needs capacity >= 2");
}

bool ClockProPolicy::contains(PageId page) const {
  const auto it = index_.find(page);
  return it != index_.end() && it->second->kind != Kind::kColdNonResident;
}

ClockProPolicy::Ring::iterator ClockProPolicy::advance(Ring::iterator it) {
  HYMEM_CHECK(!ring_.empty());
  if (it == ring_.end()) it = ring_.begin();
  ++it;
  if (it == ring_.end()) it = ring_.begin();
  return it;
}

void ClockProPolicy::detach(Ring::iterator it) {
  // Move any hand off the entry about to disappear.
  auto fix = [&](Ring::iterator& hand) {
    if (hand == it) {
      hand = ring_.size() > 1 ? advance(hand) : ring_.end();
    }
  };
  fix(hand_hot_);
  fix(hand_cold_);
  fix(hand_test_);
  index_.erase(it->page);
  ring_.erase(it);
}

void ClockProPolicy::run_hand_hot() {
  // Demote the first unreferenced hot page the hot hand meets; clear
  // reference bits along the way. Bounded by two laps.
  if (hot_count_ == 0) return;
  if (hand_hot_ == ring_.end()) hand_hot_ = ring_.begin();
  for (std::size_t steps = 0; steps < 2 * ring_.size() + 1; ++steps) {
    if (hand_hot_->kind == Kind::kHot) {
      if (hand_hot_->ref) {
        hand_hot_->ref = false;
      } else {
        hand_hot_->kind = Kind::kColdResident;
        hand_hot_->test = false;
        --hot_count_;
        ++cold_res_count_;
        hand_hot_ = advance(hand_hot_);
        return;
      }
    } else if (hand_hot_->kind == Kind::kColdResident && hand_hot_->test) {
      // The hot hand also terminates test periods it passes (paper §3.3).
      hand_hot_->test = false;
      cold_target_ = std::max<std::size_t>(1, cold_target_ - 1);
    }
    hand_hot_ = advance(hand_hot_);
  }
}

void ClockProPolicy::run_hand_test() {
  // Reclaim one non-resident history entry.
  if (nonres_count_ == 0) return;
  if (hand_test_ == ring_.end()) hand_test_ = ring_.begin();
  for (std::size_t steps = 0; steps < ring_.size() + 1; ++steps) {
    if (hand_test_->kind == Kind::kColdNonResident) {
      const auto doomed = hand_test_;
      hand_test_ = advance(hand_test_);
      --nonres_count_;
      detach(doomed);
      return;
    }
    hand_test_ = advance(hand_test_);
  }
}

void ClockProPolicy::ensure_cold_resident() {
  // Guarantee the cold hand has something to work on.
  std::size_t guard = 2 * capacity_ + 2;
  while (cold_res_count_ == 0 && hot_count_ > 0 && guard-- > 0) {
    run_hand_hot();
  }
  HYMEM_CHECK_MSG(cold_res_count_ > 0, "CLOCK-Pro could not produce a cold page");
}

void ClockProPolicy::on_hit(PageId page, AccessType /*type*/) {
  const auto it = index_.find(page);
  HYMEM_CHECK_MSG(it != index_.end() && it->second->kind != Kind::kColdNonResident,
                  "hit on untracked page");
  it->second->ref = true;
}

void ClockProPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full CLOCK-Pro");
  const auto ghost = index_.find(page);
  const bool was_in_test = ghost != index_.end();
  if (was_in_test) {
    // Fault within the test period: the page is hot, and cold pages earn a
    // larger share of memory.
    cold_target_ = std::min(cold_target_ + 1, capacity_ - 1);
    --nonres_count_;
    detach(ghost->second);
  }
  // New entries go in just behind the hot hand (the list "head").
  Ring::iterator pos = hand_hot_ == ring_.end() ? ring_.end() : hand_hot_;
  const auto it = ring_.insert(
      pos, Entry{page,
                 was_in_test ? Kind::kHot : Kind::kColdResident,
                 /*ref=*/false,
                 /*test=*/!was_in_test});
  index_.emplace(page, it);
  if (was_in_test) {
    ++hot_count_;
  } else {
    ++cold_res_count_;
  }
  if (hand_hot_ == ring_.end()) hand_hot_ = it;
  if (hand_cold_ == ring_.end()) hand_cold_ = it;
  if (hand_test_ == ring_.end()) hand_test_ = it;
  // Keep the hot set within its allocation.
  std::size_t guard = 2 * capacity_ + 2;
  while (hot_count_ + cold_target_ > capacity_ && hot_count_ > 0 && guard-- > 0) {
    run_hand_hot();
  }
}

std::optional<PageId> ClockProPolicy::select_victim() {
  if (size() == 0) return std::nullopt;
  ensure_cold_resident();
  if (hand_cold_ == ring_.end()) hand_cold_ = ring_.begin();
  for (std::size_t steps = 0; steps < 3 * ring_.size() + 1; ++steps) {
    if (hand_cold_->kind == Kind::kColdResident) {
      if (hand_cold_->ref) {
        if (hand_cold_->test) {
          // Re-accessed within its test period: promote to hot.
          hand_cold_->kind = Kind::kHot;
          hand_cold_->ref = false;
          hand_cold_->test = false;
          --cold_res_count_;
          ++hot_count_;
          cold_target_ = std::min(cold_target_ + 1, capacity_ - 1);
          std::size_t guard = 2 * capacity_ + 2;
          while (hot_count_ + cold_target_ > capacity_ && hot_count_ > 0 &&
                 guard-- > 0) {
            run_hand_hot();
          }
          ensure_cold_resident();
        } else {
          // Second chance with a fresh test period.
          hand_cold_->ref = false;
          hand_cold_->test = true;
        }
      } else {
        return hand_cold_->page;
      }
    }
    hand_cold_ = advance(hand_cold_);
  }
  HYMEM_CHECK_MSG(false, "CLOCK-Pro cold sweep failed to find a victim");
  return std::nullopt;
}

void ClockProPolicy::erase(PageId page) {
  const auto it = index_.find(page);
  HYMEM_CHECK_MSG(it != index_.end() && it->second->kind != Kind::kColdNonResident,
                  "erase of untracked page");
  Ring::iterator entry = it->second;
  if (entry->kind == Kind::kHot) {
    --hot_count_;
    detach(entry);
    return;
  }
  --cold_res_count_;
  if (entry->test) {
    // Evicted inside its test period: keep a non-resident history entry so a
    // quick re-fault can be recognized.
    entry->kind = Kind::kColdNonResident;
    entry->ref = false;
    while (nonres_count_ >= capacity_) run_hand_test();
    ++nonres_count_;
  } else {
    cold_target_ = std::max<std::size_t>(1, cold_target_ - 1);
    detach(entry);
  }
}

}  // namespace hymem::policy
