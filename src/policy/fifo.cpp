#include "policy/fifo.hpp"

#include "util/check.hpp"

namespace hymem::policy {

FifoPolicy::FifoPolicy(std::size_t capacity) : capacity_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "FIFO capacity must be positive");
}

void FifoPolicy::on_hit(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(contains(page), "hit on untracked page");
  // FIFO ignores recency.
}

void FifoPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full FIFO");
  auto node = std::make_unique<Node>();
  node->page = page;
  list_.push_front(*node);
  nodes_.emplace(page, std::move(node));
}

std::optional<PageId> FifoPolicy::select_victim() {
  const Node* victim = list_.back();
  if (victim == nullptr) return std::nullopt;
  return victim->page;
}

void FifoPolicy::erase(PageId page) {
  const auto it = nodes_.find(page);
  HYMEM_CHECK_MSG(it != nodes_.end(), "erase of untracked page");
  list_.erase(*it->second);
  nodes_.erase(it);
}

}  // namespace hymem::policy
