#include "policy/fifo.hpp"

#include "util/check.hpp"

namespace hymem::policy {

FifoPolicy::FifoPolicy(std::size_t capacity)
    : capacity_(capacity), pool_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "FIFO capacity must be positive");
  index_.reserve(capacity);
}

void FifoPolicy::on_hit(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(contains(page), "hit on untracked page");
  // FIFO ignores recency.
}

void FifoPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full FIFO");
  const auto [slot, inserted] = index_.try_emplace(page);
  HYMEM_CHECK_MSG(inserted, "insert of tracked page");
  Node* node = pool_.allocate();
  node->page = page;
  *slot = node;
  list_.push_front(*node);
}

std::optional<PageId> FifoPolicy::select_victim() {
  const Node* victim = list_.back();
  if (victim == nullptr) return std::nullopt;
  return victim->page;
}

void FifoPolicy::erase(PageId page) {
  const std::optional<Node*> node = index_.take(page);
  HYMEM_CHECK_MSG(node.has_value(), "erase of untracked page");
  list_.erase(**node);
  pool_.release(*node);
}

}  // namespace hymem::policy
