#include "policy/random_repl.hpp"

#include "util/check.hpp"

namespace hymem::policy {

RandomPolicy::RandomPolicy(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  HYMEM_CHECK_MSG(capacity > 0, "Random capacity must be positive");
}

void RandomPolicy::on_hit(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(contains(page), "hit on untracked page");
}

void RandomPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full Random");
  index_.emplace(page, pages_.size());
  pages_.push_back(page);
}

std::optional<PageId> RandomPolicy::select_victim() {
  if (pages_.empty()) return std::nullopt;
  return pages_[rng_.next_below(pages_.size())];
}

void RandomPolicy::erase(PageId page) {
  const auto it = index_.find(page);
  HYMEM_CHECK_MSG(it != index_.end(), "erase of untracked page");
  const std::size_t pos = it->second;
  const PageId last = pages_.back();
  pages_[pos] = last;
  index_[last] = pos;
  pages_.pop_back();
  index_.erase(it);
}

}  // namespace hymem::policy
