#include "policy/lfu.hpp"

#include "util/check.hpp"

namespace hymem::policy {

LfuPolicy::LfuPolicy(std::size_t capacity) : capacity_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "LFU capacity must be positive");
}

void LfuPolicy::on_hit(PageId page, AccessType /*type*/) {
  const auto it = pages_.find(page);
  HYMEM_CHECK_MSG(it != pages_.end(), "hit on untracked page");
  order_.erase(it->second);
  ++it->second.count;
  order_.insert(it->second);
}

void LfuPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full LFU");
  const Key key{1, next_seq_++, page};
  pages_.emplace(page, key);
  order_.insert(key);
}

std::optional<PageId> LfuPolicy::select_victim() {
  if (order_.empty()) return std::nullopt;
  return order_.begin()->page;
}

void LfuPolicy::erase(PageId page) {
  const auto it = pages_.find(page);
  HYMEM_CHECK_MSG(it != pages_.end(), "erase of untracked page");
  order_.erase(it->second);
  pages_.erase(it);
}

std::uint64_t LfuPolicy::frequency(PageId page) const {
  const auto it = pages_.find(page);
  HYMEM_CHECK_MSG(it != pages_.end(), "frequency of untracked page");
  return it->second.count;
}

}  // namespace hymem::policy
