// LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02).
// The strongest classical LRU-replacement and the basis of CLOCK-Pro;
// included so the baseline sweep spans the whole recency/reuse family.
//
// Structure: stack S orders pages by recency and holds LIR pages plus
// (resident and non-resident) HIR pages whose inter-reference recency is
// still being tested; queue Q holds the resident HIR pages, which are the
// eviction candidates. A HIR page re-referenced while still in S has proven
// a small inter-reference recency and swaps roles with the LIR page at the
// stack bottom.
#pragma once

#include <list>
#include <unordered_map>

#include "policy/replacement.hpp"

namespace hymem::policy {

/// LIRS replacement. The HIR allocation is max(1, capacity/16); the
/// non-resident history in S is capped at 2x capacity.
class LirsPolicy final : public ReplacementPolicy {
 public:
  explicit LirsPolicy(std::size_t capacity);

  std::string_view name() const override { return "lirs"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return lir_count_ + hir_resident_count_; }
  bool contains(PageId page) const override;

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  std::size_t lir_count() const { return lir_count_; }
  std::size_t hir_resident_count() const { return hir_resident_count_; }
  std::size_t nonresident_count() const { return nonresident_count_; }

 private:
  enum class State : std::uint8_t { kLir, kHirResident, kHirNonResident };

  struct Entry {
    PageId page;
    State state;
  };
  using Stack = std::list<Entry>;   // front = most recent
  using Queue = std::list<PageId>;  // front = oldest resident HIR

  struct Index {
    Stack::iterator stack_it;  // valid iff in_stack
    Queue::iterator queue_it;  // valid iff in_queue
    bool in_stack = false;
    bool in_queue = false;
    State state = State::kHirNonResident;
  };

  /// Removes non-LIR entries from the stack bottom (invariant: the bottom
  /// of S is always a LIR page).
  void prune();
  /// Demotes the stack-bottom LIR page to resident HIR (tail of Q).
  void demote_bottom_lir();
  void stack_remove(PageId page);
  void queue_remove(PageId page);
  void stack_push_front(PageId page, State state);
  void queue_push_back(PageId page);
  void enforce_nonresident_cap();

  std::size_t capacity_;
  std::size_t lir_target_;
  Stack stack_;
  Queue queue_;
  std::unordered_map<PageId, Index> index_;
  std::size_t lir_count_ = 0;
  std::size_t hir_resident_count_ = 0;
  std::size_t nonresident_count_ = 0;
};

}  // namespace hymem::policy
