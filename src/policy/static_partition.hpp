// Static hybrid partition: pages are hashed to a module once and never
// migrate. The no-migration control for the ablation benches — it isolates
// how much of the hybrid benefit/penalty comes from migration itself.
#pragma once

#include "policy/hybrid_policy.hpp"
#include "policy/lru.hpp"

namespace hymem::policy {

/// Hash-partitioned hybrid memory with per-module LRU and zero migrations.
class StaticPartitionPolicy final : public HybridPolicy {
 public:
  explicit StaticPartitionPolicy(os::Vmm& vmm);

  std::string_view name() const override { return "static-partition"; }
  Nanoseconds on_access(PageId page, AccessType type) override;
  void prefetch(PageId page) const override {
    vmm_.prefetch_translation(page);
    dram_.prefetch(page);
    nvm_.prefetch(page);
  }

  /// Module a page is permanently assigned to.
  Tier home(PageId page) const;

 private:
  LruPolicy dram_;
  LruPolicy nvm_;
  std::uint64_t dram_share_permille_;
};

}  // namespace hymem::policy
