#include "policy/clock_dwf.hpp"

#include "util/check.hpp"

namespace hymem::policy {

ClockDwfPolicy::ClockDwfPolicy(os::Vmm& vmm)
    : HybridPolicy(vmm),
      dram_(static_cast<std::size_t>(vmm.frames(Tier::kDram))),
      nvm_(static_cast<std::size_t>(vmm.frames(Tier::kNvm))) {
  HYMEM_CHECK_MSG(vmm.frames(Tier::kDram) > 0 && vmm.frames(Tier::kNvm) > 0,
                  "CLOCK-DWF needs both modules populated");
}

void ClockDwfPolicy::evict_nvm_victim() {
  const auto victim = nvm_.select_victim();
  HYMEM_CHECK_MSG(victim.has_value(), "NVM clock empty while full");
  nvm_.erase(*victim);
  vmm_.evict(*victim);
}

Nanoseconds ClockDwfPolicy::demote_dram_victim() {
  const auto victim = dram_.select_victim();
  HYMEM_CHECK_MSG(victim.has_value(), "DRAM clock empty while full");
  if (!vmm_.has_free_frame(Tier::kNvm)) evict_nvm_victim();
  dram_.erase(*victim);
  const Nanoseconds latency = vmm_.migrate(*victim, Tier::kNvm);
  nvm_.insert(*victim, AccessType::kRead);
  return latency;
}

Nanoseconds ClockDwfPolicy::on_access(PageId page, AccessType type) {
  if (type == AccessType::kRead) {
    // Reads are served wherever the page lives — one combined probe+access.
    if (const auto hit = vmm_.access_if_resident(page, type)) {
      if (hit->tier == Tier::kNvm) nvm_.on_hit(page, type);
      return hit->latency;
    }
    return fault_in_access(page, type);
  }
  // Writes dispatch on the tier BEFORE serving: a write to an NVM page is
  // forcibly promoted first and served by DRAM, never by NVM.
  const auto tier = vmm_.tier_of(page);
  if (tier == Tier::kDram) {
    // Write-history-aware: only writes refresh the DRAM reference bit, so
    // read-dominant pages age out towards NVM.
    dram_.on_hit(page, type);
    return vmm_.access(page, type);
  }
  if (tier == Tier::kNvm) {
    // Write to an NVM page: forced promotion — NVM never serves writes.
    Nanoseconds latency = 0;
    if (vmm_.has_free_frame(Tier::kDram)) {
      nvm_.erase(page);
      latency += vmm_.migrate(page, Tier::kDram);
    } else {
      const auto victim = dram_.select_victim();
      HYMEM_CHECK_MSG(victim.has_value(), "DRAM clock empty while full");
      // Full memory: the promotion drags the DRAM victim down with it
      // (one migration each way — the non-beneficial pattern the paper
      // dissects in Section III).
      dram_.erase(*victim);
      nvm_.erase(page);
      latency += vmm_.swap(page, *victim);
      nvm_.insert(*victim, AccessType::kRead);
    }
    dram_.insert(page, type);
    dram_.on_hit(page, type);  // the triggering write sets the bit
    latency += vmm_.access(page, type);
    return latency;
  }
  return fault_in_access(page, type);
}

// Page fault. Writes (and any fault while DRAM has spare frames) fill
// DRAM; read faults fill NVM.
Nanoseconds ClockDwfPolicy::fault_in_access(PageId page, AccessType type) {
  Nanoseconds latency = 0;
  const bool to_dram =
      type == AccessType::kWrite || vmm_.has_free_frame(Tier::kDram);
  if (to_dram) {
    if (!vmm_.has_free_frame(Tier::kDram)) latency += demote_dram_victim();
    latency += vmm_.fault_in(page, Tier::kDram);
    dram_.insert(page, type);
    if (type == AccessType::kWrite) {
      dram_.on_hit(page, type);
      vmm_.touch_dirty(page);
    }
  } else {
    if (!vmm_.has_free_frame(Tier::kNvm)) evict_nvm_victim();
    latency += vmm_.fault_in(page, Tier::kNvm);
    nvm_.insert(page, type);
  }
  return latency;
}

}  // namespace hymem::policy
