#include "policy/dram_cache.hpp"

#include "util/check.hpp"

namespace hymem::policy {

DramCachePolicy::DramCachePolicy(os::Vmm& vmm)
    : HybridPolicy(vmm),
      dram_(static_cast<std::size_t>(vmm.frames(Tier::kDram))),
      nvm_(static_cast<std::size_t>(vmm.frames(Tier::kNvm))) {
  HYMEM_CHECK_MSG(vmm.frames(Tier::kDram) > 0 && vmm.frames(Tier::kNvm) > 0,
                  "dram-cache needs both modules populated");
}

Nanoseconds DramCachePolicy::make_dram_room() {
  const auto victim = dram_.select_victim();
  HYMEM_CHECK_MSG(victim.has_value(), "DRAM LRU empty while full");
  if (!vmm_.has_free_frame(Tier::kNvm)) {
    const auto nvm_victim = nvm_.select_victim();
    HYMEM_CHECK(nvm_victim.has_value());
    nvm_.erase(*nvm_victim);
    vmm_.evict(*nvm_victim);
  }
  dram_.erase(*victim);
  const Nanoseconds latency = vmm_.migrate(*victim, Tier::kNvm);
  nvm_.insert(*victim, AccessType::kRead);
  return latency;
}

Nanoseconds DramCachePolicy::on_access(PageId page, AccessType type) {
  // One page-table probe classifies the access and serves resident hits.
  const auto hit = vmm_.access_if_resident(page, type);
  if (hit.has_value() && hit->tier == Tier::kDram) {
    dram_.on_hit(page, type);
    return hit->latency;
  }
  if (hit.has_value()) {
    // Served from NVM; promote unconditionally.
    Nanoseconds latency = hit->latency;
    if (vmm_.has_free_frame(Tier::kDram)) {
      nvm_.erase(page);
      latency += vmm_.migrate(page, Tier::kDram);
    } else {
      const auto victim = dram_.select_victim();
      HYMEM_CHECK(victim.has_value());
      dram_.erase(*victim);
      nvm_.erase(page);
      latency += vmm_.swap(page, *victim);
      nvm_.insert(*victim, AccessType::kRead);
    }
    dram_.insert(page, type);
    return latency;
  }
  // Page fault: fill DRAM (hot front), demoting as needed.
  Nanoseconds latency = 0;
  if (!vmm_.has_free_frame(Tier::kDram)) latency += make_dram_room();
  latency += vmm_.fault_in(page, Tier::kDram);
  dram_.insert(page, type);
  if (type == AccessType::kWrite) vmm_.touch_dirty(page);
  return latency;
}

}  // namespace hymem::policy
