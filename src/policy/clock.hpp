// CLOCK (second-chance) replacement: the approximation of LRU used by real
// kernels and the base algorithm of CLOCK-DWF's NVM module.
#pragma once

#include <list>
#include <unordered_map>

#include "policy/replacement.hpp"

namespace hymem::policy {

/// Circular buffer of pages with reference bits and a sweeping hand.
class ClockPolicy final : public ReplacementPolicy {
 public:
  explicit ClockPolicy(std::size_t capacity);

  std::string_view name() const override { return "clock"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return index_.size(); }
  bool contains(PageId page) const override { return index_.count(page) > 0; }

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  /// Reference bit of a tracked page (for tests).
  bool ref_bit(PageId page) const;

 private:
  struct Entry {
    PageId page;
    bool ref;
  };
  using Ring = std::list<Entry>;

  void advance_hand();

  std::size_t capacity_;
  Ring ring_;           // circular order; hand_ sweeps towards end then wraps
  Ring::iterator hand_ = ring_.end();
  std::unordered_map<PageId, Ring::iterator> index_;
};

}  // namespace hymem::policy
