// Least-Recently-Used replacement — the paper's reference algorithm for both
// the DRAM-only baseline (Fig. 1) and the two queues of the proposed scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "policy/replacement.hpp"
#include "util/flat_page_map.hpp"

namespace hymem::policy {

/// Classic LRU over pages: O(1) hit, insert and eviction. The recency list
/// is index-linked over one contiguous node array (16-byte nodes, 32-bit
/// links) indexed by a flat open-addressing map with 32-bit values — the
/// whole structure is a few dense arrays sized once at construction, so the
/// per-access splice stays inside a compact, allocation-free working set.
class LruPolicy final : public ReplacementPolicy {
 public:
  explicit LruPolicy(std::size_t capacity);

  std::string_view name() const override { return "lru"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return index_.size(); }
  // The ReplacementPolicy interface makes callers probe membership before
  // acting (`contains` then `on_hit`/`erase`); remember the node the probe
  // found so the action reuses it instead of paying a second hash lookup.
  bool contains(PageId page) const override {
    const std::uint32_t* found = index_.find(page);
    last_lookup_ = found == nullptr ? kNoNode : *found;
    last_key_ = page;
    // The caller's next move on a hit is the MRU splice, and on a miss it
    // is select_victim on the (by definition cold) LRU tail; start pulling
    // the node each path needs so it arrives during the dispatch back.
    __builtin_prefetch(
        &nodes_[last_lookup_ == kNoNode ? nodes_[sentinel()].prev
                                        : last_lookup_]);
    return found != nullptr;
  }

  void prefetch(PageId page) const override { index_.prefetch(page); }
  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  /// MRU-to-LRU page order (for tests).
  template <typename Fn>
  void for_each_mru_to_lru(Fn&& fn) const {
    for (std::uint32_t i = nodes_[sentinel()].next; i != sentinel();
         i = nodes_[i].next) {
      fn(nodes_[i].page);
    }
  }

 private:
  struct Node {
    PageId page;
    std::uint32_t prev;
    std::uint32_t next;
  };
  static constexpr std::uint32_t kNoNode = UINT32_MAX;

  /// The circular list's sentinel node lives at index `capacity_`.
  std::uint32_t sentinel() const {
    return static_cast<std::uint32_t>(capacity_);
  }

  /// Returns the node index for `page` (the memoized one when
  /// `contains(page)` was the last lookup), or kNoNode if untracked.
  std::uint32_t lookup(PageId page) const {
    if (last_key_ == page) return last_lookup_;
    const std::uint32_t* found = index_.find(page);
    return found == nullptr ? kNoNode : *found;
  }
  void forget(PageId page) const {
    if (last_key_ == page) {
      last_lookup_ = kNoNode;
      last_key_ = kInvalidPage;
    }
  }

  void unlink(std::uint32_t i) {
    nodes_[nodes_[i].prev].next = nodes_[i].next;
    nodes_[nodes_[i].next].prev = nodes_[i].prev;
  }
  void link_front(std::uint32_t i) {
    const std::uint32_t head = nodes_[sentinel()].next;
    nodes_[i].prev = sentinel();
    nodes_[i].next = head;
    nodes_[head].prev = i;
    nodes_[sentinel()].next = i;
  }

  std::size_t capacity_;
  std::vector<Node> nodes_;          // [0, capacity_) + sentinel at the end
  std::vector<std::uint32_t> free_;  // unused node indices (stack)
  util::FlatPageMap<std::uint32_t> index_;
  mutable std::uint32_t last_lookup_ = kNoNode;
  mutable PageId last_key_ = kInvalidPage;
};

}  // namespace hymem::policy
