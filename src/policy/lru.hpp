// Least-Recently-Used replacement — the paper's reference algorithm for both
// the DRAM-only baseline (Fig. 1) and the two queues of the proposed scheme.
#pragma once

#include <memory>
#include <unordered_map>

#include "policy/replacement.hpp"
#include "util/intrusive_list.hpp"

namespace hymem::policy {

/// Classic LRU over pages: O(1) hit, insert and eviction.
class LruPolicy final : public ReplacementPolicy {
 public:
  explicit LruPolicy(std::size_t capacity);

  std::string_view name() const override { return "lru"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return nodes_.size(); }
  bool contains(PageId page) const override { return nodes_.count(page) > 0; }

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  /// MRU-to-LRU page order (for tests).
  template <typename Fn>
  void for_each_mru_to_lru(Fn&& fn) const {
    list_.for_each([&fn](const Node& n) { fn(n.page); });
  }

 private:
  struct Node {
    PageId page;
    ListHook hook;
  };

  std::size_t capacity_;
  IntrusiveList<Node, &Node::hook> list_;  // front = MRU
  std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
};

}  // namespace hymem::policy
