// Replacement-policy factory: builds single-module policies by name, used by
// the baseline sweeps and the CLI tools. (The hybrid-policy factory lives in
// hymem::sim, which can see the core library as well.)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "policy/replacement.hpp"

namespace hymem::policy {

/// Names accepted by make_replacement().
std::vector<std::string> replacement_names();

/// Builds "lru", "fifo", "clock", "clock-pro", "car", "lfu" or "random".
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<ReplacementPolicy> make_replacement(const std::string& name,
                                                    std::size_t capacity,
                                                    std::uint64_t seed = 1);

}  // namespace hymem::policy
