#include "policy/lru_k.hpp"

#include "util/check.hpp"

namespace hymem::policy {

std::uint64_t LruKPolicy::History::kth() const {
  if (count < times.size()) return 0;
  return times[cursor];  // oldest retained = K-th most recent
}

std::uint64_t LruKPolicy::History::newest() const {
  const std::size_t newest_idx =
      (cursor + times.size() - 1) % times.size();
  return count == 0 ? 0 : times[newest_idx];
}

LruKPolicy::LruKPolicy(std::size_t capacity, unsigned k)
    : capacity_(capacity), k_(k) {
  HYMEM_CHECK_MSG(capacity > 0, "LRU-K capacity must be positive");
  HYMEM_CHECK_MSG(k >= 1, "K must be at least 1");
}

LruKPolicy::Key LruKPolicy::key_of(const History& h, PageId page) const {
  return Key{h.kth(), h.newest(), page};
}

void LruKPolicy::touch(PageId page) {
  auto& h = pages_.at(page);
  order_.erase(key_of(h, page));
  h.times[h.cursor] = ++clock_;
  h.cursor = (h.cursor + 1) % h.times.size();
  ++h.count;
  order_.insert(key_of(h, page));
}

void LruKPolicy::on_hit(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(contains(page), "hit on untracked page");
  touch(page);
}

void LruKPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full LRU-K");
  History h;
  h.times.assign(k_, 0);
  const auto [it, inserted] = pages_.emplace(page, std::move(h));
  HYMEM_CHECK(inserted);
  order_.insert(key_of(it->second, page));
  touch(page);
}

std::optional<PageId> LruKPolicy::select_victim() {
  if (order_.empty()) return std::nullopt;
  return order_.begin()->page;
}

void LruKPolicy::erase(PageId page) {
  const auto it = pages_.find(page);
  HYMEM_CHECK_MSG(it != pages_.end(), "erase of untracked page");
  order_.erase(key_of(it->second, page));
  pages_.erase(it);
}

std::uint64_t LruKPolicy::kth_reference(PageId page) const {
  const auto it = pages_.find(page);
  HYMEM_CHECK_MSG(it != pages_.end(), "kth_reference of untracked page");
  return it->second.kth();
}

}  // namespace hymem::policy
