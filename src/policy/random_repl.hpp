// Random replacement — the no-information control in the baseline sweeps.
#pragma once

#include <unordered_map>
#include <vector>

#include "policy/replacement.hpp"
#include "util/random.hpp"

namespace hymem::policy {

/// Evicts a uniformly random tracked page. Deterministic under a fixed seed.
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(std::size_t capacity, std::uint64_t seed = 1);

  std::string_view name() const override { return "random"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return pages_.size(); }
  bool contains(PageId page) const override { return index_.count(page) > 0; }

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

 private:
  std::size_t capacity_;
  Rng rng_;
  std::vector<PageId> pages_;  // dense array for O(1) random pick
  std::unordered_map<PageId, std::size_t> index_;
};

}  // namespace hymem::policy
