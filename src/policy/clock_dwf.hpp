// CLOCK-DWF (Lee, Bahn & Noh, IEEE TC 2013) — the paper's primary baseline,
// reimplemented from the decision rules both papers state:
//
//   * two clock algorithms, one per module;
//   * page fault caused by a WRITE  -> page placed in DRAM;
//     page fault caused by a READ   -> page placed in NVM
//     (unless DRAM still has free frames, which also captures the paper's
//     observation that an empty DRAM absorbs pages regardless of type);
//   * any WRITE to a page residing in NVM -> immediate migration to DRAM,
//     so NVM never serves a write;
//   * DRAM victims are chosen write-history-aware (the reference bit is set
//     by writes only, so read-dominant pages age out first) and are demoted
//     to NVM, not discarded;
//   * NVM victims (standard clock) are evicted to disk.
//
// The motivation section's findings hinge on this structure: when DRAM is
// full, every write to an NVM page costs BOTH a NVM->DRAM and a DRAM->NVM
// page copy (2 * PageFactor device accesses each way).
#pragma once

#include "policy/clock.hpp"
#include "policy/hybrid_policy.hpp"

namespace hymem::policy {

/// CLOCK-DWF hybrid policy.
class ClockDwfPolicy final : public HybridPolicy {
 public:
  explicit ClockDwfPolicy(os::Vmm& vmm);

  std::string_view name() const override { return "clock-dwf"; }
  Nanoseconds on_access(PageId page, AccessType type) override;

  const ClockPolicy& dram_clock() const { return dram_; }
  const ClockPolicy& nvm_clock() const { return nvm_; }

 private:
  /// Makes room in DRAM by demoting its clock victim to NVM (evicting an NVM
  /// page to disk first when NVM is also full). Returns the demotion latency.
  Nanoseconds demote_dram_victim();
  /// Makes room in NVM by evicting its clock victim to disk.
  void evict_nvm_victim();
  /// Serves a page fault (CLOCK-DWF placement: writes and spare-DRAM faults
  /// fill DRAM, read faults fill NVM).
  Nanoseconds fault_in_access(PageId page, AccessType type);

  ClockPolicy dram_;
  ClockPolicy nvm_;
};

}  // namespace hymem::policy
