#include "policy/two_q.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::policy {

TwoQPolicy::TwoQPolicy(std::size_t capacity)
    : capacity_(capacity),
      kin_(std::max<std::size_t>(1, capacity / 4)),
      kout_(std::max<std::size_t>(1, capacity / 2)) {
  HYMEM_CHECK_MSG(capacity >= 2, "2Q needs capacity >= 2");
}

bool TwoQPolicy::contains(PageId page) const {
  return resident_.count(page) > 0;
}

void TwoQPolicy::remember_ghost(PageId page) {
  a1out_.push_front(page);
  ghosts_.emplace(page, a1out_.begin());
  while (a1out_.size() > kout_) {
    ghosts_.erase(a1out_.back());
    a1out_.pop_back();
  }
}

void TwoQPolicy::on_hit(PageId page, AccessType /*type*/) {
  const auto it = resident_.find(page);
  HYMEM_CHECK_MSG(it != resident_.end(), "hit on untracked page");
  if (it->second.where == Where::kProtected) {
    am_.erase(it->second.it);
    am_.push_front(page);
    it->second.it = am_.begin();
  }
  // 2Q: hits inside the probation FIFO do nothing (a burst to a brand-new
  // page must not earn protection).
}

void TwoQPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full 2Q");
  const auto ghost = ghosts_.find(page);
  if (ghost != ghosts_.end()) {
    // Re-reference within the ghost window: straight into the protected LRU.
    a1out_.erase(ghost->second);
    ghosts_.erase(ghost);
    am_.push_front(page);
    resident_.emplace(page, Slot{Where::kProtected, am_.begin()});
  } else {
    a1in_.push_front(page);
    resident_.emplace(page, Slot{Where::kProbation, a1in_.begin()});
  }
}

std::optional<PageId> TwoQPolicy::select_victim() {
  if (size() == 0) return std::nullopt;
  // Evict from probation while it exceeds its share (or protected is empty).
  if ((a1in_.size() > kin_ || am_.empty()) && !a1in_.empty()) {
    return a1in_.back();
  }
  if (!am_.empty()) return am_.back();
  return a1in_.back();
}

void TwoQPolicy::erase(PageId page) {
  const auto it = resident_.find(page);
  HYMEM_CHECK_MSG(it != resident_.end(), "erase of untracked page");
  if (it->second.where == Where::kProbation) {
    a1in_.erase(it->second.it);
    remember_ghost(page);
  } else {
    am_.erase(it->second.it);
  }
  resident_.erase(it);
}

}  // namespace hymem::policy
