// Hybrid-memory management policy interface.
//
// A HybridPolicy handles each main-memory request end-to-end by deciding
// placement, migration and eviction, and executing those decisions through
// the VMM's primitives (which do all the accounting). Every policy is costed
// by the same mechanism layer, so comparisons are apples-to-apples.
#pragma once

#include <string_view>

#include "os/vmm.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace hymem::policy {

/// Base class of all hybrid-memory policies (and the single-module
/// baselines, which simply leave one module empty).
class HybridPolicy {
 public:
  explicit HybridPolicy(os::Vmm& vmm) : vmm_(vmm) {}
  virtual ~HybridPolicy() = default;
  HybridPolicy(const HybridPolicy&) = delete;
  HybridPolicy& operator=(const HybridPolicy&) = delete;

  virtual std::string_view name() const = 0;

  /// Serves one request; returns the latency visible to the requester
  /// (device hit latency, or disk latency plus any synchronous migrations).
  virtual Nanoseconds on_access(PageId page, AccessType type) = 0;

  /// Hints that `page` will be accessed shortly: warms the cache lines the
  /// policy's on_access will probe (page table, membership indexes). Replay
  /// loops call this a fixed distance ahead of on_access; it must have no
  /// architectural effect.
  virtual void prefetch(PageId page) const { vmm_.prefetch_translation(page); }

  os::Vmm& vmm() { return vmm_; }
  const os::Vmm& vmm() const { return vmm_; }

 protected:
  os::Vmm& vmm_;
};

}  // namespace hymem::policy
