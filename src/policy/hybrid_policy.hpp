// Hybrid-memory management policy interface.
//
// A HybridPolicy handles each main-memory request end-to-end by deciding
// placement, migration and eviction, and executing those decisions through
// the VMM's primitives (which do all the accounting). Every policy is costed
// by the same mechanism layer, so comparisons are apples-to-apples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "os/vmm.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace hymem::policy {

/// One decoded block of the replay stream, the unit the block engine hands
/// to a policy. `hashes` memoizes hash_page_id(pages[i]) — the decode stage
/// computes it once per access so the policy's map probes (page table, LRU
/// indexes) never rerun the mixer; it may be null when the producer does not
/// precompute (policies must treat it as an optional acceleration).
struct AccessBlock {
  const PageId* pages = nullptr;
  const AccessType* types = nullptr;
  const std::uint64_t* hashes = nullptr;
  std::size_t size = 0;
};

/// Base class of all hybrid-memory policies (and the single-module
/// baselines, which simply leave one module empty).
class HybridPolicy {
 public:
  explicit HybridPolicy(os::Vmm& vmm) : vmm_(vmm) {}
  virtual ~HybridPolicy() = default;
  HybridPolicy(const HybridPolicy&) = delete;
  HybridPolicy& operator=(const HybridPolicy&) = delete;

  virtual std::string_view name() const = 0;

  /// Serves one request; returns the latency visible to the requester
  /// (device hit latency, or disk latency plus any synchronous migrations).
  virtual Nanoseconds on_access(PageId page, AccessType type) = 0;

  /// Hints that `page` will be accessed shortly: warms the cache lines the
  /// policy's on_access will probe (page table, membership indexes). Replay
  /// loops call this a fixed distance ahead of on_access; it must have no
  /// architectural effect.
  virtual void prefetch(PageId page) const { vmm_.prefetch_translation(page); }

  /// Serves a decoded block of accesses and returns the summed visible
  /// latency. Semantically identical to calling on_access in sequence — the
  /// block engine's differential gate holds every override to that contract
  /// — but a policy may override it to batch the work: hoist per-access
  /// dispatch, reuse the memoized hashes, and keep its inner loop free of
  /// virtual calls. The default is the reference replay loop (prefetch a
  /// fixed distance ahead, then serve).
  virtual Nanoseconds on_block(const AccessBlock& block) {
    constexpr std::size_t kPrefetchDistance = 8;
    Nanoseconds total = 0;
    for (std::size_t i = 0; i < block.size; ++i) {
      if (i + kPrefetchDistance < block.size) {
        prefetch(block.pages[i + kPrefetchDistance]);
      }
      total += on_access(block.pages[i], block.types[i]);
    }
    return total;
  }

  os::Vmm& vmm() { return vmm_; }
  const os::Vmm& vmm() const { return vmm_; }

 protected:
  os::Vmm& vmm_;
};

}  // namespace hymem::policy
