#include "policy/static_partition.hpp"

#include "util/check.hpp"
#include "util/random.hpp"

namespace hymem::policy {

StaticPartitionPolicy::StaticPartitionPolicy(os::Vmm& vmm)
    : HybridPolicy(vmm),
      dram_(static_cast<std::size_t>(vmm.frames(Tier::kDram))),
      nvm_(static_cast<std::size_t>(vmm.frames(Tier::kNvm))) {
  HYMEM_CHECK_MSG(vmm.frames(Tier::kDram) > 0 && vmm.frames(Tier::kNvm) > 0,
                  "static partition needs both modules populated");
  dram_share_permille_ =
      1000 * vmm.frames(Tier::kDram) / vmm.config().total_frames();
}

Tier StaticPartitionPolicy::home(PageId page) const {
  std::uint64_t s = page;
  return splitmix64(s) % 1000 < dram_share_permille_ ? Tier::kDram : Tier::kNvm;
}

Nanoseconds StaticPartitionPolicy::on_access(PageId page, AccessType type) {
  const Tier tier = home(page);
  LruPolicy& lru = tier == Tier::kDram ? dram_ : nvm_;
  if (const auto hit = vmm_.access_if_resident(page, type)) {
    lru.on_hit(page, type);
    return hit->latency;
  }
  if (lru.full()) {
    const auto victim = lru.select_victim();
    HYMEM_CHECK(victim.has_value());
    lru.erase(*victim);
    vmm_.evict(*victim);
  }
  const Nanoseconds latency = vmm_.fault_in(page, tier);
  lru.insert(page, type);
  if (type == AccessType::kWrite) vmm_.touch_dirty(page);
  return latency;
}

}  // namespace hymem::policy
