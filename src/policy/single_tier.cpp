#include "policy/single_tier.hpp"

#include "util/check.hpp"

namespace hymem::policy {

SingleTierPolicy::SingleTierPolicy(os::Vmm& vmm, Tier tier,
                                   std::unique_ptr<ReplacementPolicy> replacement)
    : HybridPolicy(vmm), tier_(tier), replacement_(std::move(replacement)) {
  HYMEM_CHECK_MSG(vmm.frames(other(tier)) == 0,
                  "single-tier policy requires the other module to be empty");
  HYMEM_CHECK_MSG(replacement_ != nullptr, "replacement policy required");
  HYMEM_CHECK_MSG(replacement_->capacity() == vmm.frames(tier),
                  "replacement capacity must match module size");
  name_ = std::string(tier == Tier::kDram ? "dram-only-" : "nvm-only-") +
          std::string(replacement_->name());
}

Nanoseconds SingleTierPolicy::on_access(PageId page, AccessType type) {
  // Combined residency probe + demand access: one page-table lookup.
  if (const auto hit = vmm_.access_if_resident(page, type)) {
    replacement_->on_hit(page, type);
    return hit->latency;
  }
  if (replacement_->full()) {
    const auto victim = replacement_->select_victim();
    HYMEM_CHECK_MSG(victim.has_value(), "full policy produced no victim");
    replacement_->erase(*victim);
    vmm_.evict(*victim);
  }
  const Nanoseconds latency = vmm_.fault_in(page, tier_);
  replacement_->insert(page, type);
  if (type == AccessType::kWrite) vmm_.touch_dirty(page);
  return latency;
}

}  // namespace hymem::policy
