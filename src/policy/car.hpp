// CAR — Clock with Adaptive Replacement (Bansal & Modha, FAST'04).
// Mentioned by the paper as one of the algorithms CLOCK-DWF beats; included
// so the baseline sweep covers the recency/frequency-adaptive family.
//
// Two clocks: T1 (recency) and T2 (frequency), plus ghost histories B1/B2.
// The target size `p` of T1 adapts: a B1 ghost hit grows p, a B2 ghost hit
// shrinks it.
#pragma once

#include <list>
#include <unordered_map>

#include "policy/replacement.hpp"

namespace hymem::policy {

/// CAR replacement.
class CarPolicy final : public ReplacementPolicy {
 public:
  explicit CarPolicy(std::size_t capacity);

  std::string_view name() const override { return "car"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return t1_.size() + t2_.size(); }
  bool contains(PageId page) const override { return resident_.count(page) > 0; }

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  /// Adaptive T1 target (for tests).
  double target_p() const { return p_; }
  std::size_t t1_size() const { return t1_.size(); }
  std::size_t t2_size() const { return t2_.size(); }
  std::size_t ghost_recency_size() const { return b1_.size(); }
  std::size_t ghost_frequency_size() const { return b2_.size(); }

 private:
  struct Entry {
    PageId page;
    bool ref = false;
  };
  using Clock = std::list<Entry>;   // front = hand position, back = tail
  using Ghost = std::list<PageId>;  // front = MRU, back = LRU

  struct Where {
    bool in_t2 = false;
    Clock::iterator it;
  };

  void ghost_insert(Ghost& list, std::unordered_map<PageId, Ghost::iterator>& map,
                    PageId page, std::size_t cap);

  std::size_t capacity_;
  double p_ = 0.0;
  Clock t1_;
  Clock t2_;
  Ghost b1_;
  Ghost b2_;
  std::unordered_map<PageId, Where> resident_;
  std::unordered_map<PageId, Ghost::iterator> b1_index_;
  std::unordered_map<PageId, Ghost::iterator> b2_index_;
};

}  // namespace hymem::policy
