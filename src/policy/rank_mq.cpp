#include "policy/rank_mq.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace hymem::policy {

RankMqPolicy::RankMqPolicy(os::Vmm& vmm, unsigned promote_level,
                           std::uint64_t lifetime)
    : HybridPolicy(vmm), promote_level_(promote_level), lifetime_(lifetime) {
  HYMEM_CHECK_MSG(vmm.frames(Tier::kDram) > 0 && vmm.frames(Tier::kNvm) > 0,
                  "rank-mq needs both modules populated");
  HYMEM_CHECK(promote_level < kLevels);
  HYMEM_CHECK(lifetime > 0);
}

unsigned RankMqPolicy::level_of(std::uint64_t count) {
  if (count == 0) return 0;
  const auto level = static_cast<unsigned>(std::bit_width(count) - 1);
  return std::min(level, kLevels - 1);
}

void RankMqPolicy::enqueue(Node& node) {
  // The caller must have dequeued the node from its previous (tier, level)
  // queue before mutating either field — intrusive lists track size per
  // list object, so unlinking through the wrong queue corrupts counts.
  HYMEM_CHECK(!node.hook.is_linked());
  node.level = level_of(node.count);
  queue(node.tier, node.level).push_front(node);
}

void RankMqPolicy::dequeue(Node& node) {
  if (node.hook.is_linked()) queue(node.tier, node.level).erase(node);
}

RankMqPolicy::Node* RankMqPolicy::coldest(Tier tier) {
  for (unsigned level = 0; level < kLevels; ++level) {
    if (Node* victim = queue(tier, level).back()) return victim;
  }
  return nullptr;
}

void RankMqPolicy::age_step() {
  // Lazy expiration: inspect one queue tail per access; a page untouched for
  // `lifetime` accesses loses half its rank credit and drops a level.
  age_cursor_ = (age_cursor_ + 1) % (2 * kLevels);
  const Tier tier = age_cursor_ < kLevels ? Tier::kDram : Tier::kNvm;
  const unsigned level = age_cursor_ % kLevels;
  if (level == 0) return;  // nothing below level 0
  Node* stale = queue(tier, level).back();
  if (stale == nullptr || clock_ - stale->last_access < lifetime_) return;
  dequeue(*stale);
  stale->count /= 2;
  stale->last_access = clock_;
  ++expirations_;
  enqueue(*stale);
}

void RankMqPolicy::evict_coldest_nvm() {
  Node* victim = coldest(Tier::kNvm);
  HYMEM_CHECK_MSG(victim != nullptr, "NVM full but rank queues empty");
  dequeue(*victim);
  vmm_.evict(victim->page);
  nodes_.erase(victim->page);
}

Nanoseconds RankMqPolicy::try_promote(Node& node) {
  if (vmm_.has_free_frame(Tier::kDram)) {
    const Nanoseconds latency = vmm_.migrate(node.page, Tier::kDram);
    dequeue(node);
    node.tier = Tier::kDram;
    enqueue(node);
    ++promotions_;
    return latency;
  }
  Node* victim = coldest(Tier::kDram);
  HYMEM_CHECK(victim != nullptr);
  // Rank order decides: only displace a strictly colder page.
  if (victim->level >= node.level) return 0;
  const Nanoseconds latency = vmm_.swap(node.page, victim->page);
  dequeue(node);
  dequeue(*victim);
  node.tier = Tier::kDram;
  victim->tier = Tier::kNvm;
  enqueue(node);
  enqueue(*victim);
  ++promotions_;
  ++demotions_;
  return latency;
}

Nanoseconds RankMqPolicy::on_access(PageId page, AccessType type) {
  ++clock_;
  age_step();
  const auto it = nodes_.find(page);
  if (it != nodes_.end()) {
    Node& node = *it->second;
    const Nanoseconds serve = vmm_.access(page, type);
    dequeue(node);
    ++node.count;
    node.last_access = clock_;
    enqueue(node);
    if (node.tier == Tier::kNvm && node.level >= promote_level_) {
      return serve + try_promote(node);
    }
    return serve;
  }
  // Page fault: new pages enter the slow tier (RaPP's conservative
  // placement) and earn DRAM through rank.
  if (!vmm_.has_free_frame(Tier::kNvm)) evict_coldest_nvm();
  const Nanoseconds latency = vmm_.fault_in(page, Tier::kNvm);
  if (type == AccessType::kWrite) vmm_.touch_dirty(page);
  auto owned = std::make_unique<Node>();
  Node* node = owned.get();
  node->page = page;
  node->count = 1;
  node->last_access = clock_;
  node->tier = Tier::kNvm;
  nodes_.emplace(page, std::move(owned));
  enqueue(*node);
  return latency;
}

}  // namespace hymem::policy
