// LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD'93), instantiated as
// LRU-2: the victim is the page whose K-th most recent reference is oldest
// (pages with fewer than K references are evicted first, oldest first).
// Included because it is the classic "reference density" alternative to the
// paper's windowed counters for telling hot pages from one-shot touches.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "policy/replacement.hpp"

namespace hymem::policy {

/// LRU-K with configurable K (default 2).
class LruKPolicy final : public ReplacementPolicy {
 public:
  explicit LruKPolicy(std::size_t capacity, unsigned k = 2);

  std::string_view name() const override { return "lru-k"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return pages_.size(); }
  bool contains(PageId page) const override { return pages_.count(page) > 0; }

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  unsigned k() const { return k_; }
  /// K-th most recent reference time of a tracked page (0 when it has had
  /// fewer than K references).
  std::uint64_t kth_reference(PageId page) const;

 private:
  struct History {
    // Circular buffer of the last K reference times; times[cursor] is the
    // oldest retained (i.e. the K-th most recent once full).
    std::vector<std::uint64_t> times;
    std::size_t cursor = 0;
    std::uint64_t count = 0;

    std::uint64_t kth() const;    // 0 until K references have happened
    std::uint64_t newest() const;
  };

  struct Key {
    std::uint64_t kth;     // primary: oldest K-th reference evicts first
    std::uint64_t newest;  // tie-break: least recently touched first
    PageId page;
    auto operator<=>(const Key&) const = default;
  };

  Key key_of(const History& h, PageId page) const;
  void touch(PageId page);

  std::size_t capacity_;
  unsigned k_;
  std::uint64_t clock_ = 0;
  std::unordered_map<PageId, History> pages_;
  std::set<Key> order_;
};

}  // namespace hymem::policy
