// 2Q replacement (Johnson & Shasha, VLDB'94), simplified full version:
// new pages enter a FIFO probation queue (A1in); pages evicted from
// probation are remembered in a ghost queue (A1out); a re-reference while
// in the ghost queue promotes the page into the protected LRU (Am).
// Included as the two-queue ancestor of the paper's two-LRU structure.
#pragma once

#include <list>
#include <unordered_map>

#include "policy/replacement.hpp"

namespace hymem::policy {

/// 2Q with Kin = capacity/4 probation share and Kout = capacity/2 ghosts.
class TwoQPolicy final : public ReplacementPolicy {
 public:
  explicit TwoQPolicy(std::size_t capacity);

  std::string_view name() const override { return "2q"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return a1in_.size() + am_.size(); }
  bool contains(PageId page) const override;

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  std::size_t probation_size() const { return a1in_.size(); }
  std::size_t protected_size() const { return am_.size(); }
  std::size_t ghost_size() const { return a1out_.size(); }

 private:
  using Queue = std::list<PageId>;  // front = newest / MRU

  enum class Where : std::uint8_t { kProbation, kProtected };
  struct Slot {
    Where where;
    Queue::iterator it;
  };

  void remember_ghost(PageId page);

  std::size_t capacity_;
  std::size_t kin_;
  std::size_t kout_;
  Queue a1in_;
  Queue am_;
  Queue a1out_;
  std::unordered_map<PageId, Slot> resident_;
  std::unordered_map<PageId, Queue::iterator> ghosts_;
};

}  // namespace hymem::policy
