#include "policy/factory.hpp"

#include <stdexcept>

#include "policy/car.hpp"
#include "policy/clock.hpp"
#include "policy/clock_pro.hpp"
#include "policy/fifo.hpp"
#include "policy/lfu.hpp"
#include "policy/lirs.hpp"
#include "policy/lru.hpp"
#include "policy/lru_k.hpp"
#include "policy/random_repl.hpp"
#include "policy/two_q.hpp"

namespace hymem::policy {

std::vector<std::string> replacement_names() {
  return {"lru", "fifo", "clock", "clock-pro", "car", "lirs", "lfu", "lru-k",
          "2q", "random"};
}

std::unique_ptr<ReplacementPolicy> make_replacement(const std::string& name,
                                                    std::size_t capacity,
                                                    std::uint64_t seed) {
  if (name == "lru") return std::make_unique<LruPolicy>(capacity);
  if (name == "fifo") return std::make_unique<FifoPolicy>(capacity);
  if (name == "clock") return std::make_unique<ClockPolicy>(capacity);
  if (name == "clock-pro") return std::make_unique<ClockProPolicy>(capacity);
  if (name == "car") return std::make_unique<CarPolicy>(capacity);
  if (name == "lirs") return std::make_unique<LirsPolicy>(capacity);
  if (name == "lfu") return std::make_unique<LfuPolicy>(capacity);
  if (name == "lru-k") return std::make_unique<LruKPolicy>(capacity);
  if (name == "2q") return std::make_unique<TwoQPolicy>(capacity);
  if (name == "random") return std::make_unique<RandomPolicy>(capacity, seed);
  // Enumerate what *would* have worked: the name usually arrives from a
  // CLI flag, and the caller can't query the registry from an exception.
  std::string msg = "unknown replacement policy: " + name + " (known: ";
  bool first = true;
  for (const std::string& known : replacement_names()) {
    if (!first) msg += ", ";
    msg += known;
    first = false;
  }
  throw std::invalid_argument(msg + ")");
}

}  // namespace hymem::policy
