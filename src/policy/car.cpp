#include "policy/car.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hymem::policy {

CarPolicy::CarPolicy(std::size_t capacity) : capacity_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "CAR capacity must be positive");
}

void CarPolicy::on_hit(PageId page, AccessType /*type*/) {
  const auto it = resident_.find(page);
  HYMEM_CHECK_MSG(it != resident_.end(), "hit on untracked page");
  it->second.it->ref = true;
}

void CarPolicy::ghost_insert(Ghost& list,
                             std::unordered_map<PageId, Ghost::iterator>& map,
                             PageId page, std::size_t cap) {
  list.push_front(page);
  map.emplace(page, list.begin());
  while (list.size() > cap) {
    map.erase(list.back());
    list.pop_back();
  }
}

void CarPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full CAR");
  const auto g1 = b1_index_.find(page);
  const auto g2 = b2_index_.find(page);
  const auto c = static_cast<double>(capacity_);
  if (g1 != b1_index_.end()) {
    // Recency ghost hit: grow T1's share.
    const double delta = std::max(
        1.0, static_cast<double>(b2_.size()) / static_cast<double>(b1_.size()));
    p_ = std::min(p_ + delta, c);
    b1_.erase(g1->second);
    b1_index_.erase(g1);
    t2_.push_back(Entry{page, false});
    resident_.emplace(page, Where{true, std::prev(t2_.end())});
  } else if (g2 != b2_index_.end()) {
    // Frequency ghost hit: shrink T1's share.
    const double delta = std::max(
        1.0, static_cast<double>(b1_.size()) / static_cast<double>(b2_.size()));
    p_ = std::max(p_ - delta, 0.0);
    b2_.erase(g2->second);
    b2_index_.erase(g2);
    t2_.push_back(Entry{page, false});
    resident_.emplace(page, Where{true, std::prev(t2_.end())});
  } else {
    // Brand-new page: history maintenance, then tail of T1. Strict
    // inequalities: at the steady state |T1|+|B1| == c the incoming page
    // replaces the T1 page that just became a B1 ghost, so nothing must be
    // discarded (the FAST'04 pseudocode checks == c *before* replace()).
    if (t1_.size() + b1_.size() > capacity_ && !b1_.empty()) {
      b1_index_.erase(b1_.back());
      b1_.pop_back();
    } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >
                   2 * capacity_ &&
               !b2_.empty()) {
      b2_index_.erase(b2_.back());
      b2_.pop_back();
    }
    t1_.push_back(Entry{page, false});
    resident_.emplace(page, Where{false, std::prev(t1_.end())});
  }
}

std::optional<PageId> CarPolicy::select_victim() {
  if (size() == 0) return std::nullopt;
  // The replace() loop of the CAR paper: referenced heads get second
  // chances (T1 heads additionally graduate to T2).
  std::size_t guard = 2 * (t1_.size() + t2_.size()) + 2;
  while (guard-- > 0) {
    const bool from_t1 =
        !t1_.empty() &&
        (static_cast<double>(t1_.size()) >= std::max(1.0, p_) || t2_.empty());
    if (from_t1) {
      Entry head = t1_.front();
      if (!head.ref) return head.page;
      t1_.pop_front();
      t2_.push_back(Entry{head.page, false});
      resident_[head.page] = Where{true, std::prev(t2_.end())};
    } else {
      HYMEM_CHECK(!t2_.empty());
      Entry head = t2_.front();
      if (!head.ref) return head.page;
      t2_.pop_front();
      t2_.push_back(Entry{head.page, false});
      resident_[head.page] = Where{true, std::prev(t2_.end())};
    }
  }
  HYMEM_CHECK_MSG(false, "CAR replace loop failed to find a victim");
  return std::nullopt;
}

void CarPolicy::erase(PageId page) {
  const auto it = resident_.find(page);
  HYMEM_CHECK_MSG(it != resident_.end(), "erase of untracked page");
  if (it->second.in_t2) {
    t2_.erase(it->second.it);
    ghost_insert(b2_, b2_index_, page, capacity_);
  } else {
    t1_.erase(it->second.it);
    ghost_insert(b1_, b1_index_, page, capacity_);
  }
  resident_.erase(it);
}

}  // namespace hymem::policy
