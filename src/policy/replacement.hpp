// Single-module page replacement policy interface.
//
// These manage the contents of ONE memory module (used directly by the
// DRAM-only / NVM-only baselines, and as building blocks inside hybrid
// policies). They track membership and pick victims; residency mechanics
// (frames, page table) belong to the VMM.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "util/types.hpp"

namespace hymem::policy {

/// Replacement policy over a fixed-capacity set of pages.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual std::string_view name() const = 0;

  /// Maximum number of pages the policy may hold.
  virtual std::size_t capacity() const = 0;
  /// Pages currently tracked.
  virtual std::size_t size() const = 0;
  virtual bool contains(PageId page) const = 0;
  bool full() const { return size() >= capacity(); }

  /// Hints that `page` is about to be looked up: warms the membership
  /// index's cache line. No architectural effect; no-op by default.
  virtual void prefetch(PageId /*page*/) const {}

  /// Notifies a hit on a tracked page.
  virtual void on_hit(PageId page, AccessType type) = 0;

  /// Starts tracking a new page (must not be present; must not be full —
  /// callers evict first via select_victim()/erase()).
  virtual void insert(PageId page, AccessType type) = 0;

  /// Chooses the page to evict next (without removing it). nullopt iff empty.
  virtual std::optional<PageId> select_victim() = 0;

  /// Stops tracking a page (eviction or migration elsewhere).
  virtual void erase(PageId page) = 0;
};

}  // namespace hymem::policy
