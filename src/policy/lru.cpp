#include "policy/lru.hpp"

#include "util/check.hpp"

namespace hymem::policy {

LruPolicy::LruPolicy(std::size_t capacity) : capacity_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "LRU capacity must be positive");
  HYMEM_CHECK_MSG(capacity < kNoNode, "LRU capacity exceeds 32-bit indexing");
  nodes_.resize(capacity + 1);
  nodes_[sentinel()] = Node{kInvalidPage, sentinel(), sentinel()};
  free_.reserve(capacity);
  // Pop order hands out low indices first, keeping the live prefix dense.
  for (std::size_t i = capacity; i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  index_.reserve(capacity);
}

void LruPolicy::on_hit(PageId page, AccessType /*type*/) {
  const std::uint32_t i = lookup(page);
  HYMEM_CHECK_MSG(i != kNoNode, "hit on untracked page");
  if (nodes_[sentinel()].next == i) return;  // already MRU
  unlink(i);
  link_front(i);
}

void LruPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full LRU");
  const auto [slot, inserted] = index_.try_emplace(page);
  HYMEM_CHECK_MSG(inserted, "insert of tracked page");
  const std::uint32_t i = free_.back();
  free_.pop_back();
  nodes_[i].page = page;
  *slot = i;
  if (last_key_ == page) last_lookup_ = i;
  link_front(i);
}

std::optional<PageId> LruPolicy::select_victim() {
  if (index_.empty()) return std::nullopt;
  const std::uint32_t victim = nodes_[sentinel()].prev;
  // The caller's next move is erase(victim): start pulling the victim's
  // index slot and list neighbours now — the LRU tail is cold by
  // definition, so both are otherwise guaranteed cache misses.
  index_.prefetch(nodes_[victim].page);
  __builtin_prefetch(&nodes_[nodes_[victim].prev]);
  return nodes_[victim].page;
}

void LruPolicy::erase(PageId page) {
  const std::optional<std::uint32_t> i = index_.take(page);
  HYMEM_CHECK_MSG(i.has_value(), "erase of untracked page");
  forget(page);
  unlink(*i);
  free_.push_back(*i);
}

}  // namespace hymem::policy
