#include "policy/lru.hpp"

#include "util/check.hpp"

namespace hymem::policy {

LruPolicy::LruPolicy(std::size_t capacity) : capacity_(capacity) {
  HYMEM_CHECK_MSG(capacity > 0, "LRU capacity must be positive");
}

void LruPolicy::on_hit(PageId page, AccessType /*type*/) {
  const auto it = nodes_.find(page);
  HYMEM_CHECK_MSG(it != nodes_.end(), "hit on untracked page");
  list_.move_to_front(*it->second);
}

void LruPolicy::insert(PageId page, AccessType /*type*/) {
  HYMEM_CHECK_MSG(!contains(page), "insert of tracked page");
  HYMEM_CHECK_MSG(size() < capacity_, "insert into full LRU");
  auto node = std::make_unique<Node>();
  node->page = page;
  list_.push_front(*node);
  nodes_.emplace(page, std::move(node));
}

std::optional<PageId> LruPolicy::select_victim() {
  const Node* victim = list_.back();
  if (victim == nullptr) return std::nullopt;
  return victim->page;
}

void LruPolicy::erase(PageId page) {
  const auto it = nodes_.find(page);
  HYMEM_CHECK_MSG(it != nodes_.end(), "erase of untracked page");
  list_.erase(*it->second);
  nodes_.erase(it);
}

}  // namespace hymem::policy
