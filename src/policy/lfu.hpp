// LFU (Least Frequently Used) with FIFO tie-breaking. Included as the
// frequency-only endpoint of the baseline spectrum.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>

#include "policy/replacement.hpp"

namespace hymem::policy {

/// LFU replacement; O(log n) per operation via an ordered (count, seq) index.
class LfuPolicy final : public ReplacementPolicy {
 public:
  explicit LfuPolicy(std::size_t capacity);

  std::string_view name() const override { return "lfu"; }
  std::size_t capacity() const override { return capacity_; }
  std::size_t size() const override { return pages_.size(); }
  bool contains(PageId page) const override { return pages_.count(page) > 0; }

  void on_hit(PageId page, AccessType type) override;
  void insert(PageId page, AccessType type) override;
  std::optional<PageId> select_victim() override;
  void erase(PageId page) override;

  /// Access count of a tracked page (for tests).
  std::uint64_t frequency(PageId page) const;

 private:
  struct Key {
    std::uint64_t count;
    std::uint64_t seq;  // insertion order; older evicts first on ties
    PageId page;
    auto operator<=>(const Key&) const = default;
  };

  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::set<Key> order_;
  std::unordered_map<PageId, Key> pages_;
};

}  // namespace hymem::policy
