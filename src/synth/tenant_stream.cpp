#include "synth/tenant_stream.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/zipf.hpp"

namespace hymem::synth {

namespace {

std::uint64_t hot_set_size(const TenantProfile& profile) {
  const auto k = static_cast<std::uint64_t>(
      std::ceil(profile.hot_fraction * static_cast<double>(profile.pages)));
  return std::clamp<std::uint64_t>(k, 1, profile.pages);
}

/// Per-tenant generator state: constructed at (re-)arrival so a returning
/// tenant restarts like a fresh process (scan cursor at 0). The Zipf alias
/// table is built once per tenant and kept — construction consumes no
/// randomness, so caching it never perturbs the stream.
struct TenantGenState {
  std::uint64_t scan_cursor = 0;
};

}  // namespace

std::string to_string(TenantWorkloadKind kind) {
  switch (kind) {
    case TenantWorkloadKind::kGupsHotset: return "gups-hotset";
    case TenantWorkloadKind::kZipfKv: return "zipf-kv";
    default: return "scan";
  }
}

std::vector<PageId> TenantStream::hot_pages(std::uint32_t tenant) const {
  HYMEM_CHECK(tenant < tenants.size());
  const std::uint64_t k = hot_set_size(tenants[tenant]);
  std::vector<PageId> pages(k);
  for (std::uint64_t i = 0; i < k; ++i) pages[i] = i;
  return pages;
}

TenantStream generate_tenant_stream(const TenantChurnSpec& spec,
                                    const GeneratorOptions& options) {
  for (const TenantProfile& p : spec.tenants) {
    if (p.pages == 0) {
      throw std::invalid_argument("tenant profile needs pages >= 1");
    }
    if (p.rate_weight == 0) {
      throw std::invalid_argument("tenant profile needs rate_weight >= 1");
    }
  }
  if (spec.initial_active > spec.tenants.size()) {
    throw std::invalid_argument("initial_active exceeds tenant count");
  }

  TenantStream stream;
  stream.name = spec.name;
  stream.page_size = options.page_size;
  stream.tenants = spec.tenants;

  const auto n = static_cast<std::uint32_t>(spec.tenants.size());
  std::uint64_t state = spec.seed;
  Rng churn_rng(splitmix64(state));
  Rng access_rng(splitmix64(state));

  // Active tenants stay sorted by id so every weighted draw walks a
  // canonical order; pending tenants arrive in id order, re-arrivals in
  // departure (FIFO) order.
  std::vector<std::uint32_t> active;
  std::deque<std::uint32_t> pending;
  std::deque<std::uint32_t> departed;
  std::vector<TenantGenState> gen(n);
  std::vector<std::unique_ptr<ZipfSampler>> zipf(n);

  const auto admit = [&](std::uint32_t tenant) {
    if (tenant >= n) return;
    const auto it = std::lower_bound(active.begin(), active.end(), tenant);
    if (it != active.end() && *it == tenant) return;  // already active
    active.insert(it, tenant);
    gen[tenant] = TenantGenState{};
    pending.erase(std::remove(pending.begin(), pending.end(), tenant),
                  pending.end());
    departed.erase(std::remove(departed.begin(), departed.end(), tenant),
                   departed.end());
    stream.ops.push_back({TenantOp::Kind::kArrive, tenant, {}});
  };
  const auto remove_active = [&](std::uint32_t tenant) {
    const auto it = std::lower_bound(active.begin(), active.end(), tenant);
    if (it == active.end() || *it != tenant) return;
    active.erase(it);
    if (spec.rearrival) departed.push_back(tenant);
    stream.ops.push_back({TenantOp::Kind::kDepart, tenant, {}});
  };

  for (std::uint32_t t = 0; t < spec.initial_active; ++t) admit(t);
  for (std::uint32_t t = spec.initial_active; t < n; ++t) {
    pending.push_back(t);
  }

  // Explicit schedule in at_access order; stable sort preserves the spec's
  // ordering of same-tick events.
  std::vector<TenantScheduleEvent> schedule = spec.schedule;
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const TenantScheduleEvent& a,
                      const TenantScheduleEvent& b) {
                     return a.at_access < b.at_access;
                   });
  std::size_t next_event = 0;
  bool flash_fired = spec.flash_arrivals == 0;

  const auto pop_next_arrival = [&]() -> bool {
    if (!pending.empty()) {
      admit(pending.front());
      return true;
    }
    if (spec.rearrival && !departed.empty()) {
      admit(departed.front());
      return true;
    }
    return false;
  };

  while (stream.accesses < spec.total_accesses) {
    // Due explicit events first.
    while (next_event < schedule.size() &&
           schedule[next_event].at_access <= stream.accesses) {
      const TenantScheduleEvent& e = schedule[next_event++];
      if (e.arrive) {
        admit(e.tenant);
      } else {
        remove_active(e.tenant);
      }
    }
    // Flash crowd: a burst of simultaneous arrivals.
    if (!flash_fired && stream.accesses >= spec.flash_at) {
      flash_fired = true;
      for (std::uint32_t i = 0; i < spec.flash_arrivals; ++i) {
        if (!pop_next_arrival()) break;
      }
    }
    // Stochastic churn.
    if (spec.arrival_prob > 0.0 && churn_rng.next_bool(spec.arrival_prob)) {
      pop_next_arrival();
    }
    if (spec.departure_prob > 0.0 && !active.empty() &&
        churn_rng.next_bool(spec.departure_prob)) {
      remove_active(active[churn_rng.next_below(active.size())]);
    }
    // Nobody to serve: fast-forward to the next possible arrival (explicit
    // events can't fire — the access count is frozen — so pull from the
    // pending/departed pools; if those are dry too, pull the next explicit
    // arrival forward; otherwise the stream ends here).
    if (active.empty()) {
      if (pop_next_arrival()) continue;
      bool advanced = false;
      while (next_event < schedule.size()) {
        const TenantScheduleEvent& e = schedule[next_event++];
        if (e.arrive && e.tenant < n) {
          admit(e.tenant);
          advanced = true;
          break;
        }
      }
      if (advanced) continue;
      break;
    }

    // Weighted tenant draw over the sorted active set.
    std::uint64_t total_weight = 0;
    for (const std::uint32_t t : active) {
      total_weight += spec.tenants[t].rate_weight;
    }
    std::uint64_t draw = access_rng.next_below(total_weight);
    std::uint32_t tenant = active.back();
    for (const std::uint32_t t : active) {
      const std::uint64_t w = spec.tenants[t].rate_weight;
      if (draw < w) {
        tenant = t;
        break;
      }
      draw -= w;
    }

    // One access from the tenant's profile.
    const TenantProfile& profile = spec.tenants[tenant];
    PageId page = 0;
    AccessType type = access_rng.next_bool(profile.write_fraction)
                          ? AccessType::kWrite
                          : AccessType::kRead;
    switch (profile.kind) {
      case TenantWorkloadKind::kGupsHotset: {
        const std::uint64_t hot = hot_set_size(profile);
        page = access_rng.next_bool(profile.hot_locality)
                   ? access_rng.next_below(hot)
                   : access_rng.next_below(profile.pages);
        break;
      }
      case TenantWorkloadKind::kZipfKv: {
        if (zipf[tenant] == nullptr) {
          zipf[tenant] = std::make_unique<ZipfSampler>(profile.pages,
                                                       profile.zipf_alpha);
        }
        page = zipf[tenant]->sample(access_rng);
        break;
      }
      default: {  // kScan: sequential sweep, no reuse until wraparound.
        page = gen[tenant].scan_cursor;
        gen[tenant].scan_cursor = (page + 1) % profile.pages;
        break;
      }
    }
    TenantOp op;
    op.kind = TenantOp::Kind::kAccess;
    op.tenant = tenant;
    op.access = {page * options.page_size, type};
    stream.ops.push_back(op);
    ++stream.accesses;
  }
  return stream;
}

}  // namespace hymem::synth
