// Multi-tenant traffic synthesis: N independent address spaces interleaved
// into one serving stream, with tenant churn (arrivals, departures, flash
// crowds).
//
// The single-workload generator (synth/generator) models one PARSEC-shaped
// process; this layer models the serving-system axis the paper never
// touches: many small address spaces competing for one DRAM/NVM budget.
// The per-tenant profiles follow the related repos' serving workloads:
//   * kGupsHotset — skpupil's gups.c hot-set GUPS: a uniform hot set inside
//     a larger uniform footprint, read-modify-write flavoured;
//   * kZipfKv    — hemem-boost's KV-store harness shape: Zipf-ranked keys
//     (rank 0 most popular), GET/PUT mix;
//   * kScan      — an antagonist: a sequential sweep over the whole tenant
//     footprint with no reuse, the classic isolation attack (one tenant's
//     scan must not evict everyone's hot set).
//
// Every stream is a pure function of (spec, options): churn decisions and
// access draws come from one splitmix64-seeded generator, so a stream is
// reproducible from its seed alone regardless of how the consumer shards
// or parallelizes the replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "synth/generator.hpp"
#include "trace/access.hpp"

namespace hymem::synth {

/// Traffic shape of one tenant's address space.
enum class TenantWorkloadKind : std::uint8_t {
  kGupsHotset = 0,
  kZipfKv = 1,
  kScan = 2,
};

std::string to_string(TenantWorkloadKind kind);

/// Generator parameters for one tenant.
struct TenantProfile {
  TenantWorkloadKind kind = TenantWorkloadKind::kZipfKv;
  std::uint64_t pages = 256;   ///< Tenant-local footprint in pages (>= 1).
  /// Fraction of the footprint forming the hot set (GUPS target region;
  /// also the "hot pages" set the retention metric watches for every kind).
  double hot_fraction = 0.1;
  double hot_locality = 0.9;   ///< GUPS: P(access lands in the hot set).
  double zipf_alpha = 0.99;    ///< KV: popularity skew over key ranks.
  double write_fraction = 0.1; ///< GUPS update rate / KV PUT rate.
  /// Interleave weight: relative request rate among active tenants.
  std::uint64_t rate_weight = 1;
};

/// One explicit churn event, applied when the stream reaches `at_access`
/// emitted accesses. Explicit events make boundary schedules (0 tenants,
/// all-depart-then-arrive) exactly scriptable; the stochastic knobs below
/// layer on top for fuzzing.
struct TenantScheduleEvent {
  std::uint64_t at_access = 0;
  std::uint32_t tenant = 0;
  bool arrive = true;  ///< false = depart.
};

/// The whole multi-tenant scenario.
struct TenantChurnSpec {
  std::string name = "tenants";
  std::vector<TenantProfile> tenants;
  std::uint64_t total_accesses = 0;
  /// Tenants [0, initial_active) are admitted before the first access; the
  /// rest are pending and join via arrivals or the flash crowd.
  std::uint32_t initial_active = 0;
  /// Per emitted access: probability the next pending tenant arrives.
  double arrival_prob = 0.0;
  /// Per emitted access: probability one random active tenant departs.
  double departure_prob = 0.0;
  /// Departed tenants become pending again (re-arrival churn) instead of
  /// leaving for good.
  bool rearrival = false;
  /// Flash crowd: at `flash_at` emitted accesses, the next `flash_arrivals`
  /// pending tenants all arrive at once (0 arrivals = disabled).
  std::uint64_t flash_at = 0;
  std::uint32_t flash_arrivals = 0;
  /// Explicit schedule, applied in at_access order (stable within a tick).
  std::vector<TenantScheduleEvent> schedule;
  std::uint64_t seed = 42;
};

/// One operation of the interleaved stream.
struct TenantOp {
  enum class Kind : std::uint8_t { kAccess = 0, kArrive = 1, kDepart = 2 };
  Kind kind = Kind::kAccess;
  std::uint32_t tenant = 0;
  trace::MemAccess access;  ///< kAccess only.
};

/// The generated scenario: ops in serving order plus the per-tenant
/// metadata consumers need (profiles for hot-set queries, the page size the
/// addresses were laid out with).
struct TenantStream {
  std::string name;
  std::uint64_t page_size = 4096;
  std::vector<TenantProfile> tenants;  ///< Indexed by tenant id.
  std::vector<TenantOp> ops;
  std::uint64_t accesses = 0;  ///< Count of kAccess ops.

  /// The tenant's hot set as local page IDs: the first
  /// ceil(hot_fraction * pages) pages (GUPS hot region; KV top ranks).
  std::vector<PageId> hot_pages(std::uint32_t tenant) const;
};

/// Generates one stream. Deterministic in (spec, options); options.seed is
/// ignored in favour of spec.seed so one scenario seed pins everything.
TenantStream generate_tenant_stream(const TenantChurnSpec& spec,
                                    const GeneratorOptions& options = {});

}  // namespace hymem::synth
