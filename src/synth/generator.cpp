#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/zipf.hpp"

namespace hymem::synth {

namespace {

/// Deterministic hash used for seed mixing.
std::uint64_t mix_hash(std::uint64_t v) {
  std::uint64_t s = v * 0x9e3779b97f4a7c15ULL + 0x7f4a7c159e3779b9ULL;
  return splitmix64(s);
}

}  // namespace

trace::Trace generate(const WorkloadProfile& profile,
                      const GeneratorOptions& options) {
  HYMEM_CHECK(options.page_size > 0 && options.line_size > 0);
  HYMEM_CHECK(options.line_size <= options.page_size);
  const std::uint64_t total = profile.total_accesses();
  const std::uint64_t n_pages = profile.footprint_pages(options.page_size);

  Rng rng(options.seed ^ mix_hash(n_pages));
  const std::uint64_t hot_pages =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
          profile.hot_fraction * static_cast<double>(n_pages)));
  // The active region: everything but explicit cold accesses stays inside.
  const std::uint64_t region_pages = std::max(
      hot_pages, static_cast<std::uint64_t>(profile.resident_fraction *
                                            static_cast<double>(n_pages)));
  ZipfSampler zipf(hot_pages, profile.zipf_alpha);
  // Write-hot subset: the first write_page_fraction of hot ranks.
  const std::uint64_t write_hot_pages = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(profile.write_page_fraction *
                                    static_cast<double>(hot_pages)));
  ZipfSampler write_zipf(write_hot_pages, profile.zipf_alpha);

  // Burst continuation probability so the mean burst length matches.
  const double burst_cont =
      profile.burst_mean > 0.0 ? profile.burst_mean / (1.0 + profile.burst_mean)
                               : 0.0;

  trace::Trace out(profile.name);
  out.reserve(total);

  std::uint64_t remaining_reads = profile.reads;
  std::uint64_t remaining_writes = profile.writes;
  std::uint64_t churn_offset = 0;
  std::uint64_t scan_cursor = rng.next_below(region_pages);

  // Footprint coverage machinery.
  std::vector<bool> covered(options.ensure_full_footprint ? n_pages : 0, false);
  std::uint64_t uncovered = options.ensure_full_footprint ? n_pages : 0;
  std::uint64_t cover_cursor = 0;
  const std::uint64_t cover_stride =
      options.ensure_full_footprint && total > n_pages
          ? std::max<std::uint64_t>(1, total / n_pages / 2)
          : 1;

  // Burst state: repeat last_page for burst_left further accesses.
  PageId last_page = 0;
  std::uint64_t burst_left = 0;

  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint64_t remaining = total - i;
    // --- Hot-set rotation (canneal/fluidanimate churn behaviour). ---
    if (profile.churn_period > 0 && i > 0 && i % profile.churn_period == 0) {
      const auto shift = static_cast<std::uint64_t>(
          profile.churn_shift * static_cast<double>(hot_pages));
      churn_offset = (churn_offset + std::max<std::uint64_t>(1, shift)) % n_pages;
      burst_left = 0;
    }

    // --- Pick the page. ---
    PageId page;
    bool forced_coverage = false;
    bool in_burst = false;
    if (uncovered > 0 && (remaining <= uncovered || i % cover_stride == 0)) {
      // Forced coverage of a not-yet-touched page.
      while (covered[cover_cursor]) ++cover_cursor;
      page = cover_cursor;
      forced_coverage = true;
    } else if (burst_left > 0) {
      --burst_left;
      page = last_page;
      in_burst = true;
    } else {
      const double mode = rng.next_double();
      const double scan_hi = profile.scan_fraction;
      const double hot_hi = scan_hi + profile.hot_locality;
      const double cold_hi = hot_hi + profile.cold_fraction;
      if (mode < scan_hi) {
        // Sequential scan confined to the active region.
        scan_cursor = (scan_cursor + 1) % region_pages;
        page = (scan_cursor + churn_offset) % n_pages;
      } else if (mode < hot_hi) {
        const std::uint64_t rank = zipf.sample(rng);
        page = (rank + churn_offset) % n_pages;
        if (rng.next_bool(profile.burst_prob)) {
          burst_left = rng.next_geometric(burst_cont);
        }
      } else if (mode < cold_hi) {
        // Cold access anywhere in the footprint: the steady-state fault
        // source.
        page = rng.next_below(n_pages);
      } else {
        // Warm access inside the active region.
        page = (rng.next_below(region_pages) + churn_offset) % n_pages;
        if (rng.next_bool(profile.warm_burst_prob)) {
          burst_left = rng.next_geometric(burst_cont);
        }
      }
    }

    // --- Pick the type: feedback from the remaining budget keeps the totals
    // exact (Table III read/write counts are matched to the access). ---
    AccessType type;
    if (remaining_writes == 0) {
      type = AccessType::kRead;
    } else if (remaining_reads == 0) {
      type = AccessType::kWrite;
    } else {
      const double base = static_cast<double>(remaining_writes) /
                          static_cast<double>(remaining);
      type = rng.next_bool(base) ? AccessType::kWrite : AccessType::kRead;
    }
    if (type == AccessType::kWrite) {
      --remaining_writes;
      // Write locality: most writes are redirected into the write-hot subset
      // of the hot set (which a sane policy keeps in DRAM). Coverage touches
      // and burst repetitions keep their page.
      if (!forced_coverage && !in_burst &&
          rng.next_bool(profile.write_locality)) {
        page = (write_zipf.sample(rng) + churn_offset) % n_pages;
      }
    } else {
      --remaining_reads;
    }
    last_page = page;
    if (!covered.empty() && !covered[page]) {
      covered[page] = true;
      --uncovered;
    }

    const std::uint64_t lines_per_page = options.page_size / options.line_size;
    const Addr addr = page * options.page_size +
                      rng.next_below(lines_per_page) * options.line_size;
    out.append(addr, type);
  }
  HYMEM_CHECK(remaining_reads == 0 && remaining_writes == 0);
  return out;
}

}  // namespace hymem::synth
