// Workload profiles calibrated to the paper's Table III.
//
// The paper captures PARSEC-3.0 memory traces with COTSon; offline we
// synthesize traces whose Table III columns (working-set size, read/write
// counts) match exactly and whose locality structure reproduces the
// per-workload behaviours the paper calls out:
//   * blackscholes    — read-only (Fig. 2a discussion)
//   * streamcluster   — tiny footprint + huge read burst => dynamic-power
//                       dominated (Fig. 1), hybrid-hostile (Sec. V.B)
//   * canneal,
//     fluidanimate    — pages migrate to NVM and bounce straight back =>
//                       hot-set churn (Fig. 2a discussion)
//   * raytrace, vips  — access bursts sit near the migration-benefit
//                       threshold (Sec. V.B), making threshold choice risky
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace hymem::synth {

/// Generator parameters for one synthetic workload.
struct WorkloadProfile {
  std::string name;

  // --- Table III columns (exact targets) ---
  std::uint64_t working_set_kb = 0;  ///< Footprint; pages = ws_kb*1024/page.
  std::uint64_t reads = 0;           ///< Total read requests.
  std::uint64_t writes = 0;          ///< Total write requests.

  /// ROI wall-clock duration used to prorate static power (Eq. 3). COTSon
  /// timing is not available offline; these durations are calibrated so the
  /// DRAM-only static-power shares reproduce Fig. 1 (60-80% static
  /// everywhere, with streamcluster dynamic-dominated and near-idle
  /// blackscholes static-dominated) under the Table IV constants.
  double roi_seconds = 1.0;

  // --- Locality structure ---
  double zipf_alpha = 0.8;      ///< Popularity skew inside the hot set.
  double hot_fraction = 0.2;    ///< Fraction of pages forming the hot set.
  double hot_locality = 0.8;    ///< Probability an access targets the hot set.
  double scan_fraction = 0.05;  ///< Fraction of accesses from sequential scans.
  /// Fraction of the footprint forming the *active region* at any moment
  /// (scans, hot set and warm accesses stay inside it). PARSEC phases touch
  /// far less than the total footprint at a time; with memory = 75% of the
  /// footprint, regions below 0.75 keep steady-state miss ratios near the
  /// paper's (~1e-4), while regions near 1.0 model capacity-thrashing loads.
  double resident_fraction = 0.65;
  /// Probability of a uniform access over the WHOLE footprint (the only
  /// steady-state source of page faults for stable-region workloads).
  double cold_fraction = 0.001;
  double burst_prob = 0.05;     ///< Probability a hot access opens a burst.
  /// Probability a warm (in-region, non-hot) access opens a burst. Warm
  /// bursts hit NVM-resident pages, so this knob creates the near-threshold
  /// migration candidates the paper discusses for raytrace/vips.
  double warm_burst_prob = 0.0;
  double burst_mean = 4.0;      ///< Mean extra repetitions per burst.
  std::uint64_t churn_period = 0;  ///< Accesses between hot-set rotations (0 = stable).
  double churn_shift = 0.0;        ///< Fraction of the hot set replaced per rotation.
  /// Fraction of the HOT set that forms the write-hot subset.
  double write_page_fraction = 0.3;
  /// Probability a write is redirected into the write-hot subset. High
  /// values model the strong write locality real applications exhibit
  /// (write-hot pages fit in DRAM, so almost no writes reach NVM); low
  /// values scatter writes and punish migrate-on-write policies.
  double write_locality = 0.9;

  std::uint64_t total_accesses() const { return reads + writes; }
  double write_fraction() const {
    const auto t = total_accesses();
    return t ? static_cast<double>(writes) / static_cast<double>(t) : 0.0;
  }
  /// Footprint in pages for a given page size.
  std::uint64_t footprint_pages(std::uint64_t page_size) const;

  /// Returns a copy with read/write counts AND the working-set size divided
  /// by `divisor` (>=1). Shape-stable: the read/write mix, accesses-per-page
  /// and (with roi_seconds unchanged) the static power per request are all
  /// preserved, so paper-shaped experiments run `divisor`x faster.
  WorkloadProfile scaled(std::uint64_t divisor) const;
};

/// The twelve PARSEC workloads of Table III (swaptions excluded, as in the
/// paper). Order matches the paper's figures.
std::span<const WorkloadProfile> parsec_profiles();

/// Looks up a profile by (case-sensitive) name; throws std::out_of_range.
const WorkloadProfile& parsec_profile(const std::string& name);

}  // namespace hymem::synth
