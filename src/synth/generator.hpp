// Memory-level synthetic trace generator.
//
// Produces a main-memory access stream (the equivalent of the paper's
// post-LLC COTSon capture) whose Table III columns match the profile
// *exactly*: total reads, total writes, and distinct-page footprint. The
// locality machinery (Zipf hot set, sequential scans, geometric bursts,
// hot-set churn, per-page write bias) shapes *where* those accesses land.
#pragma once

#include <cstdint>

#include "synth/workload_profile.hpp"
#include "trace/trace.hpp"

namespace hymem::synth {

/// Knobs independent of the workload profile.
struct GeneratorOptions {
  std::uint64_t page_size = 4096;
  std::uint64_t line_size = 64;  ///< Addresses are aligned to this.
  std::uint64_t seed = 42;
  /// Guarantee every footprint page is touched at least once so the
  /// generated working-set size equals the profile's (Table III exactness).
  bool ensure_full_footprint = true;
};

/// Generates one trace. Deterministic in (profile, options).
trace::Trace generate(const WorkloadProfile& profile,
                      const GeneratorOptions& options = {});

}  // namespace hymem::synth
