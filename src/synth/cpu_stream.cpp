#include "synth/cpu_stream.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/random.hpp"
#include "util/zipf.hpp"

namespace hymem::synth {

trace::Trace generate_cpu_stream(const CpuStreamOptions& options) {
  HYMEM_CHECK(options.cores > 0);
  HYMEM_CHECK(options.stride > 0);
  HYMEM_CHECK(options.private_bytes >= options.stride);
  HYMEM_CHECK(options.interleave_burst > 0);

  const std::uint64_t private_lines = options.private_bytes / options.stride;
  const std::uint64_t shared_lines =
      options.shared_bytes > 0 ? options.shared_bytes / options.stride : 0;

  struct CoreState {
    Rng rng{0};
    Addr cursor = 0;  // current sequential position (line index, private)
    std::uint64_t emitted = 0;
  };

  Rng seeder(options.seed);
  std::vector<CoreState> cores(options.cores);
  for (auto& c : cores) {
    c.rng = seeder.split();
    c.cursor = c.rng.next_below(private_lines);
  }

  ZipfSampler jump_zipf(private_lines, options.jump_zipf_alpha);

  trace::Trace out("cpu-stream");
  out.reserve(options.cores * options.accesses_per_core);

  auto private_base = [&](unsigned core) {
    return options.shared_bytes +
           static_cast<std::uint64_t>(core) * options.private_bytes;
  };

  const std::uint64_t total =
      static_cast<std::uint64_t>(options.cores) * options.accesses_per_core;
  std::uint64_t emitted = 0;
  while (emitted < total) {
    for (unsigned c = 0; c < options.cores; ++c) {
      auto& core = cores[c];
      for (std::uint64_t b = 0;
           b < options.interleave_burst && core.emitted < options.accesses_per_core;
           ++b) {
        Addr addr;
        if (shared_lines > 0 && core.rng.next_bool(options.shared_fraction)) {
          addr = core.rng.next_below(shared_lines) * options.stride;
        } else {
          if (core.rng.next_bool(options.run_continue)) {
            core.cursor = (core.cursor + 1) % private_lines;
          } else {
            core.cursor = jump_zipf.sample(core.rng);
          }
          addr = private_base(c) + core.cursor * options.stride;
        }
        const AccessType type = core.rng.next_bool(options.write_fraction)
                                    ? AccessType::kWrite
                                    : AccessType::kRead;
        out.append(addr, type, static_cast<std::uint8_t>(c));
        ++core.emitted;
        ++emitted;
      }
    }
  }
  return out;
}

}  // namespace hymem::synth
