// CPU-level (pre-cache) access stream generator.
//
// The paper obtains main-memory traces by running PARSEC inside the COTSon
// full-system simulator (quad core, two cache levels — Table II). The
// cachesim substrate replays CPU-level streams through that hierarchy; this
// generator produces such streams: per-core private regions with sequential
// runs and Zipf-skewed jumps, plus a shared region that exercises the
// coherence protocol.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace hymem::synth {

/// Parameters of a multi-core CPU-level stream.
struct CpuStreamOptions {
  unsigned cores = 4;
  std::uint64_t accesses_per_core = 250000;
  std::uint64_t private_bytes = 8u << 20;  ///< Per-core private region size.
  std::uint64_t shared_bytes = 4u << 20;   ///< Shared region size.
  double shared_fraction = 0.1;   ///< Probability an access hits the shared region.
  double write_fraction = 0.3;    ///< Probability an access is a write.
  double run_continue = 0.7;      ///< Probability of continuing a sequential run.
  std::uint64_t stride = 64;      ///< Sequential run stride (bytes).
  double jump_zipf_alpha = 0.8;   ///< Skew of random jump targets.
  std::uint64_t seed = 7;
  std::uint64_t interleave_burst = 4;  ///< Consecutive accesses per core turn.
};

/// Generates a round-robin interleaved multi-core stream. Address layout:
/// shared region at [0, shared_bytes), core c's private region follows at
/// shared_bytes + c * private_bytes.
trace::Trace generate_cpu_stream(const CpuStreamOptions& options);

}  // namespace hymem::synth
