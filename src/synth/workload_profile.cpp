#include "synth/workload_profile.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "util/check.hpp"
#include "util/units.hpp"

namespace hymem::synth {

std::uint64_t WorkloadProfile::footprint_pages(std::uint64_t page_size) const {
  HYMEM_CHECK(page_size > 0);
  const std::uint64_t bytes = working_set_kb * kKiB;
  return std::max<std::uint64_t>(1, (bytes + page_size - 1) / page_size);
}

WorkloadProfile WorkloadProfile::scaled(std::uint64_t divisor) const {
  HYMEM_CHECK_MSG(divisor >= 1, "scale divisor must be >= 1");
  WorkloadProfile p = *this;
  p.reads = std::max<std::uint64_t>(reads > 0 ? 1 : 0, reads / divisor);
  p.writes = std::max<std::uint64_t>(writes > 0 ? 1 : 0, writes / divisor);
  // Shrink the footprint by the same factor so accesses-per-page — and with
  // it every hit/miss/migration ratio — is preserved. With both the module
  // capacity (proportional to footprint) and the request count divided by
  // `divisor`, keeping roi_seconds unchanged keeps the Eq. 3 static power
  // per request invariant: (P/d * T) / (N/d) = P*T/N.
  p.working_set_kb = std::max<std::uint64_t>(16, working_set_kb / divisor);
  // Keep the number of hot-set rotations over the run constant.
  if (churn_period > 0) {
    p.churn_period = std::max<std::uint64_t>(1, churn_period / divisor);
  }
  return p;
}

namespace {

// Table III of the paper, column-for-column, plus locality knobs chosen to
// reproduce each workload's behaviour as discussed in Sections III and V.
std::array<WorkloadProfile, 12> make_profiles() {
  std::array<WorkloadProfile, 12> p{};

  // Read-only, small footprint, benign locality.
  p[0] = {.name = "blackscholes", .working_set_kb = 5188, .reads = 26242,
          .writes = 0, .roi_seconds = 0.22, .zipf_alpha = 0.9,
          .hot_fraction = 0.05, .hot_locality = 0.85, .scan_fraction = 0.04,
          .resident_fraction = 0.60, .cold_fraction = 0.001,
          .burst_prob = 0.05, .warm_burst_prob = 0.0, .burst_mean = 3.0,
          .churn_period = 0, .churn_shift = 0.0,
          .write_page_fraction = 0.4, .write_locality = 0.95};

  p[1] = {.name = "bodytrack", .working_set_kb = 25304, .reads = 658606,
          .writes = 403835, .roi_seconds = 0.48, .zipf_alpha = 0.9,
          .hot_fraction = 0.05, .hot_locality = 0.85, .scan_fraction = 0.04,
          .resident_fraction = 0.60, .cold_fraction = 0.0003,
          .burst_prob = 0.08, .warm_burst_prob = 0.0, .burst_mean = 6.0,
          .churn_period = 0, .churn_shift = 0.0,
          .write_page_fraction = 0.5, .write_locality = 0.9};

  // Graph annealing: diffuse hot set much larger than DRAM, scattered
  // writes, hot-set churn -> migration-hostile (Sections III/V).
  p[2] = {.name = "canneal", .working_set_kb = 164768, .reads = 24432900,
          .writes = 653623, .roi_seconds = 2.2, .zipf_alpha = 0.2,
          .hot_fraction = 0.30, .hot_locality = 0.60, .scan_fraction = 0.05,
          .resident_fraction = 0.72, .cold_fraction = 0.005,
          .burst_prob = 0.04, .warm_burst_prob = 0.01, .burst_mean = 4.0,
          .churn_period = 600000, .churn_shift = 0.25,
          .write_page_fraction = 0.22, .write_locality = 0.5};

  p[3] = {.name = "dedup", .working_set_kb = 512460, .reads = 17187130,
          .writes = 6998314, .roi_seconds = 0.43, .zipf_alpha = 0.8,
          .hot_fraction = 0.05, .hot_locality = 0.78, .scan_fraction = 0.08,
          .resident_fraction = 0.60, .cold_fraction = 0.0003,
          .burst_prob = 0.08, .warm_burst_prob = 0.0, .burst_mean = 6.0,
          .churn_period = 0, .churn_shift = 0.0,
          .write_page_fraction = 0.5, .write_locality = 0.92};

  p[4] = {.name = "facesim", .working_set_kb = 210368, .reads = 11730278,
          .writes = 6137519, .roi_seconds = 0.97, .zipf_alpha = 0.9,
          .hot_fraction = 0.05, .hot_locality = 0.80, .scan_fraction = 0.06,
          .resident_fraction = 0.60, .cold_fraction = 0.0002,
          .burst_prob = 0.10, .warm_burst_prob = 0.0, .burst_mean = 8.0,
          .churn_period = 0, .churn_shift = 0.0,
          .write_page_fraction = 0.5, .write_locality = 0.92};

  p[5] = {.name = "ferret", .working_set_kb = 68904, .reads = 54538546,
          .writes = 7033936, .roi_seconds = 10.2, .zipf_alpha = 1.0,
          .hot_fraction = 0.05, .hot_locality = 0.86, .scan_fraction = 0.04,
          .resident_fraction = 0.55, .cold_fraction = 0.0001,
          .burst_prob = 0.10, .warm_burst_prob = 0.0, .burst_mean = 10.0,
          .churn_period = 0, .churn_shift = 0.0,
          .write_page_fraction = 0.4, .write_locality = 0.8};

  // Hot-set churn like canneal (paper: migrated pages bounce back quickly).
  p[6] = {.name = "fluidanimate", .working_set_kb = 266120, .reads = 9951202,
          .writes = 4492775, .roi_seconds = 0.68, .zipf_alpha = 0.25,
          .hot_fraction = 0.28, .hot_locality = 0.62, .scan_fraction = 0.06,
          .resident_fraction = 0.74, .cold_fraction = 0.006,
          .burst_prob = 0.04, .warm_burst_prob = 0.01, .burst_mean = 4.0,
          .churn_period = 700000, .churn_shift = 0.15,
          .write_page_fraction = 0.25, .write_locality = 0.98};

  p[7] = {.name = "freqmine", .working_set_kb = 156108, .reads = 8427181,
          .writes = 3947122, .roi_seconds = 0.91, .zipf_alpha = 0.9,
          .hot_fraction = 0.05, .hot_locality = 0.80, .scan_fraction = 0.05,
          .resident_fraction = 0.60, .cold_fraction = 0.0003,
          .burst_prob = 0.08, .warm_burst_prob = 0.0, .burst_mean = 8.0,
          .churn_period = 0, .churn_shift = 0.0,
          .write_page_fraction = 0.5, .write_locality = 0.92};

  // Warm bursts sit near the migration-benefit threshold: threshold choice
  // is risky here (Section V.B).
  p[8] = {.name = "raytrace", .working_set_kb = 57116, .reads = 1807142,
          .writes = 370573, .roi_seconds = 0.56, .zipf_alpha = 0.7,
          .hot_fraction = 0.06, .hot_locality = 0.72, .scan_fraction = 0.06,
          .resident_fraction = 0.75, .cold_fraction = 0.002,
          .burst_prob = 0.15, .warm_burst_prob = 0.1, .burst_mean = 8.0,
          .churn_period = 60000, .churn_shift = 0.1,
          .write_page_fraction = 0.4, .write_locality = 0.93};

  // Tiny footprint, enormous read burst -> dynamic power dominates (Fig. 1);
  // the diffuse popularity defeats a small DRAM.
  p[9] = {.name = "streamcluster", .working_set_kb = 15452,
          .reads = 168666464, .writes = 448612, .roi_seconds = 13.4,
          .zipf_alpha = 0.3, .hot_fraction = 0.50, .hot_locality = 0.58,
          .scan_fraction = 0.30, .resident_fraction = 0.70,
          .cold_fraction = 0.0002, .burst_prob = 0.01,
          .warm_burst_prob = 0.002, .burst_mean = 4.0, .churn_period = 0,
          .churn_shift = 0.0, .write_page_fraction = 0.1,
          .write_locality = 0.9};

  // Near-threshold bursts (Section V.B groups vips with streamcluster).
  p[10] = {.name = "vips", .working_set_kb = 115380, .reads = 5802657,
           .writes = 4117660, .roi_seconds = 0.78, .zipf_alpha = 0.7,
           .hot_fraction = 0.06, .hot_locality = 0.75, .scan_fraction = 0.08,
           .resident_fraction = 0.70, .cold_fraction = 0.001,
           .burst_prob = 0.15, .warm_burst_prob = 0.15, .burst_mean = 8.0,
           .churn_period = 80000, .churn_shift = 0.1,
           .write_page_fraction = 0.5, .write_locality = 0.9};

  p[11] = {.name = "x264", .working_set_kb = 80232, .reads = 14669353,
           .writes = 5220400, .roi_seconds = 2.8, .zipf_alpha = 0.9,
           .hot_fraction = 0.05, .hot_locality = 0.82, .scan_fraction = 0.06,
           .resident_fraction = 0.60, .cold_fraction = 0.0002,
           .burst_prob = 0.10, .warm_burst_prob = 0.0, .burst_mean = 8.0,
           .churn_period = 0, .churn_shift = 0.0,
           .write_page_fraction = 0.5, .write_locality = 0.92};

  return p;
}

const std::array<WorkloadProfile, 12>& profiles() {
  static const std::array<WorkloadProfile, 12> p = make_profiles();
  return p;
}

}  // namespace

std::span<const WorkloadProfile> parsec_profiles() { return profiles(); }

const WorkloadProfile& parsec_profile(const std::string& name) {
  for (const auto& p : profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown PARSEC profile: " + name);
}

}  // namespace hymem::synth
