// Fairness and isolation metrics over per-tenant performance.
//
// The serving question the paper's single-process evaluation never asks:
// when N address spaces share one DRAM/NVM budget, how unevenly is the
// resulting AMAT distributed, and can one tenant's antagonistic traffic
// (a scan) evict everyone else's hot set? The summary here is consumed by
// the tenant timeline, the end-of-run TenantGroupResult and the
// bench_tenants "tenant-fairness" table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hymem::tenant {

/// Distribution summary of per-tenant AMATs (nanoseconds).
struct FairnessSummary {
  std::uint32_t tenants = 0;   ///< Tenants with served accesses.
  double amat_p50_ns = 0.0;
  double amat_p95_ns = 0.0;
  double amat_p99_ns = 0.0;
  /// Jain's fairness index over the per-tenant AMATs: 1.0 when every
  /// tenant sees the same AMAT, approaching 1/n as one tenant dominates.
  double jain_index = 0.0;
};

/// Jain's index (sum x)^2 / (n * sum x^2); 0 for an empty sample, 1 for a
/// constant one. Values must be non-negative.
double jain_fairness(std::span<const double> xs);

/// Percentiles (linear interpolation) + Jain index of a per-tenant AMAT
/// sample. Empty input returns the zero summary.
FairnessSummary summarize_fairness(std::span<const double> per_tenant_amat_ns);

}  // namespace hymem::tenant
