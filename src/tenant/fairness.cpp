#include "tenant/fairness.hpp"

#include "util/stats.hpp"

namespace hymem::tenant {

double jain_fairness(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero sample: perfectly equal
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

FairnessSummary summarize_fairness(
    std::span<const double> per_tenant_amat_ns) {
  FairnessSummary s;
  if (per_tenant_amat_ns.empty()) return s;
  s.tenants = static_cast<std::uint32_t>(per_tenant_amat_ns.size());
  const std::vector<double> xs(per_tenant_amat_ns.begin(),
                               per_tenant_amat_ns.end());
  s.amat_p50_ns = quantile(xs, 0.50);
  s.amat_p95_ns = quantile(xs, 0.95);
  s.amat_p99_ns = quantile(xs, 0.99);
  s.jain_index = jain_fairness(per_tenant_amat_ns);
  return s;
}

}  // namespace hymem::tenant
